#!/usr/bin/env bash
# Full verification gate: normal build + tier-1 suite, then a ThreadSanitizer
# build running the same suite (including service_test and parallel_test, the
# concurrency stresses), then an AddressSanitizer+UBSan build (the columnar
# data plane's typed vectors and index gathers are exactly where an
# off-by-one becomes heap corruption), then a Release build with assertions
# kept live, then the observability gate (instrumentation overhead budget +
# an end-to-end CLI run whose --trace-out file must parse as Chrome
# trace-event JSON), and finally the fault-tolerance gate (the concurrency
# and cancellation fault tests under TSan, a seeded fault-sweep CLI run that
# must recover, and the ExecutionContext plumbing-overhead budget inside
# bench_service_throughput). Run from anywhere; builds land in <repo>/build,
# <repo>/build-tsan, <repo>/build-asan and <repo>/build-relassert.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc)"

echo "== [1/6] normal build + tests =="
cmake -S "$repo" -B "$repo/build" >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== [2/6] ThreadSanitizer build + tests =="
cmake -S "$repo" -B "$repo/build-tsan" -DMUSKETEER_SANITIZE=thread >/dev/null
cmake --build "$repo/build-tsan" -j "$jobs"
ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs"

echo "== [3/6] AddressSanitizer+UBSan build + tests =="
cmake -S "$repo" -B "$repo/build-asan" -DMUSKETEER_SANITIZE=address >/dev/null
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"

echo "== [4/6] Release-with-assertions build + tests =="
cmake -S "$repo" -B "$repo/build-relassert" -DCMAKE_BUILD_TYPE=Release \
      -DMUSKETEER_KEEP_ASSERTS=ON >/dev/null
cmake --build "$repo/build-relassert" -j "$jobs"
ctest --test-dir "$repo/build-relassert" --output-on-failure -j "$jobs"

echo "== [5/6] observability: overhead budget + trace validity =="
# Overhead gate: instrumented-vs-uninstrumented kernel throughput, exits
# non-zero above the 5% budget; writes BENCH_obs_overhead.json.
(cd "$repo/build" && ./bench/bench_obs_overhead)

# End-to-end trace check: run a tiny workflow through the CLI with tracing on
# and validate the emitted file as Chrome trace-event JSON.
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
cat > "$obs_tmp/tiny.beer" <<'EOF'
joined = JOIN lhs, rhs ON lhs.id = rhs.id;
EOF
printf '1,10\n2,20\n3,30\n' > "$obs_tmp/lhs.csv"
printf '1,100\n2,200\n4,400\n' > "$obs_tmp/rhs.csv"
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=out.csv --trace-out=trace.json --metrics \
    tiny.beer > cli_out.txt)
grep -q "musketeer.engine.jobs" "$obs_tmp/cli_out.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$obs_tmp/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "trace has no events"
names = {e["name"] for e in events}
for stage in ("stage.parse", "stage.optimize", "stage.partition",
              "stage.codegen", "stage.execute"):
    assert stage in names, f"missing span {stage}"
for e in events:
    assert e["ph"] == "X" and isinstance(e["ts"], (int, float)), e
print(f"trace OK: {len(events)} complete event(s)")
EOF
else
  # No python3: still insist the CLI produced a non-empty trace file.
  test -s "$obs_tmp/trace.json"
  echo "trace written (python3 unavailable, JSON not validated)"
fi

echo "== [6/6] fault tolerance: TSan fault tests + seeded sweep + overhead gate =="
# The concurrency and cancellation fault tests under ThreadSanitizer: workers
# recovering injected faults and racing cancellations against one shared DFS.
"$repo/build-tsan/tests/fault_test" --gtest_filter='*Concurrent*:*Cancel*'

# Seeded fault sweep through the CLI: at rate 0.3 the run must recover every
# injected fault via retries/failover and still produce the join output.
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=fault_out.csv --fault-rate=0.3 --fault-seed=42 \
    --max-retries=3 tiny.beer > fault_cli_out.txt)
test -s "$obs_tmp/fault_out.csv"

# ExecutionContext plumbing-overhead budget: bench_service_throughput exits
# non-zero when the armed retry/injector path keeps <85% of baseline
# service throughput.
(cd "$repo/build" && ./bench/bench_service_throughput)

echo "== all checks passed =="
