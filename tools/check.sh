#!/usr/bin/env bash
# Full verification gate: normal build + tier-1 suite, then a ThreadSanitizer
# build running the same suite (including service_test and parallel_test, the
# concurrency stresses), then an AddressSanitizer+UBSan build (the columnar
# data plane's typed vectors and index gathers are exactly where an
# off-by-one becomes heap corruption), then a Release build with assertions
# kept live, then the observability gate (instrumentation overhead budget +
# an end-to-end CLI run whose --trace-out file must parse as Chrome
# trace-event JSON), and finally the fault-tolerance gate (the concurrency
# and cancellation fault tests under TSan, a seeded fault-sweep CLI run that
# must recover, and the ExecutionContext plumbing-overhead budget inside
# bench_service_throughput), and lastly the network front door gate (net
# tests under TSan plus a scripted curl session against a live --listen
# server covering submit/status/cancel/metrics, a 429 over-quota burst and
# SIGTERM drain), then the vectorized-kernel gate (Release-build
# thread-scaling floors in bench_columnar_ops plus the kernel and
# engine-equivalence tests under TSan at 8 threads), and finally the
# sharded-execution gate (shard coordinator tests under TSan, a scripted CLI
# run asserting --shards=3 output is byte-identical to --shards=1 even across
# a seeded mid-run shard death, and bench_shard_scaling's locality hit-rate /
# cross-shard-bytes / no-regression acceptance), and lastly the streaming +
# incremental gate (relation-channel storms and the pipelined end-to-end
# sweep under TSan, a scripted CLI run asserting --pipeline=force and
# --incremental output is byte-identical to --pipeline=off, and
# bench_stream_pipeline's pipelined-speedup / reused-job acceptance), and
# finally the planner-at-scale gate (the forced re-planning sweep under
# TSan, a scripted CLI run asserting every --partitioner choice produces
# byte-identical output, and bench_partitioner_scale's 250 ms planning
# budget on 1000-operator synthetic DAGs plus the DP optimality-gap
# acceptance).
# Run from anywhere;
# builds land in <repo>/build, <repo>/build-tsan, <repo>/build-asan and
# <repo>/build-relassert.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc)"

echo "== [1/11] normal build + tests =="
cmake -S "$repo" -B "$repo/build" >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== [2/11] ThreadSanitizer build + tests =="
cmake -S "$repo" -B "$repo/build-tsan" -DMUSKETEER_SANITIZE=thread >/dev/null
cmake --build "$repo/build-tsan" -j "$jobs"
ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs"

echo "== [3/11] AddressSanitizer+UBSan build + tests =="
cmake -S "$repo" -B "$repo/build-asan" -DMUSKETEER_SANITIZE=address >/dev/null
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"

echo "== [4/11] Release-with-assertions build + tests =="
cmake -S "$repo" -B "$repo/build-relassert" -DCMAKE_BUILD_TYPE=Release \
      -DMUSKETEER_KEEP_ASSERTS=ON >/dev/null
cmake --build "$repo/build-relassert" -j "$jobs"
ctest --test-dir "$repo/build-relassert" --output-on-failure -j "$jobs"

echo "== [5/11] observability: overhead budget + trace validity =="
# Overhead gate: instrumented-vs-uninstrumented kernel throughput, exits
# non-zero above the 5% budget; writes BENCH_obs_overhead.json.
(cd "$repo/build" && ./bench/bench_obs_overhead)

# End-to-end trace check: run a tiny workflow through the CLI with tracing on
# and validate the emitted file as Chrome trace-event JSON.
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
cat > "$obs_tmp/tiny.beer" <<'EOF'
joined = JOIN lhs, rhs ON lhs.id = rhs.id;
EOF
printf '1,10\n2,20\n3,30\n' > "$obs_tmp/lhs.csv"
printf '1,100\n2,200\n4,400\n' > "$obs_tmp/rhs.csv"
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=out.csv --trace-out=trace.json --metrics \
    tiny.beer > cli_out.txt)
grep -q "musketeer.engine.jobs" "$obs_tmp/cli_out.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$obs_tmp/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "trace has no events"
names = {e["name"] for e in events}
for stage in ("stage.parse", "stage.optimize", "stage.partition",
              "stage.codegen", "stage.execute"):
    assert stage in names, f"missing span {stage}"
for e in events:
    assert e["ph"] == "X" and isinstance(e["ts"], (int, float)), e
print(f"trace OK: {len(events)} complete event(s)")
EOF
else
  # No python3: still insist the CLI produced a non-empty trace file.
  test -s "$obs_tmp/trace.json"
  echo "trace written (python3 unavailable, JSON not validated)"
fi

echo "== [6/11] fault tolerance: TSan fault tests + seeded sweep + overhead gate =="
# The concurrency and cancellation fault tests under ThreadSanitizer: workers
# recovering injected faults and racing cancellations against one shared DFS.
"$repo/build-tsan/tests/fault_test" --gtest_filter='*Concurrent*:*Cancel*'

# Seeded fault sweep through the CLI: at rate 0.3 the run must recover every
# injected fault via retries/failover and still produce the join output.
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=fault_out.csv --fault-rate=0.3 --fault-seed=42 \
    --max-retries=3 tiny.beer > fault_cli_out.txt)
test -s "$obs_tmp/fault_out.csv"

# ExecutionContext plumbing-overhead budget: bench_service_throughput exits
# non-zero when the armed retry/injector path keeps <85% of baseline
# service throughput.
(cd "$repo/build" && ./bench/bench_service_throughput)

echo "== [7/11] network front door: scripted client session + TSan net tests =="
# Server tests (HTTP parser, live-socket e2e, line protocol, tenant quotas)
# under ThreadSanitizer: the poll loop, worker pool and client threads all
# share the ticket registry.
"$repo/build-tsan/tests/net_test"

# Scripted session against a live server: one worker held busy by a 300 ms
# simulated dispatch wait, tenant "alice" capped at one queued workflow, so a
# burst of three submits must produce at least one 429 without disturbing
# tenant "bob". Exercises submit/status/cancel/metrics plus SIGTERM drain.
"$repo/build/tools/musketeer" --listen=7477 --serve=1 \
    --quota=alice=1:1:1 --dispatch-latency-ms=300 \
    --input=lhs="$obs_tmp/lhs.csv":id:int,v:int \
    --input=rhs="$obs_tmp/rhs.csv":id:int,w:int \
    > "$obs_tmp/server_out.txt" 2>&1 &
server_pid=$!
for _ in $(seq 1 50); do
  curl -s -o /dev/null http://127.0.0.1:7477/healthz && break
  sleep 0.1
done
curl -sf http://127.0.0.1:7477/healthz | grep -q ok

submit_codes=""
for i in 1 2 3; do
  code=$(curl -s -o "$obs_tmp/submit_$i.json" -w '%{http_code}' \
      -X POST -H 'X-Tenant: alice' -H 'X-Workflow-Id: tiny' \
      --data-binary @"$obs_tmp/tiny.beer" http://127.0.0.1:7477/submit)
  submit_codes="$submit_codes $code"
done
echo "alice submit codes:$submit_codes"
case "$submit_codes" in
  *429*) ;;
  *) echo "expected a 429 over-quota rejection for alice"; exit 1 ;;
esac

# The other tenant is unaffected by alice's quota.
bob_code=$(curl -s -o "$obs_tmp/bob.json" -w '%{http_code}' \
    -X POST -H 'X-Tenant: bob' -H 'X-Workflow-Id: tiny' \
    --data-binary @"$obs_tmp/tiny.beer" http://127.0.0.1:7477/submit)
test "$bob_code" = 202

# Status poll + cancel round-trip on bob's (still queued or running) ticket.
bob_ticket=$(sed -n 's/.*"ticket": \([0-9]*\).*/\1/p' "$obs_tmp/bob.json")
curl -sf "http://127.0.0.1:7477/status/$bob_ticket" | grep -q '"state"'
curl -sf -X POST "http://127.0.0.1:7477/cancel/$bob_ticket" | grep -q '"state"'

# Live metrics include connection counters and per-tenant attribution.
curl -sf http://127.0.0.1:7477/metrics > "$obs_tmp/metrics.txt"
grep -q "musketeer.net.connections.accepted" "$obs_tmp/metrics.txt"
grep -q "musketeer.net.responses.4xx" "$obs_tmp/metrics.txt"
grep -q "musketeer.service.tenant.alice.rejected" "$obs_tmp/metrics.txt"

# Cooperative shutdown: SIGTERM drains connections, then the worker pool.
kill -TERM "$server_pid"
wait "$server_pid" || true
grep -q "shutting down" "$obs_tmp/server_out.txt"

echo "== [8/11] vectorized kernels: Release scaling gate + TSan sweep =="
# Scaling gate: bench_columnar_ops sweeps threads {1,2,4,8} over every op and
# exits non-zero when a floor is missed. Floors are hardware-aware: with >= 8
# real cores, hash_join and group_by_agg must reach >= 4x at 8 threads and
# sort >= 2.5x; on smaller hosts (where timeslicing cannot speed anything up)
# the floor degrades to no-regression vs 1 thread. The 1.5x columnar-vs-row
# single-thread floor always applies. Run from the Release tree: scaling
# ratios in a -O0/-g build are not the numbers we ship.
(cd "$repo/build-relassert" && ./bench/bench_columnar_ops)

# The new parallel kernels (mask selection, flat-hash join/group-by, fused
# select->map->aggregate, index exchange) under ThreadSanitizer at full
# width: every workflow must stay Table::Identical across 1/2/4/8 threads
# while TSan watches the morsel tasks share partial buffers.
MUSKETEER_THREADS=8 "$repo/build-tsan/tests/column_test"
MUSKETEER_THREADS=8 "$repo/build-tsan/tests/engine_equivalence_test" \
    --gtest_filter='*Parallel*:*RowReference*:*Fused*'

echo "== [9/11] sharded execution: TSan coordinator tests + CLI bit-identity + scaling gate =="
# The shard coordinator under ThreadSanitizer: per-shard worker pools execute
# against per-shard DFS views of one ShardedDfs while the coordinator thread
# reads the shared directory and fetch counters.
"$repo/build-tsan/tests/shard_test" \
    --gtest_filter='ShardCoordinatorTest.*:*SeededShardDeath*'

# Scripted CLI bit-identity: the same workflow at --shards=1 and --shards=3
# (and at 3 shards with a mid-run shard death) must produce byte-identical
# output files. This is the tentpole's headline contract end to end.
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=shard1.csv --shards=1 tiny.beer > shard1_out.txt)
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=shard3.csv --shards=3 tiny.beer > shard3_out.txt)
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=shard3f.csv --shards=3 --shard-fault=0@1 \
    --max-retries=3 tiny.beer > shard3f_out.txt)
cmp "$obs_tmp/shard1.csv" "$obs_tmp/shard3.csv"
cmp "$obs_tmp/shard1.csv" "$obs_tmp/shard3f.csv"
grep -q "sharding: 3 shard(s)" "$obs_tmp/shard3_out.txt"

# Scaling + placement gate: the 9-workflow suite across 1/2/3 shards must
# stay bit-identical to unsharded runs, reach >= 80% locality hit rate, beat
# random placement on cross-shard bytes, and not regress wall clock. Writes
# BENCH_shard_scaling.json.
(cd "$repo/build" && ./bench/bench_shard_scaling)

echo "== [10/11] streaming + incremental: TSan channel storms + CLI pipeline bit-identity + bench gate =="
# The relation channels under ThreadSanitizer: concurrent producer/consumer
# pairs hammer push/pop/close/abort while the counters are read, plus the
# pipelined end-to-end sweep where group members execute in their own
# threads against the shared DFS.
"$repo/build-tsan/tests/stream_test" \
    --gtest_filter='RelationChannelTest.*:StreamExecutionTest.*'

# Scripted CLI bit-identity: --pipeline=force must produce byte-identical
# output to --pipeline=off, and must report streamed batches; --incremental
# alone (fresh process, no prior fingerprints) must still produce the same
# bytes.
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=pipe_off.csv --pipeline=off tiny.beer > pipe_off_out.txt)
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=pipe_force.csv --pipeline=force tiny.beer > pipe_force_out.txt)
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=pipe_inc.csv --incremental tiny.beer > pipe_inc_out.txt)
cmp "$obs_tmp/pipe_off.csv" "$obs_tmp/pipe_force.csv"
cmp "$obs_tmp/pipe_off.csv" "$obs_tmp/pipe_inc.csv"

# Pipelined-vs-barrier wall clock and incremental reuse gates (hardware-
# aware: >= 1.2x on >= 4 cores, no-regression on smaller hosts; the delta
# run must reuse >= 1 job and match the cold bits). Release tree — the
# overlap ratios in a -O0 build are not the numbers we ship. Writes
# BENCH_stream_pipeline.json.
(cd "$repo/build-relassert" && ./bench/bench_stream_pipeline)

echo "== [11/11] planner at scale: TSan re-planning sweep + CLI strategy selection + latency gate =="
# The online re-planning sweep under ThreadSanitizer: forced mid-run
# re-plans splice new job tails into runs whose outputs must stay
# bit-identical, while morsel workers execute each job in parallel.
"$repo/build-tsan/tests/planner_scale_test" \
    --gtest_filter='ReplanningTest.*:PlannerScaleTest.*'

# Scripted CLI strategy selection: every built-in partitioner must produce
# byte-identical output on the same workflow, the report must name the
# strategy that ran, and an unknown strategy name must be rejected.
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=part_auto.csv --partitioner=auto tiny.beer > part_auto_out.txt)
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=part_dp.csv --partitioner=dp --replan-threshold=0.5 \
    tiny.beer > part_dp_out.txt)
(cd "$obs_tmp" && "$repo/build/tools/musketeer" \
    --input=lhs=lhs.csv:id:int,v:int --input=rhs=rhs.csv:id:int,w:int \
    --output=joined=part_ex.csv --partitioner=exhaustive tiny.beer > part_ex_out.txt)
cmp "$obs_tmp/part_auto.csv" "$obs_tmp/part_dp.csv"
cmp "$obs_tmp/part_auto.csv" "$obs_tmp/part_ex.csv"
grep -q "exhaustive partitioner" "$obs_tmp/part_auto_out.txt"
grep -q "dp partitioner" "$obs_tmp/part_dp_out.txt"
if "$repo/build/tools/musketeer" --partitioner=bogus tiny.beer \
    > /dev/null 2>&1; then
  echo "expected --partitioner=bogus to be rejected"; exit 1
fi

# Planning-latency gate: seeded synthetic DAGs at 100-1000 operators must
# plan under the 250 ms budget with the production-default strategy, cover
# every operator, and hold the DP-vs-exhaustive 1.5x optimality gap on
# small DAGs. Release tree — planner latency in a -O0 build is not the
# number we ship. Writes BENCH_partitioner_scale.json.
(cd "$repo/build-relassert" && ./bench/bench_partitioner_scale)

echo "== all checks passed =="
