#!/usr/bin/env bash
# Full verification gate: normal build + tier-1 suite, then a ThreadSanitizer
# build running the same suite (including service_test, the concurrency
# stress). Run from anywhere; builds land in <repo>/build and <repo>/build-tsan.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc)"

echo "== [1/2] normal build + tests =="
cmake -S "$repo" -B "$repo/build" >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== [2/2] ThreadSanitizer build + tests =="
cmake -S "$repo" -B "$repo/build-tsan" -DMUSKETEER_SANITIZE=thread >/dev/null
cmake --build "$repo/build-tsan" -j "$jobs"
ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs"

echo "== all checks passed =="
