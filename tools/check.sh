#!/usr/bin/env bash
# Full verification gate: normal build + tier-1 suite, then a ThreadSanitizer
# build running the same suite (including service_test and parallel_test, the
# concurrency stresses), then an AddressSanitizer+UBSan build (the columnar
# data plane's typed vectors and index gathers are exactly where an
# off-by-one becomes heap corruption), then a Release build with assertions
# kept live. Run from anywhere; builds land in <repo>/build,
# <repo>/build-tsan, <repo>/build-asan and <repo>/build-relassert.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc)"

echo "== [1/4] normal build + tests =="
cmake -S "$repo" -B "$repo/build" >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== [2/4] ThreadSanitizer build + tests =="
cmake -S "$repo" -B "$repo/build-tsan" -DMUSKETEER_SANITIZE=thread >/dev/null
cmake --build "$repo/build-tsan" -j "$jobs"
ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs"

echo "== [3/4] AddressSanitizer+UBSan build + tests =="
cmake -S "$repo" -B "$repo/build-asan" -DMUSKETEER_SANITIZE=address >/dev/null
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"

echo "== [4/4] Release-with-assertions build + tests =="
cmake -S "$repo" -B "$repo/build-relassert" -DCMAKE_BUILD_TYPE=Release \
      -DMUSKETEER_KEEP_ASSERTS=ON >/dev/null
cmake --build "$repo/build-relassert" -j "$jobs"
ctest --test-dir "$repo/build-relassert" --output-on-failure -j "$jobs"

echo "== all checks passed =="
