// musketeer — command-line workflow runner and service driver.
//
// Runs a workflow written in any of the four front-end languages against
// CSV inputs, letting Musketeer choose back-end engines (or forcing them),
// and writes result relations back to CSV. With --serve the CLI instead
// stands up the concurrent workflow service (src/service/) and pushes every
// given workflow file through its submission queue and worker pool.
//
// Usage:
//   musketeer [options] <workflow-file>            one-shot run
//   musketeer [options] --serve=N <files...>       service mode, N workers
//
// Options:
//   --language=beer|hive|gas|lindi   front-end (default: by file extension)
//   --input=NAME=FILE:SCHEMA         input relation, e.g.
//                                    --input=prices=prices.csv:id:int,price:double
//   --scale=NAME=FACTOR              treat NAME as FACTOR x larger than its
//                                    sample (simulated nominal size)
//   --cluster=local|single|ec2:N     cluster model (default: local)
//   --engines=naiad,hadoop,...       restrict engine choice (default: all)
//   --output=NAME=FILE               write relation NAME to FILE as CSV
//   --threads=N                      intra-query data-plane parallelism
//                                    (default: MUSKETEER_THREADS env, else
//                                    hardware concurrency)
//   --explain                        also print IR, partitioning & job code
//   --trace-out=FILE                 write a Chrome trace_event JSON file
//                                    (load in chrome://tracing / Perfetto)
//   --metrics                        dump the metrics registry on exit
//   --history-file=FILE              load relation-size history before the
//                                    run and save it back after (JSON)
//   --serve=N                        run a workflow service with N workers;
//                                    every positional file is submitted
//   --shards=M                       one-shot across M in-process DFS shards
//                                    (locality-aware placement; outputs are
//                                    bit-identical to --shards=1 at any M)
//   --placement=locality|random      shard placement policy
//   --shard-fault=SHARD@N            kill a shard's compute mid-run (demo of
//                                    next-cheapest-shard failover)
//   --shard-of=K/M --peers=...       socket mode: serve shard K of an
//                                    M-process cluster (compose with
//                                    --listen; peers exchange relations over
//                                    GET/PUT /relation/<name>)
//   --repeat=K                       service mode: submit each file K times
//   --queue=CAP                      service mode: submission queue bound
//   --no-plan-cache                  service mode: disable the plan cache
//
// Example:
//   ./build/tools/musketeer --input=purchases=p.csv:uid:int,region:int,amount:double
//       --output=top_shoppers=out.csv --explain top_shopper.beer

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "src/base/parallel.h"
#include "src/base/strings.h"
#include "src/cluster/sharded_dfs.h"
#include "src/core/musketeer.h"
#include "src/net/peer_dfs.h"
#include "src/net/server.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/relational/csv.h"
#include "src/scheduler/partition_strategy.h"
#include "src/service/service.h"
#include "src/service/shard_coordinator.h"

using namespace musketeer;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "musketeer: %s\n", message.c_str());
  return 1;
}

std::optional<FrontendLanguage> LanguageFromName(const std::string& name) {
  if (EqualsIgnoreCase(name, "beer")) {
    return FrontendLanguage::kBeer;
  }
  if (EqualsIgnoreCase(name, "hive")) {
    return FrontendLanguage::kHive;
  }
  if (EqualsIgnoreCase(name, "gas")) {
    return FrontendLanguage::kGas;
  }
  if (EqualsIgnoreCase(name, "lindi")) {
    return FrontendLanguage::kLindi;
  }
  return std::nullopt;
}

std::optional<EngineKind> EngineFromName(const std::string& name) {
  for (EngineKind kind : kAllEngines) {
    if (EqualsIgnoreCase(name, EngineKindName(kind))) {
      return kind;
    }
  }
  return std::nullopt;
}

// "id:int,street:string,price:double" -> Schema.
std::optional<Schema> ParseSchemaSpec(const std::string& spec) {
  Schema schema;
  for (const std::string& field : StrSplit(spec, ',')) {
    std::vector<std::string> parts = StrSplit(field, ':');
    if (parts.size() != 2) {
      return std::nullopt;
    }
    FieldType type;
    if (EqualsIgnoreCase(parts[1], "int")) {
      type = FieldType::kInt64;
    } else if (EqualsIgnoreCase(parts[1], "double")) {
      type = FieldType::kDouble;
    } else if (EqualsIgnoreCase(parts[1], "string")) {
      type = FieldType::kString;
    } else {
      return std::nullopt;
    }
    schema.AddField({std::string(StripWhitespace(parts[0])), type});
  }
  return schema.num_fields() > 0 ? std::optional<Schema>(schema) : std::nullopt;
}

void PrintUsage() {
  std::printf(
      "usage: musketeer [options] <workflow-file>\n"
      "       musketeer [options] --serve=N <workflow-files...>\n"
      "  --language=beer|hive|gas|lindi\n"
      "  --input=NAME=FILE:SCHEMA      (SCHEMA: col:int|double|string,...)\n"
      "  --scale=NAME=FACTOR\n"
      "  --cluster=local|single|ec2:N\n"
      "  --engines=naiad,hadoop,...\n"
      "  --output=NAME=FILE\n"
      "  --threads=N                   (default: MUSKETEER_THREADS env,\n"
      "                                 else hardware concurrency)\n"
      "  --explain\n"
      "  --trace-out=FILE --metrics --history-file=FILE\n"
      "  --serve=N --repeat=K --queue=CAP --no-plan-cache\n"
      "  --shards=M                    (one-shot over M in-process DFS shards\n"
      "                                 with locality-aware job placement)\n"
      "  --placement=locality|random   (shard placement policy, default\n"
      "                                 locality)\n"
      "  --shard-fault=SHARD@N         (kill SHARD's compute after N job\n"
      "                                 dispatches; its data stays readable)\n"
      "  --shard-of=K/M --peers=H:P,...  (serve shard K of an M-process\n"
      "                                 cluster; compose with --listen. The\n"
      "                                 peer list has one host:port per\n"
      "                                 shard, '-' for this process's slot;\n"
      "                                 each process loads only the --input\n"
      "                                 relations its shard owns)\n"
      "  --listen=PORT                 (serve HTTP + line protocol; compose\n"
      "                                 with --serve=N for the worker count,\n"
      "                                 Ctrl-C drains and exits)\n"
      "  --quota=TENANT=W[:QUEUED[:INFLIGHT]]  (fair-share weight and caps)\n"
      "  --keepalive-timeout-ms=N      (close idle keep-alive connections\n"
      "                                 after N ms; 0 = never, the default)\n"
      "  --dispatch-latency-ms=N       (simulated per-job engine dispatch\n"
      "                                 wait in service/listen mode)\n"
      "  --deadline-ms=N               (workflow budget incl. queue wait)\n"
      "  --max-retries=N               (per-engine retries per job)\n"
      "  --fault-rate=F --fault-seed=S (seeded fault injection)\n"
      "  --no-failover                 (disable cross-engine failover)\n"
      "  --pipeline=off|auto|force     (stream pipeline-safe job edges over\n"
      "                                 in-memory channels instead of the\n"
      "                                 DFS barrier; auto = cost-gated,\n"
      "                                 results identical either way)\n"
      "  --incremental                 (reuse jobs whose input fingerprints\n"
      "                                 are unchanged since the last run —\n"
      "                                 with --serve/--listen, resubmits\n"
      "                                 recompute only the affected DAG\n"
      "                                 suffix)\n"
      "  --partitioner=auto|dp|exhaustive|dp-multi\n"
      "                                (partitioning strategy; auto picks\n"
      "                                 exhaustive below the op threshold,\n"
      "                                 DP above it. Names registered via\n"
      "                                 PartitionStrategyRegistry also work)\n"
      "  --replan-threshold=R          (re-plan the remaining DAG when a\n"
      "                                 job's measured runtime is off by\n"
      "                                 more than Rx from its prediction;\n"
      "                                 0 = off, needs runtime history)\n");
}

// Infers the front-end language for `path` from --language or the extension.
std::optional<FrontendLanguage> LanguageForFile(
    const std::string& path, std::optional<FrontendLanguage> forced) {
  if (forced.has_value()) {
    return forced;
  }
  size_t dot = path.rfind('.');
  if (dot == std::string::npos) {
    return std::nullopt;
  }
  return LanguageFromName(path.substr(dot + 1));
}

std::optional<WorkflowSpec> LoadWorkflowFile(
    const std::string& path, std::optional<FrontendLanguage> forced) {
  auto language = LanguageForFile(path, forced);
  if (!language.has_value()) {
    return std::nullopt;
  }
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  WorkflowSpec spec;
  spec.id = path;
  spec.language = *language;
  spec.source = buf.str();
  return spec;
}

// "alice=3:8:2" -> {weight 3, max_queued 8, max_in_flight 2}. Queued and
// in-flight caps are optional (0 = unbounded beyond the global queue).
std::optional<std::pair<std::string, TenantQuota>> ParseQuotaSpec(
    const std::string& spec) {
  size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    return std::nullopt;
  }
  std::vector<std::string> parts = StrSplit(spec.substr(eq + 1), ':');
  if (parts.empty() || parts.size() > 3) {
    return std::nullopt;
  }
  TenantQuota quota;
  auto weight = ParseInt64(parts[0]);
  if (!weight.has_value() || *weight < 1) {
    return std::nullopt;
  }
  quota.weight = static_cast<int>(*weight);
  if (parts.size() > 1) {
    auto queued = ParseInt64(parts[1]);
    if (!queued.has_value() || *queued < 0) {
      return std::nullopt;
    }
    quota.max_queued = static_cast<size_t>(*queued);
  }
  if (parts.size() > 2) {
    auto in_flight = ParseInt64(parts[2]);
    if (!in_flight.has_value() || *in_flight < 0) {
      return std::nullopt;
    }
    quota.max_in_flight = static_cast<int>(*in_flight);
  }
  return std::make_pair(spec.substr(0, eq), quota);
}

// SIGINT/SIGTERM set a flag; the listen loop polls it so shutdown runs on
// the main thread (HttpServer::Shutdown is not async-signal-safe).
std::atomic<bool> g_stop_requested{false};

void HandleStopSignal(int) { g_stop_requested.store(true); }

// Listen mode: stand up the workflow service plus the network front door
// and serve until SIGINT/SIGTERM. Any positional workflow files are
// submitted once at startup (a warm-up batch); remote clients then submit
// over HTTP or the line protocol.
int RunListen(Dfs* dfs, const std::vector<std::string>& paths,
              std::optional<FrontendLanguage> forced_language,
              const RunOptions& base_options, int workers, uint16_t port,
              size_t queue_capacity, bool plan_cache,
              std::chrono::milliseconds dispatch_latency,
              std::chrono::milliseconds keepalive_timeout,
              const std::vector<std::pair<std::string, TenantQuota>>& quotas,
              HistoryStore* history, RuntimeHistory* runtime_history) {
  ServiceConfig config;
  config.num_workers = workers;
  config.queue_capacity = queue_capacity;
  config.plan_cache_capacity = plan_cache ? 128 : 0;
  config.dispatch_latency = dispatch_latency;
  config.default_options = base_options;
  config.default_options.history = history;
  config.default_options.runtime_history = runtime_history;
  config.tenant_quotas = quotas;
  WorkflowService service(dfs, config);

  for (const std::string& path : paths) {
    auto spec = LoadWorkflowFile(path, forced_language);
    if (!spec.has_value()) {
      return Fail("cannot load workflow '" + path +
                  "' (missing file or unknown language)");
    }
    service.SubmitBlocking(std::move(*spec));
  }

  ServerConfig server_config;
  server_config.port = port;
  server_config.keepalive_timeout = keepalive_timeout;
  HttpServer server(&service, server_config);
  Status started = server.Start();
  if (!started.ok()) {
    return Fail("listen failed: " + started.ToString());
  }
  std::printf("musketeer: listening on 127.0.0.1:%u (%d worker(s)); "
              "Ctrl-C to drain and exit\n",
              server.port(), workers);
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop_requested.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Cooperative shutdown: stop accepting + flush connections, then drain
  // the worker pool so accepted work still settles.
  std::printf("musketeer: shutting down...\n");
  server.Shutdown();
  service.Shutdown();
  ServiceStats stats = service.stats();
  std::printf("%llu submitted, %llu done, %llu failed, %llu rejected, "
              "%llu cancelled\n",
              (unsigned long long)stats.submitted,
              (unsigned long long)stats.completed,
              (unsigned long long)stats.failed,
              (unsigned long long)stats.rejected,
              (unsigned long long)stats.cancelled);
  return stats.failed == 0 ? 0 : 1;
}

// Service mode: submit every workflow file `repeat` times through the
// concurrent service and report per-submission status plus throughput.
int RunServe(Dfs* dfs, const std::vector<std::string>& paths,
             std::optional<FrontendLanguage> forced_language,
             const RunOptions& base_options, int workers, int repeat,
             size_t queue_capacity, bool plan_cache, HistoryStore* history,
             RuntimeHistory* runtime_history) {
  std::vector<WorkflowSpec> specs;
  for (const std::string& path : paths) {
    auto spec = LoadWorkflowFile(path, forced_language);
    if (!spec.has_value()) {
      return Fail("cannot load workflow '" + path +
                  "' (missing file or unknown language)");
    }
    specs.push_back(std::move(*spec));
  }

  ServiceConfig config;
  config.num_workers = workers;
  config.queue_capacity = queue_capacity;
  config.plan_cache_capacity = plan_cache ? 128 : 0;
  config.default_options = base_options;
  config.default_options.history = history;
  config.default_options.runtime_history = runtime_history;
  WorkflowService service(dfs, config);

  const auto start = std::chrono::steady_clock::now();
  std::vector<WorkflowHandle> handles;
  for (int r = 0; r < repeat; ++r) {
    for (const WorkflowSpec& spec : specs) {
      handles.push_back(service.SubmitBlocking(spec));
    }
  }
  service.Drain();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("%-28s %-9s %10s %10s %10s %6s\n", "workflow", "state",
              "sim (s)", "queue (ms)", "total (ms)", "cache");
  for (const WorkflowHandle& h : handles) {
    char sim[32] = "-";
    if (h->state() == WorkflowState::kDone) {
      std::snprintf(sim, sizeof(sim), "%.1f", h->result()->makespan);
    }
    std::printf("%-28s %-9s %10s %10.2f %10.2f %6s\n", h->spec().id.c_str(),
                WorkflowStateName(h->state()), sim, h->queue_seconds() * 1e3,
                h->total_seconds() * 1e3, h->plan_cache_hit() ? "hit" : "miss");
  }
  for (const WorkflowHandle& h : handles) {
    if (!h->result().ok() && h->state() != WorkflowState::kQueued) {
      std::fprintf(stderr, "%s: %s\n", h->spec().id.c_str(),
                   h->result().status().ToString().c_str());
    }
  }
  ServiceStats stats = service.stats();
  std::printf(
      "\n%llu submitted, %llu done, %llu failed, %llu rejected; "
      "plan cache %llu hit / %llu miss\n",
      (unsigned long long)stats.submitted, (unsigned long long)stats.completed,
      (unsigned long long)stats.failed, (unsigned long long)stats.rejected,
      (unsigned long long)stats.plan_cache_hits,
      (unsigned long long)stats.plan_cache_misses);
  std::printf("%d worker(s): %zu submissions in %.3f s = %.1f submissions/s\n",
              workers, handles.size(), elapsed,
              elapsed > 0 ? handles.size() / elapsed : 0.0);
  return stats.failed == 0 && stats.rejected == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> workflow_paths;
  std::optional<FrontendLanguage> language;
  ClusterConfig cluster = LocalCluster();
  std::vector<EngineKind> engines;
  std::vector<std::pair<std::string, std::string>> outputs;  // relation, file
  bool explain = false;
  int serve_workers = 0;  // 0 = one-shot mode
  int listen_port = -1;   // >= 0 = network server mode (0 picks a free port)
  int64_t dispatch_latency_ms = 0;
  int64_t keepalive_timeout_ms = 0;  // 0 = idle connections never reaped
  std::vector<std::pair<std::string, TenantQuota>> tenant_quotas;
  int repeat = 1;
  int64_t queue_capacity = 64;
  bool plan_cache = true;
  int64_t deadline_ms = 0;
  int64_t max_retries = 0;
  double fault_rate = 0;
  int64_t fault_seed = 0;
  bool failover = true;
  std::string trace_out;
  std::string history_file;
  bool dump_metrics = false;
  int num_shards = 0;      // >= 1 = in-process sharded one-shot mode
  PlacementPolicy placement = PlacementPolicy::kLocality;
  int shard_fault = -1;
  int64_t shard_fault_after = 0;
  int shard_of_k = -1;     // >= 0 = socket shard mode (--shard-of=K/M)
  int shard_of_m = 0;
  std::vector<PeerAddress> peer_addrs;
  bool peers_given = false;
  PipelineMode pipeline_mode = PipelineMode::kOff;
  bool incremental = false;
  std::string partitioner;         // "" = planner default (auto)
  double replan_threshold = -1;    // < 0 = off (planner default)

  // Input relations are parsed now but loaded only after the storage layer
  // (plain, sharded, or peer) is chosen.
  struct CliInput {
    std::string name;
    std::string file;
    Schema schema;
  };
  std::vector<CliInput> inputs;
  std::vector<std::pair<std::string, double>> scales;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (arg == "--explain") {
      explain = true;
      continue;
    }
    if (StartsWith(arg, "--serve=")) {
      auto n = ParseInt64(arg.substr(8));
      if (!n.has_value() || *n < 1) {
        return Fail("--serve needs a worker count >= 1");
      }
      serve_workers = static_cast<int>(*n);
      continue;
    }
    if (StartsWith(arg, "--listen=")) {
      auto n = ParseInt64(arg.substr(9));
      if (!n.has_value() || *n < 0 || *n > 65535) {
        return Fail("--listen needs a port in [0, 65535] (0 = ephemeral)");
      }
      listen_port = static_cast<int>(*n);
      continue;
    }
    if (StartsWith(arg, "--quota=")) {
      auto quota = ParseQuotaSpec(arg.substr(8));
      if (!quota.has_value()) {
        return Fail("--quota needs TENANT=WEIGHT[:MAX_QUEUED[:MAX_INFLIGHT]]");
      }
      tenant_quotas.push_back(std::move(*quota));
      continue;
    }
    if (StartsWith(arg, "--keepalive-timeout-ms=")) {
      auto n = ParseInt64(arg.substr(23));
      if (!n.has_value() || *n < 0) {
        return Fail("--keepalive-timeout-ms needs a timeout >= 0 (0 = off)");
      }
      keepalive_timeout_ms = *n;
      continue;
    }
    if (StartsWith(arg, "--dispatch-latency-ms=")) {
      auto n = ParseInt64(arg.substr(22));
      if (!n.has_value() || *n < 0) {
        return Fail("--dispatch-latency-ms needs a wait >= 0");
      }
      dispatch_latency_ms = *n;
      continue;
    }
    if (StartsWith(arg, "--repeat=")) {
      auto n = ParseInt64(arg.substr(9));
      if (!n.has_value() || *n < 1) {
        return Fail("--repeat needs a count >= 1");
      }
      repeat = static_cast<int>(*n);
      continue;
    }
    if (StartsWith(arg, "--queue=")) {
      auto n = ParseInt64(arg.substr(8));
      if (!n.has_value() || *n < 1) {
        return Fail("--queue needs a capacity >= 1");
      }
      queue_capacity = *n;
      continue;
    }
    if (arg == "--no-plan-cache") {
      plan_cache = false;
      continue;
    }
    if (StartsWith(arg, "--deadline-ms=")) {
      auto n = ParseInt64(arg.substr(14));
      if (!n.has_value() || *n < 1) {
        return Fail("--deadline-ms needs a budget >= 1");
      }
      deadline_ms = *n;
      continue;
    }
    if (StartsWith(arg, "--max-retries=")) {
      auto n = ParseInt64(arg.substr(14));
      if (!n.has_value() || *n < 0) {
        return Fail("--max-retries needs a count >= 0");
      }
      max_retries = *n;
      continue;
    }
    if (StartsWith(arg, "--fault-rate=")) {
      auto f = ParseDouble(arg.substr(13));
      if (!f.has_value() || *f < 0 || *f > 1) {
        return Fail("--fault-rate needs a probability in [0, 1]");
      }
      fault_rate = *f;
      continue;
    }
    if (StartsWith(arg, "--fault-seed=")) {
      auto n = ParseInt64(arg.substr(13));
      if (!n.has_value()) {
        return Fail("--fault-seed needs an integer");
      }
      fault_seed = *n;
      continue;
    }
    if (arg == "--no-failover") {
      failover = false;
      continue;
    }
    if (StartsWith(arg, "--trace-out=")) {
      trace_out = arg.substr(12);
      if (trace_out.empty()) {
        return Fail("--trace-out needs a file name");
      }
      continue;
    }
    if (StartsWith(arg, "--history-file=")) {
      history_file = arg.substr(15);
      if (history_file.empty()) {
        return Fail("--history-file needs a file name");
      }
      continue;
    }
    if (arg == "--metrics") {
      dump_metrics = true;
      continue;
    }
    if (StartsWith(arg, "--threads=")) {
      auto n = ParseInt64(arg.substr(10));
      if (!n.has_value() || *n < 1) {
        return Fail("--threads needs a thread count >= 1");
      }
      SetParallelThreads(static_cast<int>(*n));
      continue;
    }
    if (StartsWith(arg, "--language=")) {
      language = LanguageFromName(arg.substr(11));
      if (!language.has_value()) {
        return Fail("unknown language in " + arg);
      }
      continue;
    }
    if (StartsWith(arg, "--cluster=")) {
      std::string spec = arg.substr(10);
      if (spec == "local") {
        cluster = LocalCluster();
      } else if (spec == "single") {
        cluster = SingleMachine();
      } else if (StartsWith(spec, "ec2:")) {
        auto n = ParseInt64(spec.substr(4));
        if (!n.has_value() || *n < 1) {
          return Fail("bad node count in " + arg);
        }
        cluster = Ec2Cluster(static_cast<int>(*n));
      } else {
        return Fail("unknown cluster '" + spec + "'");
      }
      continue;
    }
    if (StartsWith(arg, "--engines=")) {
      for (const std::string& name : StrSplit(arg.substr(10), ',')) {
        auto kind = EngineFromName(name);
        if (!kind.has_value()) {
          return Fail("unknown engine '" + name + "'");
        }
        engines.push_back(*kind);
      }
      continue;
    }
    if (StartsWith(arg, "--input=")) {
      std::string spec = arg.substr(8);
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return Fail("--input needs NAME=FILE:SCHEMA");
      }
      std::string name = spec.substr(0, eq);
      std::string rest = spec.substr(eq + 1);
      size_t colon = rest.find(':');
      if (colon == std::string::npos) {
        return Fail("--input needs a schema after the file name");
      }
      std::string file = rest.substr(0, colon);
      auto schema = ParseSchemaSpec(rest.substr(colon + 1));
      if (!schema.has_value()) {
        return Fail("bad schema spec in " + arg);
      }
      inputs.push_back({std::move(name), std::move(file), std::move(*schema)});
      continue;
    }
    if (StartsWith(arg, "--pipeline=")) {
      std::string mode = arg.substr(11);
      if (mode == "off") {
        pipeline_mode = PipelineMode::kOff;
      } else if (mode == "auto") {
        pipeline_mode = PipelineMode::kAuto;
      } else if (mode == "force") {
        pipeline_mode = PipelineMode::kForce;
      } else {
        return Fail("--pipeline needs off, auto or force");
      }
      continue;
    }
    if (arg == "--incremental") {
      incremental = true;
      continue;
    }
    if (StartsWith(arg, "--partitioner=")) {
      partitioner = arg.substr(14);
      if (!PartitionStrategyKindFromName(partitioner).has_value() &&
          PartitionStrategyRegistry::Global().Find(partitioner) == nullptr) {
        std::string known;
        for (const std::string& name :
             PartitionStrategyRegistry::Global().Names()) {
          if (!known.empty()) known += "|";
          known += name;
        }
        return Fail("--partitioner needs one of " + known);
      }
      continue;
    }
    if (StartsWith(arg, "--replan-threshold=")) {
      auto r = ParseDouble(arg.substr(19));
      if (!r.has_value() || *r < 0) {
        return Fail("--replan-threshold needs a ratio >= 0 (0 = off)");
      }
      replan_threshold = *r;
      continue;
    }
    if (StartsWith(arg, "--shards=")) {
      auto n = ParseInt64(arg.substr(9));
      if (!n.has_value() || *n < 1 || *n > 64) {
        return Fail("--shards needs a shard count in [1, 64]");
      }
      num_shards = static_cast<int>(*n);
      continue;
    }
    if (StartsWith(arg, "--placement=")) {
      auto policy = PlacementPolicyFromName(arg.substr(12));
      if (!policy.has_value()) {
        return Fail("--placement needs locality or random");
      }
      placement = *policy;
      continue;
    }
    if (StartsWith(arg, "--shard-fault=")) {
      std::string spec = arg.substr(14);
      size_t at = spec.find('@');
      auto shard = ParseInt64(spec.substr(0, at));
      std::optional<int64_t> after;
      if (at != std::string::npos) after = ParseInt64(spec.substr(at + 1));
      if (!shard.has_value() || *shard < 0 || !after.has_value() ||
          *after < 0) {
        return Fail("--shard-fault needs SHARD@DISPATCHES");
      }
      shard_fault = static_cast<int>(*shard);
      shard_fault_after = *after;
      continue;
    }
    if (StartsWith(arg, "--shard-of=")) {
      std::string spec = arg.substr(11);
      size_t slash = spec.find('/');
      auto k = ParseInt64(spec.substr(0, slash));
      std::optional<int64_t> m;
      if (slash != std::string::npos) m = ParseInt64(spec.substr(slash + 1));
      if (!k.has_value() || !m.has_value() || *m < 1 || *k < 0 || *k >= *m) {
        return Fail("--shard-of needs K/M with 0 <= K < M");
      }
      shard_of_k = static_cast<int>(*k);
      shard_of_m = static_cast<int>(*m);
      continue;
    }
    if (StartsWith(arg, "--peers=")) {
      auto parsed = ParsePeerList(arg.substr(8));
      if (!parsed.has_value()) {
        return Fail("--peers needs host:port,host:port,... ('-' = own slot)");
      }
      peer_addrs = std::move(*parsed);
      peers_given = true;
      continue;
    }
    if (StartsWith(arg, "--scale=")) {
      std::string spec = arg.substr(8);
      size_t eq = spec.find('=');
      auto factor = eq == std::string::npos
                        ? std::nullopt
                        : ParseDouble(spec.substr(eq + 1));
      if (!factor.has_value() || *factor <= 0) {
        return Fail("--scale needs NAME=FACTOR");
      }
      scales.emplace_back(spec.substr(0, eq), *factor);
      continue;
    }
    if (StartsWith(arg, "--output=")) {
      std::string spec = arg.substr(9);
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return Fail("--output needs NAME=FILE");
      }
      outputs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      continue;
    }
    if (StartsWith(arg, "--")) {
      PrintUsage();
      return Fail("unknown option " + arg);
    }
    workflow_paths.push_back(arg);
  }

  if (workflow_paths.empty() && listen_port < 0) {
    PrintUsage();
    return Fail("no workflow file given");
  }
  if (listen_port < 0 && serve_workers == 0 && workflow_paths.size() > 1) {
    return Fail("multiple workflow files need --serve=N");
  }
  if (num_shards > 0 && shard_of_k >= 0) {
    return Fail("--shards (in-process) and --shard-of (socket) are exclusive");
  }
  if (num_shards > 0 && (serve_workers > 0 || listen_port >= 0)) {
    return Fail("--shards is a one-shot mode; use --shard-of for servers");
  }
  if (shard_of_k >= 0) {
    if (listen_port < 0) {
      return Fail("--shard-of needs --listen=PORT (peers fetch relations "
                  "over the front door)");
    }
    if (!peers_given || static_cast<int>(peer_addrs.size()) != shard_of_m) {
      return Fail("--shard-of=K/M needs --peers with exactly M entries");
    }
  } else if (peers_given) {
    return Fail("--peers only makes sense with --shard-of=K/M");
  }

  // Stand up the chosen storage layer, then load inputs into it.
  Dfs plain_dfs;
  std::unique_ptr<ShardedDfs> sharded_dfs;
  std::unique_ptr<PeerDfs> peer_dfs;
  Dfs* dfs = &plain_dfs;
  if (num_shards > 0) {
    sharded_dfs = std::make_unique<ShardedDfs>(num_shards);
    dfs = sharded_dfs.get();
  } else if (shard_of_k >= 0) {
    peer_dfs = std::make_unique<PeerDfs>(shard_of_k, shard_of_m,
                                         std::move(peer_addrs));
    dfs = peer_dfs.get();
  }

  for (const auto& input : inputs) {
    if (peer_dfs != nullptr && peer_dfs->OwnerOf(input.name) != shard_of_k) {
      continue;  // another process in the cluster owns (and loads) this one
    }
    auto table = LoadCsvFile(input.file, input.schema);
    if (!table.ok()) {
      return Fail("loading " + input.file + ": " + table.status().ToString());
    }
    dfs->Put(input.name, std::make_shared<Table>(std::move(table).value()));
  }

  // Apply nominal scales.
  for (const auto& [name, factor] : scales) {
    if (peer_dfs != nullptr && peer_dfs->OwnerOf(name) != shard_of_k) {
      continue;  // the owning process applies this relation's scale
    }
    auto table = dfs->Get(name);
    if (!table.ok()) {
      return Fail("--scale names unknown input '" + name + "'");
    }
    auto scaled = std::make_shared<Table>(**table);
    scaled->set_scale(factor);
    dfs->Put(name, scaled);
  }

  HistoryStore history;
  if (!history_file.empty()) {
    Status loaded = history.LoadFrom(history_file);
    if (!loaded.ok()) {
      return Fail("loading " + history_file + ": " + loaded.ToString());
    }
  }
  RuntimeHistory runtime_history;
  if (!trace_out.empty()) {
    Tracer::Global().Enable(true);
  }

  // Observability epilogue shared by both modes: flush the trace, persist
  // history, dump metrics.
  auto epilogue = [&](int exit_code) {
    if (!trace_out.empty()) {
      Status written = Tracer::Global().WriteChromeTrace(trace_out);
      if (!written.ok()) {
        return Fail(written.ToString());
      }
      std::printf("wrote %zu trace span(s) to %s\n",
                  Tracer::Global().span_count(), trace_out.c_str());
    }
    if (!history_file.empty()) {
      Status saved = history.SaveTo(history_file);
      if (!saved.ok()) {
        return Fail(saved.ToString());
      }
    }
    if (dump_metrics) {
      std::printf("--- metrics ---\n%s",
                  MetricsRegistry::Global().DumpText().c_str());
    }
    return exit_code;
  };

  RunOptions options;
  options.cluster = cluster;
  options.engines = engines;
  if (!history_file.empty()) {
    options.history = &history;
  }
  options.runtime_history = &runtime_history;
  options.deadline = std::chrono::milliseconds(deadline_ms);
  options.retry.max_attempts = static_cast<int>(max_retries) + 1;
  options.retry.enable_failover = failover;
  options.fault_rate = fault_rate;
  options.fault_seed = static_cast<uint64_t>(fault_seed);
  options.pipeline = pipeline_mode;
  options.incremental = incremental;
  if (!partitioner.empty()) {
    auto kind = PartitionStrategyKindFromName(partitioner);
    if (kind.has_value()) {
      options.planner.strategy = *kind;
      options.planner.custom_strategy.clear();
    } else {
      options.planner.custom_strategy = partitioner;  // registry extension
    }
  }
  if (replan_threshold >= 0) {
    options.planner.replan_threshold = replan_threshold;
  }
  // One process, one fingerprint store: one-shot runs record into it (a
  // --repeat'd or resubmitted workflow in --serve/--listen mode instead uses
  // the service-owned store, plumbed when options.fingerprints stays null).
  FingerprintStore fingerprints;

  if (listen_port >= 0) {
    if (peer_dfs != nullptr) {
      std::printf("musketeer: serving shard %d of %d (%s partitioning)\n",
                  shard_of_k, shard_of_m,
                  ShardingStrategyName(ShardingStrategy::kConsistentHash));
    }
    return epilogue(RunListen(dfs, workflow_paths, language, options,
                              serve_workers > 0 ? serve_workers : 4,
                              static_cast<uint16_t>(listen_port),
                              static_cast<size_t>(queue_capacity), plan_cache,
                              std::chrono::milliseconds(dispatch_latency_ms),
                              std::chrono::milliseconds(keepalive_timeout_ms),
                              tenant_quotas, &history, &runtime_history));
  }
  if (serve_workers > 0) {
    return epilogue(RunServe(dfs, workflow_paths, language, options,
                             serve_workers, repeat,
                             static_cast<size_t>(queue_capacity), plan_cache,
                             &history, &runtime_history));
  }

  // One-shot from here on: record fingerprints into the process-local store
  // so an --incremental run of a multi-sink workflow can reuse within itself.
  options.fingerprints = &fingerprints;

  const std::string& workflow_path = workflow_paths[0];
  auto loaded = LoadWorkflowFile(workflow_path, language);
  if (!loaded.has_value()) {
    return Fail("cannot load workflow '" + workflow_path +
                "' (missing file, or pass --language=)");
  }
  WorkflowSpec workflow = std::move(*loaded);

  Musketeer m(dfs);

  if (explain) {
    auto dag = m.Lower(workflow, /*optimize=*/true);
    if (!dag.ok()) {
      return Fail(dag.status().ToString());
    }
    std::printf("--- optimized IR (%d operators) ---\n%s\n",
                (*dag)->TotalOperatorCount(), (*dag)->DebugString().c_str());
  }

  // Sharded one-shot: the plan fans out across the coordinator's shards
  // instead of executing inline. Results are Table::Identical either way.
  std::unique_ptr<ShardCoordinator> coordinator;
  if (sharded_dfs != nullptr) {
    CoordinatorConfig coord_config;
    coord_config.placement = placement;
    coord_config.fault_shard = shard_fault;
    coord_config.fault_after_dispatches = static_cast<int>(shard_fault_after);
    coord_config.default_options = options;
    coordinator =
        std::make_unique<ShardCoordinator>(sharded_dfs.get(), coord_config);
  }

  auto result = coordinator != nullptr ? coordinator->Run(workflow, options)
                                       : m.Run(workflow, options);
  if (!result.ok()) {
    return Fail(result.status().ToString());
  }

  std::printf("%zu job(s), %.1f simulated seconds on %s (%s partitioner%s):\n",
              result->plans.size(), result->makespan, cluster.name.c_str(),
              result->partition_strategy.c_str(),
              result->replans > 0
                  ? (", " + std::to_string(result->replans) + " replan(s)")
                        .c_str()
                  : "");
  for (size_t i = 0; i < result->plans.size(); ++i) {
    std::printf("  job %zu: %s (%.1f s)\n", i + 1,
                result->plans[i].name.c_str(),
                result->job_results[i].makespan);
  }
  if (result->pipelined_edges > 0 || result->jobs_reused > 0) {
    std::printf("streaming: %d pipelined edge(s), %llu batch(es)/%.2f MB "
                "over channels, %d job(s) reused\n",
                result->pipelined_edges,
                (unsigned long long)result->stream_batches,
                result->stream_bytes / kMB, result->jobs_reused);
  }
  if (result->total_faults_injected > 0 || result->total_retries > 0 ||
      result->total_failovers > 0) {
    std::printf("fault tolerance: %d injected fault(s), %d retry(ies), "
                "%d failover(s)\n",
                result->total_faults_injected, result->total_retries,
                result->total_failovers);
    for (const JobRecovery& rec : result->recovery) {
      if (rec.attempts > 1 || rec.failovers > 0) {
        std::printf("  %s: %d attempt(s), %s -> %s\n", rec.job.c_str(),
                    rec.attempts, EngineKindName(rec.planned_engine),
                    EngineKindName(rec.final_engine));
      }
    }
  }
  if (coordinator != nullptr) {
    const CoordinatorStats cs = coordinator->stats();
    std::string per_shard;
    for (uint64_t jobs : cs.jobs_per_shard) {
      if (!per_shard.empty()) per_shard += " ";
      per_shard += std::to_string(jobs);
    }
    std::printf("sharding: %d shard(s), jobs [%s], placement %s, "
                "locality %llu/%llu\n",
                coordinator->num_shards(), per_shard.c_str(),
                PlacementPolicyName(placement),
                (unsigned long long)cs.locality_hits,
                (unsigned long long)cs.placements);
    std::printf("          %llu cross-shard fetch(es), %.2f MB at "
                "%.1f MB/s measured\n",
                (unsigned long long)cs.remote_fetches,
                cs.remote_bytes_fetched / kMB, cs.measured_remote_mbps);
    if (cs.shard_failovers > 0) {
      std::printf("          %llu shard failover(s)\n",
                  (unsigned long long)cs.shard_failovers);
    }
  }
  if (explain) {
    for (const JobPlan& plan : result->plans) {
      std::printf("\n--- %s ---\n%s", plan.name.c_str(),
                  plan.generated_code.c_str());
    }
  }

  for (const auto& [relation, file] : outputs) {
    auto table = dfs->Get(relation);
    if (!table.ok()) {
      return Fail("workflow produced no relation '" + relation + "'");
    }
    Status saved = SaveCsvFile(**table, file);
    if (!saved.ok()) {
      return Fail(saved.ToString());
    }
    std::printf("wrote %s (%zu rows) to %s\n", relation.c_str(),
                (*table)->num_rows(), file.c_str());
  }

  // Without --output, show the sink relations inline.
  if (outputs.empty()) {
    for (const auto& [name, table] : result->outputs) {
      std::printf("\n%s:\n%s", name.c_str(), table->DebugString(10).c_str());
    }
  }
  return epilogue(0);
}
