// Figure 9: the hybrid cross-community PageRank workflow (INTERSECT two
// communities' edge sets, then PageRank the common sub-graph) under
// different system combinations, on the local cluster (§6.3).
// Expected shape: combinations of a general-purpose batch engine with a
// specialized graph engine rival the best single system, and the manually
// fused Lindi & GraphLINQ combination (both on Naiad, no DFS crossing
// between batch and iterative parts) does best.

#include "bench/bench_common.h"

#include "src/opt/passes.h"

namespace musketeer {
namespace {

WorkflowSpec HybridWorkflow() {
  return WorkflowSpec{.id = "cross-community-pagerank",
                      .language = FrontendLanguage::kBeer,
                      .source = CrossCommunityPageRankBeer(5)};
}

void SeedDfs(Dfs* dfs, const CommunityPair& communities) {
  dfs->Put("lj_edges", communities.a.edges);
  dfs->Put("web_edges", communities.b.edges);
}

double RunCombo(const CommunityPair& communities,
                const std::vector<EngineKind>& engines,
                CodeGenOptions::Flavor flavor = CodeGenOptions::Flavor::kMusketeer) {
  Dfs dfs;
  SeedDfs(&dfs, communities);
  RunOptions options;
  options.cluster = LocalCluster();
  options.engines = engines;
  options.codegen.flavor = flavor;
  return MustRun(&dfs, HybridWorkflow(), options).makespan;
}

// The paper's "Lindi & GraphLINQ" bar: both halves run inside one Naiad
// job, so the intermediate graph never crosses the DFS. Musketeer cannot
// generate this fused combination automatically (§6.3 "future work"); like
// the authors, we build the fused job by hand and execute it directly.
double RunFusedNaiad(const CommunityPair& communities) {
  Dfs dfs;
  SeedDfs(&dfs, communities);
  Musketeer m(&dfs);
  auto dag = m.Lower(HybridWorkflow(), /*optimize=*/true);
  if (!dag.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", dag.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<int> ops;
  for (const auto& n : (*dag)->nodes()) {
    if (n.kind != OpKind::kInput) {
      ops.push_back(n.id);
    }
  }
  auto extraction = ExtractJobDag(**dag, ops);
  if (!extraction.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", extraction.status().ToString().c_str());
    std::exit(1);
  }
  JobPlan plan;
  plan.engine = EngineKind::kNaiad;
  plan.name = "Naiad:lindi+graphlinq(fused)";
  plan.dag = extraction->dag;
  plan.inputs = extraction->inputs;
  plan.outputs = extraction->outputs;
  plan.while_mode = WhileExec::kVertexRuntime;  // GraphLINQ runs the loop
  plan.graph_path = true;
  plan.quirks.process_efficiency = 0.95;
  auto result = ExecuteJob(plan, LocalCluster(), &dfs, ExecutionContext{});
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return result->makespan;
}

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;
  CommunityPair communities = MakeOverlappingCommunities();

  PrintHeader("Figure 9: cross-community PageRank under engine combinations",
              "local cluster; LiveJournal (4.8M/69M) x synthetic web community "
              "(5.8M/82M)");
  PrintRow({"combination", "makespan (s)"});

  struct Combo {
    const char* label;
    std::vector<EngineKind> engines;
  };
  const Combo kCombos[] = {
      {"Hadoop only", {EngineKind::kHadoop}},
      {"Spark only", {EngineKind::kSpark}},
      {"Hadoop + PowerGraph", {EngineKind::kHadoop, EngineKind::kPowerGraph}},
      {"Hadoop + GraphChi", {EngineKind::kHadoop, EngineKind::kGraphChi}},
      {"Spark + PowerGraph", {EngineKind::kSpark, EngineKind::kPowerGraph}},
  };
  // "Lindi only": the whole workflow in the Lindi front-end's own Naiad
  // code (single-threaded I/O, non-associative GROUP BY, no GraphLINQ).
  PrintRow({"Lindi only (native)",
            Fmt(RunCombo(communities, {EngineKind::kNaiad},
                         CodeGenOptions::Flavor::kNativeLindi))});
  for (const Combo& combo : kCombos) {
    PrintRow({combo.label, Fmt(RunCombo(communities, combo.engines))});
  }
  PrintRow({"Lindi & GraphLINQ (fused)", Fmt(RunFusedNaiad(communities))});

  std::printf("\nMusketeer free choice over all engines:\n");
  Dfs dfs;
  dfs.Put("lj_edges", communities.a.edges);
  dfs.Put("web_edges", communities.b.edges);
  RunOptions options;
  options.cluster = LocalCluster();
  RunResult result = MustRun(&dfs, HybridWorkflow(), options);
  PrintRow({"Musketeer(" + EnginesUsed(result) + ")", Fmt(result.makespan)});
  return 0;
}
