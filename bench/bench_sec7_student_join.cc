// §7 "Benefit over hand-coded jobs": the paper asked eight CS undergraduates
// to implement the simple JOIN workflow for Hadoop; the best student run took
// 608s vs. 223s for the Musketeer-generated job. The students' plans split
// the work into extra MapReduce stages and re-scanned the data; we model the
// "average programmer" plan as the unmerged, scan-per-operator variant of
// the same workflow, and compare it to Musketeer's merged, scan-shared job.

#include "bench/bench_common.h"

namespace musketeer {
namespace {

double RunJoin(bool student_style) {
  GraphDataset lj = LiveJournalGraph();
  // Larger symmetric-ish join so per-job overheads and scans matter
  // (the student experiment's data set was sized to take minutes).
  auto big_edges = std::make_shared<Table>(*lj.edges);
  big_edges->set_scale(lj.edges->scale() * 10);
  Dfs dfs;
  dfs.Put("vertices_rel", lj.vertices);
  dfs.Put("edges_rel", big_edges);

  // The student plans pre-processed both inputs with full copy passes
  // (tagging/re-formatting jobs) before the join; Musketeer folds
  // everything into the join's map phase.
  WorkflowSpec wf;
  wf.id = "student-join";
  wf.language = FrontendLanguage::kBeer;
  RunOptions options = ForEngine(EngineKind::kHadoop, LocalCluster());
  if (student_style) {
    wf.source = R"(
      verts = SELECT id, vertex_value FROM vertices_rel;
      tagged_edges = MAP src, dst FROM edges_rel;
      joined = JOIN verts, tagged_edges ON verts.id = tagged_edges.src;
    )";
    options.planner.enable_merging = false;
    options.codegen.shared_scans = false;
    options.codegen.flavor = CodeGenOptions::Flavor::kNativeHive;  // generic code
  } else {
    wf.source = R"(
      verts = SELECT id, vertex_value FROM vertices_rel;
      joined = JOIN verts, edges_rel ON verts.id = edges_rel.src;
    )";
  }
  return MustRun(&dfs, wf, options).makespan;
}

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;
  PrintHeader("Section 7: Musketeer vs average-programmer Hadoop job",
              "paper: best of 8 student implementations 608s, Musketeer 223s");
  double student = RunJoin(/*student_style=*/true);
  double musketeer = RunJoin(/*student_style=*/false);
  PrintRow({"configuration", "makespan (s)"});
  PrintRow({"student-style Hadoop job", Fmt(student)});
  PrintRow({"Musketeer-generated job", Fmt(musketeer)});
  std::printf("speedup: %.2fx (paper: 2.7x)\n", student / musketeer);
  return 0;
}
