// Shard scaling and locality placement (PR 8, beyond the paper).
//
// Runs the nine evaluation workflows through the ShardCoordinator at M = 1,
// 2, 3 shards and measures what sharding costs and what locality-aware
// placement buys:
//
//   - wall_ms: wall clock for the whole suite (min over reps, so a 1-core CI
//     host's scheduling noise does not masquerade as a regression);
//   - placement accounting: locality hit rate and the cross-shard bytes the
//     placer agreed to move at decision time;
//   - DFS fetch accounting: measured cross-shard fetches/bytes and the
//     observed transfer rate the cost model's ShardLocality term charges.
//
// The locality arm is compared against seeded-random placement (same
// workflows, same shards, placement blind to data location). Three
// enforced acceptance criteria, exit 1 on violation:
//
//   1. every run's outputs are bit-identical to the unsharded baseline
//      (sharding must be invisible in the bits);
//   2. locality placement achieves >= 80% byte-optimal placements and moves
//      fewer cross-shard bytes than random at M = 3;
//   3. no wall-clock regression: the 3-shard suite stays within slack of the
//      1-shard suite (the shards are in-process; coordination is cheap).
//
// Results land in BENCH_shard_scaling.json for plotting.

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/service/shard_coordinator.h"
#include "tests/workflow_setups.h"

namespace musketeer {
namespace {

struct SuiteResult {
  double wall_ms = 0;
  uint64_t placements = 0;
  uint64_t locality_hits = 0;
  Bytes placed_cross_shard_bytes = 0;
  uint64_t remote_fetches = 0;
  Bytes remote_bytes_fetched = 0;
  double measured_remote_mbps = 0;
  bool identical = true;
};

RunOptions SuiteOptions() {
  RunOptions options;
  options.cluster = Ec2Cluster(16);
  return options;
}

// Unsharded reference outputs, one table per workflow.
std::vector<TablePtr> Baseline() {
  std::vector<TablePtr> outputs;
  for (Wf wf : kAllWorkflows) {
    WfSetup setup = MakeSetup(wf);
    Dfs dfs;
    for (const auto& [name, table] : setup.inputs) {
      dfs.Put(name, table);
    }
    RunResult result = MustRun(&dfs, setup.workflow, SuiteOptions());
    outputs.push_back(result.outputs.at(setup.result_relation));
  }
  return outputs;
}

// One pass of the whole suite at `shards` under `policy`; outputs checked
// bit-for-bit against the baseline.
SuiteResult RunSuite(int shards, PlacementPolicy policy,
                     const std::vector<TablePtr>& baseline) {
  SuiteResult out;
  const auto start = std::chrono::steady_clock::now();
  size_t wf_index = 0;
  for (Wf wf : kAllWorkflows) {
    WfSetup setup = MakeSetup(wf);
    ShardedDfs dfs(shards);
    for (const auto& [name, table] : setup.inputs) {
      dfs.Put(name, table);
    }
    CoordinatorConfig config;
    config.placement = policy;
    config.placement_seed = 42;
    ShardCoordinator coordinator(&dfs, config);
    auto result = coordinator.Run(setup.workflow, SuiteOptions());
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: %s at M=%d failed: %s\n", WfName(wf),
                   shards, result.status().ToString().c_str());
      std::exit(1);
    }
    auto it = result->outputs.find(setup.result_relation);
    if (it == result->outputs.end() ||
        !Table::Identical(*baseline[wf_index], *it->second)) {
      out.identical = false;
      std::fprintf(stderr, "DIVERGED: %s at M=%d policy=%s\n", WfName(wf),
                   shards, PlacementPolicyName(policy));
    }
    CoordinatorStats stats = coordinator.stats();
    out.placements += stats.placements;
    out.locality_hits += stats.locality_hits;
    out.placed_cross_shard_bytes += stats.placed_cross_shard_bytes;
    out.remote_fetches += stats.remote_fetches;
    out.remote_bytes_fetched += stats.remote_bytes_fetched;
    out.measured_remote_mbps = stats.measured_remote_mbps;
    ++wf_index;
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

double HitRate(const SuiteResult& r) {
  return r.placements == 0 ? 1.0
                           : static_cast<double>(r.locality_hits) /
                                 static_cast<double>(r.placements);
}

int RunAll() {
  PrintHeader("Shard scaling (9-workflow suite)",
              "wall_ms is min over reps; bytes are nominal MB");

  const std::vector<TablePtr> baseline = Baseline();

  struct Arm {
    int shards;
    PlacementPolicy policy;
    SuiteResult result;
  };
  std::vector<Arm> arms = {
      {1, PlacementPolicy::kLocality, {}},
      {2, PlacementPolicy::kLocality, {}},
      {3, PlacementPolicy::kLocality, {}},
      {3, PlacementPolicy::kRandom, {}},
  };

  constexpr int kReps = 3;
  for (Arm& arm : arms) {
    for (int rep = 0; rep < kReps; ++rep) {
      SuiteResult r = RunSuite(arm.shards, arm.policy, baseline);
      if (rep == 0) {
        arm.result = r;  // accounting is deterministic; keep the first
      } else {
        arm.result.wall_ms = std::min(arm.result.wall_ms, r.wall_ms);
      }
      if (!r.identical) {
        arm.result.identical = false;
      }
    }
  }

  PrintRow({"shards", "policy", "wall_ms", "hit_rate", "placed_cross_MB",
            "fetches", "fetched_MB", "rate_MBps"});
  for (const Arm& arm : arms) {
    const SuiteResult& r = arm.result;
    PrintRow({std::to_string(arm.shards), PlacementPolicyName(arm.policy),
              Fmt(r.wall_ms, "%.1f"), Fmt(HitRate(r), "%.3f"),
              Fmt(r.placed_cross_shard_bytes / kMB, "%.1f"),
              std::to_string(r.remote_fetches),
              Fmt(r.remote_bytes_fetched / kMB, "%.1f"),
              Fmt(r.measured_remote_mbps, "%.0f")});
  }

  const std::string json_path = "BENCH_shard_scaling.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < arms.size(); ++i) {
    const Arm& arm = arms[i];
    const SuiteResult& r = arm.result;
    std::fprintf(
        f,
        "  {\"shards\": %d, \"policy\": \"%s\", \"workflows\": 9, "
        "\"wall_ms\": %.1f, \"placements\": %llu, \"locality_hits\": %llu, "
        "\"locality_hit_rate\": %.3f, \"placed_cross_shard_mb\": %.2f, "
        "\"remote_fetches\": %llu, \"remote_bytes_mb\": %.2f, "
        "\"measured_remote_mbps\": %.1f, \"identical\": %s}%s\n",
        arm.shards, PlacementPolicyName(arm.policy), r.wall_ms,
        static_cast<unsigned long long>(r.placements),
        static_cast<unsigned long long>(r.locality_hits), HitRate(r),
        r.placed_cross_shard_bytes / kMB,
        static_cast<unsigned long long>(r.remote_fetches),
        r.remote_bytes_fetched / kMB, r.measured_remote_mbps,
        r.identical ? "true" : "false", i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu records)\n", json_path.c_str(), arms.size());

  // ---- acceptance ----------------------------------------------------------
  bool ok = true;
  for (const Arm& arm : arms) {
    if (!arm.result.identical) {
      std::fprintf(stderr, "FATAL: outputs diverged at M=%d policy=%s\n",
                   arm.shards, PlacementPolicyName(arm.policy));
      ok = false;
    }
  }
  const Arm& one = arms[0];
  const Arm& locality3 = arms[2];
  const Arm& random3 = arms[3];
  if (HitRate(locality3.result) < 0.8) {
    std::fprintf(stderr, "FATAL: locality hit rate %.3f < 0.8 at M=3\n",
                 HitRate(locality3.result));
    ok = false;
  }
  if (locality3.result.placed_cross_shard_bytes >=
      random3.result.placed_cross_shard_bytes) {
    std::fprintf(stderr,
                 "FATAL: locality moved %.1f MB cross-shard, random %.1f MB "
                 "— locality is not winning\n",
                 locality3.result.placed_cross_shard_bytes / kMB,
                 random3.result.placed_cross_shard_bytes / kMB);
    ok = false;
  }
  // In-process shards re-run identical work; allow generous slack so a
  // 1-core CI host's noise does not fail the build, but catch a real
  // coordination-cost blowup.
  const double budget_ms = 1.6 * one.result.wall_ms + 250.0;
  if (locality3.result.wall_ms > budget_ms) {
    std::fprintf(stderr,
                 "FATAL: M=3 suite took %.1f ms vs %.1f ms at M=1 "
                 "(budget %.1f ms)\n",
                 locality3.result.wall_ms, one.result.wall_ms, budget_ms);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace musketeer

int main() { return musketeer::RunAll(); }
