// Table 1: the rate parameters of Musketeer's cost function, measured by the
// one-off calibration procedure (§5.2): PULL and PUSH are quantified with a
// "no-op" operator (a pass-through job whose only work is reading and
// writing), LOAD is the engine's data-preparation phase, and PROCESS is
// obtained by subtracting the estimated ingest/output stages from a
// compute-heavy job's runtime — exactly the procedure the paper describes.
// The measured numbers are checked against the configured engine profiles.

#include "bench/bench_common.h"

namespace musketeer {
namespace {

// Measures PULL+PUSH via a no-op (identity SELECT) job on `bytes` of input.
struct NoOpMeasurement {
  double seconds;
  Bytes bytes;
};

NoOpMeasurement RunNoOp(EngineKind engine, const ClusterConfig& cluster) {
  Bytes target = 8 * kGB;
  Dfs dfs;
  dfs.Put("lines", MakeAsciiLines(target, 1000, 3));
  WorkflowSpec wf{.id = "noop",
                  .language = FrontendLanguage::kBeer,
                  .source = "out = SELECT * FROM lines WHERE 1 = 1;\n"};
  RunResult result = MustRun(&dfs, wf, ForEngine(engine, cluster));
  return {result.makespan, target};
}

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;
  PrintHeader("Table 1: cost-function rate parameters (per node, MB/s)",
              "configured profile + no-op calibration on the local cluster");
  PrintRow({"engine", "PULL", "LOAD", "PROCESS", "PUSH", "job overhead (s)",
            "no-op job (s)"});
  ClusterConfig local = LocalCluster();
  for (EngineKind engine : kAllEngines) {
    const EngineRates& r = RatesFor(engine);
    // Graph-only engines cannot run relational no-op jobs at all — their
    // rates are calibrated from vertex-program runs instead.
    std::string noop_s = "-";
    if (!IsGraphOnlyEngine(engine)) {
      noop_s = Fmt(RunNoOp(engine, local).seconds);
    }
    PrintRow({EngineKindName(engine), Fmt(r.pull_mbps, "%.0f"),
              r.load_mbps > 0 ? Fmt(r.load_mbps, "%.0f") : std::string("-"),
              Fmt(r.process_mbps, "%.0f"), Fmt(r.push_mbps, "%.0f"),
              Fmt(r.job_overhead_s), noop_s});
  }
  std::printf(
      "\nNote: PowerGraph/GraphChi only execute vertex-centric programs; the\n"
      "LOAD column is their input sharding/transform phase (§5.2).\n");
  return 0;
}
