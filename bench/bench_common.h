// Shared helpers for the reproduction benchmarks (one binary per paper
// table/figure; see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// the recorded results).
//
// The makespan numbers these benchmarks print are *simulated* seconds from
// the engine models (DESIGN.md substitution #2); the DAG-partitioning
// benchmark (Fig. 13) measures real wall-clock time of the partitioning
// algorithms, exactly like the paper.

#ifndef MUSKETEER_BENCH_BENCH_COMMON_H_
#define MUSKETEER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/musketeer.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

namespace musketeer {

// Runs a workflow, aborting with a readable message on failure.
inline RunResult MustRun(Dfs* dfs, const WorkflowSpec& wf,
                         const RunOptions& options) {
  Musketeer m(dfs);
  auto result = m.Run(wf, options);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: workflow '%s' failed: %s\n", wf.id.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline RunOptions ForEngine(
    EngineKind engine, ClusterConfig cluster,
    CodeGenOptions::Flavor flavor = CodeGenOptions::Flavor::kMusketeer) {
  RunOptions options;
  options.cluster = std::move(cluster);
  options.engines = {engine};
  options.codegen.flavor = flavor;
  return options;
}

// Engines used in a run, e.g. "Hadoop+PowerGraph".
inline std::string EnginesUsed(const RunResult& result) {
  std::string out;
  EngineKind last = EngineKind::kHadoop;
  bool first = true;
  for (const JobPlan& plan : result.plans) {
    if (first || plan.engine != last) {
      if (!first) {
        out += "+";
      }
      out += EngineKindName(plan.engine);
      last = plan.engine;
      first = false;
    }
  }
  return out;
}

// ---- Table printing --------------------------------------------------------

inline void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) {
    std::printf("%s\n", note.c_str());
  }
}

inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%-24s", i == 0 ? "" : " ", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, const char* fmt = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

// ---- Machine-readable scaling records --------------------------------------

// Collects {op, rows, threads, wall_ms} measurements and writes them as a
// JSON array (e.g. BENCH_parallel_scaling.json) so scaling plots can be
// produced without scraping stdout.
class BenchJsonWriter {
 public:
  void Add(const std::string& op, size_t rows, int threads, double wall_ms) {
    records_.push_back(Record{op, rows, threads, wall_ms});
  }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "  {\"op\": \"%s\", \"rows\": %zu, \"threads\": %d, "
                   "\"wall_ms\": %.3f}%s\n",
                   r.op.c_str(), r.rows, r.threads, r.wall_ms,
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    return std::fclose(f) == 0;
  }

 private:
  struct Record {
    std::string op;
    size_t rows;
    int threads;
    double wall_ms;
  };
  std::vector<Record> records_;
};

}  // namespace musketeer

#endif  // MUSKETEER_BENCH_BENCH_COMMON_H_
