// Figure 2: query-processing micro-benchmarks on the seven-node local
// cluster (§2.1).
//  (a) PROJECT: extract one column of a two-column ASCII input, 128 MB-32 GB.
//  (b) JOIN: an asymmetric join (LiveJournal vertices x edges) and a large
//      symmetric join (two 39M-row uniform tables).
// Expected shape: Metis wins small inputs; Hadoop wins large scans; Spark
// pays its RDD load on scan-once data; native Lindi is throttled by
// single-threaded I/O; serial C wins the small asymmetric join while Hadoop
// wins the big symmetric one.

#include "bench/bench_common.h"

namespace musketeer {
namespace {

struct System {
  const char* label;
  EngineKind engine;
  CodeGenOptions::Flavor flavor;
};

const System kProjectSystems[] = {
    {"Metis", EngineKind::kMetis, CodeGenOptions::Flavor::kMusketeer},
    {"Hadoop", EngineKind::kHadoop, CodeGenOptions::Flavor::kMusketeer},
    {"Spark", EngineKind::kSpark, CodeGenOptions::Flavor::kMusketeer},
    {"Hive(native)", EngineKind::kHadoop, CodeGenOptions::Flavor::kNativeHive},
    {"Lindi(native)", EngineKind::kNaiad, CodeGenOptions::Flavor::kNativeLindi},
};

void RunProject() {
  PrintHeader("Figure 2a: PROJECT makespan vs input size (local cluster)",
              "columns: input size; one row per system; values = makespan (s)");
  const double kSizesMb[] = {128, 512, 2048, 8192, 32768};

  std::vector<std::string> head{"system"};
  for (double mb : kSizesMb) {
    head.push_back(Fmt(mb / 1024.0, "%.2f GB"));
  }
  PrintRow(head);

  for (const System& sys : kProjectSystems) {
    std::vector<std::string> row{sys.label};
    for (double mb : kSizesMb) {
      Dfs dfs;
      dfs.Put("lines", MakeAsciiLines(mb * kMB, 2000, 17));
      WorkflowSpec wf{.id = "project-micro",
                      .language = FrontendLanguage::kBeer,
                      .source = ProjectBeer()};
      RunResult result =
          MustRun(&dfs, wf, ForEngine(sys.engine, LocalCluster(), sys.flavor));
      row.push_back(Fmt(result.makespan));
    }
    PrintRow(row);
  }
}

const System kJoinSystems[] = {
    {"SerialC", EngineKind::kSerialC, CodeGenOptions::Flavor::kMusketeer},
    {"Metis", EngineKind::kMetis, CodeGenOptions::Flavor::kMusketeer},
    {"Hadoop", EngineKind::kHadoop, CodeGenOptions::Flavor::kMusketeer},
    {"Spark", EngineKind::kSpark, CodeGenOptions::Flavor::kMusketeer},
    {"Lindi(native)", EngineKind::kNaiad, CodeGenOptions::Flavor::kNativeLindi},
};

void RunJoin() {
  PrintHeader("Figure 2b: JOIN makespan (local cluster)",
              "asymmetric: LiveJournal vertices x edges (~1.2 GB in);\n"
              "symmetric: 39M x 39M uniform rows (~29 GB out)");
  PrintRow({"system", "asymmetric (s)", "symmetric (s)"});

  GraphDataset lj = LiveJournalGraph();
  TablePtr sym_a = MakeUniformKv(39e6, 3000, 78, 23);
  TablePtr sym_b = MakeUniformKv(39e6, 3000, 78, 29);

  // The paper's asymmetric join produces only 1.28M rows: a selective match
  // against the vertex set. Model it by joining against a 1-in-50 edge
  // subset (~1.4M nominal rows).
  auto edge_subset = std::make_shared<Table>(lj.edges->schema());
  for (size_t i = 0; i < lj.edges->num_rows(); i += 50) {
    edge_subset->AppendRowFrom(*lj.edges, i);
  }
  edge_subset->set_scale(lj.edges->scale());

  for (const System& sys : kJoinSystems) {
    // Asymmetric.
    Dfs dfs_a;
    dfs_a.Put("vertices_rel", lj.vertices);
    dfs_a.Put("edges_rel", edge_subset);
    WorkflowSpec wf{.id = "join-micro",
                    .language = FrontendLanguage::kBeer,
                    .source = SimpleJoinBeer()};
    RunResult asym =
        MustRun(&dfs_a, wf, ForEngine(sys.engine, LocalCluster(), sys.flavor));

    // Symmetric.
    Dfs dfs_s;
    dfs_s.Put("vertices_rel", sym_a);
    dfs_s.Put("edges_rel", sym_b);
    WorkflowSpec wf_s = wf;
    wf_s.source = "joined = JOIN vertices_rel, edges_rel "
                  "ON vertices_rel.k = edges_rel.k;\n";
    RunResult sym =
        MustRun(&dfs_s, wf_s, ForEngine(sys.engine, LocalCluster(), sys.flavor));

    PrintRow({sys.label, Fmt(asym.makespan), Fmt(sym.makespan)});
  }
}

}  // namespace
}  // namespace musketeer

int main() {
  musketeer::RunProject();
  musketeer::RunJoin();
  return 0;
}
