// Figure 11: generated-code overhead for five-iteration PageRank on the
// Twitter graph, for every back-end compatible with the workflow (§6.4).
// Expected shape: average overhead below 30% everywhere.

#include "bench/bench_common.h"

namespace musketeer {
namespace {

double RunPageRank(const GraphDataset& graph, EngineKind engine,
                   CodeGenOptions::Flavor flavor, int nodes) {
  Dfs dfs;
  dfs.Put("vertices", graph.vertices);
  dfs.Put("edges", graph.edges);
  WorkflowSpec wf{.id = "pagerank-5",
                  .language = FrontendLanguage::kGas,
                  .source = PageRankGas(5)};
  RunOptions options =
      ForEngine(engine, nodes == 1 ? SingleMachine() : Ec2Cluster(nodes), flavor);
  return MustRun(&dfs, wf, options).makespan;
}

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;
  GraphDataset twitter = TwitterGraph();

  PrintHeader("Figure 11: PageRank generated-code overhead on Twitter",
              "overhead of Musketeer-generated jobs over hand-written "
              "baselines (paper: < 30% on average)");
  PrintRow({"system", "nodes", "generated (s)", "hand-tuned (s)", "overhead"});

  struct Config {
    EngineKind engine;
    int nodes;
  };
  const Config kConfigs[] = {
      {EngineKind::kHadoop, 100},  {EngineKind::kSpark, 100},
      {EngineKind::kNaiad, 100},   {EngineKind::kPowerGraph, 16},
      {EngineKind::kGraphChi, 1},
  };
  for (const Config& config : kConfigs) {
    double generated = RunPageRank(twitter, config.engine,
                                   CodeGenOptions::Flavor::kMusketeer,
                                   config.nodes);
    double hand = RunPageRank(twitter, config.engine,
                              CodeGenOptions::Flavor::kIdealHandTuned,
                              config.nodes);
    PrintRow({EngineKindName(config.engine), Fmt(config.nodes, "%.0f"),
              Fmt(generated), Fmt(hand),
              Fmt((generated / hand - 1.0) * 100.0, "%+.1f%%")});
  }
  return 0;
}
