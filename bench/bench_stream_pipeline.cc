// Streaming data plane benchmark (DESIGN.md "Streaming & incremental
// execution"): pipelined inter-job channels vs the DFS materialization
// barrier on a multi-job chain, and the reused-job fraction of an
// incremental resubmission after a 1% base-relation append.
//
// Gates (non-zero exit on violation):
//   * correctness: pipelined outputs are Table::Identical to barrier
//     outputs, and the incremental delta run's outputs are Table::Identical
//     to a cold run over the appended inputs;
//   * the chain actually pipelines (>= 1 channel edge, > 0 batches);
//   * wall clock, hardware-aware: on a host with >= 4 cores the pipelined
//     chain must be >= 1.2x faster than the barrier chain (the overlap of
//     the producer's substrate/verify tail with the consumer's execution is
//     the whole point); on fewer cores concurrency cannot beat timeslicing,
//     so the honest gate is no-regression (>= 0.75x);
//   * the incremental resubmission reuses >= 1 job (the untouched prefix).
//
// Writes BENCH_stream_pipeline.json. Run by tools/check.sh stage 10.

#include <chrono>
#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "src/base/parallel.h"
#include "src/stream/fingerprint.h"

namespace musketeer {
namespace {

constexpr double kMultiCoreSpeedupFloor = 1.2;   // >= 4 cores
constexpr double kSingleCoreRegressionFloor = 0.75;

// Wall-clock ms of the fastest of `reps` runs.
double MinWallMs(int reps, const std::function<RunResult()>& fn,
                 RunResult* out) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    RunResult result = fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (r == 0 || ms < best) {
      best = ms;
    }
    *out = std::move(result);
  }
  return best;
}

int RunAll() {
  // A chain with real per-job work: top-shopper with operator merging
  // disabled, every operator its own Spark job, so each inter-job edge is a
  // pipeline candidate (single consumer, capable engine, no fixpoint).
  const WorkflowSpec spec{"bench-stream", FrontendLanguage::kBeer,
                          TopShopperBeer(5, 300.0)};
  TablePtr purchases = MakePurchases(/*nominal_rows=*/1e6,
                                     /*sample_rows=*/150000,
                                     /*num_regions=*/10, /*seed=*/21);

  RunOptions barrier_options;
  barrier_options.cluster = Ec2Cluster(16);
  barrier_options.engines = {EngineKind::kSpark};
  barrier_options.planner.enable_merging = false;

  RunOptions pipelined_options = barrier_options;
  pipelined_options.pipeline = PipelineMode::kForce;

  auto run_with = [&](const RunOptions& options) {
    Dfs dfs;
    dfs.Put("purchases", purchases);
    Musketeer m(&dfs);
    auto result = m.Run(spec, options);
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(result).value();
  };

  PrintHeader("Pipelined channels vs DFS barrier",
              "one top-shopper chain, merging disabled, Spark everywhere; "
              "wall-clock ms (min of 3)");
  PrintRow({"mode", "jobs", "edges", "batches", "wall_ms"});

  RunResult barrier;
  const double barrier_ms =
      MinWallMs(3, [&] { return run_with(barrier_options); }, &barrier);
  RunResult pipelined;
  const double pipelined_ms =
      MinWallMs(3, [&] { return run_with(pipelined_options); }, &pipelined);

  PrintRow({"barrier", std::to_string(barrier.plans.size()), "0", "0",
            Fmt(barrier_ms, "%.2f")});
  PrintRow({"pipelined", std::to_string(pipelined.plans.size()),
            std::to_string(pipelined.pipelined_edges),
            std::to_string(pipelined.stream_batches),
            Fmt(pipelined_ms, "%.2f")});

  bool ok = true;

  // Correctness: the streamed chain commits the exact barrier bytes.
  for (const auto& [name, table] : barrier.outputs) {
    auto it = pipelined.outputs.find(name);
    if (it == pipelined.outputs.end() ||
        !Table::Identical(*table, *it->second)) {
      std::fprintf(stderr, "FATAL: pipelined sink '%s' diverges from the "
                           "barrier run\n", name.c_str());
      ok = false;
    }
  }
  if (pipelined.pipelined_edges < 1 || pipelined.stream_batches == 0) {
    std::fprintf(stderr,
                 "FATAL: chain did not pipeline (%d edge(s), %llu batch(es))\n",
                 pipelined.pipelined_edges,
                 (unsigned long long)pipelined.stream_batches);
    ok = false;
  }

  const int hw = HardwareThreads();
  const double speedup = barrier_ms / pipelined_ms;
  const double floor =
      hw >= 4 ? kMultiCoreSpeedupFloor : kSingleCoreRegressionFloor;
  std::printf("pipelined speedup: %.2fx (floor %.2fx, %d hardware core(s))\n",
              speedup, floor, hw);
  if (speedup < floor) {
    std::fprintf(stderr,
                 "FATAL: pipelined speedup %.2fx is below the %.2fx floor "
                 "(%d hardware core(s))\n",
                 speedup, floor, hw);
    ok = false;
  }

  // ---- incremental resubmission: 1% append, reuse the untouched branch ----
  // TPC-H Q17 reads two base relations (lineitem, part); appending to part
  // leaves the lineitem-only jobs fingerprint-stable, so the delta run
  // serves them from the DFS and recomputes only the part-dependent suffix.
  PrintHeader("Incremental resubmission (1% append to part)",
              "cold run records fingerprints; appended resubmit recomputes "
              "only the affected suffix of TPC-H Q17");
  const WorkflowSpec tpch{"bench-stream-tpch", FrontendLanguage::kHive,
                          TpchQ17Hive()};
  TpchDataset tpch_data = MakeTpch(/*scale=*/10, /*sample_rows=*/3000);
  Dfs dfs;
  dfs.Put("lineitem", tpch_data.lineitem);
  dfs.Put("part", tpch_data.part);
  FingerprintStore fingerprints;
  RunOptions cold_options = barrier_options;
  cold_options.fingerprints = &fingerprints;
  Musketeer m(&dfs);
  RunResult cold;
  const double cold_ms = MinWallMs(1, [&] {
    auto result = m.Run(tpch, cold_options);
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(result).value();
  }, &cold);

  // Append 1% of part's rows and resubmit incrementally.
  const Table& part = *tpch_data.part;
  Table grown = part.Slice(0, part.num_rows());
  grown.AppendTableCopy(
      part.Slice(0, std::max<size_t>(1, part.num_rows() / 100)));
  TablePtr appended = std::make_shared<Table>(std::move(grown));
  dfs.Put("part", appended);
  RunOptions delta_options = cold_options;
  delta_options.incremental = true;
  RunResult delta;
  const double delta_ms = MinWallMs(1, [&] {
    auto result = m.Run(tpch, delta_options);
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(result).value();
  }, &delta);

  const double reused_fraction =
      delta.plans.empty()
          ? 0.0
          : static_cast<double>(delta.jobs_reused) / delta.plans.size();
  PrintRow({"run", "jobs", "reused", "fraction", "wall_ms"});
  PrintRow({"cold", std::to_string(cold.plans.size()), "0", "0.00",
            Fmt(cold_ms, "%.2f")});
  PrintRow({"delta", std::to_string(delta.plans.size()),
            std::to_string(delta.jobs_reused), Fmt(reused_fraction, "%.2f"),
            Fmt(delta_ms, "%.2f")});

  if (delta.jobs_reused < 1) {
    std::fprintf(stderr, "FATAL: incremental resubmit reused no jobs\n");
    ok = false;
  }
  // Delta bits must equal a cold run over the appended inputs.
  {
    Dfs check_dfs;
    check_dfs.Put("lineitem", tpch_data.lineitem);
    check_dfs.Put("part", appended);
    Musketeer check(&check_dfs);
    auto expected = check.Run(tpch, barrier_options);
    if (!expected.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   expected.status().ToString().c_str());
      std::exit(1);
    }
    for (const auto& [name, table] : expected->outputs) {
      if (!Table::Identical(*table, *delta.outputs.at(name))) {
        std::fprintf(stderr, "FATAL: incremental sink '%s' diverges from the "
                             "cold run on appended inputs\n", name.c_str());
        ok = false;
      }
    }
  }

  BenchJsonWriter json;
  json.Add("hardware_threads", 0, hw, 0.0);
  json.Add("chain_barrier", barrier.plans.size(), hw, barrier_ms);
  json.Add("chain_pipelined", pipelined.plans.size(), hw, pipelined_ms);
  json.Add("pipelined_edges", pipelined.pipelined_edges, hw, 0.0);
  json.Add("stream_batches", pipelined.stream_batches, hw, 0.0);
  json.Add("incremental_cold", cold.plans.size(), hw, cold_ms);
  json.Add("incremental_delta", delta.plans.size(), hw, delta_ms);
  json.Add("incremental_jobs_reused", delta.jobs_reused, hw, 0.0);
  const std::string json_path = "BENCH_stream_pipeline.json";
  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace musketeer

int main() { return musketeer::RunAll(); }
