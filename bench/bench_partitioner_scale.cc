// Planner latency at production scale (DESIGN.md "Planner at scale").
//
// The paper's Fig. 13 sweep stops at 18 operators — the largest evaluation
// workflow. Production query graphs reach hundreds of operators, so this
// benchmark partitions seeded synthetic DAGs (src/workloads/synthetic_dag.h:
// chains, diamonds, fan-out, UNION fan-in, WHILE blocks) at 100 / 250 / 500
// / 1000 operators with the production default (kAuto, which resolves to
// the DP above the exhaustive threshold) and measures REAL wall-clock
// planning time, min over reps so scheduler noise cannot masquerade as a
// regression.
//
// Enforced acceptance criteria, exit 1 on violation:
//
//   1. a 1000-operator DAG plans in < 250 ms — the planner stays
//      interactive at two orders of magnitude beyond the paper's sweep;
//   2. every partitioning covers every operator exactly once (a valid,
//      executable job set, not a truncated one);
//   3. on DAGs small enough for the exhaustive search (6-12 ops), the DP's
//      plan cost stays within 1.5x of the exhaustive optimum.
//
// Results land in BENCH_partitioner_scale.json for plotting.

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/frontends/frontend.h"
#include "src/scheduler/partition_strategy.h"
#include "src/workloads/synthetic_dag.h"

namespace musketeer {
namespace {

constexpr double kLatencyGateMs = 250.0;  // 1000-op planning budget
constexpr double kGapGate = 1.5;          // DP cost vs exhaustive optimum

struct ScaleRecord {
  int ops = 0;
  double plan_ms = 0;
  size_t jobs = 0;
  double total_cost = 0;
  std::string strategy;
};

struct GapRecord {
  int ops = 0;
  uint64_t seed = 0;
  double dp_cost = 0;
  double exhaustive_cost = 0;
  double ratio = 0;
};

struct Prepared {
  std::unique_ptr<Dag> dag;
  std::vector<Bytes> sizes;
};

Prepared Prepare(const SyntheticDagWorkload& workload, const CostModel& model) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, workload.source);
  if (!dag.ok()) {
    std::fprintf(stderr, "FATAL: synthetic DAG failed to parse: %s\n",
                 dag.status().ToString().c_str());
    std::exit(1);
  }
  RelationSizes base;
  for (const auto& [name, table] : workload.inputs) {
    base[name] = table->nominal_bytes();
  }
  auto sizes = model.PredictSizes(**dag, base);
  if (!sizes.ok()) {
    std::fprintf(stderr, "FATAL: size prediction failed: %s\n",
                 sizes.status().ToString().c_str());
    std::exit(1);
  }
  return {std::move(dag).value(), std::move(sizes).value()};
}

bool CoversAllOps(const Dag& dag, const Partitioning& partitioning) {
  std::set<int> covered;
  size_t assigned = 0;
  for (const JobAssignment& job : partitioning.jobs) {
    covered.insert(job.ops.begin(), job.ops.end());
    assigned += job.ops.size();
  }
  int expected = 0;
  for (const auto& node : dag.nodes()) {
    if (node.kind != OpKind::kInput) {
      ++expected;
    }
  }
  return static_cast<int>(covered.size()) == expected &&
         assigned == covered.size();
}

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;
  using Clock = std::chrono::steady_clock;

  CostModel model(Ec2Cluster(16), nullptr, "synthetic");
  bool ok = true;

  // ---- Latency sweep: kAuto (-> DP) at 100-1000 operators ----------------
  PrintHeader("planner latency at scale",
              "seeded synthetic DAGs, production-default strategy (auto), "
              "min wall clock over 5 reps");
  PrintRow({"ops", "plan (ms)", "jobs", "cost", "strategy"});

  std::vector<ScaleRecord> scale;
  for (int ops : {100, 250, 500, 1000}) {
    SyntheticDagSpec spec;
    spec.target_ops = ops;
    spec.seed = 42;
    SyntheticDagWorkload workload = MakeSyntheticDag(spec);
    Prepared p = Prepare(workload, model);

    PlannerConfig config;  // kAuto
    double best_ms = 1e18;
    Partitioning partitioning;
    for (int rep = 0; rep < 5; ++rep) {
      auto start = Clock::now();
      auto out = PartitionWorkflow(*p.dag, model, p.sizes, config);
      double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            start)
                      .count();
      if (!out.ok()) {
        std::fprintf(stderr, "FATAL: partitioning %d ops failed: %s\n", ops,
                     out.status().ToString().c_str());
        return 1;
      }
      if (ms < best_ms) {
        best_ms = ms;
        partitioning = std::move(out).value();
      }
    }
    if (!CoversAllOps(*p.dag, partitioning)) {
      std::fprintf(stderr, "GATE: %d-op partitioning does not cover the DAG\n",
                   ops);
      ok = false;
    }
    scale.push_back({ops, best_ms, partitioning.jobs.size(),
                     partitioning.total_cost, partitioning.strategy});
    PrintRow({Fmt(ops, "%.0f"), Fmt(best_ms, "%.2f"),
              Fmt(static_cast<double>(partitioning.jobs.size()), "%.0f"),
              Fmt(partitioning.total_cost, "%.2f"), partitioning.strategy});
  }

  const ScaleRecord& largest = scale.back();
  if (largest.plan_ms >= kLatencyGateMs) {
    std::fprintf(stderr,
                 "GATE: 1000-op DAG planned in %.2f ms, budget %.0f ms\n",
                 largest.plan_ms, kLatencyGateMs);
    ok = false;
  }
  if (largest.strategy != "dp") {
    std::fprintf(stderr,
                 "GATE: auto resolved to '%s' at 1000 ops, expected dp\n",
                 largest.strategy.c_str());
    ok = false;
  }

  // ---- Optimality gap: DP vs exhaustive on small DAGs --------------------
  PrintHeader("DP optimality gap",
              "exhaustive-search-feasible sizes; ratio = dp / exhaustive");
  PrintRow({"ops", "seed", "dp cost", "exhaustive", "ratio"});

  std::vector<GapRecord> gaps;
  for (int ops : {6, 9, 12}) {
    for (uint64_t seed : {7ull, 19ull}) {
      SyntheticDagSpec spec;
      spec.target_ops = ops;
      spec.seed = seed;
      SyntheticDagWorkload workload = MakeSyntheticDag(spec);
      Prepared p = Prepare(workload, model);

      PlannerConfig config;
      config.strategy = PartitionStrategyKind::kExhaustive;
      auto optimal = PartitionWorkflow(*p.dag, model, p.sizes, config);
      config.strategy = PartitionStrategyKind::kDp;
      auto dp = PartitionWorkflow(*p.dag, model, p.sizes, config);
      if (!optimal.ok() || !dp.ok()) {
        std::fprintf(stderr, "FATAL: small-DAG partitioning failed\n");
        return 1;
      }
      double ratio = dp->total_cost / optimal->total_cost;
      gaps.push_back({ops, seed, dp->total_cost, optimal->total_cost, ratio});
      PrintRow({Fmt(ops, "%.0f"), Fmt(static_cast<double>(seed), "%.0f"),
                Fmt(dp->total_cost, "%.2f"), Fmt(optimal->total_cost, "%.2f"),
                Fmt(ratio, "%.3f")});
      if (ratio > kGapGate) {
        std::fprintf(stderr,
                     "GATE: DP %.2fx the exhaustive optimum at %d ops seed "
                     "%llu (budget %.1fx)\n",
                     ratio, ops, (unsigned long long)seed, kGapGate);
        ok = false;
      }
    }
  }

  // ---- Machine-readable results ------------------------------------------
  const char* json_path = "BENCH_partitioner_scale.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"latency\": [\n");
  for (size_t i = 0; i < scale.size(); ++i) {
    const ScaleRecord& r = scale[i];
    std::fprintf(f,
                 "    {\"ops\": %d, \"plan_ms\": %.3f, \"jobs\": %zu, "
                 "\"total_cost\": %.4f, \"strategy\": \"%s\"}%s\n",
                 r.ops, r.plan_ms, r.jobs, r.total_cost, r.strategy.c_str(),
                 i + 1 < scale.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"optimality_gap\": [\n");
  for (size_t i = 0; i < gaps.size(); ++i) {
    const GapRecord& r = gaps[i];
    std::fprintf(f,
                 "    {\"ops\": %d, \"seed\": %llu, \"dp_cost\": %.4f, "
                 "\"exhaustive_cost\": %.4f, \"ratio\": %.4f}%s\n",
                 r.ops, (unsigned long long)r.seed, r.dp_cost,
                 r.exhaustive_cost, r.ratio, i + 1 < gaps.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"gates\": {\"latency_budget_ms\": %.1f, "
               "\"gap_budget\": %.2f, \"passed\": %s}\n}\n",
               kLatencyGateMs, kGapGate, ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s (%zu latency + %zu gap records)\n", json_path,
              scale.size(), gaps.size());

  if (!ok) {
    std::fprintf(stderr, "partitioner-scale acceptance FAILED\n");
    return 1;
  }
  std::printf("partitioner-scale acceptance passed\n");
  return 0;
}
