// Network front-door throughput: open-loop concurrent clients over loopback.
//
// Each client thread owns one keep-alive connection to a live HttpServer and
// fires its submissions back-to-back WITHOUT waiting for completions (open
// loop: the offered load does not throttle to service rate), then polls its
// tickets to terminal. Reported per worker count: sustained completed
// requests/second and p50/p95/p99 submit->terminal latency (queue wait
// included — that is the point of an open-loop measurement).
//
// Engine dispatch is modeled as a per-job synchronous sleep
// (ServiceConfig::dispatch_latency), so worker scaling is overlap of
// dispatch waits, not CPU — the regime the paper's service deployment runs
// in. The scaling gate at the bottom (4 workers >= 2x 1 worker) guards the
// whole pipeline: poll loop, fair queue, and worker pool.
//
// Machine-readable results go to BENCH_server_throughput.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/service/service.h"

namespace musketeer {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kClients = 8;
constexpr int kSubmissionsPerClient = 25;
constexpr auto kDispatchLatency = std::chrono::milliseconds(6);

struct Measurement {
  int workers = 0;
  int completed = 0;
  int rejected = 0;
  double rps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

double PercentileMs(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) {
    return 0;
  }
  size_t idx = static_cast<size_t>(q * (sorted_ms.size() - 1));
  return sorted_ms[idx];
}

Measurement RunLoad(Dfs* dfs, int workers) {
  ServiceConfig config;
  config.num_workers = workers;
  config.queue_capacity = kClients * kSubmissionsPerClient + 16;
  config.dispatch_latency = kDispatchLatency;
  WorkflowService service(dfs, config);
  HttpServer server(&service);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "FATAL: server failed to start\n");
    std::exit(1);
  }

  // Warm the plan cache so the timed region measures the service path, not
  // one-off lowering.
  {
    NetClient warm;
    if (!warm.Connect("127.0.0.1", server.port()).ok()) {
      std::fprintf(stderr, "FATAL: warm-up connect failed\n");
      std::exit(1);
    }
    auto reply = warm.SubmitWorkflow({.workflow_id = "bench-shopper"},
                                     TopShopperBeer(2, 50.0));
    if (!reply.ok() || reply->status != 202 ||
        !warm.WaitTerminal(reply->ticket, std::chrono::seconds(30)).ok()) {
      std::fprintf(stderr, "FATAL: warm-up submission failed\n");
      std::exit(1);
    }
  }

  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  std::vector<std::vector<double>> latencies_ms(kClients);
  const auto start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      NetClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        return;
      }
      const std::string tenant = "bench-t" + std::to_string(c);
      // Open loop: fire every submission first...
      std::vector<std::pair<uint64_t, Clock::time_point>> tickets;
      tickets.reserve(kSubmissionsPerClient);
      for (int s = 0; s < kSubmissionsPerClient; ++s) {
        auto reply = client.SubmitWorkflow(
            {.tenant = tenant, .workflow_id = "bench-shopper"},
            TopShopperBeer(2, 50.0));
        if (!reply.ok()) {
          return;
        }
        if (reply->status != 202) {
          rejected.fetch_add(1);
          continue;
        }
        tickets.emplace_back(reply->ticket, Clock::now());
      }
      // ...then ride each one to terminal over the same connection.
      for (const auto& [ticket, submitted] : tickets) {
        auto state = client.WaitTerminal(ticket, std::chrono::seconds(120));
        if (!state.ok() || *state != "DONE") {
          continue;
        }
        latencies_ms[c].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - submitted)
                .count());
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.Shutdown();
  service.Shutdown();

  Measurement m;
  m.workers = workers;
  m.completed = completed.load();
  m.rejected = rejected.load();
  m.rps = elapsed > 0 ? m.completed / elapsed : 0;
  std::vector<double> all;
  for (const auto& per_client : latencies_ms) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  m.p50_ms = PercentileMs(all, 0.50);
  m.p95_ms = PercentileMs(all, 0.95);
  m.p99_ms = PercentileMs(all, 0.99);
  return m;
}

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;

  Dfs dfs;
  dfs.Put("purchases", MakePurchases(/*nominal_rows=*/1e6, /*sample_rows=*/2000,
                                     /*num_regions=*/8, /*seed=*/3));

  PrintHeader(
      "Server throughput: open-loop clients over loopback",
      std::to_string(kClients) + " clients x " +
          std::to_string(kSubmissionsPerClient) + " submissions, " +
          std::to_string(kDispatchLatency.count()) +
          " ms simulated engine dispatch per job; latency = submit->terminal "
          "incl. queue wait");
  PrintRow({"workers", "completed", "rps", "p50 (ms)", "p95 (ms)", "p99 (ms)"});

  std::vector<Measurement> results;
  for (int workers : {1, 2, 4}) {
    Measurement m = RunLoad(&dfs, workers);
    results.push_back(m);
    PrintRow({std::to_string(m.workers), std::to_string(m.completed),
              Fmt(m.rps), Fmt(m.p50_ms), Fmt(m.p95_ms), Fmt(m.p99_ms)});
    if (m.completed != kClients * kSubmissionsPerClient || m.rejected != 0) {
      std::fprintf(stderr,
                   "FATAL: %d workers: %d/%d completed, %d rejected — the "
                   "queue is sized to admit the full offered load\n",
                   m.workers, m.completed, kClients * kSubmissionsPerClient,
                   m.rejected);
      return 1;
    }
  }

  std::FILE* f = std::fopen("BENCH_server_throughput.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write BENCH_server_throughput.json\n");
    return 1;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "  {\"workers\": %d, \"clients\": %d, \"submissions\": %d, "
                 "\"rps\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
                 "\"p99_ms\": %.3f}%s\n",
                 m.workers, kClients, kClients * kSubmissionsPerClient, m.rps,
                 m.p50_ms, m.p95_ms, m.p99_ms,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_server_throughput.json\n");

  // Scaling gate: dispatch waits must overlap across the worker pool even
  // when every request arrives over a socket.
  const double rps1 = results.front().rps;
  const double rps4 = results.back().rps;
  if (rps4 < 2.0 * rps1) {
    std::fprintf(stderr,
                 "FATAL: 4-worker throughput %.1f rps is not >= 2x the "
                 "1-worker %.1f rps\n",
                 rps4, rps1);
    return 1;
  }
  std::printf("scaling check: 4 workers = %.1fx of 1 worker (>= 2x required)\n",
              rps1 > 0 ? rps4 / rps1 : 0);
  return 0;
}
