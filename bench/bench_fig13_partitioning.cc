// Figure 13: runtime of the DAG partitioning algorithms — exhaustive search
// vs. the dynamic-programming heuristic — as the number of operators grows
// (§6.6). Unlike the makespan benchmarks, this measures REAL wall-clock time
// of Musketeer's own algorithms (google-benchmark), exactly as the paper did:
// prefixes of an extended 18-operator NetFlix workflow are partitioned with
// both algorithms.
// Expected shape: exhaustive runs in well under a second up to ~13 operators
// and grows exponentially beyond; the DP heuristic stays in the milliseconds
// and scales gracefully to 18 operators.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/base/parallel.h"

namespace musketeer {
namespace {

// Builds the extended NetFlix DAG truncated to its first `num_ops` operators
// (keeping the relative structure; inputs are preserved).
std::unique_ptr<Dag> NetflixPrefix(int num_ops) {
  auto full = ParseWorkflow(FrontendLanguage::kBeer, NetflixExtendedBeer(100));
  if (!full.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", full.status().ToString().c_str());
    std::exit(1);
  }
  auto prefix = std::make_unique<Dag>();
  int ops = 0;
  for (const OperatorNode& n : (*full)->nodes()) {
    if (n.kind != OpKind::kInput && ops >= num_ops) {
      break;
    }
    prefix->AddNode(n.kind, n.output, n.inputs, n.params);
    if (n.kind != OpKind::kInput) {
      ++ops;
    }
  }
  return prefix;
}

RelationSizes NetflixSizes() {
  return {{"ratings", 2.5 * kGB}, {"movies", 0.5 * kMB}};
}

void BM_Exhaustive(benchmark::State& state) {
  int num_ops = static_cast<int>(state.range(0));
  std::unique_ptr<Dag> dag = NetflixPrefix(num_ops);
  CostModel model(Ec2Cluster(100), nullptr, "netflix");
  auto sizes = model.PredictSizes(*dag, NetflixSizes());
  if (!sizes.ok()) {
    state.SkipWithError(sizes.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = PartitionWorkflow(
        *dag, model, *sizes, {.strategy = PartitionStrategyKind::kExhaustive});
    benchmark::DoNotOptimize(result);
  }
}

void BM_DpHeuristic(benchmark::State& state) {
  int num_ops = static_cast<int>(state.range(0));
  std::unique_ptr<Dag> dag = NetflixPrefix(num_ops);
  CostModel model(Ec2Cluster(100), nullptr, "netflix");
  auto sizes = model.PredictSizes(*dag, NetflixSizes());
  if (!sizes.ok()) {
    state.SkipWithError(sizes.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = PartitionWorkflow(*dag, model, *sizes,
                                    {.strategy = PartitionStrategyKind::kDp});
    benchmark::DoNotOptimize(result);
  }
}

// Parallel exhaustive search: the same algorithm fanned out over subtree
// prefixes with a shared cost bound. Must choose the IDENTICAL partitioning
// as the sequential search (checked every iteration; errors out otherwise).
// On machines with fewer cores than the thread argument the extra threads
// time-slice, so speedup saturates at the core count.
void BM_ExhaustiveParallel(benchmark::State& state) {
  int num_ops = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  std::unique_ptr<Dag> dag = NetflixPrefix(num_ops);
  CostModel model(Ec2Cluster(100), nullptr, "netflix");
  auto sizes = model.PredictSizes(*dag, NetflixSizes());
  if (!sizes.ok()) {
    state.SkipWithError(sizes.status().ToString().c_str());
    return;
  }
  auto reference = [&] {
    ScopedParallelThreads one(1);
    return PartitionWorkflow(*dag, model, *sizes,
                             {.strategy = PartitionStrategyKind::kExhaustive});
  }();
  if (!reference.ok()) {
    state.SkipWithError(reference.status().ToString().c_str());
    return;
  }
  ScopedParallelThreads width(threads);
  for (auto _ : state) {
    auto result = PartitionWorkflow(
        *dag, model, *sizes, {.strategy = PartitionStrategyKind::kExhaustive});
    if (!result.ok() || result->total_cost != reference->total_cost ||
        result->jobs.size() != reference->jobs.size()) {
      state.SkipWithError("parallel partitioning diverged from sequential");
      return;
    }
    for (size_t j = 0; j < result->jobs.size(); ++j) {
      if (result->jobs[j].ops != reference->jobs[j].ops ||
          result->jobs[j].engine != reference->jobs[j].engine) {
        state.SkipWithError("parallel partitioning diverged from sequential");
        return;
      }
    }
    benchmark::DoNotOptimize(result);
  }
}

// Exhaustive search is exponential: cap it where the paper stopped finding
// it practical. The DP heuristic runs the full range.
BENCHMARK(BM_Exhaustive)->DenseRange(2, 18, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DpHeuristic)->DenseRange(2, 18, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExhaustiveParallel)
    ->ArgsProduct({{12}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace musketeer

BENCHMARK_MAIN();
