// Figure 13: runtime of the DAG partitioning algorithms — exhaustive search
// vs. the dynamic-programming heuristic — as the number of operators grows
// (§6.6). Unlike the makespan benchmarks, this measures REAL wall-clock time
// of Musketeer's own algorithms (google-benchmark), exactly as the paper did:
// prefixes of an extended 18-operator NetFlix workflow are partitioned with
// both algorithms.
// Expected shape: exhaustive runs in well under a second up to ~13 operators
// and grows exponentially beyond; the DP heuristic stays in the milliseconds
// and scales gracefully to 18 operators.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace musketeer {
namespace {

// Builds the extended NetFlix DAG truncated to its first `num_ops` operators
// (keeping the relative structure; inputs are preserved).
std::unique_ptr<Dag> NetflixPrefix(int num_ops) {
  auto full = ParseWorkflow(FrontendLanguage::kBeer, NetflixExtendedBeer(100));
  if (!full.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", full.status().ToString().c_str());
    std::exit(1);
  }
  auto prefix = std::make_unique<Dag>();
  int ops = 0;
  for (const OperatorNode& n : (*full)->nodes()) {
    if (n.kind != OpKind::kInput && ops >= num_ops) {
      break;
    }
    prefix->AddNode(n.kind, n.output, n.inputs, n.params);
    if (n.kind != OpKind::kInput) {
      ++ops;
    }
  }
  return prefix;
}

RelationSizes NetflixSizes() {
  return {{"ratings", 2.5 * kGB}, {"movies", 0.5 * kMB}};
}

void BM_Exhaustive(benchmark::State& state) {
  int num_ops = static_cast<int>(state.range(0));
  std::unique_ptr<Dag> dag = NetflixPrefix(num_ops);
  CostModel model(Ec2Cluster(100), nullptr, "netflix");
  auto sizes = model.PredictSizes(*dag, NetflixSizes());
  if (!sizes.ok()) {
    state.SkipWithError(sizes.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = PartitionExhaustive(*dag, model, *sizes);
    benchmark::DoNotOptimize(result);
  }
}

void BM_DpHeuristic(benchmark::State& state) {
  int num_ops = static_cast<int>(state.range(0));
  std::unique_ptr<Dag> dag = NetflixPrefix(num_ops);
  CostModel model(Ec2Cluster(100), nullptr, "netflix");
  auto sizes = model.PredictSizes(*dag, NetflixSizes());
  if (!sizes.ok()) {
    state.SkipWithError(sizes.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = PartitionDp(*dag, model, *sizes);
    benchmark::DoNotOptimize(result);
  }
}

// Exhaustive search is exponential: cap it where the paper stopped finding
// it practical. The DP heuristic runs the full range.
BENCHMARK(BM_Exhaustive)->DenseRange(2, 18, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DpHeuristic)->DenseRange(2, 18, 1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace musketeer

BENCHMARK_MAIN();
