// Workflow-service throughput and latency (beyond the paper).
//
// The paper's Musketeer is a long-running manager that many users submit
// workflows to; this benchmark measures that service surface: submissions/s
// and p50/p99 queue-to-completion latency for a mixed PageRank / TPC-H Q17 /
// JOIN workload pushed through the bounded submission queue at 1, 4 and 16
// workers. All workers share one Dfs and one HistoryStore — the concurrency
// the src/service/ subsystem exists to make safe. Latency here is *wall
// clock* (the service's own overhead + pipeline work on the sample data),
// not the simulated engine makespan.
//
// Each engine job pays a dispatch_latency wall-clock wait modeling the
// synchronous round-trip of submitting a job to a remote engine (the paper's
// deployment blocks on Hadoop/Spark submission); overlapping those waits —
// which dominate a real manager's wall clock — is what the worker pool is
// for, so the scaling section holds even on a single-core host.
//
// Expected shape: submissions/s grows monotonically from 1 → 4 workers, and
// a warm plan cache beats a cold one on planning-heavy repeated submissions
// (exhaustively partitioned NetFlix, ~13 operators).

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench/bench_common.h"
#include "src/service/service.h"

namespace musketeer {
namespace {

struct Workload {
  std::vector<WorkflowSpec> specs;
  // Input relations shared by every service instance (tables are immutable).
  std::vector<std::pair<std::string, TablePtr>> inputs;
};

Workload MakeMixedWorkload() {
  Workload w;

  GraphSpec gspec;
  gspec.name = "bench-service-graph";
  gspec.nominal_vertices = 1e6;
  gspec.nominal_edges = 1e7;
  gspec.sample_vertices = 500;
  GraphDataset graph = MakePowerLawGraph(gspec);
  TpchDataset tpch = MakeTpch(/*scale_factor=*/1.0, /*sample_rows=*/4000);
  NetflixDataset netflix = MakeNetflix(/*sample_users=*/200);

  w.inputs = {{"vertices", graph.vertices}, {"edges", graph.edges},
              {"vertices_rel", graph.vertices}, {"edges_rel", graph.edges},
              {"lineitem", tpch.lineitem},   {"part", tpch.part},
              {"ratings", netflix.ratings},  {"movies", netflix.movies}};
  w.specs = {
      {.id = "svc-pagerank",
       .language = FrontendLanguage::kGas,
       .source = PageRankGas(/*iterations=*/3)},
      {.id = "svc-tpch-q17",
       .language = FrontendLanguage::kHive,
       .source = TpchQ17Hive()},
      {.id = "svc-join",
       .language = FrontendLanguage::kBeer,
       .source = SimpleJoinBeer()},
  };
  return w;
}

struct Measurement {
  double submissions_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t cache_hits = 0;
  uint64_t failed = 0;
};

double PercentileMs(std::vector<double> seconds, double p) {
  std::sort(seconds.begin(), seconds.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(seconds.size() - 1));
  return seconds[idx] * 1e3;
}

// Pushes `submissions` round-robin picks from the mixed workload through a
// fresh service instance and measures wall-clock throughput and latency.
Measurement RunLoad(const Workload& workload, int workers, int submissions,
                    bool plan_cache, HistoryStore* history,
                    std::chrono::milliseconds dispatch_latency,
                    const RunOptions& base_options = {}) {
  Dfs dfs;
  for (const auto& [name, table] : workload.inputs) {
    dfs.Put(name, table);
  }
  ServiceConfig config;
  config.num_workers = workers;
  config.queue_capacity = static_cast<size_t>(submissions);
  config.plan_cache_capacity = plan_cache ? 128 : 0;
  config.default_options = base_options;
  config.default_options.history = history;
  config.dispatch_latency = dispatch_latency;
  WorkflowService service(&dfs, config);

  const auto start = std::chrono::steady_clock::now();
  std::vector<WorkflowHandle> handles;
  handles.reserve(static_cast<size_t>(submissions));
  for (int i = 0; i < submissions; ++i) {
    handles.push_back(service.SubmitBlocking(
        workload.specs[static_cast<size_t>(i) % workload.specs.size()]));
  }
  service.Drain();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Measurement m;
  std::vector<double> latencies;
  for (const WorkflowHandle& h : handles) {
    if (h->state() != WorkflowState::kDone) {
      std::fprintf(stderr, "FATAL: workflow '%s' %s: %s\n", h->spec().id.c_str(),
                   WorkflowStateName(h->state()),
                   h->result().status().ToString().c_str());
      std::exit(1);
    }
    latencies.push_back(h->total_seconds());
  }
  m.submissions_per_sec = static_cast<double>(submissions) / elapsed;
  m.p50_ms = PercentileMs(latencies, 0.50);
  m.p99_ms = PercentileMs(latencies, 0.99);
  m.cache_hits = service.stats().plan_cache_hits;
  m.failed = service.stats().failed;
  return m;
}

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;

  const Workload workload = MakeMixedWorkload();
  constexpr int kSubmissions = 48;
  constexpr std::chrono::milliseconds kDispatch{4};  // per engine job

  PrintHeader("Workflow service throughput (mixed PageRank / TPC-H / JOIN)",
              "48 submissions per point; shared Dfs + HistoryStore; 4 ms "
              "remote-dispatch wait per engine job; latency = wall-clock "
              "queue-to-completion");

  PrintRow({"workers", "subs/s", "p50 (ms)", "p99 (ms)", "cache hits"});
  std::vector<double> throughput;
  for (int workers : {1, 4, 16}) {
    HistoryStore history;
    Measurement m = RunLoad(workload, workers, kSubmissions,
                            /*plan_cache=*/true, &history, kDispatch);
    throughput.push_back(m.submissions_per_sec);
    PrintRow({std::to_string(workers), Fmt(m.submissions_per_sec),
              Fmt(m.p50_ms, "%.2f"), Fmt(m.p99_ms, "%.2f"),
              std::to_string(m.cache_hits)});
  }
  std::printf("1 -> 4 workers: %.2fx%s\n", throughput[1] / throughput[0],
              throughput[1] > throughput[0]
                  ? " (monotonic, as expected)"
                  : " (NOT monotonic — investigate)");

  PrintHeader("Plan cache effect (4 workers, exhaustively partitioned NetFlix)",
              "identical 13-operator submissions; planning dominates; cold = "
              "cache disabled");
  {
    constexpr int kCacheSubmissions = 12;
    NetflixDataset small = MakeNetflix(/*sample_users=*/60);
    Workload netflix;
    netflix.inputs = {{"ratings", small.ratings}, {"movies", small.movies}};
    netflix.specs = {{.id = "svc-netflix",
                      .language = FrontendLanguage::kBeer,
                      .source = NetflixBeer(/*max_movie=*/8000)}};
    RunOptions exhaustive;
    exhaustive.planner.strategy = PartitionStrategyKind::kExhaustive;
    HistoryStore cold_history;
    Measurement cold =
        RunLoad(netflix, 4, kCacheSubmissions, /*plan_cache=*/false,
                &cold_history, std::chrono::milliseconds{0}, exhaustive);
    HistoryStore warm_history;
    Measurement warm =
        RunLoad(netflix, 4, kCacheSubmissions, /*plan_cache=*/true,
                &warm_history, std::chrono::milliseconds{0}, exhaustive);
    PrintRow({"cache", "subs/s", "p50 (ms)", "p99 (ms)"});
    PrintRow({"off", Fmt(cold.submissions_per_sec), Fmt(cold.p50_ms, "%.2f"),
              Fmt(cold.p99_ms, "%.2f")});
    PrintRow({"on", Fmt(warm.submissions_per_sec), Fmt(warm.p50_ms, "%.2f"),
              Fmt(warm.p99_ms, "%.2f")});
    std::printf("plan cache speedup: %.2fx\n",
                warm.submissions_per_sec / cold.submissions_per_sec);
  }

  PrintHeader("Fault-tolerance plumbing overhead (4 workers, no faults)",
              "ExecutionContext checkpoints + injector probe + retry "
              "dispatcher armed (max_attempts=3, rate=0) vs baseline; "
              "gate: armed must keep >= 85% of baseline throughput");
  {
    constexpr int kGateSubmissions = 32;
    RunOptions armed;
    armed.retry.max_attempts = 3;  // dispatcher armed; rate 0 => no retries
    armed.fault_rate = 0.0;
    // Best-of-3 to damp wall-clock noise: the gate compares plumbing cost,
    // not scheduler jitter.
    double best_ratio = 0;
    double base_subs = 0;
    double armed_subs = 0;
    for (int trial = 0; trial < 3; ++trial) {
      HistoryStore base_history;
      Measurement base =
          RunLoad(workload, 4, kGateSubmissions, /*plan_cache=*/true,
                  &base_history, std::chrono::milliseconds{0});
      HistoryStore armed_history;
      Measurement with_ctx =
          RunLoad(workload, 4, kGateSubmissions, /*plan_cache=*/true,
                  &armed_history, std::chrono::milliseconds{0}, armed);
      double ratio = with_ctx.submissions_per_sec / base.submissions_per_sec;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        base_subs = base.submissions_per_sec;
        armed_subs = with_ctx.submissions_per_sec;
      }
    }
    PrintRow({"options", "subs/s"});
    PrintRow({"baseline", Fmt(base_subs)});
    PrintRow({"retry+injector armed", Fmt(armed_subs)});
    std::printf("plumbing overhead: %.1f%% of baseline throughput retained\n",
                100.0 * best_ratio);
    if (best_ratio < 0.85) {
      std::fprintf(stderr,
                   "FATAL: fault-tolerance plumbing costs too much "
                   "(%.1f%% < 85%% of baseline throughput)\n",
                   100.0 * best_ratio);
      return 1;
    }
  }
  return 0;
}
