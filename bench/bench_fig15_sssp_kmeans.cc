// Figure 15: makespan of SSSP (Twitter graph with edge costs) and k-means
// clustering (100M points, 100 clusters, 2 dimensions, 5 iterations) on the
// EC2 cluster for every compatible back-end, with Musketeer's automatic
// choice marked (§6.7).
// Expected shape: SSSP is vertex-centric and fastest on the specialized
// path (Naiad); k-means cannot be expressed vertex-centrically, and its
// CROSS JOIN formulation generates enormous intermediate data (the paper's
// Spark run hit OOM on it) — Musketeer picks Naiad in both cases.

#include "bench/bench_common.h"

namespace musketeer {
namespace {

void RunWorkflow(const char* title, const WorkflowSpec& wf,
                 const std::function<void(Dfs*)>& seed,
                 const std::vector<EngineKind>& engines) {
  PrintHeader(title, "EC2, 100 nodes; (club) marks Musketeer's automatic pick");

  // Musketeer's automatic decision.
  EngineKind chosen = EngineKind::kHadoop;
  {
    Dfs dfs;
    seed(&dfs);
    Musketeer m(&dfs);
    RunOptions options;
    options.cluster = Ec2Cluster(100);
    auto result = m.Run(wf, options);
    if (result.ok() && !result->plans.empty()) {
      chosen = result->plans.front().engine;
    }
  }

  PrintRow({"system", "makespan (s)"});
  for (EngineKind engine : engines) {
    Dfs dfs;
    seed(&dfs);
    Musketeer m(&dfs);
    auto result = m.Run(wf, ForEngine(engine, Ec2Cluster(100)));
    std::string label = EngineKindName(engine);
    if (engine == chosen) {
      label += " (club)";
    }
    PrintRow({label, result.ok() ? Fmt(result->makespan) : "n/a"});
  }
}

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;

  GraphDataset sssp_graph = TwitterGraphWithCosts();
  WorkflowSpec sssp{.id = "sssp",
                    .language = FrontendLanguage::kGas,
                    .source = SsspGas(5)};
  RunWorkflow("Figure 15a: SSSP on Twitter with edge costs (5 iterations)",
              sssp,
              [&sssp_graph](Dfs* dfs) {
                dfs->Put("vertices", sssp_graph.vertices);
                dfs->Put("edges", sssp_graph.edges);
              },
              {EngineKind::kHadoop, EngineKind::kSpark, EngineKind::kNaiad,
               EngineKind::kPowerGraph, EngineKind::kGraphChi});

  KmeansDataset kmeans_data = MakeKmeans(1e8, 500, 100, 13);
  WorkflowSpec kmeans{.id = "kmeans",
                      .language = FrontendLanguage::kBeer,
                      .source = KmeansBeer(5)};
  RunWorkflow(
      "Figure 15b: k-means, 100M points, k=100, 2 dims (5 iterations)", kmeans,
      [&kmeans_data](Dfs* dfs) {
        dfs->Put("points", kmeans_data.points);
        dfs->Put("centers", kmeans_data.centers);
      },
      // Vertex-centric engines cannot express k-means (no graph idiom).
      {EngineKind::kHadoop, EngineKind::kSpark, EngineKind::kNaiad});
  return 0;
}
