// Observability overhead guard: instrumented-vs-uninstrumented throughput of
// the hot relational kernels (hash join, grouped aggregation, sort) at one
// thread. The kernels carry always-compiled-in Span/metric instrumentation
// (src/obs); a disabled tracer must cost nothing measurable, and an enabled
// tracer adds only one span record per kernel *call* (never per row), so the
// budget is <= 5% overhead. Exits non-zero if any kernel exceeds it.
//
// Results are written to BENCH_obs_overhead.json as
// [{"kernel", "rows", "base_ms", "instrumented_ms", "overhead_pct"}, ...].
// base_ms = tracer disabled, instrumented_ms = tracer enabled; reps are
// interleaved A/B/A/B and each side takes its minimum, so background noise
// hits both sides equally instead of biasing one.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/base/parallel.h"
#include "src/obs/trace.h"
#include "src/relational/ops.h"

namespace musketeer {
namespace {

constexpr size_t kJoinRows = 300'000;
constexpr size_t kAggRows = 500'000;
constexpr int64_t kAggGroups = 1024;
constexpr int kReps = 20;
constexpr int kMaxRounds = 6;
constexpr double kBudgetPct = 5.0;

// Deterministic pseudo-random table (same generator as bench_parallel_ops).
Table MakeInput(size_t rows, int64_t key_range, uint64_t seed) {
  Schema schema({{"k", FieldType::kInt64},
                 {"v", FieldType::kInt64},
                 {"x", FieldType::kDouble}});
  Table t(schema);
  t.Reserve(rows);
  uint64_t state = seed;
  for (size_t i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    int64_t k = static_cast<int64_t>(state >> 33) % key_range;
    int64_t v = static_cast<int64_t>(state >> 17) % 1000;
    double x = static_cast<double>(static_cast<int64_t>(state % 100003)) / 7.0;
    t.AddRow({k, v, x});
  }
  return t;
}

double WallMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct BenchOp {
  std::string name;
  size_t rows;
  std::function<void()> run;
};

int RunAll() {
  ScopedParallelThreads single(1);
  std::printf("Building inputs (%zu join rows, %zu agg rows)...\n", kJoinRows,
              kAggRows);
  Table join_left = MakeInput(kJoinRows, static_cast<int64_t>(kJoinRows), 42);
  Table join_right = MakeInput(kJoinRows, static_cast<int64_t>(kJoinRows), 7);
  Table agg_in = MakeInput(kAggRows, kAggGroups, 1234);
  std::vector<AggSpec> aggs{{AggFn::kSum, 2, "sx"},
                            {AggFn::kAvg, 2, "ax"},
                            {AggFn::kCount, 0, "c"}};

  std::vector<BenchOp> ops;
  ops.push_back({"hash_join", kJoinRows, [&] {
                   Table r =
                       std::move(HashJoin(join_left, join_right, 0, 0)).value();
                   (void)r;
                 }});
  ops.push_back({"group_by_agg", kAggRows, [&] {
                   Table r = std::move(GroupByAgg(agg_in, {0}, aggs)).value();
                   (void)r;
                 }});
  ops.push_back({"sort", kAggRows,
                 [&] { Table r = SortBy(agg_in, {0, 1}); (void)r; }});

  Tracer& tracer = Tracer::Global();
  const bool was_enabled = tracer.enabled();

  PrintHeader("Observability overhead (1 thread)",
              "min-of-" + std::to_string(kReps) +
                  " wall-clock ms, reps interleaved; budget " +
                  Fmt(kBudgetPct, "%.0f") + "%");
  PrintRow({"kernel", "rows", "base_ms", "instr_ms", "overhead"});

  struct Record {
    std::string kernel;
    size_t rows;
    double base_ms;
    double instrumented_ms;
    double overhead_pct;
  };
  std::vector<Record> records;
  bool within_budget = true;

  // One interleaved measurement round; *base/*instr keep running minimums
  // across rounds (per-rep noise on this class of shared hardware is +-10%,
  // so the minimum needs many samples to converge to the true floor).
  const auto measure = [&tracer](const BenchOp& op, double* base_ms,
                                 double* instr_ms) {
    for (int r = 0; r < kReps; ++r) {
      // Alternate which side runs first so cache/allocator state and CPU
      // frequency drift hit both sides symmetrically.
      double b;
      double i;
      if (r % 2 == 0) {
        tracer.Enable(false);
        b = WallMs(op.run);
        tracer.Enable(true);
        i = WallMs(op.run);
      } else {
        tracer.Enable(true);
        i = WallMs(op.run);
        tracer.Enable(false);
        b = WallMs(op.run);
      }
      tracer.Clear();  // keep per-thread span logs from growing across reps
      *base_ms = *base_ms == 0 ? b : std::min(*base_ms, b);
      *instr_ms = *instr_ms == 0 ? i : std::min(*instr_ms, i);
    }
  };

  for (const BenchOp& op : ops) {
    // Warm-up rep (page in the inputs, size the hash table allocator).
    tracer.Enable(false);
    op.run();
    double base_ms = 0;
    double instr_ms = 0;
    measure(op, &base_ms, &instr_ms);
    double overhead_pct = (instr_ms - base_ms) / base_ms * 100.0;
    // The instrumentation is per-call, so a large apparent overhead means the
    // minimum has not converged yet; keep sampling (bounded) before declaring
    // a violation.
    for (int round = 1; round < kMaxRounds && overhead_pct > kBudgetPct;
         ++round) {
      measure(op, &base_ms, &instr_ms);
      overhead_pct = (instr_ms - base_ms) / base_ms * 100.0;
    }
    if (overhead_pct > kBudgetPct) {
      within_budget = false;
    }
    records.push_back(
        {op.name, op.rows, base_ms, instr_ms, overhead_pct});
    PrintRow({op.name, std::to_string(op.rows), Fmt(base_ms, "%.2f"),
              Fmt(instr_ms, "%.2f"), Fmt(overhead_pct, "%+.2f%%")});
  }
  tracer.Enable(was_enabled);
  tracer.Clear();

  const std::string json_path = "BENCH_obs_overhead.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "  {\"kernel\": \"%s\", \"rows\": %zu, \"base_ms\": %.3f, "
                 "\"instrumented_ms\": %.3f, \"overhead_pct\": %.2f}%s\n",
                 r.kernel.c_str(), r.rows, r.base_ms, r.instrumented_ms,
                 r.overhead_pct, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu records)\n", json_path.c_str(), records.size());

  if (!within_budget) {
    std::fprintf(stderr,
                 "FATAL: observability overhead exceeds %.0f%% budget\n",
                 kBudgetPct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace musketeer

int main() { return musketeer::RunAll(); }
