// Figure 14: quality of Musketeer's automated mapping decisions over 33
// workflow configurations (§6.7). For each configuration we compare the
// makespan of:
//   (1) Musketeer's first-run choice (no workflow history),
//   (2) its choice with partial history (one prior run's job outputs),
//   (3) its choice with full history (per-operator profiling run),
//   (4) a hand-built decision tree picking one engine for everything,
// against the best achievable option (minimum over all forced single-engine
// runs and the automatic choices). A choice within 10% of the best is
// "good", within 30% "reasonable", else "poor".
// Expected shape: ~50% good with no knowledge, >80% with partial history,
// 100% good/optimal with full history; the decision tree does much worse.

#include <functional>

#include "bench/bench_common.h"

namespace musketeer {
namespace {

struct Config {
  std::string name;
  std::function<void(Dfs*)> seed;
  WorkflowSpec workflow;
  ClusterConfig cluster;
};

std::vector<Config> BuildConfigs() {
  std::vector<Config> configs;

  auto add = [&configs](std::string name, std::function<void(Dfs*)> seed,
                        FrontendLanguage language, std::string source,
                        ClusterConfig cluster) {
    Config c;
    c.name = std::move(name);
    c.seed = std::move(seed);
    c.workflow.id = c.name;
    c.workflow.language = language;
    c.workflow.source = std::move(source);
    c.cluster = std::move(cluster);
    configs.push_back(std::move(c));
  };

  // top-shopper at four sizes (local cluster).
  for (double rows : {1e7, 1e8, 1e9, 8e9}) {
    add("top-shopper-" + Fmt(rows, "%.0e"),
        [rows](Dfs* dfs) {
          dfs->Put("purchases", MakePurchases(rows, 4000, 10, 31));
        },
        FrontendLanguage::kBeer, TopShopperBeer(5, 5000.0), LocalCluster());
  }

  // TPC-H Q17 at four scale factors, local and EC2.
  for (double sf : {1.0, 10.0, 50.0, 100.0}) {
    add("tpch-q17-sf" + Fmt(sf, "%.0f"),
        [sf](Dfs* dfs) {
          TpchDataset data = MakeTpch(sf);
          dfs->Put("lineitem", data.lineitem);
          dfs->Put("part", data.part);
        },
        FrontendLanguage::kHive, TpchQ17Hive(),
        sf <= 10 ? LocalCluster() : Ec2Cluster(100));
  }

  // NetFlix at four movie counts (EC2).
  for (int64_t movies : {25, 50, 100, 200}) {
    add("netflix-" + std::to_string(movies),
        [](Dfs* dfs) {
          NetflixDataset data = MakeNetflix();
          dfs->Put("ratings", data.ratings);
          dfs->Put("movies", data.movies);
        },
        FrontendLanguage::kBeer, NetflixBeer(movies), Ec2Cluster(100));
  }

  // PageRank: three graphs x two cluster scales.
  struct GraphCase {
    const char* name;
    GraphDataset (*make)();
  };
  const GraphCase kGraphs[] = {{"lj", &LiveJournalGraph},
                               {"orkut", &OrkutGraph},
                               {"twitter", &TwitterGraph}};
  for (const GraphCase& g : kGraphs) {
    for (int nodes : {16, 100}) {
      GraphDataset data = g.make();
      add(std::string("pagerank-") + g.name + "-" + std::to_string(nodes),
          [data](Dfs* dfs) {
            dfs->Put("vertices", data.vertices);
            dfs->Put("edges", data.edges);
          },
          FrontendLanguage::kGas, PageRankGas(5), Ec2Cluster(nodes));
    }
  }

  // SSSP at two scales.
  for (int nodes : {16, 100}) {
    GraphDataset data = TwitterGraphWithCosts();
    add("sssp-" + std::to_string(nodes),
        [data](Dfs* dfs) {
          dfs->Put("vertices", data.vertices);
          dfs->Put("edges", data.edges);
        },
        FrontendLanguage::kGas, SsspGas(5), Ec2Cluster(nodes));
  }

  // k-means at three point counts.
  for (double points : {1e6, 1e7, 1e8}) {
    add("kmeans-" + Fmt(points, "%.0e"),
        [points](Dfs* dfs) {
          KmeansDataset data = MakeKmeans(points, 400, 20, 13);
          dfs->Put("points", data.points);
          dfs->Put("centers", data.centers);
        },
        FrontendLanguage::kBeer, KmeansBeer(5), Ec2Cluster(100));
  }

  // Cross-community PageRank at two scales.
  for (double scale : {1.0, 4.0}) {
    CommunityPair pair = MakeOverlappingCommunities();
    auto scaled = [scale](const TablePtr& t) {
      auto copy = std::make_shared<Table>(*t);
      copy->set_scale(t->scale() * scale);
      return TablePtr(copy);
    };
    TablePtr a = scaled(pair.a.edges);
    TablePtr b = scaled(pair.b.edges);
    add("cross-community-x" + Fmt(scale, "%.0f"),
        [a, b](Dfs* dfs) {
          dfs->Put("lj_edges", a);
          dfs->Put("web_edges", b);
        },
        FrontendLanguage::kBeer, CrossCommunityPageRankBeer(5), LocalCluster());
  }

  // PROJECT micro at five sizes.
  for (double mb : {128.0, 512.0, 2048.0, 8192.0, 32768.0}) {
    add("project-" + Fmt(mb, "%.0fMB"),
        [mb](Dfs* dfs) { dfs->Put("lines", MakeAsciiLines(mb * kMB, 2000, 17)); },
        FrontendLanguage::kBeer, ProjectBeer(), LocalCluster());
  }

  // Simple JOIN at three sizes.
  for (double scale : {1.0, 20.0, 100.0}) {
    GraphDataset lj = LiveJournalGraph();
    auto scaled_edges = std::make_shared<Table>(*lj.edges);
    scaled_edges->set_scale(lj.edges->scale() * scale);
    TablePtr v = lj.vertices;
    TablePtr e = scaled_edges;
    add("join-x" + Fmt(scale, "%.0f"),
        [v, e](Dfs* dfs) {
          dfs->Put("vertices_rel", v);
          dfs->Put("edges_rel", e);
        },
        FrontendLanguage::kBeer, SimpleJoinBeer(), LocalCluster());
  }

  return configs;
}

struct Tally {
  int good = 0;
  int reasonable = 0;
  int poor = 0;

  void Add(double makespan, double best) {
    if (makespan <= best * 1.10) {
      ++good;
    } else if (makespan <= best * 1.30) {
      ++reasonable;
    } else {
      ++poor;
    }
  }
};

double RunWith(const Config& config, const std::vector<EngineKind>& engines,
               HistoryStore* history, bool conservative = false) {
  Dfs dfs;
  config.seed(&dfs);
  Musketeer m(&dfs);
  RunOptions options;
  options.cluster = config.cluster;
  options.engines = engines;
  options.history = history;
  options.conservative_first_run = conservative;
  auto result = m.Run(config.workflow, options);
  return result.ok() ? result->makespan : kInfiniteCost;
}

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;
  std::vector<Config> configs = BuildConfigs();

  PrintHeader("Figure 14: automated mapping quality over " +
                  std::to_string(configs.size()) + " configurations",
              "good = within 10% of the best option, reasonable = within 30%");

  Tally no_history;
  Tally partial_history;
  Tally full_history;
  Tally decision_tree;

  for (const Config& config : configs) {
    // Best achievable: minimum over every forced single engine.
    double best = kInfiniteCost;
    for (EngineKind engine : kAllEngines) {
      best = std::min(best, RunWith(config, {engine}, nullptr));
    }

    // (1) First run, no knowledge: conservative merge gating applies.
    double first = RunWith(config, {}, nullptr, /*conservative=*/true);
    no_history.Add(first, best);

    // (2) Partial history: sizes observed from the first run's job outputs
    // unlock some merges.
    HistoryStore history;
    RunWith(config, {}, &history, /*conservative=*/true);
    HistoryStore partial = history.WithPartialKnowledge(0.6);
    double with_partial = RunWith(config, {}, &partial, /*conservative=*/true);
    partial_history.Add(with_partial, best);

    // (3) Full history: per-operator profiling run first.
    HistoryStore full;
    {
      Dfs dfs;
      config.seed(&dfs);
      Musketeer m(&dfs);
      RunOptions options;
      options.cluster = config.cluster;
      (void)m.ProfileWorkflow(config.workflow, options, &full);
    }
    double with_full = RunWith(config, {}, &full, /*conservative=*/true);
    full_history.Add(with_full, best);

    // (4) Decision tree: one engine for the whole workflow.
    Dfs dfs;
    config.seed(&dfs);
    Musketeer m(&dfs);
    auto dag = m.Lower(config.workflow, /*optimize=*/true);
    double tree_makespan = kInfiniteCost;
    if (dag.ok()) {
      Bytes total_input = 0;
      for (const auto& [name, bytes] : m.DfsSizes()) {
        total_input += bytes;
      }
      EngineKind choice = DecisionTreeChoice(**dag, total_input, config.cluster);
      tree_makespan = RunWith(config, {choice}, nullptr);
    }
    decision_tree.Add(tree_makespan, best);
  }

  int n = static_cast<int>(configs.size());
  PrintRow({"strategy", "good", "reasonable", "poor"});
  auto pct = [n](int v) { return Fmt(100.0 * v / n, "%.0f%%"); };
  PrintRow({"no knowledge", pct(no_history.good), pct(no_history.reasonable),
            pct(no_history.poor)});
  PrintRow({"partial history", pct(partial_history.good),
            pct(partial_history.reasonable), pct(partial_history.poor)});
  PrintRow({"full history", pct(full_history.good), pct(full_history.reasonable),
            pct(full_history.poor)});
  PrintRow({"decision tree", pct(decision_tree.good),
            pct(decision_tree.reasonable), pct(decision_tree.poor)});
  return 0;
}
