// Figure 7: TPC-H query 17 on EC2, scale factors 10-100 (§6.2).
// Four configurations:
//   Hive (native)        — Hive's own rigid Hadoop plan
//   Musketeer Hive->Hadoop — Musketeer's generated Hadoop code
//   Lindi (native)       — Lindi's Naiad code: single-threaded I/O and a
//                          non-associative GROUP BY on one machine
//   Musketeer ->Naiad    — Musketeer maps the same workflow to Naiad with
//                          its improved (associative) GROUP BY operator
// Expected shape: Musketeer->Naiad halves the Hive makespan (2x); the
// native Lindi version scales far worse (up to ~9x at scale 100).

#include "bench/bench_common.h"

namespace musketeer {
namespace {

struct Config {
  const char* label;
  FrontendLanguage language;
  EngineKind engine;
  CodeGenOptions::Flavor flavor;
};

const Config kConfigs[] = {
    {"Hive(native)->Hadoop", FrontendLanguage::kHive, EngineKind::kHadoop,
     CodeGenOptions::Flavor::kNativeHive},
    {"Musketeer Hive->Hadoop", FrontendLanguage::kHive, EngineKind::kHadoop,
     CodeGenOptions::Flavor::kMusketeer},
    {"Lindi(native)->Naiad", FrontendLanguage::kLindi, EngineKind::kNaiad,
     CodeGenOptions::Flavor::kNativeLindi},
    {"Musketeer Hive->Naiad", FrontendLanguage::kHive, EngineKind::kNaiad,
     CodeGenOptions::Flavor::kMusketeer},
};

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;
  PrintHeader("Figure 7: TPC-H Q17 makespan on EC2 (100 nodes)",
              "columns: TPC-H scale factor (7.5 GB at SF 10 ... 75 GB at SF 100)");
  std::vector<std::string> head{"configuration"};
  const double kScaleFactors[] = {10, 32, 100};
  for (double sf : kScaleFactors) {
    head.push_back("SF " + Fmt(sf, "%.0f"));
  }
  PrintRow(head);

  for (const Config& config : kConfigs) {
    std::vector<std::string> row{config.label};
    for (double sf : kScaleFactors) {
      TpchDataset data = MakeTpch(sf);
      Dfs dfs;
      dfs.Put("lineitem", data.lineitem);
      dfs.Put("part", data.part);
      WorkflowSpec wf{.id = "tpch-q17",
                      .language = config.language,
                      .source = config.language == FrontendLanguage::kHive
                                    ? TpchQ17Hive()
                                    : TpchQ17Lindi()};
      RunResult result =
          MustRun(&dfs, wf, ForEngine(config.engine, Ec2Cluster(100),
                                      config.flavor));
      row.push_back(Fmt(result.makespan));
    }
    PrintRow(row);
  }
  return 0;
}
