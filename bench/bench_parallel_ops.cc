// Parallel data-plane scaling: wall-clock time of the hot relational kernels
// (hash join, grouped aggregation, sort) at 1/2/4/8 threads over >= 1M-row
// inputs. Unlike the makespan benchmarks this measures REAL time of
// Musketeer's own kernels; it also re-checks the determinism contract by
// comparing every multi-threaded output bit-for-bit against the 1-thread
// baseline (non-zero exit on any divergence).
//
// Results are written to BENCH_parallel_scaling.json as
// [{"op", "rows", "threads", "wall_ms"}, ...]. Note: on machines with fewer
// cores than the requested thread count the extra threads time-slice one
// core, so wall-clock speedup tops out at the core count even though the
// pool genuinely runs that many threads.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/base/parallel.h"
#include "src/relational/ops.h"

namespace musketeer {
namespace {

constexpr size_t kJoinRows = 1'000'000;
constexpr size_t kAggRows = 2'000'000;
constexpr int64_t kAggGroups = 1024;
const std::vector<int> kThreadCounts = {1, 2, 4, 8};

// Deterministic pseudo-random table: key in [0, key_range), an int payload,
// and a double whose summation order is observable in the low bits.
Table MakeInput(size_t rows, int64_t key_range, uint64_t seed) {
  Schema schema({{"k", FieldType::kInt64},
                 {"v", FieldType::kInt64},
                 {"x", FieldType::kDouble}});
  Table t(schema);
  t.Reserve(rows);
  uint64_t state = seed;
  for (size_t i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    int64_t k = static_cast<int64_t>(state >> 33) % key_range;
    int64_t v = static_cast<int64_t>(state >> 17) % 1000;
    double x = static_cast<double>(static_cast<int64_t>(state % 100003)) / 7.0;
    t.AddRow({k, v, x});
  }
  return t;
}

// Minimum wall-clock milliseconds of `reps` runs; the result of the last run
// is stored in *out for the bit-identity check.
template <typename Fn>
double MinWallMs(int reps, const Fn& fn, Table* out) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    Table result = fn();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (r == 0 || ms < best) {
      best = ms;
    }
    *out = std::move(result);
  }
  return best;
}

struct BenchOp {
  std::string name;
  size_t rows;
  std::function<Table()> run;
};

int RunAll() {
  std::printf("Building inputs (%zu join rows, %zu agg rows)...\n", kJoinRows,
              kAggRows);
  // Join sides keyed over [0, rows): ~1 match per probe row, so the output
  // stays join-input-sized instead of exploding quadratically.
  Table join_left = MakeInput(kJoinRows, static_cast<int64_t>(kJoinRows), 42);
  Table join_right = MakeInput(kJoinRows, static_cast<int64_t>(kJoinRows), 7);
  Table agg_in = MakeInput(kAggRows, kAggGroups, 1234);
  std::vector<AggSpec> aggs{{AggFn::kSum, 2, "sx"},
                            {AggFn::kAvg, 2, "ax"},
                            {AggFn::kMin, 1, "mn"},
                            {AggFn::kMax, 1, "mx"},
                            {AggFn::kCount, 0, "c"}};

  std::vector<BenchOp> ops;
  ops.push_back({"hash_join", kJoinRows, [&] {
                   return std::move(HashJoin(join_left, join_right, 0, 0))
                       .value();
                 }});
  ops.push_back({"group_by_agg", kAggRows, [&] {
                   return std::move(GroupByAgg(agg_in, {0}, aggs)).value();
                 }});
  ops.push_back({"sort", kAggRows, [&] { return SortBy(agg_in, {0, 1}); }});

  PrintHeader("Parallel kernel scaling",
              "wall-clock ms (min of 3); every row bit-checked against the "
              "1-thread baseline");
  PrintRow({"op", "rows", "threads", "wall_ms", "speedup"});

  BenchJsonWriter json;
  bool all_identical = true;
  for (const BenchOp& op : ops) {
    Table baseline;
    double baseline_ms = 0;
    for (int threads : kThreadCounts) {
      ScopedParallelThreads width(threads);
      Table result;
      const double ms = MinWallMs(3, op.run, &result);
      if (threads == 1) {
        baseline = std::move(result);
        baseline_ms = ms;
      } else if (!Table::Identical(baseline, result)) {
        std::fprintf(stderr,
                     "FATAL: %s at %d threads diverges from the 1-thread "
                     "baseline\n",
                     op.name.c_str(), threads);
        all_identical = false;
      }
      json.Add(op.name, op.rows, threads, ms);
      PrintRow({op.name, std::to_string(op.rows), std::to_string(threads),
                Fmt(ms, "%.2f"), Fmt(baseline_ms / ms, "%.2fx")});
    }
  }

  const std::string json_path = "BENCH_parallel_scaling.json";
  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu records), pool spawned %d worker thread(s)\n",
              json_path.c_str(), ops.size() * kThreadCounts.size(),
              TaskPool::Global().num_workers());
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace musketeer

int main() { return musketeer::RunAll(); }
