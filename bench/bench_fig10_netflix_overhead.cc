// Figure 10: makespan of the NetFlix movie-recommendation workflow (13
// operators, data-intensive self-join) on EC2 — Musketeer-generated code vs
// hand-optimized baselines for Hadoop, Spark and Naiad, sweeping the number
// of movies used for the prediction (§6.4).
// Expected shape: generated-code overhead is virtually zero for Naiad and
// stays under ~30% for Spark and Hadoop even as the input grows (the Spark
// gap comes from the simple type-inference missing a fusion).

#include "bench/bench_common.h"

namespace musketeer {
namespace {

double RunNetflix(const NetflixDataset& data, int64_t max_movie,
                  EngineKind engine, CodeGenOptions::Flavor flavor) {
  Dfs dfs;
  dfs.Put("ratings", data.ratings);
  dfs.Put("movies", data.movies);
  WorkflowSpec wf{.id = "netflix",
                  .language = FrontendLanguage::kBeer,
                  .source = NetflixBeer(max_movie)};
  return MustRun(&dfs, wf, ForEngine(engine, Ec2Cluster(100), flavor)).makespan;
}

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;
  NetflixDataset data = MakeNetflix();

  PrintHeader("Figure 10: NetFlix recommender, generated vs hand-optimized",
              "EC2 100 nodes; cells = generated s / hand-tuned s (overhead %)");
  const int64_t kMovieCounts[] = {50, 100, 150, 200};
  std::vector<std::string> head{"system"};
  for (int64_t m : kMovieCounts) {
    head.push_back(std::to_string(m * 85) + " movies");  // nominal (17k total)
  }
  PrintRow(head);

  for (EngineKind engine :
       {EngineKind::kHadoop, EngineKind::kSpark, EngineKind::kNaiad}) {
    std::vector<std::string> row{EngineKindName(engine)};
    for (int64_t m : kMovieCounts) {
      double generated =
          RunNetflix(data, m, engine, CodeGenOptions::Flavor::kMusketeer);
      double hand =
          RunNetflix(data, m, engine, CodeGenOptions::Flavor::kIdealHandTuned);
      double overhead = (generated / hand - 1.0) * 100.0;
      row.push_back(Fmt(generated, "%.0f") + "/" + Fmt(hand, "%.0f") + " (" +
                    Fmt(overhead, "%+.0f%%") + ")");
    }
    PrintRow(row);
  }
  return 0;
}
