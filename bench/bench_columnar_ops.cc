// Columnar vs row-of-variants data plane: wall-clock time of the hot
// relational kernels (hash join, grouped aggregation, sort, and the fused
// select→map→aggregate pipeline) on the typed columnar kernels
// (src/relational/ops.cc) against their reference implementation at every
// thread width in {1, 2, 4, 8}.
//
// Three gates, all of which make the binary exit non-zero:
//   * identity: every columnar result is bit-checked (Table::Identical)
//     against its reference at every width, re-asserting the migration and
//     fusion contracts on big inputs;
//   * the 1.5x single-threaded columnar-vs-row floor on join and group-by;
//   * thread scaling on EVERY op, hardware-aware: the floor at 8 threads is
//     the op's full floor (4x join/group-by/fused, 2.5x sort) scaled by
//     min(8, hardware_threads)/8, never below 0.85x — on a 1-core host
//     timeslicing cannot speed anything up, so the honest gate there is
//     "parallelism must not regress", while >= 8 real cores get the full
//     floors.
//
// Results are written to BENCH_columnar.json as
// [{"op", "rows", "threads", "wall_ms"}, ...] with op names suffixed
// _row / _columnar (for fused_pipeline: _row = unfused columnar operator
// pipeline, _columnar = fused kernel), plus one "hardware_threads" metadata
// record so scaling numbers can be judged against the host that produced
// them.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/base/parallel.h"
#include "src/ir/expr.h"
#include "src/relational/ops.h"
#include "tests/row_reference.h"

namespace musketeer {
namespace {

constexpr size_t kJoinRows = 1'000'000;
constexpr size_t kAggRows = 2'000'000;
constexpr int64_t kAggGroups = 1024;
constexpr double kSpeedupFloor = 1.5;  // join/group-by vs row at 1 thread
constexpr double kScaleRegressionFloor = 0.85;  // N threads vs 1, any host

const std::vector<int> kThreadSweep = {1, 2, 4, 8};

// Deterministic pseudo-random table: key in [0, key_range), an int payload,
// and a double whose summation order is observable in the low bits.
Table MakeInput(size_t rows, int64_t key_range, uint64_t seed) {
  Schema schema({{"k", FieldType::kInt64},
                 {"v", FieldType::kInt64},
                 {"x", FieldType::kDouble}});
  Table t(schema);
  t.Reserve(rows);
  uint64_t state = seed;
  for (size_t i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    int64_t k = static_cast<int64_t>(state >> 33) % key_range;
    int64_t v = static_cast<int64_t>(state >> 17) % 1000;
    double x = static_cast<double>(static_cast<int64_t>(state % 100003)) / 7.0;
    t.AddRow({k, v, x});
  }
  return t;
}

// Minimum wall-clock milliseconds of `reps` runs; the result of the last run
// is stored in *out for the bit-identity check.
template <typename Fn>
double MinWallMs(int reps, const Fn& fn, Table* out) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    Table result = fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (r == 0 || ms < best) {
      best = ms;
    }
    *out = std::move(result);
  }
  return best;
}

struct BenchOp {
  std::string name;
  size_t rows;
  bool enforce_floor;  // 1.5x columnar-vs-row contract (join / group-by)
  double scale_floor8;  // required col 1t/8t speedup on a >= 8 core host
  std::function<Table()> row;  // reference (row kernels, or unfused pipeline)
  std::function<Table()> col;  // columnar / fused kernel under test
};

// The scaling floor for `threads` workers on this host: the op's full
// 8-thread floor prorated by how many real cores can back those workers
// (min(threads, hw)/8), never below the no-regression floor. On >= 8 cores
// the 8-thread sweep point must hit the full floor; a 1-core host degrades
// every point to "parallelism must not cost more than 15%".
double ScaleFloor(const BenchOp& op, int threads) {
  const int hw = static_cast<int>(HardwareThreads());
  const double effective = static_cast<double>(std::min(threads, hw));
  return std::max(kScaleRegressionFloor, op.scale_floor8 * effective / 8.0);
}

int RunAll() {
  std::printf("Building inputs (%zu join rows, %zu agg rows)...\n", kJoinRows,
              kAggRows);
  // Join sides keyed over [0, rows): ~1 match per probe row, so the output
  // stays join-input-sized instead of exploding quadratically.
  Table join_left = MakeInput(kJoinRows, static_cast<int64_t>(kJoinRows), 42);
  Table join_right = MakeInput(kJoinRows, static_cast<int64_t>(kJoinRows), 7);
  Table agg_in = MakeInput(kAggRows, kAggGroups, 1234);
  std::vector<AggSpec> aggs{{AggFn::kSum, 2, "sx"},
                            {AggFn::kAvg, 2, "ax"},
                            {AggFn::kMin, 1, "mn"},
                            {AggFn::kMax, 1, "mx"},
                            {AggFn::kCount, 0, "c"}};
  const std::vector<int> group_cols = {0};
  const std::vector<int> sort_cols = {0, 1};

  // Fused pipeline: SELECT k < kAggGroups/2 → MAP {k, y = x*2 + v} →
  // GROUP BY k {SUM(y), COUNT}. The reference side runs the same chain as
  // three unfused columnar operators; the test side runs the one-pass fused
  // kernel — outputs must be bit-identical (same filtered-row chunking, same
  // merge tree).
  ExprPtr sel_cond = Expr::Binary(BinOp::kLt, Expr::Column("k"),
                                  Expr::Literal(kAggGroups / 2));
  ExprPtr map_y = Expr::Binary(
      BinOp::kAdd,
      Expr::Binary(BinOp::kMul, Expr::Column("x"), Expr::Literal(2.0)),
      Expr::Column("v"));
  MaskEval sel_mask = std::move(sel_cond->CompileMask(agg_in.schema())).value();
  FusedTransform ft;
  ft.gather_cols = {0, 2, 1};  // k, x, v — first-use order of the MAP
  ft.scratch_schema = Schema({{"k", FieldType::kInt64},
                              {"x", FieldType::kDouble},
                              {"v", FieldType::kInt64}});
  ft.out_schema =
      Schema({{"k", FieldType::kInt64}, {"y", FieldType::kDouble}});
  ft.exprs.push_back(
      std::move(Expr::Column("k")->CompileBatch(ft.scratch_schema)).value());
  ft.exprs.push_back(std::move(map_y->CompileBatch(ft.scratch_schema)).value());
  const std::vector<AggSpec> fused_aggs{{AggFn::kSum, 1, "sy"},
                                        {AggFn::kCount, 0, "c"}};
  const std::vector<int> fused_group = {0};
  BatchEval map_k =
      std::move(Expr::Column("k")->CompileBatch(agg_in.schema())).value();
  BatchEval map_y_full =
      std::move(map_y->CompileBatch(agg_in.schema())).value();
  Schema map_out({{"k", FieldType::kInt64}, {"y", FieldType::kDouble}});

  std::vector<BenchOp> ops;
  ops.push_back(
      {"hash_join", kJoinRows, /*enforce_floor=*/true, /*scale_floor8=*/4.0,
       [&] {
         return std::move(rowref::HashJoin(join_left, join_right, 0, 0))
             .value();
       },
       [&] { return std::move(HashJoin(join_left, join_right, 0, 0)).value(); }});
  ops.push_back(
      {"group_by_agg", kAggRows, /*enforce_floor=*/true, /*scale_floor8=*/4.0,
       [&] { return std::move(rowref::GroupByAgg(agg_in, group_cols, aggs)).value(); },
       [&] { return std::move(GroupByAgg(agg_in, group_cols, aggs)).value(); }});
  ops.push_back({"sort", kAggRows, /*enforce_floor=*/false,
                 /*scale_floor8=*/2.5,
                 [&] { return rowref::SortBy(agg_in, sort_cols); },
                 [&] { return SortBy(agg_in, sort_cols); }});
  ops.push_back(
      {"fused_pipeline", kAggRows, /*enforce_floor=*/false,
       /*scale_floor8=*/4.0,
       [&] {
         Table selected = SelectRowsMask(agg_in, {sel_mask});
         Table mapped = MapRowsBatch(selected, map_out, {map_k, map_y_full});
         return std::move(GroupByAgg(mapped, fused_group, fused_aggs)).value();
       },
       [&] {
         return std::move(FusedSelectTransformAgg(agg_in, {sel_mask}, ft,
                                                  fused_group, fused_aggs))
             .value();
       }});

  PrintHeader("Columnar vs row data plane",
              "wall-clock ms (min of 3); columnar output bit-checked against "
              "its reference at every thread width");
  PrintRow({"op", "rows", "threads", "row_ms", "col_ms", "speedup"});

  BenchJsonWriter json;
  const int hw = static_cast<int>(HardwareThreads());
  // Metadata record: scaling ratios only mean something relative to the
  // cores that produced them.
  json.Add("hardware_threads", 0, hw, 0.0);
  bool ok = true;
  for (const BenchOp& op : ops) {
    std::map<int, double> col_by_threads;
    for (int threads : kThreadSweep) {
      ScopedParallelThreads width(threads);
      Table row_result;
      Table col_result;
      const double row_ms = MinWallMs(3, op.row, &row_result);
      const double col_ms = MinWallMs(3, op.col, &col_result);
      col_by_threads[threads] = col_ms;
      if (!Table::Identical(row_result, col_result)) {
        std::fprintf(stderr,
                     "FATAL: %s columnar output diverges from its reference "
                     "at %d threads\n",
                     op.name.c_str(), threads);
        ok = false;
      }
      const double speedup = row_ms / col_ms;
      if (op.enforce_floor && threads == 1 && speedup < kSpeedupFloor) {
        std::fprintf(stderr,
                     "FATAL: %s single-threaded columnar speedup %.2fx is "
                     "below the %.1fx floor\n",
                     op.name.c_str(), speedup, kSpeedupFloor);
        ok = false;
      }
      json.Add(op.name + "_row", op.rows, threads, row_ms);
      json.Add(op.name + "_columnar", op.rows, threads, col_ms);
      PrintRow({op.name, std::to_string(op.rows), std::to_string(threads),
                Fmt(row_ms, "%.2f"), Fmt(col_ms, "%.2f"),
                Fmt(speedup, "%.2fx")});
    }
    // Thread-scaling gate over the columnar side of the sweep.
    for (int threads : kThreadSweep) {
      if (threads == 1) {
        continue;
      }
      const double scaling = col_by_threads[1] / col_by_threads[threads];
      const double floor = ScaleFloor(op, threads);
      std::printf("%s scaling at %d threads: %.2fx (floor %.2fx, %d core(s))\n",
                  op.name.c_str(), threads, scaling, floor, hw);
      if (scaling < floor) {
        std::fprintf(stderr,
                     "FATAL: %s columnar scaling %.2fx at %d threads is below "
                     "the %.2fx floor (%d hardware thread(s))\n",
                     op.name.c_str(), scaling, threads, floor, hw);
        ok = false;
      }
    }
  }

  const std::string json_path = "BENCH_columnar.json";
  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s, pool spawned %d worker thread(s)\n",
              json_path.c_str(), TaskPool::Global().num_workers());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace musketeer

int main() { return musketeer::RunAll(); }
