// Columnar vs row-of-variants data plane: wall-clock time of the hot
// relational kernels (hash join, grouped aggregation, sort) on the typed
// columnar kernels (src/relational/ops.cc) against the preserved row
// reference (tests/row_reference.cc) at 1 and N threads.
//
// The row baseline includes the Row materialization at the kernel boundary —
// that is the inherent cost of row-of-variants storage (the seed plane paid
// it at load time instead). Every columnar result is also bit-checked
// (Table::Identical) against the row result, re-asserting the migration
// contract on big inputs; the binary exits non-zero on divergence or if the
// single-threaded join/group-by speedup falls below the 1.5x floor the
// columnar refactor promises.
//
// Results are written to BENCH_columnar.json as
// [{"op", "rows", "threads", "wall_ms"}, ...] with op names suffixed
// _row / _columnar.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/base/parallel.h"
#include "src/relational/ops.h"
#include "tests/row_reference.h"

namespace musketeer {
namespace {

constexpr size_t kJoinRows = 1'000'000;
constexpr size_t kAggRows = 2'000'000;
constexpr int64_t kAggGroups = 1024;
constexpr int kMaxThreads = 8;
constexpr double kSpeedupFloor = 1.5;  // join/group-by at 1 thread

// Deterministic pseudo-random table: key in [0, key_range), an int payload,
// and a double whose summation order is observable in the low bits.
Table MakeInput(size_t rows, int64_t key_range, uint64_t seed) {
  Schema schema({{"k", FieldType::kInt64},
                 {"v", FieldType::kInt64},
                 {"x", FieldType::kDouble}});
  Table t(schema);
  t.Reserve(rows);
  uint64_t state = seed;
  for (size_t i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    int64_t k = static_cast<int64_t>(state >> 33) % key_range;
    int64_t v = static_cast<int64_t>(state >> 17) % 1000;
    double x = static_cast<double>(static_cast<int64_t>(state % 100003)) / 7.0;
    t.AddRow({k, v, x});
  }
  return t;
}

// Minimum wall-clock milliseconds of `reps` runs; the result of the last run
// is stored in *out for the bit-identity check.
template <typename Fn>
double MinWallMs(int reps, const Fn& fn, Table* out) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    Table result = fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (r == 0 || ms < best) {
      best = ms;
    }
    *out = std::move(result);
  }
  return best;
}

struct BenchOp {
  std::string name;
  size_t rows;
  bool enforce_floor;            // 1.5x contract applies (join / group-by)
  std::function<Table()> row;    // row-of-variants reference
  std::function<Table()> col;    // columnar kernel
};

int RunAll() {
  std::printf("Building inputs (%zu join rows, %zu agg rows)...\n", kJoinRows,
              kAggRows);
  // Join sides keyed over [0, rows): ~1 match per probe row, so the output
  // stays join-input-sized instead of exploding quadratically.
  Table join_left = MakeInput(kJoinRows, static_cast<int64_t>(kJoinRows), 42);
  Table join_right = MakeInput(kJoinRows, static_cast<int64_t>(kJoinRows), 7);
  Table agg_in = MakeInput(kAggRows, kAggGroups, 1234);
  std::vector<AggSpec> aggs{{AggFn::kSum, 2, "sx"},
                            {AggFn::kAvg, 2, "ax"},
                            {AggFn::kMin, 1, "mn"},
                            {AggFn::kMax, 1, "mx"},
                            {AggFn::kCount, 0, "c"}};
  const std::vector<int> group_cols = {0};
  const std::vector<int> sort_cols = {0, 1};

  std::vector<BenchOp> ops;
  ops.push_back(
      {"hash_join", kJoinRows, /*enforce_floor=*/true,
       [&] {
         return std::move(rowref::HashJoin(join_left, join_right, 0, 0))
             .value();
       },
       [&] { return std::move(HashJoin(join_left, join_right, 0, 0)).value(); }});
  ops.push_back(
      {"group_by_agg", kAggRows, /*enforce_floor=*/true,
       [&] { return std::move(rowref::GroupByAgg(agg_in, group_cols, aggs)).value(); },
       [&] { return std::move(GroupByAgg(agg_in, group_cols, aggs)).value(); }});
  ops.push_back({"sort", kAggRows, /*enforce_floor=*/false,
                 [&] { return rowref::SortBy(agg_in, sort_cols); },
                 [&] { return SortBy(agg_in, sort_cols); }});

  PrintHeader("Columnar vs row data plane",
              "wall-clock ms (min of 3); columnar output bit-checked against "
              "the row reference");
  PrintRow({"op", "rows", "threads", "row_ms", "col_ms", "speedup"});

  BenchJsonWriter json;
  bool ok = true;
  for (const BenchOp& op : ops) {
    for (int threads : {1, kMaxThreads}) {
      ScopedParallelThreads width(threads);
      Table row_result;
      Table col_result;
      const double row_ms = MinWallMs(3, op.row, &row_result);
      const double col_ms = MinWallMs(3, op.col, &col_result);
      if (!Table::Identical(row_result, col_result)) {
        std::fprintf(stderr,
                     "FATAL: %s columnar output diverges from the row "
                     "reference at %d threads\n",
                     op.name.c_str(), threads);
        ok = false;
      }
      const double speedup = row_ms / col_ms;
      if (op.enforce_floor && threads == 1 && speedup < kSpeedupFloor) {
        std::fprintf(stderr,
                     "FATAL: %s single-threaded columnar speedup %.2fx is "
                     "below the %.1fx floor\n",
                     op.name.c_str(), speedup, kSpeedupFloor);
        ok = false;
      }
      json.Add(op.name + "_row", op.rows, threads, row_ms);
      json.Add(op.name + "_columnar", op.rows, threads, col_ms);
      PrintRow({op.name, std::to_string(op.rows), std::to_string(threads),
                Fmt(row_ms, "%.2f"), Fmt(col_ms, "%.2f"),
                Fmt(speedup, "%.2fx")});
    }
  }

  const std::string json_path = "BENCH_columnar.json";
  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s, pool spawned %d worker thread(s)\n",
              json_path.c_str(), TaskPool::Global().num_workers());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace musketeer

int main() { return musketeer::RunAll(); }
