// Figure 8: Musketeer's automatic mapping vs. per-system baselines for five
// iterations of PageRank on Orkut and Twitter at 1, 16 and 100 nodes (a, b),
// plus resource efficiency on Twitter (c).
// Expected shape: Musketeer's pick is close to the best-in-class baseline at
// every scale — GraphChi on one node, Naiad/PowerGraph at 16, Naiad at 100.

#include "bench/bench_common.h"

namespace musketeer {
namespace {

const EngineKind kBaselines[] = {EngineKind::kHadoop, EngineKind::kSpark,
                                 EngineKind::kNaiad, EngineKind::kPowerGraph,
                                 EngineKind::kGraphChi};

double RunPageRank(const GraphDataset& graph, RunOptions options,
                   std::string* engines_used = nullptr) {
  Dfs dfs;
  dfs.Put("vertices", graph.vertices);
  dfs.Put("edges", graph.edges);
  WorkflowSpec wf{.id = "pagerank-5",
                  .language = FrontendLanguage::kGas,
                  .source = PageRankGas(5)};
  RunResult result = MustRun(&dfs, wf, options);
  if (engines_used != nullptr) {
    *engines_used = EnginesUsed(result);
  }
  return result.makespan;
}

void RunFigure(const char* title, const GraphDataset& graph) {
  PrintHeader(title, "values = makespan (s); Musketeer row picks its own engine");
  PrintRow({"system", "1 node", "16 nodes", "100 nodes"});
  for (EngineKind engine : kBaselines) {
    std::vector<std::string> row{EngineKindName(engine)};
    for (int nodes : {1, 16, 100}) {
      if (!IsDistributedEngine(engine) && nodes != 1) {
        row.push_back("-");
        continue;
      }
      if (IsDistributedEngine(engine) && nodes == 1) {
        row.push_back("-");
        continue;
      }
      RunOptions options =
          ForEngine(engine, nodes == 1 ? SingleMachine() : Ec2Cluster(nodes),
                    CodeGenOptions::Flavor::kIdealHandTuned);
      row.push_back(Fmt(RunPageRank(graph, options)));
    }
    PrintRow(row);
  }

  std::vector<std::string> mrow{"Musketeer(auto)"};
  std::vector<std::string> chosen;
  for (int nodes : {1, 16, 100}) {
    RunOptions options;
    options.cluster = nodes == 1 ? SingleMachine() : Ec2Cluster(nodes);
    std::string engines;
    mrow.push_back(Fmt(RunPageRank(graph, options, &engines)));
    chosen.push_back(engines);
  }
  PrintRow(mrow);
  std::printf("Musketeer chose: 1 node -> %s, 16 nodes -> %s, 100 nodes -> %s\n",
              chosen[0].c_str(), chosen[1].c_str(), chosen[2].c_str());
}

// Fig. 8c: resource efficiency = fastest single-node aggregate time divided
// by (makespan x nodes used).
void RunEfficiency(const GraphDataset& graph) {
  PrintHeader("Figure 8c: resource efficiency, PageRank on Twitter",
              "efficiency = best single-node time / (makespan * nodes); higher "
              "is better");

  double best_single = 1e300;
  for (EngineKind engine :
       {EngineKind::kGraphChi, EngineKind::kMetis, EngineKind::kSerialC}) {
    RunOptions options = ForEngine(engine, SingleMachine(),
                                   CodeGenOptions::Flavor::kIdealHandTuned);
    Dfs dfs;
    dfs.Put("vertices", graph.vertices);
    dfs.Put("edges", graph.edges);
    WorkflowSpec wf{.id = "pagerank-5",
                    .language = FrontendLanguage::kGas,
                    .source = PageRankGas(5)};
    Musketeer m(&dfs);
    auto result = m.Run(wf, options);
    if (result.ok()) {
      best_single = std::min(best_single, result->makespan);
    }
  }

  PrintRow({"configuration", "nodes", "makespan (s)", "efficiency"});
  struct Config {
    const char* label;
    EngineKind engine;
    int nodes;
  };
  const Config kConfigs[] = {
      {"GraphChi", EngineKind::kGraphChi, 1},
      {"PowerGraph", EngineKind::kPowerGraph, 16},
      {"Naiad", EngineKind::kNaiad, 16},
      {"Naiad", EngineKind::kNaiad, 100},
      {"Spark", EngineKind::kSpark, 100},
  };
  for (const Config& config : kConfigs) {
    RunOptions options = ForEngine(
        config.engine, config.nodes == 1 ? SingleMachine() : Ec2Cluster(config.nodes),
        CodeGenOptions::Flavor::kIdealHandTuned);
    double makespan = RunPageRank(graph, options);
    double efficiency = best_single / (makespan * config.nodes);
    PrintRow({config.label, Fmt(config.nodes, "%.0f"), Fmt(makespan),
              Fmt(efficiency * 100, "%.1f%%")});
  }

  // Musketeer's automatic choice at each scale.
  for (int nodes : {1, 16, 100}) {
    RunOptions options;
    options.cluster = nodes == 1 ? SingleMachine() : Ec2Cluster(nodes);
    std::string engines;
    double makespan = RunPageRank(graph, options, &engines);
    double efficiency = best_single / (makespan * nodes);
    PrintRow({"Musketeer(" + engines + ")", Fmt(nodes, "%.0f"), Fmt(makespan),
              Fmt(efficiency * 100, "%.1f%%")});
  }
}

}  // namespace
}  // namespace musketeer

int main() {
  musketeer::RunFigure("Figure 8a: PageRank on Orkut — Musketeer vs baselines",
                       musketeer::OrkutGraph());
  musketeer::GraphDataset twitter = musketeer::TwitterGraph();
  musketeer::RunFigure("Figure 8b: PageRank on Twitter — Musketeer vs baselines",
                       twitter);
  musketeer::RunEfficiency(twitter);
  return 0;
}
