// Figure 3: five-iteration PageRank on the Orkut (3M/117M) and Twitter
// (43M/1.4B) graphs across systems and EC2 cluster sizes (§2.2).
// Expected shape: GraphLINQ-on-Naiad wins on the big graph at 100 nodes;
// PowerGraph is best at 16 nodes (vertex-cut sharding) and gains nothing
// beyond 16; GraphChi is surprisingly competitive on one machine for the
// small graph; Hadoop is far behind (per-iteration job overheads).

#include "bench/bench_common.h"

namespace musketeer {
namespace {

void RunGraph(const char* title, const GraphDataset& graph) {
  PrintHeader(title, "values = makespan (s); '-' = engine uses one machine");
  PrintRow({"system", "16 nodes", "100 nodes"});
  const EngineKind kSystems[] = {EngineKind::kHadoop, EngineKind::kSpark,
                                 EngineKind::kNaiad, EngineKind::kPowerGraph,
                                 EngineKind::kGraphChi};
  for (EngineKind engine : kSystems) {
    std::vector<std::string> row{EngineKindName(engine)};
    for (int nodes : {16, 100}) {
      if (!IsDistributedEngine(engine) && nodes != 16) {
        row.push_back("-");
        continue;
      }
      Dfs dfs;
      dfs.Put("vertices", graph.vertices);
      dfs.Put("edges", graph.edges);
      WorkflowSpec wf{.id = "pagerank-5",
                      .language = FrontendLanguage::kGas,
                      .source = PageRankGas(5)};
      RunResult result = MustRun(&dfs, wf, ForEngine(engine, Ec2Cluster(nodes)));
      row.push_back(Fmt(result.makespan));
    }
    PrintRow(row);
  }
}

}  // namespace
}  // namespace musketeer

int main() {
  musketeer::RunGraph("Figure 3a: PageRank on Orkut (3M vertices, 117M edges)",
                      musketeer::OrkutGraph());
  musketeer::RunGraph("Figure 3b: PageRank on Twitter (43M vertices, 1.4B edges)",
                      musketeer::TwitterGraph());
  return 0;
}
