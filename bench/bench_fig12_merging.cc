// Figure 12: impact of operator merging and shared scans (§4.3.2/4.3.3) on
//  (a) the top-shopper workflow (three operators, one shared scan) and
//  (b) cross-community PageRank, sweeping input size on the EC2 cluster.
// Expected shape: merging removes per-job overheads (a one-off ~25-50 s win)
// plus a linear shared-scan benefit as the input grows (2-5x overall).

#include "bench/bench_common.h"

namespace musketeer {
namespace {

double RunTopShopper(double nominal_rows, bool merging) {
  Dfs dfs;
  dfs.Put("purchases", MakePurchases(nominal_rows, 4000, 10, 31));
  WorkflowSpec wf{.id = "top-shopper",
                  .language = FrontendLanguage::kBeer,
                  .source = TopShopperBeer(5, 5000.0)};
  RunOptions options = ForEngine(EngineKind::kHadoop, Ec2Cluster(100));
  options.planner.enable_merging = merging;
  options.codegen.shared_scans = merging;
  return MustRun(&dfs, wf, options).makespan;
}

double RunHybrid(const CommunityPair& communities, double scale, bool merging) {
  Dfs dfs;
  // Scale both communities' nominal edge counts by `scale`.
  auto scaled = [scale](const TablePtr& t) {
    auto copy = std::make_shared<Table>(*t);
    copy->set_scale(t->scale() * scale);
    return copy;
  };
  dfs.Put("lj_edges", scaled(communities.a.edges));
  dfs.Put("web_edges", scaled(communities.b.edges));
  WorkflowSpec wf{.id = "cross-community-pagerank",
                  .language = FrontendLanguage::kBeer,
                  .source = CrossCommunityPageRankBeer(5)};
  RunOptions options;
  options.cluster = Ec2Cluster(100);
  options.engines = {EngineKind::kHadoop, EngineKind::kNaiad};
  options.planner.enable_merging = merging;
  options.codegen.shared_scans = merging;
  return MustRun(&dfs, wf, options).makespan;
}

}  // namespace
}  // namespace musketeer

int main() {
  using namespace musketeer;

  PrintHeader("Figure 12a: top-shopper with and without operator merging",
              "EC2 100 nodes, Hadoop; columns = purchases (nominal rows)");
  PrintRow({"config", "100M", "400M", "1.6B", "6.4B"});
  const double kRows[] = {1e8, 4e8, 1.6e9, 6.4e9};
  std::vector<std::string> on{"merging on"};
  std::vector<std::string> off{"merging off"};
  for (double rows : kRows) {
    on.push_back(Fmt(RunTopShopper(rows, true)));
    off.push_back(Fmt(RunTopShopper(rows, false)));
  }
  PrintRow(on);
  PrintRow(off);

  PrintHeader("Figure 12b: cross-community PageRank with/without merging",
              "EC2 100 nodes; columns = input scale multiplier");
  CommunityPair communities = MakeOverlappingCommunities();
  PrintRow({"config", "x1", "x2", "x4"});
  std::vector<std::string> hon{"merging on"};
  std::vector<std::string> hoff{"merging off"};
  for (double scale : {1.0, 2.0, 4.0}) {
    hon.push_back(Fmt(RunHybrid(communities, scale, true)));
    hoff.push_back(Fmt(RunHybrid(communities, scale, false)));
  }
  PrintRow(hon);
  PrintRow(hoff);
  return 0;
}
