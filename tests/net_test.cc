// End-to-end tests for the network front door (src/net/): HTTP parsing,
// real-socket submit/status/result round-trips against a live server, the
// tenant admission codes (429 vs 503), the line protocol, and the
// observability endpoints. The flagship assertion: results fetched over the
// wire decode to tables bit-identical (Table::Identical) to an in-process
// Musketeer::Run of the same workflow.

#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "src/base/json.h"
#include "src/core/musketeer.h"
#include "src/net/client.h"
#include "src/net/peer_dfs.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

namespace musketeer {
namespace {

// ---- HttpParser ------------------------------------------------------------

TEST(HttpParserTest, ParsesPipelinedRequestsAcrossFeeds) {
  HttpParser parser;
  std::vector<HttpRequest> out;
  const std::string wire =
      "POST /submit HTTP/1.1\r\nX-Tenant: alice\r\nContent-Length: 5\r\n\r\n"
      "hello"
      "GET /status/7?verbose=1 HTTP/1.1\r\n\r\n";
  // Drip-feed one byte at a time: framing must not depend on packet
  // boundaries.
  for (char c : wire) {
    ASSERT_TRUE(parser.Feed(std::string_view(&c, 1), &out));
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].method, "POST");
  EXPECT_EQ(out[0].path, "/submit");
  EXPECT_EQ(out[0].body, "hello");
  ASSERT_NE(out[0].FindHeader("x-tenant"), nullptr);
  EXPECT_EQ(*out[0].FindHeader("x-tenant"), "alice");
  EXPECT_EQ(out[1].method, "GET");
  EXPECT_EQ(out[1].path, "/status/7");
  EXPECT_EQ(out[1].query, "verbose=1");
  EXPECT_TRUE(out[1].body.empty());
}

TEST(HttpParserTest, ToleratesBareNewlines) {
  HttpParser parser;
  std::vector<HttpRequest> out;
  ASSERT_TRUE(parser.Feed("GET /healthz HTTP/1.1\nHost: x\n\n", &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].path, "/healthz");
}

TEST(HttpParserTest, ErrorStatusesLatch) {
  {
    HttpParser parser;
    std::vector<HttpRequest> out;
    EXPECT_FALSE(parser.Feed("NONSENSE\r\n\r\n", &out));
    EXPECT_TRUE(parser.error());
    EXPECT_EQ(parser.error_status(), 400);
    // Latched: further feeds keep failing.
    EXPECT_FALSE(parser.Feed("GET / HTTP/1.1\r\n\r\n", &out));
  }
  {
    HttpParser parser;
    std::vector<HttpRequest> out;
    EXPECT_FALSE(parser.Feed(
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", &out));
    EXPECT_EQ(parser.error_status(), 501);
  }
  {
    HttpParser parser(/*max_message_bytes=*/64);
    std::vector<HttpRequest> out;
    EXPECT_FALSE(
        parser.Feed("POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n", &out));
    EXPECT_EQ(parser.error_status(), 413);
  }
  {
    HttpParser parser(/*max_message_bytes=*/64);
    std::vector<HttpRequest> out;
    std::string endless = "GET / HTTP/1.1\r\nX-Junk: ";
    endless += std::string(200, 'a');
    EXPECT_FALSE(parser.Feed(endless, &out));
    EXPECT_EQ(parser.error_status(), 431);
  }
}

TEST(HttpParserTest, ResponseRoundTripsThroughResponseParser) {
  HttpResponse response;
  response.status = 429;
  response.content_type = "application/json";
  response.body = "{\"error\": \"over quota\"}";
  HttpResponseParser parser;
  std::vector<HttpResponseParser::Response> out;
  ASSERT_TRUE(parser.Feed(SerializeResponse(response), &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status, 429);
  EXPECT_EQ(out[0].body, response.body);
  ASSERT_NE(out[0].FindHeader("content-type"), nullptr);
  EXPECT_EQ(*out[0].FindHeader("content-type"), "application/json");
}

// ---- live-server fixtures --------------------------------------------------

void SeedDfs(Dfs* dfs) {
  GraphSpec spec;
  spec.name = "net-graph";
  spec.nominal_vertices = 50000;
  spec.nominal_edges = 400000;
  spec.sample_vertices = 300;
  GraphDataset graph = MakePowerLawGraph(spec);
  dfs->Put("vertices_rel", graph.vertices);
  dfs->Put("edges_rel", graph.edges);
  dfs->Put("vertices", graph.vertices);
  dfs->Put("edges", graph.edges);
  dfs->Put("purchases", MakePurchases(/*nominal_rows=*/1e6, /*sample_rows=*/2000,
                                      /*num_regions=*/8, /*seed=*/3));
}

WorkflowSpec JoinSpec() {
  return {.id = "net-join",
          .language = FrontendLanguage::kBeer,
          .source = SimpleJoinBeer()};
}

WorkflowSpec ShopperSpec() {
  return {.id = "net-topshopper",
          .language = FrontendLanguage::kBeer,
          .source = TopShopperBeer(/*region=*/2, /*threshold=*/50.0)};
}

// The flagship e2e: two tenants submit concurrently over real sockets, poll
// status, fetch results — and the wire-decoded tables are bit-identical to
// an in-process run of the same workflows on identically seeded data.
TEST(NetServerTest, TwoTenantsEndToEndMatchInProcessRun) {
  // In-process baselines on a private, identically seeded Dfs.
  std::unordered_map<std::string, TableMap> baselines;
  {
    Dfs baseline_dfs;
    SeedDfs(&baseline_dfs);
    Musketeer m(&baseline_dfs);
    for (const WorkflowSpec& spec : {JoinSpec(), ShopperSpec()}) {
      auto result = m.Run(spec);
      ASSERT_TRUE(result.ok()) << result.status();
      baselines[spec.id] = result->outputs;
    }
  }

  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 4;
  WorkflowService service(&dfs, config);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  struct TenantRun {
    std::string tenant;
    WorkflowSpec spec;
    uint64_t ticket = 0;
    TableMap tables;
  };
  std::vector<TenantRun> runs = {{"alice", JoinSpec()},
                                 {"bob", ShopperSpec()}};
  // Each tenant drives its own connection on its own thread: the submissions
  // are genuinely concurrent.
  std::vector<std::thread> clients;
  std::vector<std::string> failures;
  std::mutex failures_mu;
  for (TenantRun& run : runs) {
    clients.emplace_back([&server, &run, &failures, &failures_mu] {
      auto fail = [&](const std::string& message) {
        std::lock_guard lock(failures_mu);
        failures.push_back(run.tenant + ": " + message);
      };
      NetClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        return fail("connect failed");
      }
      NetClient::SubmitOptions options;
      options.tenant = run.tenant;
      options.workflow_id = run.spec.id;
      auto reply = client.SubmitWorkflow(options, run.spec.source);
      if (!reply.ok() || reply->status != 202) {
        return fail("submit failed");
      }
      run.ticket = reply->ticket;
      auto state = client.WaitTerminal(reply->ticket,
                                       std::chrono::milliseconds(30000));
      if (!state.ok() || *state != "DONE") {
        return fail("wait failed: " +
                    (state.ok() ? *state : state.status().ToString()));
      }
      auto tables = client.FetchResult(reply->ticket);
      if (!tables.ok()) {
        return fail("fetch failed: " + tables.status().ToString());
      }
      run.tables = std::move(*tables);
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_TRUE(failures.empty()) << failures.front();

  for (const TenantRun& run : runs) {
    const TableMap& want = baselines.at(run.spec.id);
    ASSERT_EQ(run.tables.size(), want.size()) << run.spec.id;
    for (const auto& [name, table] : want) {
      auto it = run.tables.find(name);
      ASSERT_NE(it, run.tables.end()) << name;
      // Bit-identical through serialize → wire → parse.
      EXPECT_TRUE(Table::Identical(*it->second, *table)) << name;
    }
  }

  // The tickets are attributed to their tenants in the service stats.
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tenants.at("alice").completed, 1u);
  EXPECT_EQ(stats.tenants.at("bob").completed, 1u);

  server.Shutdown();
  service.Shutdown();
}

// Backpressure at the edge: a tenant over its own quota gets 429, global
// saturation gets 503, and neither verdict disturbs the other tenant's
// accepted work.
TEST(NetServerTest, OverQuotaGets429QueueFullGets503) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  config.manual_start = true;  // nothing drains until Start()
  config.tenant_quotas = {{"alice", TenantQuota{.max_queued = 1}}};
  WorkflowService service(&dfs, config);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  NetClient::SubmitOptions alice{.tenant = "alice", .workflow_id = "net-join"};
  NetClient::SubmitOptions bob{.tenant = "bob", .workflow_id = "net-join"};
  const std::string source = SimpleJoinBeer();

  auto a1 = client.SubmitWorkflow(alice, source);
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->status, 202);
  // Alice's own max_queued=1 is exhausted → 429, with the reason named.
  auto a2 = client.SubmitWorkflow(alice, source);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->status, 429);
  EXPECT_EQ(a2->reject_reason, "TENANT_OVER_QUOTA");
  // Bob is unaffected by alice's quota...
  auto b1 = client.SubmitWorkflow(bob, source);
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(b1->status, 202);
  // ...until the shared queue itself is full → 503.
  auto b2 = client.SubmitWorkflow(bob, source);
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(b2->status, 503);
  EXPECT_EQ(b2->reject_reason, "QUEUE_FULL");

  service.Start();
  auto a1_state = client.WaitTerminal(a1->ticket, std::chrono::milliseconds(30000));
  auto b1_state = client.WaitTerminal(b1->ticket, std::chrono::milliseconds(30000));
  ASSERT_TRUE(a1_state.ok()) << a1_state.status();
  ASSERT_TRUE(b1_state.ok()) << b1_state.status();
  EXPECT_EQ(*a1_state, "DONE");
  EXPECT_EQ(*b1_state, "DONE");

  server.Shutdown();
  service.Shutdown();
}

TEST(NetServerTest, CancelEndpointSettlesQueuedWork) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 1;
  config.manual_start = true;
  WorkflowService service(&dfs, config);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto reply = client.SubmitWorkflow({.workflow_id = "net-join"},
                                     SimpleJoinBeer());
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->status, 202);
  auto state = client.StateOf(reply->ticket);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, "QUEUED");

  auto cancel_state = client.Cancel(reply->ticket);
  ASSERT_TRUE(cancel_state.ok());
  service.Start();
  auto final_state =
      client.WaitTerminal(reply->ticket, std::chrono::milliseconds(30000));
  ASSERT_TRUE(final_state.ok()) << final_state.status();
  EXPECT_EQ(*final_state, "CANCELLED");
  // A cancelled ticket has no result payload to serve.
  EXPECT_FALSE(client.FetchResult(reply->ticket).ok());

  server.Shutdown();
  service.Shutdown();
}

TEST(NetServerTest, MetricsAndTraceEndpointsServeLiveData) {
  Dfs dfs;
  SeedDfs(&dfs);
  WorkflowService service(&dfs, ServiceConfig{.num_workers = 2});
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  Tracer::Global().Enable(true);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto reply = client.SubmitWorkflow(
      {.tenant = "carol", .workflow_id = "net-join"}, SimpleJoinBeer());
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->status, 202);
  ASSERT_TRUE(
      client.WaitTerminal(reply->ticket, std::chrono::milliseconds(30000))
          .ok());

  // /metrics: live registry text with per-tenant and per-connection series.
  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->find("musketeer.net.connections.accepted"),
            std::string::npos);
  EXPECT_NE(metrics->find("musketeer.net.http.requests"), std::string::npos);
  EXPECT_NE(metrics->find("musketeer.service.tenant.carol.submitted"),
            std::string::npos);
  EXPECT_NE(metrics->find("musketeer.service.tenant.carol.completed"),
            std::string::npos);

  // /trace: must parse as Chrome trace-event JSON with an events array that
  // includes the net.request spans this very session produced.
  auto trace = client.Get("/trace");
  Tracer::Global().Enable(false);
  ASSERT_TRUE(trace.ok()) << trace.status();
  auto json = ParseJson(*trace);
  ASSERT_TRUE(json.ok()) << json.status();
  const JsonValue* events = json->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_net_request = false;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string_value, "X");
    const JsonValue* name = event.Find("name");
    if (name != nullptr && name->string_value == "net.request") {
      saw_net_request = true;
    }
  }
  EXPECT_TRUE(saw_net_request);

  // /stats mirrors the service's own counters.
  auto stats_body = client.Get("/stats");
  ASSERT_TRUE(stats_body.ok());
  auto stats_json = ParseJson(*stats_body);
  ASSERT_TRUE(stats_json.ok());
  const JsonValue* tenants = stats_json->Find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_NE(tenants->Find("carol"), nullptr);
  EXPECT_EQ(tenants->Find("carol")->Find("completed")->number_value, 1.0);

  server.Shutdown();
  service.Shutdown();
}

// ---- line protocol ---------------------------------------------------------

// Minimal blocking line-protocol client: send text, read until a newline-
// terminated reply (or `bytes` payload bytes) arrives.
class LineClient {
 public:
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool Send(const std::string& text) {
    size_t sent = 0;
    while (sent < text.size()) {
      ssize_t n = ::send(fd_, text.data() + sent, text.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // One reply line (without the trailing newline), reading as needed.
  std::string ReadLine() {
    while (true) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      if (!Fill()) return "";
    }
  }

  std::string ReadBytes(size_t n) {
    while (buffer_.size() < n) {
      if (!Fill()) return "";
    }
    std::string out = buffer_.substr(0, n);
    buffer_.erase(0, n);
    return out;
  }

 private:
  bool Fill() {
    char buf[4096];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

TEST(NetServerTest, LineProtocolSubmitStatusResult) {
  Dfs dfs;
  SeedDfs(&dfs);
  WorkflowService service(&dfs, ServiceConfig{.num_workers = 2});
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("PING\n"));
  EXPECT_EQ(client.ReadLine(), "OK pong");

  ASSERT_TRUE(client.Send("TENANT dana\n"));
  EXPECT_EQ(client.ReadLine(), "OK tenant dana");

  const std::string source = SimpleJoinBeer();
  ASSERT_TRUE(client.Send("SUBMIT net-join beer " +
                          std::to_string(source.size()) + "\n" + source));
  std::string reply = client.ReadLine();
  ASSERT_EQ(reply.substr(0, 3), "OK ") << reply;
  const uint64_t ticket = std::stoull(reply.substr(3));

  // Poll STATUS until terminal.
  std::string state;
  for (int i = 0; i < 15000; ++i) {
    ASSERT_TRUE(client.Send("STATUS " + std::to_string(ticket) + "\n"));
    std::string status_reply = client.ReadLine();
    ASSERT_EQ(status_reply.substr(0, 3), "OK ") << status_reply;
    state = status_reply.substr(status_reply.rfind(' ') + 1);
    if (state == "DONE" || state == "FAILED") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(state, "DONE");

  // RESULT returns a byte-counted JSON payload.
  ASSERT_TRUE(client.Send("RESULT " + std::to_string(ticket) + "\n"));
  std::string result_header = client.ReadLine();
  ASSERT_EQ(result_header.substr(0, 3), "OK ") << result_header;
  const size_t payload_bytes =
      std::stoull(result_header.substr(result_header.rfind(' ') + 1));
  ASSERT_GT(payload_bytes, 0u);
  std::string payload = client.ReadBytes(payload_bytes);
  auto json = ParseJson(payload);
  ASSERT_TRUE(json.ok()) << payload.substr(0, 200);
  ASSERT_NE(json->Find("outputs"), nullptr);

  // The submission was attributed to the session tenant set via TENANT.
  EXPECT_EQ(service.stats().tenants.at("dana").completed, 1u);

  ASSERT_TRUE(client.Send("QUIT\n"));
  EXPECT_EQ(client.ReadLine(), "OK bye");

  server.Shutdown();
  service.Shutdown();
}

// Idle keep-alive connections are reaped after keepalive_timeout while
// active connections — whose traffic resets the idle clock — survive many
// multiples of it.
TEST(NetServerTest, KeepAliveIdleTimeoutClosesQuietConnections) {
  Dfs dfs;
  SeedDfs(&dfs);
  WorkflowService service(&dfs, ServiceConfig{.num_workers = 1});
  ServerConfig config;
  config.keepalive_timeout = std::chrono::milliseconds(400);
  HttpServer server(&service, config);
  ASSERT_TRUE(server.Start().ok());
  Counter& idle_closed = MetricsRegistry::Global().counter(
      "musketeer.net.connections.idle_closed");
  const uint64_t idle_closed_before = idle_closed.Value();

  LineClient idle;
  ASSERT_TRUE(idle.Connect(server.port()));
  ASSERT_TRUE(idle.Send("PING\n"));
  EXPECT_EQ(idle.ReadLine(), "OK pong");

  // The busy connection keeps pinging well inside the timeout for longer
  // than the timeout itself; the idle one goes quiet after its first ping.
  LineClient busy;
  ASSERT_TRUE(busy.Connect(server.port()));
  for (int i = 0; i < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    ASSERT_TRUE(busy.Send("PING\n"));
    EXPECT_EQ(busy.ReadLine(), "OK pong");
  }

  // The quiet connection was closed by the sweep: its next read sees EOF
  // (ReadLine returns empty on a closed socket).
  EXPECT_EQ(idle.ReadLine(), "");
  EXPECT_GE(idle_closed.Value(), idle_closed_before + 1);
  // The busy connection is still serving.
  ASSERT_TRUE(busy.Send("PING\n"));
  EXPECT_EQ(busy.ReadLine(), "OK pong");

  server.Shutdown();
  service.Shutdown();
}

// Shutdown ordering: the server stops accepting new connections but accepted
// work still settles through the (later) service shutdown.
TEST(NetServerTest, ShutdownDrainsThenRefusesConnections) {
  Dfs dfs;
  SeedDfs(&dfs);
  WorkflowService service(&dfs, ServiceConfig{.num_workers = 1});
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  auto reply = client.SubmitWorkflow({.workflow_id = "net-join"},
                                     SimpleJoinBeer());
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->status, 202);

  server.Shutdown();   // connections first...
  service.Shutdown();  // ...then workers: accepted work still settles
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed + stats.failed + stats.cancelled, 1u);

  NetClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", port).ok());
}

// ---- peer-to-peer shard transport (src/net/peer_dfs.h) ---------------------

TEST(PeerDfsTest, ParsePeerListHandlesHostsPortsAndPlaceholders) {
  auto peers = ParsePeerList("10.0.0.1:7000,-,127.0.0.1:7002");
  ASSERT_TRUE(peers.has_value());
  ASSERT_EQ(peers->size(), 3u);
  EXPECT_EQ((*peers)[0].host, "10.0.0.1");
  EXPECT_EQ((*peers)[0].port, 7000);
  EXPECT_EQ((*peers)[1].port, 0);  // '-' marks this process's own slot
  EXPECT_EQ((*peers)[2].host, "127.0.0.1");
  EXPECT_EQ((*peers)[2].port, 7002);

  EXPECT_FALSE(ParsePeerList("hostwithoutport").has_value());
  EXPECT_FALSE(ParsePeerList(":7000").has_value());
  EXPECT_FALSE(ParsePeerList("h:0").has_value());
  EXPECT_FALSE(ParsePeerList("h:99999").has_value());
  EXPECT_FALSE(ParsePeerList("h:seven").has_value());
}

// Ownership is a pure function of the relation name — every process computes
// it from the same ShardMap hash, no directory sync. With no peer reachable
// (port-0 placeholders), a Put routed to a remote owner degrades to a local
// store and is counted, so the workflow still finishes.
TEST(PeerDfsTest, StrategyPureOwnershipAndDegradedPut) {
  const std::vector<PeerAddress> unreachable(3);  // all port 0
  PeerDfs dfs(/*self_shard=*/0, /*num_shards=*/3, unreachable);
  ShardMap reference(3);

  // Find one self-owned and one remotely-owned name.
  std::string local_name, remote_name;
  for (int i = 0; local_name.empty() || remote_name.empty(); ++i) {
    const std::string name = "rel_" + std::to_string(i);
    ASSERT_EQ(dfs.OwnerOf(name), reference.OwnerOf(name));
    (dfs.OwnerOf(name) == 0 ? local_name : remote_name) = name;
  }

  auto table = std::make_shared<Table>(Schema({{"x", FieldType::kInt64}}));
  dfs.Put(local_name, table);
  EXPECT_EQ(dfs.push_failures(), 0u);
  EXPECT_TRUE(dfs.Contains(local_name));
  EXPECT_TRUE(dfs.IsLocal(local_name));

  dfs.Put(remote_name, table);  // owner unreachable → degraded local store
  EXPECT_EQ(dfs.push_failures(), 1u);
  EXPECT_TRUE(dfs.Get(remote_name).ok());
  EXPECT_TRUE(dfs.IsLocal(remote_name));  // physically held here

  // A relation nobody holds: the owner is unreachable and the scan finds
  // nothing, so the miss is a NotFound, not a hang or a crash.
  EXPECT_FALSE(dfs.Get("never_put").ok());
  EXPECT_EQ(dfs.remote_fetches(), 0u);
}

// The relation exchange endpoints against a live server: list/fetch/push
// round-trip a table bit-identically, scale (nominal-size accounting) rides
// along, and the endpoints serve the node's LOCAL holdings only.
TEST(NetServerTest, RelationEndpointsRoundTripBitIdentical) {
  Dfs dfs;
  Table original(Schema({{"id", FieldType::kInt64},
                         {"rank", FieldType::kDouble},
                         {"name", FieldType::kString}}));
  original.AddRow({static_cast<int64_t>(1), 0.125, std::string("alpha")});
  original.AddRow({static_cast<int64_t>(2), 2.5e-17, std::string("beta beta")});
  original.set_scale(1000.0);
  TablePtr stored = std::make_shared<Table>(std::move(original));
  dfs.Put("ranks", stored);

  ServiceConfig config;
  config.num_workers = 1;
  WorkflowService service(&dfs, config);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  auto names = client.ListRelations();
  ASSERT_TRUE(names.ok()) << names.status();
  EXPECT_EQ(*names, (std::vector<std::string>{"ranks"}));

  auto fetched = client.FetchRelation("ranks");
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_TRUE(Table::Identical(*stored, **fetched));
  EXPECT_DOUBLE_EQ((*fetched)->scale(), 1000.0);

  auto missing = client.FetchRelation("absent");
  EXPECT_FALSE(missing.ok());

  // Push a new relation; the server must hold an identical copy.
  Table pushed(Schema({{"v", FieldType::kDouble}}));
  pushed.AddRow({0.1 + 0.2});  // a double that needs round-trip formatting
  ASSERT_TRUE(client.PushRelation("pushed_rel", pushed).ok());
  auto held = dfs.Get("pushed_rel");
  ASSERT_TRUE(held.ok());
  EXPECT_TRUE(Table::Identical(pushed, **held));

  server.Shutdown();
  service.Shutdown();
}

// Incremental resubmission over the wire: X-Incremental: 1 routes through
// the service's fingerprint path, the status JSON reports the reused-job
// count, and the delta run's fetched tables are bit-identical to the first
// run's (nothing changed between the submissions).
TEST(NetServerTest, IncrementalResubmitReusesJobsOverHttp) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 2;
  WorkflowService service(&dfs, config);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  WorkflowSpec spec = JoinSpec();

  NetClient::SubmitOptions cold;
  cold.workflow_id = spec.id;
  auto first = client.SubmitWorkflow(cold, spec.source);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->status, 202);
  auto first_state =
      client.WaitTerminal(first->ticket, std::chrono::milliseconds(30000));
  ASSERT_TRUE(first_state.ok() && *first_state == "DONE");
  auto first_tables = client.FetchResult(first->ticket);
  ASSERT_TRUE(first_tables.ok()) << first_tables.status();

  NetClient::SubmitOptions warm = cold;
  warm.incremental = true;
  auto second = client.SubmitWorkflow(warm, spec.source);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_EQ(second->status, 202);
  auto second_state =
      client.WaitTerminal(second->ticket, std::chrono::milliseconds(30000));
  ASSERT_TRUE(second_state.ok() && *second_state == "DONE");

  // The ticket JSON surfaces the reuse accounting: every job reused.
  auto status_body = client.Get("/status/" + std::to_string(second->ticket));
  ASSERT_TRUE(status_body.ok()) << status_body.status();
  auto status_json = ParseJson(*status_body);
  ASSERT_TRUE(status_json.ok()) << *status_body;
  const JsonValue* reused = status_json->Find("jobs_reused");
  ASSERT_NE(reused, nullptr) << *status_body;
  EXPECT_GE(reused->number_value, 1.0);

  auto second_tables = client.FetchResult(second->ticket);
  ASSERT_TRUE(second_tables.ok()) << second_tables.status();
  ASSERT_EQ(second_tables->size(), first_tables->size());
  for (const auto& [name, table] : *first_tables) {
    EXPECT_TRUE(Table::Identical(*table, *second_tables->at(name))) << name;
  }

  // A malformed X-Incremental value is a 400, not a silent default.
  HttpRequest bad;
  bad.method = "POST";
  bad.target = "/submit";
  bad.body = spec.source;
  bad.headers.emplace_back("X-Workflow-Id", spec.id);
  bad.headers.emplace_back("X-Language", "beer");
  bad.headers.emplace_back("X-Incremental", "maybe");
  auto bad_reply = client.Request(bad);
  ASSERT_TRUE(bad_reply.ok()) << bad_reply.status();
  EXPECT_EQ(bad_reply->status, 400);

  // /stats aggregates the reuse across runs.
  auto stats_body = client.Get("/stats");
  ASSERT_TRUE(stats_body.ok()) << stats_body.status();
  auto stats_json = ParseJson(*stats_body);
  ASSERT_TRUE(stats_json.ok());
  const JsonValue* total_reused = stats_json->Find("jobs_reused");
  ASSERT_NE(total_reused, nullptr) << *stats_body;
  EXPECT_GE(total_reused->number_value, reused->number_value);

  server.Shutdown();
  service.Shutdown();
}

}  // namespace
}  // namespace musketeer
