// Black-box operators (§4.1.3): computations with no IR equivalent are
// pinned to one "native" back-end; the partitioner must place them there and
// every other engine must refuse them.

#include <gtest/gtest.h>

#include "src/core/musketeer.h"

namespace musketeer {
namespace {

// Builds a DAG with a Naiad-only black-box operator between two relational
// stages: filter -> black box -> aggregate.
std::unique_ptr<Dag> BlackBoxDag() {
  auto dag = std::make_unique<Dag>();
  int in = dag->AddInput("events");
  int filtered = dag->AddNode(
      OpKind::kSelect, "recent", {in},
      SelectParams{Expr::Binary(BinOp::kGt, Expr::Column("what"),
                                Expr::Literal(int64_t{10}))});
  BlackBoxParams bb;
  bb.backend = "Naiad";
  bb.code = "// opaque native Naiad vertex code";
  bb.output_schema =
      Schema({{"uid", FieldType::kInt64}, {"score", FieldType::kDouble}});
  bb.fn = [](const std::vector<const Table*>& inputs) -> StatusOr<Table> {
    Table out(Schema({{"uid", FieldType::kInt64}, {"score", FieldType::kDouble}}));
    for (const Row& row : inputs[0]->MaterializeRows()) {
      out.AddRow({row[0], AsDouble(row[1]) * 0.5});
    }
    out.set_scale(inputs[0]->scale());
    return out;
  };
  int scored = dag->AddNode(OpKind::kBlackBox, "scored", {filtered}, std::move(bb));
  dag->AddNode(OpKind::kGroupBy, "totals", {scored},
               GroupByParams{{"uid"}, {{AggFn::kSum, "score", "total"}}});
  return dag;
}

TablePtr Events() {
  Schema s({{"uid", FieldType::kInt64}, {"what", FieldType::kInt64}});
  auto t = std::make_shared<Table>(s);
  for (int64_t i = 0; i < 60; ++i) {
    t->AddRow({i % 5, i});
  }
  return t;
}

TEST(BlackBoxTest, OnlyTargetEngineSupportsIt) {
  auto dag = BlackBoxDag();
  int bb = dag->ProducerOf("scored");
  EXPECT_TRUE(BackendFor(EngineKind::kNaiad).SupportsOperator(*dag, bb));
  for (EngineKind other : {EngineKind::kHadoop, EngineKind::kSpark,
                           EngineKind::kMetis, EngineKind::kSerialC}) {
    EXPECT_FALSE(BackendFor(other).SupportsOperator(*dag, bb))
        << EngineKindName(other);
  }
}

TEST(BlackBoxTest, PartitionerRoutesAroundIt) {
  auto dag = BlackBoxDag();
  CostModel model(LocalCluster(), nullptr, "bb");
  auto sizes = model.PredictSizes(*dag, {{"events", 1 * kGB}});
  ASSERT_TRUE(sizes.ok()) << sizes.status();
  // Even with every engine available, the black box pins its job to Naiad.
  auto part = PartitionWorkflow(*dag, model, *sizes, PlannerConfig{});
  ASSERT_TRUE(part.ok()) << part.status();
  int bb = dag->ProducerOf("scored");
  bool found = false;
  for (const JobAssignment& job : part->jobs) {
    for (int op : job.ops) {
      if (op == bb) {
        EXPECT_EQ(job.engine, EngineKind::kNaiad);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(BlackBoxTest, ExecutesThroughItsSimulationHook) {
  auto dag = BlackBoxDag();
  TableMap base{{"events", Events()}};
  auto result = EvaluateDagRelation(*dag, base, "totals");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 5u);
}

TEST(BlackBoxTest, ForcingAnotherEngineFails) {
  auto dag = BlackBoxDag();
  CostModel model(LocalCluster(), nullptr, "bb");
  auto sizes = model.PredictSizes(*dag, {{"events", 1 * kGB}});
  ASSERT_TRUE(sizes.ok());
  PlannerConfig config;
  config.engines = {EngineKind::kHadoop};
  EXPECT_FALSE(PartitionWorkflow(*dag, model, *sizes, config).ok());
}

}  // namespace
}  // namespace musketeer
