// Concurrency tests for the workflow service (src/service/): queue
// semantics, rejection policy, plan caching, and — the central claim — that
// N workflows run concurrently over one shared Dfs + HistoryStore produce
// exactly the results of N sequential runs (deterministic outputs, identical
// makespans, no lost history entries). Run under -fsanitize=thread via
// tools/check.sh to catch data races mechanically.

#include "src/service/service.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/service/plan_cache.h"
#include "src/service/queue.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

namespace musketeer {
namespace {

// ---- BoundedQueue ----------------------------------------------------------

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop(), std::optional<int>(1));
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(7));
  q.Close();
  EXPECT_FALSE(q.TryPush(8));      // closed rejects producers
  EXPECT_EQ(q.Pop(), std::optional<int>(7));  // accepted work still drains
  EXPECT_EQ(q.Pop(), std::nullopt);           // then signals exhaustion
}

TEST(BoundedQueueTest, ConcurrentProducersConsumers) {
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 4;
  BoundedQueue<int> q(8);
  std::atomic<int> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(), kProducers * kPerProducer * (kPerProducer + 1) / 2);
}

// ---- PlanCache -------------------------------------------------------------

WorkflowSpec JoinSpec() {
  return {.id = "svc-join",
          .language = FrontendLanguage::kBeer,
          .source = SimpleJoinBeer()};
}

TEST(PlanCacheTest, KeySeparatesIdSourceEnginesCluster) {
  WorkflowSpec a = JoinSpec();
  RunOptions opts;
  const std::string base = PlanCacheKey(a, opts);

  WorkflowSpec renamed = a;
  renamed.id = "other";
  EXPECT_NE(PlanCacheKey(renamed, opts), base);

  WorkflowSpec edited = a;
  edited.source += " ";
  EXPECT_NE(PlanCacheKey(edited, opts), base);

  RunOptions restricted = opts;
  restricted.engines = {EngineKind::kHadoop};
  EXPECT_NE(PlanCacheKey(a, restricted), base);

  RunOptions bigger = opts;
  bigger.cluster = Ec2Cluster(16);
  EXPECT_NE(PlanCacheKey(a, bigger), base);

  // Engine order must not matter.
  RunOptions ab = opts;
  ab.engines = {EngineKind::kHadoop, EngineKind::kSpark};
  RunOptions ba = opts;
  ba.engines = {EngineKind::kSpark, EngineKind::kHadoop};
  EXPECT_EQ(PlanCacheKey(a, ab), PlanCacheKey(a, ba));
}

TEST(PlanCacheTest, LruEvictionAndInvalidation) {
  PlanCache cache(2);
  auto plan = std::make_shared<const WorkflowPlan>();
  cache.Put("a\x1f" "1", plan);
  cache.Put("b\x1f" "1", plan);
  EXPECT_NE(cache.Get("a\x1f" "1"), nullptr);  // a now most recent
  cache.Put("c\x1f" "1", plan);                // evicts b
  EXPECT_EQ(cache.Get("b\x1f" "1"), nullptr);
  EXPECT_NE(cache.Get("a\x1f" "1"), nullptr);
  EXPECT_NE(cache.Get("c\x1f" "1"), nullptr);

  cache.Invalidate("a");
  EXPECT_EQ(cache.Get("a\x1f" "1"), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

// ---- Service fixtures ------------------------------------------------------

// Seeds `dfs` with inputs for the three workloads the tests mix: the simple
// JOIN (§2.1), top-shopper (§6.5) and a short PageRank (GAS).
void SeedDfs(Dfs* dfs) {
  GraphSpec spec;
  spec.name = "svc-graph";
  spec.nominal_vertices = 50000;
  spec.nominal_edges = 400000;
  spec.sample_vertices = 300;
  GraphDataset graph = MakePowerLawGraph(spec);
  dfs->Put("vertices_rel", graph.vertices);
  dfs->Put("edges_rel", graph.edges);
  dfs->Put("vertices", graph.vertices);
  dfs->Put("edges", graph.edges);
  dfs->Put("purchases", MakePurchases(/*nominal_rows=*/1e6, /*sample_rows=*/2000,
                                      /*num_regions=*/8, /*seed=*/3));
}

std::vector<WorkflowSpec> MixedSpecs() {
  return {
      JoinSpec(),
      {.id = "svc-topshopper",
       .language = FrontendLanguage::kBeer,
       .source = TopShopperBeer(/*region=*/2, /*threshold=*/50.0)},
      {.id = "svc-pagerank",
       .language = FrontendLanguage::kGas,
       .source = PageRankGas(/*iterations=*/2)},
  };
}

// ---- Rejection policy ------------------------------------------------------

TEST(WorkflowServiceTest, FullQueueRejectsDeterministically) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  config.manual_start = true;  // queue fills before anything drains
  WorkflowService service(&dfs, config);

  WorkflowHandle a = service.Submit(JoinSpec());
  WorkflowHandle b = service.Submit(JoinSpec());
  WorkflowHandle c = service.Submit(JoinSpec());
  EXPECT_EQ(a->state(), WorkflowState::kQueued);
  EXPECT_EQ(b->state(), WorkflowState::kQueued);
  EXPECT_EQ(c->state(), WorkflowState::kRejected);
  EXPECT_EQ(c->result().status().code(), StatusCode::kResourceExhausted);

  service.Start();
  service.Drain();  // the consistency point for stats (see Drain contract)
  EXPECT_EQ(a->state(), WorkflowState::kDone);
  EXPECT_EQ(b->state(), WorkflowState::kDone);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(WorkflowServiceTest, SubmitBlockingNeverRejects) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 1;  // every submission fights for one slot
  WorkflowService service(&dfs, config);

  std::vector<WorkflowHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(service.SubmitBlocking(JoinSpec()));
  }
  service.Drain();
  for (const WorkflowHandle& h : handles) {
    EXPECT_EQ(h->state(), WorkflowState::kDone) << h->result().status();
  }
  EXPECT_EQ(service.stats().rejected, 0u);
}

TEST(WorkflowServiceTest, FailedWorkflowCarriesPipelineError) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 1;
  WorkflowService service(&dfs, config);
  WorkflowHandle h = service.Submit(
      {.id = "bad", .language = FrontendLanguage::kBeer, .source = "syntax !!"});
  h->Wait();
  EXPECT_EQ(h->state(), WorkflowState::kFailed);
  EXPECT_FALSE(h->result().ok());
}

// ---- The central concurrency-correctness claim -----------------------------

TEST(WorkflowServiceTest, ConcurrentMatchesSequential) {
  constexpr int kCopies = 4;  // each workflow submitted this many times

  Dfs dfs;
  SeedDfs(&dfs);
  HistoryStore history;
  RunOptions options;
  options.history = &history;
  std::vector<WorkflowSpec> specs = MixedSpecs();

  // Full history first (the paper's profiling run) so every subsequent run
  // — sequential or concurrent — plans from identical cost-model inputs.
  Musketeer m(&dfs);
  for (const WorkflowSpec& spec : specs) {
    ASSERT_TRUE(m.ProfileWorkflow(spec, options, &history).ok()) << spec.id;
  }

  // Sequential baseline.
  struct Baseline {
    SimSeconds makespan = 0;
    TableMap outputs;
    int history_entries = 0;
    Bytes dfs_bytes_read = 0;
    Bytes dfs_bytes_written = 0;
  };
  std::unordered_map<std::string, Baseline> baselines;
  for (const WorkflowSpec& spec : specs) {
    auto result = m.Run(spec, options);
    ASSERT_TRUE(result.ok()) << result.status();
    baselines[spec.id] =
        Baseline{result->makespan, result->outputs,
                 history.EntriesFor(spec.id), result->dfs_bytes_read,
                 result->dfs_bytes_written};
  }

  // Concurrent: every spec × kCopies racing over the same Dfs + history.
  ServiceConfig config;
  config.num_workers = 8;
  config.queue_capacity = 64;
  config.default_options = options;
  WorkflowService service(&dfs, config);

  std::vector<WorkflowHandle> handles;
  for (int copy = 0; copy < kCopies; ++copy) {
    for (const WorkflowSpec& spec : specs) {
      handles.push_back(service.Submit(spec));
    }
  }
  service.Drain();

  for (const WorkflowHandle& h : handles) {
    ASSERT_EQ(h->state(), WorkflowState::kDone) << h->result().status();
    const Baseline& want = baselines.at(h->spec().id);
    const RunResult& got = *h->result();
    // Identical makespans: simulated time must not depend on interleaving.
    EXPECT_DOUBLE_EQ(got.makespan, want.makespan) << h->spec().id;
    // Exact per-run DFS byte attribution even while other workflows move
    // bytes concurrently (thread-scoped counters, not shared-counter deltas).
    EXPECT_DOUBLE_EQ(got.dfs_bytes_read, want.dfs_bytes_read) << h->spec().id;
    EXPECT_DOUBLE_EQ(got.dfs_bytes_written, want.dfs_bytes_written)
        << h->spec().id;
    // Deterministic outputs.
    ASSERT_EQ(got.outputs.size(), want.outputs.size()) << h->spec().id;
    for (const auto& [name, table] : want.outputs) {
      auto it = got.outputs.find(name);
      ASSERT_NE(it, got.outputs.end()) << name;
      EXPECT_TRUE(Table::SameContent(*it->second, *table)) << name;
    }
  }
  // No lost history entries: concurrent Records landed and changed nothing.
  for (const WorkflowSpec& spec : specs) {
    EXPECT_EQ(history.EntriesFor(spec.id), baselines.at(spec.id).history_entries)
        << spec.id;
  }

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, handles.size());
  EXPECT_EQ(stats.completed, handles.size());
  EXPECT_EQ(stats.failed, 0u);
}

// ---- Plan cache integration ------------------------------------------------

TEST(WorkflowServiceTest, RepeatedSubmissionHitsPlanCache) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 1;  // serialize: second submission sees the cache
  WorkflowService service(&dfs, config);

  WorkflowHandle first = service.Submit(JoinSpec());
  first->Wait();
  WorkflowHandle second = service.Submit(JoinSpec());
  second->Wait();

  ASSERT_EQ(first->state(), WorkflowState::kDone);
  ASSERT_EQ(second->state(), WorkflowState::kDone);
  EXPECT_FALSE(first->plan_cache_hit());
  EXPECT_TRUE(second->plan_cache_hit());
  // The cached plan replays to the same answer.
  EXPECT_DOUBLE_EQ(first->result()->makespan, second->result()->makespan);
  EXPECT_EQ(second->result()->plans.size(), first->result()->plans.size());
  EXPECT_GE(service.stats().plan_cache_hits, 1u);
}

TEST(WorkflowServiceTest, PlanCacheEvictionUnderTinyCapacity) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 1;  // serialize: eviction order is deterministic
  config.plan_cache_capacity = 2;
  WorkflowService service(&dfs, config);

  std::vector<WorkflowSpec> specs = MixedSpecs();  // 3 distinct cache keys
  ASSERT_EQ(specs.size(), 3u);

  // A, B, C fill the 2-entry cache; C evicts A (LRU).
  for (const WorkflowSpec& spec : specs) {
    WorkflowHandle h = service.Submit(spec);
    h->Wait();
    ASSERT_EQ(h->state(), WorkflowState::kDone) << h->result().status();
    EXPECT_FALSE(h->plan_cache_hit()) << spec.id;
  }
  // A was evicted: resubmission misses (and evicts B).
  WorkflowHandle a = service.Submit(specs[0]);
  a->Wait();
  EXPECT_FALSE(a->plan_cache_hit());
  // C is still resident: resubmission hits.
  WorkflowHandle c = service.Submit(specs[2]);
  c->Wait();
  EXPECT_TRUE(c->plan_cache_hit());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.plan_cache_misses, 4u);
}

// Cache-hit accounting under concurrent submissions: the hit/miss metric
// counters, the ServiceStats counters, and the per-ticket plan_cache_hit
// flags must all tell the same story.
TEST(WorkflowServiceTest, CacheMetricsAgreeWithTicketsUnderConcurrency) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = 64;
  WorkflowService service(&dfs, config);

  Counter& hit_metric =
      MetricsRegistry::Global().counter("musketeer.service.plan_cache.hit");
  Counter& miss_metric =
      MetricsRegistry::Global().counter("musketeer.service.plan_cache.miss");
  const uint64_t hits_before = hit_metric.Value();
  const uint64_t misses_before = miss_metric.Value();

  constexpr int kCopies = 6;
  std::vector<WorkflowSpec> specs = MixedSpecs();
  std::vector<WorkflowHandle> handles;
  for (int copy = 0; copy < kCopies; ++copy) {
    for (const WorkflowSpec& spec : specs) {
      handles.push_back(service.SubmitBlocking(spec));
    }
  }
  service.Drain();

  uint64_t ticket_hits = 0;
  for (const WorkflowHandle& h : handles) {
    ASSERT_EQ(h->state(), WorkflowState::kDone) << h->result().status();
    if (h->plan_cache_hit()) {
      ++ticket_hits;
    }
  }
  ServiceStats stats = service.stats();
  // Every submission consulted the cache exactly once.
  EXPECT_EQ(stats.plan_cache_hits + stats.plan_cache_misses, handles.size());
  // Racing workers may each miss on the same key before the first Put, so
  // misses can exceed the number of distinct keys — but ticket flags must
  // agree exactly with the cache's own counters and the exported metrics.
  EXPECT_EQ(stats.plan_cache_hits, ticket_hits);
  EXPECT_EQ(hit_metric.Value() - hits_before, stats.plan_cache_hits);
  EXPECT_EQ(miss_metric.Value() - misses_before, stats.plan_cache_misses);
  // With 6 copies of each spec there must be real reuse.
  EXPECT_GE(stats.plan_cache_hits, static_cast<uint64_t>(specs.size()));
}

TEST(WorkflowServiceTest, PlanCacheDisabledNeverHits) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 1;
  config.plan_cache_capacity = 0;
  WorkflowService service(&dfs, config);
  for (int i = 0; i < 3; ++i) {
    service.Submit(JoinSpec())->Wait();
  }
  EXPECT_EQ(service.stats().plan_cache_hits, 0u);
}

// ---- Multi-tenant submission storm -----------------------------------------

TEST(WorkflowServiceTest, ConcurrentSubmittersAllAccountedFor) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 5;

  Dfs dfs;
  SeedDfs(&dfs);
  HistoryStore history;
  ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = kThreads * kPerThread;
  config.default_options.history = &history;
  WorkflowService service(&dfs, config);

  std::vector<WorkflowSpec> specs = MixedSpecs();
  std::vector<std::thread> submitters;
  std::mutex handles_mu;
  std::vector<WorkflowHandle> handles;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        WorkflowHandle h =
            service.SubmitBlocking(specs[(t + i) % specs.size()]);
        std::lock_guard lock(handles_mu);
        handles.push_back(std::move(h));
      }
    });
  }
  for (auto& t : submitters) t.join();
  service.Drain();

  for (const WorkflowHandle& h : handles) {
    EXPECT_EQ(h->state(), WorkflowState::kDone) << h->result().status();
    EXPECT_GE(h->total_seconds(), h->queue_seconds());
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
  EXPECT_EQ(stats.failed, 0u);
}

// ---- BoundedQueue edge cases -----------------------------------------------

TEST(BoundedQueueTest, CapacityOneAlternatesStrictly) {
  BoundedQueue<int> q(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(q.TryPush(i));
    EXPECT_FALSE(q.TryPush(i + 100));  // one slot, always full after a push
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.Pop(), std::optional<int>(i));
    EXPECT_EQ(q.size(), 0u);
  }
}

// Blocking producers racing Close(): every Push() must return a definite
// verdict (true = the item will drain, false = rejected at close), no item
// may be lost or duplicated, and nobody may hang.
TEST(BoundedQueueTest, BlockingPushRacesClose) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(0));  // producers start blocked on a full queue

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.Push(1)) {
          accepted.fetch_add(1);
        } else {
          return;  // closed: every later Push would also fail
        }
      }
    });
  }
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    while (q.Pop().has_value()) {
      popped.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(popped.load(), accepted.load() + 1);  // +1 for the seed item
  EXPECT_EQ(q.Pop(), std::nullopt);               // drained and closed
}

// ---- FairQueue -------------------------------------------------------------

TEST(FairQueueTest, SingleLaneDegeneratesToFifo) {
  FairQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(q.TryPush("", i), AdmitResult::kOk);
  }
  for (int i = 0; i < 5; ++i) {
    auto popped = q.Pop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->tenant, "");
    EXPECT_EQ(popped->item, i);
    q.OnFinished(popped->tenant);
  }
}

TEST(FairQueueTest, WeightedInterleavingMatchesStride) {
  FairQueue<int> q(32);
  q.SetQuota("a", {.weight = 2});
  q.SetQuota("b", {.weight = 1});
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(q.TryPush("a", i), AdmitResult::kOk);
    ASSERT_EQ(q.TryPush("b", 100 + i), AdmitResult::kOk);
  }
  // Over any window the 2:1 weights must show as a 2:1 dequeue ratio.
  int from_a = 0;
  for (int i = 0; i < 9; ++i) {
    auto popped = q.Pop();
    ASSERT_TRUE(popped.has_value());
    if (popped->tenant == "a") ++from_a;
    q.OnFinished(popped->tenant);
  }
  EXPECT_EQ(from_a, 6);  // 6 of 9 = exactly the 2:1 share
}

TEST(FairQueueTest, PerTenantMaxQueuedRejectsOnlyThatTenant) {
  FairQueue<int> q(8);
  q.SetQuota("a", {.max_queued = 2});
  EXPECT_EQ(q.TryPush("a", 1), AdmitResult::kOk);
  EXPECT_EQ(q.TryPush("a", 2), AdmitResult::kOk);
  EXPECT_EQ(q.TryPush("a", 3), AdmitResult::kTenantOverQuota);
  EXPECT_EQ(q.TryPush("b", 4), AdmitResult::kOk);  // others unaffected
  EXPECT_EQ(q.QueuedFor("a"), 2u);

  // Global capacity exhaustion reports kQueueFull, not over-quota.
  FairQueue<int> tiny(1);
  EXPECT_EQ(tiny.TryPush("x", 1), AdmitResult::kOk);
  EXPECT_EQ(tiny.TryPush("y", 2), AdmitResult::kQueueFull);
}

TEST(FairQueueTest, MaxInFlightHoldsItemsBackWithoutRejecting) {
  FairQueue<int> q(8);
  q.SetQuota("a", {.max_in_flight = 1});
  ASSERT_EQ(q.TryPush("a", 1), AdmitResult::kOk);
  ASSERT_EQ(q.TryPush("a", 2), AdmitResult::kOk);
  ASSERT_EQ(q.TryPush("b", 3), AdmitResult::kOk);

  auto first = q.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tenant, "a");
  EXPECT_EQ(q.InFlightFor("a"), 1);
  // "a" is at its in-flight cap: its second item is held back, "b" is served
  // around it.
  auto second = q.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tenant, "b");
  q.OnFinished("a");  // frees the slot: "a" becomes eligible again
  auto third = q.Pop();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->tenant, "a");
  EXPECT_EQ(third->item, 2);
  q.OnFinished("b");
  q.OnFinished("a");
  q.Close();
  EXPECT_EQ(q.Pop(), std::nullopt);
}

// ---- Tenant admission + fair scheduling through the service ----------------

TEST(WorkflowServiceTest, TenantOverQuotaRejectsWithoutTouchingOthers) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 8;
  config.manual_start = true;  // queue fills before anything drains
  config.tenant_quotas = {{"alice", TenantQuota{.max_queued = 1}}};
  WorkflowService service(&dfs, config);

  WorkflowHandle a1 = service.SubmitAs("alice", JoinSpec());
  WorkflowHandle a2 = service.SubmitAs("alice", JoinSpec());
  WorkflowHandle b1 = service.SubmitAs("bob", JoinSpec());
  EXPECT_EQ(a1->state(), WorkflowState::kQueued);
  EXPECT_EQ(a2->state(), WorkflowState::kRejected);
  EXPECT_EQ(a2->reject_reason(), RejectReason::kTenantOverQuota);
  EXPECT_EQ(b1->state(), WorkflowState::kQueued);

  service.Start();
  service.Drain();
  EXPECT_EQ(a1->state(), WorkflowState::kDone);
  EXPECT_EQ(b1->state(), WorkflowState::kDone);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tenants.at("alice").submitted, 1u);
  EXPECT_EQ(stats.tenants.at("alice").rejected, 1u);
  EXPECT_EQ(stats.tenants.at("alice").completed, 1u);
  EXPECT_EQ(stats.tenants.at("bob").submitted, 1u);
  EXPECT_EQ(stats.tenants.at("bob").rejected, 0u);
  EXPECT_EQ(stats.tenants.at("bob").completed, 1u);
}

TEST(WorkflowServiceTest, CancelWhileQueuedUnderFairScheduler) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 8;
  config.manual_start = true;
  config.tenant_quotas = {{"alice", TenantQuota{.weight = 2}},
                          {"bob", TenantQuota{.weight = 1}}};
  WorkflowService service(&dfs, config);

  WorkflowHandle a1 = service.SubmitAs("alice", JoinSpec());
  WorkflowHandle a2 = service.SubmitAs("alice", JoinSpec());
  WorkflowHandle b1 = service.SubmitAs("bob", JoinSpec());
  WorkflowHandle b2 = service.SubmitAs("bob", JoinSpec());
  a2->Cancel();  // cancelled while QUEUED, settles at worker pickup
  b2->Cancel();

  service.Start();
  service.Drain();
  EXPECT_EQ(a1->state(), WorkflowState::kDone) << a1->result().status();
  EXPECT_EQ(b1->state(), WorkflowState::kDone) << b1->result().status();
  EXPECT_EQ(a2->state(), WorkflowState::kCancelled);
  EXPECT_EQ(b2->state(), WorkflowState::kCancelled);
  EXPECT_EQ(a2->result().status().code(), StatusCode::kCancelled);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tenants.at("alice").cancelled, 1u);
  EXPECT_EQ(stats.tenants.at("bob").cancelled, 1u);
  EXPECT_EQ(stats.cancelled, 2u);
}

// SubmitBlocking racing Shutdown: every submission must settle with a
// definite verdict — DONE for accepted work (Shutdown finishes the queue),
// REJECTED/kShutdown for producers still blocked when the queue closed.
// Nothing may hang or leak. Run under TSan via tools/check.sh.
TEST(WorkflowServiceTest, SubmitBlockingRacesShutdown) {
  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;  // keeps producers blocked when Shutdown lands
  config.dispatch_latency = std::chrono::milliseconds(2);
  WorkflowService service(&dfs, config);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 3;
  std::mutex handles_mu;
  std::vector<WorkflowHandle> handles;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        WorkflowHandle h = service.SubmitBlocking(JoinSpec());
        std::lock_guard lock(handles_mu);
        handles.push_back(std::move(h));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Shutdown();
  for (auto& t : submitters) t.join();

  ASSERT_EQ(handles.size(), static_cast<size_t>(kThreads * kPerThread));
  uint64_t done = 0, rejected = 0;
  for (const WorkflowHandle& h : handles) {
    ASSERT_TRUE(h->terminal());  // nothing left hanging
    if (h->state() == WorkflowState::kDone) {
      ++done;
    } else {
      ASSERT_EQ(h->state(), WorkflowState::kRejected);
      EXPECT_EQ(h->reject_reason(), RejectReason::kShutdown);
      ++rejected;
    }
  }
  EXPECT_EQ(done + rejected, handles.size());
  EXPECT_GE(done, 1u);  // the seed submission at least ran
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, done);
  EXPECT_EQ(stats.rejected, rejected);
}

// ---- Shared-state primitives under contention ------------------------------

TEST(SharedStateTest, DfsConcurrentReadersWritersAndCounters) {
  Dfs dfs;
  SeedDfs(&dfs);
  constexpr int kThreads = 8;
  constexpr int kOps = 300;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string name = "rel-" + std::to_string(t);
        auto table = std::make_shared<Table>();
        dfs.Put(name, table);
        EXPECT_TRUE(dfs.Contains(name));
        EXPECT_TRUE(dfs.Get(name).ok());
        dfs.RecordRead(1.0);
        dfs.RecordWrite(2.0);
        (void)dfs.ListRelations();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(dfs.bytes_read(), kThreads * kOps * 1.0);
  EXPECT_DOUBLE_EQ(dfs.bytes_written(), kThreads * kOps * 2.0);
}

TEST(SharedStateTest, HistoryStoreConcurrentRecordLookup) {
  HistoryStore history;
  constexpr int kThreads = 8;
  constexpr int kRelations = 100;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string wf = "wf-" + std::to_string(t % 2);  // contended
      for (int i = 0; i < kRelations; ++i) {
        history.Record(wf, "rel-" + std::to_string(i), i * 10.0);
        auto got = history.Lookup(wf, "rel-" + std::to_string(i));
        ASSERT_TRUE(got.has_value());
        EXPECT_DOUBLE_EQ(*got, i * 10.0);
      }
      (void)history.EntriesFor(wf);
      HistoryStore partial = history.WithPartialKnowledge(0.5);
      EXPECT_LE(partial.EntriesFor(wf), kRelations);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(history.EntriesFor("wf-0"), kRelations);
  EXPECT_EQ(history.EntriesFor("wf-1"), kRelations);
}

}  // namespace
}  // namespace musketeer
