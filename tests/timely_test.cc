// Tests for the simplified timely-dataflow runtime (Naiad's generic path).

#include "src/engines/timely_runtime.h"

#include <gtest/gtest.h>

#include "src/frontends/frontend.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

namespace musketeer {
namespace {

std::unique_ptr<Dag> Parse(const std::string& src,
                           FrontendLanguage lang = FrontendLanguage::kBeer) {
  auto dag = ParseWorkflow(lang, src);
  EXPECT_TRUE(dag.ok()) << dag.status();
  return std::move(dag).value();
}

TableMap PurchaseBase(int rows) {
  return {{"purchases", MakePurchases(1e6, rows, 8, 77)}};
}

TEST(TimelyRuntimeTest, RowwiseOperatorsStreamWithoutBuffering) {
  auto dag = Parse(
      "f = SELECT * FROM purchases WHERE amount > 100;\n"
      "p = SELECT uid, amount FROM f;\n"
      "m = MAP uid, amount * 2 AS doubled FROM p;\n");
  TableMap base = PurchaseBase(800);
  auto ref = EvaluateDag(*dag, base);
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaTimely(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Table::SameContent(*(*ref)["m"], *result->relations["m"]));
  // A pure row-wise pipeline never buffers a single record.
  EXPECT_EQ(result->stats.records_buffered, 0);
  EXPECT_GT(result->stats.records_streamed, 0);
}

TEST(TimelyRuntimeTest, StatefulOperatorsFireOnNotification) {
  auto dag = Parse(
      "g = AGG SUM(amount) AS total FROM purchases GROUP BY uid;\n"
      "top = SELECT * FROM g WHERE total > 50;\n");
  TableMap base = PurchaseBase(600);
  auto ref = EvaluateDagRelation(*dag, base, "top");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaTimely(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["top"]));
  EXPECT_EQ(result->stats.records_buffered, 600);  // only the GROUP BY buffers
  EXPECT_GT(result->stats.notifications, 0);
}

TEST(TimelyRuntimeTest, JoinsAndUnionsAgreeWithInterpreter) {
  auto dag = Parse(R"(
    j = JOIN a, b ON a.k = b.k;
    u = UNION a, b;
    both = JOIN j, u ON j.k = u.k;
  )");
  Schema s({{"k", FieldType::kInt64}, {"v", FieldType::kInt64}});
  auto a = std::make_shared<Table>(s);
  auto b = std::make_shared<Table>(s);
  for (int64_t i = 0; i < 80; ++i) {
    a->AddRow({i % 9, i});
    b->AddRow({i % 6, i});
  }
  TableMap base{{"a", a}, {"b", b}};
  auto ref = EvaluateDag(*dag, base);
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaTimely(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const char* rel : {"j", "u", "both"}) {
    EXPECT_TRUE(Table::SameContent(*(*ref)[rel], *result->relations[rel])) << rel;
  }
}

TEST(TimelyRuntimeTest, LoopsRunAsEpochs) {
  auto dag = Parse(R"(
    WHILE 4 LOOP x = seed UPDATE x2 {
      x2 = AGG SUM(v) AS v FROM x GROUP BY k;
    } YIELD x2 AS out;
  )");
  Schema s({{"k", FieldType::kInt64}, {"v", FieldType::kDouble}});
  auto seed = std::make_shared<Table>(s);
  for (int64_t i = 0; i < 50; ++i) {
    seed->AddRow({i % 5, 1.0});
  }
  TableMap base{{"seed", seed}};
  auto ref = EvaluateDagRelation(*dag, base, "out");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaTimely(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["out"]));
  EXPECT_EQ(result->stats.epochs, 4);
}

TEST(TimelyRuntimeTest, FixpointLoopsStopEarly) {
  auto dag = Parse(R"(
    WHILE FIXPOINT 30 LOOP x = seed UPDATE x2 {
      x2 = DISTINCT x;
    } YIELD x2 AS out;
  )");
  Schema s({{"k", FieldType::kInt64}});
  auto seed = std::make_shared<Table>(s);
  seed->AddRow({int64_t{1}});
  seed->AddRow({int64_t{1}});
  seed->AddRow({int64_t{2}});
  auto result = ExecuteViaTimely(*dag, {{"seed", seed}});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->relations["out"]->num_rows(), 2u);
  EXPECT_EQ(result->stats.epochs, 2);  // one productive trip + one stable
}

TEST(TimelyRuntimeTest, TpchPipelineMatchesInterpreter) {
  TpchDataset data = MakeTpch(10, 2500);
  auto dag = Parse(TpchQ17Hive(), FrontendLanguage::kHive);
  TableMap base{{"lineitem", data.lineitem}, {"part", data.part}};
  auto ref = EvaluateDagRelation(*dag, base, "q17_result");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaTimely(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["q17_result"]));
}

TEST(TimelyRuntimeTest, BatchPlusLoopWorkflow) {
  CommunityPair pair = MakeOverlappingCommunities();
  auto dag = Parse(CrossCommunityPageRankBeer(3));
  TableMap base{{"lj_edges", pair.a.edges}, {"web_edges", pair.b.edges}};
  auto ref = EvaluateDagRelation(*dag, base, "cc_pagerank");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaTimely(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["cc_pagerank"]));
  EXPECT_EQ(result->stats.epochs, 3);
}

}  // namespace
}  // namespace musketeer
