// Cluster model and DFS tests, including the sharded layer (PR 8): the
// ShardMap directory's consistent-hash stability under membership change,
// per-shard DFS views with fetch-over-network accounting, and the
// thread-scoped run counters' local/remote byte split.

#include "src/cluster/cluster.h"

#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/dfs.h"
#include "src/cluster/shard_map.h"
#include "src/cluster/sharded_dfs.h"

namespace musketeer {
namespace {

TEST(ClusterTest, PresetsHaveExpectedShapes) {
  ClusterConfig local = LocalCluster();
  EXPECT_EQ(local.num_nodes, 7);
  ClusterConfig ec2 = Ec2Cluster(100);
  EXPECT_EQ(ec2.num_nodes, 100);
  EXPECT_EQ(ec2.name, "ec2-100");
  ClusterConfig single = SingleMachine();
  EXPECT_EQ(single.num_nodes, 1);
}

TEST(ClusterTest, BandwidthAggregatesAcrossNodes) {
  ClusterConfig ec2 = Ec2Cluster(10);
  EXPECT_DOUBLE_EQ(ec2.ReadBandwidth(10), 10 * MBps(ec2.node_read_mbps));
  // Capped at the cluster size.
  EXPECT_DOUBLE_EQ(ec2.ReadBandwidth(50), 10 * MBps(ec2.node_read_mbps));
  EXPECT_LT(ec2.WriteBandwidth(10), ec2.ReadBandwidth(10));
}

TEST(DfsTest, PutGetEraseAndList) {
  Dfs dfs;
  auto t = std::make_shared<Table>(Schema({{"x", FieldType::kInt64}}));
  EXPECT_FALSE(dfs.Contains("a"));
  EXPECT_FALSE(dfs.Get("a").ok());
  dfs.Put("b", t);
  dfs.Put("a", t);
  EXPECT_TRUE(dfs.Contains("a"));
  EXPECT_TRUE(dfs.Get("a").ok());
  EXPECT_EQ(dfs.ListRelations(), (std::vector<std::string>{"a", "b"}));
  dfs.Erase("a");
  EXPECT_FALSE(dfs.Contains("a"));
  EXPECT_EQ(dfs.ListRelations(), (std::vector<std::string>{"b"}));
}

TEST(DfsTest, PutReplacesExisting) {
  Dfs dfs;
  auto t1 = std::make_shared<Table>(Schema({{"x", FieldType::kInt64}}));
  auto t2 = std::make_shared<Table>(Schema({{"y", FieldType::kDouble}}));
  dfs.Put("r", t1);
  dfs.Put("r", t2);
  auto got = dfs.Get("r");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->schema().field(0).name, "y");
}

TEST(DfsTest, IoAccounting) {
  Dfs dfs;
  dfs.RecordRead(100);
  dfs.RecordRead(50);
  dfs.RecordWrite(30);
  EXPECT_DOUBLE_EQ(dfs.bytes_read(), 150);
  EXPECT_DOUBLE_EQ(dfs.bytes_written(), 30);
  dfs.ResetStats();
  EXPECT_DOUBLE_EQ(dfs.bytes_read(), 0);
}

// The per-run byte attribution the coordinator relies on: reads recorded
// while a scope is alive land in that scope, remote reads are a subset of
// reads, inner scopes propagate into enclosing ones on close, and a sibling
// thread's traffic never leaks in.
TEST(DfsTest, ScopedRunCountersSplitAndNest) {
  Dfs dfs;
  ScopedDfsRunCounters outer;
  dfs.RecordRead(100);
  {
    ScopedDfsRunCounters inner;
    dfs.RecordRead(40);
    dfs.RecordRemoteRead(25);
    dfs.RecordWrite(10);
    EXPECT_DOUBLE_EQ(inner.bytes_read(), 65);  // remote reads are reads too
    EXPECT_DOUBLE_EQ(inner.bytes_remote_read(), 25);
    EXPECT_DOUBLE_EQ(inner.bytes_written(), 10);
    // While the inner scope is active, this thread's traffic goes there.
    EXPECT_DOUBLE_EQ(outer.bytes_read(), 100);
  }
  // The inner scope folded into the enclosing one when it closed.
  EXPECT_DOUBLE_EQ(outer.bytes_read(), 165);
  EXPECT_DOUBLE_EQ(outer.bytes_remote_read(), 25);
  EXPECT_DOUBLE_EQ(outer.bytes_written(), 10);

  // A concurrent thread's scope sees only its own traffic.
  std::thread other([&dfs] {
    ScopedDfsRunCounters mine;
    dfs.RecordRead(7);
    EXPECT_DOUBLE_EQ(mine.bytes_read(), 7);
    EXPECT_DOUBLE_EQ(mine.bytes_remote_read(), 0);
  });
  other.join();
  EXPECT_DOUBLE_EQ(outer.bytes_read(), 165);

  // The shared aggregate counters saw everything regardless of scoping.
  EXPECT_DOUBLE_EQ(dfs.bytes_read(), 172);
  EXPECT_DOUBLE_EQ(dfs.bytes_remote_read(), 25);
  EXPECT_LE(dfs.bytes_remote_read(), dfs.bytes_read());
}

// ---- ShardMap --------------------------------------------------------------

// Ownership of every key across the shards, strategy placements only.
std::unordered_map<std::string, int> OwnersOf(const ShardMap& map, int keys) {
  std::unordered_map<std::string, int> owners;
  for (int i = 0; i < keys; ++i) {
    const std::string name = "relation_" + std::to_string(i);
    owners[name] = map.OwnerOf(name);
  }
  return owners;
}

int MovedKeys(const std::unordered_map<std::string, int>& before,
              const std::unordered_map<std::string, int>& after) {
  int moved = 0;
  for (const auto& [name, owner] : before) {
    if (after.at(name) != owner) {
      ++moved;
    }
  }
  return moved;
}

// The consistent-hash stability property: adding or removing a shard moves
// only about 1/M of the keyspace (we allow 2x slack for vnode variance),
// while the modulo baseline reshuffles the majority of keys.
TEST(ShardMapTest, ConsistentHashMovesFewKeysOnMembershipChange) {
  constexpr int kKeys = 2000;

  ShardMap ring(4, ShardingStrategy::kConsistentHash);
  auto before = OwnersOf(ring, kKeys);
  ASSERT_EQ(ring.AddShard(), 4);
  auto grown = OwnersOf(ring, kKeys);
  const int moved_on_add = MovedKeys(before, grown);
  // Ideal is 1/5 of the keys; assert within 2x, and that it actually moved
  // something (the new shard must take ownership of part of the ring).
  EXPECT_GT(moved_on_add, 0);
  EXPECT_LE(moved_on_add, 2 * kKeys / 5);
  // Keys that moved all moved TO the new shard, never between old shards.
  for (const auto& [name, owner] : before) {
    const int now = grown.at(name);
    if (now != owner) {
      EXPECT_EQ(now, 4) << name << " moved between pre-existing shards";
    }
  }

  // Removing the shard restores the original assignment exactly.
  ring.RemoveShard(4);
  EXPECT_EQ(MovedKeys(before, OwnersOf(ring, kKeys)), 0);

  // The modulo control arm: the same membership change moves most keys.
  ShardMap modulo(4, ShardingStrategy::kModulo);
  auto modulo_before = OwnersOf(modulo, kKeys);
  modulo.AddShard();
  const int modulo_moved = MovedKeys(modulo_before, OwnersOf(modulo, kKeys));
  EXPECT_GT(modulo_moved, kKeys / 2);
  EXPECT_GT(modulo_moved, 2 * moved_on_add);
}

TEST(ShardMapTest, PinsWinOverStrategyAndSurviveMembershipChanges) {
  ShardMap map(3);
  const std::string name = "produced_intermediate";
  const int strategy_owner = map.StrategyOwnerOf(name);
  const int pinned = (strategy_owner + 1) % 3;

  map.Pin(name, pinned);
  EXPECT_EQ(map.OwnerOf(name), pinned);
  EXPECT_EQ(map.StrategyOwnerOf(name), strategy_owner);
  ASSERT_TRUE(map.PinnedOwner(name).has_value());
  EXPECT_EQ(*map.PinnedOwner(name), pinned);

  // Pins outlive the pinned shard's compute (the data is still in its
  // partition) — RemoveShard must not silently re-home the relation.
  map.RemoveShard(pinned);
  EXPECT_FALSE(map.IsAlive(pinned));
  EXPECT_EQ(map.OwnerOf(name), pinned);

  map.Unpin(name);
  const int rehomed = map.OwnerOf(name);
  EXPECT_NE(rehomed, pinned);
  EXPECT_TRUE(map.IsAlive(rehomed));
}

TEST(ShardMapTest, HashNameIsStableAcrossCalls) {
  // Deterministic hash over the bytes: ownership is reproducible across
  // processes (socket-mode peers each compute OwnerOf independently), so two
  // maps built the same way must agree on every owner.
  EXPECT_EQ(ShardMap::HashName("lineitem"), ShardMap::HashName("lineitem"));
  EXPECT_NE(ShardMap::HashName("lineitem"), ShardMap::HashName("part"));
  ShardMap a(3);
  ShardMap b(3);
  for (int i = 0; i < 100; ++i) {
    const std::string name = "rel_" + std::to_string(i);
    EXPECT_EQ(a.OwnerOf(name), b.OwnerOf(name));
  }
}

// ---- ShardedDfs ------------------------------------------------------------

TablePtr MakeIntTable(int64_t rows) {
  Table table(Schema({{"x", FieldType::kInt64}}));
  for (int64_t i = 0; i < rows; ++i) {
    table.AddRow({i});
  }
  return std::make_shared<Table>(std::move(table));
}

// A view reading its own partition is free; reading another shard's relation
// is a counted fetch of the relation's nominal bytes, and the fetched copy
// is bit-identical to the original.
TEST(ShardedDfsTest, ViewFetchAccountingSplitsLocalFromRemote) {
  ShardedDfs dfs(2);
  TablePtr table = MakeIntTable(64);
  dfs.Put("rel", table);
  const int owner = dfs.shard_map().OwnerOf("rel");
  const int other = 1 - owner;

  EXPECT_TRUE(dfs.View(owner)->IsLocal("rel"));
  EXPECT_FALSE(dfs.View(other)->IsLocal("rel"));

  auto local = dfs.View(owner)->Get("rel");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->get(), table.get());  // same object: no copy, no charge
  EXPECT_EQ(dfs.remote_fetches(), 0u);
  EXPECT_DOUBLE_EQ(dfs.remote_bytes_fetched(), 0.0);

  auto remote = dfs.View(other)->Get("rel");
  ASSERT_TRUE(remote.ok());
  EXPECT_NE(remote->get(), table.get());  // deep copy crossed the "network"
  EXPECT_TRUE(Table::Identical(*table, **remote));
  EXPECT_EQ(dfs.remote_fetches(), 1u);
  EXPECT_DOUBLE_EQ(dfs.remote_bytes_fetched(), table->nominal_bytes());
  EXPECT_GT(dfs.measured_remote_mbps(), 0.0);

  // The global (planner) vantage point never pays fetch charges.
  ASSERT_TRUE(dfs.Get("rel").ok());
  EXPECT_EQ(dfs.remote_fetches(), 1u);
}

// Placement-near-data: a view's Put lands in its own partition, pins the
// relation there, and drops the stale copy at the strategy owner.
TEST(ShardedDfsTest, ViewPutPinsOutputAndDropsStaleCopy) {
  ShardedDfs dfs(3);
  const std::string name = "intermediate";
  const int strategy_owner = dfs.shard_map().StrategyOwnerOf(name);
  dfs.Put(name, MakeIntTable(8));  // v1 at the strategy owner
  ASSERT_TRUE(dfs.partition(strategy_owner).Contains(name));

  const int producer = (strategy_owner + 1) % 3;
  dfs.View(producer)->Put(name, MakeIntTable(16));  // v2, produced elsewhere
  EXPECT_EQ(dfs.shard_map().OwnerOf(name), producer);
  EXPECT_TRUE(dfs.partition(producer).Contains(name));
  EXPECT_FALSE(dfs.partition(strategy_owner).Contains(name));

  // Exactly one authoritative copy: the global read resolves to v2.
  auto table = dfs.Get(name);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 16u);
  EXPECT_EQ(dfs.ListRelations(), (std::vector<std::string>{name}));
}

// Post-failover read path: when the directory's answer has no data (the
// relation was placed before a membership change), Get scans the partitions,
// serves the hit, and repairs the directory so the next read is one hop.
TEST(ShardedDfsTest, DirectoryMissFallsBackToScanAndRepairs) {
  ShardedDfs dfs(3);
  const std::string name = "orphan";
  dfs.Put(name, MakeIntTable(4));
  const int holder = dfs.shard_map().OwnerOf(name);

  // Simulate a stale directory: strategy re-homes the relation elsewhere.
  dfs.shard_map().RemoveShard(holder);
  ASSERT_NE(dfs.shard_map().OwnerOf(name), holder);

  auto table = dfs.Get(name);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), 4u);
  // Repaired: pinned back to the partition that actually holds the bytes.
  EXPECT_EQ(dfs.shard_map().OwnerOf(name), holder);
}

}  // namespace
}  // namespace musketeer
