// Cluster model and DFS tests.

#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include "src/cluster/dfs.h"

namespace musketeer {
namespace {

TEST(ClusterTest, PresetsHaveExpectedShapes) {
  ClusterConfig local = LocalCluster();
  EXPECT_EQ(local.num_nodes, 7);
  ClusterConfig ec2 = Ec2Cluster(100);
  EXPECT_EQ(ec2.num_nodes, 100);
  EXPECT_EQ(ec2.name, "ec2-100");
  ClusterConfig single = SingleMachine();
  EXPECT_EQ(single.num_nodes, 1);
}

TEST(ClusterTest, BandwidthAggregatesAcrossNodes) {
  ClusterConfig ec2 = Ec2Cluster(10);
  EXPECT_DOUBLE_EQ(ec2.ReadBandwidth(10), 10 * MBps(ec2.node_read_mbps));
  // Capped at the cluster size.
  EXPECT_DOUBLE_EQ(ec2.ReadBandwidth(50), 10 * MBps(ec2.node_read_mbps));
  EXPECT_LT(ec2.WriteBandwidth(10), ec2.ReadBandwidth(10));
}

TEST(DfsTest, PutGetEraseAndList) {
  Dfs dfs;
  auto t = std::make_shared<Table>(Schema({{"x", FieldType::kInt64}}));
  EXPECT_FALSE(dfs.Contains("a"));
  EXPECT_FALSE(dfs.Get("a").ok());
  dfs.Put("b", t);
  dfs.Put("a", t);
  EXPECT_TRUE(dfs.Contains("a"));
  EXPECT_TRUE(dfs.Get("a").ok());
  EXPECT_EQ(dfs.ListRelations(), (std::vector<std::string>{"a", "b"}));
  dfs.Erase("a");
  EXPECT_FALSE(dfs.Contains("a"));
  EXPECT_EQ(dfs.ListRelations(), (std::vector<std::string>{"b"}));
}

TEST(DfsTest, PutReplacesExisting) {
  Dfs dfs;
  auto t1 = std::make_shared<Table>(Schema({{"x", FieldType::kInt64}}));
  auto t2 = std::make_shared<Table>(Schema({{"y", FieldType::kDouble}}));
  dfs.Put("r", t1);
  dfs.Put("r", t2);
  auto got = dfs.Get("r");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->schema().field(0).name, "y");
}

TEST(DfsTest, IoAccounting) {
  Dfs dfs;
  dfs.RecordRead(100);
  dfs.RecordRead(50);
  dfs.RecordWrite(30);
  EXPECT_DOUBLE_EQ(dfs.bytes_read(), 150);
  EXPECT_DOUBLE_EQ(dfs.bytes_written(), 30);
  dfs.ResetStats();
  EXPECT_DOUBLE_EQ(dfs.bytes_read(), 0);
}

}  // namespace
}  // namespace musketeer
