// Workload tests: generators produce consistent data sets with the paper's
// nominal dimensions; every evaluation workflow parses and computes sensible
// results on its sample.

#include "src/workloads/workflows.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <queue>

#include "src/frontends/frontend.h"
#include "src/ir/eval.h"
#include "src/workloads/datasets.h"

namespace musketeer {
namespace {

TEST(DatasetsTest, GraphsHaveNominalPaperSizes) {
  GraphDataset twitter = TwitterGraph();
  EXPECT_NEAR(twitter.vertices->nominal_rows(), 43e6, 43e6 * 0.01);
  EXPECT_NEAR(twitter.edges->nominal_rows(), 1.4e9, 1.4e9 * 0.01);
  GraphDataset lj = LiveJournalGraph();
  EXPECT_NEAR(lj.vertices->nominal_rows(), 4.8e6, 4.8e6 * 0.01);
  EXPECT_NEAR(lj.edges->nominal_rows(), 69e6, 69e6 * 0.01);
}

TEST(DatasetsTest, GraphDegreesMatchEdges) {
  GraphDataset g = OrkutGraph();
  std::map<int64_t, int64_t> out_degree;
  for (const Row& e : g.edges->MaterializeRows()) {
    ++out_degree[AsInt64(e[0])];
  }
  for (const Row& v : g.vertices->MaterializeRows()) {
    EXPECT_EQ(AsInt64(v[2]), out_degree[AsInt64(v[0])])
        << "vertex " << AsInt64(v[0]);
  }
}

TEST(DatasetsTest, GraphGenerationIsDeterministic) {
  GraphDataset a = OrkutGraph();
  GraphDataset b = OrkutGraph();
  EXPECT_TRUE(Table::SameContent(*a.edges, *b.edges));
  EXPECT_TRUE(Table::SameContent(*a.vertices, *b.vertices));
}

TEST(DatasetsTest, AsciiLinesHitNominalBytes) {
  TablePtr t = MakeAsciiLines(2 * kGB, 1000, 5);
  EXPECT_NEAR(t->nominal_bytes(), 2 * kGB, 2 * kGB * 0.01);
}

TEST(DatasetsTest, OverlappingCommunitiesShareEdges) {
  CommunityPair pair = MakeOverlappingCommunities();
  auto common = Intersect(*pair.a.edges, *pair.b.edges);
  ASSERT_TRUE(common.ok());
  EXPECT_GT(common->num_rows(), pair.a.edges->num_rows() / 10);
  EXPECT_LT(common->num_rows(), pair.a.edges->num_rows());
}

TEST(DatasetsTest, SsspGraphHasZeroCostSource) {
  GraphDataset g = TwitterGraphWithCosts();
  EXPECT_EQ(g.edges->schema().num_fields(), 3u);
  bool found_source = false;
  for (const Row& v : g.vertices->MaterializeRows()) {
    if (AsInt64(v[0]) == 0) {
      EXPECT_DOUBLE_EQ(AsDouble(v[1]), 0.0);
      found_source = true;
    } else {
      EXPECT_GT(AsDouble(v[1]), 1e17);
    }
  }
  EXPECT_TRUE(found_source);
}

// --- Workflow semantics -----------------------------------------------------

TEST(WorkflowsTest, TpchQ17HiveAndLindiAgree) {
  TpchDataset data = MakeTpch(/*scale_factor=*/10, /*sample_rows=*/5000);
  TableMap base{{"lineitem", data.lineitem}, {"part", data.part}};

  auto hive = ParseWorkflow(FrontendLanguage::kHive, TpchQ17Hive());
  ASSERT_TRUE(hive.ok()) << hive.status();
  auto hive_result = EvaluateDagRelation(**hive, base, "q17_result");
  ASSERT_TRUE(hive_result.ok()) << hive_result.status();

  auto lindi = ParseWorkflow(FrontendLanguage::kLindi, TpchQ17Lindi());
  ASSERT_TRUE(lindi.ok()) << lindi.status();
  auto lindi_result = EvaluateDagRelation(**lindi, base, "q17_result");
  ASSERT_TRUE(lindi_result.ok()) << lindi_result.status();

  ASSERT_EQ(hive_result->num_rows(), 1u);
  ASSERT_EQ(lindi_result->num_rows(), 1u);
  EXPECT_NEAR(AsDouble(hive_result->MaterializeRows()[0][0]),
              AsDouble(lindi_result->MaterializeRows()[0][0]), 1e-6);
}

TEST(WorkflowsTest, PageRankGasMatchesBeerFormulation) {
  GraphDataset g = OrkutGraph();
  TableMap base{{"vertices", g.vertices}, {"edges", g.edges}};

  auto gas = ParseWorkflow(FrontendLanguage::kGas, PageRankGas(4));
  ASSERT_TRUE(gas.ok()) << gas.status();
  auto gas_result = EvaluateDagRelation(**gas, base, "pagerank");
  ASSERT_TRUE(gas_result.ok()) << gas_result.status();

  auto beer = ParseWorkflow(FrontendLanguage::kBeer, PageRankBeer(4));
  ASSERT_TRUE(beer.ok()) << beer.status();
  auto beer_result = EvaluateDagRelation(**beer, base, "pagerank");
  ASSERT_TRUE(beer_result.ok()) << beer_result.status();

  EXPECT_TRUE(Table::SameContent(*gas_result, *beer_result));
}

TEST(WorkflowsTest, PageRankMassStaysBounded) {
  GraphDataset g = LiveJournalGraph();
  TableMap base{{"vertices", g.vertices}, {"edges", g.edges}};
  auto gas = ParseWorkflow(FrontendLanguage::kGas, PageRankGas(5));
  ASSERT_TRUE(gas.ok());
  auto result = EvaluateDagRelation(**gas, base, "pagerank");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(result->num_rows(), 0u);
  for (const Row& r : result->MaterializeRows()) {
    double rank = AsDouble(r[1]);
    EXPECT_GT(rank, 0.0);
    EXPECT_LT(rank, 200.0);
  }
}

// Dijkstra reference for the SSSP workflow.
std::map<int64_t, double> Dijkstra(const Table& edges, int64_t source) {
  std::map<int64_t, std::vector<std::pair<int64_t, double>>> adj;
  for (const Row& e : edges.MaterializeRows()) {
    adj[AsInt64(e[0])].push_back({AsInt64(e[1]), AsDouble(e[2])});
  }
  std::map<int64_t, double> dist;
  using Item = std::pair<double, int64_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0.0, source});
  dist[source] = 0.0;
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v] + 1e-12) {
      continue;
    }
    for (const auto& [u, w] : adj[v]) {
      if (dist.count(u) == 0 || dist[u] > d + w) {
        dist[u] = d + w;
        pq.push({dist[u], u});
      }
    }
  }
  return dist;
}

TEST(WorkflowsTest, SsspMatchesDijkstraWithinHopBound) {
  GraphSpec spec;
  spec.name = "sssp-small";
  spec.sample_vertices = 60;
  spec.nominal_vertices = 60;
  spec.nominal_edges = 0;  // sample == nominal
  spec.seed = 9;
  spec.with_costs = true;
  spec.initial_value = 1e18;
  GraphDataset g = MakePowerLawGraph(spec);

  const int kIterations = 70;  // >= diameter: converged
  auto gas = ParseWorkflow(FrontendLanguage::kGas, SsspGas(kIterations));
  ASSERT_TRUE(gas.ok()) << gas.status();
  TableMap base{{"vertices", g.vertices}, {"edges", g.edges}};
  auto result = EvaluateDagRelation(**gas, base, "sssp");
  ASSERT_TRUE(result.ok()) << result.status();

  std::map<int64_t, double> expected = Dijkstra(*g.edges, 0);
  int reached = 0;
  for (const Row& r : result->MaterializeRows()) {
    int64_t v = AsInt64(r[0]);
    double d = AsDouble(r[1]);
    if (d < 1e17) {
      ASSERT_TRUE(expected.count(v) > 0) << "vertex " << v;
      EXPECT_NEAR(d, expected[v], 1e-6) << "vertex " << v;
      ++reached;
    }
  }
  EXPECT_GT(reached, 10);
}

TEST(WorkflowsTest, KmeansCentersMoveTowardClusters) {
  KmeansDataset data = MakeKmeans(/*nominal_points=*/1e8, /*sample_points=*/500,
                                  /*k=*/4, /*seed=*/13);
  auto beer = ParseWorkflow(FrontendLanguage::kBeer, KmeansBeer(5));
  ASSERT_TRUE(beer.ok()) << beer.status();
  TableMap base{{"points", data.points}, {"centers", data.centers}};
  auto result = EvaluateDagRelation(**beer, base, "kmeans_centers");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->num_rows(), 4u);
  EXPECT_GE(result->num_rows(), 2u);
  // Centers stay in the data's bounding box.
  for (const Row& r : result->MaterializeRows()) {
    EXPECT_GE(AsDouble(r[1]), -5.0);
    EXPECT_LE(AsDouble(r[1]), 40.0);
  }
}

TEST(WorkflowsTest, NetflixProducesPerUserRecommendations) {
  NetflixDataset data = MakeNetflix(/*sample_users=*/60);
  auto beer = ParseWorkflow(FrontendLanguage::kBeer, NetflixBeer(100));
  ASSERT_TRUE(beer.ok()) << beer.status();
  EXPECT_EQ((*beer)->TotalOperatorCount(), 13);
  TableMap base{{"ratings", data.ratings}, {"movies", data.movies}};
  auto result = EvaluateDagRelation(**beer, base, "recommendation");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->num_rows(), 0u);
  // Every recommended movie's score equals the user's best score.
  auto sidx = result->schema().IndexOf("score");
  auto bidx = result->schema().IndexOf("best_score");
  ASSERT_TRUE(sidx.has_value());
  ASSERT_TRUE(bidx.has_value());
  for (const Row& r : result->MaterializeRows()) {
    EXPECT_DOUBLE_EQ(AsDouble(r[*sidx]), AsDouble(r[*bidx]));
  }
}

TEST(WorkflowsTest, NetflixExtendedHasEighteenOperators) {
  auto beer = ParseWorkflow(FrontendLanguage::kBeer, NetflixExtendedBeer(100));
  ASSERT_TRUE(beer.ok()) << beer.status();
  EXPECT_EQ((*beer)->TotalOperatorCount(), 18);
}

TEST(WorkflowsTest, CrossCommunityPageRankRuns) {
  CommunityPair pair = MakeOverlappingCommunities();
  auto beer =
      ParseWorkflow(FrontendLanguage::kBeer, CrossCommunityPageRankBeer(3));
  ASSERT_TRUE(beer.ok()) << beer.status();
  TableMap base{{"lj_edges", pair.a.edges}, {"web_edges", pair.b.edges}};
  auto result = EvaluateDagRelation(**beer, base, "cc_pagerank");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->num_rows(), 0u);
}

TEST(WorkflowsTest, TopShopperFindsOnlyQualifyingUsers) {
  TablePtr purchases = MakePurchases(1e6, 2000, 10, 21);
  auto beer =
      ParseWorkflow(FrontendLanguage::kBeer, TopShopperBeer(5, 300.0));
  ASSERT_TRUE(beer.ok()) << beer.status();
  auto result =
      EvaluateDagRelation(**beer, {{"purchases", purchases}}, "top_shoppers");
  ASSERT_TRUE(result.ok()) << result.status();
  for (const Row& r : result->MaterializeRows()) {
    EXPECT_GT(AsDouble(r[1]), 300.0);
  }
}

}  // namespace
}  // namespace musketeer
