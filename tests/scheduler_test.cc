// Scheduler tests: size prediction with and without history, job costing,
// the DP heuristic vs. exhaustive search, and the decision-tree baseline.

#include "src/scheduler/partitioner.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "src/frontends/frontend.h"
#include "src/scheduler/decision_tree.h"
#include "src/scheduler/placement.h"
#include "src/workloads/workflows.h"

namespace musketeer {
namespace {

std::unique_ptr<Dag> MaxPropertyPriceDag() {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, R"(
    locs = SELECT id, street, town FROM properties;
    id_price = JOIN locs, prices ON locs.id = prices.id;
    street_price = AGG MAX(price) AS max_price FROM id_price
                   GROUP BY street, town;
  )");
  EXPECT_TRUE(dag.ok()) << dag.status();
  return std::move(dag).value();
}

RelationSizes PropertySizes() {
  return {{"properties", 4 * kGB}, {"prices", 2 * kGB}};
}

TEST(CostModelTest, ConservativeBoundsWithoutHistory) {
  auto dag = MaxPropertyPriceDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(*dag, PropertySizes());
  ASSERT_TRUE(sizes.ok()) << sizes.status();
  int join_id = dag->ProducerOf("id_price");
  // Generative JOIN: conservative multiple of the inputs.
  EXPECT_GT((*sizes)[join_id], 6 * kGB);
}

TEST(CostModelTest, HistoryOverridesBounds) {
  auto dag = MaxPropertyPriceDag();
  HistoryStore history;
  history.Record("wf", "id_price", 0.5 * kGB);
  CostModel model(LocalCluster(), &history, "wf");
  auto sizes = model.PredictSizes(*dag, PropertySizes());
  ASSERT_TRUE(sizes.ok());
  EXPECT_DOUBLE_EQ((*sizes)[dag->ProducerOf("id_price")], 0.5 * kGB);
}

TEST(CostModelTest, MissingBaseSizeIsAnError) {
  auto dag = MaxPropertyPriceDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  EXPECT_FALSE(model.PredictSizes(*dag, {}).ok());
}

TEST(CostModelTest, InfiniteCostForUnsupportedSets) {
  auto dag = MaxPropertyPriceDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(*dag, PropertySizes());
  ASSERT_TRUE(sizes.ok());
  std::vector<int> all_ops;
  for (const auto& n : dag->nodes()) {
    if (n.kind != OpKind::kInput) {
      all_ops.push_back(n.id);
    }
  }
  // Two shuffles -> impossible on Hadoop, fine on Naiad.
  EXPECT_EQ(model.JobCost(*dag, all_ops, EngineKind::kHadoop, *sizes),
            kInfiniteCost);
  EXPECT_LT(model.JobCost(*dag, all_ops, EngineKind::kNaiad, *sizes),
            kInfiniteCost);
}

TEST(CostModelTest, MergedJobCheaperThanSplit) {
  auto dag = MaxPropertyPriceDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(*dag, PropertySizes());
  ASSERT_TRUE(sizes.ok());
  std::vector<int> ops;
  for (const auto& n : dag->nodes()) {
    if (n.kind != OpKind::kInput) {
      ops.push_back(n.id);
    }
  }
  double merged = model.JobCost(*dag, ops, EngineKind::kNaiad, *sizes);
  double split = 0;
  for (int op : ops) {
    split += model.JobCost(*dag, {op}, EngineKind::kNaiad, *sizes);
  }
  EXPECT_LT(merged, split);
}

TEST(PartitionerTest, DpSplitsMapReduceAtShuffles) {
  auto dag = MaxPropertyPriceDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(*dag, PropertySizes());
  ASSERT_TRUE(sizes.ok());
  PlannerConfig config;
  config.strategy = PartitionStrategyKind::kDp;
  config.engines = {EngineKind::kHadoop};
  auto part = PartitionWorkflow(*dag, model, *sizes, config);
  ASSERT_TRUE(part.ok()) << part.status();
  EXPECT_EQ(part->jobs.size(), 2u);  // (project+join) | (group-by)
  for (const auto& job : part->jobs) {
    EXPECT_EQ(job.engine, EngineKind::kHadoop);
  }
}

TEST(PartitionerTest, GeneralEngineMergesEverything) {
  auto dag = MaxPropertyPriceDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(*dag, PropertySizes());
  ASSERT_TRUE(sizes.ok());
  PlannerConfig config;
  config.strategy = PartitionStrategyKind::kDp;
  config.engines = {EngineKind::kNaiad};
  auto part = PartitionWorkflow(*dag, model, *sizes, config);
  ASSERT_TRUE(part.ok()) << part.status();
  EXPECT_EQ(part->jobs.size(), 1u);
}

TEST(PartitionerTest, MergingDisabledYieldsOneJobPerOperator) {
  auto dag = MaxPropertyPriceDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(*dag, PropertySizes());
  ASSERT_TRUE(sizes.ok());
  PlannerConfig config;
  config.strategy = PartitionStrategyKind::kDp;
  config.enable_merging = false;
  auto part = PartitionWorkflow(*dag, model, *sizes, config);
  ASSERT_TRUE(part.ok()) << part.status();
  EXPECT_EQ(part->jobs.size(), 3u);
}

TEST(PartitionerTest, ExhaustiveMatchesOrBeatsDp) {
  auto dag = MaxPropertyPriceDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(*dag, PropertySizes());
  ASSERT_TRUE(sizes.ok());
  auto dp = PartitionWorkflow(*dag, model, *sizes,
                              {.strategy = PartitionStrategyKind::kDp});
  auto ex = PartitionWorkflow(*dag, model, *sizes,
                              {.strategy = PartitionStrategyKind::kExhaustive});
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(ex.ok());
  EXPECT_LE(ex->total_cost, dp->total_cost * 1.0000001);
}

TEST(PartitionerTest, ExhaustiveBeatsDpOnFigure16Shape) {
  // Fig. 16: a diamond where the final JOIN should merge with the PROJECT on
  // one branch; the depth-first linear order interposes the other branch's
  // AGG, breaking the merge for MapReduce engines. The exhaustive search is
  // not bound to the linear order and finds the cheaper plan.
  const char* kSource = R"(
    proj = SELECT k, v FROM left_rel;
    agg = AGG SUM(v2) AS sv FROM right_rel GROUP BY k2;
    final = JOIN proj, agg ON proj.k = agg.k2;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();
  // Reorder: ensure linear (id) order is proj < agg < join, which blocks the
  // proj+join segment under the DP's contiguity restriction.
  RelationSizes sizes_in{{"left_rel", 8 * kGB}, {"right_rel", 8 * kGB}};
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(**dag, sizes_in);
  ASSERT_TRUE(sizes.ok());
  PlannerConfig config;
  config.engines = {EngineKind::kHadoop};  // restricted-expressivity engine
  config.strategy = PartitionStrategyKind::kDp;
  auto dp = PartitionWorkflow(**dag, model, *sizes, config);
  config.strategy = PartitionStrategyKind::kExhaustive;
  auto ex = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(dp.ok()) << dp.status();
  ASSERT_TRUE(ex.ok()) << ex.status();
  EXPECT_LT(ex->total_cost, dp->total_cost);
  // Exhaustive merges PROJECT with the JOIN; DP cannot.
  bool found_merge = false;
  for (const auto& job : ex->jobs) {
    if (job.ops.size() == 2) {
      found_merge = true;
    }
  }
  EXPECT_TRUE(found_merge);
}

TEST(PartitionerTest, MultipleLinearOrdersRecoverFigure16Merge) {
  // §8's proposed fix, implemented as PlannerConfig::dp_linear_orders:
  // with several randomized topological orders, the DP finds the
  // JOIN+PROJECT merge that the single depth-first order breaks.
  const char* kSource = R"(
    proj = SELECT k, v FROM left_rel;
    agg = AGG SUM(v2) AS sv FROM right_rel GROUP BY k2;
    final = JOIN proj, agg ON proj.k = agg.k2;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();
  RelationSizes sizes_in{{"left_rel", 8 * kGB}, {"right_rel", 8 * kGB}};
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(**dag, sizes_in);
  ASSERT_TRUE(sizes.ok());
  PlannerConfig config;
  config.engines = {EngineKind::kHadoop};
  config.strategy = PartitionStrategyKind::kDp;

  auto single = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(single.ok());

  config.dp_linear_orders = 8;
  auto multi = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(multi.ok());
  EXPECT_LT(multi->total_cost, single->total_cost);

  config.strategy = PartitionStrategyKind::kExhaustive;
  auto exhaustive = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_NEAR(multi->total_cost, exhaustive->total_cost,
              exhaustive->total_cost * 1e-9);
}

TEST(PartitionerTest, AutomaticMappingPrefersGraphEngineForPageRank) {
  auto dag = ParseWorkflow(FrontendLanguage::kGas, PageRankGas(5));
  ASSERT_TRUE(dag.ok()) << dag.status();
  RelationSizes sizes_in{{"vertices", 1 * kGB}, {"edges", 21 * kGB}};
  CostModel model(Ec2Cluster(100), nullptr, "pagerank");
  auto sizes = model.PredictSizes(**dag, sizes_in);
  ASSERT_TRUE(sizes.ok());
  auto part = PartitionWorkflow(**dag, model, *sizes, PlannerConfig{});
  ASSERT_TRUE(part.ok()) << part.status();
  ASSERT_EQ(part->jobs.size(), 1u);
  // At 100 nodes the specialized path on Naiad (GraphLINQ) or PowerGraph
  // should win; Hadoop/Metis/Serial must not be chosen.
  EXPECT_TRUE(part->jobs[0].engine == EngineKind::kNaiad ||
              part->jobs[0].engine == EngineKind::kPowerGraph)
      << EngineKindName(part->jobs[0].engine);
}

TEST(PartitionerTest, SmallInputsMapToSingleMachine) {
  auto dag = MaxPropertyPriceDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  RelationSizes small{{"properties", 100 * kMB}, {"prices", 50 * kMB}};
  auto sizes = model.PredictSizes(*dag, small);
  ASSERT_TRUE(sizes.ok());
  // Fig. 2a's system set: the high-overhead distributed engines lose to
  // single-machine execution on small inputs.
  PlannerConfig config;
  config.engines = {EngineKind::kHadoop, EngineKind::kSpark, EngineKind::kMetis,
                    EngineKind::kSerialC};
  auto part = PartitionWorkflow(*dag, model, *sizes, config);
  ASSERT_TRUE(part.ok());
  for (const auto& job : part->jobs) {
    EXPECT_FALSE(IsDistributedEngine(job.engine))
        << EngineKindName(job.engine);
  }
}

TEST(HistoryTest, PartialKnowledgeKeepsPrefix) {
  HistoryStore history;
  history.Record("wf", "a", 1);
  history.Record("wf", "b", 2);
  history.Record("wf", "c", 3);
  history.Record("wf", "d", 4);
  HistoryStore half = history.WithPartialKnowledge(0.5);
  EXPECT_EQ(half.EntriesFor("wf"), 2);
  EXPECT_TRUE(half.Lookup("wf", "a").has_value());
  EXPECT_FALSE(half.Lookup("wf", "d").has_value());
  EXPECT_FALSE(half.Lookup("other", "a").has_value());
}

TEST(HistoryTest, JsonRoundTripPreservesEntriesAndOrder) {
  HistoryStore history;
  history.Record("wf-a", "alpha", 100);
  history.Record("wf-a", "beta", 200);
  history.Record("wf-a", "gamma", 300);
  history.Record("wf-b", "x", 7.5);

  HistoryStore loaded;
  ASSERT_TRUE(loaded.FromJson(history.ToJson()).ok());
  EXPECT_EQ(loaded.EntriesFor("wf-a"), 3);
  EXPECT_EQ(loaded.EntriesFor("wf-b"), 1);
  EXPECT_DOUBLE_EQ(*loaded.Lookup("wf-a", "beta"), 200);
  EXPECT_DOUBLE_EQ(*loaded.Lookup("wf-b", "x"), 7.5);
  // Insertion order survives the round trip (WithPartialKnowledge depends
  // on per-workflow order): the half-knowledge prefix is still alpha, beta.
  HistoryStore prefix = loaded.WithPartialKnowledge(0.5);
  EXPECT_TRUE(prefix.Lookup("wf-a", "alpha").has_value());
  EXPECT_TRUE(prefix.Lookup("wf-a", "beta").has_value());
  EXPECT_FALSE(prefix.Lookup("wf-a", "gamma").has_value());
}

TEST(HistoryTest, SaveToLoadFromFile) {
  const std::string path = "history_store_test.json";
  HistoryStore history;
  history.Record("wf", "rel", 42);
  ASSERT_TRUE(history.SaveTo(path).ok());

  HistoryStore loaded;
  ASSERT_TRUE(loaded.LoadFrom(path).ok());
  EXPECT_DOUBLE_EQ(*loaded.Lookup("wf", "rel"), 42);
  std::remove(path.c_str());

  // Missing file loads as empty history (first service launch).
  HistoryStore empty;
  EXPECT_TRUE(empty.LoadFrom("does_not_exist_12345.json").ok());
  EXPECT_EQ(empty.EntriesFor("wf"), 0);

  // Malformed content is a real error.
  HistoryStore bad;
  EXPECT_FALSE(bad.FromJson("{not json").ok());
  EXPECT_FALSE(bad.FromJson(R"({"wf": "not-an-array"})").ok());
}

TEST(HistoryTest, MergeFromKeepsBestEvidencedEntry) {
  HistoryStore mine;
  mine.Record("wf", "join_out", 100);
  mine.Record("wf", "join_out", 120);  // 2 samples, latest bytes 120
  mine.Record("wf", "mine_only", 5);

  HistoryStore theirs;
  theirs.Record("wf", "join_out", 999);  // 1 sample: less evidence, loses
  theirs.Record("wf", "theirs_only", 7);
  theirs.Record("other", "rel", 11);

  mine.MergeFrom(theirs);
  // More samples win; counts sum (both sides' observations are real).
  EXPECT_DOUBLE_EQ(*mine.Lookup("wf", "join_out"), 120);
  EXPECT_EQ(mine.SamplesFor("wf", "join_out"), 3);
  // Entries present on only one side are kept.
  EXPECT_DOUBLE_EQ(*mine.Lookup("wf", "mine_only"), 5);
  EXPECT_DOUBLE_EQ(*mine.Lookup("wf", "theirs_only"), 7);
  EXPECT_DOUBLE_EQ(*mine.Lookup("other", "rel"), 11);

  // A tie in samples goes to the existing entry (it is at least as fresh).
  HistoryStore tie;
  tie.Record("wf", "join_out", 555);  // 1 sample vs mine's 3: mine keeps
  mine.MergeFrom(tie);
  EXPECT_DOUBLE_EQ(*mine.Lookup("wf", "join_out"), 120);
}

// Satellite (a) regression: LoadFrom into a warm store must MERGE, not
// clobber. A service that re-reads a stale history file keeps every
// observation it accumulated in memory since the file was written.
TEST(HistoryTest, LoadFromMergesIntoWarmStore) {
  const std::string path = "history_merge_test.json";
  HistoryStore stale;
  stale.Record("wf", "join_out", 50);   // the file's (older) belief
  stale.Record("wf", "file_only", 10);
  ASSERT_TRUE(stale.SaveTo(path).ok());

  HistoryStore warm;
  warm.Record("wf", "join_out", 80);
  warm.Record("wf", "join_out", 90);    // 2 samples: more evidence than file
  warm.Record("wf", "warm_only", 30);
  ASSERT_TRUE(warm.LoadFrom(path).ok());
  std::remove(path.c_str());

  EXPECT_DOUBLE_EQ(*warm.Lookup("wf", "join_out"), 90);  // survived reload
  EXPECT_EQ(warm.SamplesFor("wf", "join_out"), 3);
  EXPECT_DOUBLE_EQ(*warm.Lookup("wf", "warm_only"), 30);
  EXPECT_DOUBLE_EQ(*warm.Lookup("wf", "file_only"), 10);
  EXPECT_EQ(warm.EntriesFor("wf"), 3);
}

// The cost model's cross-shard term: a candidate shard that owns the job's
// inputs costs exactly the engine time; a shard that must fetch them pays
// extra transfer seconds at the supplied byte rate — so the owner is argmin,
// and a faster measured network shrinks the penalty.
TEST(CostModelTest, ShardLocalityChargesRemoteInputsAtMeasuredRate) {
  auto dag = MaxPropertyPriceDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(*dag, PropertySizes());
  ASSERT_TRUE(sizes.ok());
  std::vector<int> ops;
  for (const auto& n : dag->nodes()) {
    if (n.kind != OpKind::kInput) {
      ops.push_back(n.id);
    }
  }

  ShardMap map(2);
  map.Pin("properties", 0);
  map.Pin("prices", 0);

  const double base = model.JobCost(*dag, ops, EngineKind::kNaiad, *sizes);
  ShardLocality on_owner{&map, /*shard=*/0, /*remote_mbps=*/100.0};
  ShardLocality off_owner{&map, /*shard=*/1, /*remote_mbps=*/100.0};
  ShardLocality off_owner_fast{&map, /*shard=*/1, /*remote_mbps=*/1000.0};

  EXPECT_DOUBLE_EQ(model.JobCost(*dag, ops, EngineKind::kNaiad, *sizes,
                                 &on_owner),
                   base);
  const double remote =
      model.JobCost(*dag, ops, EngineKind::kNaiad, *sizes, &off_owner);
  const double remote_fast =
      model.JobCost(*dag, ops, EngineKind::kNaiad, *sizes, &off_owner_fast);
  EXPECT_GT(remote, base);
  EXPECT_GT(remote_fast, base);
  EXPECT_LT(remote_fast, remote);  // 10x the bandwidth, smaller penalty

  // Split ownership: each candidate pays only for the inputs it lacks, so
  // the shard owning the bigger input (properties, 4 GB vs 2 GB) wins.
  map.Pin("prices", 1);
  const double shard0 =
      model.JobCost(*dag, ops, EngineKind::kNaiad, *sizes, &on_owner);
  const double shard1 =
      model.JobCost(*dag, ops, EngineKind::kNaiad, *sizes, &off_owner);
  EXPECT_LT(shard0, shard1);
  EXPECT_GT(shard0, base);  // still pays for fetching `prices`
}

TEST(PlacementTest, LocalityPicksByteArgmaxRandomIsSeededAndBlind) {
  ShardMap map(3);
  map.Pin("big", 2);
  map.Pin("small", 0);
  const std::vector<std::pair<std::string, Bytes>> inputs = {
      {"big", 3 * kGB}, {"small", 1 * kGB}};
  const std::vector<int> candidates = {0, 1, 2};

  ShardPlacer locality(&map, PlacementPolicy::kLocality);
  PlacementDecision d = locality.Place("job", inputs, candidates);
  EXPECT_EQ(d.shard, 2);
  EXPECT_TRUE(d.locality_hit);
  EXPECT_DOUBLE_EQ(d.local_bytes, 3 * kGB);
  EXPECT_DOUBLE_EQ(d.remote_bytes, 1 * kGB);
  EXPECT_EQ(locality.locality_hits(), 1u);
  EXPECT_DOUBLE_EQ(locality.cross_shard_bytes(), 1 * kGB);

  // Adopt records an externally made choice, scoring it against the optimum.
  PlacementDecision adopted = locality.Adopt(inputs, candidates, 1);
  EXPECT_EQ(adopted.shard, 1);
  EXPECT_FALSE(adopted.locality_hit);  // shard 1 owns nothing
  EXPECT_DOUBLE_EQ(adopted.remote_bytes, 4 * kGB);
  EXPECT_EQ(locality.placements(), 2u);
  EXPECT_EQ(locality.locality_hits(), 1u);

  // Random is a pure function of (seed, job name): reproducible across
  // placers, and different jobs spread (not all on one shard).
  ShardPlacer random_a(&map, PlacementPolicy::kRandom, /*seed=*/7);
  ShardPlacer random_b(&map, PlacementPolicy::kRandom, /*seed=*/7);
  bool spread = false;
  int first = -1;
  for (int i = 0; i < 16; ++i) {
    const std::string job = "job_" + std::to_string(i);
    PlacementDecision da = random_a.Place(job, inputs, candidates);
    PlacementDecision db = random_b.Place(job, inputs, candidates);
    EXPECT_EQ(da.shard, db.shard);
    if (first < 0) {
      first = da.shard;
    } else if (da.shard != first) {
      spread = true;
    }
  }
  EXPECT_TRUE(spread);
}

TEST(DecisionTreeTest, FollowsItsRigidRules) {
  auto graph = ParseWorkflow(FrontendLanguage::kGas, PageRankGas(5));
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(DecisionTreeChoice(**graph, 20 * kGB, Ec2Cluster(100)),
            EngineKind::kPowerGraph);
  EXPECT_EQ(DecisionTreeChoice(**graph, 20 * kGB, SingleMachine()),
            EngineKind::kGraphChi);

  auto batch = MaxPropertyPriceDag();
  EXPECT_EQ(DecisionTreeChoice(*batch, 100 * kMB, LocalCluster()),
            EngineKind::kMetis);
  EXPECT_EQ(DecisionTreeChoice(*batch, 50 * kGB, LocalCluster()),
            EngineKind::kHadoop);
}

}  // namespace
}  // namespace musketeer
