// Parameterized pricing-model properties over every engine: the invariants
// the cost function and simulators must keep for the paper's arguments to
// hold (monotonicity in bytes, overhead floors, scale-out behavior).

#include <gtest/gtest.h>

#include "src/backends/pricing.h"

namespace musketeer {
namespace {

class PricingInvariantTest : public ::testing::TestWithParam<EngineKind> {};

JobShape ScanShape(Bytes bytes) {
  JobShape shape;
  shape.pull_bytes = bytes;
  shape.push_bytes = bytes / 2;
  shape.ops.push_back(PricedOp{.in_bytes = bytes, .shuffle = false});
  return shape;
}

TEST_P(PricingInvariantTest, MonotoneInDataVolume) {
  EngineKind engine = GetParam();
  ClusterConfig cluster = LocalCluster();
  double prev = 0;
  for (double gb : {0.1, 1.0, 10.0, 100.0}) {
    double t = PriceJob(engine, cluster, ScanShape(gb * kGB));
    EXPECT_GT(t, prev) << EngineKindName(engine) << " at " << gb << " GB";
    prev = t;
  }
}

TEST_P(PricingInvariantTest, JobOverheadIsAFloor) {
  EngineKind engine = GetParam();
  JobShape empty;
  double t = PriceJob(engine, LocalCluster(), empty);
  EXPECT_GE(t, RatesFor(engine).job_overhead_s);
  // Two internal jobs double the overhead.
  empty.job_count = 2;
  EXPECT_NEAR(PriceJob(engine, LocalCluster(), empty),
              2 * RatesFor(engine).job_overhead_s, 1e-9);
}

TEST_P(PricingInvariantTest, MoreNodesNeverHurt) {
  EngineKind engine = GetParam();
  JobShape shape = ScanShape(50 * kGB);
  shape.ops[0].shuffle = true;
  double at16 = PriceJob(engine, Ec2Cluster(16), shape);
  double at100 = PriceJob(engine, Ec2Cluster(100), shape);
  EXPECT_LE(at100, at16 * 1.0001) << EngineKindName(engine);
  if (IsDistributedEngine(engine) &&
      RatesFor(engine).max_scalable_nodes > 16) {
    EXPECT_LT(at100, at16) << EngineKindName(engine);
  }
  if (!IsDistributedEngine(engine)) {
    EXPECT_NEAR(at100, at16, 1e-9) << EngineKindName(engine);
  }
}

TEST_P(PricingInvariantTest, LowerEfficiencyCostsMore) {
  EngineKind engine = GetParam();
  JobShape shape = ScanShape(20 * kGB);
  shape.ops[0].shuffle = true;
  double ideal = PriceJob(engine, LocalCluster(), shape);
  shape.process_efficiency = 0.8;
  double generated = PriceJob(engine, LocalCluster(), shape);
  EXPECT_GT(generated, ideal) << EngineKindName(engine);
  // Efficiency touches PROCESS/shuffle only — never more than the whole job.
  EXPECT_LT(generated, ideal / 0.8 + 1e-9) << EngineKindName(engine);
}

TEST_P(PricingInvariantTest, FusionNeverSlowsAJob) {
  EngineKind engine = GetParam();
  JobShape fused = ScanShape(20 * kGB);
  fused.ops.push_back(
      PricedOp{.in_bytes = 20 * kGB, .shuffle = false, .charge_process = false});
  JobShape unfused = ScanShape(20 * kGB);
  unfused.ops.push_back(
      PricedOp{.in_bytes = 20 * kGB, .shuffle = false, .charge_process = true});
  EXPECT_LT(PriceJob(engine, LocalCluster(), fused),
            PriceJob(engine, LocalCluster(), unfused))
      << EngineKindName(engine);
}

TEST_P(PricingInvariantTest, SuperstepsAddLinearCost) {
  EngineKind engine = GetParam();
  JobShape shape = ScanShape(1 * kGB);
  double base = PriceJob(engine, Ec2Cluster(16), shape);
  shape.supersteps = 10;
  double with_steps = PriceJob(engine, Ec2Cluster(16), shape);
  const EngineRates& r = RatesFor(engine);
  double expected = 10 * (r.superstep_s +
                          r.coord_s_per_node * EffectiveNodes(engine, Ec2Cluster(16)));
  EXPECT_NEAR(with_steps - base, expected, 1e-9) << EngineKindName(engine);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, PricingInvariantTest,
                         ::testing::ValuesIn(kAllEngines),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return EngineKindName(info.param);
                         });

TEST(PricingModelTest, GraphPathFasterThanGenericWhereAvailable) {
  JobShape shape;
  shape.ops.push_back(PricedOp{.in_bytes = 50 * kGB, .graph_path = false});
  JobShape graph = shape;
  graph.ops[0].graph_path = true;
  // Naiad's GraphLINQ path is strictly faster than its generic operators;
  // PowerGraph only *has* the vertex path, so both rates coincide.
  EXPECT_LT(PriceJob(EngineKind::kNaiad, Ec2Cluster(16), graph),
            PriceJob(EngineKind::kNaiad, Ec2Cluster(16), shape));
  EXPECT_LE(PriceJob(EngineKind::kPowerGraph, Ec2Cluster(16), graph),
            PriceJob(EngineKind::kPowerGraph, Ec2Cluster(16), shape));
}

TEST(PricingModelTest, SingleNodeOpIgnoresClusterWidth) {
  JobShape shape;
  shape.ops.push_back(PricedOp{.in_bytes = 10 * kGB, .single_node = true});
  double at16 = PriceJob(EngineKind::kNaiad, Ec2Cluster(16), shape);
  double at100 = PriceJob(EngineKind::kNaiad, Ec2Cluster(100), shape);
  EXPECT_NEAR(at16, at100, 1e-9);
}

}  // namespace
}  // namespace musketeer
