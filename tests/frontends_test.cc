// Front-end parser tests: each language parses to the expected IR shape, and
// the parsed DAGs evaluate correctly on small data via the reference
// interpreter.

#include "src/frontends/frontend.h"

#include <gtest/gtest.h>

#include "src/ir/eval.h"

namespace musketeer {
namespace {

TableMap PropertyData() {
  Schema props({{"id", FieldType::kInt64},
                {"street", FieldType::kString},
                {"town", FieldType::kString}});
  auto properties = std::make_shared<Table>(props);
  properties->AddRow({int64_t{1}, std::string("High St"), std::string("Cambridge")});
  properties->AddRow({int64_t{2}, std::string("High St"), std::string("Cambridge")});
  properties->AddRow({int64_t{3}, std::string("Mill Rd"), std::string("Cambridge")});

  Schema price_schema({{"id", FieldType::kInt64}, {"price", FieldType::kDouble}});
  auto prices = std::make_shared<Table>(price_schema);
  prices->AddRow({int64_t{1}, 250000.0});
  prices->AddRow({int64_t{2}, 400000.0});
  prices->AddRow({int64_t{3}, 180000.0});

  return {{"properties", properties}, {"prices", prices}};
}

// --- BEER ---------------------------------------------------------------

TEST(BeerParserTest, MaxPropertyPriceWorkflow) {
  const char* kSource = R"(
    locs = SELECT id, street, town FROM properties;
    id_price = JOIN locs, prices ON locs.id = prices.id;
    street_price = AGG MAX(price) AS max_price FROM id_price
                   GROUP BY street, town;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();

  auto result = EvaluateDagRelation(**dag, PropertyData(), "street_price");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 2u);
  for (const Row& r : result->MaterializeRows()) {
    if (std::get<std::string>(r[0]) == "High St") {
      EXPECT_DOUBLE_EQ(AsDouble(r[2]), 400000.0);
    } else {
      EXPECT_DOUBLE_EQ(AsDouble(r[2]), 180000.0);
    }
  }
}

TEST(BeerParserTest, SelectWhereSplitsIntoFilterAndProject) {
  const char* kSource = R"(
    cheap = SELECT id FROM prices WHERE price < 200000;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();
  int selects = 0;
  int projects = 0;
  for (const auto& n : (*dag)->nodes()) {
    selects += n.kind == OpKind::kSelect ? 1 : 0;
    projects += n.kind == OpKind::kProject ? 1 : 0;
  }
  EXPECT_EQ(selects, 1);
  EXPECT_EQ(projects, 1);

  auto result = EvaluateDagRelation(**dag, PropertyData(), "cheap");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(AsInt64(result->MaterializeRows()[0][0]), 3);
}

TEST(BeerParserTest, WhileLoopIterates) {
  // Doubles `v` three times: 1 -> 8.
  const char* kSource = R"(
    start = MAP k, v * 1.0 AS v FROM seed;
    WHILE 3 LOOP cur = start UPDATE nxt {
      nxt = MAP k, v * 2 AS v FROM cur;
    } YIELD nxt AS result;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();

  Schema s({{"k", FieldType::kInt64}, {"v", FieldType::kDouble}});
  auto seed = std::make_shared<Table>(s);
  seed->AddRow({int64_t{1}, 1.0});
  auto result = EvaluateDagRelation(**dag, {{"seed", seed}}, "result");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(result->MaterializeRows()[0][1]), 8.0);
}

TEST(BeerParserTest, SetOperations) {
  const char* kSource = R"(
    u = UNION a, b;
    i = INTERSECT a, b;
    d = DIFFERENCE a, b;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();

  Schema s({{"x", FieldType::kInt64}});
  auto a = std::make_shared<Table>(s);
  a->AddRow({int64_t{1}});
  a->AddRow({int64_t{2}});
  auto b = std::make_shared<Table>(s);
  b->AddRow({int64_t{2}});
  b->AddRow({int64_t{3}});
  TableMap base{{"a", a}, {"b", b}};
  auto all = EvaluateDag(**dag, base);
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ((*all)["u"]->num_rows(), 4u);
  EXPECT_EQ((*all)["i"]->num_rows(), 1u);
  EXPECT_EQ((*all)["d"]->num_rows(), 1u);
}

TEST(BeerParserTest, SyntaxErrorsAreReported) {
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kBeer, "x = SELECT FROM y;").ok());
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kBeer, "x = BOGUS y;").ok());
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kBeer, "x = DISTINCT y").ok());
  EXPECT_FALSE(
      ParseWorkflow(FrontendLanguage::kBeer,
                    "WHILE 2 LOOP a = b UPDATE missing { c = DISTINCT a; } "
                    "YIELD c AS out;")
          .ok());
}

// --- HiveQL ---------------------------------------------------------------

TEST(HiveParserTest, ListingOneWorkflow) {
  // Listing 1 from the paper, modulo the statement-naming convention.
  const char* kSource = R"(
    SELECT id, street, town FROM properties AS locs;
    locs JOIN prices ON locs.id = prices.id AS id_price;
    SELECT street, town, MAX(price) FROM id_price GROUP BY street AND town
      AS street_price;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kHive, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();

  auto result = EvaluateDagRelation(**dag, PropertyData(), "street_price");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(HiveParserTest, WhereClause) {
  const char* kSource = R"(
    SELECT id FROM prices WHERE price >= 200000 AS expensive;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kHive, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();
  auto result = EvaluateDagRelation(**dag, PropertyData(), "expensive");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(HiveParserTest, GlobalAggregate) {
  const char* kSource = R"(
    SELECT SUM(price) total FROM prices AS result;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kHive, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();
  auto result = EvaluateDagRelation(**dag, PropertyData(), "result");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(result->MaterializeRows()[0][0]), 830000.0);
}

TEST(HiveParserTest, BareColumnOutsideGroupByRejected) {
  EXPECT_FALSE(
      ParseWorkflow(FrontendLanguage::kHive, "SELECT id, SUM(price) FROM x AS y;")
          .ok());
}

// --- GAS -------------------------------------------------------------------

TEST(GasParserTest, PageRankLowersToWhileJoinGroupBy) {
  const char* kSource = R"(
    GATHER = { SUM (vertex_value) }
    APPLY = {
      MUL [vertex_value, 0.85]
      SUM [vertex_value, 0.15]
    }
    SCATTER = { DIV [vertex_value, vertex_degree] }
    ITERATION_STOP = (iteration < 5)
    ITERATION = { SUM [iteration, 1] }
    RESULT = ranks
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kGas, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();

  // Shape: one WHILE whose body is JOIN -> MAP -> GROUP BY -> JOIN -> MAP.
  int while_id = (*dag)->ProducerOf("ranks");
  ASSERT_GE(while_id, 0);
  const auto& wp = std::get<WhileParams>((*dag)->node(while_id).params);
  EXPECT_EQ(wp.iterations, 5);
  int joins = 0;
  int group_bys = 0;
  for (const auto& n : wp.body->nodes()) {
    joins += n.kind == OpKind::kJoin ? 1 : 0;
    group_bys += n.kind == OpKind::kGroupBy ? 1 : 0;
  }
  EXPECT_EQ(joins, 2);
  EXPECT_EQ(group_bys, 1);
}

TEST(GasParserTest, PageRankConvergesOnTriangle) {
  const char* kSource = R"(
    GATHER = { SUM (vertex_value) }
    APPLY = { MUL [vertex_value, 0.85] SUM [vertex_value, 0.15] }
    SCATTER = { DIV [vertex_value, vertex_degree] }
    ITERATION_STOP = (iteration < 30)
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kGas, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();

  // Symmetric triangle: every vertex should keep rank 1.0.
  Schema vs({{"id", FieldType::kInt64},
             {"vertex_value", FieldType::kDouble},
             {"vertex_degree", FieldType::kInt64}});
  auto vertices = std::make_shared<Table>(vs);
  for (int64_t v = 0; v < 3; ++v) {
    vertices->AddRow({v, 1.0, int64_t{2}});
  }
  Schema es({{"src", FieldType::kInt64}, {"dst", FieldType::kInt64}});
  auto edges = std::make_shared<Table>(es);
  for (int64_t v = 0; v < 3; ++v) {
    for (int64_t u = 0; u < 3; ++u) {
      if (u != v) {
        edges->AddRow({v, u});
      }
    }
  }
  auto result = EvaluateDagRelation(**dag, {{"vertices", vertices}, {"edges", edges}},
                                    "gas_result");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 3u);
  for (const Row& r : result->MaterializeRows()) {
    EXPECT_NEAR(AsDouble(r[1]), 1.0, 1e-9);
  }
}

TEST(GasParserTest, MissingSectionRejected) {
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kGas,
                             "GATHER = { SUM (vertex_value) }")
                   .ok());
}

// --- Lindi -------------------------------------------------------------------

TEST(LindiParserTest, ChainedPipeline) {
  const char* kSource = R"(
    locs = properties.Select(id, street, town);
    id_price = locs.Join(prices, id, id);
    street_price = id_price.GroupBy(street, town).Max(price);
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kLindi, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();
  auto result = EvaluateDagRelation(**dag, PropertyData(), "street_price");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(LindiParserTest, WhereDistinctCount) {
  const char* kSource = R"(
    n = prices.Where(price > 100000).Distinct().Count();
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kLindi, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();
  auto result = EvaluateDagRelation(**dag, PropertyData(), "n");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(AsInt64(result->MaterializeRows()[0][0]), 3);
}

TEST(LindiParserTest, MultipleAggregationsAfterGroupBy) {
  const char* kSource = R"(
    stats = prices.GroupBy(id).Sum(price).Count();
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kLindi, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();
  auto result = EvaluateDagRelation(**dag, PropertyData(), "stats");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->schema().num_fields(), 3u);
}

TEST(LindiParserTest, DanglingGroupByRejected) {
  EXPECT_FALSE(
      ParseWorkflow(FrontendLanguage::kLindi, "x = prices.GroupBy(id);").ok());
}

}  // namespace
}  // namespace musketeer
