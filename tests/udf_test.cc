// UDF registry + front-end + execution tests (§4.1.3): abstractions without
// an IR operator map to registered user-defined table functions that every
// engine executes identically.

#include "src/frontends/udf_registry.h"

#include <gtest/gtest.h>

#include "src/core/musketeer.h"

namespace musketeer {
namespace {

class UdfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClearUdfRegistry();
    // A sessionizer-style UDF: emits one row per distinct uid with the
    // number of events — something our relational operators could express,
    // but written as opaque user code.
    UdfDefinition count_events;
    count_events.name = "count_events";
    count_events.arity = 1;
    count_events.output_schema =
        Schema({{"uid", FieldType::kInt64}, {"events", FieldType::kInt64}});
    count_events.fn =
        [](const std::vector<const Table*>& inputs) -> StatusOr<Table> {
      std::map<int64_t, int64_t> counts;
      auto uid = inputs[0]->schema().IndexOf("uid");
      if (!uid.has_value()) {
        return InvalidArgumentError("count_events needs a uid column");
      }
      for (const Row& row : inputs[0]->MaterializeRows()) {
        ++counts[AsInt64(row[*uid])];
      }
      Table out(Schema({{"uid", FieldType::kInt64}, {"events", FieldType::kInt64}}));
      for (const auto& [id, n] : counts) {
        out.AddRow({id, n});
      }
      out.set_scale(inputs[0]->scale());
      return out;
    };
    RegisterUdf(std::move(count_events));

    // A two-input UDF.
    UdfDefinition zip_counts;
    zip_counts.name = "zip_counts";
    zip_counts.arity = 2;
    zip_counts.output_schema = Schema({{"total", FieldType::kInt64}});
    zip_counts.fn =
        [](const std::vector<const Table*>& inputs) -> StatusOr<Table> {
      Table out(Schema({{"total", FieldType::kInt64}}));
      out.AddRow({static_cast<int64_t>(inputs[0]->num_rows() +
                                       inputs[1]->num_rows())});
      return out;
    };
    RegisterUdf(std::move(zip_counts));
  }

  void TearDown() override { ClearUdfRegistry(); }

  TablePtr Events() {
    Schema s({{"uid", FieldType::kInt64}, {"what", FieldType::kInt64}});
    auto t = std::make_shared<Table>(s);
    for (int64_t i = 0; i < 120; ++i) {
      t->AddRow({i % 7, i});
    }
    t->set_scale(1e5);
    return t;
  }
};

TEST_F(UdfTest, RegistryLookup) {
  EXPECT_TRUE(LookupUdf("count_events").ok());
  EXPECT_FALSE(LookupUdf("missing").ok());
  auto def = LookupUdf("zip_counts");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->arity, 2);
}

TEST_F(UdfTest, BeerParsesUdfCalls) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, R"(
    per_user = UDF count_events(events);
    busy = SELECT * FROM per_user WHERE events > 17;
  )");
  ASSERT_TRUE(dag.ok()) << dag.status();
  int udf_id = (*dag)->ProducerOf("per_user");
  ASSERT_GE(udf_id, 0);
  EXPECT_EQ((*dag)->node(udf_id).kind, OpKind::kUdf);
}

TEST_F(UdfTest, UnknownUdfIsAParseError) {
  auto dag =
      ParseWorkflow(FrontendLanguage::kBeer, "x = UDF nonexistent(events);");
  EXPECT_FALSE(dag.ok());
}

TEST_F(UdfTest, ArityMismatchIsAParseError) {
  EXPECT_FALSE(
      ParseWorkflow(FrontendLanguage::kBeer, "x = UDF zip_counts(events);").ok());
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kBeer,
                             "x = UDF count_events(a, b);")
                   .ok());
}

TEST_F(UdfTest, UdfWorkflowRunsOnEveryGeneralEngine) {
  WorkflowSpec wf;
  wf.id = "udf-flow";
  wf.language = FrontendLanguage::kBeer;
  wf.source = R"(
    per_user = UDF count_events(events);
    busy = SELECT * FROM per_user WHERE events > 17;
  )";
  TablePtr expected_input = Events();
  for (EngineKind engine : {EngineKind::kHadoop, EngineKind::kSpark,
                            EngineKind::kNaiad, EngineKind::kSerialC}) {
    Dfs dfs;
    dfs.Put("events", expected_input);
    Musketeer m(&dfs);
    RunOptions options;
    options.engines = {engine};
    auto result = m.Run(wf, options);
    ASSERT_TRUE(result.ok()) << EngineKindName(engine) << ": "
                             << result.status();
    ASSERT_EQ(result->outputs.count("busy"), 1u);
    // 120 events over 7 users: only uid 0 gets 18, the rest 17.
    EXPECT_EQ(result->outputs["busy"]->num_rows(), 1u)
        << EngineKindName(engine);
  }
}

TEST_F(UdfTest, TwoInputUdfRuns) {
  WorkflowSpec wf;
  wf.id = "udf-two";
  wf.language = FrontendLanguage::kBeer;
  wf.source = "total = UDF zip_counts(events, events2);\n";
  Dfs dfs;
  dfs.Put("events", Events());
  dfs.Put("events2", Events());
  Musketeer m(&dfs);
  auto result = m.Run(wf, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(AsInt64(result->outputs["total"]->MaterializeRows()[0][0]), 240);
}

TEST_F(UdfTest, GraphEnginesRejectUdfWorkflows) {
  WorkflowSpec wf;
  wf.id = "udf-flow";
  wf.language = FrontendLanguage::kBeer;
  wf.source = "per_user = UDF count_events(events);\n";
  Dfs dfs;
  dfs.Put("events", Events());
  Musketeer m(&dfs);
  RunOptions options;
  options.engines = {EngineKind::kPowerGraph};
  EXPECT_FALSE(m.Run(wf, options).ok());
}

}  // namespace
}  // namespace musketeer
