// Unit tests for the typed Column storage and the Value sentinel semantics
// the columnar data plane relies on (string cells have no numeric view).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/relational/ops.h"
#include "src/relational/table.h"

namespace musketeer {
namespace {

// --- Column basics ------------------------------------------------------

TEST(ColumnTest, TypedAppendAndValueAt) {
  Column ints(FieldType::kInt64);
  EXPECT_TRUE(ints.Append(static_cast<int64_t>(7)));
  EXPECT_TRUE(ints.Append(2.9));  // numeric coercion truncates like AsInt64
  ASSERT_EQ(ints.size(), 2u);
  EXPECT_EQ(ints.ints()[0], 7);
  EXPECT_EQ(ints.ints()[1], 2);
  EXPECT_EQ(AsInt64(ints.ValueAt(0)), 7);

  Column strs(FieldType::kString);
  EXPECT_TRUE(strs.Append(std::string("abc")));
  ASSERT_EQ(strs.size(), 1u);
  EXPECT_EQ(strs.strings()[0], "abc");
}

TEST(ColumnTest, AppendRejectsStringNumericMismatch) {
  Column ints(FieldType::kInt64);
  EXPECT_FALSE(ints.Append(std::string("oops")));
  EXPECT_EQ(ints.size(), 0u);  // nothing appended on mismatch

  Column strs(FieldType::kString);
  EXPECT_FALSE(strs.Append(static_cast<int64_t>(3)));
  EXPECT_FALSE(strs.Append(1.5));
  EXPECT_EQ(strs.size(), 0u);
}

TEST(ColumnTest, GatherAndSlice) {
  Column c(FieldType::kDouble);
  for (int i = 0; i < 6; ++i) c.Append(static_cast<double>(i) * 1.5);
  Column g = c.Gather({5, 0, 3});
  ASSERT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g.doubles()[0], 7.5);
  EXPECT_DOUBLE_EQ(g.doubles()[1], 0.0);
  EXPECT_DOUBLE_EQ(g.doubles()[2], 4.5);

  Column s = c.Slice(2, 4);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.doubles()[0], 3.0);
  EXPECT_DOUBLE_EQ(s.doubles()[1], 4.5);

  Column empty = c.Slice(3, 3);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.type(), FieldType::kDouble);
}

TEST(ColumnTest, HashAtMatchesHashValueAcrossNumericTypes) {
  Column ints(FieldType::kInt64);
  ints.Append(static_cast<int64_t>(42));
  Column dbls(FieldType::kDouble);
  dbls.Append(42.0);
  Column strs(FieldType::kString);
  strs.Append(std::string("42"));

  // 42 and 42.0 collide (ValuesEqual says they are equal); the shuffle
  // partitioning in every engine depends on this exact agreement.
  EXPECT_EQ(ints.HashAt(0), HashValue(Value(static_cast<int64_t>(42))));
  EXPECT_EQ(dbls.HashAt(0), HashValue(Value(42.0)));
  EXPECT_EQ(ints.HashAt(0), dbls.HashAt(0));
  EXPECT_EQ(strs.HashAt(0), HashValue(Value(std::string("42"))));
}

TEST(ColumnTest, CompareAtCrossTypeSemantics) {
  Column ints(FieldType::kInt64);
  ints.Append(static_cast<int64_t>(3));
  Column dbls(FieldType::kDouble);
  dbls.Append(3.0);
  dbls.Append(3.5);
  Column strs(FieldType::kString);
  strs.Append(std::string("a"));
  strs.Append(std::string("b"));

  EXPECT_EQ(ints.CompareAt(0, dbls, 0), 0);  // 3 == 3.0
  EXPECT_LT(ints.CompareAt(0, dbls, 1), 0);  // 3 < 3.5
  EXPECT_LT(ints.CompareAt(0, strs, 0), 0);  // numerics order before strings
  EXPECT_LT(strs.CompareAt(0, strs, 1), 0);  // lexicographic
  EXPECT_TRUE(ints.EqualAt(0, dbls, 0));
  EXPECT_FALSE(ints.EqualAt(0, strs, 0));
}

TEST(ColumnTest, IdenticalToIsExact) {
  Column a(FieldType::kInt64);
  a.Append(static_cast<int64_t>(1));
  Column b(FieldType::kDouble);
  b.Append(1.0);
  // Cross-numeric equality is NOT identity: Identical distinguishes types.
  EXPECT_TRUE(a.EqualAt(0, b, 0));
  EXPECT_FALSE(a.IdenticalTo(b));
  Column a2 = a;
  EXPECT_TRUE(a.IdenticalTo(a2));
}

// --- Table over columns -------------------------------------------------

TEST(ColumnTest, EmptyTableHasTypedEmptyColumns) {
  Schema s({{"k", FieldType::kInt64},
            {"v", FieldType::kDouble},
            {"tag", FieldType::kString}});
  Table t(s);
  EXPECT_EQ(t.num_rows(), 0u);
  ASSERT_EQ(t.num_fields(), 3u);
  EXPECT_EQ(t.col(0).type(), FieldType::kInt64);
  EXPECT_EQ(t.col(1).type(), FieldType::kDouble);
  EXPECT_EQ(t.col(2).type(), FieldType::kString);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_TRUE(t.MaterializeRows().empty());

  // Kernels accept empty tables.
  Table sel = SelectRows(t, [](const Row&) { return true; });
  EXPECT_EQ(sel.num_rows(), 0u);
  Table d = Distinct(t);
  EXPECT_EQ(d.num_rows(), 0u);
  auto sorted = SortBy(t, {0});
  EXPECT_EQ(sorted.num_rows(), 0u);
}

TEST(ColumnTest, StringColumnsRoundTripThroughKernels) {
  Schema s({{"name", FieldType::kString}, {"n", FieldType::kInt64}});
  Table t(s);
  t.AddRow({std::string("beta"), static_cast<int64_t>(2)});
  t.AddRow({std::string("alpha"), static_cast<int64_t>(1)});
  t.AddRow({std::string("beta"), static_cast<int64_t>(2)});

  Table d = Distinct(t);
  EXPECT_EQ(d.num_rows(), 2u);

  Table sorted = SortBy(t, {0});
  EXPECT_EQ(std::get<std::string>(sorted.ValueAt(0, 0)), "alpha");
  EXPECT_EQ(std::get<std::string>(sorted.ValueAt(1, 0)), "beta");

  auto joined = HashJoin(t, t, 0, 0);
  ASSERT_TRUE(joined.ok());
  // alpha matches once; each beta row matches both beta rows.
  EXPECT_EQ(joined->num_rows(), 5u);
}

TEST(ColumnTest, GroupByRejectsStringAggregation) {
  Schema s({{"k", FieldType::kInt64}, {"tag", FieldType::kString}});
  Table t(s);
  t.AddRow({static_cast<int64_t>(1), std::string("x")});
  auto bad = GroupByAgg(t, {0}, {{AggFn::kSum, 1, "total"}});
  EXPECT_FALSE(bad.ok());
  // COUNT never reads the cells, so it stays legal next to string columns.
  auto ok = GroupByAgg(t, {0}, {{AggFn::kCount, 1, "n"}});
  EXPECT_TRUE(ok.ok());
}

TEST(ColumnTest, AddRowTypeMismatchKeepsRowAlignment) {
  Schema s({{"k", FieldType::kInt64}, {"v", FieldType::kDouble}});
  Table t(s);
  t.AddRow({static_cast<int64_t>(1), 0.5});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.Validate().ok());
  // Numeric cells coerce to the declared column type.
  t.AddRow({2.9, static_cast<int64_t>(4)});
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.col(0).ints()[1], 2);
  EXPECT_DOUBLE_EQ(t.col(1).doubles()[1], 4.0);
  EXPECT_TRUE(t.Validate().ok());
}

// --- Value sentinels ----------------------------------------------------

TEST(ValueSentinelTest, StringNumericViewsAreSentinels) {
  Value s = std::string("12");
  // Views, not parses: "12" does NOT become 12.
  EXPECT_TRUE(std::isnan(AsDouble(s)));
  EXPECT_EQ(AsInt64(s), std::numeric_limits<int64_t>::min());
}

TEST(ValueSentinelTest, NumericViewsStayExact) {
  EXPECT_DOUBLE_EQ(AsDouble(Value(static_cast<int64_t>(5))), 5.0);
  EXPECT_DOUBLE_EQ(AsDouble(Value(2.25)), 2.25);
  EXPECT_EQ(AsInt64(Value(static_cast<int64_t>(5))), 5);
  EXPECT_EQ(AsInt64(Value(2.9)), 2);  // truncation, as before
}

TEST(ValueSentinelTest, TryVariantsSignalStrings) {
  EXPECT_EQ(TryAsDouble(Value(std::string("x"))), std::nullopt);
  EXPECT_EQ(TryAsInt64(Value(std::string("x"))), std::nullopt);
  ASSERT_TRUE(TryAsDouble(Value(1.5)).has_value());
  EXPECT_DOUBLE_EQ(*TryAsDouble(Value(1.5)), 1.5);
  ASSERT_TRUE(TryAsInt64(Value(static_cast<int64_t>(9))).has_value());
  EXPECT_EQ(*TryAsInt64(Value(static_cast<int64_t>(9))), 9);
}

TEST(ValueSentinelTest, IsTruthySemantics) {
  EXPECT_TRUE(IsTruthy(Value(static_cast<int64_t>(1))));
  EXPECT_TRUE(IsTruthy(Value(-0.5)));
  EXPECT_FALSE(IsTruthy(Value(static_cast<int64_t>(0))));
  EXPECT_FALSE(IsTruthy(Value(0.0)));
  // Strings are always false (historical row-plane behavior).
  EXPECT_FALSE(IsTruthy(Value(std::string("true"))));
  EXPECT_FALSE(IsTruthy(Value(std::string(""))));
}

}  // namespace
}  // namespace musketeer
