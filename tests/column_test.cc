// Unit tests for the typed Column storage and the Value sentinel semantics
// the columnar data plane relies on (string cells have no numeric view).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/base/parallel.h"
#include "src/ir/expr.h"
#include "src/relational/ops.h"
#include "src/relational/table.h"
#include "tests/row_reference.h"

namespace musketeer {
namespace {

// --- Column basics ------------------------------------------------------

TEST(ColumnTest, TypedAppendAndValueAt) {
  Column ints(FieldType::kInt64);
  EXPECT_TRUE(ints.Append(static_cast<int64_t>(7)));
  EXPECT_TRUE(ints.Append(2.9));  // numeric coercion truncates like AsInt64
  ASSERT_EQ(ints.size(), 2u);
  EXPECT_EQ(ints.ints()[0], 7);
  EXPECT_EQ(ints.ints()[1], 2);
  EXPECT_EQ(AsInt64(ints.ValueAt(0)), 7);

  Column strs(FieldType::kString);
  EXPECT_TRUE(strs.Append(std::string("abc")));
  ASSERT_EQ(strs.size(), 1u);
  EXPECT_EQ(strs.strings()[0], "abc");
}

TEST(ColumnTest, AppendRejectsStringNumericMismatch) {
  Column ints(FieldType::kInt64);
  EXPECT_FALSE(ints.Append(std::string("oops")));
  EXPECT_EQ(ints.size(), 0u);  // nothing appended on mismatch

  Column strs(FieldType::kString);
  EXPECT_FALSE(strs.Append(static_cast<int64_t>(3)));
  EXPECT_FALSE(strs.Append(1.5));
  EXPECT_EQ(strs.size(), 0u);
}

TEST(ColumnTest, GatherAndSlice) {
  Column c(FieldType::kDouble);
  for (int i = 0; i < 6; ++i) c.Append(static_cast<double>(i) * 1.5);
  Column g = c.Gather({5, 0, 3});
  ASSERT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g.doubles()[0], 7.5);
  EXPECT_DOUBLE_EQ(g.doubles()[1], 0.0);
  EXPECT_DOUBLE_EQ(g.doubles()[2], 4.5);

  Column s = c.Slice(2, 4);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.doubles()[0], 3.0);
  EXPECT_DOUBLE_EQ(s.doubles()[1], 4.5);

  Column empty = c.Slice(3, 3);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.type(), FieldType::kDouble);
}

TEST(ColumnTest, HashAtMatchesHashValueAcrossNumericTypes) {
  Column ints(FieldType::kInt64);
  ints.Append(static_cast<int64_t>(42));
  Column dbls(FieldType::kDouble);
  dbls.Append(42.0);
  Column strs(FieldType::kString);
  strs.Append(std::string("42"));

  // 42 and 42.0 collide (ValuesEqual says they are equal); the shuffle
  // partitioning in every engine depends on this exact agreement.
  EXPECT_EQ(ints.HashAt(0), HashValue(Value(static_cast<int64_t>(42))));
  EXPECT_EQ(dbls.HashAt(0), HashValue(Value(42.0)));
  EXPECT_EQ(ints.HashAt(0), dbls.HashAt(0));
  EXPECT_EQ(strs.HashAt(0), HashValue(Value(std::string("42"))));
}

TEST(ColumnTest, CompareAtCrossTypeSemantics) {
  Column ints(FieldType::kInt64);
  ints.Append(static_cast<int64_t>(3));
  Column dbls(FieldType::kDouble);
  dbls.Append(3.0);
  dbls.Append(3.5);
  Column strs(FieldType::kString);
  strs.Append(std::string("a"));
  strs.Append(std::string("b"));

  EXPECT_EQ(ints.CompareAt(0, dbls, 0), 0);  // 3 == 3.0
  EXPECT_LT(ints.CompareAt(0, dbls, 1), 0);  // 3 < 3.5
  EXPECT_LT(ints.CompareAt(0, strs, 0), 0);  // numerics order before strings
  EXPECT_LT(strs.CompareAt(0, strs, 1), 0);  // lexicographic
  EXPECT_TRUE(ints.EqualAt(0, dbls, 0));
  EXPECT_FALSE(ints.EqualAt(0, strs, 0));
}

TEST(ColumnTest, IdenticalToIsExact) {
  Column a(FieldType::kInt64);
  a.Append(static_cast<int64_t>(1));
  Column b(FieldType::kDouble);
  b.Append(1.0);
  // Cross-numeric equality is NOT identity: Identical distinguishes types.
  EXPECT_TRUE(a.EqualAt(0, b, 0));
  EXPECT_FALSE(a.IdenticalTo(b));
  Column a2 = a;
  EXPECT_TRUE(a.IdenticalTo(a2));
}

// --- Table over columns -------------------------------------------------

TEST(ColumnTest, EmptyTableHasTypedEmptyColumns) {
  Schema s({{"k", FieldType::kInt64},
            {"v", FieldType::kDouble},
            {"tag", FieldType::kString}});
  Table t(s);
  EXPECT_EQ(t.num_rows(), 0u);
  ASSERT_EQ(t.num_fields(), 3u);
  EXPECT_EQ(t.col(0).type(), FieldType::kInt64);
  EXPECT_EQ(t.col(1).type(), FieldType::kDouble);
  EXPECT_EQ(t.col(2).type(), FieldType::kString);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_TRUE(t.MaterializeRows().empty());

  // Kernels accept empty tables.
  Table sel = SelectRows(t, [](const Row&) { return true; });
  EXPECT_EQ(sel.num_rows(), 0u);
  Table d = Distinct(t);
  EXPECT_EQ(d.num_rows(), 0u);
  auto sorted = SortBy(t, {0});
  EXPECT_EQ(sorted.num_rows(), 0u);
}

TEST(ColumnTest, StringColumnsRoundTripThroughKernels) {
  Schema s({{"name", FieldType::kString}, {"n", FieldType::kInt64}});
  Table t(s);
  t.AddRow({std::string("beta"), static_cast<int64_t>(2)});
  t.AddRow({std::string("alpha"), static_cast<int64_t>(1)});
  t.AddRow({std::string("beta"), static_cast<int64_t>(2)});

  Table d = Distinct(t);
  EXPECT_EQ(d.num_rows(), 2u);

  Table sorted = SortBy(t, {0});
  EXPECT_EQ(std::get<std::string>(sorted.ValueAt(0, 0)), "alpha");
  EXPECT_EQ(std::get<std::string>(sorted.ValueAt(1, 0)), "beta");

  auto joined = HashJoin(t, t, 0, 0);
  ASSERT_TRUE(joined.ok());
  // alpha matches once; each beta row matches both beta rows.
  EXPECT_EQ(joined->num_rows(), 5u);
}

TEST(ColumnTest, GroupByRejectsStringAggregation) {
  Schema s({{"k", FieldType::kInt64}, {"tag", FieldType::kString}});
  Table t(s);
  t.AddRow({static_cast<int64_t>(1), std::string("x")});
  auto bad = GroupByAgg(t, {0}, {{AggFn::kSum, 1, "total"}});
  EXPECT_FALSE(bad.ok());
  // COUNT never reads the cells, so it stays legal next to string columns.
  auto ok = GroupByAgg(t, {0}, {{AggFn::kCount, 1, "n"}});
  EXPECT_TRUE(ok.ok());
}

TEST(ColumnTest, AddRowTypeMismatchKeepsRowAlignment) {
  Schema s({{"k", FieldType::kInt64}, {"v", FieldType::kDouble}});
  Table t(s);
  t.AddRow({static_cast<int64_t>(1), 0.5});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.Validate().ok());
  // Numeric cells coerce to the declared column type.
  t.AddRow({2.9, static_cast<int64_t>(4)});
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.col(0).ints()[1], 2);
  EXPECT_DOUBLE_EQ(t.col(1).doubles()[1], 4.0);
  EXPECT_TRUE(t.Validate().ok());
}

// --- Vectorized kernels vs the row oracle -------------------------------

// Deterministic mixed table large enough to span several kMorselRows
// chunks, with a double column whose summation order is observable.
Table MakeKernelInput(size_t rows, uint64_t seed) {
  Schema schema({{"k", FieldType::kInt64},
                 {"v", FieldType::kInt64},
                 {"x", FieldType::kDouble}});
  Table t(schema);
  t.Reserve(rows);
  uint64_t state = seed;
  for (size_t i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    t.AddRow({static_cast<int64_t>((state >> 33) % 997),
              static_cast<int64_t>((state >> 17) % 1000),
              static_cast<double>(static_cast<int64_t>(state % 100003)) / 7.0});
  }
  return t;
}

// SELECT via selection bitmaps (CompileMask + SelectRowsMask) keeps exactly
// the rows the row oracle's compiled predicate keeps — bit-identical, with
// multiple filters fused into one masked pass, at every thread width.
TEST(VectorizedKernelTest, SelectRowsMaskMatchesRowOracle) {
  const Table in = MakeKernelInput(20'000, 99);
  ExprPtr k_lt = Expr::Binary(BinOp::kLt, Expr::Column("k"),
                              Expr::Literal(static_cast<int64_t>(700)));
  ExprPtr v_ge = Expr::Binary(BinOp::kGe, Expr::Column("v"),
                              Expr::Literal(static_cast<int64_t>(250)));
  MaskEval m1 = std::move(k_lt->CompileMask(in.schema())).value();
  MaskEval m2 = std::move(v_ge->CompileMask(in.schema())).value();

  ExprPtr both = Expr::Binary(BinOp::kAnd, k_lt, v_ge);
  RowPredicate pred = std::move(both->CompilePredicate(in.schema())).value();
  const Table expected = rowref::SelectRows(in, pred);

  for (int threads : {1, 2, 8}) {
    ScopedParallelThreads width(threads);
    Table got = SelectRowsMask(in, {m1, m2});
    EXPECT_TRUE(Table::Identical(expected, got))
        << "mask selection diverged at " << threads << " thread(s)";
    // The combined AND expression as a single mask agrees too.
    MaskEval mboth = std::move(both->CompileMask(in.schema())).value();
    Table got_one = SelectRowsMask(in, {mboth});
    EXPECT_TRUE(Table::Identical(expected, got_one));
  }
}

// CompileMask's fallback path (arithmetic result used as a truthy value)
// agrees with CompilePredicate row by row.
TEST(VectorizedKernelTest, CompileMaskTruthinessMatchesPredicate) {
  const Table in = MakeKernelInput(9'000, 5);
  // (k - 500) is truthy except where k == 500: an arithmetic, non-comparison
  // root exercises the EvalNode fallback.
  ExprPtr arith = Expr::Binary(BinOp::kSub, Expr::Column("k"),
                               Expr::Literal(static_cast<int64_t>(500)));
  MaskEval mask = std::move(arith->CompileMask(in.schema())).value();
  RowPredicate pred = std::move(arith->CompilePredicate(in.schema())).value();

  std::vector<uint8_t> bits(in.num_rows());
  mask(in, 0, in.num_rows(), bits.data());
  const std::vector<Row> rows = in.MaterializeRows();
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(bits[i] != 0, pred(rows[i])) << "row " << i;
  }
}

// Builds the fused transform stage used by the two pipeline tests:
// gather {k, x, v}, emit {k, y = x*2 + v}.
FusedTransform MakeFusedTransform() {
  FusedTransform ft;
  ft.gather_cols = {0, 2, 1};
  ft.scratch_schema = Schema({{"k", FieldType::kInt64},
                              {"x", FieldType::kDouble},
                              {"v", FieldType::kInt64}});
  ft.out_schema = Schema({{"k", FieldType::kInt64}, {"y", FieldType::kDouble}});
  ExprPtr y = Expr::Binary(
      BinOp::kAdd,
      Expr::Binary(BinOp::kMul, Expr::Column("x"), Expr::Literal(2.0)),
      Expr::Column("v"));
  ft.exprs.push_back(
      std::move(Expr::Column("k")->CompileBatch(ft.scratch_schema)).value());
  ft.exprs.push_back(std::move(y->CompileBatch(ft.scratch_schema)).value());
  return ft;
}

// Row-oracle version of the same select→map stage.
Table RowOracleSelectMap(const Table& in) {
  ExprPtr cond = Expr::Binary(BinOp::kLt, Expr::Column("k"),
                              Expr::Literal(static_cast<int64_t>(700)));
  RowPredicate pred = std::move(cond->CompilePredicate(in.schema())).value();
  Table selected = rowref::SelectRows(in, pred);
  ExprPtr y = Expr::Binary(
      BinOp::kAdd,
      Expr::Binary(BinOp::kMul, Expr::Column("x"), Expr::Literal(2.0)),
      Expr::Column("v"));
  std::vector<RowProjector> projectors;
  projectors.push_back(
      std::move(Expr::Column("k")->Compile(in.schema())).value());
  projectors.push_back(std::move(y->Compile(in.schema())).value());
  Schema out({{"k", FieldType::kInt64}, {"y", FieldType::kDouble}});
  return rowref::MapRows(selected, out, projectors);
}

// Fused select→map produces the same rows, order, and double bits as the
// row oracle running the two operators with materialization in between.
TEST(VectorizedKernelTest, FusedSelectTransformMatchesRowOracle) {
  const Table in = MakeKernelInput(30'000, 123);
  ExprPtr cond = Expr::Binary(BinOp::kLt, Expr::Column("k"),
                              Expr::Literal(static_cast<int64_t>(700)));
  MaskEval mask = std::move(cond->CompileMask(in.schema())).value();
  const FusedTransform ft = MakeFusedTransform();
  const Table expected = RowOracleSelectMap(in);

  for (int threads : {1, 2, 4, 8}) {
    ScopedParallelThreads width(threads);
    Table got = FusedSelectTransform(in, {mask}, ft);
    EXPECT_TRUE(Table::Identical(expected, got))
        << "fused select→map diverged at " << threads << " thread(s)";
  }
}

// Fused select→map→group-by: the index exchange re-chunks the *filtered*
// row list at kMorselRows, so the aggregation partials — and therefore every
// floating-point bit of the sums — match the row oracle aggregating the
// materialized intermediate, at every thread width.
TEST(VectorizedKernelTest, FusedSelectTransformAggMatchesRowOracle) {
  const Table in = MakeKernelInput(30'000, 321);
  ExprPtr cond = Expr::Binary(BinOp::kLt, Expr::Column("k"),
                              Expr::Literal(static_cast<int64_t>(700)));
  MaskEval mask = std::move(cond->CompileMask(in.schema())).value();
  const FusedTransform ft = MakeFusedTransform();
  const std::vector<int> group = {0};
  const std::vector<AggSpec> aggs{{AggFn::kSum, 1, "sy"},
                                  {AggFn::kAvg, 1, "ay"},
                                  {AggFn::kCount, 0, "c"}};

  Table mapped = RowOracleSelectMap(in);
  auto expected = rowref::GroupByAgg(mapped, group, aggs);
  ASSERT_TRUE(expected.ok()) << expected.status();

  for (int threads : {1, 2, 4, 8}) {
    ScopedParallelThreads width(threads);
    auto got = FusedSelectTransformAgg(in, {mask}, ft, group, aggs);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(Table::Identical(*expected, *got))
        << "fused select→map→agg diverged at " << threads << " thread(s)";
  }
}

// The flat-hash double-key join canonicalizes -0.0 to +0.0 and routes NaN
// around the table, reproducing Value-equality semantics (0.0 == -0.0 joins;
// NaN never matches anything, itself included).
TEST(VectorizedKernelTest, DoubleKeyJoinSignedZeroAndNaNMatchRowOracle) {
  Schema s({{"key", FieldType::kDouble}, {"tag", FieldType::kInt64}});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Table left(s);
  left.AddRow({0.0, static_cast<int64_t>(1)});
  left.AddRow({-0.0, static_cast<int64_t>(2)});
  left.AddRow({nan, static_cast<int64_t>(3)});
  left.AddRow({1.5, static_cast<int64_t>(4)});
  Table right(s);
  right.AddRow({-0.0, static_cast<int64_t>(10)});
  right.AddRow({nan, static_cast<int64_t>(11)});
  right.AddRow({1.5, static_cast<int64_t>(12)});

  auto expected = rowref::HashJoin(left, right, 0, 0);
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto got = HashJoin(left, right, 0, 0);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_TRUE(Table::Identical(*expected, *got));
  // Both zeros join the -0.0 build row; the NaN rows join nothing.
  EXPECT_EQ(got->num_rows(), 3u);
}

// The FlatMap64 group-by fast path handles negative int64 keys (cast to
// uint64 bit pattern) identically to the row oracle.
TEST(VectorizedKernelTest, IntKeyGroupByNegativeKeysMatchRowOracle) {
  Schema s({{"k", FieldType::kInt64}, {"x", FieldType::kDouble}});
  Table t(s);
  uint64_t state = 77;
  for (int i = 0; i < 10'000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    t.AddRow({static_cast<int64_t>((state >> 40) % 64) - 32,
              static_cast<double>(static_cast<int64_t>(state % 1000)) / 3.0});
  }
  const std::vector<int> group = {0};
  const std::vector<AggSpec> aggs{{AggFn::kSum, 1, "sx"},
                                  {AggFn::kMin, 1, "mn"},
                                  {AggFn::kCount, 0, "c"}};
  auto expected = rowref::GroupByAgg(t, group, aggs);
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (int threads : {1, 4}) {
    ScopedParallelThreads width(threads);
    auto got = GroupByAgg(t, group, aggs);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(Table::Identical(*expected, *got));
  }
}

// --- Value sentinels ----------------------------------------------------

TEST(ValueSentinelTest, StringNumericViewsAreSentinels) {
  Value s = std::string("12");
  // Views, not parses: "12" does NOT become 12.
  EXPECT_TRUE(std::isnan(AsDouble(s)));
  EXPECT_EQ(AsInt64(s), std::numeric_limits<int64_t>::min());
}

TEST(ValueSentinelTest, NumericViewsStayExact) {
  EXPECT_DOUBLE_EQ(AsDouble(Value(static_cast<int64_t>(5))), 5.0);
  EXPECT_DOUBLE_EQ(AsDouble(Value(2.25)), 2.25);
  EXPECT_EQ(AsInt64(Value(static_cast<int64_t>(5))), 5);
  EXPECT_EQ(AsInt64(Value(2.9)), 2);  // truncation, as before
}

TEST(ValueSentinelTest, TryVariantsSignalStrings) {
  EXPECT_EQ(TryAsDouble(Value(std::string("x"))), std::nullopt);
  EXPECT_EQ(TryAsInt64(Value(std::string("x"))), std::nullopt);
  ASSERT_TRUE(TryAsDouble(Value(1.5)).has_value());
  EXPECT_DOUBLE_EQ(*TryAsDouble(Value(1.5)), 1.5);
  ASSERT_TRUE(TryAsInt64(Value(static_cast<int64_t>(9))).has_value());
  EXPECT_EQ(*TryAsInt64(Value(static_cast<int64_t>(9))), 9);
}

TEST(ValueSentinelTest, IsTruthySemantics) {
  EXPECT_TRUE(IsTruthy(Value(static_cast<int64_t>(1))));
  EXPECT_TRUE(IsTruthy(Value(-0.5)));
  EXPECT_FALSE(IsTruthy(Value(static_cast<int64_t>(0))));
  EXPECT_FALSE(IsTruthy(Value(0.0)));
  // Strings are always false (historical row-plane behavior).
  EXPECT_FALSE(IsTruthy(Value(std::string("true"))));
  EXPECT_FALSE(IsTruthy(Value(std::string(""))));
}

}  // namespace
}  // namespace musketeer
