// End-to-end tests of the Musketeer façade: every back-end produces results
// identical to the reference interpreter; mapping, merging and quirks behave
// as the paper describes.

#include "src/core/musketeer.h"

#include <gtest/gtest.h>

#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

namespace musketeer {
namespace {

void SeedPropertyData(Dfs* dfs) {
  Schema props({{"id", FieldType::kInt64},
                {"street", FieldType::kString},
                {"town", FieldType::kString}});
  auto properties = std::make_shared<Table>(props);
  Schema price_schema({{"id", FieldType::kInt64}, {"price", FieldType::kDouble}});
  auto prices = std::make_shared<Table>(price_schema);
  for (int64_t i = 0; i < 200; ++i) {
    properties->AddRow({i, std::string("street") + std::to_string(i % 20),
                        std::string("town") + std::to_string(i % 5)});
    prices->AddRow({i, 100000.0 + static_cast<double>((i * 7919) % 500000)});
  }
  properties->set_scale(1e5);  // pretend 20M rows
  prices->set_scale(1e5);
  dfs->Put("properties", properties);
  dfs->Put("prices", prices);
}

WorkflowSpec MaxPropertyPrice() {
  WorkflowSpec wf;
  wf.id = "max-property-price";
  wf.language = FrontendLanguage::kBeer;
  wf.source = R"(
    locs = SELECT id, street, town FROM properties;
    id_price = JOIN locs, prices ON locs.id = prices.id;
    street_price = AGG MAX(price) AS max_price FROM id_price
                   GROUP BY street, town;
  )";
  return wf;
}

// Reference result computed with the plain interpreter.
Table ReferenceResult(Dfs* dfs, const WorkflowSpec& wf,
                      const std::string& relation) {
  Musketeer m(dfs);
  auto dag = m.Lower(wf, /*optimize=*/false);
  EXPECT_TRUE(dag.ok()) << dag.status();
  TableMap base;
  for (const std::string& name : dfs->ListRelations()) {
    base[name] = *dfs->Get(name);
  }
  auto result = EvaluateDagRelation(**dag, base, relation);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(MusketeerTest, EveryGeneralEngineProducesIdenticalResults) {
  for (EngineKind engine : {EngineKind::kHadoop, EngineKind::kSpark,
                            EngineKind::kNaiad, EngineKind::kMetis,
                            EngineKind::kSerialC}) {
    Dfs dfs;
    SeedPropertyData(&dfs);
    WorkflowSpec wf = MaxPropertyPrice();
    Table expected = ReferenceResult(&dfs, wf, "street_price");

    Musketeer m(&dfs);
    RunOptions options;
    options.engines = {engine};
    auto result = m.Run(wf, options);
    ASSERT_TRUE(result.ok()) << EngineKindName(engine) << ": "
                             << result.status();
    ASSERT_EQ(result->outputs.count("street_price"), 1u)
        << EngineKindName(engine);
    EXPECT_TRUE(Table::SameContent(expected, *result->outputs["street_price"]))
        << EngineKindName(engine);
    EXPECT_GT(result->makespan, 0);
  }
}

TEST(MusketeerTest, AutomaticMappingRunsAndIsNoWorseThanWorstForced) {
  Dfs dfs;
  SeedPropertyData(&dfs);
  WorkflowSpec wf = MaxPropertyPrice();
  Musketeer m(&dfs);

  auto auto_result = m.Run(wf, {});
  ASSERT_TRUE(auto_result.ok()) << auto_result.status();

  double worst = 0;
  for (EngineKind engine : {EngineKind::kHadoop, EngineKind::kSpark,
                            EngineKind::kNaiad, EngineKind::kSerialC}) {
    RunOptions options;
    options.engines = {engine};
    auto forced = m.Run(wf, options);
    ASSERT_TRUE(forced.ok());
    worst = std::max(worst, forced->makespan);
  }
  EXPECT_LE(auto_result->makespan, worst);
}

TEST(MusketeerTest, HadoopWorkflowSplitsIntoTwoJobsNaiadIntoOne) {
  Dfs dfs;
  SeedPropertyData(&dfs);
  WorkflowSpec wf = MaxPropertyPrice();
  Musketeer m(&dfs);

  RunOptions hadoop;
  hadoop.engines = {EngineKind::kHadoop};
  auto hres = m.Run(wf, hadoop);
  ASSERT_TRUE(hres.ok()) << hres.status();
  EXPECT_EQ(hres->plans.size(), 2u);

  RunOptions naiad;
  naiad.engines = {EngineKind::kNaiad};
  auto nres = m.Run(wf, naiad);
  ASSERT_TRUE(nres.ok()) << nres.status();
  EXPECT_EQ(nres->plans.size(), 1u);
}

TEST(MusketeerTest, OperatorMergingReducesMakespan) {
  Dfs dfs;
  dfs.Put("purchases", MakePurchases(/*nominal_rows=*/4e8, /*sample_rows=*/4000,
                                     /*num_regions=*/10, /*seed=*/3));
  WorkflowSpec wf;
  wf.id = "top-shopper";
  wf.language = FrontendLanguage::kBeer;
  wf.source = TopShopperBeer(/*region=*/5, /*threshold=*/5000);

  Musketeer m(&dfs);
  RunOptions merged;
  merged.engines = {EngineKind::kHadoop};
  auto on = m.Run(wf, merged);
  ASSERT_TRUE(on.ok()) << on.status();

  RunOptions unmerged = merged;
  unmerged.planner.enable_merging = false;
  unmerged.codegen.shared_scans = false;
  auto off = m.Run(wf, unmerged);
  ASSERT_TRUE(off.ok()) << off.status();

  EXPECT_GT(off->plans.size(), on->plans.size());
  // §6.5: merging cuts makespan by 2-5x on top-shopper.
  EXPECT_GT(off->makespan, 1.8 * on->makespan)
      << "merged=" << on->makespan << " unmerged=" << off->makespan;
  // Results identical either way.
  ASSERT_EQ(on->outputs.count("top_shoppers"), 1u);
  ASSERT_EQ(off->outputs.count("top_shoppers"), 1u);
  EXPECT_TRUE(Table::SameContent(*on->outputs["top_shoppers"],
                                 *off->outputs["top_shoppers"]));
}

TEST(MusketeerTest, GeneratedCodeOverheadWithinPaperBounds) {
  // §6.4: generated code is within 5-30% of hand-optimized baselines.
  Dfs dfs;
  SeedPropertyData(&dfs);
  WorkflowSpec wf = MaxPropertyPrice();
  Musketeer m(&dfs);
  for (EngineKind engine :
       {EngineKind::kHadoop, EngineKind::kSpark, EngineKind::kNaiad}) {
    RunOptions generated;
    generated.engines = {engine};
    auto gen = m.Run(wf, generated);
    ASSERT_TRUE(gen.ok());

    RunOptions ideal = generated;
    ideal.codegen.flavor = CodeGenOptions::Flavor::kIdealHandTuned;
    auto hand = m.Run(wf, ideal);
    ASSERT_TRUE(hand.ok());

    double overhead = gen->makespan / hand->makespan - 1.0;
    EXPECT_GE(overhead, -0.01) << EngineKindName(engine);
    EXPECT_LE(overhead, 0.35) << EngineKindName(engine) << " " << overhead;
  }
}

TEST(MusketeerTest, HistoryImprovesOrMatchesFirstRunChoice) {
  Dfs dfs;
  SeedPropertyData(&dfs);
  WorkflowSpec wf = MaxPropertyPrice();
  Musketeer m(&dfs);

  HistoryStore history;
  RunOptions options;
  options.history = &history;
  auto first = m.Run(wf, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_GT(history.EntriesFor(wf.id), 0);

  auto second = m.Run(wf, options);
  ASSERT_TRUE(second.ok());
  EXPECT_LE(second->makespan, first->makespan * 1.0001);
}

TEST(MusketeerTest, ProfileWorkflowRecordsAllRelations) {
  Dfs dfs;
  SeedPropertyData(&dfs);
  WorkflowSpec wf = MaxPropertyPrice();
  Musketeer m(&dfs);
  HistoryStore history;
  ASSERT_TRUE(m.ProfileWorkflow(wf, {}, &history).ok());
  // Per-operator run records every relation: locs, id_price, street_price.
  EXPECT_GE(history.EntriesFor(wf.id), 3);
  EXPECT_TRUE(history.Lookup(wf.id, "id_price").has_value());
}

TEST(MusketeerTest, GasPageRankRunsOnGraphEngines) {
  GraphDataset graph = OrkutGraph();
  WorkflowSpec wf;
  wf.id = "pagerank";
  wf.language = FrontendLanguage::kGas;
  wf.source = PageRankGas(3);

  // Reference.
  Dfs ref_dfs;
  ref_dfs.Put("vertices", graph.vertices);
  ref_dfs.Put("edges", graph.edges);
  Table expected = ReferenceResult(&ref_dfs, wf, "pagerank");

  for (EngineKind engine :
       {EngineKind::kPowerGraph, EngineKind::kGraphChi, EngineKind::kNaiad,
        EngineKind::kSpark, EngineKind::kHadoop}) {
    Dfs dfs;
    dfs.Put("vertices", graph.vertices);
    dfs.Put("edges", graph.edges);
    Musketeer m(&dfs);
    RunOptions options;
    options.cluster = Ec2Cluster(16);
    options.engines = {engine};
    auto result = m.Run(wf, options);
    ASSERT_TRUE(result.ok()) << EngineKindName(engine) << ": "
                             << result.status();
    ASSERT_EQ(result->outputs.count("pagerank"), 1u);
    EXPECT_TRUE(Table::SameContent(expected, *result->outputs["pagerank"]))
        << EngineKindName(engine);
  }
}

TEST(MusketeerTest, GraphEngineCannotRunBatchWorkflow) {
  Dfs dfs;
  SeedPropertyData(&dfs);
  WorkflowSpec wf = MaxPropertyPrice();
  Musketeer m(&dfs);
  RunOptions options;
  options.engines = {EngineKind::kPowerGraph};
  EXPECT_FALSE(m.Run(wf, options).ok());
}

TEST(MusketeerTest, CombinedEnginesRunHybridWorkflow) {
  CommunityPair communities = MakeOverlappingCommunities();
  Dfs dfs;
  dfs.Put("lj_edges", communities.a.edges);
  dfs.Put("web_edges", communities.b.edges);
  WorkflowSpec wf;
  wf.id = "cross-community-pagerank";
  wf.language = FrontendLanguage::kBeer;
  wf.source = CrossCommunityPageRankBeer(3);

  Musketeer m(&dfs);
  RunOptions options;
  options.engines = {EngineKind::kHadoop, EngineKind::kPowerGraph};
  auto result = m.Run(wf, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // The batch prologue must run on Hadoop, the loop on PowerGraph.
  bool saw_hadoop = false;
  bool saw_powergraph = false;
  for (const JobPlan& plan : result->plans) {
    saw_hadoop |= plan.engine == EngineKind::kHadoop;
    saw_powergraph |= plan.engine == EngineKind::kPowerGraph;
  }
  EXPECT_TRUE(saw_hadoop);
  EXPECT_TRUE(saw_powergraph);
  EXPECT_EQ(result->outputs.count("cc_pagerank"), 1u);
}

TEST(MusketeerTest, DfsAccountingTracksJobIo) {
  Dfs dfs;
  SeedPropertyData(&dfs);
  WorkflowSpec wf = MaxPropertyPrice();
  Musketeer m(&dfs);
  RunOptions options;
  options.engines = {EngineKind::kHadoop};
  auto result = m.Run(wf, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->dfs_bytes_read, 0);
  EXPECT_GT(result->dfs_bytes_written, 0);
}

}  // namespace
}  // namespace musketeer
