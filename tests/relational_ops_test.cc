// Unit tests for the relational kernel: every operator's semantics plus
// scale-metadata propagation.

#include "src/relational/ops.h"

#include <gtest/gtest.h>

#include "src/relational/csv.h"

namespace musketeer {
namespace {

Table PurchasesTable() {
  Schema schema({{"uid", FieldType::kInt64},
                 {"region", FieldType::kInt64},
                 {"amount", FieldType::kDouble}});
  Table t(schema);
  t.AddRow({int64_t{1}, int64_t{10}, 5.0});
  t.AddRow({int64_t{1}, int64_t{10}, 7.5});
  t.AddRow({int64_t{2}, int64_t{20}, 100.0});
  t.AddRow({int64_t{3}, int64_t{10}, 2.0});
  t.AddRow({int64_t{3}, int64_t{10}, 3.0});
  return t;
}

TEST(SelectRowsTest, FiltersByPredicate) {
  Table t = PurchasesTable();
  Table out = SelectRows(t, [](const Row& r) { return AsInt64(r[1]) == 10; });
  EXPECT_EQ(out.num_rows(), 4u);
  for (const Row& r : out.MaterializeRows()) {
    EXPECT_EQ(AsInt64(r[1]), 10);
  }
}

TEST(SelectRowsTest, PropagatesScale) {
  Table t = PurchasesTable();
  t.set_scale(1000.0);
  Table out = SelectRows(t, [](const Row&) { return true; });
  EXPECT_DOUBLE_EQ(out.scale(), 1000.0);
}

TEST(ProjectColumnsTest, KeepsRequestedColumns) {
  Table t = PurchasesTable();
  auto out = ProjectColumns(t, {2, 0});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().field(0).name, "amount");
  EXPECT_EQ(out->schema().field(1).name, "uid");
  EXPECT_EQ(out->num_rows(), 5u);
  EXPECT_DOUBLE_EQ(AsDouble(out->MaterializeRows()[0][0]), 5.0);
}

TEST(ProjectColumnsTest, RejectsOutOfRange) {
  Table t = PurchasesTable();
  auto out = ProjectColumns(t, {5});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(HashJoinTest, JoinsOnKeyWithPaperLayout) {
  Schema users({{"uid", FieldType::kInt64}, {"name", FieldType::kString}});
  Table u(users);
  u.AddRow({int64_t{1}, std::string("ada")});
  u.AddRow({int64_t{2}, std::string("bob")});

  Table p = PurchasesTable();
  auto out = HashJoin(u, p, 0, 0);
  ASSERT_TRUE(out.ok());
  // Layout: key, left-rest, right-rest.
  EXPECT_EQ(out->schema().field(0).name, "uid");
  EXPECT_EQ(out->schema().field(1).name, "name");
  EXPECT_EQ(out->schema().field(2).name, "region");
  EXPECT_EQ(out->schema().field(3).name, "amount");
  EXPECT_EQ(out->num_rows(), 3u);  // ada x2, bob x1
}

TEST(HashJoinTest, EmptyProbeSideYieldsEmpty) {
  Schema s({{"k", FieldType::kInt64}});
  Table a(s);
  Table b(s);
  b.AddRow({int64_t{1}});
  auto out = HashJoin(a, b, 0, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);
}

TEST(HashJoinTest, DuplicateKeysProduceCrossProductWithinKey) {
  Schema s({{"k", FieldType::kInt64}, {"v", FieldType::kInt64}});
  Table a(s);
  a.AddRow({int64_t{1}, int64_t{10}});
  a.AddRow({int64_t{1}, int64_t{11}});
  Table b(s);
  b.AddRow({int64_t{1}, int64_t{20}});
  b.AddRow({int64_t{1}, int64_t{21}});
  auto out = HashJoin(a, b, 0, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 4u);
}

TEST(CrossJoinTest, ProducesAllPairs) {
  Schema s({{"x", FieldType::kInt64}});
  Table a(s);
  a.AddRow({int64_t{1}});
  a.AddRow({int64_t{2}});
  Schema s2({{"y", FieldType::kInt64}});
  Table b(s2);
  b.AddRow({int64_t{3}});
  b.AddRow({int64_t{4}});
  b.AddRow({int64_t{5}});
  Table out = CrossJoin(a, b);
  EXPECT_EQ(out.num_rows(), 6u);
  EXPECT_EQ(out.schema().num_fields(), 2u);
}

TEST(SetOpsTest, UnionIntersectDifference) {
  Schema s({{"x", FieldType::kInt64}});
  Table a(s);
  a.AddRow({int64_t{1}});
  a.AddRow({int64_t{2}});
  a.AddRow({int64_t{2}});
  Table b(s);
  b.AddRow({int64_t{2}});
  b.AddRow({int64_t{3}});

  auto u = UnionAll(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_rows(), 5u);  // bag semantics

  auto i = Intersect(a, b);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->num_rows(), 1u);  // {2}, set semantics

  auto d = Difference(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_rows(), 1u);  // {1}
}

TEST(SetOpsTest, ArityMismatchRejected) {
  Schema s1({{"x", FieldType::kInt64}});
  Schema s2({{"x", FieldType::kInt64}, {"y", FieldType::kInt64}});
  EXPECT_FALSE(UnionAll(Table(s1), Table(s2)).ok());
  EXPECT_FALSE(Intersect(Table(s1), Table(s2)).ok());
  EXPECT_FALSE(Difference(Table(s1), Table(s2)).ok());
}

TEST(DistinctTest, RemovesDuplicates) {
  Schema s({{"x", FieldType::kInt64}});
  Table a(s);
  a.AddRow({int64_t{1}});
  a.AddRow({int64_t{1}});
  a.AddRow({int64_t{2}});
  EXPECT_EQ(Distinct(a).num_rows(), 2u);
}

TEST(GroupByAggTest, ComputesAllAggregations) {
  Table t = PurchasesTable();
  auto out = GroupByAgg(t, {0},
                        {{AggFn::kSum, 2, "total"},
                         {AggFn::kCount, 0, "n"},
                         {AggFn::kMin, 2, "lo"},
                         {AggFn::kMax, 2, "hi"},
                         {AggFn::kAvg, 2, "avg"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);
  for (const Row& r : out->MaterializeRows()) {
    if (AsInt64(r[0]) == 1) {
      EXPECT_DOUBLE_EQ(AsDouble(r[1]), 12.5);
      EXPECT_EQ(AsInt64(r[2]), 2);
      EXPECT_DOUBLE_EQ(AsDouble(r[3]), 5.0);
      EXPECT_DOUBLE_EQ(AsDouble(r[4]), 7.5);
      EXPECT_DOUBLE_EQ(AsDouble(r[5]), 6.25);
    }
  }
}

TEST(GroupByAggTest, GlobalAggregateSingleRow) {
  Table t = PurchasesTable();
  auto out = GroupByAgg(t, {}, {{AggFn::kSum, 2, "total"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out->MaterializeRows()[0][0]), 117.5);
}

TEST(GroupByAggTest, EmptyInputGlobalAggregate) {
  Table t(Schema({{"x", FieldType::kDouble}}));
  auto out = GroupByAgg(t, {}, {{AggFn::kCount, 0, "n"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(AsInt64(out->MaterializeRows()[0][0]), 0);
}

TEST(GroupByAggTest, IntColumnsKeepIntTypeForSumMinMax) {
  Schema s({{"k", FieldType::kInt64}, {"v", FieldType::kInt64}});
  Table t(s);
  t.AddRow({int64_t{1}, int64_t{4}});
  t.AddRow({int64_t{1}, int64_t{6}});
  auto out = GroupByAgg(t, {0}, {{AggFn::kSum, 1, "s"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().field(1).type, FieldType::kInt64);
  EXPECT_EQ(AsInt64(out->MaterializeRows()[0][1]), 10);
}

TEST(ExtremeRowTest, MaxRowAndDeterministicTies) {
  Table t = PurchasesTable();
  auto out = ExtremeRow(t, 2, /*take_max=*/true);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out->MaterializeRows()[0][2]), 100.0);

  auto out_min = ExtremeRow(t, 2, /*take_max=*/false);
  ASSERT_TRUE(out_min.ok());
  EXPECT_DOUBLE_EQ(AsDouble(out_min->MaterializeRows()[0][2]), 2.0);
}

TEST(ExtremeRowTest, EmptyInputYieldsEmpty) {
  Table t(Schema({{"x", FieldType::kInt64}}));
  auto out = ExtremeRow(t, 0, true);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);
}

TEST(TopNByTest, TakesLargestN) {
  Table t = PurchasesTable();
  Table out = TopNBy(t, 2, 2);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(AsDouble(out.MaterializeRows()[0][2]), 100.0);
  EXPECT_DOUBLE_EQ(AsDouble(out.MaterializeRows()[1][2]), 7.5);
}

TEST(SortByTest, SortsByMultipleColumns) {
  Table t = PurchasesTable();
  Table out = SortBy(t, {1, 2});
  EXPECT_EQ(AsInt64(out.MaterializeRows()[0][1]), 10);
  EXPECT_DOUBLE_EQ(AsDouble(out.MaterializeRows()[0][2]), 2.0);
  EXPECT_EQ(AsInt64(out.MaterializeRows()[4][1]), 20);
}

TEST(TableTest, SameContentIgnoresOrder) {
  Table a = PurchasesTable();
  Table b = PurchasesTable();
  std::vector<uint32_t> reversed_idx;
  for (size_t i = b.num_rows(); i > 0; --i) {
    reversed_idx.push_back(static_cast<uint32_t>(i - 1));
  }
  Table reversed = b.Gather(reversed_idx);
  EXPECT_TRUE(Table::SameContent(a, reversed));
  Table truncated = reversed.Slice(0, reversed.num_rows() - 1);
  EXPECT_FALSE(Table::SameContent(a, truncated));
}

TEST(TableTest, NominalSizesScale) {
  Table t = PurchasesTable();
  t.set_scale(100.0);
  EXPECT_DOUBLE_EQ(t.nominal_rows(), 500.0);
  EXPECT_GT(t.nominal_bytes(), t.sample_bytes());
}

TEST(CsvTest, RoundTrips) {
  Table t = PurchasesTable();
  std::string text = WriteCsv(t);
  auto back = ParseCsv(text, t.schema());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(Table::SameContent(t, *back));
}

TEST(CsvTest, RejectsMalformedLines) {
  Schema s({{"x", FieldType::kInt64}});
  EXPECT_FALSE(ParseCsv("1\nfoo\n", s).ok());
  EXPECT_FALSE(ParseCsv("1,2\n", s).ok());
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_TRUE(ValuesEqual(Value(int64_t{3}), Value(3.0)));
  EXPECT_EQ(HashValue(Value(int64_t{3})), HashValue(Value(3.0)));
  EXPECT_LT(CompareValues(Value(int64_t{2}), Value(2.5)), 0);
  EXPECT_LT(CompareValues(Value(2.5), Value(std::string("a"))), 0);
}

}  // namespace
}  // namespace musketeer
