// Property-based tests: algebraic invariants of the relational kernel over
// randomly generated tables (parameterized by seed).

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/relational/ops.h"

namespace musketeer {
namespace {

Table RandomTable(uint64_t seed, int rows, int64_t key_range) {
  Schema s({{"k", FieldType::kInt64},
            {"v", FieldType::kDouble},
            {"tag", FieldType::kString}});
  Table t(s);
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    t.AddRow({rng.NextInRange(0, key_range - 1), rng.NextDouble() * 100.0,
              std::string(rng.NextBounded(2) != 0u ? "x" : "y")});
  }
  return t;
}

class RelationalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelationalPropertyTest, SelectIsIdempotentAndShrinking) {
  Table t = RandomTable(GetParam(), 200, 17);
  auto pred = [](const Row& r) { return AsDouble(r[1]) > 50.0; };
  Table once = SelectRows(t, pred);
  Table twice = SelectRows(once, pred);
  EXPECT_LE(once.num_rows(), t.num_rows());
  EXPECT_TRUE(Table::SameContent(once, twice));
}

TEST_P(RelationalPropertyTest, DistinctIsIdempotent) {
  Table t = RandomTable(GetParam(), 300, 5);
  Table once = Distinct(t);
  Table twice = Distinct(once);
  EXPECT_LE(once.num_rows(), t.num_rows());
  EXPECT_TRUE(Table::SameContent(once, twice));
}

TEST_P(RelationalPropertyTest, SetAlgebraIdentities) {
  Table a = RandomTable(GetParam(), 150, 8);
  Table b = RandomTable(GetParam() + 1000, 150, 8);

  auto u = UnionAll(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_rows(), a.num_rows() + b.num_rows());

  auto i = Intersect(a, b);
  auto d = Difference(a, b);
  ASSERT_TRUE(i.ok());
  ASSERT_TRUE(d.ok());
  // distinct(a) splits exactly into (a ∩ b) and (a \ b).
  Table da = Distinct(a);
  EXPECT_EQ(da.num_rows(), i->num_rows() + d->num_rows());
  // Intersection is symmetric (as a set).
  auto i2 = Intersect(b, a);
  ASSERT_TRUE(i2.ok());
  EXPECT_TRUE(Table::SameContent(*i, *i2));
  // Difference and intersection are disjoint.
  auto overlap = Intersect(*d, *i);
  ASSERT_TRUE(overlap.ok());
  EXPECT_EQ(overlap->num_rows(), 0u);
}

TEST_P(RelationalPropertyTest, JoinCardinalityIsOrderIndependent) {
  Table a = RandomTable(GetParam(), 120, 6);
  Table b = RandomTable(GetParam() + 7, 90, 6);
  auto ab = HashJoin(a, b, 0, 0);
  auto ba = HashJoin(b, a, 0, 0);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(ab->num_rows(), ba->num_rows());
  // Both equal the sum over keys of |a_k| * |b_k|.
  auto count_by_key = [](const Table& t) {
    std::map<int64_t, size_t> counts;
    for (const Row& r : t.MaterializeRows()) {
      ++counts[AsInt64(r[0])];
    }
    return counts;
  };
  auto ca = count_by_key(a);
  auto cb = count_by_key(b);
  size_t expected = 0;
  for (const auto& [k, n] : ca) {
    auto it = cb.find(k);
    if (it != cb.end()) {
      expected += n * it->second;
    }
  }
  EXPECT_EQ(ab->num_rows(), expected);
}

TEST_P(RelationalPropertyTest, JoinWithSelfNeverLosesKeys) {
  Table a = RandomTable(GetParam(), 80, 10);
  Table da = Distinct(a);
  auto self = HashJoin(da, da, 0, 0);
  ASSERT_TRUE(self.ok());
  EXPECT_GE(self->num_rows(), da.num_rows());
}

TEST_P(RelationalPropertyTest, GroupByPartitionsTheInput) {
  Table t = RandomTable(GetParam(), 250, 9);
  auto grouped = GroupByAgg(t, {0},
                            {{AggFn::kCount, 0, "n"}, {AggFn::kSum, 1, "total"}});
  ASSERT_TRUE(grouped.ok());
  int64_t total_count = 0;
  double total_sum = 0;
  for (const Row& r : grouped->MaterializeRows()) {
    total_count += AsInt64(r[1]);
    total_sum += AsDouble(r[2]);
  }
  EXPECT_EQ(total_count, static_cast<int64_t>(t.num_rows()));
  auto global = GroupByAgg(t, {}, {{AggFn::kSum, 1, "total"}});
  ASSERT_TRUE(global.ok());
  EXPECT_NEAR(total_sum, AsDouble(global->MaterializeRows()[0][0]), 1e-6);
}

TEST_P(RelationalPropertyTest, MinMaxBracketAvg) {
  Table t = RandomTable(GetParam(), 100, 4);
  auto stats = GroupByAgg(t, {0},
                          {{AggFn::kMin, 1, "lo"},
                           {AggFn::kAvg, 1, "mid"},
                           {AggFn::kMax, 1, "hi"}});
  ASSERT_TRUE(stats.ok());
  for (const Row& r : stats->MaterializeRows()) {
    EXPECT_LE(AsDouble(r[1]), AsDouble(r[2]) + 1e-9);
    EXPECT_LE(AsDouble(r[2]), AsDouble(r[3]) + 1e-9);
  }
}

TEST_P(RelationalPropertyTest, SortPreservesContent) {
  Table t = RandomTable(GetParam(), 150, 12);
  Table sorted = SortBy(t, {0, 1});
  EXPECT_TRUE(Table::SameContent(t, sorted));
  for (size_t i = 1; i < sorted.num_rows(); ++i) {
    EXPECT_LE(AsInt64(sorted.ValueAt(i - 1, 0)), AsInt64(sorted.ValueAt(i, 0)));
  }
}

TEST_P(RelationalPropertyTest, TopNMatchesSortedPrefix) {
  Table t = RandomTable(GetParam(), 120, 100);
  Table top = TopNBy(t, 1, 10);
  ASSERT_EQ(top.num_rows(), 10u);
  // Every excluded row's value is <= the smallest selected value.
  double min_selected = 1e300;
  for (const Row& r : top.MaterializeRows()) {
    min_selected = std::min(min_selected, AsDouble(r[1]));
  }
  size_t at_least = 0;
  for (const Row& r : t.MaterializeRows()) {
    at_least += AsDouble(r[1]) >= min_selected ? 1 : 0;
  }
  EXPECT_GE(at_least, 10u);
}

TEST_P(RelationalPropertyTest, ProjectComposition) {
  Table t = RandomTable(GetParam(), 60, 5);
  auto p1 = ProjectColumns(t, {2, 0, 1});
  ASSERT_TRUE(p1.ok());
  auto p2 = ProjectColumns(*p1, {1});
  ASSERT_TRUE(p2.ok());
  auto direct = ProjectColumns(t, {0});
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(Table::SameContent(*p2, *direct));
}

TEST_P(RelationalPropertyTest, ScaleSurvivesRowwisePipelines) {
  Table t = RandomTable(GetParam(), 50, 5);
  t.set_scale(12345.0);
  Table s = SelectRows(t, [](const Row&) { return true; });
  auto p = ProjectColumns(s, {0, 1});
  ASSERT_TRUE(p.ok());
  Table d = Distinct(*p);
  EXPECT_DOUBLE_EQ(d.scale(), 12345.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationalPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace musketeer
