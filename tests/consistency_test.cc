// Scheduler/executor consistency: the cost model and the engine simulators
// share one pricing formula, so with *exact* size information (full history)
// the scheduler's estimate for a job must closely match what the simulator
// charges. This is the property that makes history-driven mapping converge
// (Fig. 14: "full history" is always good).

#include <gtest/gtest.h>

#include "src/core/musketeer.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

namespace musketeer {
namespace {

struct Case {
  const char* name;
  WorkflowSpec workflow;
  TableMap inputs;
  EngineKind engine;
};

std::vector<Case> Cases() {
  std::vector<Case> cases;
  {
    Case c;
    c.name = "top-shopper-hadoop";
    c.workflow = {"top-shopper", FrontendLanguage::kBeer,
                  TopShopperBeer(5, 5000.0)};
    c.inputs = {{"purchases", MakePurchases(4e8, 3000, 10, 31)}};
    c.engine = EngineKind::kHadoop;
    cases.push_back(c);
  }
  {
    Case c;
    c.name = "tpch-naiad";
    TpchDataset data = MakeTpch(10, 4000);
    c.workflow = {"tpch-q17", FrontendLanguage::kHive, TpchQ17Hive()};
    c.inputs = {{"lineitem", data.lineitem}, {"part", data.part}};
    c.engine = EngineKind::kNaiad;
    cases.push_back(c);
  }
  {
    Case c;
    c.name = "pagerank-powergraph";
    GraphDataset g = OrkutGraph();
    c.workflow = {"pagerank", FrontendLanguage::kGas, PageRankGas(5)};
    c.inputs = {{"vertices", g.vertices}, {"edges", g.edges}};
    c.engine = EngineKind::kPowerGraph;
    cases.push_back(c);
  }
  return cases;
}

TEST(CostExecutionConsistencyTest, FullHistoryEstimatesMatchExecution) {
  for (const Case& c : Cases()) {
    // Profile to fill history with exact sizes.
    HistoryStore history;
    {
      Dfs dfs;
      for (const auto& [name, table] : c.inputs) {
        dfs.Put(name, table);
      }
      Musketeer m(&dfs);
      RunOptions options;
      options.cluster = Ec2Cluster(16);
      ASSERT_TRUE(m.ProfileWorkflow(c.workflow, options, &history).ok()) << c.name;
    }

    // Informed run: compare the partitioner's estimate to the charge.
    Dfs dfs;
    for (const auto& [name, table] : c.inputs) {
      dfs.Put(name, table);
    }
    Musketeer m(&dfs);
    RunOptions options;
    options.cluster = Ec2Cluster(16);
    options.engines = {c.engine};
    options.history = &history;
    auto result = m.Run(c.workflow, options);
    ASSERT_TRUE(result.ok()) << c.name << ": " << result.status();

    double estimated = result->partitioning.total_cost;
    double actual = result->total_engine_time;
    EXPECT_GT(estimated, 0) << c.name;
    // The estimate prices the same formula with history sizes; residual error
    // comes from loop-body internals (no history inside WHILE) and scale
    // propagation, so allow a generous but bounded band.
    EXPECT_LT(std::abs(estimated - actual) / actual, 0.5)
        << c.name << ": estimated " << estimated << " vs actual " << actual;
  }
}

TEST(CostExecutionConsistencyTest, EstimateRanksEnginesLikeExecution) {
  // Even without exact magnitudes, the cost model must rank engines in the
  // same order the simulators do — that is what makes the automatic mapping
  // pick well.
  GraphDataset g = TwitterGraph();
  WorkflowSpec wf{"pagerank", FrontendLanguage::kGas, PageRankGas(5)};

  std::vector<std::pair<double, EngineKind>> by_estimate;
  std::vector<std::pair<double, EngineKind>> by_actual;
  for (EngineKind engine : {EngineKind::kHadoop, EngineKind::kSpark,
                            EngineKind::kNaiad, EngineKind::kPowerGraph}) {
    Dfs dfs;
    dfs.Put("vertices", g.vertices);
    dfs.Put("edges", g.edges);
    Musketeer m(&dfs);
    RunOptions options;
    options.cluster = Ec2Cluster(100);
    options.engines = {engine};
    auto result = m.Run(wf, options);
    ASSERT_TRUE(result.ok()) << EngineKindName(engine);
    by_estimate.emplace_back(result->partitioning.total_cost, engine);
    by_actual.emplace_back(result->makespan, engine);
  }
  std::sort(by_estimate.begin(), by_estimate.end());
  std::sort(by_actual.begin(), by_actual.end());
  for (size_t i = 0; i < by_estimate.size(); ++i) {
    EXPECT_EQ(by_estimate[i].second, by_actual[i].second)
        << "rank " << i << " differs";
  }
}

}  // namespace
}  // namespace musketeer
