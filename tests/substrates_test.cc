// Tests for the engine substrates: the MapReduce runtime (splits, shuffle,
// combiners), the partitioned RDD runtime (narrow/wide dependencies) and the
// Pregel-style vertex runtime (program extraction, supersteps).

#include <gtest/gtest.h>

#include "src/engines/mapreduce_runtime.h"
#include "src/engines/rdd_runtime.h"
#include "src/engines/vertex_runtime.h"
#include "src/frontends/frontend.h"
#include "src/opt/idiom.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

namespace musketeer {
namespace {

TableMap PurchaseBase(int rows) {
  auto t = MakePurchases(1e6, rows, 8, 77);
  return {{"purchases", t}};
}

std::unique_ptr<Dag> Parse(const std::string& src,
                           FrontendLanguage lang = FrontendLanguage::kBeer) {
  auto dag = ParseWorkflow(lang, src);
  EXPECT_TRUE(dag.ok()) << dag.status();
  return std::move(dag).value();
}

// ---- MapReduce runtime -----------------------------------------------------

TEST(MapReduceRuntimeTest, GroupByMatchesReferenceWithAndWithoutCombiners) {
  auto dag = Parse(
      "stats = AGG SUM(amount) AS total, COUNT(uid) AS n, AVG(amount) AS avg_a,"
      " MIN(amount) AS lo, MAX(amount) AS hi FROM purchases GROUP BY uid;\n");
  TableMap base = PurchaseBase(3000);
  auto ref = EvaluateDagRelation(*dag, base, "stats");
  ASSERT_TRUE(ref.ok());

  for (bool combiners : {false, true}) {
    MapReduceOptions options;
    options.use_combiners = combiners;
    auto result = ExecuteViaMapReduce(*dag, base, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(Table::SameContent(*ref, *result->relations["stats"]))
        << "combiners=" << combiners;
    EXPECT_GT(result->stats.map_tasks, 1);
    EXPECT_GT(result->stats.reduce_tasks, 1);
  }
}

TEST(MapReduceRuntimeTest, CombinersShrinkTheShuffle) {
  auto dag = Parse("t = AGG SUM(amount) AS total FROM purchases GROUP BY region;\n");
  TableMap base = PurchaseBase(4000);

  MapReduceOptions no_comb;
  no_comb.use_combiners = false;
  auto plain = ExecuteViaMapReduce(*dag, base, no_comb);
  ASSERT_TRUE(plain.ok());

  MapReduceOptions with_comb;
  with_comb.use_combiners = true;
  auto combined = ExecuteViaMapReduce(*dag, base, with_comb);
  ASSERT_TRUE(combined.ok());

  // 4000 records reduce to (#mappers x #regions) partials.
  EXPECT_LT(combined->stats.shuffled_records, plain->stats.shuffled_records / 10);
  EXPECT_TRUE(Table::SameContent(*plain->relations["t"], *combined->relations["t"]));
}

TEST(MapReduceRuntimeTest, JoinCoPartitionsBothSides) {
  auto dag = Parse(
      "j = JOIN a, b ON a.k = b.k;\n"
      "counted = AGG COUNT(k) AS n FROM j;\n");
  Schema s({{"k", FieldType::kInt64}, {"v", FieldType::kInt64}});
  auto a = std::make_shared<Table>(s);
  auto b = std::make_shared<Table>(s);
  for (int64_t i = 0; i < 200; ++i) {
    a->AddRow({i % 23, i});
    b->AddRow({i % 17, i});
  }
  TableMap base{{"a", a}, {"b", b}};
  auto ref = EvaluateDagRelation(*dag, base, "j");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaMapReduce(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["j"]));
}

TEST(MapReduceRuntimeTest, StagesCountShuffles) {
  auto dag = Parse(
      "f = SELECT * FROM purchases WHERE region = 2;\n"
      "g = AGG SUM(amount) AS total FROM f GROUP BY uid;\n"
      "h = SELECT * FROM g WHERE total > 100;\n");
  auto result = ExecuteViaMapReduce(*dag, PurchaseBase(1000));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.stages, 3);  // two map-only + one shuffle stage
}

TEST(MapReduceRuntimeTest, WhileLoopsRunBodyPerIteration) {
  auto dag = Parse(R"(
    WHILE 4 LOOP x = seed UPDATE x2 {
      x2 = AGG SUM(v) AS v FROM x GROUP BY k;
    } YIELD x2 AS out;
  )");
  Schema s({{"k", FieldType::kInt64}, {"v", FieldType::kDouble}});
  auto seed = std::make_shared<Table>(s);
  for (int64_t i = 0; i < 64; ++i) {
    seed->AddRow({i % 4, 1.0});
  }
  TableMap base{{"seed", seed}};
  auto ref = EvaluateDagRelation(*dag, base, "out");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaMapReduce(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["out"]));
  EXPECT_GE(result->stats.stages, 4);
}

TEST(MapReduceRuntimeTest, GlobalAggregateGathersOnOneReducer) {
  auto dag = Parse("t = AGG SUM(amount) AS total FROM purchases;\n");
  TableMap base = PurchaseBase(500);
  auto ref = EvaluateDagRelation(*dag, base, "t");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaMapReduce(*dag, base);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["t"]));
}

TEST(MapReduceRuntimeTest, EmptyInputHandled) {
  auto dag = Parse("t = AGG COUNT(uid) AS n FROM purchases GROUP BY region;\n");
  TableMap base{{"purchases",
                 std::make_shared<Table>(Schema({{"uid", FieldType::kInt64},
                                                 {"region", FieldType::kInt64},
                                                 {"amount", FieldType::kDouble}}))}};
  auto result = ExecuteViaMapReduce(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->relations["t"]->num_rows(), 0u);
}

// ---- RDD runtime -----------------------------------------------------------

TEST(RddRuntimeTest, NarrowOpsAvoidShuffles) {
  auto dag = Parse(
      "f = SELECT * FROM purchases WHERE amount > 100;\n"
      "p = SELECT uid, amount FROM f;\n");
  auto result = ExecuteViaRdd(*dag, PurchaseBase(1000), {.num_partitions = 4});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.wide_stages, 0);
  EXPECT_EQ(result->stats.shuffled_records, 0);
  EXPECT_EQ(result->stats.narrow_tasks, 8);  // 2 ops x 4 partitions
}

TEST(RddRuntimeTest, WideOpsShuffle) {
  auto dag = Parse("g = AGG SUM(amount) AS total FROM purchases GROUP BY uid;\n");
  TableMap base = PurchaseBase(1000);
  auto ref = EvaluateDagRelation(*dag, base, "g");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaRdd(*dag, base, {.num_partitions = 4});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.wide_stages, 1);
  EXPECT_EQ(result->stats.shuffled_records, 1000);
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["g"]));
}

TEST(RddRuntimeTest, SetOperationsCoPartition) {
  auto dag = Parse(
      "i = INTERSECT a, b;\n"
      "d = DIFFERENCE a, b;\n"
      "u = UNION a, b;\n");
  Schema s({{"x", FieldType::kInt64}});
  auto a = std::make_shared<Table>(s);
  auto b = std::make_shared<Table>(s);
  for (int64_t i = 0; i < 100; ++i) {
    a->AddRow({i});
    if (i % 2 == 0) {
      b->AddRow({i});
    }
  }
  TableMap base{{"a", a}, {"b", b}};
  auto ref = EvaluateDag(*dag, base);
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaRdd(*dag, base, {.num_partitions = 3});
  ASSERT_TRUE(result.ok());
  for (const char* rel : {"i", "d", "u"}) {
    EXPECT_TRUE(Table::SameContent(*(*ref)[rel], *result->relations[rel])) << rel;
  }
}

TEST(RddRuntimeTest, SinglePartitionDegeneratesGracefully) {
  auto dag = Parse("g = AGG MAX(amount) AS hi FROM purchases GROUP BY region;\n");
  TableMap base = PurchaseBase(300);
  auto ref = EvaluateDagRelation(*dag, base, "g");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaRdd(*dag, base, {.num_partitions = 1});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["g"]));
}

// ---- Vertex runtime ----------------------------------------------------------

TEST(VertexRuntimeTest, PageRankMatchesDataflowInterpretation) {
  GraphDataset g = OrkutGraph();
  auto dag = Parse(PageRankGas(4), FrontendLanguage::kGas);
  TableMap base{{"vertices", g.vertices}, {"edges", g.edges}};
  auto ref = EvaluateDagRelation(*dag, base, "pagerank");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaVertexRuntime(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["pagerank"]));
  EXPECT_EQ(result->stats.supersteps, 4);
  EXPECT_GT(result->stats.messages_sent, 0);
}

TEST(VertexRuntimeTest, SsspSelfMessagesPreserveState) {
  GraphSpec spec;
  spec.name = "vr-sssp";
  spec.sample_vertices = 80;
  spec.nominal_vertices = 80;
  spec.seed = 3;
  spec.with_costs = true;
  spec.initial_value = 1e18;
  GraphDataset g = MakePowerLawGraph(spec);
  auto dag = Parse(SsspGas(6), FrontendLanguage::kGas);
  TableMap base{{"vertices", g.vertices}, {"edges", g.edges}};
  auto ref = EvaluateDagRelation(*dag, base, "sssp");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaVertexRuntime(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["sssp"]));
}

TEST(VertexRuntimeTest, BeerWrittenPageRankAlsoRuns) {
  // The runtime must accept the relationally-written loop, not just the GAS
  // front-end's lowering (idiom recognition is front-end agnostic, §4.3.1).
  GraphDataset g = LiveJournalGraph();
  auto dag = Parse(PageRankBeer(3));
  TableMap base{{"vertices", g.vertices}, {"edges", g.edges}};
  auto ref = EvaluateDagRelation(*dag, base, "pagerank");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaVertexRuntime(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["pagerank"]));
}

TEST(VertexRuntimeTest, RejectsNonIdiomLoops) {
  KmeansDataset data = MakeKmeans(1e6, 100, 3, 5);
  auto dag = Parse(KmeansBeer(2));
  TableMap base{{"points", data.points}, {"centers", data.centers}};
  auto result = ExecuteViaVertexRuntime(*dag, base);
  EXPECT_FALSE(result.ok());
}

TEST(VertexRuntimeTest, BatchOperatorsAroundTheLoopWork) {
  // The hybrid workflow: INTERSECT + degree derivation feed the loop.
  CommunityPair pair = MakeOverlappingCommunities();
  auto dag = Parse(CrossCommunityPageRankBeer(3));
  TableMap base{{"lj_edges", pair.a.edges}, {"web_edges", pair.b.edges}};
  auto ref = EvaluateDagRelation(*dag, base, "cc_pagerank");
  ASSERT_TRUE(ref.ok());
  auto result = ExecuteViaVertexRuntime(*dag, base);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Table::SameContent(*ref, *result->relations["cc_pagerank"]));
}

TEST(VertexRuntimeTest, IdiomRejectsKmeansDistanceJoin) {
  // Regression: the distance join in k-means reads loop state on both sides;
  // it must not be classified as vertex-centric (it broke the extractor).
  auto dag = Parse(KmeansBeer(2));
  int while_id = (*dag).ProducerOf("kmeans_centers");
  ASSERT_GE(while_id, 0);
  EXPECT_FALSE(IsGraphIdiom(*dag, while_id));
}

}  // namespace
}  // namespace musketeer
