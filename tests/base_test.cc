// Tests for the base utilities: Status/StatusOr, strings, JSON, RNG, logging.

#include "src/base/status.h"

#include <gtest/gtest.h>

#include <set>

#include "src/base/json.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/strings.h"

namespace musketeer {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad column");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(NotFoundError("x").code());
  codes.insert(AlreadyExistsError("x").code());
  codes.insert(FailedPreconditionError("x").code());
  codes.insert(UnimplementedError("x").code());
  codes.insert(InternalError("x").code());
  codes.insert(OutOfRangeError("x").code());
  EXPECT_EQ(codes.size(), 6u);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  MUSKETEER_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, StripAndCase) {
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_EQ(AsciiToUpper("MiXeD1"), "MIXED1");
  EXPECT_EQ(AsciiToLower("MiXeD1"), "mixed1");
  EXPECT_TRUE(StartsWith("musketeer", "musk"));
  EXPECT_TRUE(EndsWith("musketeer", "teer"));
}

TEST(StringsTest, StrictNumericParsing) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64(" -7 "), -7);
  EXPECT_FALSE(ParseInt64("42x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5e3"), 2500.0);
  EXPECT_FALSE(ParseDouble("2.5.3").has_value());
}

TEST(StringsTest, HumanFormatting) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(1.5 * 1024 * 1024 * 1024), "1.50 GB");
  EXPECT_EQ(HumanSeconds(12.34), "12.3s");
  EXPECT_EQ(HumanSeconds(151), "2m31s");
  EXPECT_EQ(HumanSeconds(7260), "2h01m");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundedAndRangeRespectLimits) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewedTowardSmallRanks) {
  Rng rng(13);
  int64_t low = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = rng.NextZipf(1000, 0.9);
    EXPECT_LT(v, 1000u);
    low += v < 100 ? 1 : 0;
  }
  // Under a uniform distribution 10% would land below rank 100; Zipf with
  // alpha=0.9 concentrates far more mass there.
  EXPECT_GT(low, kSamples / 4);
}

TEST(JsonTest, ParsesScalarsArraysObjects) {
  auto doc = ParseJson(
      R"({"a": 1.5, "b": [true, false, null, "x"], "neg": -2e3})");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->is_object());
  EXPECT_DOUBLE_EQ(doc->Find("a")->number_value, 1.5);
  const JsonValue* b = doc->Find("b");
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array.size(), 4u);
  EXPECT_TRUE(b->array[0].bool_value);
  EXPECT_FALSE(b->array[1].bool_value);
  EXPECT_TRUE(b->array[2].is_null());
  EXPECT_EQ(b->array[3].string_value, "x");
  EXPECT_DOUBLE_EQ(doc->Find("neg")->number_value, -2000.0);
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonTest, StringEscapesRoundTrip) {
  const std::string raw = "quote\" slash\\ tab\t newline\n unicodeé";
  auto doc = ParseJson(JsonQuote(raw));
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->string_value, raw);
  // \uXXXX escapes (including surrogate pairs) decode to UTF-8.
  auto esc = ParseJson(R"("café 😀")");
  ASSERT_TRUE(esc.ok()) << esc.status();
  EXPECT_EQ(esc->string_value, "caf\xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(JsonTest, DumpRoundTripsPreservingOrder) {
  const std::string text = R"({"z":1,"a":[2,3],"m":{"nested":"v"}})";
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Dump(), text);  // objects keep insertion order
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("1..2").ok());
}

TEST(LoggingTest, LevelFiltering) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  MLOG_DEBUG << "suppressed";  // must not crash
  MLOG_ERROR << "visible";
  SetLogLevel(old);
}

}  // namespace
}  // namespace musketeer
