// Sharded execution tests (PR 8). The contract under test: a workflow fanned
// out across M service shards by the ShardCoordinator produces BIT-identical
// outputs (Table::Identical, not just SameContent) to the unsharded
// Musketeer::Run — at every shard count, under locality or random placement,
// with a shard drained ahead of the run, and across a seeded mid-run shard
// death. Placement accounting (locality hit rate, cross-shard bytes) is
// asserted against the random control arm, mirroring bench_shard_scaling.

#include "src/service/shard_coordinator.h"

#include <gtest/gtest.h>

#include "src/core/musketeer.h"
#include "tests/workflow_setups.h"

namespace musketeer {
namespace {

RunOptions BaseOptions() {
  RunOptions options;
  options.cluster = Ec2Cluster(16);
  return options;
}

StatusOr<RunResult> RunUnsharded(const WfSetup& setup) {
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  Musketeer m(&dfs);
  return m.Run(setup.workflow, BaseOptions());
}

// One sharded run in a fresh cluster: its outputs plus the coordinator's
// accounting, harvested before the coordinator is torn down.
struct ShardedRun {
  StatusOr<RunResult> result = InternalError("not run");
  CoordinatorStats stats;
  std::vector<bool> alive;
};

ShardedRun RunSharded(const WfSetup& setup, int shards,
                      CoordinatorConfig config = {},
                      const std::vector<int>& drained = {}) {
  ShardedDfs dfs(shards);
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  ShardCoordinator coordinator(&dfs, config);
  for (int shard : drained) {
    coordinator.DrainShard(shard);
  }
  ShardedRun run;
  run.result = coordinator.Run(setup.workflow, BaseOptions());
  run.stats = coordinator.stats();
  for (int k = 0; k < shards; ++k) {
    run.alive.push_back(coordinator.IsShardAlive(k));
  }
  return run;
}

class ShardEquivalenceTest : public ::testing::TestWithParam<Wf> {};

// The headline guarantee: sharding is invisible in the bits. Also checks the
// dispatch accounting is whole (every dispatched job landed on some shard).
TEST_P(ShardEquivalenceTest, AnyShardCountMatchesUnshardedBitIdentical) {
  WfSetup setup = MakeSetup(GetParam());
  auto baseline = RunUnsharded(setup);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_EQ(baseline->outputs.count(setup.result_relation), 1u);
  const Table& expected = *baseline->outputs[setup.result_relation];

  for (int shards : {1, 2, 3}) {
    ShardedRun run = RunSharded(setup, shards);
    ASSERT_TRUE(run.result.ok())
        << "M=" << shards << ": " << run.result.status();
    ASSERT_EQ(run.result->outputs.count(setup.result_relation), 1u);
    EXPECT_TRUE(Table::Identical(
        expected, *run.result->outputs[setup.result_relation]))
        << WfName(GetParam()) << " diverged from the unsharded run at M="
        << shards;

    uint64_t landed = 0;
    for (uint64_t jobs : run.stats.jobs_per_shard) {
      landed += jobs;
    }
    EXPECT_EQ(landed, run.stats.jobs_dispatched);
    EXPECT_GE(run.stats.jobs_dispatched, run.result->plans.size());
    if (shards == 1) {
      // One shard owns everything: nothing can cross.
      EXPECT_EQ(run.stats.remote_fetches, 0u);
      EXPECT_DOUBLE_EQ(run.stats.remote_bytes_fetched, 0.0);
    }
  }
}

// Mid-run shard death (the seeded fault): the victim's compute leaves
// placement after `fault_after_dispatches`, its partition stays readable, and
// the output bits do not move.
TEST_P(ShardEquivalenceTest, SeededShardDeathStaysBitIdentical) {
  WfSetup setup = MakeSetup(GetParam());
  auto baseline = RunUnsharded(setup);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_EQ(baseline->outputs.count(setup.result_relation), 1u);

  CoordinatorConfig config;
  config.fault_shard = 0;
  config.fault_after_dispatches = 1;
  config.default_options.retry.max_attempts = 2;
  ShardedRun run = RunSharded(setup, /*shards=*/3, config);
  ASSERT_TRUE(run.result.ok()) << run.result.status();
  ASSERT_EQ(run.result->outputs.count(setup.result_relation), 1u);
  EXPECT_TRUE(
      Table::Identical(*baseline->outputs[setup.result_relation],
                       *run.result->outputs[setup.result_relation]))
      << WfName(GetParam()) << " diverged across a shard death";
  if (run.stats.jobs_dispatched > 1) {
    // The fault fired: shard 0 must be out of placement...
    EXPECT_FALSE(run.alive[0]);
    EXPECT_TRUE(run.alive[1]);
    EXPECT_TRUE(run.alive[2]);
    // ...and every post-fault job must have gone elsewhere (shard 0 can have
    // received at most the single pre-fault dispatch).
    EXPECT_LE(run.stats.jobs_per_shard[0], 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkflows, ShardEquivalenceTest,
                         ::testing::ValuesIn(kAllWorkflows),
                         [](const ::testing::TestParamInfo<Wf>& info) {
                           return WfName(info.param);
                         });

// A drained shard gets no jobs, yet its partition's relations stay readable
// (directory repair re-pins them) — so results still match the baseline.
TEST(ShardCoordinatorTest, DrainedShardGetsNoJobsAndLosesNoData) {
  WfSetup setup = MakeSetup(Wf::kTpchHive);
  auto baseline = RunUnsharded(setup);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  ShardedRun run =
      RunSharded(setup, /*shards=*/3, CoordinatorConfig{}, /*drained=*/{2});
  ASSERT_TRUE(run.result.ok()) << run.result.status();
  EXPECT_FALSE(run.alive[2]);
  EXPECT_EQ(run.stats.jobs_per_shard[2], 0u);
  EXPECT_GT(run.stats.jobs_dispatched, 0u);
  ASSERT_EQ(run.result->outputs.count(setup.result_relation), 1u);
  EXPECT_TRUE(
      Table::Identical(*baseline->outputs[setup.result_relation],
                       *run.result->outputs[setup.result_relation]));
}

TEST(ShardCoordinatorTest, DrainingEveryShardFailsTheRun) {
  WfSetup setup = MakeSetup(Wf::kSimpleJoin);
  ShardedRun run = RunSharded(setup, /*shards=*/2, CoordinatorConfig{},
                              /*drained=*/{0, 1});
  EXPECT_FALSE(run.result.ok());
}

// The placement argument itself, over the full evaluation suite at M=3:
// locality placement achieves the byte-optimal shard for >= 80% of jobs and
// moves strictly fewer cross-shard bytes than the seeded-random control arm —
// the same criterion bench_shard_scaling enforces. Random placement must
// still be bit-identical (placement may never change semantics).
TEST(ShardCoordinatorTest, LocalityBeatsRandomPlacementAcrossTheSuite) {
  uint64_t locality_placements = 0;
  uint64_t locality_hits = 0;
  Bytes locality_cross = 0;
  Bytes random_cross = 0;

  for (Wf wf : kAllWorkflows) {
    WfSetup setup = MakeSetup(wf);

    CoordinatorConfig locality;
    locality.placement = PlacementPolicy::kLocality;
    ShardedRun local_run = RunSharded(setup, /*shards=*/3, locality);
    ASSERT_TRUE(local_run.result.ok())
        << WfName(wf) << ": " << local_run.result.status();

    CoordinatorConfig random;
    random.placement = PlacementPolicy::kRandom;
    random.placement_seed = 42;
    ShardedRun random_run = RunSharded(setup, /*shards=*/3, random);
    ASSERT_TRUE(random_run.result.ok())
        << WfName(wf) << ": " << random_run.result.status();

    ASSERT_EQ(local_run.result->outputs.count(setup.result_relation), 1u);
    ASSERT_EQ(random_run.result->outputs.count(setup.result_relation), 1u);
    EXPECT_TRUE(Table::Identical(
        *local_run.result->outputs[setup.result_relation],
        *random_run.result->outputs[setup.result_relation]))
        << WfName(wf) << " bits depend on the placement policy";

    locality_placements += local_run.stats.placements;
    locality_hits += local_run.stats.locality_hits;
    locality_cross += local_run.stats.placed_cross_shard_bytes;
    random_cross += random_run.stats.placed_cross_shard_bytes;
  }

  ASSERT_GT(locality_placements, 0u);
  const double hit_rate = static_cast<double>(locality_hits) /
                          static_cast<double>(locality_placements);
  EXPECT_GE(hit_rate, 0.8) << locality_hits << "/" << locality_placements;
  EXPECT_LT(locality_cross, random_cross);
}

// The fetch accounting surfaced through CoordinatorStats mirrors the DFS:
// cross-shard reads show up as remote fetches with a measured byte rate.
TEST(ShardCoordinatorTest, StatsMirrorDfsFetchAccounting) {
  WfSetup setup = MakeSetup(Wf::kTpchHive);
  ShardedDfs dfs(3);
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  ShardCoordinator coordinator(&dfs);
  auto result = coordinator.Run(setup.workflow, BaseOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  CoordinatorStats stats = coordinator.stats();
  EXPECT_EQ(stats.remote_fetches, dfs.remote_fetches());
  EXPECT_DOUBLE_EQ(stats.remote_bytes_fetched, dfs.remote_bytes_fetched());
  EXPECT_DOUBLE_EQ(stats.measured_remote_mbps, dfs.measured_remote_mbps());
  if (stats.remote_fetches > 0) {
    EXPECT_GT(stats.remote_bytes_fetched, 0.0);
    EXPECT_GT(stats.measured_remote_mbps, 0.0);
  }
}

}  // namespace
}  // namespace musketeer
