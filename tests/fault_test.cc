// Fault-tolerant execution tests (DESIGN.md "Fault tolerance").
//
// Covers the ExecutionContext API end to end: the seeded deterministic
// FaultInjector, RetryPolicy backoff, the retry/failover dispatcher in
// Musketeer::Execute, cooperative cancellation and deadlines (direct runs
// and through the workflow service), and the headline guarantee — a seeded
// fault sweep over all nine evaluation workflows completes with outputs
// BIT-identical (Table::Identical) to the fault-free run, and the same seed
// reproduces the same per-job fault/attempt sequence across runs.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/core/musketeer.h"
#include "src/service/service.h"
#include "tests/workflow_setups.h"

namespace musketeer {
namespace {

using std::chrono::milliseconds;

RunOptions BaseOptions() {
  RunOptions options;
  options.cluster = Ec2Cluster(16);
  return options;
}

// Seeded injection at the acceptance settings: --fault-rate=0.3
// --fault-seed=42 --max-retries=3 (4 attempts per engine), failover on.
// Backoff is shrunk so retries do not dominate test wall-clock.
RunOptions FaultyOptions() {
  RunOptions options = BaseOptions();
  options.fault_rate = 0.3;
  options.fault_seed = 42;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = milliseconds(1);
  options.retry.max_backoff = milliseconds(4);
  return options;
}

StatusOr<RunResult> RunSetup(const WfSetup& setup, const RunOptions& options) {
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  Musketeer m(&dfs);
  return m.Run(setup.workflow, options);
}

std::string Sig(const JobPlan& plan) {
  return plan.name + "@" + EngineKindName(plan.engine);
}

void ExpectSameRecovery(const std::vector<JobRecovery>& a,
                        const std::vector<JobRecovery>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job, b[i].job);
    EXPECT_EQ(a[i].planned_engine, b[i].planned_engine);
    EXPECT_EQ(a[i].final_engine, b[i].final_engine);
    EXPECT_EQ(a[i].attempts, b[i].attempts);
    EXPECT_EQ(a[i].failovers, b[i].failovers);
    EXPECT_EQ(a[i].faults_injected, b[i].faults_injected);
    ASSERT_EQ(a[i].attempt_log.size(), b[i].attempt_log.size());
    for (size_t k = 0; k < a[i].attempt_log.size(); ++k) {
      EXPECT_EQ(a[i].attempt_log[k].attempt, b[i].attempt_log[k].attempt);
      EXPECT_EQ(a[i].attempt_log[k].engine, b[i].attempt_log[k].engine);
      EXPECT_EQ(a[i].attempt_log[k].outcome, b[i].attempt_log[k].outcome);
    }
  }
}

// ---------------------------------------------------------------------------
// FaultInjector: a pure function of (seed, workflow, job signature, attempt).

TEST(FaultInjectorTest, DecisionIsPureFunctionOfSeedAndKey) {
  FaultInjector a(0.3, 42);
  FaultInjector b(0.3, 42);
  int fails = 0;
  for (int attempt = 1; attempt <= 2000; ++attempt) {
    bool fa = a.ShouldFail("wf", "job@Spark", attempt);
    EXPECT_EQ(fa, b.ShouldFail("wf", "job@Spark", attempt));
    fails += fa ? 1 : 0;
  }
  // The first draw of a SplitMix64 stream per key: the empirical rate over
  // 2000 keys must track the configured 0.3.
  EXPECT_GT(fails, 2000 * 0.2);
  EXPECT_LT(fails, 2000 * 0.4);
}

TEST(FaultInjectorTest, SeedAndKeyChangeTheSequence) {
  FaultInjector a(0.5, 1);
  FaultInjector b(0.5, 2);
  int diff_seed = 0;
  int diff_key = 0;
  for (int attempt = 1; attempt <= 256; ++attempt) {
    diff_seed += a.ShouldFail("wf", "j@Spark", attempt) !=
                         b.ShouldFail("wf", "j@Spark", attempt)
                     ? 1
                     : 0;
    diff_key += a.ShouldFail("wf", "j@Spark", attempt) !=
                        a.ShouldFail("wf", "j@Hadoop", attempt)
                    ? 1
                    : 0;
  }
  EXPECT_GT(diff_seed, 0);
  EXPECT_GT(diff_key, 0);
}

TEST(FaultInjectorTest, RateEndpoints) {
  FaultInjector off;  // default rate 0
  EXPECT_FALSE(off.enabled());
  FaultInjector never(0.0, 99);
  FaultInjector always(1.0, 99);
  EXPECT_TRUE(always.enabled());
  for (int attempt = 1; attempt <= 64; ++attempt) {
    EXPECT_FALSE(never.ShouldFail("wf", "j@Naiad", attempt));
    EXPECT_TRUE(always.ShouldFail("wf", "j@Naiad", attempt));
  }
}

// ---------------------------------------------------------------------------
// RetryPolicy: exponential backoff, capped, deterministically jittered.

TEST(RetryPolicyTest, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(5);
  policy.multiplier = 2.0;
  policy.max_backoff = milliseconds(250);
  policy.jitter = 0.0;  // exact values
  EXPECT_EQ(policy.BackoffFor(1, "j").count(), 0);  // no backoff before try 1
  EXPECT_EQ(policy.BackoffFor(2, "j").count(), 5);
  EXPECT_EQ(policy.BackoffFor(3, "j").count(), 10);
  EXPECT_EQ(policy.BackoffFor(4, "j").count(), 20);
  EXPECT_EQ(policy.BackoffFor(12, "j").count(), 250);  // capped
}

TEST(RetryPolicyTest, JitterIsBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(100);
  policy.max_backoff = milliseconds(1000);
  policy.jitter = 0.5;
  policy.backoff_seed = 42;
  for (int attempt = 2; attempt <= 5; ++attempt) {
    auto first = policy.BackoffFor(attempt, "job@Spark");
    EXPECT_EQ(first.count(), policy.BackoffFor(attempt, "job@Spark").count());
    double nominal = 100.0 * (1 << (attempt - 2));
    EXPECT_GE(first.count(), static_cast<int64_t>(nominal * 0.5) - 1);
    EXPECT_LE(first.count(), static_cast<int64_t>(nominal));
  }
  // A different key draws different jitter somewhere in the range.
  bool any_diff = false;
  for (int attempt = 2; attempt <= 8; ++attempt) {
    any_diff |= policy.BackoffFor(attempt, "a@Spark") !=
                policy.BackoffFor(attempt, "b@Spark");
  }
  EXPECT_TRUE(any_diff);
}

TEST(RetryPolicyTest, RetryableCodes) {
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(StatusCode::kAborted));
  EXPECT_TRUE(IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsRetryable(StatusCode::kCancelled));
  EXPECT_FALSE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryable(StatusCode::kOk));
}

// ---------------------------------------------------------------------------
// The headline sweep: every evaluation workflow survives seeded injection at
// rate 0.3 and produces outputs bit-identical to the fault-free run; the
// same seed reproduces the exact per-job fault/attempt sequence.

class FaultSweepTest : public ::testing::TestWithParam<Wf> {};

TEST_P(FaultSweepTest, SeededSweepBitIdenticalToFaultFree) {
  WfSetup setup = MakeSetup(GetParam());

  auto reference = RunSetup(setup, BaseOptions());
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_EQ(reference->outputs.count(setup.result_relation), 1u);

  auto faulted = RunSetup(setup, FaultyOptions());
  ASSERT_TRUE(faulted.ok()) << faulted.status();
  ASSERT_EQ(faulted->outputs.count(setup.result_relation), 1u);
  for (const auto& [name, table] : reference->outputs) {
    ASSERT_EQ(faulted->outputs.count(name), 1u);
    EXPECT_TRUE(Table::Identical(*table, *faulted->outputs[name]))
        << WfName(GetParam()) << " output '" << name
        << "' diverged under fault injection";
  }

  // Recovery accounting is internally consistent.
  ASSERT_EQ(faulted->recovery.size(), faulted->plans.size());
  int retries = 0;
  int failovers = 0;
  for (const JobRecovery& rec : faulted->recovery) {
    EXPECT_GE(rec.attempts, 1);
    EXPECT_EQ(rec.attempt_log.size(), static_cast<size_t>(rec.attempts));
    EXPECT_EQ(rec.attempt_log.back().outcome, StatusCode::kOk);
    retries += rec.attempts - 1;
    failovers += rec.failovers;
  }
  EXPECT_EQ(faulted->total_retries, retries);
  EXPECT_EQ(faulted->total_failovers, failovers);

  // Same seed, second run: the exact same fault/attempt sequence.
  auto replay = RunSetup(setup, FaultyOptions());
  ASSERT_TRUE(replay.ok()) << replay.status();
  ExpectSameRecovery(faulted->recovery, replay->recovery);
  EXPECT_EQ(faulted->total_faults_injected, replay->total_faults_injected);
}

INSTANTIATE_TEST_SUITE_P(AllWorkflows, FaultSweepTest,
                         ::testing::ValuesIn(kAllWorkflows),
                         [](const ::testing::TestParamInfo<Wf>& info) {
                           return WfName(info.param);
                         });

// The rate-0.3/seed-42 sweep is not vacuous: mirroring the injector over the
// planned jobs' first attempts must predict at least one fault, and running
// the first such workflow end-to-end must record injected faults + retries
// while still matching the fault-free output.
TEST(FaultRecoveryTest, SeededSweepActuallyInjects) {
  FaultInjector injector(0.3, 42);
  bool ran_one = false;
  int predicted_first_attempt_faults = 0;
  for (Wf wf : kAllWorkflows) {
    WfSetup setup = MakeSetup(wf);
    Dfs dfs;
    for (const auto& [name, table] : setup.inputs) {
      dfs.Put(name, table);
    }
    Musketeer m(&dfs);
    auto plan = m.Plan(setup.workflow, BaseOptions());
    ASSERT_TRUE(plan.ok()) << plan.status();
    int faults = 0;
    for (const JobPlan& job : plan->plans) {
      faults += injector.ShouldFail(setup.workflow.id, Sig(job), 1) ? 1 : 0;
    }
    predicted_first_attempt_faults += faults;
    if (faults > 0 && !ran_one) {
      ran_one = true;
      auto faulted = RunSetup(setup, FaultyOptions());
      ASSERT_TRUE(faulted.ok()) << faulted.status();
      EXPECT_GE(faulted->total_faults_injected, faults);
      EXPECT_GE(faulted->total_retries, 1);
    }
  }
  EXPECT_GT(predicted_first_attempt_faults, 0)
      << "seed 42 at rate 0.3 injects no first-attempt faults; pick a "
         "different acceptance seed";
  EXPECT_TRUE(ran_one);
}

// Retry exhaustion with a single allowed engine: the run fails kUnavailable
// and the error carries full provenance (workflow/job@engine, attempt number,
// injected-fault origin, and the failover-exhausted annotation).
TEST(FaultRecoveryTest, ExhaustionReportsProvenance) {
  WfSetup setup = MakeSetup(Wf::kSimpleJoin);
  RunOptions options = BaseOptions();
  options.engines = {EngineKind::kSpark};
  options.fault_rate = 1.0;  // every attempt fails
  options.fault_seed = 7;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = milliseconds(1);
  options.retry.max_backoff = milliseconds(2);

  auto result = RunSetup(setup, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  const std::string message = result.status().message();
  EXPECT_NE(message.find("injected fault"), std::string::npos) << message;
  EXPECT_NE(message.find(setup.workflow.id + "/"), std::string::npos) << message;
  EXPECT_NE(message.find("@Spark"), std::string::npos) << message;
  EXPECT_NE(message.find("attempt 3"), std::string::npos) << message;
  EXPECT_NE(message.find("failover exhausted"), std::string::npos) << message;

  // With failover disabled the annotation names the exhausted engine instead.
  options.retry.enable_failover = false;
  auto no_failover = RunSetup(setup, options);
  ASSERT_FALSE(no_failover.ok());
  EXPECT_EQ(no_failover.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(no_failover.status().message().find("retries exhausted on Spark"),
            std::string::npos)
      << no_failover.status().message();
}

// Deterministic cross-engine failover: search (by mirroring the injector)
// for a seed that fails the first job's only attempt on its planned engine
// and succeeds on the alternate, then check the dispatcher actually switches
// engines and still reproduces the fault-free bits.
TEST(FaultRecoveryTest, FailoverSwitchesEngineAndPreservesBits) {
  WfSetup setup = MakeSetup(Wf::kTopShopper);
  RunOptions options = BaseOptions();
  options.engines = {EngineKind::kSpark, EngineKind::kHadoop};
  options.retry.max_attempts = 1;  // exhaust an engine in one attempt

  auto reference = RunSetup(setup, options);
  ASSERT_TRUE(reference.ok()) << reference.status();

  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  Musketeer m(&dfs);
  auto plan = m.Plan(setup.workflow, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_GE(plan->plans.size(), 1u);
  const JobPlan& first = plan->plans[0];
  ASSERT_FALSE(first.outputs.empty());
  const EngineKind planned = first.engine;
  const EngineKind alternate = planned == EngineKind::kSpark
                                   ? EngineKind::kHadoop
                                   : EngineKind::kSpark;
  // Failover regenerates the plan, so the signature uses the alternate
  // backend's naming ("<Engine>:<first output>").
  const std::string alt_sig = std::string(EngineKindName(alternate)) + ":" +
                              first.outputs[0] + "@" +
                              EngineKindName(alternate);

  const double rate = 0.5;
  uint64_t seed = 0;
  for (uint64_t candidate = 1; candidate <= 100000; ++candidate) {
    FaultInjector injector(rate, candidate);
    if (!injector.ShouldFail(setup.workflow.id, Sig(first), 1)) {
      continue;  // attempt 1 on the planned engine must fail
    }
    if (injector.ShouldFail(setup.workflow.id, alt_sig, 2)) {
      continue;  // attempt 2 on the alternate engine must succeed
    }
    bool others_clean = true;
    for (size_t i = 1; i < plan->plans.size() && others_clean; ++i) {
      others_clean = !injector.ShouldFail(setup.workflow.id,
                                          Sig(plan->plans[i]), 1);
    }
    if (others_clean) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed forces exactly one failover";

  options.fault_rate = rate;
  options.fault_seed = seed;
  auto failed_over = RunSetup(setup, options);
  ASSERT_TRUE(failed_over.ok()) << failed_over.status();
  EXPECT_EQ(failed_over->total_failovers, 1);
  ASSERT_GE(failed_over->recovery.size(), 1u);
  const JobRecovery& rec = failed_over->recovery[0];
  EXPECT_EQ(rec.planned_engine, planned);
  EXPECT_EQ(rec.final_engine, alternate);
  ASSERT_EQ(rec.attempt_log.size(), 2u);
  EXPECT_EQ(rec.attempt_log[0].engine, planned);
  EXPECT_EQ(rec.attempt_log[0].outcome, StatusCode::kUnavailable);
  EXPECT_EQ(rec.attempt_log[1].engine, alternate);
  EXPECT_EQ(rec.attempt_log[1].outcome, StatusCode::kOk);
  // The failed-over plan is what Execute reports for the job.
  EXPECT_EQ(failed_over->plans[0].engine, alternate);

  for (const auto& [name, table] : reference->outputs) {
    ASSERT_EQ(failed_over->outputs.count(name), 1u);
    EXPECT_TRUE(Table::Identical(*table, *failed_over->outputs[name]))
        << "failover to " << EngineKindName(alternate)
        << " changed the bits of '" << name << "'";
  }
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines, direct Run() path.

TEST(CancelDeadlineTest, PreCancelledRunFailsCancelled) {
  WfSetup setup = MakeSetup(Wf::kSimpleJoin);
  RunOptions options = BaseOptions();
  options.cancel = CancelToken::Make();
  options.cancel.RequestCancel();
  auto result = RunSetup(setup, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(CancelDeadlineTest, ExpiredDeadlineFailsDeadlineExceeded) {
  WfSetup setup = MakeSetup(Wf::kSimpleJoin);
  RunOptions options = BaseOptions();
  options.absolute_deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  auto result = RunSetup(setup, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines through the workflow service.

TEST(ServiceCancelTest, CancelQueuedSettlesCancelledAtPickup) {
  WfSetup setup = MakeSetup(Wf::kTopShopper);
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  ServiceConfig config;
  config.num_workers = 1;
  config.manual_start = true;  // queue first, drain later
  config.default_options = BaseOptions();
  WorkflowService service(&dfs, config);

  WorkflowHandle handle = service.Submit(setup.workflow);
  ASSERT_EQ(handle->state(), WorkflowState::kQueued);
  handle->Cancel();
  service.Start();
  handle->Wait();
  EXPECT_EQ(handle->state(), WorkflowState::kCancelled);
  EXPECT_TRUE(handle->terminal());
  EXPECT_FALSE(handle->result().ok());
  EXPECT_EQ(handle->result().status().code(), StatusCode::kCancelled);
  EXPECT_NE(handle->result().status().message().find("while queued"),
            std::string::npos);
  service.Drain();
  EXPECT_EQ(service.stats().cancelled, 1u);
  EXPECT_EQ(std::string(WorkflowStateName(WorkflowState::kCancelled)),
            "CANCELLED");
}

TEST(ServiceCancelTest, CancelRunningUnwindsAtCheckpoint) {
  WfSetup setup = MakeSetup(Wf::kTopShopper);
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  ServiceConfig config;
  config.num_workers = 1;
  config.default_options = BaseOptions();
  // A long simulated cluster round-trip per job gives the cancel a wide,
  // deterministic window while the workflow is RUNNING.
  config.dispatch_latency = std::chrono::milliseconds(500);
  WorkflowService service(&dfs, config);

  WorkflowHandle handle = service.Submit(setup.workflow);
  ASSERT_NE(handle->state(), WorkflowState::kRejected);
  // Wait for pickup; the worker then sits in the dispatch-latency sleep.
  auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (handle->state() == WorkflowState::kQueued &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(handle->state(), WorkflowState::kQueued) << "worker never started";
  handle->Cancel();
  handle->Wait();
  EXPECT_EQ(handle->state(), WorkflowState::kCancelled);
  EXPECT_EQ(handle->result().status().code(), StatusCode::kCancelled);
  service.Drain();
  EXPECT_EQ(service.stats().cancelled, 1u);
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST(ServiceCancelTest, QueuedDeadlineExpiryFailsDeadlineExceeded) {
  WfSetup setup = MakeSetup(Wf::kTopShopper);
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  ServiceConfig config;
  config.num_workers = 1;
  config.manual_start = true;
  config.default_options = BaseOptions();
  WorkflowService service(&dfs, config);

  RunOptions options = config.default_options;
  options.deadline = std::chrono::milliseconds(1);  // pinned at Enqueue
  WorkflowHandle handle = service.Submit(setup.workflow, options);
  ASSERT_EQ(handle->state(), WorkflowState::kQueued);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.Start();
  handle->Wait();
  EXPECT_EQ(handle->state(), WorkflowState::kFailed);
  EXPECT_EQ(handle->result().status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(handle->result().status().message().find("while queued"),
            std::string::npos);
  service.Drain();
  EXPECT_EQ(service.stats().failed, 1u);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan gate in tools/check.sh runs *Concurrent*:*Cancel*):
// many faulted workflows recover in parallel against one shared DFS.

TEST(ConcurrentFaultTest, ConcurrentFaultedWorkflowsAllRecover) {
  // Workflows with pairwise-disjoint input relation names, so they can share
  // one DFS (Sssp is excluded: it reuses PageRank's vertices/edges names
  // with different data).
  const Wf kDisjoint[] = {Wf::kTopShopper, Wf::kTpchHive,  Wf::kNetflix,
                          Wf::kSimpleJoin, Wf::kPageRank,  Wf::kKmeans,
                          Wf::kCrossCommunity};
  Dfs dfs;
  std::vector<WfSetup> setups;
  for (Wf wf : kDisjoint) {
    setups.push_back(MakeSetup(wf));
    for (const auto& [name, table] : setups.back().inputs) {
      dfs.Put(name, table);
    }
  }

  ServiceConfig config;
  config.num_workers = 4;
  config.default_options = FaultyOptions();
  WorkflowService service(&dfs, config);

  // Two rounds: the second hits the plan cache, exercising concurrent
  // execution of one shared immutable plan under injection.
  std::vector<WorkflowHandle> handles;
  for (int round = 0; round < 2; ++round) {
    for (const WfSetup& setup : setups) {
      handles.push_back(service.SubmitBlocking(setup.workflow));
    }
  }
  service.Drain();
  for (const WorkflowHandle& handle : handles) {
    EXPECT_EQ(handle->state(), WorkflowState::kDone)
        << handle->spec().id << ": " << handle->result().status();
    EXPECT_TRUE(handle->result().ok());
  }
  EXPECT_EQ(service.stats().completed, handles.size());
  EXPECT_EQ(service.stats().failed, 0u);
  EXPECT_EQ(service.stats().cancelled, 0u);
}

// Concurrent cancellation storm: half the submissions are cancelled while
// queued or running; every ticket still settles in a terminal state and the
// service accounts all of them.
TEST(ConcurrentFaultTest, ConcurrentCancellationSettlesEveryTicket) {
  WfSetup setup = MakeSetup(Wf::kTopShopper);
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  ServiceConfig config;
  config.num_workers = 2;
  config.default_options = BaseOptions();
  config.dispatch_latency = std::chrono::milliseconds(30);
  WorkflowService service(&dfs, config);

  constexpr int kSubmissions = 12;
  std::vector<WorkflowHandle> handles;
  for (int i = 0; i < kSubmissions; ++i) {
    handles.push_back(service.SubmitBlocking(setup.workflow));
    if (i % 2 == 1) {
      handles.back()->Cancel();
    }
  }
  service.Drain();
  uint64_t done = 0;
  uint64_t cancelled = 0;
  for (const WorkflowHandle& handle : handles) {
    ASSERT_TRUE(handle->terminal());
    if (handle->state() == WorkflowState::kCancelled) {
      EXPECT_EQ(handle->result().status().code(), StatusCode::kCancelled);
      ++cancelled;
    } else {
      ASSERT_EQ(handle->state(), WorkflowState::kDone)
          << handle->result().status();
      ++done;
    }
  }
  EXPECT_EQ(done + cancelled, static_cast<uint64_t>(kSubmissions));
  // Every odd submission was cancelled right after it was accepted; with a
  // 30 ms dispatch round-trip at least some of those must settle CANCELLED
  // (a cancel can lose the race only if the run already finished).
  EXPECT_GE(cancelled, 1u);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, done);
  EXPECT_EQ(stats.cancelled, cancelled);
}

}  // namespace
}  // namespace musketeer
