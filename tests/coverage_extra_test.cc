// Additional coverage: optimizer dead-operator elimination, per-engine code
// generation output, CSV file round-trips, and DAG DOT export of loops.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/backends/backend.h"
#include "src/frontends/frontend.h"
#include "src/opt/passes.h"
#include "src/relational/csv.h"

namespace musketeer {
namespace {

TEST(DeadEliminationTest, UnconsumedOperatorsSurviveOnlyIfWorkflowOutputs) {
  // Both `wanted` and `also_wanted` are sinks (workflow outputs) — nothing
  // may be removed even though neither is consumed.
  const char* kSource = R"(
    wanted = SELECT * FROM rel WHERE v > 1;
    also_wanted = DISTINCT rel;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok());
  SchemaMap base{{"rel", Schema({{"v", FieldType::kInt64}})}};
  OptimizeStats stats;
  auto optimized = OptimizeDag(**dag, base, {}, &stats);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  EXPECT_EQ(stats.dead_removed, 0);
  EXPECT_EQ((*optimized)->num_nodes(), (*dag)->num_nodes());
}

TEST(CodegenCoverageTest, EveryEngineEmitsItsOwnStyle) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer,
                           "out = AGG SUM(v) AS s FROM rel GROUP BY k;\n");
  ASSERT_TRUE(dag.ok());
  SchemaMap base{
      {"rel", Schema({{"k", FieldType::kInt64}, {"v", FieldType::kDouble}})}};
  std::vector<int> ops;
  for (const auto& n : (*dag)->nodes()) {
    if (n.kind != OpKind::kInput) {
      ops.push_back(n.id);
    }
  }
  struct Expectation {
    EngineKind engine;
    const char* marker;
  };
  const Expectation kExpectations[] = {
      {EngineKind::kHadoop, "Java"},   {EngineKind::kSpark, "Scala"},
      {EngineKind::kNaiad, "C#"},      {EngineKind::kMetis, "Metis"},
      {EngineKind::kSerialC, "serial C"},
  };
  for (const Expectation& e : kExpectations) {
    auto plan = BackendFor(e.engine).GeneratePlan(**dag, ops, base, {});
    ASSERT_TRUE(plan.ok()) << EngineKindName(e.engine) << ": " << plan.status();
    EXPECT_NE(plan->generated_code.find(e.marker), std::string::npos)
        << EngineKindName(e.engine) << " code:\n" << plan->generated_code;
    EXPECT_NE(plan->generated_code.find("write("), std::string::npos);
    EXPECT_NE(plan->generated_code.find("groupBy"), std::string::npos);
  }
}

TEST(CodegenCoverageTest, GraphEnginesEmitVertexPrograms) {
  auto dag = ParseWorkflow(FrontendLanguage::kGas, R"(
    GATHER = { SUM (vertex_value) }
    APPLY = { MUL [vertex_value, 0.85] SUM [vertex_value, 0.15] }
    SCATTER = { DIV [vertex_value, vertex_degree] }
    ITERATION_STOP = (iteration < 2)
  )");
  ASSERT_TRUE(dag.ok());
  SchemaMap base{
      {"vertices", Schema({{"id", FieldType::kInt64},
                           {"vertex_value", FieldType::kDouble},
                           {"vertex_degree", FieldType::kInt64}})},
      {"edges",
       Schema({{"src", FieldType::kInt64}, {"dst", FieldType::kInt64}})}};
  int while_id = (*dag)->ProducerOf("gas_result");
  for (EngineKind engine : {EngineKind::kPowerGraph, EngineKind::kGraphChi}) {
    auto plan = BackendFor(engine).GeneratePlan(**dag, {while_id}, base, {});
    ASSERT_TRUE(plan.ok()) << EngineKindName(engine);
    EXPECT_NE(plan->generated_code.find("vertex"), std::string::npos);
    EXPECT_NE(plan->generated_code.find("iterate(2)"), std::string::npos);
    EXPECT_TRUE(plan->graph_path);
  }
}

TEST(CsvFileTest, SaveAndLoadRoundTrip) {
  Schema schema({{"id", FieldType::kInt64},
                 {"name", FieldType::kString},
                 {"score", FieldType::kDouble}});
  Table t(schema);
  t.AddRow({int64_t{1}, std::string("ada"), 3.5});
  t.AddRow({int64_t{2}, std::string("bob"), -1.25});

  std::string path =
      (std::filesystem::temp_directory_path() / "musketeer_csv_test.csv").string();
  ASSERT_TRUE(SaveCsvFile(t, path).ok());
  auto loaded = LoadCsvFile(path, schema);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(Table::SameContent(t, *loaded));
  std::remove(path.c_str());

  EXPECT_FALSE(LoadCsvFile("/nonexistent/nowhere.csv", schema).ok());
}

TEST(DotExportTest, WhileLoopsRenderAsNodes) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, R"(
    WHILE 3 LOOP x = seeds UPDATE x2 {
      x2 = DISTINCT x;
    } YIELD x2 AS out;
  )");
  ASSERT_TRUE(dag.ok());
  std::string dot = (*dag)->ToDot();
  EXPECT_NE(dot.find("WHILE"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(FrontendErrorTest, HiveAndLindiAndGasRejectMalformedInput) {
  // Hive: missing AS name.
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kHive,
                             "SELECT a FROM t;")
                   .ok());
  // Hive: dangling JOIN clause.
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kHive, "a JOIN b AS c;").ok());
  // Lindi: unknown method.
  EXPECT_FALSE(
      ParseWorkflow(FrontendLanguage::kLindi, "x = t.Frobnicate();").ok());
  // Lindi: missing semicolon.
  EXPECT_FALSE(
      ParseWorkflow(FrontendLanguage::kLindi, "x = t.Distinct()").ok());
  // GAS: bad iteration bound.
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kGas, R"(
    GATHER = { SUM (vertex_value) }
    APPLY = { }
    SCATTER = { DIV [vertex_value, vertex_degree] }
    ITERATION_STOP = (iteration < 0)
  )")
                   .ok());
  // GAS: unknown section.
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kGas, "SHUFFLE = { }").ok());
}

TEST(FrontendErrorTest, BeerRejectsDoubleDefinitionAndBadWhile) {
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kBeer,
                             "a = DISTINCT x;\na = DISTINCT y;\n")
                   .ok());
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kBeer,
                             "WHILE 0 LOOP a = b UPDATE a2 { a2 = DISTINCT a; } "
                             "YIELD a2 AS out;")
                   .ok());
  EXPECT_FALSE(ParseWorkflow(FrontendLanguage::kBeer,
                             "WHILE 2 LOOP a = b UPDATE a2 { a2 = DISTINCT a; "
                             "YIELD a2 AS out;")
                   .ok());
}

}  // namespace
}  // namespace musketeer
