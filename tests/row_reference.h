// Row-of-variants reference implementation of the relational kernels and the
// DAG interpreter, preserved from the pre-columnar data plane (PR 2's
// src/relational/ops.cc + src/ir/eval.cc).
//
// The kernels here materialize each input Table into std::vector<Row> and run
// the original row-at-a-time algorithms with the exact same morsel chunking
// and merge trees as the columnar kernels. The equivalence sweep in
// engine_equivalence_test.cc asserts Table::Identical between this reference
// and the columnar plane for every workflow — bit-identical output, including
// floating-point aggregation, is the migration contract of the columnar
// refactor. bench_columnar_ops.cc reuses the kernels as the row baseline.

#ifndef MUSKETEER_TESTS_ROW_REFERENCE_H_
#define MUSKETEER_TESTS_ROW_REFERENCE_H_

#include <string>
#include <vector>

#include "src/ir/eval.h"
#include "src/relational/ops.h"

namespace musketeer {
namespace rowref {

// --- Row-at-a-time kernels (seed semantics) ----------------------------

Table SelectRows(const Table& in, const RowPredicate& pred);
StatusOr<Table> ProjectColumns(const Table& in, const std::vector<int>& columns);
Table MapRows(const Table& in, const Schema& out_schema,
              const std::vector<RowProjector>& projectors);
StatusOr<Table> HashJoin(const Table& left, const Table& right, int lkey,
                         int rkey);
Table CrossJoin(const Table& left, const Table& right);
StatusOr<Table> UnionAll(const Table& a, const Table& b);
StatusOr<Table> Intersect(const Table& a, const Table& b);
StatusOr<Table> Difference(const Table& a, const Table& b);
Table Distinct(const Table& in);
StatusOr<Table> GroupByAgg(const Table& in,
                           const std::vector<int>& group_columns,
                           const std::vector<AggSpec>& aggs);
StatusOr<Table> ExtremeRow(const Table& in, int column, bool take_max);
Table SortBy(const Table& in, const std::vector<int>& columns);
Table TopNBy(const Table& in, int column, size_t n);

// --- Row-based DAG interpreter -----------------------------------------
// Mirrors src/ir/eval.cc but dispatches to the kernels above and compiles
// expressions through the row path (Expr::Compile / CompilePredicate) instead
// of Expr::CompileBatch.

StatusOr<Table> EvaluateOperator(const OperatorNode& node,
                                 const std::vector<const Table*>& inputs);
StatusOr<TableMap> EvaluateDag(const Dag& dag, const TableMap& base);
StatusOr<Table> EvaluateDagRelation(const Dag& dag, const TableMap& base,
                                    const std::string& name);

}  // namespace rowref
}  // namespace musketeer

#endif  // MUSKETEER_TESTS_ROW_REFERENCE_H_
