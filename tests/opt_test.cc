// Optimizer tests: rewrite passes preserve semantics and fire where
// expected; idiom recognition is sound (detects GAS loops, rejects the
// triangle-count shape from §8).

#include "src/opt/passes.h"

#include <gtest/gtest.h>

#include "src/frontends/frontend.h"
#include "src/ir/eval.h"
#include "src/opt/idiom.h"

namespace musketeer {
namespace {

TableMap TestData() {
  Schema s({{"k", FieldType::kInt64},
            {"region", FieldType::kInt64},
            {"amount", FieldType::kDouble}});
  auto a = std::make_shared<Table>(s);
  auto b = std::make_shared<Table>(s);
  for (int64_t i = 0; i < 40; ++i) {
    a->AddRow({i % 10, i % 4, static_cast<double>(i)});
    b->AddRow({i % 12, i % 3, static_cast<double>(i) * 2});
  }
  Schema right({{"k", FieldType::kInt64}, {"name", FieldType::kString}});
  auto r = std::make_shared<Table>(right);
  for (int64_t i = 0; i < 12; ++i) {
    r->AddRow({i, std::string("n") + std::to_string(i)});
  }
  return {{"a", a}, {"b", b}, {"r", r}};
}

SchemaMap SchemasOf(const TableMap& data) {
  SchemaMap out;
  for (const auto& [name, table] : data) {
    out[name] = table->schema();
  }
  return out;
}

// Runs source before/after optimization and checks identical results.
void ExpectSemanticsPreserved(const std::string& source,
                              const std::string& result_name) {
  TableMap data = TestData();
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, source);
  ASSERT_TRUE(dag.ok()) << dag.status();
  auto before = EvaluateDagRelation(**dag, data, result_name);
  ASSERT_TRUE(before.ok()) << before.status();

  auto optimized = OptimizeDag(**dag, SchemasOf(data));
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  auto after = EvaluateDagRelation(**optimized, data, result_name);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(Table::SameContent(*before, *after))
      << "before:\n" << before->DebugString() << "after:\n"
      << after->DebugString();
}

TEST(OptimizerTest, SelectionPushedBelowJoin) {
  const char* kSource = R"(
    joined = JOIN a, r ON a.k = r.k;
    filtered = SELECT * FROM joined WHERE amount > 20;
  )";
  TableMap data = TestData();
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok());
  OptimizeStats stats;
  auto optimized = OptimizeDag(**dag, SchemasOf(data), {}, &stats);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  EXPECT_EQ(stats.selections_pushed, 1);
  // The filter must now be an ancestor of the join.
  int join_id = -1;
  for (const auto& n : (*optimized)->nodes()) {
    if (n.kind == OpKind::kJoin) {
      join_id = n.id;
    }
  }
  ASSERT_GE(join_id, 0);
  bool select_upstream = false;
  for (int in : (*optimized)->node(join_id).inputs) {
    select_upstream |= (*optimized)->node(in).kind == OpKind::kSelect;
  }
  EXPECT_TRUE(select_upstream);
  ExpectSemanticsPreserved(kSource, "filtered");
}

TEST(OptimizerTest, SelectionPushedThroughUnion) {
  const char* kSource = R"(
    u = UNION a, b;
    f = SELECT * FROM u WHERE amount > 30;
  )";
  TableMap data = TestData();
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok());
  OptimizeStats stats;
  auto optimized = OptimizeDag(**dag, SchemasOf(data), {}, &stats);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  EXPECT_EQ(stats.selections_pushed, 1);
  ExpectSemanticsPreserved(kSource, "f");
}

TEST(OptimizerTest, AdjacentSelectsFused) {
  const char* kSource = R"(
    f1 = SELECT * FROM a WHERE amount > 5;
    f2 = SELECT * FROM f1 WHERE region = 1;
  )";
  TableMap data = TestData();
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok());
  OptimizeStats stats;
  auto optimized = OptimizeDag(**dag, SchemasOf(data), {}, &stats);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  EXPECT_EQ(stats.selects_fused, 1);
  int selects = 0;
  for (const auto& n : (*optimized)->nodes()) {
    selects += n.kind == OpKind::kSelect ? 1 : 0;
  }
  EXPECT_EQ(selects, 1);
  ExpectSemanticsPreserved(kSource, "f2");
}

TEST(OptimizerTest, SharedFilterNotPushed) {
  // The join result has a second consumer, so pushing the filter below the
  // join would change what the other consumer sees; the rewrite must not fire.
  const char* kSource = R"(
    joined = JOIN a, r ON a.k = r.k;
    filtered = SELECT * FROM joined WHERE amount > 20;
    counted = AGG COUNT(k) AS n FROM joined;
  )";
  TableMap data = TestData();
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok());
  OptimizeStats stats;
  auto optimized = OptimizeDag(**dag, SchemasOf(data), {}, &stats);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  EXPECT_EQ(stats.selections_pushed, 0);
  ExpectSemanticsPreserved(kSource, "counted");
}

TEST(OptimizerTest, NoRewritesLeavesDagIntact) {
  const char* kSource = R"(
    g = AGG SUM(amount) AS total FROM a GROUP BY region;
  )";
  TableMap data = TestData();
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok());
  OptimizeStats stats;
  auto optimized = OptimizeDag(**dag, SchemasOf(data), {}, &stats);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(stats.selections_pushed + stats.selects_fused + stats.projects_fused +
                stats.dead_removed,
            0);
  EXPECT_EQ((*optimized)->num_nodes(), (*dag)->num_nodes());
}

// ---- Idiom recognition -----------------------------------------------------

TEST(IdiomTest, DetectsGasLoweredPageRank) {
  auto dag = ParseWorkflow(FrontendLanguage::kGas, R"(
    GATHER = { SUM (vertex_value) }
    APPLY = { MUL [vertex_value, 0.85] SUM [vertex_value, 0.15] }
    SCATTER = { DIV [vertex_value, vertex_degree] }
    ITERATION_STOP = (iteration < 5)
  )");
  ASSERT_TRUE(dag.ok()) << dag.status();
  auto matches = DetectGraphIdioms(**dag);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(matches[0].vertex_centric);
}

TEST(IdiomTest, DetectsRelationalPageRankFromBeer) {
  // PageRank written purely relationally must still be recognized (§4.3.1:
  // "even if they were originally expressed in a relational front-end").
  const char* kSource = R"(
    WHILE 5 LOOP v = vertices UPDATE v_next {
      contribs = JOIN edges, v ON edges.src = v.id;
      msgs = MAP dst AS id, vertex_value / vertex_degree AS msg FROM contribs;
      gathered = AGG SUM(msg) AS acc FROM msgs GROUP BY id;
      rejoined = JOIN v, gathered ON v.id = gathered.id;
      v_next = MAP id, acc * 0.85 + 0.15 AS vertex_value, vertex_degree
               FROM rejoined;
    } YIELD v_next AS pagerank;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();
  auto matches = DetectGraphIdioms(**dag);
  ASSERT_GE(matches.size(), 1u);
  EXPECT_TRUE(matches[0].vertex_centric);
}

TEST(IdiomTest, TriangleCountingNotDetected) {
  // §8: a triangle count written as a double self-join plus filter has no
  // WHILE, so the (sound, incomplete) recognizer must not match.
  const char* kSource = R"(
    e2 = MAP src AS src2, dst AS dst2 FROM edges;
    paths = JOIN edges, e2 ON edges.dst = e2.src2;
    closing = MAP src, dst2, src - dst2 AS diff FROM paths;
    triangles = SELECT * FROM closing WHERE diff = 0;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();
  EXPECT_TRUE(DetectGraphIdioms(**dag).empty());
}

TEST(IdiomTest, NonGraphLoopNotVertexCentric) {
  // A loop whose join does not touch the loop-carried state is not
  // vertex-centric (PowerGraph/GraphChi cannot run it).
  const char* kSource = R"(
    WHILE 3 LOOP acc = seed UPDATE acc_next {
      j = JOIN statics, statics2 ON statics.k = statics2.k;
      g = AGG SUM(v) AS s FROM j GROUP BY k;
      acc_next = DISTINCT acc;
    } YIELD acc_next AS out;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSource);
  ASSERT_TRUE(dag.ok()) << dag.status();
  auto matches = DetectGraphIdioms(**dag);
  for (const auto& m : matches) {
    EXPECT_FALSE(m.vertex_centric);
  }
}

}  // namespace
}  // namespace musketeer
