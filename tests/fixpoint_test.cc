// Data-dependent iteration (WHILE FIXPOINT): loops stop as soon as the
// loop-carried relations stabilize, on every execution substrate.

#include <gtest/gtest.h>

#include "src/core/musketeer.h"
#include "src/engines/executor.h"
#include "src/engines/mapreduce_runtime.h"
#include "src/engines/rdd_runtime.h"
#include "src/engines/vertex_runtime.h"
#include "src/workloads/datasets.h"

namespace musketeer {
namespace {

// Transitive closure-flavored loop: the reachable set grows until it stops
// growing; with FIXPOINT the loop ends early even though the bound is large.
const char* kReachability = R"(
  WHILE FIXPOINT 50 LOOP frontier = seeds UPDATE frontier_next {
    hops = JOIN edges, frontier ON edges.src = frontier.id;
    new_nodes = MAP dst AS id FROM hops;
    grown = UNION frontier, new_nodes;
    frontier_next = DISTINCT grown;
  } YIELD frontier_next AS reachable;
)";

TableMap ReachabilityBase() {
  // A 6-node chain: 0 -> 1 -> ... -> 5. Reachability from 0 stabilizes
  // after 5 productive trips (plus one confirming trip).
  Schema es({{"src", FieldType::kInt64}, {"dst", FieldType::kInt64}});
  auto edges = std::make_shared<Table>(es);
  for (int64_t v = 0; v + 1 < 6; ++v) {
    edges->AddRow({v, v + 1});
  }
  Schema ss({{"id", FieldType::kInt64}});
  auto seeds = std::make_shared<Table>(ss);
  seeds->AddRow({int64_t{0}});
  return {{"edges", edges}, {"seeds", seeds}};
}

TEST(FixpointTest, BeerParsesFixpointLoops) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kReachability);
  ASSERT_TRUE(dag.ok()) << dag.status();
  int while_id = (*dag)->ProducerOf("reachable");
  ASSERT_GE(while_id, 0);
  const auto& wp = std::get<WhileParams>((*dag)->node(while_id).params);
  EXPECT_TRUE(wp.until_fixpoint);
  EXPECT_EQ(wp.iterations, 50);
}

TEST(FixpointTest, InterpreterStopsEarlyAndComputesClosure) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kReachability);
  ASSERT_TRUE(dag.ok()) << dag.status();
  TableMap base = ReachabilityBase();
  auto result = EvaluateDagRelation(**dag, base, "reachable");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 6u);  // the full chain is reachable

  // The trace records how many trips actually ran: 5 productive + 1 to
  // observe stability, far fewer than the bound of 50.
  auto trace = TraceExecuteDag(**dag, base);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->total_iterations, 6);
}

TEST(FixpointTest, AllSubstratesAgree) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kReachability);
  ASSERT_TRUE(dag.ok()) << dag.status();
  TableMap base = ReachabilityBase();
  auto ref = EvaluateDagRelation(**dag, base, "reachable");
  ASSERT_TRUE(ref.ok());

  auto mr = ExecuteViaMapReduce(**dag, base);
  ASSERT_TRUE(mr.ok()) << mr.status();
  EXPECT_TRUE(Table::SameContent(*ref, *mr->relations["reachable"]));

  auto rdd = ExecuteViaRdd(**dag, base, {.num_partitions = 3});
  ASSERT_TRUE(rdd.ok()) << rdd.status();
  EXPECT_TRUE(Table::SameContent(*ref, *rdd->relations["reachable"]));
}

TEST(FixpointTest, FixedTripLoopsStillRunTheFullBound) {
  // Without FIXPOINT the loop must run all trips even when stable.
  const char* kFixed = R"(
    WHILE 7 LOOP x = seeds UPDATE x2 {
      x2 = DISTINCT x;
    } YIELD x2 AS out;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kFixed);
  ASSERT_TRUE(dag.ok()) << dag.status();
  auto trace = TraceExecuteDag(**dag, ReachabilityBase());
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->total_iterations, 7);
}

TEST(FixpointTest, VertexRuntimeConvergesEarlyOnSssp) {
  // SSSP distances stabilize once every shortest path is found; the vertex
  // runtime must notice and stop.
  GraphSpec spec;
  spec.name = "fixpoint-sssp";
  spec.sample_vertices = 40;
  spec.nominal_vertices = 40;
  spec.seed = 21;
  spec.with_costs = true;
  spec.initial_value = 1e18;
  GraphDataset g = MakePowerLawGraph(spec);

  // Build the SSSP loop in BEER with FIXPOINT and a large bound.
  const char* kSssp = R"(
    WHILE FIXPOINT 100 LOOP v = vertices UPDATE v_next {
      hops = JOIN edges, v ON edges.src = v.id;
      msgs = MAP dst AS id, vertex_value + cost AS msg FROM hops;
      self_msgs = MAP id, vertex_value AS msg FROM v;
      all_msgs = UNION msgs, self_msgs;
      gathered = AGG MIN(msg) AS acc FROM all_msgs GROUP BY id;
      rejoined = JOIN v, gathered ON v.id = gathered.id;
      v_next = MAP id, acc AS vertex_value, vertex_degree FROM rejoined;
    } YIELD v_next AS sssp;
  )";
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, kSssp);
  ASSERT_TRUE(dag.ok()) << dag.status();
  TableMap base{{"vertices", g.vertices}, {"edges", g.edges}};

  auto ref = EvaluateDagRelation(**dag, base, "sssp");
  ASSERT_TRUE(ref.ok()) << ref.status();

  auto vr = ExecuteViaVertexRuntime(**dag, base);
  ASSERT_TRUE(vr.ok()) << vr.status();
  EXPECT_TRUE(Table::SameContent(*ref, *vr->relations["sssp"]));
  EXPECT_LT(vr->stats.supersteps, 100);
  EXPECT_GT(vr->stats.supersteps, 1);
}

TEST(FixpointTest, RunsEndToEndThroughMusketeer) {
  WorkflowSpec wf;
  wf.id = "reachability";
  wf.language = FrontendLanguage::kBeer;
  wf.source = kReachability;
  for (EngineKind engine :
       {EngineKind::kHadoop, EngineKind::kNaiad, EngineKind::kSpark}) {
    Dfs dfs;
    for (const auto& [name, table] : ReachabilityBase()) {
      dfs.Put(name, table);
    }
    Musketeer m(&dfs);
    RunOptions options;
    options.engines = {engine};
    auto result = m.Run(wf, options);
    ASSERT_TRUE(result.ok()) << EngineKindName(engine) << ": "
                             << result.status();
    EXPECT_EQ(result->outputs["reachable"]->num_rows(), 6u)
        << EngineKindName(engine);
  }
}

}  // namespace
}  // namespace musketeer
