// Tests for the IR: expressions, DAG construction/validation, schema
// inference, WHILE handling and the reference interpreter.

#include "src/ir/dag.h"

#include <gtest/gtest.h>

#include "src/ir/eval.h"

namespace musketeer {
namespace {

Schema EdgeSchema() {
  return Schema({{"src", FieldType::kInt64}, {"dst", FieldType::kInt64}});
}

TEST(ExprTest, ArithmeticAndComparisonEvaluation) {
  Schema s({{"a", FieldType::kInt64}, {"b", FieldType::kDouble}});
  // (a + 2) * b
  ExprPtr e = Expr::Binary(
      BinOp::kMul,
      Expr::Binary(BinOp::kAdd, Expr::Column("a"), Expr::Literal(int64_t{2})),
      Expr::Column("b"));
  auto proj = e->Compile(s);
  ASSERT_TRUE(proj.ok());
  Row row{int64_t{3}, 2.5};
  EXPECT_DOUBLE_EQ(AsDouble((*proj)(row)), 12.5);

  ExprPtr cmp = Expr::Binary(BinOp::kGe, Expr::Column("b"), Expr::Literal(2.0));
  auto pred = cmp->CompilePredicate(s);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE((*pred)(row));
}

TEST(ExprTest, TypeInference) {
  Schema s({{"a", FieldType::kInt64},
            {"b", FieldType::kDouble},
            {"s", FieldType::kString}});
  auto t1 = Expr::Binary(BinOp::kAdd, Expr::Column("a"), Expr::Literal(int64_t{1}))
                ->InferType(s);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(*t1, FieldType::kInt64);

  auto t2 = Expr::Binary(BinOp::kDiv, Expr::Column("a"), Expr::Literal(int64_t{2}))
                ->InferType(s);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t2, FieldType::kDouble);  // division always widens

  auto t3 = Expr::Binary(BinOp::kAdd, Expr::Column("s"), Expr::Literal(int64_t{1}))
                ->InferType(s);
  EXPECT_FALSE(t3.ok());

  auto t4 = Expr::Column("missing")->InferType(s);
  EXPECT_FALSE(t4.ok());
}

TEST(ExprTest, IntegerDivisionByZeroYieldsZero) {
  Schema s({{"a", FieldType::kInt64}});
  ExprPtr e = Expr::Binary(BinOp::kDiv, Expr::Column("a"), Expr::Literal(int64_t{0}));
  auto proj = e->Compile(s);
  ASSERT_TRUE(proj.ok());
  Row row{int64_t{7}};
  EXPECT_DOUBLE_EQ(AsDouble((*proj)(row)), 0.0);
}

TEST(ExprTest, CollectColumnsDeduplicates) {
  ExprPtr e = Expr::Binary(BinOp::kAdd, Expr::Column("x"),
                           Expr::Binary(BinOp::kMul, Expr::Column("x"),
                                        Expr::Column("y")));
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], "x");
  EXPECT_EQ(cols[1], "y");
}

TEST(DagTest, ValidationCatchesDuplicateNames) {
  Dag dag;
  int in = dag.AddInput("edges");
  dag.AddNode(OpKind::kDistinct, "out", {in}, DistinctParams{});
  dag.AddNode(OpKind::kDistinct, "out", {in}, DistinctParams{});
  EXPECT_FALSE(dag.Validate().ok());
}

TEST(DagTest, ValidationCatchesArityMismatch) {
  Dag dag;
  int in = dag.AddInput("edges");
  dag.AddNode(OpKind::kJoin, "bad", {in}, JoinParams{"src", "dst"});
  EXPECT_FALSE(dag.Validate().ok());
}

TEST(DagTest, SchemaInferenceJoinLayout) {
  Dag dag;
  int e1 = dag.AddInput("edges");
  int e2 = dag.AddInput("edges2");
  dag.AddNode(OpKind::kJoin, "j", {e1, e2}, JoinParams{"dst", "src"});
  SchemaMap base{{"edges", EdgeSchema()},
                 {"edges2", Schema({{"src", FieldType::kInt64},
                                    {"dst2", FieldType::kInt64}})}};
  auto schemas = dag.InferSchemas(base);
  ASSERT_TRUE(schemas.ok()) << schemas.status();
  const Schema& j = (*schemas)[2];
  ASSERT_EQ(j.num_fields(), 3u);
  EXPECT_EQ(j.field(0).name, "dst");   // join key
  EXPECT_EQ(j.field(1).name, "src");   // left rest
  EXPECT_EQ(j.field(2).name, "dst2");  // right rest
}

TEST(DagTest, SchemaInferenceReportsMissingColumns) {
  Dag dag;
  int in = dag.AddInput("edges");
  dag.AddNode(OpKind::kProject, "p", {in}, ProjectParams{{"nope"}});
  auto schemas = dag.InferSchemas({{"edges", EdgeSchema()}});
  EXPECT_FALSE(schemas.ok());
}

TEST(DagTest, SinksAndConsumers) {
  Dag dag;
  int in = dag.AddInput("edges");
  int d = dag.AddNode(OpKind::kDistinct, "d", {in}, DistinctParams{});
  int p = dag.AddNode(OpKind::kProject, "p", {d}, ProjectParams{{"src"}});
  EXPECT_EQ(dag.ConsumersOf(in), std::vector<int>{d});
  EXPECT_EQ(dag.Sinks(), std::vector<int>{p});
}

TEST(DagTest, CloneIsDeep) {
  Dag dag;
  int in = dag.AddInput("x");
  auto body = std::make_unique<Dag>();
  int bi = body->AddInput("v");
  body->AddNode(OpKind::kDistinct, "v_next", {bi}, DistinctParams{});
  WhileParams wp;
  wp.iterations = 2;
  wp.body = std::shared_ptr<const Dag>(body.release());
  wp.bindings = {{"v", "v_next"}};
  wp.result = "v_next";
  dag.AddNode(OpKind::kWhile, "out", {in}, std::move(wp));

  auto clone = dag.Clone();
  ASSERT_EQ(clone->num_nodes(), dag.num_nodes());
  const auto& orig_body = std::get<WhileParams>(dag.node(1).params).body;
  const auto& clone_body = std::get<WhileParams>(clone->node(1).params).body;
  EXPECT_NE(orig_body.get(), clone_body.get());
  EXPECT_EQ(clone_body->num_nodes(), orig_body->num_nodes());
}

TEST(DagTest, TotalOperatorCountRecursesIntoWhile) {
  Dag dag;
  int in = dag.AddInput("x");
  auto body = std::make_unique<Dag>();
  int bi = body->AddInput("v");
  int d = body->AddNode(OpKind::kDistinct, "d", {bi}, DistinctParams{});
  body->AddNode(OpKind::kProject, "v_next", {d}, ProjectParams{{"src"}});
  WhileParams wp;
  wp.iterations = 3;
  wp.body = std::shared_ptr<const Dag>(body.release());
  wp.bindings = {{"v", "v_next"}};
  wp.result = "v_next";
  dag.AddNode(OpKind::kWhile, "out", {in}, std::move(wp));
  EXPECT_EQ(dag.TotalOperatorCount(), 2);
}

TEST(EvalTest, UdfOperatorRuns) {
  Dag dag;
  int in = dag.AddInput("edges");
  UdfParams udf;
  udf.name = "count_rows";
  udf.output_schema = Schema({{"n", FieldType::kInt64}});
  udf.fn = [](const std::vector<const Table*>& inputs) -> StatusOr<Table> {
    Table out(Schema({{"n", FieldType::kInt64}}));
    out.AddRow({static_cast<int64_t>(inputs[0]->num_rows())});
    return out;
  };
  dag.AddNode(OpKind::kUdf, "n", {in}, std::move(udf));

  auto edges = std::make_shared<Table>(EdgeSchema());
  edges->AddRow({int64_t{1}, int64_t{2}});
  edges->AddRow({int64_t{2}, int64_t{3}});
  auto result = EvaluateDagRelation(dag, {{"edges", edges}}, "n");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(AsInt64(result->MaterializeRows()[0][0]), 2);
}

TEST(EvalTest, MissingBaseRelationReported) {
  Dag dag;
  dag.AddInput("ghost");
  auto result = EvaluateDag(dag, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(EvalTest, ErrorsNameTheFailingOperator) {
  Dag dag;
  int in = dag.AddInput("edges");
  dag.AddNode(OpKind::kProject, "p", {in}, ProjectParams{{"missing_col"}});
  auto edges = std::make_shared<Table>(EdgeSchema());
  auto result = EvaluateDag(dag, {{"edges", edges}});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("PROJECT"), std::string::npos);
}

TEST(EvalTest, DotExportMentionsAllNodes) {
  Dag dag;
  int in = dag.AddInput("edges");
  dag.AddNode(OpKind::kDistinct, "d", {in}, DistinctParams{});
  std::string dot = dag.ToDot();
  EXPECT_NE(dot.find("INPUT"), std::string::npos);
  EXPECT_NE(dot.find("DISTINCT"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

}  // namespace
}  // namespace musketeer
