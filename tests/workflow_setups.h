// The nine evaluation workflows, packaged as (spec, inputs, result relation)
// setups. Shared by engine_equivalence_test.cc (cross-engine semantics) and
// fault_test.cc (seeded fault sweeps must reproduce the fault-free bits).

#ifndef MUSKETEER_TESTS_WORKFLOW_SETUPS_H_
#define MUSKETEER_TESTS_WORKFLOW_SETUPS_H_

#include <string>

#include "src/core/musketeer.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

namespace musketeer {

enum class Wf {
  kTopShopper,
  kTpchHive,
  kTpchLindi,
  kNetflix,
  kSimpleJoin,
  kPageRank,
  kSssp,
  kKmeans,
  kCrossCommunity,
};

inline constexpr Wf kAllWorkflows[] = {
    Wf::kTopShopper, Wf::kTpchHive, Wf::kTpchLindi,
    Wf::kNetflix,    Wf::kSimpleJoin, Wf::kPageRank,
    Wf::kSssp,       Wf::kKmeans,   Wf::kCrossCommunity,
};

inline const char* WfName(Wf wf) {
  switch (wf) {
    case Wf::kTopShopper:
      return "TopShopper";
    case Wf::kTpchHive:
      return "TpchHive";
    case Wf::kTpchLindi:
      return "TpchLindi";
    case Wf::kNetflix:
      return "Netflix";
    case Wf::kSimpleJoin:
      return "SimpleJoin";
    case Wf::kPageRank:
      return "PageRank";
    case Wf::kSssp:
      return "Sssp";
    case Wf::kKmeans:
      return "Kmeans";
    case Wf::kCrossCommunity:
      return "CrossCommunity";
  }
  return "?";
}

struct WfSetup {
  WorkflowSpec workflow;
  std::string result_relation;
  TableMap inputs;
  bool graph_capable = false;  // PowerGraph/GraphChi can run it
};

inline WfSetup MakeSetup(Wf wf) {
  WfSetup s;
  switch (wf) {
    case Wf::kTopShopper:
      s.workflow = {"top-shopper", FrontendLanguage::kBeer,
                    TopShopperBeer(5, 300.0)};
      s.result_relation = "top_shoppers";
      s.inputs = {{"purchases", MakePurchases(1e6, 1500, 10, 21)}};
      break;
    case Wf::kTpchHive:
    case Wf::kTpchLindi: {
      TpchDataset data = MakeTpch(10, 3000);
      s.workflow = {"tpch-q17",
                    wf == Wf::kTpchHive ? FrontendLanguage::kHive
                                        : FrontendLanguage::kLindi,
                    wf == Wf::kTpchHive ? TpchQ17Hive() : TpchQ17Lindi()};
      s.result_relation = "q17_result";
      s.inputs = {{"lineitem", data.lineitem}, {"part", data.part}};
      break;
    }
    case Wf::kNetflix: {
      NetflixDataset data = MakeNetflix(50);
      s.workflow = {"netflix", FrontendLanguage::kBeer, NetflixBeer(60)};
      s.result_relation = "recommendation";
      s.inputs = {{"ratings", data.ratings}, {"movies", data.movies}};
      break;
    }
    case Wf::kSimpleJoin: {
      GraphDataset lj = LiveJournalGraph();
      s.workflow = {"join", FrontendLanguage::kBeer, SimpleJoinBeer()};
      s.result_relation = "joined";
      s.inputs = {{"vertices_rel", lj.vertices}, {"edges_rel", lj.edges}};
      break;
    }
    case Wf::kPageRank: {
      GraphDataset g = OrkutGraph();
      s.workflow = {"pagerank", FrontendLanguage::kGas, PageRankGas(3)};
      s.result_relation = "pagerank";
      s.inputs = {{"vertices", g.vertices}, {"edges", g.edges}};
      s.graph_capable = true;
      break;
    }
    case Wf::kSssp: {
      GraphSpec spec;
      spec.name = "sssp-test";
      spec.sample_vertices = 120;
      spec.nominal_vertices = 120;
      spec.seed = 5;
      spec.with_costs = true;
      spec.initial_value = 1e18;
      GraphDataset g = MakePowerLawGraph(spec);
      s.workflow = {"sssp", FrontendLanguage::kGas, SsspGas(4)};
      s.result_relation = "sssp";
      s.inputs = {{"vertices", g.vertices}, {"edges", g.edges}};
      s.graph_capable = true;
      break;
    }
    case Wf::kKmeans: {
      KmeansDataset data = MakeKmeans(1e7, 300, 4, 13);
      s.workflow = {"kmeans", FrontendLanguage::kBeer, KmeansBeer(3)};
      s.result_relation = "kmeans_centers";
      s.inputs = {{"points", data.points}, {"centers", data.centers}};
      break;
    }
    case Wf::kCrossCommunity: {
      CommunityPair pair = MakeOverlappingCommunities();
      s.workflow = {"cross-community", FrontendLanguage::kBeer,
                    CrossCommunityPageRankBeer(3)};
      s.result_relation = "cc_pagerank";
      s.inputs = {{"lj_edges", pair.a.edges}, {"web_edges", pair.b.edges}};
      break;
    }
  }
  return s;
}

}  // namespace musketeer

#endif  // MUSKETEER_TESTS_WORKFLOW_SETUPS_H_
