// Tests for the shared parallel execution layer: task-pool semantics,
// thread-count configuration, and the determinism contract — every parallel
// relational kernel and the parallel exhaustive partitioner must produce
// bit-identical results at any thread count.

#include "src/base/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/frontends/frontend.h"
#include "src/relational/ops.h"
#include "src/scheduler/partitioner.h"

namespace musketeer {
namespace {

// ---------------------------------------------------------------------------
// Thread configuration.
// ---------------------------------------------------------------------------

TEST(ParallelConfigTest, ScopedOverrideRestores) {
  const int base = ParallelThreads();
  {
    ScopedParallelThreads four(4);
    EXPECT_EQ(ParallelThreads(), 4);
    {
      ScopedParallelThreads one(1);
      EXPECT_EQ(ParallelThreads(), 1);
    }
    EXPECT_EQ(ParallelThreads(), 4);
  }
  EXPECT_EQ(ParallelThreads(), base);
}

TEST(ParallelConfigTest, OverrideIsThreadLocal) {
  int default_width = 0;
  std::thread probe([&] { default_width = ParallelThreads(); });
  probe.join();

  ScopedParallelThreads override_here(default_width + 3);
  int seen_in_thread = 0;
  std::thread t([&] { seen_in_thread = ParallelThreads(); });
  t.join();
  // A fresh thread sees the process default, not this thread's override.
  EXPECT_EQ(seen_in_thread, default_width);
  EXPECT_EQ(ParallelThreads(), default_width + 3);
}

TEST(ParallelConfigTest, ClampsToOne) {
  ScopedParallelThreads zero(0);
  EXPECT_GE(ParallelThreads(), 1);
}

TEST(ParallelConfigTest, HardwareThreadsPositive) {
  EXPECT_GE(HardwareThreads(), 1);
}

// ---------------------------------------------------------------------------
// Task pool.
// ---------------------------------------------------------------------------

TEST(TaskPoolTest, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  TaskPool::Global().Run(hits.size(), 8,
                         [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(TaskPoolTest, SequentialFastPathWithOneThread) {
  std::vector<int> hits(64, 0);  // unsynchronized: must be run by the caller
  TaskPool::Global().Run(hits.size(), 1, [&](size_t i) { hits[i] += 1; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(TaskPoolTest, NestedRunDoesNotDeadlock) {
  std::atomic<int> total{0};
  TaskPool::Global().Run(4, 4, [&](size_t) {
    TaskPool::Global().Run(4, 4, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(TaskPoolTest, ConcurrentRunsFromManyThreads) {
  constexpr int kSubmitters = 6;
  constexpr int kTasksEach = 200;
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      TaskPool::Global().Run(kTasksEach, 4,
                             [&](size_t) { total.fetch_add(1); });
    });
  }
  for (auto& t : submitters) {
    t.join();
  }
  EXPECT_EQ(total.load(), kSubmitters * kTasksEach);
}

TEST(TaskPoolTest, ZeroTasksReturnsImmediately) {
  bool ran = false;
  TaskPool::Global().Run(0, 8, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

// ---------------------------------------------------------------------------
// Chunked parallel-for.
// ---------------------------------------------------------------------------

TEST(ParallelChunksTest, ChunkBoundariesIndependentOfThreads) {
  const size_t n = 3 * kMorselRows + 7;
  auto bounds_at = [&](int threads) {
    ScopedParallelThreads width(threads);
    std::vector<std::pair<size_t, size_t>> bounds(NumChunks(n, kMorselRows));
    ParallelChunks(n, kMorselRows, [&](size_t c, size_t b, size_t e) {
      bounds[c] = {b, e};
    });
    return bounds;
  };
  EXPECT_EQ(bounds_at(1), bounds_at(7));
  auto bounds = bounds_at(4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds[0], (std::pair<size_t, size_t>{0, kMorselRows}));
  EXPECT_EQ(bounds[3],
            (std::pair<size_t, size_t>{3 * kMorselRows, 3 * kMorselRows + 7}));
}

TEST(ParallelChunksTest, CoversEveryIndex) {
  const size_t n = 2 * kMorselRows + 100;
  std::vector<std::atomic<int>> hits(n);
  ScopedParallelThreads width(8);
  ParallelChunks(n, kMorselRows, [&](size_t, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelMapChunksTest, CollectsInChunkOrder) {
  ScopedParallelThreads width(8);
  std::vector<size_t> firsts = ParallelMapChunks<size_t>(
      100, 10, [](size_t, size_t begin, size_t) { return begin; });
  ASSERT_EQ(firsts.size(), 10u);
  for (size_t c = 0; c < firsts.size(); ++c) {
    EXPECT_EQ(firsts[c], c * 10);
  }
}

// ---------------------------------------------------------------------------
// Kernel bit-identity: every parallel relational kernel must produce output
// identical (row order, bit-for-bit doubles) to its 1-thread execution.
// ---------------------------------------------------------------------------

// Pseudo-random but deterministic table spanning several morsels, with
// repeated keys (for joins/grouping) and doubles whose summation order
// would show in the last bits if the merge tree were thread-dependent.
Table BigTable(size_t rows) {
  Schema schema({{"k", FieldType::kInt64},
                 {"v", FieldType::kInt64},
                 {"x", FieldType::kDouble}});
  Table t(schema);
  t.Reserve(rows);
  uint64_t state = 42;
  for (size_t i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    int64_t k = static_cast<int64_t>(state >> 33) % 97;
    int64_t v = static_cast<int64_t>(state >> 17) % 1000;
    double x = static_cast<double>(static_cast<int64_t>(state % 100003)) / 7.0;
    t.AddRow({k, v, x});
  }
  return t;
}

constexpr size_t kBigRows = 3 * kMorselRows + 17;

template <typename Fn>
void ExpectBitIdenticalAcrossThreads(const Fn& run) {
  Table sequential = [&] {
    ScopedParallelThreads one(1);
    return run();
  }();
  for (int threads : {2, 4, 7}) {
    ScopedParallelThreads width(threads);
    Table parallel = run();
    EXPECT_TRUE(Table::Identical(sequential, parallel))
        << "output differs from sequential at " << threads << " threads";
  }
}

TEST(KernelBitIdentityTest, Select) {
  Table in = BigTable(kBigRows);
  ExpectBitIdenticalAcrossThreads([&] {
    return SelectRows(in, [](const Row& r) { return AsInt64(r[1]) % 3 == 0; });
  });
}

TEST(KernelBitIdentityTest, Project) {
  Table in = BigTable(kBigRows);
  ExpectBitIdenticalAcrossThreads(
      [&] { return std::move(ProjectColumns(in, {2, 0})).value(); });
}

TEST(KernelBitIdentityTest, Map) {
  Table in = BigTable(kBigRows);
  Schema out_schema({{"y", FieldType::kDouble}});
  std::vector<RowProjector> projectors{
      [](const Row& r) -> Value { return AsDouble(r[2]) * 3.0 + 1.0; }};
  ExpectBitIdenticalAcrossThreads(
      [&] { return MapRows(in, out_schema, projectors); });
}

TEST(KernelBitIdentityTest, HashJoin) {
  Table left = BigTable(kBigRows);
  Table right = BigTable(kMorselRows + 31);
  ExpectBitIdenticalAcrossThreads(
      [&] { return std::move(HashJoin(left, right, 0, 0)).value(); });
}

TEST(KernelBitIdentityTest, CrossJoin) {
  Table left = BigTable(300);
  Table right = BigTable(70);
  ExpectBitIdenticalAcrossThreads([&] { return CrossJoin(left, right); });
}

TEST(KernelBitIdentityTest, UnionAll) {
  Table a = BigTable(kBigRows);
  Table b = BigTable(kMorselRows + 3);
  ExpectBitIdenticalAcrossThreads(
      [&] { return std::move(UnionAll(a, b)).value(); });
}

TEST(KernelBitIdentityTest, IntersectAndDifference) {
  Table a = BigTable(kBigRows);
  Table b = BigTable(kMorselRows);
  ExpectBitIdenticalAcrossThreads(
      [&] { return std::move(Intersect(a, b)).value(); });
  ExpectBitIdenticalAcrossThreads(
      [&] { return std::move(Difference(a, b)).value(); });
}

TEST(KernelBitIdentityTest, Distinct) {
  Table in = BigTable(kBigRows);
  ExpectBitIdenticalAcrossThreads([&] { return Distinct(in); });
}

TEST(KernelBitIdentityTest, GroupByAllAggs) {
  Table in = BigTable(kBigRows);
  std::vector<AggSpec> aggs{{AggFn::kSum, 2, "sx"},
                            {AggFn::kAvg, 2, "ax"},
                            {AggFn::kMin, 1, "mn"},
                            {AggFn::kMax, 1, "mx"},
                            {AggFn::kCount, 0, "c"}};
  ExpectBitIdenticalAcrossThreads(
      [&] { return std::move(GroupByAgg(in, {0}, aggs)).value(); });
}

TEST(KernelBitIdentityTest, GlobalAgg) {
  Table in = BigTable(kBigRows);
  std::vector<AggSpec> aggs{{AggFn::kSum, 2, "sx"}, {AggFn::kAvg, 2, "ax"}};
  ExpectBitIdenticalAcrossThreads(
      [&] { return std::move(GroupByAgg(in, {}, aggs)).value(); });
}

TEST(KernelBitIdentityTest, ExtremeRow) {
  Table in = BigTable(kBigRows);
  ExpectBitIdenticalAcrossThreads(
      [&] { return std::move(ExtremeRow(in, 2, /*take_max=*/true)).value(); });
  ExpectBitIdenticalAcrossThreads(
      [&] { return std::move(ExtremeRow(in, 2, /*take_max=*/false)).value(); });
}

TEST(KernelBitIdentityTest, SortAndTopN) {
  Table in = BigTable(kBigRows);
  // Sort on a low-cardinality key: stability across equal keys is the part
  // a non-deterministic parallel sort would break.
  ExpectBitIdenticalAcrossThreads([&] { return SortBy(in, {0}); });
  ExpectBitIdenticalAcrossThreads([&] { return TopNBy(in, 2, 100); });
}

// ---------------------------------------------------------------------------
// Parallel exhaustive partitioner: identical chosen partitioning.
// ---------------------------------------------------------------------------

std::unique_ptr<Dag> PartitionTestDag() {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, R"(
    locs = SELECT id, street, town FROM properties;
    id_price = JOIN locs, prices ON locs.id = prices.id;
    street_price = AGG MAX(price) AS max_price FROM id_price
                   GROUP BY street, town;
    top = SELECT street, town FROM street_price;
  )");
  EXPECT_TRUE(dag.ok()) << dag.status();
  return std::move(dag).value();
}

TEST(ParallelPartitionerTest, IdenticalToSequentialSearch) {
  auto dag = PartitionTestDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(
      *dag, {{"properties", 4 * kGB}, {"prices", 2 * kGB}});
  ASSERT_TRUE(sizes.ok()) << sizes.status();

  auto sequential = [&] {
    ScopedParallelThreads one(1);
    return PartitionWorkflow(*dag, model, *sizes,
                             {.strategy = PartitionStrategyKind::kExhaustive});
  }();
  ASSERT_TRUE(sequential.ok()) << sequential.status();

  for (int threads : {2, 4, 8}) {
    ScopedParallelThreads width(threads);
    auto parallel = PartitionWorkflow(
        *dag, model, *sizes, {.strategy = PartitionStrategyKind::kExhaustive});
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_DOUBLE_EQ(parallel->total_cost, sequential->total_cost);
    ASSERT_EQ(parallel->jobs.size(), sequential->jobs.size());
    for (size_t j = 0; j < parallel->jobs.size(); ++j) {
      EXPECT_EQ(parallel->jobs[j].ops, sequential->jobs[j].ops);
      EXPECT_EQ(parallel->jobs[j].engine, sequential->jobs[j].engine);
      EXPECT_DOUBLE_EQ(parallel->jobs[j].cost, sequential->jobs[j].cost);
    }
  }
}

TEST(ParallelPartitionerTest, RestrictedEnginesStillIdentical) {
  auto dag = PartitionTestDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(
      *dag, {{"properties", 4 * kGB}, {"prices", 2 * kGB}});
  ASSERT_TRUE(sizes.ok());
  PlannerConfig config;
  config.strategy = PartitionStrategyKind::kExhaustive;
  config.engines = {EngineKind::kHadoop, EngineKind::kSpark};

  auto sequential = [&] {
    ScopedParallelThreads one(1);
    return PartitionWorkflow(*dag, model, *sizes, config);
  }();
  ASSERT_TRUE(sequential.ok()) << sequential.status();

  ScopedParallelThreads width(8);
  auto parallel = PartitionWorkflow(*dag, model, *sizes, config);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_DOUBLE_EQ(parallel->total_cost, sequential->total_cost);
  ASSERT_EQ(parallel->jobs.size(), sequential->jobs.size());
  for (size_t j = 0; j < parallel->jobs.size(); ++j) {
    EXPECT_EQ(parallel->jobs[j].ops, sequential->jobs[j].ops);
    EXPECT_EQ(parallel->jobs[j].engine, sequential->jobs[j].engine);
  }
}

TEST(ParallelPartitionerTest, InfeasibleWorkflowFailsIdentically) {
  // A graph-only engine cannot run a purely relational workflow; both the
  // sequential and parallel searches must agree on the failure.
  auto dag = PartitionTestDag();
  CostModel model(LocalCluster(), nullptr, "wf");
  auto sizes = model.PredictSizes(
      *dag, {{"properties", 4 * kGB}, {"prices", 2 * kGB}});
  ASSERT_TRUE(sizes.ok());
  PlannerConfig config;
  config.strategy = PartitionStrategyKind::kExhaustive;
  config.engines = {EngineKind::kPowerGraph};

  auto sequential = [&] {
    ScopedParallelThreads one(1);
    return PartitionWorkflow(*dag, model, *sizes, config);
  }();
  ScopedParallelThreads width(8);
  auto parallel = PartitionWorkflow(*dag, model, *sizes, config);
  EXPECT_EQ(parallel.ok(), sequential.ok());
  if (!sequential.ok()) {
    EXPECT_EQ(parallel.status().code(), sequential.status().code());
  }
}

}  // namespace
}  // namespace musketeer
