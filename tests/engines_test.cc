// Engine-simulator tests: job execution against the DFS, loop execution
// strategies, quirk pricing, and accounting.

#include "src/engines/engine.h"

#include <gtest/gtest.h>

#include "src/backends/backend.h"
#include "src/engines/executor.h"
#include "src/frontends/frontend.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

namespace musketeer {
namespace {

// Builds a plan for `engine` covering all non-INPUT ops of `dag`.
JobPlan PlanFor(EngineKind engine, const Dag& dag, const SchemaMap& schemas,
                CodeGenOptions options = {}) {
  std::vector<int> ops;
  for (const auto& n : dag.nodes()) {
    if (n.kind != OpKind::kInput) {
      ops.push_back(n.id);
    }
  }
  auto plan = BackendFor(engine).GeneratePlan(dag, ops, schemas, options);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return std::move(plan).value();
}

TablePtr SmallKv(double scale) {
  Schema s({{"k", FieldType::kInt64}, {"v", FieldType::kDouble}});
  auto t = std::make_shared<Table>(s);
  for (int64_t i = 0; i < 100; ++i) {
    t->AddRow({i % 10, static_cast<double>(i)});
  }
  t->set_scale(scale);
  return t;
}

TEST(ExecutorTest, TraceRecordsPerIterationOps) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, R"(
    WHILE 3 LOOP x = seed UPDATE x2 {
      f = SELECT * FROM x WHERE v >= 0;
      x2 = AGG SUM(v) AS v, COUNT(k) AS k2 FROM f GROUP BY k;
    } YIELD x2 AS out;
  )");
  ASSERT_TRUE(dag.ok()) << dag.status();
  // Rebind: the groupby output schema is (k, v, k2) vs input (k, v) —
  // arity must stay stable, so use a simpler body.
  auto dag2 = ParseWorkflow(FrontendLanguage::kBeer, R"(
    WHILE 3 LOOP x = seed UPDATE x2 {
      x2 = AGG SUM(v) AS v FROM x GROUP BY k;
    } YIELD x2 AS out;
  )");
  ASSERT_TRUE(dag2.ok()) << dag2.status();
  TableMap base{{"seed", SmallKv(1.0)}};
  auto trace = TraceExecuteDag(**dag2, base);
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_EQ(trace->total_iterations, 3);
  int body_ops = 0;
  for (const OpTrace& op : trace->ops) {
    body_ops += op.iteration >= 0 ? 1 : 0;
  }
  EXPECT_EQ(body_ops, 3);  // one GROUP BY per iteration
  EXPECT_GT(trace->loop_state_bytes, 0);
}

TEST(EngineTest, MissingInputRelationFails) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, "o = DISTINCT ghost;\n");
  ASSERT_TRUE(dag.ok());
  SchemaMap schemas{{"ghost", Schema({{"k", FieldType::kInt64}})}};
  JobPlan plan = PlanFor(EngineKind::kSpark, **dag, schemas);
  Dfs dfs;  // empty!
  auto result = ExecuteJob(plan, LocalCluster(), &dfs, ExecutionContext{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, OutputsLandInDfs) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer,
                           "o = AGG SUM(v) AS s FROM rel GROUP BY k;\n");
  ASSERT_TRUE(dag.ok());
  Dfs dfs;
  dfs.Put("rel", SmallKv(1000));
  SchemaMap schemas{{"rel", SmallKv(1)->schema()}};
  JobPlan plan = PlanFor(EngineKind::kHadoop, **dag, schemas);
  auto result = ExecuteJob(plan, LocalCluster(), &dfs, ExecutionContext{});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(dfs.Contains("o"));
  EXPECT_EQ((*dfs.Get("o"))->num_rows(), 10u);
  EXPECT_GT(dfs.bytes_read(), 0);
  EXPECT_GT(dfs.bytes_written(), 0);
}

TEST(EngineTest, MapReduceLoopSpawnsPerIterationJobs) {
  GraphDataset graph = OrkutGraph();
  auto dag = ParseWorkflow(FrontendLanguage::kGas, PageRankGas(5));
  ASSERT_TRUE(dag.ok());
  SchemaMap schemas{{"vertices", graph.vertices->schema()},
                    {"edges", graph.edges->schema()}};
  Dfs dfs;
  dfs.Put("vertices", graph.vertices);
  dfs.Put("edges", graph.edges);

  JobPlan hadoop = PlanFor(EngineKind::kHadoop, **dag, schemas);
  auto hres = ExecuteJob(hadoop, Ec2Cluster(16), &dfs, ExecutionContext{});
  ASSERT_TRUE(hres.ok()) << hres.status();
  // PageRank body has 3 shuffles (2 joins + group-by) x 5 iterations.
  EXPECT_EQ(hres->internal_jobs, 15);
  EXPECT_EQ(hres->supersteps, 0);

  JobPlan naiad = PlanFor(EngineKind::kNaiad, **dag, schemas);
  auto nres = ExecuteJob(naiad, Ec2Cluster(16), &dfs, ExecutionContext{});
  ASSERT_TRUE(nres.ok()) << nres.status();
  EXPECT_EQ(nres->internal_jobs, 1);
  EXPECT_EQ(nres->supersteps, 5);
  EXPECT_LT(nres->makespan, hres->makespan);
}

TEST(EngineTest, VertexRuntimeBeatsDataflowLoopOnGraphEngines) {
  GraphDataset graph = TwitterGraph();
  auto dag = ParseWorkflow(FrontendLanguage::kGas, PageRankGas(5));
  ASSERT_TRUE(dag.ok());
  SchemaMap schemas{{"vertices", graph.vertices->schema()},
                    {"edges", graph.edges->schema()}};
  Dfs dfs;
  dfs.Put("vertices", graph.vertices);
  dfs.Put("edges", graph.edges);

  JobPlan pg = PlanFor(EngineKind::kPowerGraph, **dag, schemas);
  EXPECT_EQ(pg.while_mode, WhileExec::kVertexRuntime);
  auto pg_res = ExecuteJob(pg, Ec2Cluster(16), &dfs, ExecutionContext{});
  ASSERT_TRUE(pg_res.ok());

  JobPlan spark = PlanFor(EngineKind::kSpark, **dag, schemas);
  EXPECT_EQ(spark.while_mode, WhileExec::kNativeLoop);
  auto spark_res = ExecuteJob(spark, Ec2Cluster(16), &dfs, ExecutionContext{});
  ASSERT_TRUE(spark_res.ok());
  EXPECT_LT(pg_res->makespan, spark_res->makespan);
}

TEST(EngineTest, SingleNodeGroupByQuirkIsExpensive) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer,
                           "o = AGG SUM(v) AS s FROM rel GROUP BY k;\n");
  ASSERT_TRUE(dag.ok());
  Dfs dfs;
  dfs.Put("rel", SmallKv(5e7));  // ~100 GB nominal
  SchemaMap schemas{{"rel", SmallKv(1)->schema()}};

  JobPlan fast = PlanFor(EngineKind::kNaiad, **dag, schemas);
  auto fast_res = ExecuteJob(fast, Ec2Cluster(100), &dfs, ExecutionContext{});
  ASSERT_TRUE(fast_res.ok());

  CodeGenOptions lindi;
  lindi.flavor = CodeGenOptions::Flavor::kNativeLindi;
  JobPlan slow = PlanFor(EngineKind::kNaiad, **dag, schemas, lindi);
  auto slow_res = ExecuteJob(slow, Ec2Cluster(100), &dfs, ExecutionContext{});
  ASSERT_TRUE(slow_res.ok());
  EXPECT_GT(slow_res->makespan, 3 * fast_res->makespan);
}

TEST(EngineTest, SharedScansReduceMakespan) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, R"(
    a = SELECT * FROM rel WHERE v > 10;
    b = SELECT k, v FROM a;
    c = MAP k, v * 2 AS v2 FROM b;
  )");
  ASSERT_TRUE(dag.ok());
  Dfs dfs;
  dfs.Put("rel", SmallKv(1e7));
  SchemaMap schemas{{"rel", SmallKv(1)->schema()}};

  JobPlan fused = PlanFor(EngineKind::kHadoop, **dag, schemas);
  auto fused_res = ExecuteJob(fused, LocalCluster(), &dfs, ExecutionContext{});
  ASSERT_TRUE(fused_res.ok());

  CodeGenOptions no_fusion;
  no_fusion.shared_scans = false;
  JobPlan unfused = PlanFor(EngineKind::kHadoop, **dag, schemas, no_fusion);
  auto unfused_res = ExecuteJob(unfused, LocalCluster(), &dfs, ExecutionContext{});
  ASSERT_TRUE(unfused_res.ok());
  EXPECT_GT(unfused_res->makespan, fused_res->makespan);
}

TEST(EngineTest, GraphChiInMemoryBoostOnSmallGraphs) {
  auto dag = ParseWorkflow(FrontendLanguage::kGas, PageRankGas(5));
  ASSERT_TRUE(dag.ok());

  GraphDataset small = OrkutGraph();  // ~2 GB nominal
  SchemaMap schemas{{"vertices", small.vertices->schema()},
                    {"edges", small.edges->schema()}};
  Dfs dfs;
  dfs.Put("vertices", small.vertices);
  dfs.Put("edges", small.edges);
  JobPlan plan = PlanFor(EngineKind::kGraphChi, **dag, schemas);
  auto small_res = ExecuteJob(plan, SingleMachine(), &dfs, ExecutionContext{});
  ASSERT_TRUE(small_res.ok());

  // Same structure, 20x nominal size: must be much more than 20x slower per
  // byte is NOT expected — but the out-of-core penalty means the large graph
  // loses the in-memory boost.
  auto big_edges = std::make_shared<Table>(*small.edges);
  big_edges->set_scale(small.edges->scale() * 20);
  Dfs dfs2;
  dfs2.Put("vertices", small.vertices);
  dfs2.Put("edges", big_edges);
  auto big_res = ExecuteJob(plan, SingleMachine(), &dfs2, ExecutionContext{});
  ASSERT_TRUE(big_res.ok());
  EXPECT_GT(big_res->makespan, 20 * small_res->makespan);
}

TEST(EngineTest, ExtraJobsQuirkAddsOverhead) {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer,
                           "o = SELECT * FROM rel WHERE v > 5;\n");
  ASSERT_TRUE(dag.ok());
  Dfs dfs;
  dfs.Put("rel", SmallKv(1000));
  SchemaMap schemas{{"rel", SmallKv(1)->schema()}};
  JobPlan plan = PlanFor(EngineKind::kHadoop, **dag, schemas);
  auto base = ExecuteJob(plan, LocalCluster(), &dfs, ExecutionContext{});
  ASSERT_TRUE(base.ok());

  plan.quirks.extra_jobs = 2;
  auto extra = ExecuteJob(plan, LocalCluster(), &dfs, ExecutionContext{});
  ASSERT_TRUE(extra.ok());
  EXPECT_NEAR(extra->makespan - base->makespan,
              2 * RatesFor(EngineKind::kHadoop).job_overhead_s, 1e-6);
}

}  // namespace
}  // namespace musketeer
