#include "tests/row_reference.h"

#include <algorithm>
#include <iterator>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/base/parallel.h"

// This file is the pre-columnar data plane, kept verbatim as a test oracle:
// the same kMorselRows chunking, the same pairwise merge trees, the same
// emission orders — only the storage behind each kernel is row-of-variants
// (materialized at the kernel boundary) instead of typed columns. Any
// divergence between these kernels and src/relational/ops.cc is a columnar
// migration bug, which is exactly what the Identical sweep exists to catch.

namespace musketeer {
namespace rowref {

namespace {

// Single-value wrappers for hash containers keyed by one column.
struct ValueHash {
  size_t operator()(const Value& v) const { return HashValue(v); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return ValuesEqual(a, b);
  }
};

// Fan-out of the partitioned hash-join build; must stay equal to the
// columnar plane's kJoinPartitions.
constexpr size_t kJoinPartitions = 64;

// Stable parallel merge sort: per-morsel stable_sort, then rounds of stable
// std::merge over adjacent runs (ties take the left run first). The result
// is the stable-sort permutation — unique for a given comparator — so it is
// identical to std::stable_sort over the whole range.
template <typename Less>
void ParallelStableSortRows(std::vector<Row>* rows, const Less& less) {
  const size_t n = rows->size();
  const size_t chunks = NumChunks(n, kMorselRows);
  if (chunks <= 1) {
    std::stable_sort(rows->begin(), rows->end(), less);
    return;
  }
  ParallelChunks(n, kMorselRows, [&](size_t, size_t begin, size_t end) {
    std::stable_sort(rows->begin() + begin, rows->begin() + end, less);
  });

  std::vector<size_t> bounds;
  bounds.reserve(chunks + 1);
  for (size_t c = 0; c < chunks; ++c) bounds.push_back(c * kMorselRows);
  bounds.push_back(n);

  std::vector<Row> tmp(n);
  std::vector<Row>* src = rows;
  std::vector<Row>* dst = &tmp;
  while (bounds.size() > 2) {
    const size_t runs = bounds.size() - 1;
    const size_t pairs = runs / 2;
    ParallelChunks(pairs, 1, [&](size_t p, size_t, size_t) {
      const size_t lo = bounds[2 * p];
      const size_t mid = bounds[2 * p + 1];
      const size_t hi = bounds[2 * p + 2];
      std::merge(std::make_move_iterator(src->begin() + lo),
                 std::make_move_iterator(src->begin() + mid),
                 std::make_move_iterator(src->begin() + mid),
                 std::make_move_iterator(src->begin() + hi),
                 dst->begin() + lo, less);
    });
    if (runs % 2 == 1) {  // odd run out: carry over unmerged
      std::move(src->begin() + bounds[runs - 1], src->begin() + bounds[runs],
                dst->begin() + bounds[runs - 1]);
    }
    std::vector<size_t> next;
    next.reserve(pairs + 2);
    for (size_t i = 0; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if (bounds.size() % 2 == 0) next.push_back(n);
    bounds = std::move(next);
    std::swap(src, dst);
  }
  if (src != rows) *rows = std::move(tmp);
}

Table FromRows(const Schema& schema, std::vector<Row>&& rows, double scale) {
  Table out(schema);
  out.set_scale(scale);
  out.Reserve(rows.size());
  out.AppendRows(std::move(rows));
  return out;
}

}  // namespace

Table SelectRows(const Table& in, const RowPredicate& pred) {
  const std::vector<Row> rows = in.MaterializeRows();
  auto parts = ParallelMapChunks<std::vector<Row>>(
      rows.size(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        std::vector<Row> kept;
        for (size_t i = begin; i < end; ++i) {
          if (pred(rows[i])) kept.push_back(rows[i]);
        }
        return kept;
      });
  Table out(in.schema());
  out.set_scale(in.scale());
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out.Reserve(total);
  for (auto& p : parts) out.AppendRows(std::move(p));
  return out;
}

StatusOr<Table> ProjectColumns(const Table& in, const std::vector<int>& columns) {
  Schema out_schema;
  for (int c : columns) {
    if (c < 0 || c >= static_cast<int>(in.schema().num_fields())) {
      return InvalidArgumentError("PROJECT column index " + std::to_string(c) +
                                  " out of range for schema " +
                                  in.schema().ToString());
    }
    out_schema.AddField(in.schema().field(c));
  }
  const std::vector<Row> rows = in.MaterializeRows();
  std::vector<Row> out_rows(rows.size());
  ParallelChunks(rows.size(), kMorselRows,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     Row r;
                     r.reserve(columns.size());
                     for (int c : columns) {
                       r.push_back(rows[i][c]);
                     }
                     out_rows[i] = std::move(r);
                   }
                 });
  return FromRows(out_schema, std::move(out_rows), in.scale());
}

Table MapRows(const Table& in, const Schema& out_schema,
              const std::vector<RowProjector>& projectors) {
  const std::vector<Row> rows = in.MaterializeRows();
  std::vector<Row> out_rows(rows.size());
  ParallelChunks(rows.size(), kMorselRows,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     Row r;
                     r.reserve(projectors.size());
                     for (const RowProjector& p : projectors) {
                       r.push_back(p(rows[i]));
                     }
                     out_rows[i] = std::move(r);
                   }
                 });
  return FromRows(out_schema, std::move(out_rows), in.scale());
}

StatusOr<Table> HashJoin(const Table& left, const Table& right, int lkey,
                         int rkey) {
  if (lkey < 0 || lkey >= static_cast<int>(left.schema().num_fields())) {
    return InvalidArgumentError("JOIN left key out of range");
  }
  if (rkey < 0 || rkey >= static_cast<int>(right.schema().num_fields())) {
    return InvalidArgumentError("JOIN right key out of range");
  }

  Schema out_schema;
  out_schema.AddField(left.schema().field(lkey));
  for (int c = 0; c < static_cast<int>(left.schema().num_fields()); ++c) {
    if (c != lkey) {
      out_schema.AddField(left.schema().field(c));
    }
  }
  for (int c = 0; c < static_cast<int>(right.schema().num_fields()); ++c) {
    if (c != rkey) {
      out_schema.AddField(right.schema().field(c));
    }
  }

  // Partitioned build over the right side: scatter row indices to
  // kJoinPartitions buckets per morsel, concatenate buckets in morsel order
  // (preserving right-row index order inside each partition), then build one
  // key → row-indices table per partition in parallel.
  const std::vector<Row> rrows = right.MaterializeRows();
  auto scattered = ParallelMapChunks<std::vector<std::vector<size_t>>>(
      rrows.size(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        std::vector<std::vector<size_t>> buckets(kJoinPartitions);
        for (size_t i = begin; i < end; ++i) {
          buckets[HashValue(rrows[i][rkey]) % kJoinPartitions].push_back(i);
        }
        return buckets;
      });

  using PartitionTable =
      std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq>;
  std::vector<PartitionTable> tables(kJoinPartitions);
  ParallelChunks(kJoinPartitions, 1, [&](size_t p, size_t, size_t) {
    size_t total = 0;
    for (const auto& chunk : scattered) total += chunk[p].size();
    PartitionTable& table = tables[p];
    table.reserve(total);
    for (const auto& chunk : scattered) {
      for (size_t ridx : chunk[p]) {
        table[rrows[ridx][rkey]].push_back(ridx);
      }
    }
  });

  // Probe in left-row order; a left row's matches emit in right-row index
  // order — the same fixed emission order as the columnar join.
  const std::vector<Row> lrows = left.MaterializeRows();
  auto parts = ParallelMapChunks<std::vector<Row>>(
      lrows.size(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        std::vector<Row> matched;
        for (size_t i = begin; i < end; ++i) {
          const Row& lrow = lrows[i];
          const PartitionTable& table =
              tables[HashValue(lrow[lkey]) % kJoinPartitions];
          auto it = table.find(lrow[lkey]);
          if (it == table.end()) continue;
          for (size_t ridx : it->second) {
            const Row& rrow = rrows[ridx];
            Row r;
            r.reserve(out_schema.num_fields());
            r.push_back(lrow[lkey]);
            for (int c = 0; c < static_cast<int>(lrow.size()); ++c) {
              if (c != lkey) {
                r.push_back(lrow[c]);
              }
            }
            for (int c = 0; c < static_cast<int>(rrow.size()); ++c) {
              if (c != rkey) {
                r.push_back(rrow[c]);
              }
            }
            matched.push_back(std::move(r));
          }
        }
        return matched;
      });

  Table out(out_schema);
  out.set_scale(std::max(left.scale(), right.scale()));
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out.Reserve(total);
  for (auto& p : parts) out.AppendRows(std::move(p));
  return out;
}

Table CrossJoin(const Table& left, const Table& right) {
  Schema out_schema;
  for (const Field& f : left.schema().fields()) {
    out_schema.AddField(f);
  }
  for (const Field& f : right.schema().fields()) {
    out_schema.AddField(f);
  }
  const std::vector<Row> lrows = left.MaterializeRows();
  const std::vector<Row> rrows = right.MaterializeRows();
  std::vector<Row> out_rows(lrows.size() * rrows.size());
  ParallelChunks(lrows.size(), kMorselRows,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     for (size_t j = 0; j < rrows.size(); ++j) {
                       Row r = lrows[i];
                       r.insert(r.end(), rrows[j].begin(), rrows[j].end());
                       out_rows[i * rrows.size() + j] = std::move(r);
                     }
                   }
                 });
  return FromRows(out_schema, std::move(out_rows),
                  std::max(left.scale(), right.scale()));
}

StatusOr<Table> UnionAll(const Table& a, const Table& b) {
  if (a.schema().num_fields() != b.schema().num_fields()) {
    return InvalidArgumentError("UNION arity mismatch: " + a.schema().ToString() +
                                " vs " + b.schema().ToString());
  }
  std::vector<Row> out_rows = a.MaterializeRows();
  std::vector<Row> b_rows = b.MaterializeRows();
  out_rows.insert(out_rows.end(), std::make_move_iterator(b_rows.begin()),
                  std::make_move_iterator(b_rows.end()));
  double scale;
  double total = static_cast<double>(a.num_rows() + b.num_rows());
  if (total > 0) {
    scale = (a.nominal_rows() + b.nominal_rows()) / total;
  } else {
    scale = std::max(a.scale(), b.scale());
  }
  return FromRows(a.schema(), std::move(out_rows), scale);
}

namespace {

// INTERSECT / DIFFERENCE share their shape: a parallel membership scan of
// `a` against a hash set of `b`, then a sequential first-occurrence dedup
// emitting in `a` order.
Table SetOpFilter(const Table& a, const Table& b, bool want_member) {
  const std::vector<Row> b_rows = b.MaterializeRows();
  std::unordered_set<Row, RowHash, RowEq> in_b(b_rows.begin(), b_rows.end());
  const std::vector<Row> rows = a.MaterializeRows();
  std::vector<uint8_t> keep(rows.size(), 0);
  ParallelChunks(rows.size(), kMorselRows,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     bool member = in_b.count(rows[i]) > 0;
                     keep[i] = (member == want_member) ? 1 : 0;
                   }
                 });
  std::unordered_set<Row, RowHash, RowEq> emitted;
  Table out(a.schema());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (keep[i] && emitted.insert(rows[i]).second) {
      out.AddRow(rows[i]);
    }
  }
  return out;
}

}  // namespace

StatusOr<Table> Intersect(const Table& a, const Table& b) {
  if (a.schema().num_fields() != b.schema().num_fields()) {
    return InvalidArgumentError("INTERSECT arity mismatch");
  }
  Table out = SetOpFilter(a, b, /*want_member=*/true);
  out.set_scale(std::max(a.scale(), b.scale()));
  return out;
}

StatusOr<Table> Difference(const Table& a, const Table& b) {
  if (a.schema().num_fields() != b.schema().num_fields()) {
    return InvalidArgumentError("DIFFERENCE arity mismatch");
  }
  Table out = SetOpFilter(a, b, /*want_member=*/false);
  out.set_scale(a.scale());
  return out;
}

Table Distinct(const Table& in) {
  const std::vector<Row> rows = in.MaterializeRows();
  // Chunk-local dedup (preserving chunk order), then a sequential global
  // dedup over the chunk survivors in chunk order — emission order equals
  // global first-occurrence order.
  auto parts = ParallelMapChunks<std::vector<Row>>(
      rows.size(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        std::unordered_set<Row, RowHash, RowEq> local;
        std::vector<Row> unique;
        for (size_t i = begin; i < end; ++i) {
          if (local.insert(rows[i]).second) unique.push_back(rows[i]);
        }
        return unique;
      });
  std::unordered_set<Row, RowHash, RowEq> seen;
  Table out(in.schema());
  out.set_scale(in.scale());
  for (auto& part : parts) {
    for (Row& row : part) {
      if (seen.insert(row).second) {
        out.AddRow(std::move(row));
      }
    }
  }
  return out;
}

namespace {

// Per-group running aggregate state; one slot per AggSpec.
struct Acc {
  std::vector<double> sums;
  std::vector<double> mins;
  std::vector<double> maxs;
  std::vector<int64_t> counts;
};

// Partial aggregation over one morsel: groups in first-occurrence order.
struct GroupPartial {
  std::unordered_map<Row, size_t, RowHash, RowEq> index;  // key → slot
  std::vector<Row> keys;                                  // slot → key
  std::vector<Acc> accs;
};

// Folds `b` into `a`. Groups new to `a` append in `b`'s slot order, so the
// merged first-occurrence order equals the first-occurrence order of the
// concatenated inputs; the per-slot combines form the FP summation tree.
void MergeGroupPartial(GroupPartial* a, GroupPartial&& b) {
  for (size_t slot = 0; slot < b.keys.size(); ++slot) {
    auto it = a->index.find(b.keys[slot]);
    if (it == a->index.end()) {
      a->index.emplace(b.keys[slot], a->keys.size());
      a->keys.push_back(std::move(b.keys[slot]));
      a->accs.push_back(std::move(b.accs[slot]));
      continue;
    }
    Acc& dst = a->accs[it->second];
    const Acc& src = b.accs[slot];
    for (size_t i = 0; i < dst.sums.size(); ++i) {
      dst.sums[i] += src.sums[i];
      dst.mins[i] = std::min(dst.mins[i], src.mins[i]);
      dst.maxs[i] = std::max(dst.maxs[i], src.maxs[i]);
      dst.counts[i] += src.counts[i];
    }
  }
}

}  // namespace

StatusOr<Table> GroupByAgg(const Table& in,
                           const std::vector<int>& group_columns,
                           const std::vector<AggSpec>& aggs) {
  for (int c : group_columns) {
    if (c < 0 || c >= static_cast<int>(in.schema().num_fields())) {
      return InvalidArgumentError("GROUP BY column out of range");
    }
  }
  for (const AggSpec& a : aggs) {
    if (a.fn == AggFn::kCount) {
      continue;
    }
    if (a.column < 0 || a.column >= static_cast<int>(in.schema().num_fields())) {
      return InvalidArgumentError("AGG column out of range");
    }
    if (in.schema().field(a.column).type == FieldType::kString) {
      return InvalidArgumentError(std::string(AggFnName(a.fn)) +
                                  " over STRING column '" +
                                  in.schema().field(a.column).name + "'");
    }
  }

  // Phase 1: thread-local partial aggregates, one per morsel. Every AggFn is
  // associative (AVG decomposes into (sum, count)), so partials combine.
  const std::vector<Row> rows = in.MaterializeRows();
  auto partials = ParallelMapChunks<GroupPartial>(
      rows.size(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        GroupPartial part;
        for (size_t i = begin; i < end; ++i) {
          const Row& row = rows[i];
          Row key;
          key.reserve(group_columns.size());
          for (int c : group_columns) {
            key.push_back(row[c]);
          }
          auto [it, inserted] = part.index.try_emplace(key, part.keys.size());
          if (inserted) {
            part.keys.push_back(std::move(key));
            Acc acc;
            acc.sums.assign(aggs.size(), 0.0);
            acc.mins.assign(aggs.size(), std::numeric_limits<double>::infinity());
            acc.maxs.assign(aggs.size(), -std::numeric_limits<double>::infinity());
            acc.counts.assign(aggs.size(), 0);
            part.accs.push_back(std::move(acc));
          }
          Acc& acc = part.accs[it->second];
          for (size_t i2 = 0; i2 < aggs.size(); ++i2) {
            acc.counts[i2] += 1;
            if (aggs[i2].fn == AggFn::kCount) {
              continue;
            }
            double v = AsDouble(row[aggs[i2].column]);
            acc.sums[i2] += v;
            acc.mins[i2] = std::min(acc.mins[i2], v);
            acc.maxs[i2] = std::max(acc.maxs[i2], v);
          }
        }
        return part;
      });

  // Phase 2: fixed pairwise merge tree over the partials (merge chunk
  // 2p+step into 2p each round). The tree shape depends only on the chunk
  // count, never the thread count — FP results are bit-stable.
  for (size_t step = 1; step < partials.size(); step *= 2) {
    size_t pairs = 0;
    for (size_t l = 0; l + step < partials.size(); l += 2 * step) ++pairs;
    ParallelChunks(pairs, 1, [&](size_t p, size_t, size_t) {
      const size_t l = 2 * step * p;
      MergeGroupPartial(&partials[l], std::move(partials[l + step]));
    });
  }

  Schema out_schema;
  for (int c : group_columns) {
    out_schema.AddField(in.schema().field(c));
  }
  for (const AggSpec& a : aggs) {
    FieldType t = FieldType::kDouble;
    if (a.fn == AggFn::kCount) {
      t = FieldType::kInt64;
    } else if (in.schema().field(a.column).type == FieldType::kInt64 &&
               (a.fn == AggFn::kSum || a.fn == AggFn::kMin || a.fn == AggFn::kMax)) {
      t = FieldType::kInt64;
    }
    out_schema.AddField({a.output_name, t});
  }

  std::vector<Row> out_rows;
  if (!partials.empty()) {
    GroupPartial& groups = partials[0];
    out_rows.resize(groups.keys.size());
    ParallelChunks(groups.keys.size(), kMorselRows,
                   [&](size_t, size_t begin, size_t end) {
      for (size_t g = begin; g < end; ++g) {
        const Acc& acc = groups.accs[g];
        Row r = std::move(groups.keys[g]);
        for (size_t i = 0; i < aggs.size(); ++i) {
          double v = 0;
          switch (aggs[i].fn) {
            case AggFn::kSum:
              v = acc.sums[i];
              break;
            case AggFn::kCount:
              v = static_cast<double>(acc.counts[i]);
              break;
            case AggFn::kMin:
              v = acc.mins[i];
              break;
            case AggFn::kMax:
              v = acc.maxs[i];
              break;
            case AggFn::kAvg:
              v = acc.counts[i] > 0
                      ? acc.sums[i] / static_cast<double>(acc.counts[i])
                      : 0;
              break;
          }
          FieldType t = out_schema.field(group_columns.size() + i).type;
          if (t == FieldType::kInt64) {
            r.push_back(static_cast<int64_t>(v));
          } else {
            r.push_back(v);
          }
        }
        out_rows[g] = std::move(r);
      }
    });
  }
  Table out = FromRows(out_schema, std::move(out_rows), in.scale());

  // Handle the empty-input global aggregate: SQL-ish engines return one row
  // of zero counts; the paper's operators never hit this edge, but tests do.
  if (group_columns.empty() && in.num_rows() == 0) {
    Row r;
    for (const AggSpec& a : aggs) {
      if (a.fn == AggFn::kCount) {
        r.push_back(static_cast<int64_t>(0));
      } else if (out_schema.field(r.size()).type == FieldType::kInt64) {
        r.push_back(static_cast<int64_t>(0));
      } else {
        r.push_back(0.0);
      }
    }
    out.AddRow(std::move(r));
  }
  return out;
}

StatusOr<Table> ExtremeRow(const Table& in, int column, bool take_max) {
  if (column < 0 || column >= static_cast<int>(in.schema().num_fields())) {
    return InvalidArgumentError("MIN/MAX column out of range");
  }
  Table out(in.schema());
  out.set_scale(1.0);
  if (in.num_rows() == 0) {
    return out;
  }
  const std::vector<Row> rows = in.MaterializeRows();
  RowLess less;
  // Total order on rows: (key, full-row tie-break); earlier row wins exact
  // duplicates. Per-chunk selection folded in chunk order equals the
  // sequential scan.
  auto better = [&](const Row& a, const Row& b) {
    int c = CompareValues(a[column], b[column]);
    bool strictly = take_max ? (c > 0) : (c < 0);
    return strictly || (c == 0 && less(a, b));
  };
  auto bests = ParallelMapChunks<size_t>(
      rows.size(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        size_t best = begin;
        for (size_t i = begin + 1; i < end; ++i) {
          if (better(rows[i], rows[best])) best = i;
        }
        return best;
      });
  size_t best = bests[0];
  for (size_t k = 1; k < bests.size(); ++k) {
    if (better(rows[bests[k]], rows[best])) best = bests[k];
  }
  out.AddRow(rows[best]);
  return out;
}

Table SortBy(const Table& in, const std::vector<int>& columns) {
  std::vector<Row> rows = in.MaterializeRows();
  ParallelStableSortRows(&rows, [&columns](const Row& a, const Row& b) {
    for (int c : columns) {
      int cmp = CompareValues(a[c], b[c]);
      if (cmp != 0) {
        return cmp < 0;
      }
    }
    return false;
  });
  return FromRows(in.schema(), std::move(rows), in.scale());
}

Table TopNBy(const Table& in, int column, size_t n) {
  std::vector<Row> rows = in.MaterializeRows();
  ParallelStableSortRows(&rows, [column](const Row& a, const Row& b) {
    return CompareValues(a[column], b[column]) > 0;
  });
  if (rows.size() > n) {
    rows.resize(n);
  }
  return FromRows(in.schema(), std::move(rows), in.scale());
}

// --- Row-based DAG interpreter -----------------------------------------

namespace {

StatusOr<Table> EvalGroupByLike(const OperatorNode& node, const Table& in) {
  std::vector<std::string> group_columns;
  std::vector<NamedAgg> aggs;
  if (node.kind == OpKind::kGroupBy) {
    const auto& p = std::get<GroupByParams>(node.params);
    group_columns = p.group_columns;
    aggs = p.aggs;
  } else {
    aggs = std::get<AggParams>(node.params).aggs;
  }
  std::vector<int> group_idx;
  for (const std::string& c : group_columns) {
    auto idx = in.schema().IndexOf(c);
    if (!idx.has_value()) {
      return InvalidArgumentError("GROUP BY: no column '" + c + "'");
    }
    group_idx.push_back(*idx);
  }
  std::vector<AggSpec> specs;
  for (const NamedAgg& a : aggs) {
    int col = 0;
    if (a.fn != AggFn::kCount) {
      auto idx = in.schema().IndexOf(a.column);
      if (!idx.has_value()) {
        return InvalidArgumentError("AGG: no column '" + a.column + "'");
      }
      col = *idx;
    }
    specs.push_back(AggSpec{a.fn, col, a.output_name});
  }
  return rowref::GroupByAgg(in, group_idx, specs);
}

}  // namespace

StatusOr<Table> EvaluateOperator(const OperatorNode& node,
                                 const std::vector<const Table*>& inputs) {
  switch (node.kind) {
    case OpKind::kInput:
    case OpKind::kWhile:
      return InternalError(std::string(OpKindName(node.kind)) +
                           " must be handled by the DAG executor");
    case OpKind::kSelect: {
      const auto& p = std::get<SelectParams>(node.params);
      MUSKETEER_ASSIGN_OR_RETURN(
          RowPredicate pred, p.condition->CompilePredicate(inputs[0]->schema()));
      return rowref::SelectRows(*inputs[0], pred);
    }
    case OpKind::kProject: {
      const auto& p = std::get<ProjectParams>(node.params);
      std::vector<int> cols;
      for (const std::string& c : p.columns) {
        auto idx = inputs[0]->schema().IndexOf(c);
        if (!idx.has_value()) {
          return InvalidArgumentError("PROJECT: no column '" + c + "' in " +
                                      inputs[0]->schema().ToString());
        }
        cols.push_back(*idx);
      }
      return rowref::ProjectColumns(*inputs[0], cols);
    }
    case OpKind::kMap: {
      const auto& p = std::get<MapParams>(node.params);
      Schema out_schema;
      std::vector<RowProjector> projectors;
      for (const NamedExpr& ne : p.outputs) {
        MUSKETEER_ASSIGN_OR_RETURN(FieldType t,
                                   ne.expr->InferType(inputs[0]->schema()));
        out_schema.AddField({ne.name, t});
        MUSKETEER_ASSIGN_OR_RETURN(RowProjector proj,
                                   ne.expr->Compile(inputs[0]->schema()));
        // Coerce to the inferred type so downstream type checks hold even
        // when a mixed int/double expression evaluates integral.
        if (t == FieldType::kDouble) {
          projectors.emplace_back(
              [proj](const Row& row) -> Value { return AsDouble(proj(row)); });
        } else {
          projectors.push_back(proj);
        }
      }
      return rowref::MapRows(*inputs[0], out_schema, projectors);
    }
    case OpKind::kJoin: {
      const auto& p = std::get<JoinParams>(node.params);
      auto li = inputs[0]->schema().IndexOf(p.left_key);
      auto ri = inputs[1]->schema().IndexOf(p.right_key);
      if (!li.has_value() || !ri.has_value()) {
        return InvalidArgumentError("JOIN: key column missing");
      }
      return rowref::HashJoin(*inputs[0], *inputs[1], *li, *ri);
    }
    case OpKind::kCrossJoin:
      return rowref::CrossJoin(*inputs[0], *inputs[1]);
    case OpKind::kUnion:
      return rowref::UnionAll(*inputs[0], *inputs[1]);
    case OpKind::kIntersect:
      return rowref::Intersect(*inputs[0], *inputs[1]);
    case OpKind::kDifference:
      return rowref::Difference(*inputs[0], *inputs[1]);
    case OpKind::kDistinct:
      return rowref::Distinct(*inputs[0]);
    case OpKind::kGroupBy:
    case OpKind::kAgg:
      return EvalGroupByLike(node, *inputs[0]);
    case OpKind::kMax:
    case OpKind::kMin: {
      const auto& p = std::get<ExtremeParams>(node.params);
      auto idx = inputs[0]->schema().IndexOf(p.column);
      if (!idx.has_value()) {
        return InvalidArgumentError("MAX/MIN: no column '" + p.column + "'");
      }
      return rowref::ExtremeRow(*inputs[0], *idx, node.kind == OpKind::kMax);
    }
    case OpKind::kTopN: {
      const auto& p = std::get<TopNParams>(node.params);
      auto idx = inputs[0]->schema().IndexOf(p.column);
      if (!idx.has_value()) {
        return InvalidArgumentError("TOP_N: no column '" + p.column + "'");
      }
      return rowref::TopNBy(*inputs[0], *idx, static_cast<size_t>(p.n));
    }
    case OpKind::kSort: {
      const auto& p = std::get<SortParams>(node.params);
      std::vector<int> cols;
      for (const std::string& c : p.columns) {
        auto idx = inputs[0]->schema().IndexOf(c);
        if (!idx.has_value()) {
          return InvalidArgumentError("SORT: no column '" + c + "'");
        }
        cols.push_back(*idx);
      }
      return rowref::SortBy(*inputs[0], cols);
    }
    case OpKind::kUdf: {
      const auto& p = std::get<UdfParams>(node.params);
      if (!p.fn) {
        return FailedPreconditionError("UDF '" + p.name + "' has no implementation");
      }
      return p.fn(inputs);
    }
    case OpKind::kBlackBox: {
      const auto& p = std::get<BlackBoxParams>(node.params);
      if (!p.fn) {
        return FailedPreconditionError("black-box operator has no simulation hook");
      }
      return p.fn(inputs);
    }
  }
  return InternalError("bad op kind");
}

StatusOr<TableMap> EvaluateDag(const Dag& dag, const TableMap& base) {
  TableMap relations = base;
  std::vector<TablePtr> by_node(dag.num_nodes());

  for (const OperatorNode& node : dag.nodes()) {
    if (node.kind == OpKind::kInput) {
      const auto& p = std::get<InputParams>(node.params);
      auto it = relations.find(p.relation);
      if (it == relations.end()) {
        return NotFoundError("base relation '" + p.relation + "' not provided");
      }
      by_node[node.id] = it->second;
      relations[node.output] = it->second;
      continue;
    }
    if (node.kind == OpKind::kWhile) {
      const auto& p = std::get<WhileParams>(node.params);
      // Seed loop-carried relations from the WHILE node's inputs; pass
      // loop-invariant extra inputs under their producing relation names.
      TableMap body_base = base;
      for (size_t i = 0; i < p.bindings.size(); ++i) {
        body_base[p.bindings[i].loop_input] = by_node[node.inputs[i]];
      }
      for (size_t i = p.bindings.size(); i < node.inputs.size(); ++i) {
        body_base[dag.node(node.inputs[i]).output] = by_node[node.inputs[i]];
      }
      TableMap iter_state;
      for (int64_t iter = 0; iter < p.iterations; ++iter) {
        MUSKETEER_ASSIGN_OR_RETURN(iter_state, rowref::EvaluateDag(*p.body, body_base));
        bool stable = p.until_fixpoint;
        for (const LoopBinding& b : p.bindings) {
          TablePtr next = iter_state[b.body_output];
          stable = stable && Table::SameContent(*body_base[b.loop_input], *next);
          body_base[b.loop_input] = std::move(next);
        }
        if (stable) {
          break;
        }
      }
      auto it = iter_state.find(p.result);
      if (it == iter_state.end()) {
        return InternalError("WHILE result relation '" + p.result + "' missing");
      }
      by_node[node.id] = it->second;
      relations[node.output] = it->second;
      continue;
    }
    std::vector<const Table*> inputs;
    inputs.reserve(node.inputs.size());
    for (int i : node.inputs) {
      inputs.push_back(by_node[i].get());
    }
    auto result = rowref::EvaluateOperator(node, inputs);
    if (!result.ok()) {
      return Status(result.status().code(),
                    node.DebugString() + ": " + result.status().message());
    }
    auto table = std::make_shared<Table>(std::move(result).value());
    by_node[node.id] = table;
    relations[node.output] = table;
  }
  return relations;
}

StatusOr<Table> EvaluateDagRelation(const Dag& dag, const TableMap& base,
                                    const std::string& name) {
  MUSKETEER_ASSIGN_OR_RETURN(TableMap all, rowref::EvaluateDag(dag, base));
  auto it = all.find(name);
  if (it == all.end()) {
    return NotFoundError("relation '" + name + "' not produced by the workflow");
  }
  return *it->second;
}

}  // namespace rowref
}  // namespace musketeer
