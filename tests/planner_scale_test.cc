// Planner-at-scale coverage (DESIGN.md "Planner at scale"): the synthetic
// DAG generator's exact-count/determinism contract, the DP heuristic's
// optimality gap against exhaustive search on small DAGs, the kAuto size
// switch, seeded multi-order DP determinism, online mid-run re-planning
// staying bit-identical across all nine evaluation workflows plus a
// 100-operator synthetic DAG, and the deprecated partitioner shims.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/core/musketeer.h"
#include "src/frontends/frontend.h"
#include "src/ir/eval.h"
#include "src/obs/runtime_history.h"
#include "src/scheduler/partition_strategy.h"
#include "src/workloads/synthetic_dag.h"
#include "tests/workflow_setups.h"

namespace musketeer {
namespace {

int OuterOperatorCount(const Dag& dag) {
  int count = 0;
  for (const auto& node : dag.nodes()) {
    if (node.kind != OpKind::kInput) {
      ++count;
    }
  }
  return count;
}

RelationSizes BaseSizes(const SyntheticDagWorkload& workload) {
  RelationSizes sizes;
  for (const auto& [name, table] : workload.inputs) {
    sizes[name] = table->nominal_bytes();
  }
  return sizes;
}

// Every generated program must parse, and to exactly the requested number
// of outer operators — the budget invariant the generator maintains while
// mixing motifs. Same spec, same program.
TEST(SyntheticDagTest, ExactOperatorCountAndDeterminism) {
  for (int target : {1, 3, 7, 40, 100, 250}) {
    for (uint64_t seed : {1ull, 2ull, 99ull}) {
      SyntheticDagSpec spec;
      spec.target_ops = target;
      spec.seed = seed;
      SyntheticDagWorkload workload = MakeSyntheticDag(spec);
      EXPECT_EQ(workload.operator_count, target)
          << "target " << target << " seed " << seed;
      auto dag = ParseWorkflow(FrontendLanguage::kBeer, workload.source);
      ASSERT_TRUE(dag.ok()) << dag.status() << "\n" << workload.source;
      EXPECT_EQ(OuterOperatorCount(**dag), target)
          << "target " << target << " seed " << seed << "\n"
          << workload.source;
      EXPECT_FALSE(workload.result_relation.empty());
      EXPECT_GE(workload.inputs.size(), 1u);

      SyntheticDagWorkload again = MakeSyntheticDag(spec);
      EXPECT_EQ(again.source, workload.source);
    }
  }
}

// Relational-only mode must hold the count without WHILE blocks too.
TEST(SyntheticDagTest, RelationalOnlyHoldsCount) {
  SyntheticDagSpec spec;
  spec.target_ops = 120;
  spec.seed = 7;
  spec.include_while = false;
  SyntheticDagWorkload workload = MakeSyntheticDag(spec);
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, workload.source);
  ASSERT_TRUE(dag.ok()) << dag.status();
  EXPECT_EQ(OuterOperatorCount(**dag), 120);
  EXPECT_EQ(workload.source.find("WHILE"), std::string::npos);
}

// §5.1.2 optimality gap: on DAGs small enough for the exhaustive search,
// the DP heuristic's plan must stay within 1.5x of the exhaustive optimum
// (the paper's DP is near-optimal on its evaluation workflows; this sweeps
// seeded shapes). The gate is one-directional: the exhaustive search only
// grows connected jobs, while the DP may merge adjacent-but-disconnected
// operators of its linear order into one job, so on fan-out-heavy shapes
// the DP can legitimately come in cheaper than the connected optimum.
TEST(PlannerScaleTest, DpWithinFactorOfExhaustive) {
  for (int target : {6, 8, 10}) {
    for (uint64_t seed : {11ull, 22ull}) {
      SyntheticDagSpec spec;
      spec.target_ops = target;
      spec.seed = seed;
      SyntheticDagWorkload workload = MakeSyntheticDag(spec);
      auto dag = ParseWorkflow(FrontendLanguage::kBeer, workload.source);
      ASSERT_TRUE(dag.ok()) << dag.status();
      CostModel model(Ec2Cluster(16), nullptr, "syn");
      auto sizes = model.PredictSizes(**dag, BaseSizes(workload));
      ASSERT_TRUE(sizes.ok()) << sizes.status();

      PlannerConfig config;
      config.strategy = PartitionStrategyKind::kExhaustive;
      auto optimal = PartitionWorkflow(**dag, model, *sizes, config);
      ASSERT_TRUE(optimal.ok()) << optimal.status();
      config.strategy = PartitionStrategyKind::kDp;
      auto dp = PartitionWorkflow(**dag, model, *sizes, config);
      ASSERT_TRUE(dp.ok()) << dp.status();

      EXPECT_LE(dp->total_cost, 1.5 * optimal->total_cost + 1e-9)
          << "target " << target << " seed " << seed;
    }
  }
}

// The kAuto switch: exhaustive below the threshold, DP above it — the
// production default must never run the exponential search on a big DAG.
TEST(PlannerScaleTest, AutoSwitchesToDpAboveThreshold) {
  auto partition_auto = [](int target) {
    SyntheticDagSpec spec;
    spec.target_ops = target;
    spec.seed = 5;
    SyntheticDagWorkload workload = MakeSyntheticDag(spec);
    auto dag = ParseWorkflow(FrontendLanguage::kBeer, workload.source);
    EXPECT_TRUE(dag.ok()) << dag.status();
    CostModel model(Ec2Cluster(16), nullptr, "syn");
    auto sizes = model.PredictSizes(**dag, BaseSizes(workload));
    EXPECT_TRUE(sizes.ok()) << sizes.status();
    PlannerConfig config;  // kAuto
    auto out = PartitionWorkflow(**dag, model, *sizes, config);
    EXPECT_TRUE(out.ok()) << out.status();
    return std::move(out).value();
  };

  Partitioning small = partition_auto(8);
  EXPECT_EQ(small.strategy, "exhaustive");
  EXPECT_TRUE(small.used_exhaustive);

  Partitioning large = partition_auto(40);
  EXPECT_EQ(large.strategy, "dp");
  EXPECT_FALSE(large.used_exhaustive);
}

// §8/Fig. 16 multi-order DP: seeded shuffles make the whole search a pure
// function of the seed (bit-identical partitionings run to run), and the
// canonical order is always explored, so more orders can only help.
TEST(PlannerScaleTest, MultiOrderIsDeterministicAndNoWorseThanSingle) {
  SyntheticDagSpec spec;
  spec.target_ops = 30;
  spec.seed = 17;
  SyntheticDagWorkload workload = MakeSyntheticDag(spec);
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, workload.source);
  ASSERT_TRUE(dag.ok()) << dag.status();
  CostModel model(Ec2Cluster(16), nullptr, "syn");
  auto sizes = model.PredictSizes(**dag, BaseSizes(workload));
  ASSERT_TRUE(sizes.ok()) << sizes.status();

  PlannerConfig config;
  config.strategy = PartitionStrategyKind::kDpMultiOrder;
  config.dp_linear_orders = 6;
  auto first = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(second.ok()) << second.status();

  ASSERT_EQ(first->jobs.size(), second->jobs.size());
  for (size_t i = 0; i < first->jobs.size(); ++i) {
    EXPECT_EQ(first->jobs[i].ops, second->jobs[i].ops) << "job " << i;
    EXPECT_EQ(first->jobs[i].engine, second->jobs[i].engine) << "job " << i;
  }
  EXPECT_DOUBLE_EQ(first->total_cost, second->total_cost);

  config.strategy = PartitionStrategyKind::kDp;
  auto single = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(single.ok()) << single.status();
  EXPECT_LE(first->total_cost, single->total_cost + 1e-9);

  // A different seed still yields a valid partitioning covering every op.
  config.strategy = PartitionStrategyKind::kDpMultiOrder;
  config.dp_order_seed = 0xdeadbeef;
  auto reseeded = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(reseeded.ok()) << reseeded.status();
  std::set<int> covered;
  for (const JobAssignment& job : reseeded->jobs) {
    covered.insert(job.ops.begin(), job.ops.end());
  }
  EXPECT_EQ(static_cast<int>(covered.size()), OuterOperatorCount(**dag));
}

// The DP must stay interactive at production scale: a 1000-operator DAG
// partitions into a valid, covering job set (the latency gate itself lives
// in bench_partitioner_scale / check.sh).
TEST(PlannerScaleTest, ThousandOperatorDagPartitions) {
  SyntheticDagSpec spec;
  spec.target_ops = 1000;
  spec.seed = 3;
  SyntheticDagWorkload workload = MakeSyntheticDag(spec);
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, workload.source);
  ASSERT_TRUE(dag.ok()) << dag.status();
  CostModel model(Ec2Cluster(16), nullptr, "syn");
  auto sizes = model.PredictSizes(**dag, BaseSizes(workload));
  ASSERT_TRUE(sizes.ok()) << sizes.status();
  PlannerConfig config;  // kAuto -> DP at this size
  auto out = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->strategy, "dp");
  std::set<int> covered;
  for (const JobAssignment& job : out->jobs) {
    covered.insert(job.ops.begin(), job.ops.end());
  }
  EXPECT_EQ(static_cast<int>(covered.size()), 1000);
  EXPECT_GT(out->jobs.size(), 1u);
}

// Online re-planning end to end: force a mid-run re-plan (threshold below
// the >= 1 error ratio, so the first measured job always trips it) and
// assert the outputs stay BIT-identical to the undisturbed run on every
// evaluation workflow. Regrouping moves job boundaries, never bytes.
TEST(ReplanningTest, NineWorkflowsStayIdenticalUnderForcedReplan) {
  int replans_observed = 0;
  for (Wf wf : kAllWorkflows) {
    WfSetup setup = MakeSetup(wf);

    auto run = [&](bool replan) {
      Dfs dfs;
      for (const auto& [name, table] : setup.inputs) {
        dfs.Put(name, table);
      }
      Musketeer m(&dfs);
      RunOptions options;
      options.cluster = Ec2Cluster(16);
      // Unmerged plans have one job per operator, so every workflow has
      // enough remaining jobs after the first fold for a re-plan to fire.
      options.planner.enable_merging = false;
      RuntimeHistory history;
      if (replan) {
        options.runtime_history = &history;
        // ErrorRatio is >= 1 by construction, so any threshold below 1
        // trips after the first measured job.
        options.planner.replan_threshold = 0.5;
        options.planner.max_replans = 2;
      }
      auto result = m.Run(setup.workflow, options);
      EXPECT_TRUE(result.ok()) << WfName(wf) << ": " << result.status();
      return result;
    };

    auto baseline = run(false);
    auto replanned = run(true);
    if (!baseline.ok() || !replanned.ok()) {
      continue;
    }
    ASSERT_EQ(baseline->outputs.count(setup.result_relation), 1u);
    ASSERT_EQ(replanned->outputs.count(setup.result_relation), 1u);
    EXPECT_TRUE(Table::Identical(*baseline->outputs[setup.result_relation],
                                 *replanned->outputs[setup.result_relation]))
        << WfName(wf) << " diverged under forced re-planning";
    EXPECT_EQ(baseline->replans, 0);
    replans_observed += replanned->replans;
  }
  // At least one of the nine workflows has enough remaining jobs after the
  // first fold for a re-plan to actually fire.
  EXPECT_GT(replans_observed, 0);
}

// Same contract on a 100-operator synthetic DAG, where the job list is long
// enough that the re-plan definitely fires and is surfaced in RunResult.
TEST(ReplanningTest, SyntheticDagReplansAndStaysIdentical) {
  SyntheticDagSpec spec;
  spec.target_ops = 100;
  spec.seed = 21;
  SyntheticDagWorkload workload = MakeSyntheticDag(spec);
  WorkflowSpec wf{"synthetic-100", FrontendLanguage::kBeer, workload.source};

  auto run = [&](double threshold) {
    Dfs dfs;
    for (const auto& [name, table] : workload.inputs) {
      dfs.Put(name, table);
    }
    Musketeer m(&dfs);
    RunOptions options;
    options.cluster = Ec2Cluster(16);
    RuntimeHistory history;
    if (threshold > 0) {
      options.runtime_history = &history;
      options.planner.replan_threshold = threshold;
      options.planner.max_replans = 3;
    }
    auto result = m.Run(wf, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return result;
  };

  auto baseline = run(0);
  auto replanned = run(0.5);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(replanned.ok());
  ASSERT_EQ(baseline->outputs.count(workload.result_relation), 1u);
  ASSERT_EQ(replanned->outputs.count(workload.result_relation), 1u);
  EXPECT_GT(replanned->replans, 0);
  EXPECT_FALSE(replanned->partition_strategy.empty());
  EXPECT_TRUE(Table::Identical(*baseline->outputs[workload.result_relation],
                               *replanned->outputs[workload.result_relation]));
  // The reference interpreter agrees with both.
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, workload.source);
  ASSERT_TRUE(dag.ok()) << dag.status();
  TableMap base;
  for (const auto& [name, table] : workload.inputs) {
    base[name] = table;
  }
  auto expected = EvaluateDagRelation(**dag, base, workload.result_relation);
  ASSERT_TRUE(expected.ok()) << expected.status();
  EXPECT_TRUE(Table::SameContent(*expected,
                                 *baseline->outputs[workload.result_relation]));
}

}  // namespace
}  // namespace musketeer

// Deprecated-shim compatibility (removed next PR with partitioner.h): the
// legacy free functions must keep producing exactly what the strategy
// registry produces.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include "src/scheduler/partitioner.h"

namespace musketeer {
namespace {

TEST(DeprecatedShimTest, FreeFunctionsMatchStrategyRegistry) {
  SyntheticDagSpec spec;
  spec.target_ops = 9;
  spec.seed = 4;
  SyntheticDagWorkload workload = MakeSyntheticDag(spec);
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, workload.source);
  ASSERT_TRUE(dag.ok()) << dag.status();
  CostModel model(Ec2Cluster(16), nullptr, "syn");
  auto sizes = model.PredictSizes(**dag, BaseSizes(workload));
  ASSERT_TRUE(sizes.ok()) << sizes.status();

  auto same = [](const Partitioning& a, const Partitioning& b) {
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (size_t i = 0; i < a.jobs.size(); ++i) {
      EXPECT_EQ(a.jobs[i].ops, b.jobs[i].ops);
      EXPECT_EQ(a.jobs[i].engine, b.jobs[i].engine);
    }
    EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  };

  auto legacy_dp = PartitionDp(**dag, model, *sizes);
  ASSERT_TRUE(legacy_dp.ok());
  PlannerConfig config;
  config.strategy = PartitionStrategyKind::kDp;
  auto new_dp = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(new_dp.ok());
  same(*legacy_dp, *new_dp);

  auto legacy_ex = PartitionExhaustive(**dag, model, *sizes);
  ASSERT_TRUE(legacy_ex.ok());
  config.strategy = PartitionStrategyKind::kExhaustive;
  auto new_ex = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(new_ex.ok());
  same(*legacy_ex, *new_ex);

  auto legacy_auto = PartitionDag(**dag, model, *sizes);
  ASSERT_TRUE(legacy_auto.ok());
  config.strategy = PartitionStrategyKind::kAuto;
  auto new_auto = PartitionWorkflow(**dag, model, *sizes, config);
  ASSERT_TRUE(new_auto.ok());
  same(*legacy_auto, *new_auto);
}

}  // namespace
}  // namespace musketeer
#pragma GCC diagnostic pop
