// Observability subsystem tests: metrics registry, span tracer + Chrome
// trace export, measured-runtime history, and the two end-to-end acceptance
// properties — a 2-job workflow emits a valid Chrome trace with spans for
// every pipeline stage and engine job, and running the same workflow twice
// through the service shrinks the cost model's predicted-vs-measured job
// runtime error (the calibration loop).

#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/json.h"
#include "src/obs/metrics.h"
#include "src/obs/runtime_history.h"
#include "src/obs/trace.h"
#include "src/service/service.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

namespace musketeer {
namespace {

// ---- Metrics ---------------------------------------------------------------

TEST(MetricsTest, CounterSumsAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(MetricsTest, GaugeLastWriterWins) {
  Gauge g;
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.Value(), -1.25);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (bounds are inclusive upper)
  h.Observe(5.0);    // <= 10
  h.Observe(1000.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 0u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // overflow bucket
}

TEST(MetricsTest, RegistryReturnsStableReferencesAndDumps) {
  MetricsRegistry reg;
  Counter& a = reg.counter("musketeer.test.alpha");
  Counter& a2 = reg.counter("musketeer.test.alpha");
  EXPECT_EQ(&a, &a2);
  a.Increment(3);
  reg.gauge("musketeer.test.depth").Set(7);
  reg.histogram("musketeer.test.lat", {0.1, 1.0}).Observe(0.05);

  const std::string dump = reg.DumpText();
  EXPECT_NE(dump.find("musketeer.test.alpha 3"), std::string::npos) << dump;
  EXPECT_NE(dump.find("musketeer.test.depth 7"), std::string::npos) << dump;
  EXPECT_NE(dump.find("musketeer.test.lat count=1"), std::string::npos) << dump;
}

// ---- Tracer ----------------------------------------------------------------

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(false);
  tracer.Clear();
  size_t before = tracer.span_count();
  {
    Span span("should-not-record");
    EXPECT_FALSE(span.active());
    span.SetAttr("ignored", "x");
  }
  EXPECT_EQ(tracer.span_count(), before);
}

TEST(TracerTest, NestedSpansLinkParents) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Enable(true);
  {
    Span outer("outer", "test");
    {
      Span inner("inner", "test");
      inner.SetAttr("k", "v");
    }
  }
  tracer.Enable(false);

  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Snapshot orders by start time: outer starts first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_GE(spans[0].dur_us, spans[1].dur_us);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_EQ(spans[1].attrs[0].first, "k");
  tracer.Clear();
}

TEST(TracerTest, ChromeExportIsValidJson) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Enable(true);
  {
    Span span("export\"me", "test");  // name needing escaping
    span.SetAttr("detail", "line1\nline2");
  }
  tracer.Enable(false);

  const std::string path = "obs_tracer_export_test.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 1u);
  const JsonValue& e = events->array[0];
  EXPECT_EQ(e.Find("name")->string_value, "export\"me");
  EXPECT_EQ(e.Find("ph")->string_value, "X");
  EXPECT_TRUE(e.Find("ts")->is_number());
  EXPECT_TRUE(e.Find("dur")->is_number());
  EXPECT_EQ(e.Find("args")->Find("detail")->string_value, "line1\nline2");
  tracer.Clear();
}

// ---- RuntimeHistory --------------------------------------------------------

TEST(RuntimeHistoryTest, PredictionFallsBackByGranularity) {
  RuntimeHistory rh;
  // No history: prediction is the raw simulated value.
  EXPECT_DOUBLE_EQ(rh.PredictWallSeconds("wf", "jobA@Spark", "Spark", 10.0),
                   10.0);

  // Engine-level: one Hadoop job measured at 2 wall per 100 sim -> alpha .02.
  rh.RecordJob("wf", "jobB@Hadoop", "Hadoop", 100.0, 2.0);
  EXPECT_DOUBLE_EQ(rh.PredictWallSeconds("wf", "other@Hadoop", "Hadoop", 50.0),
                   1.0);
  // Unknown engine uses the global alpha.
  EXPECT_DOUBLE_EQ(rh.PredictWallSeconds("wf", "jobA@Spark", "Spark", 50.0),
                   1.0);
  // Exact signature beats both: returns the measured mean regardless of sim.
  EXPECT_DOUBLE_EQ(
      rh.PredictWallSeconds("wf", "jobB@Hadoop", "Hadoop", 999.0), 2.0);

  RuntimeCalibration cal = rh.Calibration();
  EXPECT_TRUE(cal.has_observations);
  EXPECT_DOUBLE_EQ(cal.TimeScale("Hadoop"), 0.02);
  EXPECT_DOUBLE_EQ(cal.TimeScale("never-seen"), 0.02);  // global fallback
  EXPECT_EQ(rh.total_jobs(), 1);
}

TEST(RuntimeHistoryTest, ConcurrentRecordsAllLand) {
  RuntimeHistory rh;
  constexpr int kThreads = 8;
  constexpr int kJobs = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kJobs; ++i) {
        rh.RecordJob("wf", "job" + std::to_string(t), "Spark", 1.0, 0.5);
        (void)rh.PredictWallSeconds("wf", "job0", "Spark", 1.0);
        (void)rh.Calibration();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rh.total_jobs(), kThreads * kJobs);
  EXPECT_DOUBLE_EQ(rh.Calibration().TimeScale("Spark"), 0.5);
}

// ---- End-to-end acceptance -------------------------------------------------

void SeedDfs(Dfs* dfs) {
  GraphSpec spec;
  spec.name = "obs-graph";
  spec.nominal_vertices = 50000;
  spec.nominal_edges = 400000;
  spec.sample_vertices = 300;
  GraphDataset graph = MakePowerLawGraph(spec);
  dfs->Put("vertices_rel", graph.vertices);
  dfs->Put("edges_rel", graph.edges);
  dfs->Put("purchases", MakePurchases(/*nominal_rows=*/1e6, /*sample_rows=*/2000,
                                      /*num_regions=*/8, /*seed=*/3));
}

WorkflowSpec TopShopperSpec() {
  return {.id = "obs-topshopper",
          .language = FrontendLanguage::kBeer,
          .source = TopShopperBeer(/*region=*/2, /*threshold=*/50.0)};
}

// Acceptance: a multi-job workflow executed through the service produces a
// Chrome trace-event file containing at least one span per pipeline stage
// and one job span per engine job.
TEST(ObservabilityEndToEndTest, TraceCoversStagesAndJobs) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Enable(true);

  Dfs dfs;
  SeedDfs(&dfs);
  ServiceConfig config;
  config.num_workers = 1;
  // Per-operator jobs: guarantees the workflow splits into >= 2 engine jobs.
  config.default_options.planner.enable_merging = false;
  config.default_options.planner.strategy = PartitionStrategyKind::kDp;
  WorkflowService service(&dfs, config);

  WorkflowHandle h = service.Submit(TopShopperSpec());
  h->Wait();
  service.Shutdown();
  tracer.Enable(false);
  ASSERT_EQ(h->state(), WorkflowState::kDone) << h->result().status();
  const size_t num_jobs = h->result()->plans.size();
  ASSERT_GE(num_jobs, 2u);

  const std::string path = "obs_trace_e2e_test.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[8192];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::multiset<std::string> names;
  size_t job_spans = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    ASSERT_TRUE(name->is_string());
    names.insert(name->string_value);
    const JsonValue* cat = e.Find("cat");
    ASSERT_NE(cat, nullptr);
    if (cat->string_value == "job") {
      ++job_spans;
    }
    // Every event is a well-formed complete event.
    EXPECT_EQ(e.Find("ph")->string_value, "X");
    EXPECT_TRUE(e.Find("ts")->is_number());
    EXPECT_TRUE(e.Find("dur")->is_number());
  }
  // One span per pipeline stage...
  for (const char* stage : {"stage.parse", "stage.optimize", "stage.partition",
                            "stage.codegen", "stage.execute"}) {
    EXPECT_GE(names.count(stage), 1u) << stage;
  }
  // ...one per engine job, plus the service envelope span.
  EXPECT_GE(job_spans, num_jobs);
  EXPECT_GE(names.count("service.workflow"), 1u);
  tracer.Clear();
}

// Acceptance: the calibration loop. Run 1 predicts job wall time from raw
// simulated seconds (wrong by orders of magnitude); run 2 predicts from the
// measured history and must shrink the mean relative error substantially.
TEST(ObservabilityEndToEndTest, CalibrationShrinksPredictionError) {
  Dfs dfs;
  SeedDfs(&dfs);
  RuntimeHistory runtime_history;
  ServiceConfig config;
  config.num_workers = 1;
  config.default_options.runtime_history = &runtime_history;
  WorkflowService service(&dfs, config);

  WorkflowHandle first = service.Submit(TopShopperSpec());
  first->Wait();
  ASSERT_EQ(first->state(), WorkflowState::kDone) << first->result().status();
  WorkflowHandle second = service.Submit(TopShopperSpec());
  second->Wait();
  ASSERT_EQ(second->state(), WorkflowState::kDone)
      << second->result().status();

  const RunResult& r1 = *first->result();
  const RunResult& r2 = *second->result();
  EXPECT_GT(r1.measured_wall_seconds, 0);
  EXPECT_GT(r2.measured_wall_seconds, 0);
  // Run 1 had no history: predictions are simulated seconds, off by orders
  // of magnitude from the in-process wall clock.
  EXPECT_GT(r1.cost_model_error, 1.0);
  // Run 2 predicted each job from its measured runtime: the error must
  // collapse. 0.5 is a deliberately loose bound — the observed drop is
  // several orders of magnitude; wall-clock jitter cannot approach it.
  EXPECT_LT(r2.cost_model_error, r1.cost_model_error * 0.5)
      << "run1 err " << r1.cost_model_error << " run2 err "
      << r2.cost_model_error;
  EXPECT_EQ(runtime_history.total_jobs(),
            static_cast<int>(r1.job_results.size() + r2.job_results.size()));
}

}  // namespace
}  // namespace musketeer
