// Tokenizer tests shared by all four front-ends.

#include "src/frontends/lexer.h"

#include <gtest/gtest.h>

namespace musketeer {
namespace {

std::vector<Token> MustTokenize(const std::string& src) {
  auto tokens = Tokenize(src);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return std::move(tokens).value();
}

TEST(LexerTest, IdentifiersNumbersStrings) {
  auto tokens = MustTokenize("foo _bar2 42 3.14 1e3 'hi there' \"quoted\"");
  ASSERT_EQ(tokens.size(), 8u);  // incl. end sentinel
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[1].text, "_bar2");
  EXPECT_EQ(tokens[2].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[2].int_value, 42);
  EXPECT_EQ(tokens[3].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 3.14);
  EXPECT_EQ(tokens[4].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 1000.0);
  EXPECT_EQ(tokens[5].kind, TokenKind::kString);
  EXPECT_EQ(tokens[5].text, "hi there");
  EXPECT_EQ(tokens[6].text, "quoted");
  EXPECT_EQ(tokens[7].kind, TokenKind::kEnd);
}

TEST(LexerTest, MultiCharSymbols) {
  auto tokens = MustTokenize("<= >= != == => -> < > =");
  EXPECT_EQ(tokens[0].text, "<=");
  EXPECT_EQ(tokens[1].text, ">=");
  EXPECT_EQ(tokens[2].text, "!=");
  EXPECT_EQ(tokens[3].text, "==");
  EXPECT_EQ(tokens[4].text, "=>");
  EXPECT_EQ(tokens[5].text, "->");
  EXPECT_EQ(tokens[6].text, "<");
  EXPECT_EQ(tokens[7].text, ">");
  EXPECT_EQ(tokens[8].text, "=");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = MustTokenize("a # comment to end\nb -- another\nc");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, LineNumbersTracked) {
  auto tokens = MustTokenize("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(LexerTest, ErrorsOnUnterminatedString) {
  EXPECT_FALSE(Tokenize("x = 'oops").ok());
}

TEST(LexerTest, ErrorsOnUnknownCharacter) {
  auto status = Tokenize("a @ b");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.status().message().find("'@'"), std::string::npos);
}

TEST(LexerTest, KeywordMatchingIsCaseInsensitive) {
  auto tokens = MustTokenize("select SeLeCt SELECT");
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[2].IsKeyword("select"));
  EXPECT_FALSE(tokens[2].IsKeyword("SELEC"));
}

TEST(TokenCursorTest, ExpectAndConsume) {
  auto tokens = MustTokenize("a = ( b )");
  TokenCursor cursor(std::move(tokens));
  auto id = cursor.ExpectIdentifier("name");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, "a");
  EXPECT_TRUE(cursor.ConsumeSymbol("="));
  EXPECT_FALSE(cursor.ConsumeSymbol("="));
  EXPECT_TRUE(cursor.ExpectSymbol("(").ok());
  EXPECT_TRUE(cursor.ConsumeKeyword("b"));
  EXPECT_TRUE(cursor.ExpectSymbol(")").ok());
  EXPECT_TRUE(cursor.AtEnd());
  // Reading past the end stays at the sentinel.
  EXPECT_EQ(cursor.Next().kind, TokenKind::kEnd);
  EXPECT_EQ(cursor.Peek().kind, TokenKind::kEnd);
}

TEST(TokenCursorTest, ErrorMessagesNameLineAndToken) {
  auto tokens = MustTokenize("x\ny");
  TokenCursor cursor(std::move(tokens));
  cursor.Next();
  Status err = cursor.ErrorHere("expected something");
  EXPECT_NE(err.message().find("line 2"), std::string::npos);
  EXPECT_NE(err.message().find("'y'"), std::string::npos);
}

}  // namespace
}  // namespace musketeer
