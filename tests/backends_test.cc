// Back-end tests: operator support matrices, mergeability rules, job
// extraction, code generation and the pricing formula.

#include "src/backends/backend.h"

#include <gtest/gtest.h>

#include "src/backends/codegen.h"
#include "src/backends/pricing.h"
#include "src/frontends/frontend.h"

namespace musketeer {
namespace {

std::unique_ptr<Dag> MaxPropertyPriceDag() {
  auto dag = ParseWorkflow(FrontendLanguage::kBeer, R"(
    locs = SELECT id, street, town FROM properties;
    id_price = JOIN locs, prices ON locs.id = prices.id;
    street_price = AGG MAX(price) AS max_price FROM id_price
                   GROUP BY street, town;
  )");
  EXPECT_TRUE(dag.ok()) << dag.status();
  return std::move(dag).value();
}

std::vector<int> NonInputOps(const Dag& dag) {
  std::vector<int> ops;
  for (const auto& n : dag.nodes()) {
    if (n.kind != OpKind::kInput) {
      ops.push_back(n.id);
    }
  }
  return ops;
}

SchemaMap PropertySchemas() {
  return {{"properties",
           Schema({{"id", FieldType::kInt64},
                   {"street", FieldType::kString},
                   {"town", FieldType::kString}})},
          {"prices",
           Schema({{"id", FieldType::kInt64}, {"price", FieldType::kDouble}})}};
}

TEST(BackendTest, MapReduceAllowsOneShufflePerJob) {
  auto dag = MaxPropertyPriceDag();
  std::vector<int> ops = NonInputOps(*dag);  // PROJECT, JOIN, GROUP BY
  ASSERT_EQ(ops.size(), 3u);

  const Backend& hadoop = BackendFor(EngineKind::kHadoop);
  // JOIN + GROUP BY = two repartitionings: not a single MapReduce job.
  EXPECT_FALSE(hadoop.CanRunAsSingleJob(*dag, ops));
  // PROJECT + JOIN merges fine.
  EXPECT_TRUE(hadoop.CanRunAsSingleJob(*dag, {ops[0], ops[1]}));
  EXPECT_TRUE(hadoop.CanMerge(*dag, ops[0], ops[1]));
  EXPECT_FALSE(hadoop.CanMerge(*dag, ops[1], ops[2]));

  // General-purpose engines run the whole thing in one job.
  EXPECT_TRUE(BackendFor(EngineKind::kSpark).CanRunAsSingleJob(*dag, ops));
  EXPECT_TRUE(BackendFor(EngineKind::kNaiad).CanRunAsSingleJob(*dag, ops));
  EXPECT_TRUE(BackendFor(EngineKind::kSerialC).CanRunAsSingleJob(*dag, ops));
  // Metis is MapReduce too.
  EXPECT_FALSE(BackendFor(EngineKind::kMetis).CanRunAsSingleJob(*dag, ops));
}

TEST(BackendTest, GraphEnginesOnlyRunTheIdiom) {
  auto dag = MaxPropertyPriceDag();
  std::vector<int> ops = NonInputOps(*dag);
  const Backend& pg = BackendFor(EngineKind::kPowerGraph);
  for (int op : ops) {
    EXPECT_FALSE(pg.SupportsOperator(*dag, op));
  }

  auto graph_dag = ParseWorkflow(FrontendLanguage::kGas, R"(
    GATHER = { SUM (vertex_value) }
    APPLY = { MUL [vertex_value, 0.85] SUM [vertex_value, 0.15] }
    SCATTER = { DIV [vertex_value, vertex_degree] }
    ITERATION_STOP = (iteration < 5)
  )");
  ASSERT_TRUE(graph_dag.ok());
  int while_id = (*graph_dag)->ProducerOf("gas_result");
  EXPECT_TRUE(pg.SupportsOperator(**graph_dag, while_id));
  EXPECT_TRUE(pg.CanRunAsSingleJob(**graph_dag, {while_id}));
  EXPECT_TRUE(
      BackendFor(EngineKind::kGraphChi).CanRunAsSingleJob(**graph_dag, {while_id}));
}

TEST(BackendTest, ExtractJobDagComputesInputsAndOutputs) {
  auto dag = MaxPropertyPriceDag();
  std::vector<int> ops = NonInputOps(*dag);
  // Job = {PROJECT, JOIN}: reads properties + prices, writes id_price.
  auto extraction = ExtractJobDag(*dag, {ops[0], ops[1]});
  ASSERT_TRUE(extraction.ok()) << extraction.status();
  EXPECT_EQ(extraction->inputs,
            (std::vector<std::string>{"prices", "properties"}));
  EXPECT_EQ(extraction->outputs, (std::vector<std::string>{"id_price"}));
  // locs is internal (consumed by the join inside the job).
  for (const auto& n : extraction->dag->nodes()) {
    if (n.kind == OpKind::kInput) {
      EXPECT_NE(n.output, "locs");
    }
  }
}

TEST(BackendTest, ExtractJobDagRejectsInputNodes) {
  auto dag = MaxPropertyPriceDag();
  EXPECT_FALSE(ExtractJobDag(*dag, {0}).ok());  // node 0 is INPUT(properties)
}

TEST(BackendTest, GeneratePlanForAllEnginesOnBatchJob) {
  auto dag = MaxPropertyPriceDag();
  std::vector<int> ops = NonInputOps(*dag);
  for (EngineKind kind :
       {EngineKind::kSpark, EngineKind::kNaiad, EngineKind::kSerialC}) {
    auto plan = BackendFor(kind).GeneratePlan(*dag, ops, PropertySchemas(), {});
    ASSERT_TRUE(plan.ok()) << EngineKindName(kind) << ": " << plan.status();
    EXPECT_EQ(plan->engine, kind);
    EXPECT_FALSE(plan->generated_code.empty());
    EXPECT_NE(plan->generated_code.find("street_price"), std::string::npos);
  }
}

TEST(BackendTest, MusketeerSparkPlansModelTypeInferenceMiss) {
  auto dag = MaxPropertyPriceDag();
  std::vector<int> ops = NonInputOps(*dag);
  auto generated =
      BackendFor(EngineKind::kSpark).GeneratePlan(*dag, ops, PropertySchemas(), {});
  ASSERT_TRUE(generated.ok());
  EXPECT_TRUE(generated->quirks.model_type_inference_miss);
  EXPECT_LT(generated->quirks.process_efficiency, 1.0);

  CodeGenOptions ideal;
  ideal.flavor = CodeGenOptions::Flavor::kIdealHandTuned;
  auto hand = BackendFor(EngineKind::kSpark)
                  .GeneratePlan(*dag, ops, PropertySchemas(), ideal);
  ASSERT_TRUE(hand.ok());
  EXPECT_FALSE(hand->quirks.model_type_inference_miss);
  EXPECT_DOUBLE_EQ(hand->quirks.process_efficiency, 1.0);
}

TEST(BackendTest, NativeLindiOnlyTargetsNaiad) {
  auto dag = MaxPropertyPriceDag();
  std::vector<int> ops = NonInputOps(*dag);
  CodeGenOptions lindi;
  lindi.flavor = CodeGenOptions::Flavor::kNativeLindi;
  EXPECT_FALSE(
      BackendFor(EngineKind::kSpark).GeneratePlan(*dag, ops, PropertySchemas(), lindi).ok());
  auto plan = BackendFor(EngineKind::kNaiad)
                  .GeneratePlan(*dag, ops, PropertySchemas(), lindi);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->quirks.single_threaded_io);
  EXPECT_TRUE(plan->quirks.single_node_group_by);
}

TEST(BackendTest, NaiadUsesVertexRuntimeForGraphIdiom) {
  auto graph_dag = ParseWorkflow(FrontendLanguage::kGas, R"(
    GATHER = { SUM (vertex_value) }
    APPLY = { MUL [vertex_value, 0.85] SUM [vertex_value, 0.15] }
    SCATTER = { DIV [vertex_value, vertex_degree] }
    ITERATION_STOP = (iteration < 5)
  )");
  ASSERT_TRUE(graph_dag.ok());
  int while_id = (*graph_dag)->ProducerOf("gas_result");
  SchemaMap schemas{
      {"vertices", Schema({{"id", FieldType::kInt64},
                           {"vertex_value", FieldType::kDouble},
                           {"vertex_degree", FieldType::kInt64}})},
      {"edges",
       Schema({{"src", FieldType::kInt64}, {"dst", FieldType::kInt64}})}};

  auto plan = BackendFor(EngineKind::kNaiad)
                  .GeneratePlan(**graph_dag, {while_id}, schemas, {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->while_mode, WhileExec::kVertexRuntime);
  EXPECT_TRUE(plan->graph_path);

  // Hadoop runs the loop as repeated jobs.
  auto hplan = BackendFor(EngineKind::kHadoop)
                   .GeneratePlan(**graph_dag, {while_id}, schemas, {});
  ASSERT_TRUE(hplan.ok()) << hplan.status();
  EXPECT_EQ(hplan->while_mode, WhileExec::kPerIterationJobs);

  // Native Lindi code does not get the vertex-optimized path.
  CodeGenOptions lindi;
  lindi.flavor = CodeGenOptions::Flavor::kNativeLindi;
  auto lplan = BackendFor(EngineKind::kNaiad)
                   .GeneratePlan(**graph_dag, {while_id}, schemas, lindi);
  ASSERT_TRUE(lplan.ok()) << lplan.status();
  EXPECT_EQ(lplan->while_mode, WhileExec::kNativeLoop);
}

// ---- Pricing ---------------------------------------------------------------

TEST(PricingTest, JobOverheadDominatesSmallInputs) {
  JobShape shape;
  shape.pull_bytes = 10 * kMB;
  shape.push_bytes = 5 * kMB;
  shape.ops.push_back({.in_bytes = 10 * kMB, .shuffle = false});
  ClusterConfig local = LocalCluster();
  double hadoop = PriceJob(EngineKind::kHadoop, local, shape);
  double metis = PriceJob(EngineKind::kMetis, local, shape);
  EXPECT_LT(metis, hadoop);  // Metis wins small inputs (Fig. 2a)
  EXPECT_GT(hadoop, RatesFor(EngineKind::kHadoop).job_overhead_s);
}

TEST(PricingTest, DistributedWinsLargeInputs) {
  JobShape shape;
  shape.pull_bytes = 32 * kGB;
  shape.push_bytes = 16 * kGB;
  shape.ops.push_back({.in_bytes = 32 * kGB, .shuffle = false});
  ClusterConfig local = LocalCluster();
  double hadoop = PriceJob(EngineKind::kHadoop, local, shape);
  double metis = PriceJob(EngineKind::kMetis, local, shape);
  EXPECT_LT(hadoop, metis);  // Hadoop streams in parallel (Fig. 2a)
}

TEST(PricingTest, SingleThreadedIoHurts) {
  JobShape shape;
  shape.pull_bytes = 8 * kGB;
  shape.ops.push_back({.in_bytes = 8 * kGB, .shuffle = false});
  ClusterConfig local = LocalCluster();
  double fast = PriceJob(EngineKind::kNaiad, local, shape);
  shape.single_threaded_io = true;
  double slow = PriceJob(EngineKind::kNaiad, local, shape);
  EXPECT_GT(slow, 2.0 * fast);  // Lindi's single reader throttles I/O (§2.1)
}

TEST(PricingTest, FusedOperatorsAreNearlyFree) {
  JobShape shape;
  shape.pull_bytes = 4 * kGB;
  PricedOp op;
  op.in_bytes = 4 * kGB;
  op.charge_process = true;
  shape.ops.assign(3, op);
  ClusterConfig local = LocalCluster();
  double unfused = PriceJob(EngineKind::kHadoop, local, shape);
  for (PricedOp& o : shape.ops) {
    o.charge_process = false;
  }
  double fused = PriceJob(EngineKind::kHadoop, local, shape);
  EXPECT_LT(fused, unfused);
}

TEST(PricingTest, PowerGraphStopsScalingAtSixteenNodes) {
  JobShape shape;
  shape.pull_bytes = 20 * kGB;
  shape.load_bytes = 20 * kGB;
  shape.ops.push_back(
      {.in_bytes = 20 * kGB, .shuffle = true, .graph_path = true});
  shape.supersteps = 5;
  double at16 = PriceJob(EngineKind::kPowerGraph, Ec2Cluster(16), shape);
  double at100 = PriceJob(EngineKind::kPowerGraph, Ec2Cluster(100), shape);
  EXPECT_NEAR(at16, at100, at16 * 0.35);  // little benefit beyond 16 (§2.2)

  double naiad16 = PriceJob(EngineKind::kNaiad, Ec2Cluster(16), shape);
  double naiad100 = PriceJob(EngineKind::kNaiad, Ec2Cluster(100), shape);
  EXPECT_LT(naiad100, naiad16 * 0.4);  // Naiad keeps scaling
}

TEST(CodegenTest, EmitsEngineStyledSource) {
  auto dag = MaxPropertyPriceDag();
  std::vector<int> ops = NonInputOps(*dag);
  auto plan =
      BackendFor(EngineKind::kSpark).GeneratePlan(*dag, ops, PropertySchemas(), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->generated_code.find("Scala"), std::string::npos);
  EXPECT_NE(plan->generated_code.find("groupBy"), std::string::npos);
  // The modeled type-inference miss appears as an extra map in the code.
  EXPECT_NE(plan->generated_code.find("extra pass"), std::string::npos);
}

}  // namespace
}  // namespace musketeer
