// Streaming data plane + incremental recomputation tests (PR 9).
//
// Three contracts under test:
//   1. RelationChannel: bounded, ordered, cancel/deadline-aware handoff —
//      backpressure blocks, Close drains, Abort propagates, CloseReceiver
//      never wedges a producer. StreamTable/AssembleFromChannel round-trips
//      are bit-identical (Table::Identical), scale included.
//   2. PipelinePlanner: only pipeline-safe edges are accepted (single
//      consumer, capable engines, no WHILE fixpoint, schedulable group),
//      and kAuto additionally cost-gates. End to end, pipelined runs are
//      Table::Identical to barrier runs on every evaluation workflow at
//      every thread width.
//   3. Incremental recomputation: per-job fingerprints over DFS content
//      versions make an unchanged resubmission reuse every job, an
//      append-to-base resubmission recompute exactly the dependent DAG
//      suffix (bit-identical to a cold run on the appended inputs), and a
//      direct overwrite of a recorded output invalidate reuse — in-process,
//      through the service, across shards, and under seeded faults.

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/parallel.h"
#include "src/cluster/sharded_dfs.h"
#include "src/core/musketeer.h"
#include "src/service/service.h"
#include "src/service/shard_coordinator.h"
#include "src/stream/fingerprint.h"
#include "src/stream/pipeline.h"
#include "src/stream/relation_channel.h"
#include "tests/workflow_setups.h"

namespace musketeer {
namespace {

Table MakeInts(int64_t begin, int64_t end) {
  Table table(Schema({{"v", FieldType::kInt64}}));
  for (int64_t i = begin; i < end; ++i) {
    table.AddRow({i});
  }
  return table;
}

CancelToken NoCancel() { return CancelToken(); }

// ---- RelationChannel -------------------------------------------------------

TEST(RelationChannelTest, DeliversBatchesInOrderWithBackpressure) {
  RelationChannel ch("edge", /*capacity=*/2);
  const int kBatches = 10;
  std::thread producer([&] {
    for (int i = 0; i < kBatches; ++i) {
      Status s = ch.Push(MakeInts(i, i + 1), NoCancel(), std::nullopt);
      ASSERT_TRUE(s.ok()) << s;
    }
    ch.Close();
  });
  int next = 0;
  while (true) {
    auto batch = ch.Pop(NoCancel(), std::nullopt);
    ASSERT_TRUE(batch.ok()) << batch.status();
    if (!batch->has_value()) {
      break;  // end of stream
    }
    ASSERT_EQ((*batch)->num_rows(), 1u);
    EXPECT_EQ((*batch)->col(0).ints()[0], next);
    ++next;
    // Slow consumer: with capacity 2 the producer must hit the full-queue
    // wait at least once.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  producer.join();
  EXPECT_EQ(next, kBatches);
  EXPECT_EQ(ch.batches_pushed(), static_cast<uint64_t>(kBatches));
  EXPECT_EQ(ch.batches_dropped(), 0u);
  EXPECT_GT(ch.push_stalls(), 0u);
}

TEST(RelationChannelTest, CancelUnblocksFullChannelPush) {
  RelationChannel ch("edge", /*capacity=*/1);
  CancelToken cancel = CancelToken::Make();
  ASSERT_TRUE(ch.Push(MakeInts(0, 1), cancel, std::nullopt).ok());
  std::atomic<bool> pushed{false};
  Status blocked_status = OkStatus();
  std::thread producer([&] {
    blocked_status = ch.Push(MakeInts(1, 2), cancel, std::nullopt);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(pushed.load());  // backpressure holds
  cancel.RequestCancel();
  producer.join();
  EXPECT_EQ(blocked_status.code(), StatusCode::kCancelled);
}

TEST(RelationChannelTest, DeadlineUnblocksEmptyChannelPop) {
  RelationChannel ch("edge", /*capacity=*/2);
  const DeadlinePoint deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(40);
  auto batch = ch.Pop(NoCancel(), deadline);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(RelationChannelTest, AbortPropagatesToConsumerAndDropsQueued) {
  RelationChannel ch("edge", /*capacity=*/4);
  ASSERT_TRUE(ch.Push(MakeInts(0, 1), NoCancel(), std::nullopt).ok());
  ch.Abort(UnavailableError("producer died"));
  auto batch = ch.Pop(NoCancel(), std::nullopt);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kUnavailable);
  // Abort after Close is a no-op: the RAII guard on a producer that already
  // closed cleanly must not clobber end-of-stream.
  RelationChannel ch2("edge2", 4);
  ch2.Close();
  ch2.Abort(UnavailableError("late"));
  auto eos = ch2.Pop(NoCancel(), std::nullopt);
  ASSERT_TRUE(eos.ok()) << eos.status();
  EXPECT_FALSE(eos->has_value());
}

TEST(RelationChannelTest, CloseReceiverUnblocksAndDropsPushes) {
  RelationChannel ch("edge", /*capacity=*/1);
  ASSERT_TRUE(ch.Push(MakeInts(0, 1), NoCancel(), std::nullopt).ok());
  std::thread producer([&] {
    // Blocked on the full queue until the receiver walks away; then the
    // push must return OK (dropped), not hang or error.
    Status s = ch.Push(MakeInts(1, 2), NoCancel(), std::nullopt);
    EXPECT_TRUE(s.ok()) << s;
    Status s2 = ch.Push(MakeInts(2, 3), NoCancel(), std::nullopt);
    EXPECT_TRUE(s2.ok()) << s2;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.CloseReceiver();
  producer.join();
  EXPECT_GE(ch.batches_dropped(), 2u);
}

TEST(RelationChannelTest, StreamAssembleRoundTripIsBitIdentical) {
  Table table = MakeInts(0, 1000);
  table.set_scale(3.5);
  RelationChannel ch("edge", /*capacity=*/4);
  StatusOr<StreamCounts> pushed = InternalError("not run");
  std::thread producer([&] {
    pushed = StreamTable(table, /*batch_rows=*/128, &ch, NoCancel(),
                         std::nullopt);
  });
  auto assembled = AssembleFromChannel(&ch, NoCancel(), std::nullopt);
  producer.join();
  ASSERT_TRUE(pushed.ok()) << pushed.status();
  ASSERT_TRUE(assembled.ok()) << assembled.status();
  EXPECT_TRUE(Table::Identical(table, assembled->table));
  // Scale must survive the trip: nominal_bytes drives every cost estimate.
  EXPECT_DOUBLE_EQ(assembled->table.scale(), 3.5);
  EXPECT_EQ(pushed->batches, (1000 + 127) / 128);
  EXPECT_EQ(assembled->counts.batches, pushed->batches);
}

TEST(RelationChannelTest, EmptyTableStillDeliversSchema) {
  Table empty(Schema({{"v", FieldType::kInt64}}));
  RelationChannel ch("edge", 2);
  auto pushed = StreamTable(empty, 128, &ch, NoCancel(), std::nullopt);
  ASSERT_TRUE(pushed.ok()) << pushed.status();
  EXPECT_EQ(pushed->batches, 1u);
  auto assembled = AssembleFromChannel(&ch, NoCancel(), std::nullopt);
  ASSERT_TRUE(assembled.ok()) << assembled.status();
  EXPECT_TRUE(Table::Identical(empty, assembled->table));
}

// Push/pop storm across concurrent producer/consumer pairs — the TSan
// target check.sh runs (stage 10): every mutation of the queue, counters
// and state machine happens under the channel lock or it shows up here.
TEST(RelationChannelTest, ConcurrentStormDeliversEverything) {
  const int kPairs = 4;
  const int kBatches = 200;
  std::vector<std::unique_ptr<RelationChannel>> channels;
  for (int p = 0; p < kPairs; ++p) {
    channels.push_back(
        std::make_unique<RelationChannel>("edge" + std::to_string(p), 2));
  }
  std::vector<std::thread> threads;
  std::vector<int64_t> sums(kPairs, 0);
  for (int p = 0; p < kPairs; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kBatches; ++i) {
        ASSERT_TRUE(
            channels[p]->Push(MakeInts(i, i + 1), NoCancel(), std::nullopt)
                .ok());
      }
      channels[p]->Close();
    });
    threads.emplace_back([&, p] {
      while (true) {
        auto batch = channels[p]->Pop(NoCancel(), std::nullopt);
        ASSERT_TRUE(batch.ok());
        if (!batch->has_value()) {
          return;
        }
        for (int64_t v : (*batch)->col(0).ints()) {
          sums[p] += v;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const int64_t expected = static_cast<int64_t>(kBatches) * (kBatches - 1) / 2;
  for (int p = 0; p < kPairs; ++p) {
    EXPECT_EQ(sums[p], expected) << "pair " << p;
    EXPECT_EQ(channels[p]->batches_pushed(), static_cast<uint64_t>(kBatches));
  }
}

// ---- PipelinePlanner -------------------------------------------------------

JobPlan MakeJob(const std::string& name, std::vector<std::string> inputs,
                std::vector<std::string> outputs,
                EngineKind engine = EngineKind::kSpark,
                WhileExec while_mode = WhileExec::kNone) {
  JobPlan job;
  job.name = name;
  job.inputs = std::move(inputs);
  job.outputs = std::move(outputs);
  job.engine = engine;
  job.while_mode = while_mode;
  return job;
}

Bytes FixedSize(Bytes bytes, const std::string&) { return bytes; }

PipelineSchedule Plan(const std::vector<JobPlan>& jobs,
                      const std::vector<std::string>& sinks, PipelineMode mode,
                      Bytes est_bytes = Bytes(100) * 1024 * 1024) {
  PipelineOptions options;
  options.mode = mode;
  return PlanPipelines(jobs, sinks, options, Ec2Cluster(16),
                       [est_bytes](const std::string& name) {
                         return FixedSize(est_bytes, name);
                       });
}

TEST(PipelinePlannerTest, ForceAcceptsSafeChain) {
  std::vector<JobPlan> jobs = {MakeJob("a", {"base"}, {"mid"}),
                               MakeJob("b", {"mid"}, {"out"})};
  PipelineSchedule sched = Plan(jobs, {"out"}, PipelineMode::kForce);
  ASSERT_EQ(sched.edges.size(), 1u);
  EXPECT_EQ(sched.edges[0].relation, "mid");
  EXPECT_EQ(sched.edges[0].producer, 0u);
  EXPECT_EQ(sched.edges[0].consumer, 1u);
  ASSERT_EQ(sched.groups.size(), 1u);
  EXPECT_EQ(sched.groups[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(sched.group_of[0], 0);
  EXPECT_EQ(sched.group_of[1], 0);
}

TEST(PipelinePlannerTest, OffAcceptsNothing) {
  std::vector<JobPlan> jobs = {MakeJob("a", {"base"}, {"mid"}),
                               MakeJob("b", {"mid"}, {"out"})};
  EXPECT_TRUE(Plan(jobs, {"out"}, PipelineMode::kOff).empty());
}

TEST(PipelinePlannerTest, SinkAndFanOutEdgesStayOnBarrier) {
  // "mid" is itself a sink: must be committed, not streamed.
  std::vector<JobPlan> jobs = {MakeJob("a", {"base"}, {"mid"}),
                               MakeJob("b", {"mid"}, {"out"})};
  EXPECT_TRUE(Plan(jobs, {"mid", "out"}, PipelineMode::kForce).empty());
  // Two consumers of "mid": fan-out would need multicast.
  std::vector<JobPlan> fanout = {MakeJob("a", {"base"}, {"mid"}),
                                 MakeJob("b", {"mid"}, {"out1"}),
                                 MakeJob("c", {"mid"}, {"out2"})};
  EXPECT_TRUE(Plan(fanout, {"out1", "out2"}, PipelineMode::kForce).empty());
}

TEST(PipelinePlannerTest, IncapableEngineAndWhileLoopRejected) {
  std::vector<JobPlan> hadoop = {
      MakeJob("a", {"base"}, {"mid"}, EngineKind::kHadoop),
      MakeJob("b", {"mid"}, {"out"})};
  EXPECT_TRUE(Plan(hadoop, {"out"}, PipelineMode::kForce).empty());
  std::vector<JobPlan> loop = {MakeJob("a", {"base"}, {"mid"},
                                       EngineKind::kSpark,
                                       WhileExec::kNativeLoop),
                               MakeJob("b", {"mid"}, {"out"})};
  EXPECT_TRUE(Plan(loop, {"out"}, PipelineMode::kForce).empty());
}

TEST(PipelinePlannerTest, AutoCostGateKeepsSmallEdgesOnBarrier) {
  std::vector<JobPlan> jobs = {MakeJob("a", {"base"}, {"mid"}),
                               MakeJob("b", {"mid"}, {"out"})};
  // 100 MB across the edge: the channel skips a DFS write+read, wins.
  EXPECT_EQ(Plan(jobs, {"out"}, PipelineMode::kAuto,
                 Bytes(100) * 1024 * 1024)
                .edges.size(),
            1u);
  // 1 KB: the fixed channel-setup cost dominates; barrier stays.
  EXPECT_TRUE(Plan(jobs, {"out"}, PipelineMode::kAuto, 1024).empty());
  // Unknown size (0): conservative, barrier stays.
  EXPECT_TRUE(Plan(jobs, {"out"}, PipelineMode::kAuto, 0).empty());
}

TEST(PipelinePlannerTest, GroupNeedsEveryExternalInputCommittedFirst) {
  // C consumes streamed "m1" (from A) and barrier "m2" (from B, Hadoop so
  // unstreamable). With B *after* A in plan order, grouping {A, C} would
  // launch C before B commits m2 — the edge must be rejected.
  std::vector<JobPlan> unsafe = {
      MakeJob("a", {"base"}, {"m1"}),
      MakeJob("b", {"base"}, {"m2"}, EngineKind::kHadoop),
      MakeJob("c", {"m1", "m2"}, {"out"})};
  EXPECT_TRUE(Plan(unsafe, {"out"}, PipelineMode::kForce).empty());
  // With B *before* A, m2 is committed before the group's first member
  // starts; the m1 edge is safe.
  std::vector<JobPlan> safe = {
      MakeJob("b", {"base"}, {"m2"}, EngineKind::kHadoop),
      MakeJob("a", {"base"}, {"m1"}),
      MakeJob("c", {"m1", "m2"}, {"out"})};
  PipelineSchedule sched = Plan(safe, {"out"}, PipelineMode::kForce);
  ASSERT_EQ(sched.edges.size(), 1u);
  EXPECT_EQ(sched.edges[0].relation, "m1");
  ASSERT_EQ(sched.groups.size(), 1u);
  EXPECT_EQ(sched.groups[0], (std::vector<size_t>{1, 2}));
}

// ---- DFS content versions --------------------------------------------------

TEST(DfsVersionTest, EveryPutBumps) {
  Dfs dfs;
  EXPECT_EQ(dfs.VersionOf("rel"), 0u);
  dfs.Put("rel", std::make_shared<Table>(MakeInts(0, 4)));
  EXPECT_EQ(dfs.VersionOf("rel"), 1u);
  dfs.Put("rel", std::make_shared<Table>(MakeInts(0, 8)));
  EXPECT_EQ(dfs.VersionOf("rel"), 2u);
  // Erase does not bump (no new content), but the reuse check also requires
  // Contains — an erased output fails reuse regardless.
  dfs.Erase("rel");
  EXPECT_EQ(dfs.VersionOf("rel"), 2u);
}

TEST(DfsVersionTest, ShardViewPutsBumpTheAggregateVersion) {
  ShardedDfs dfs(3);
  EXPECT_EQ(dfs.VersionOf("rel"), 0u);
  dfs.Put("rel", std::make_shared<Table>(MakeInts(0, 4)));
  EXPECT_EQ(dfs.VersionOf("rel"), 1u);
  // A shard-local re-put (what failover recovery does) must look like a
  // global overwrite to every view — fingerprints are computed against the
  // aggregate namespace.
  dfs.View(1)->Put("rel", std::make_shared<Table>(MakeInts(0, 8)));
  EXPECT_EQ(dfs.VersionOf("rel"), 2u);
  EXPECT_EQ(dfs.View(0)->VersionOf("rel"), 2u);
  EXPECT_EQ(dfs.View(2)->VersionOf("rel"), 2u);
}

TEST(FingerprintTest, TracksInputVersionsAndJobIdentity) {
  Dfs dfs;
  dfs.Put("in", std::make_shared<Table>(MakeInts(0, 4)));
  JobPlan job = MakeJob("j:out", {"in"}, {"out"});
  const uint64_t fp1 = FingerprintJob("wf", job, dfs);
  EXPECT_EQ(FingerprintJob("wf", job, dfs), fp1);  // deterministic
  dfs.Put("in", std::make_shared<Table>(MakeInts(0, 5)));
  const uint64_t fp2 = FingerprintJob("wf", job, dfs);
  EXPECT_NE(fp1, fp2);  // input overwrite changes it
  job.engine = EngineKind::kNaiad;
  EXPECT_NE(FingerprintJob("wf", job, dfs), fp2);  // engine changes it
  EXPECT_NE(FingerprintJob("wf2", job, dfs),
            FingerprintJob("wf", job, dfs));  // workflow id changes it
}

TEST(FingerprintStoreTest, StaleOutputVersionNeverReuses) {
  Dfs dfs;
  dfs.Put("in", std::make_shared<Table>(MakeInts(0, 4)));
  dfs.Put("out", std::make_shared<Table>(MakeInts(0, 2)));
  JobPlan job = MakeJob("j:out", {"in"}, {"out"});
  const uint64_t fp = FingerprintJob("wf", job, dfs);
  FingerprintStore store;
  store.Record("wf", job.name, fp, {{"out", dfs.VersionOf("out")}});
  EXPECT_TRUE(store.CanReuse("wf", job.name, fp, dfs));
  // The regression this guards: an overwrite of the recorded output (any
  // writer — another workflow, a failover re-put) must kill reuse, or a
  // resubmission would serve foreign bytes as this job's result.
  dfs.Put("out", std::make_shared<Table>(MakeInts(0, 99)));
  EXPECT_FALSE(store.CanReuse("wf", job.name, fp, dfs));
  // An erased output also kills reuse.
  store.Record("wf", job.name, fp, {{"out", dfs.VersionOf("out")}});
  EXPECT_TRUE(store.CanReuse("wf", job.name, fp, dfs));
  dfs.Erase("out");
  EXPECT_FALSE(store.CanReuse("wf", job.name, fp, dfs));
}

// ---- pipelined execution: end-to-end equivalence ---------------------------

class StreamWorkflowTest : public ::testing::TestWithParam<Wf> {};

StatusOr<RunResult> RunWith(const WfSetup& setup, RunOptions options,
                            FingerprintStore* store = nullptr,
                            const TableMap* inputs_override = nullptr) {
  Dfs dfs;
  for (const auto& [name, table] :
       inputs_override != nullptr ? *inputs_override : setup.inputs) {
    dfs.Put(name, table);
  }
  options.fingerprints = store;
  Musketeer m(&dfs);
  return m.Run(setup.workflow, options);
}

// Pipelined (kForce) runs are BIT-identical to barrier (kOff) runs on every
// evaluation workflow, single- and multi-threaded, with the engine choice
// left to the partitioner and with it restricted to a pipeline-capable one.
TEST_P(StreamWorkflowTest, PipelinedMatchesBarrierBitIdentical) {
  WfSetup setup = MakeSetup(GetParam());
  for (int threads : {1, 4}) {
    ScopedParallelThreads width(threads);
    for (const std::vector<EngineKind>& engines :
         {std::vector<EngineKind>{}, std::vector<EngineKind>{
                                         EngineKind::kSpark}}) {
      RunOptions off;
      off.cluster = Ec2Cluster(16);
      off.engines = engines;
      auto barrier = RunWith(setup, off);
      ASSERT_TRUE(barrier.ok()) << barrier.status();

      RunOptions force = off;
      force.pipeline = PipelineMode::kForce;
      auto pipelined = RunWith(setup, force);
      ASSERT_TRUE(pipelined.ok()) << pipelined.status();

      ASSERT_EQ(barrier->outputs.size(), pipelined->outputs.size());
      for (const auto& [name, table] : barrier->outputs) {
        ASSERT_EQ(pipelined->outputs.count(name), 1u);
        EXPECT_TRUE(Table::Identical(*table, *pipelined->outputs.at(name)))
            << WfName(GetParam()) << " sink " << name << " diverged at "
            << threads << " thread(s)";
      }
      // kAuto must also be output-identical (whatever it decides to stream).
      RunOptions auto_mode = off;
      auto_mode.pipeline = PipelineMode::kAuto;
      auto cost_gated = RunWith(setup, auto_mode);
      ASSERT_TRUE(cost_gated.ok()) << cost_gated.status();
      for (const auto& [name, table] : barrier->outputs) {
        EXPECT_TRUE(Table::Identical(*table, *cost_gated->outputs.at(name)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkflows, StreamWorkflowTest,
                         ::testing::ValuesIn(kAllWorkflows),
                         [](const ::testing::TestParamInfo<Wf>& info) {
                           return WfName(info.param);
                         });

// A chain the planner can actually stream: merging disabled so every
// operator is its own job, Spark everywhere. Asserts data really moved over
// channels, not just that the answer matched.
TEST(StreamExecutionTest, ForcedChainActuallyStreams) {
  WfSetup setup = MakeSetup(Wf::kTopShopper);
  RunOptions off;
  off.cluster = Ec2Cluster(16);
  off.engines = {EngineKind::kSpark};
  off.planner.enable_merging = false;
  auto barrier = RunWith(setup, off);
  ASSERT_TRUE(barrier.ok()) << barrier.status();
  ASSERT_GT(barrier->plans.size(), 1u);

  RunOptions force = off;
  force.pipeline = PipelineMode::kForce;
  auto pipelined = RunWith(setup, force);
  ASSERT_TRUE(pipelined.ok()) << pipelined.status();
  EXPECT_GE(pipelined->pipelined_edges, 1);
  EXPECT_GT(pipelined->stream_batches, 0u);
  EXPECT_GT(pipelined->stream_bytes, 0);
  EXPECT_EQ(barrier->pipelined_edges, 0);
  for (const auto& [name, table] : barrier->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *pipelined->outputs.at(name)));
  }
}

// A failing pipelined attempt must fall back to the barrier dispatcher and
// still produce the fault-free bits (the recovery contract composed with
// streaming).
TEST(StreamExecutionTest, PipelinedRunRecoversInjectedFaults) {
  WfSetup setup = MakeSetup(Wf::kTopShopper);
  RunOptions clean;
  clean.cluster = Ec2Cluster(16);
  clean.engines = {EngineKind::kSpark};
  clean.planner.enable_merging = false;
  auto expected = RunWith(setup, clean);
  ASSERT_TRUE(expected.ok()) << expected.status();

  RunOptions faulty = clean;
  faulty.pipeline = PipelineMode::kForce;
  faulty.fault_rate = 0.3;
  faulty.fault_seed = 42;
  faulty.retry.max_attempts = 4;
  auto recovered = RunWith(setup, faulty);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  for (const auto& [name, table] : expected->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *recovered->outputs.at(name)));
  }
}

// ---- incremental recomputation ---------------------------------------------

// The input relation a test appends to, chosen deterministically (first in
// sorted order), and the 1%-appended copy of the whole input map.
std::string AppendTarget(const WfSetup& setup) {
  std::vector<std::string> names;
  for (const auto& [name, table] : setup.inputs) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names.front();
}

TableMap AppendedInputs(const WfSetup& setup, const std::string& target) {
  TableMap out = setup.inputs;
  const Table& base = *out.at(target);
  Table grown = base.Slice(0, base.num_rows());
  const size_t extra = std::max<size_t>(1, base.num_rows() / 100);
  grown.AppendTableCopy(base.Slice(0, extra));
  out[target] = std::make_shared<Table>(std::move(grown));
  return out;
}

// Jobs transitively dependent on `dirty_relation`, walking the plan list in
// its topological order — the expected recompute set.
std::vector<bool> AffectedJobs(const std::vector<JobPlan>& plans,
                               const std::string& dirty_relation) {
  std::set<std::string> dirty = {dirty_relation};
  std::vector<bool> affected(plans.size(), false);
  for (size_t i = 0; i < plans.size(); ++i) {
    for (const std::string& in : plans[i].inputs) {
      if (dirty.count(in) > 0) {
        affected[i] = true;
        break;
      }
    }
    if (affected[i]) {
      for (const std::string& out : plans[i].outputs) {
        dirty.insert(out);
      }
    }
  }
  return affected;
}

class IncrementalWorkflowTest : public ::testing::TestWithParam<Wf> {};

// The tentpole incremental contract, per workflow: an unchanged resubmit
// reuses every job; an append-to-base resubmit recomputes exactly the
// dependent suffix; both match a cold run bit-for-bit.
TEST_P(IncrementalWorkflowTest, AppendRecomputesOnlyAffectedSuffix) {
  WfSetup setup = MakeSetup(GetParam());
  RunOptions options;
  options.cluster = Ec2Cluster(16);

  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  FingerprintStore store;
  options.fingerprints = &store;
  Musketeer m(&dfs);
  auto cold = m.Run(setup.workflow, options);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->jobs_reused, 0);
  EXPECT_EQ(store.size(), cold->plans.size());

  // Unchanged resubmit: every job reuses, outputs identical.
  options.incremental = true;
  auto warm = m.Run(setup.workflow, options);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->jobs_reused, static_cast<int>(warm->plans.size()));
  for (const auto& [name, table] : cold->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *warm->outputs.at(name)));
  }

  // Append 1% to one base relation and resubmit incrementally.
  const std::string target = AppendTarget(setup);
  TableMap appended = AppendedInputs(setup, target);
  dfs.Put(target, appended.at(target));
  auto delta = m.Run(setup.workflow, options);
  ASSERT_TRUE(delta.ok()) << delta.status();

  // Exactly the jobs NOT depending on the appended relation reuse.
  const std::vector<bool> affected = AffectedJobs(delta->plans, target);
  int expected_reused = 0;
  for (size_t i = 0; i < delta->plans.size(); ++i) {
    EXPECT_EQ(delta->job_results[i].reused, !affected[i])
        << "job " << delta->plans[i].name;
    if (!affected[i]) {
      ++expected_reused;
    }
  }
  EXPECT_EQ(delta->jobs_reused, expected_reused);

  // And the delta run's outputs are bit-identical to a cold run over the
  // appended inputs.
  RunOptions cold_options;
  cold_options.cluster = Ec2Cluster(16);
  auto expected = RunWith(setup, cold_options, nullptr, &appended);
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (const auto& [name, table] : expected->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *delta->outputs.at(name)))
        << WfName(GetParam()) << " sink " << name
        << " diverged after incremental resubmit";
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkflows, IncrementalWorkflowTest,
                         ::testing::ValuesIn(kAllWorkflows),
                         [](const ::testing::TestParamInfo<Wf>& info) {
                           return WfName(info.param);
                         });

// Reuse must actually fire on a workflow with an untouched branch — guards
// against a trivially-correct "recompute everything" implementation passing
// the suite above on single-branch plans.
TEST(IncrementalTest, UntouchedBranchIsActuallyReused) {
  WfSetup setup = MakeSetup(Wf::kTpchHive);  // lineitem + part inputs
  RunOptions options;
  options.cluster = Ec2Cluster(16);
  options.planner.enable_merging = false;  // keep the branches separate jobs
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  FingerprintStore store;
  options.fingerprints = &store;
  Musketeer m(&dfs);
  ASSERT_TRUE(m.Run(setup.workflow, options).ok());

  TableMap appended = AppendedInputs(setup, "part");
  dfs.Put("part", appended.at("part"));
  options.incremental = true;
  auto delta = m.Run(setup.workflow, options);
  ASSERT_TRUE(delta.ok()) << delta.status();
  const std::vector<bool> affected = AffectedJobs(delta->plans, "part");
  const bool has_untouched_jobs =
      std::count(affected.begin(), affected.end(), false) > 0;
  if (has_untouched_jobs) {
    EXPECT_GE(delta->jobs_reused, 1);
  } else {
    GTEST_SKIP() << "partitioner merged everything into part-dependent jobs";
  }
}

// Incremental + seeded faults: injected failures during the recompute
// suffix retry/fail over as usual; the result still matches the fault-free
// cold run on the appended inputs, and untouched jobs still reuse.
TEST(IncrementalTest, SeededFaultsDuringDeltaRunStillBitIdentical) {
  WfSetup setup = MakeSetup(Wf::kSimpleJoin);
  RunOptions options;
  options.cluster = Ec2Cluster(16);
  options.fault_rate = 0.25;
  options.fault_seed = 7;
  options.retry.max_attempts = 4;
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  FingerprintStore store;
  options.fingerprints = &store;
  Musketeer m(&dfs);
  ASSERT_TRUE(m.Run(setup.workflow, options).ok());

  const std::string target = AppendTarget(setup);
  TableMap appended = AppendedInputs(setup, target);
  dfs.Put(target, appended.at(target));
  options.incremental = true;
  auto delta = m.Run(setup.workflow, options);
  ASSERT_TRUE(delta.ok()) << delta.status();

  RunOptions clean;
  clean.cluster = Ec2Cluster(16);
  auto expected = RunWith(setup, clean, nullptr, &appended);
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (const auto& [name, table] : expected->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *delta->outputs.at(name)));
  }
}

// Incremental across 3 DFS shards: the coordinator consults the same
// fingerprint protocol against the aggregate version namespace. Unchanged
// resubmit reuses everything; appended resubmit matches the cold bits.
TEST(IncrementalTest, ShardedResubmitReusesAndMatches) {
  WfSetup setup = MakeSetup(Wf::kSimpleJoin);
  ShardedDfs dfs(3);
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  FingerprintStore store;
  RunOptions options;
  options.cluster = Ec2Cluster(16);
  options.fingerprints = &store;
  ShardCoordinator coordinator(&dfs, {});
  auto cold = coordinator.Run(setup.workflow, options);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->jobs_reused, 0);

  options.incremental = true;
  auto warm = coordinator.Run(setup.workflow, options);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->jobs_reused, static_cast<int>(warm->plans.size()));
  for (const auto& [name, table] : cold->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *warm->outputs.at(name)));
  }

  const std::string target = AppendTarget(setup);
  TableMap appended = AppendedInputs(setup, target);
  dfs.Put(target, appended.at(target));
  auto delta = coordinator.Run(setup.workflow, options);
  ASSERT_TRUE(delta.ok()) << delta.status();
  RunOptions clean;
  clean.cluster = Ec2Cluster(16);
  auto expected = RunWith(setup, clean, nullptr, &appended);
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (const auto& [name, table] : expected->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *delta->outputs.at(name)));
  }
}

// A shard-failover re-put bumps the aggregate version, so fingerprints
// recorded before the death cannot serve the (bit-identical but re-placed)
// outputs without seeing the overwrite: reuse-correctness under recovery.
TEST(IncrementalTest, ShardDeathResubmitStaysCorrect) {
  WfSetup setup = MakeSetup(Wf::kSimpleJoin);
  ShardedDfs dfs(3);
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  FingerprintStore store;
  RunOptions options;
  options.cluster = Ec2Cluster(16);
  options.fingerprints = &store;
  CoordinatorConfig config;
  config.fault_shard = 0;
  config.fault_after_dispatches = 1;  // kill shard 0 mid-run
  ShardCoordinator coordinator(&dfs, config);
  auto cold = coordinator.Run(setup.workflow, options);
  ASSERT_TRUE(cold.ok()) << cold.status();

  options.incremental = true;
  auto warm = coordinator.Run(setup.workflow, options);
  ASSERT_TRUE(warm.ok()) << warm.status();
  RunOptions clean;
  clean.cluster = Ec2Cluster(16);
  auto expected = RunWith(setup, clean);
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (const auto& [name, table] : expected->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *warm->outputs.at(name)));
  }
}

// Overwriting a recorded *output* (not an input) must force that job to
// recompute — the stale-fingerprint regression, end to end.
TEST(IncrementalTest, ClobberedIntermediateRecomputes) {
  WfSetup setup = MakeSetup(Wf::kTopShopper);
  RunOptions options;
  options.cluster = Ec2Cluster(16);
  options.engines = {EngineKind::kSpark};
  options.planner.enable_merging = false;  // expose intermediates
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  FingerprintStore store;
  options.fingerprints = &store;
  Musketeer m(&dfs);
  auto cold = m.Run(setup.workflow, options);
  ASSERT_TRUE(cold.ok()) << cold.status();
  ASSERT_GT(cold->plans.size(), 1u);

  // Clobber the first job's output with garbage. The overwrite bumps its
  // version: the producer can no longer reuse (its recorded output version
  // is stale) and must recompute, restoring the real bytes.
  const std::string victim = cold->plans[0].outputs[0];
  dfs.Put(victim, std::make_shared<Table>(MakeInts(0, 3)));
  options.incremental = true;
  auto delta = m.Run(setup.workflow, options);
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_FALSE(delta->job_results[0].reused);
  for (const auto& [name, table] : cold->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *delta->outputs.at(name)));
  }
}

// Pipelining and incremental compose: the recompute suffix of a delta run
// may stream internally and still produce the cold bits.
TEST(IncrementalTest, ComposesWithPipelinedExecution) {
  WfSetup setup = MakeSetup(Wf::kTopShopper);
  RunOptions options;
  options.cluster = Ec2Cluster(16);
  options.engines = {EngineKind::kSpark};
  options.planner.enable_merging = false;
  options.pipeline = PipelineMode::kForce;
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  FingerprintStore store;
  options.fingerprints = &store;
  Musketeer m(&dfs);
  ASSERT_TRUE(m.Run(setup.workflow, options).ok());

  const std::string target = AppendTarget(setup);
  TableMap appended = AppendedInputs(setup, target);
  dfs.Put(target, appended.at(target));
  options.incremental = true;
  auto delta = m.Run(setup.workflow, options);
  ASSERT_TRUE(delta.ok()) << delta.status();

  RunOptions clean;
  clean.cluster = Ec2Cluster(16);
  clean.engines = {EngineKind::kSpark};
  clean.planner.enable_merging = false;
  auto expected = RunWith(setup, clean, nullptr, &appended);
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (const auto& [name, table] : expected->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *delta->outputs.at(name)));
  }
}

// ---- service surface -------------------------------------------------------

TEST(ServiceIncrementalTest, ResubmitIncrementalReusesThroughTheService) {
  WfSetup setup = MakeSetup(Wf::kSimpleJoin);
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  ServiceConfig config;
  config.num_workers = 2;
  config.default_options.cluster = Ec2Cluster(16);
  WorkflowService service(&dfs, config);

  WorkflowHandle first = service.Submit(setup.workflow);
  first->Wait();
  ASSERT_EQ(first->state(), WorkflowState::kDone);
  ASSERT_TRUE(first->result().ok());
  EXPECT_EQ(first->result()->jobs_reused, 0);
  EXPECT_GT(service.fingerprint_store()->size(), 0u);

  // Unchanged resubmit through the dedicated entry point: all reused, same
  // bits, and the plan cache still hits (fingerprints are not in the key).
  WorkflowHandle warm = service.ResubmitIncremental(setup.workflow);
  warm->Wait();
  ASSERT_EQ(warm->state(), WorkflowState::kDone);
  ASSERT_TRUE(warm->result().ok());
  EXPECT_EQ(warm->result()->jobs_reused,
            static_cast<int>(warm->result()->plans.size()));
  EXPECT_TRUE(warm->plan_cache_hit());
  for (const auto& [name, table] : first->result()->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *warm->result()->outputs.at(name)));
  }

  // Append to a base relation; the incremental resubmit matches a cold run.
  const std::string target = AppendTarget(setup);
  TableMap appended = AppendedInputs(setup, target);
  dfs.Put(target, appended.at(target));
  WorkflowHandle delta = service.ResubmitIncremental(setup.workflow);
  delta->Wait();
  ASSERT_EQ(delta->state(), WorkflowState::kDone);
  ASSERT_TRUE(delta->result().ok());
  RunOptions clean;
  clean.cluster = Ec2Cluster(16);
  auto expected = RunWith(setup, clean, nullptr, &appended);
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (const auto& [name, table] : expected->outputs) {
    EXPECT_TRUE(Table::Identical(*table, *delta->result()->outputs.at(name)));
  }

  // Aggregates surfaced in /stats.
  service.Drain();
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.jobs_reused, warm->result()->jobs_reused);
}

}  // namespace
}  // namespace musketeer
