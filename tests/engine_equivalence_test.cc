// Parameterized cross-engine equivalence: every evaluation workflow produces
// bit-identical results on every compatible back-end, and identical to the
// reference interpreter. This is the end-to-end guarantee that decoupling
// front-ends from back-ends does not change workflow semantics.

#include <gtest/gtest.h>

#include "src/base/parallel.h"
#include "src/core/musketeer.h"
#include "tests/row_reference.h"
#include "tests/workflow_setups.h"

namespace musketeer {
namespace {

using Case = std::tuple<Wf, EngineKind>;

class EngineEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(EngineEquivalenceTest, MatchesReferenceInterpreter) {
  auto [wf, engine] = GetParam();
  WfSetup setup = MakeSetup(wf);

  if (IsGraphOnlyEngine(engine) && !setup.graph_capable) {
    GTEST_SKIP() << "workflow not expressible on a graph-only engine";
  }

  // Reference execution via the plain interpreter (no engines involved).
  auto dag = ParseWorkflow(setup.workflow.language, setup.workflow.source);
  ASSERT_TRUE(dag.ok()) << dag.status();
  auto expected = EvaluateDagRelation(**dag, setup.inputs, setup.result_relation);
  ASSERT_TRUE(expected.ok()) << expected.status();

  // Full Musketeer pipeline on the chosen engine.
  Dfs dfs;
  for (const auto& [name, table] : setup.inputs) {
    dfs.Put(name, table);
  }
  Musketeer m(&dfs);
  RunOptions options;
  options.cluster = Ec2Cluster(16);
  options.engines = {engine};
  auto result = m.Run(setup.workflow, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->outputs.count(setup.result_relation), 1u);
  EXPECT_TRUE(Table::SameContent(*expected,
                                 *result->outputs[setup.result_relation]))
      << "engine " << EngineKindName(engine) << " diverged on "
      << WfName(wf);
  EXPECT_GT(result->makespan, 0);
}

// The morsel-driven data plane's determinism contract, end to end: the full
// pipeline run at several thread widths is BIT-identical (row order included,
// Table::Identical not just SameContent) to the same pipeline forced onto one
// thread. Covers every workflow x engine combination above.
TEST_P(EngineEquivalenceTest, ParallelMatchesSequentialBitIdentical) {
  auto [wf, engine] = GetParam();
  WfSetup setup = MakeSetup(wf);

  if (IsGraphOnlyEngine(engine) && !setup.graph_capable) {
    GTEST_SKIP() << "workflow not expressible on a graph-only engine";
  }

  auto run_at = [&](int threads) {
    ScopedParallelThreads width(threads);
    Dfs dfs;
    for (const auto& [name, table] : setup.inputs) {
      dfs.Put(name, table);
    }
    Musketeer m(&dfs);
    RunOptions options;
    options.cluster = Ec2Cluster(16);
    options.engines = {engine};
    return m.Run(setup.workflow, options);
  };

  auto sequential = run_at(1);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  ASSERT_EQ(sequential->outputs.count(setup.result_relation), 1u);

  for (int threads : {2, 4, 8}) {
    auto parallel = run_at(threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ASSERT_EQ(parallel->outputs.count(setup.result_relation), 1u);
    EXPECT_TRUE(
        Table::Identical(*sequential->outputs[setup.result_relation],
                         *parallel->outputs[setup.result_relation]))
        << "engine " << EngineKindName(engine) << " on " << WfName(wf)
        << " is not bit-identical at " << threads << " threads";
  }
}

// The columnar migration contract: the typed-column kernels (and the batch
// expression compiler behind kSelect/kMap) produce BIT-identical output —
// row order, types, and every floating-point bit — to the seed row-of-variants
// kernels preserved in tests/row_reference.cc. Engine-independent, so it runs
// once per workflow on the two interpreters.
class ColumnarRowEquivalenceTest : public ::testing::TestWithParam<Wf> {};

TEST_P(ColumnarRowEquivalenceTest, ColumnarIdenticalToRowReference) {
  WfSetup setup = MakeSetup(GetParam());

  auto dag = ParseWorkflow(setup.workflow.language, setup.workflow.source);
  ASSERT_TRUE(dag.ok()) << dag.status();

  auto columnar =
      EvaluateDagRelation(**dag, setup.inputs, setup.result_relation);
  ASSERT_TRUE(columnar.ok()) << columnar.status();

  auto row_based =
      rowref::EvaluateDagRelation(**dag, setup.inputs, setup.result_relation);
  ASSERT_TRUE(row_based.ok()) << row_based.status();

  EXPECT_TRUE(Table::Identical(*columnar, *row_based))
      << "columnar plane diverged from the row reference on "
      << WfName(GetParam()) << "\ncolumnar:\n"
      << columnar->DebugString() << "row reference:\n"
      << row_based->DebugString();
}

// The fused interpreter (EvaluateDagRelation runs select→map→aggregate
// chains through the one-pass kernels) is bit-identical to itself at every
// thread width AND to the row oracle: morsel boundaries are computed on
// filtered-row counts, so the partial merge tree never changes shape.
TEST_P(ColumnarRowEquivalenceTest, FusedInterpreterBitIdenticalAcrossThreads) {
  WfSetup setup = MakeSetup(GetParam());

  auto dag = ParseWorkflow(setup.workflow.language, setup.workflow.source);
  ASSERT_TRUE(dag.ok()) << dag.status();

  auto row_based =
      rowref::EvaluateDagRelation(**dag, setup.inputs, setup.result_relation);
  ASSERT_TRUE(row_based.ok()) << row_based.status();

  for (int threads : {1, 2, 4, 8}) {
    ScopedParallelThreads width(threads);
    auto columnar =
        EvaluateDagRelation(**dag, setup.inputs, setup.result_relation);
    ASSERT_TRUE(columnar.ok()) << columnar.status();
    EXPECT_TRUE(Table::Identical(*columnar, *row_based))
        << "fused interpreter diverged from the row reference on "
        << WfName(GetParam()) << " at " << threads << " thread(s)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkflows, ColumnarRowEquivalenceTest,
    ::testing::Values(Wf::kTopShopper, Wf::kTpchHive, Wf::kTpchLindi,
                      Wf::kNetflix, Wf::kSimpleJoin, Wf::kPageRank, Wf::kSssp,
                      Wf::kKmeans, Wf::kCrossCommunity),
    [](const ::testing::TestParamInfo<Wf>& info) {
      return WfName(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    AllWorkflowsAllEngines, EngineEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(Wf::kTopShopper, Wf::kTpchHive, Wf::kTpchLindi,
                          Wf::kNetflix, Wf::kSimpleJoin, Wf::kPageRank,
                          Wf::kSssp, Wf::kKmeans, Wf::kCrossCommunity),
        ::testing::Values(EngineKind::kHadoop, EngineKind::kSpark,
                          EngineKind::kNaiad, EngineKind::kMetis,
                          EngineKind::kSerialC, EngineKind::kPowerGraph,
                          EngineKind::kGraphChi)),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(WfName(std::get<0>(info.param))) + "_" +
             EngineKindName(std::get<1>(info.param));
    });

}  // namespace
}  // namespace musketeer
