file(REMOVE_RECURSE
  "CMakeFiles/pagerank_portability.dir/pagerank_portability.cpp.o"
  "CMakeFiles/pagerank_portability.dir/pagerank_portability.cpp.o.d"
  "pagerank_portability"
  "pagerank_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
