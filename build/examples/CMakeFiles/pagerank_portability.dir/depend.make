# Empty dependencies file for pagerank_portability.
# This may be replaced when dependencies are built.
