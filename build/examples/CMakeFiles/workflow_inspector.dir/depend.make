# Empty dependencies file for workflow_inspector.
# This may be replaced when dependencies are built.
