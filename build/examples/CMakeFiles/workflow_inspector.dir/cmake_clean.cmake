file(REMOVE_RECURSE
  "CMakeFiles/workflow_inspector.dir/workflow_inspector.cpp.o"
  "CMakeFiles/workflow_inspector.dir/workflow_inspector.cpp.o.d"
  "workflow_inspector"
  "workflow_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
