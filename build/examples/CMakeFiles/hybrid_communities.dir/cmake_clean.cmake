file(REMOVE_RECURSE
  "CMakeFiles/hybrid_communities.dir/hybrid_communities.cpp.o"
  "CMakeFiles/hybrid_communities.dir/hybrid_communities.cpp.o.d"
  "hybrid_communities"
  "hybrid_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
