# Empty dependencies file for hybrid_communities.
# This may be replaced when dependencies are built.
