# Empty compiler generated dependencies file for bench_fig7_tpch.
# This may be replaced when dependencies are built.
