# Empty dependencies file for bench_fig11_pagerank_overhead.
# This may be replaced when dependencies are built.
