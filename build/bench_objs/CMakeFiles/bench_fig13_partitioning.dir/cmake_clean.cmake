file(REMOVE_RECURSE
  "../bench/bench_fig13_partitioning"
  "../bench/bench_fig13_partitioning.pdb"
  "CMakeFiles/bench_fig13_partitioning.dir/bench_fig13_partitioning.cc.o"
  "CMakeFiles/bench_fig13_partitioning.dir/bench_fig13_partitioning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
