file(REMOVE_RECURSE
  "../bench/bench_fig9_hybrid"
  "../bench/bench_fig9_hybrid.pdb"
  "CMakeFiles/bench_fig9_hybrid.dir/bench_fig9_hybrid.cc.o"
  "CMakeFiles/bench_fig9_hybrid.dir/bench_fig9_hybrid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
