# Empty dependencies file for bench_fig9_hybrid.
# This may be replaced when dependencies are built.
