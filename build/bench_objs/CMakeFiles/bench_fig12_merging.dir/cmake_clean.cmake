file(REMOVE_RECURSE
  "../bench/bench_fig12_merging"
  "../bench/bench_fig12_merging.pdb"
  "CMakeFiles/bench_fig12_merging.dir/bench_fig12_merging.cc.o"
  "CMakeFiles/bench_fig12_merging.dir/bench_fig12_merging.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_merging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
