# Empty dependencies file for bench_fig10_netflix_overhead.
# This may be replaced when dependencies are built.
