# Empty dependencies file for bench_fig8_pagerank_musketeer.
# This may be replaced when dependencies are built.
