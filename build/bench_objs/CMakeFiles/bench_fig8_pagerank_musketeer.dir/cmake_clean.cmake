file(REMOVE_RECURSE
  "../bench/bench_fig8_pagerank_musketeer"
  "../bench/bench_fig8_pagerank_musketeer.pdb"
  "CMakeFiles/bench_fig8_pagerank_musketeer.dir/bench_fig8_pagerank_musketeer.cc.o"
  "CMakeFiles/bench_fig8_pagerank_musketeer.dir/bench_fig8_pagerank_musketeer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_pagerank_musketeer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
