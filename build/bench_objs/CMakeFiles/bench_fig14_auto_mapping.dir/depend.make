# Empty dependencies file for bench_fig14_auto_mapping.
# This may be replaced when dependencies are built.
