file(REMOVE_RECURSE
  "../bench/bench_fig14_auto_mapping"
  "../bench/bench_fig14_auto_mapping.pdb"
  "CMakeFiles/bench_fig14_auto_mapping.dir/bench_fig14_auto_mapping.cc.o"
  "CMakeFiles/bench_fig14_auto_mapping.dir/bench_fig14_auto_mapping.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_auto_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
