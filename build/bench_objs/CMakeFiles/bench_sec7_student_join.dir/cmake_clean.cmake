file(REMOVE_RECURSE
  "../bench/bench_sec7_student_join"
  "../bench/bench_sec7_student_join.pdb"
  "CMakeFiles/bench_sec7_student_join.dir/bench_sec7_student_join.cc.o"
  "CMakeFiles/bench_sec7_student_join.dir/bench_sec7_student_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_student_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
