
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec7_student_join.cc" "bench_objs/CMakeFiles/bench_sec7_student_join.dir/bench_sec7_student_join.cc.o" "gcc" "bench_objs/CMakeFiles/bench_sec7_student_join.dir/bench_sec7_student_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/musketeer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/musketeer_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/frontends/CMakeFiles/musketeer_frontends.dir/DependInfo.cmake"
  "/root/repo/build/src/engines/CMakeFiles/musketeer_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/musketeer_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/musketeer_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/musketeer_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/musketeer_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/musketeer_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/musketeer_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/musketeer_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
