# Empty compiler generated dependencies file for bench_sec7_student_join.
# This may be replaced when dependencies are built.
