file(REMOVE_RECURSE
  "../bench/bench_fig15_sssp_kmeans"
  "../bench/bench_fig15_sssp_kmeans.pdb"
  "CMakeFiles/bench_fig15_sssp_kmeans.dir/bench_fig15_sssp_kmeans.cc.o"
  "CMakeFiles/bench_fig15_sssp_kmeans.dir/bench_fig15_sssp_kmeans.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_sssp_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
