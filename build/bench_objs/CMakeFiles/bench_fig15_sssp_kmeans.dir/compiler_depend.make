# Empty compiler generated dependencies file for bench_fig15_sssp_kmeans.
# This may be replaced when dependencies are built.
