file(REMOVE_RECURSE
  "../bench/bench_fig3_pagerank_systems"
  "../bench/bench_fig3_pagerank_systems.pdb"
  "CMakeFiles/bench_fig3_pagerank_systems.dir/bench_fig3_pagerank_systems.cc.o"
  "CMakeFiles/bench_fig3_pagerank_systems.dir/bench_fig3_pagerank_systems.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pagerank_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
