# Empty compiler generated dependencies file for bench_fig3_pagerank_systems.
# This may be replaced when dependencies are built.
