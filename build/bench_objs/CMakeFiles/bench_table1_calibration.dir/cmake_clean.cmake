file(REMOVE_RECURSE
  "../bench/bench_table1_calibration"
  "../bench/bench_table1_calibration.pdb"
  "CMakeFiles/bench_table1_calibration.dir/bench_table1_calibration.cc.o"
  "CMakeFiles/bench_table1_calibration.dir/bench_table1_calibration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
