file(REMOVE_RECURSE
  "CMakeFiles/substrates_test.dir/substrates_test.cc.o"
  "CMakeFiles/substrates_test.dir/substrates_test.cc.o.d"
  "substrates_test"
  "substrates_test.pdb"
  "substrates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
