# Empty dependencies file for substrates_test.
# This may be replaced when dependencies are built.
