# Empty dependencies file for timely_test.
# This may be replaced when dependencies are built.
