# Empty dependencies file for blackbox_test.
# This may be replaced when dependencies are built.
