file(REMOVE_RECURSE
  "CMakeFiles/blackbox_test.dir/blackbox_test.cc.o"
  "CMakeFiles/blackbox_test.dir/blackbox_test.cc.o.d"
  "blackbox_test"
  "blackbox_test.pdb"
  "blackbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
