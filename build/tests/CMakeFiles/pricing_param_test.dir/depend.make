# Empty dependencies file for pricing_param_test.
# This may be replaced when dependencies are built.
