file(REMOVE_RECURSE
  "CMakeFiles/pricing_param_test.dir/pricing_param_test.cc.o"
  "CMakeFiles/pricing_param_test.dir/pricing_param_test.cc.o.d"
  "pricing_param_test"
  "pricing_param_test.pdb"
  "pricing_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pricing_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
