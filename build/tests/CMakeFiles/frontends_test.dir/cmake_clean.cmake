file(REMOVE_RECURSE
  "CMakeFiles/frontends_test.dir/frontends_test.cc.o"
  "CMakeFiles/frontends_test.dir/frontends_test.cc.o.d"
  "frontends_test"
  "frontends_test.pdb"
  "frontends_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontends_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
