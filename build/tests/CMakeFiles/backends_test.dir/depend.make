# Empty dependencies file for backends_test.
# This may be replaced when dependencies are built.
