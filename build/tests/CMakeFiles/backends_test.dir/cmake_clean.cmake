file(REMOVE_RECURSE
  "CMakeFiles/backends_test.dir/backends_test.cc.o"
  "CMakeFiles/backends_test.dir/backends_test.cc.o.d"
  "backends_test"
  "backends_test.pdb"
  "backends_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
