# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/relational_ops_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/frontends_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/backends_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/engine_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/pricing_param_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/substrates_test[1]_include.cmake")
include("/root/repo/build/tests/udf_test[1]_include.cmake")
include("/root/repo/build/tests/blackbox_test[1]_include.cmake")
include("/root/repo/build/tests/fixpoint_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_extra_test[1]_include.cmake")
include("/root/repo/build/tests/timely_test[1]_include.cmake")
