file(REMOVE_RECURSE
  "CMakeFiles/musketeer_scheduler.dir/cost_model.cc.o"
  "CMakeFiles/musketeer_scheduler.dir/cost_model.cc.o.d"
  "CMakeFiles/musketeer_scheduler.dir/decision_tree.cc.o"
  "CMakeFiles/musketeer_scheduler.dir/decision_tree.cc.o.d"
  "CMakeFiles/musketeer_scheduler.dir/history.cc.o"
  "CMakeFiles/musketeer_scheduler.dir/history.cc.o.d"
  "CMakeFiles/musketeer_scheduler.dir/partitioner.cc.o"
  "CMakeFiles/musketeer_scheduler.dir/partitioner.cc.o.d"
  "libmusketeer_scheduler.a"
  "libmusketeer_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
