# Empty dependencies file for musketeer_scheduler.
# This may be replaced when dependencies are built.
