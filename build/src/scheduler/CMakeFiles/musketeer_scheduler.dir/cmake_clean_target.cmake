file(REMOVE_RECURSE
  "libmusketeer_scheduler.a"
)
