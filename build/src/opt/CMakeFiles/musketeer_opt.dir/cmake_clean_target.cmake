file(REMOVE_RECURSE
  "libmusketeer_opt.a"
)
