# Empty compiler generated dependencies file for musketeer_opt.
# This may be replaced when dependencies are built.
