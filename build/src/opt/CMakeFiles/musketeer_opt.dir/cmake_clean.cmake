file(REMOVE_RECURSE
  "CMakeFiles/musketeer_opt.dir/idiom.cc.o"
  "CMakeFiles/musketeer_opt.dir/idiom.cc.o.d"
  "CMakeFiles/musketeer_opt.dir/passes.cc.o"
  "CMakeFiles/musketeer_opt.dir/passes.cc.o.d"
  "libmusketeer_opt.a"
  "libmusketeer_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
