# Empty dependencies file for musketeer_base.
# This may be replaced when dependencies are built.
