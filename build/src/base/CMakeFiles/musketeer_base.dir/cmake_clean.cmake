file(REMOVE_RECURSE
  "CMakeFiles/musketeer_base.dir/logging.cc.o"
  "CMakeFiles/musketeer_base.dir/logging.cc.o.d"
  "CMakeFiles/musketeer_base.dir/status.cc.o"
  "CMakeFiles/musketeer_base.dir/status.cc.o.d"
  "CMakeFiles/musketeer_base.dir/strings.cc.o"
  "CMakeFiles/musketeer_base.dir/strings.cc.o.d"
  "libmusketeer_base.a"
  "libmusketeer_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
