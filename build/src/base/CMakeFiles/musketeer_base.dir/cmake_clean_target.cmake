file(REMOVE_RECURSE
  "libmusketeer_base.a"
)
