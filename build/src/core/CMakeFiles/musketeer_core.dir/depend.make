# Empty dependencies file for musketeer_core.
# This may be replaced when dependencies are built.
