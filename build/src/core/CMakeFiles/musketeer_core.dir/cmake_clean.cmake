file(REMOVE_RECURSE
  "CMakeFiles/musketeer_core.dir/musketeer.cc.o"
  "CMakeFiles/musketeer_core.dir/musketeer.cc.o.d"
  "libmusketeer_core.a"
  "libmusketeer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
