# Empty dependencies file for musketeer_cluster.
# This may be replaced when dependencies are built.
