file(REMOVE_RECURSE
  "CMakeFiles/musketeer_cluster.dir/cluster.cc.o"
  "CMakeFiles/musketeer_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/musketeer_cluster.dir/dfs.cc.o"
  "CMakeFiles/musketeer_cluster.dir/dfs.cc.o.d"
  "libmusketeer_cluster.a"
  "libmusketeer_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
