file(REMOVE_RECURSE
  "libmusketeer_cluster.a"
)
