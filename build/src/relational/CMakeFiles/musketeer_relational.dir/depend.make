# Empty dependencies file for musketeer_relational.
# This may be replaced when dependencies are built.
