file(REMOVE_RECURSE
  "libmusketeer_relational.a"
)
