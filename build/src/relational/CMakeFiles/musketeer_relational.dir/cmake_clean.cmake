file(REMOVE_RECURSE
  "CMakeFiles/musketeer_relational.dir/csv.cc.o"
  "CMakeFiles/musketeer_relational.dir/csv.cc.o.d"
  "CMakeFiles/musketeer_relational.dir/ops.cc.o"
  "CMakeFiles/musketeer_relational.dir/ops.cc.o.d"
  "CMakeFiles/musketeer_relational.dir/schema.cc.o"
  "CMakeFiles/musketeer_relational.dir/schema.cc.o.d"
  "CMakeFiles/musketeer_relational.dir/table.cc.o"
  "CMakeFiles/musketeer_relational.dir/table.cc.o.d"
  "CMakeFiles/musketeer_relational.dir/value.cc.o"
  "CMakeFiles/musketeer_relational.dir/value.cc.o.d"
  "libmusketeer_relational.a"
  "libmusketeer_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
