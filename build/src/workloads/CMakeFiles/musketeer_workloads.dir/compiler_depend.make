# Empty compiler generated dependencies file for musketeer_workloads.
# This may be replaced when dependencies are built.
