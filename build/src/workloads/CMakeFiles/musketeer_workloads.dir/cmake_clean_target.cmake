file(REMOVE_RECURSE
  "libmusketeer_workloads.a"
)
