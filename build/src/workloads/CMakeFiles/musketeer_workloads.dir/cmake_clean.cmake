file(REMOVE_RECURSE
  "CMakeFiles/musketeer_workloads.dir/datasets.cc.o"
  "CMakeFiles/musketeer_workloads.dir/datasets.cc.o.d"
  "CMakeFiles/musketeer_workloads.dir/workflows.cc.o"
  "CMakeFiles/musketeer_workloads.dir/workflows.cc.o.d"
  "libmusketeer_workloads.a"
  "libmusketeer_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
