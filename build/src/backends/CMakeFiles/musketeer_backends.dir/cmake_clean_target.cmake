file(REMOVE_RECURSE
  "libmusketeer_backends.a"
)
