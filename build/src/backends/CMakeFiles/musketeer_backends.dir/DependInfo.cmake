
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/backends.cc" "src/backends/CMakeFiles/musketeer_backends.dir/backends.cc.o" "gcc" "src/backends/CMakeFiles/musketeer_backends.dir/backends.cc.o.d"
  "/root/repo/src/backends/codegen.cc" "src/backends/CMakeFiles/musketeer_backends.dir/codegen.cc.o" "gcc" "src/backends/CMakeFiles/musketeer_backends.dir/codegen.cc.o.d"
  "/root/repo/src/backends/engine_kind.cc" "src/backends/CMakeFiles/musketeer_backends.dir/engine_kind.cc.o" "gcc" "src/backends/CMakeFiles/musketeer_backends.dir/engine_kind.cc.o.d"
  "/root/repo/src/backends/job.cc" "src/backends/CMakeFiles/musketeer_backends.dir/job.cc.o" "gcc" "src/backends/CMakeFiles/musketeer_backends.dir/job.cc.o.d"
  "/root/repo/src/backends/perf_model.cc" "src/backends/CMakeFiles/musketeer_backends.dir/perf_model.cc.o" "gcc" "src/backends/CMakeFiles/musketeer_backends.dir/perf_model.cc.o.d"
  "/root/repo/src/backends/pricing.cc" "src/backends/CMakeFiles/musketeer_backends.dir/pricing.cc.o" "gcc" "src/backends/CMakeFiles/musketeer_backends.dir/pricing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/musketeer_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/musketeer_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/musketeer_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/musketeer_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/musketeer_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
