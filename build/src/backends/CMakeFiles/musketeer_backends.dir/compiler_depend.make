# Empty compiler generated dependencies file for musketeer_backends.
# This may be replaced when dependencies are built.
