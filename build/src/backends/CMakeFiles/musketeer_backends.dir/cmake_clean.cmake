file(REMOVE_RECURSE
  "CMakeFiles/musketeer_backends.dir/backends.cc.o"
  "CMakeFiles/musketeer_backends.dir/backends.cc.o.d"
  "CMakeFiles/musketeer_backends.dir/codegen.cc.o"
  "CMakeFiles/musketeer_backends.dir/codegen.cc.o.d"
  "CMakeFiles/musketeer_backends.dir/engine_kind.cc.o"
  "CMakeFiles/musketeer_backends.dir/engine_kind.cc.o.d"
  "CMakeFiles/musketeer_backends.dir/job.cc.o"
  "CMakeFiles/musketeer_backends.dir/job.cc.o.d"
  "CMakeFiles/musketeer_backends.dir/perf_model.cc.o"
  "CMakeFiles/musketeer_backends.dir/perf_model.cc.o.d"
  "CMakeFiles/musketeer_backends.dir/pricing.cc.o"
  "CMakeFiles/musketeer_backends.dir/pricing.cc.o.d"
  "libmusketeer_backends.a"
  "libmusketeer_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
