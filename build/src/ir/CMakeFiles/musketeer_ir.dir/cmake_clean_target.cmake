file(REMOVE_RECURSE
  "libmusketeer_ir.a"
)
