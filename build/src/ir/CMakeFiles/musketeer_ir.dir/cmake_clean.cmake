file(REMOVE_RECURSE
  "CMakeFiles/musketeer_ir.dir/dag.cc.o"
  "CMakeFiles/musketeer_ir.dir/dag.cc.o.d"
  "CMakeFiles/musketeer_ir.dir/eval.cc.o"
  "CMakeFiles/musketeer_ir.dir/eval.cc.o.d"
  "CMakeFiles/musketeer_ir.dir/expr.cc.o"
  "CMakeFiles/musketeer_ir.dir/expr.cc.o.d"
  "CMakeFiles/musketeer_ir.dir/operator.cc.o"
  "CMakeFiles/musketeer_ir.dir/operator.cc.o.d"
  "libmusketeer_ir.a"
  "libmusketeer_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
