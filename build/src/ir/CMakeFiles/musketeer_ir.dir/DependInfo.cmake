
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/dag.cc" "src/ir/CMakeFiles/musketeer_ir.dir/dag.cc.o" "gcc" "src/ir/CMakeFiles/musketeer_ir.dir/dag.cc.o.d"
  "/root/repo/src/ir/eval.cc" "src/ir/CMakeFiles/musketeer_ir.dir/eval.cc.o" "gcc" "src/ir/CMakeFiles/musketeer_ir.dir/eval.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/ir/CMakeFiles/musketeer_ir.dir/expr.cc.o" "gcc" "src/ir/CMakeFiles/musketeer_ir.dir/expr.cc.o.d"
  "/root/repo/src/ir/operator.cc" "src/ir/CMakeFiles/musketeer_ir.dir/operator.cc.o" "gcc" "src/ir/CMakeFiles/musketeer_ir.dir/operator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/musketeer_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/musketeer_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
