# Empty compiler generated dependencies file for musketeer_ir.
# This may be replaced when dependencies are built.
