file(REMOVE_RECURSE
  "libmusketeer_engines.a"
)
