
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engines/engine.cc" "src/engines/CMakeFiles/musketeer_engines.dir/engine.cc.o" "gcc" "src/engines/CMakeFiles/musketeer_engines.dir/engine.cc.o.d"
  "/root/repo/src/engines/executor.cc" "src/engines/CMakeFiles/musketeer_engines.dir/executor.cc.o" "gcc" "src/engines/CMakeFiles/musketeer_engines.dir/executor.cc.o.d"
  "/root/repo/src/engines/mapreduce_runtime.cc" "src/engines/CMakeFiles/musketeer_engines.dir/mapreduce_runtime.cc.o" "gcc" "src/engines/CMakeFiles/musketeer_engines.dir/mapreduce_runtime.cc.o.d"
  "/root/repo/src/engines/rdd_runtime.cc" "src/engines/CMakeFiles/musketeer_engines.dir/rdd_runtime.cc.o" "gcc" "src/engines/CMakeFiles/musketeer_engines.dir/rdd_runtime.cc.o.d"
  "/root/repo/src/engines/timely_runtime.cc" "src/engines/CMakeFiles/musketeer_engines.dir/timely_runtime.cc.o" "gcc" "src/engines/CMakeFiles/musketeer_engines.dir/timely_runtime.cc.o.d"
  "/root/repo/src/engines/vertex_runtime.cc" "src/engines/CMakeFiles/musketeer_engines.dir/vertex_runtime.cc.o" "gcc" "src/engines/CMakeFiles/musketeer_engines.dir/vertex_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backends/CMakeFiles/musketeer_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/musketeer_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/musketeer_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/musketeer_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/musketeer_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/musketeer_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
