file(REMOVE_RECURSE
  "CMakeFiles/musketeer_engines.dir/engine.cc.o"
  "CMakeFiles/musketeer_engines.dir/engine.cc.o.d"
  "CMakeFiles/musketeer_engines.dir/executor.cc.o"
  "CMakeFiles/musketeer_engines.dir/executor.cc.o.d"
  "CMakeFiles/musketeer_engines.dir/mapreduce_runtime.cc.o"
  "CMakeFiles/musketeer_engines.dir/mapreduce_runtime.cc.o.d"
  "CMakeFiles/musketeer_engines.dir/rdd_runtime.cc.o"
  "CMakeFiles/musketeer_engines.dir/rdd_runtime.cc.o.d"
  "CMakeFiles/musketeer_engines.dir/timely_runtime.cc.o"
  "CMakeFiles/musketeer_engines.dir/timely_runtime.cc.o.d"
  "CMakeFiles/musketeer_engines.dir/vertex_runtime.cc.o"
  "CMakeFiles/musketeer_engines.dir/vertex_runtime.cc.o.d"
  "libmusketeer_engines.a"
  "libmusketeer_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
