# Empty dependencies file for musketeer_engines.
# This may be replaced when dependencies are built.
