
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontends/beer_parser.cc" "src/frontends/CMakeFiles/musketeer_frontends.dir/beer_parser.cc.o" "gcc" "src/frontends/CMakeFiles/musketeer_frontends.dir/beer_parser.cc.o.d"
  "/root/repo/src/frontends/expr_parser.cc" "src/frontends/CMakeFiles/musketeer_frontends.dir/expr_parser.cc.o" "gcc" "src/frontends/CMakeFiles/musketeer_frontends.dir/expr_parser.cc.o.d"
  "/root/repo/src/frontends/frontend.cc" "src/frontends/CMakeFiles/musketeer_frontends.dir/frontend.cc.o" "gcc" "src/frontends/CMakeFiles/musketeer_frontends.dir/frontend.cc.o.d"
  "/root/repo/src/frontends/gas_parser.cc" "src/frontends/CMakeFiles/musketeer_frontends.dir/gas_parser.cc.o" "gcc" "src/frontends/CMakeFiles/musketeer_frontends.dir/gas_parser.cc.o.d"
  "/root/repo/src/frontends/hive_parser.cc" "src/frontends/CMakeFiles/musketeer_frontends.dir/hive_parser.cc.o" "gcc" "src/frontends/CMakeFiles/musketeer_frontends.dir/hive_parser.cc.o.d"
  "/root/repo/src/frontends/lexer.cc" "src/frontends/CMakeFiles/musketeer_frontends.dir/lexer.cc.o" "gcc" "src/frontends/CMakeFiles/musketeer_frontends.dir/lexer.cc.o.d"
  "/root/repo/src/frontends/lindi_parser.cc" "src/frontends/CMakeFiles/musketeer_frontends.dir/lindi_parser.cc.o" "gcc" "src/frontends/CMakeFiles/musketeer_frontends.dir/lindi_parser.cc.o.d"
  "/root/repo/src/frontends/udf_registry.cc" "src/frontends/CMakeFiles/musketeer_frontends.dir/udf_registry.cc.o" "gcc" "src/frontends/CMakeFiles/musketeer_frontends.dir/udf_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/musketeer_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/musketeer_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/musketeer_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
