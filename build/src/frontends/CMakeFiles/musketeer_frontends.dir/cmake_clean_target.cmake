file(REMOVE_RECURSE
  "libmusketeer_frontends.a"
)
