# Empty dependencies file for musketeer_frontends.
# This may be replaced when dependencies are built.
