file(REMOVE_RECURSE
  "CMakeFiles/musketeer_frontends.dir/beer_parser.cc.o"
  "CMakeFiles/musketeer_frontends.dir/beer_parser.cc.o.d"
  "CMakeFiles/musketeer_frontends.dir/expr_parser.cc.o"
  "CMakeFiles/musketeer_frontends.dir/expr_parser.cc.o.d"
  "CMakeFiles/musketeer_frontends.dir/frontend.cc.o"
  "CMakeFiles/musketeer_frontends.dir/frontend.cc.o.d"
  "CMakeFiles/musketeer_frontends.dir/gas_parser.cc.o"
  "CMakeFiles/musketeer_frontends.dir/gas_parser.cc.o.d"
  "CMakeFiles/musketeer_frontends.dir/hive_parser.cc.o"
  "CMakeFiles/musketeer_frontends.dir/hive_parser.cc.o.d"
  "CMakeFiles/musketeer_frontends.dir/lexer.cc.o"
  "CMakeFiles/musketeer_frontends.dir/lexer.cc.o.d"
  "CMakeFiles/musketeer_frontends.dir/lindi_parser.cc.o"
  "CMakeFiles/musketeer_frontends.dir/lindi_parser.cc.o.d"
  "CMakeFiles/musketeer_frontends.dir/udf_registry.cc.o"
  "CMakeFiles/musketeer_frontends.dir/udf_registry.cc.o.d"
  "libmusketeer_frontends.a"
  "libmusketeer_frontends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_frontends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
