# Empty compiler generated dependencies file for musketeer_cli.
# This may be replaced when dependencies are built.
