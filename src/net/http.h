// Minimal HTTP/1.1 message layer for the network front door (src/net/).
//
// The server's event loop feeds raw bytes into an incremental HttpParser as
// they arrive on a non-blocking socket; the parser surfaces complete
// requests once the header block and Content-Length body are in. No
// allocation-per-byte tricks — requests are small (workflow sources, a few
// KB) and bounded by max_message_bytes, which is the connection-level
// defense against a client that streams an endless header block.
//
// Deliberate subset: Content-Length framing only (chunked encoding is
// answered with 411/501 by the server), no multipart, no compression.
// Both \r\n and bare \n line endings are accepted so `nc`/telnet sessions
// work — the same tolerance pazpar2-style C servers ship.
//
// The mirror-image HttpResponseParser exists for the in-repo blocking
// client (net/client.h) that tests and the server-throughput bench use.

#ifndef MUSKETEER_SRC_NET_HTTP_H_
#define MUSKETEER_SRC_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace musketeer {

struct HttpRequest {
  std::string method;   // uppercase, e.g. "GET"
  std::string target;   // raw request target, e.g. "/status/7?x=1"
  std::string path;     // target up to '?'
  std::string query;    // after '?', "" if none
  std::string version;  // "HTTP/1.1"
  // Header names lower-cased at parse time; values stripped of surrounding
  // whitespace. Order preserved.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // First header with the given (lower-case) name, or nullptr.
  const std::string* FindHeader(std::string_view name) const;
  // True when the client asked for the connection to close after this
  // exchange (Connection: close, or HTTP/1.0 without keep-alive).
  bool WantsClose() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
  bool close = false;  // send Connection: close and drop the connection
};

// "OK", "Too Many Requests", ... ; "Unknown" for unmapped codes.
const char* HttpStatusText(int status);

// Full wire form: status line, Content-Length, headers, body.
std::string SerializeResponse(const HttpResponse& response);

// Wire form of a request (used by the blocking client).
std::string SerializeRequest(const HttpRequest& request);

// Incremental HTTP/1.1 request parser. Feed() consumes bytes and appends
// every completed request to `out`; a syntax error or an oversized message
// latches the parser into the error state (the connection should be
// answered with `error_status` and closed).
class HttpParser {
 public:
  explicit HttpParser(size_t max_message_bytes = 1 << 20)
      : max_message_bytes_(max_message_bytes) {}

  // Returns false once the parser is in the error state.
  bool Feed(std::string_view data, std::vector<HttpRequest>* out);

  bool error() const { return error_; }
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }
  // Bytes buffered but not yet consumed by a complete message.
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  bool ParseBuffered(std::vector<HttpRequest>* out);
  bool Fail(int status, std::string message);

  const size_t max_message_bytes_;
  std::string buffer_;
  // Set once the header block of the in-progress request is parsed and its
  // body is still being accumulated.
  bool in_body_ = false;
  HttpRequest partial_;
  size_t body_remaining_ = 0;
  bool error_ = false;
  int error_status_ = 400;
  std::string error_message_;
};

// Incremental HTTP/1.1 response parser (client side). Content-Length
// framing only, matching what the in-repo server emits.
class HttpResponseParser {
 public:
  struct Response {
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;  // lower-cased
    std::string body;

    const std::string* FindHeader(std::string_view name) const;
  };

  explicit HttpResponseParser(size_t max_message_bytes = 64u << 20)
      : max_message_bytes_(max_message_bytes) {}

  bool Feed(std::string_view data, std::vector<Response>* out);
  bool error() const { return error_; }
  const std::string& error_message() const { return error_message_; }

 private:
  bool ParseBuffered(std::vector<Response>* out);
  bool Fail(std::string message);

  const size_t max_message_bytes_;
  std::string buffer_;
  bool in_body_ = false;
  Response partial_;
  size_t body_remaining_ = 0;
  bool error_ = false;
  std::string error_message_;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_NET_HTTP_H_
