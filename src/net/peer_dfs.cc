#include "src/net/peer_dfs.h"

#include <algorithm>
#include <utility>

#include "src/base/strings.h"
#include "src/relational/table.h"

namespace musketeer {

std::optional<std::vector<PeerAddress>> ParsePeerList(const std::string& spec) {
  std::vector<PeerAddress> peers;
  for (const std::string& entry : StrSplit(spec, ',')) {
    PeerAddress addr;
    if (!entry.empty() && entry != "-") {
      size_t colon = entry.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        return std::nullopt;
      }
      auto port = ParseInt64(entry.substr(colon + 1));
      if (!port.has_value() || *port < 1 || *port > 65535) {
        return std::nullopt;
      }
      addr.host = entry.substr(0, colon);
      addr.port = static_cast<uint16_t>(*port);
    }
    peers.push_back(std::move(addr));
  }
  return peers;
}

PeerDfs::PeerDfs(int self_shard, int num_shards,
                 std::vector<PeerAddress> peers, ShardingStrategy strategy)
    : self_(self_shard),
      num_shards_(num_shards),
      peers_(std::move(peers)),
      map_(num_shards, strategy) {
  conns_.reserve(static_cast<size_t>(num_shards_));
  for (int i = 0; i < num_shards_; ++i) {
    conns_.push_back(std::make_unique<Peer>());
  }
}

template <typename Fn>
auto PeerDfs::WithPeer(int shard, Fn&& op) const
    -> decltype(op(std::declval<NetClient&>())) {
  if (shard < 0 || shard >= num_shards_ || shard == self_ ||
      static_cast<size_t>(shard) >= peers_.size()) {
    return UnavailableError("no peer for shard " + std::to_string(shard));
  }
  if (peers_[static_cast<size_t>(shard)].port == 0) {
    return UnavailableError("no address configured for shard " +
                            std::to_string(shard));
  }
  Peer& peer = *conns_[static_cast<size_t>(shard)];
  std::lock_guard lock(peer.mu);
  if (!peer.client.connected()) {
    const PeerAddress& addr = peers_[static_cast<size_t>(shard)];
    Status connected = peer.client.Connect(addr.host, addr.port);
    if (!connected.ok()) {
      return connected;
    }
  }
  auto result = op(peer.client);
  if (!result.ok()) {
    peer.client.Close();  // force a fresh dial on the next use
  }
  return result;
}

StatusOr<TablePtr> PeerDfs::FetchFrom(int shard,
                                      const std::string& name) const {
  auto fetched = WithPeer(
      shard, [&](NetClient& client) { return client.FetchRelation(name); });
  if (fetched.ok()) {
    remote_fetches_.fetch_add(1, std::memory_order_relaxed);
    AtomicAdd(&remote_bytes_, (*fetched)->nominal_bytes());
  }
  return fetched;
}

void PeerDfs::Put(const std::string& name, TablePtr table) {
  const int owner = map_.OwnerOf(name);
  if (owner == self_) {
    Dfs::Put(name, std::move(table));
    return;
  }
  Status pushed = WithPeer(owner, [&](NetClient& client) {
    return client.PushRelation(name, *table);
  });
  if (pushed.ok()) {
    // The bytes now live on the owner, but this node's fingerprint view must
    // still see the overwrite (the owner bumps its own counter when its
    // server PutLocal lands the relation).
    BumpVersion(name);
    return;
  }
  // Degraded mode: keep the relation locally so the workflow can finish;
  // Get's scan-all fallback lets other shards still find it here.
  push_failures_.fetch_add(1, std::memory_order_relaxed);
  Dfs::Put(name, std::move(table));
}

StatusOr<TablePtr> PeerDfs::Get(const std::string& name) const {
  if (Dfs::Contains(name)) {
    return Dfs::Get(name);
  }
  const int owner = map_.OwnerOf(name);
  auto fetched = FetchFrom(owner, name);
  if (fetched.ok()) {
    return fetched;
  }
  // Owner miss (dead peer, or a degraded Put stranded the relation off its
  // strategy home): ask everyone else, mirroring ShardedDfs's
  // scan-all-partitions directory repair.
  for (int shard = 0; shard < num_shards_; ++shard) {
    if (shard == self_ || shard == owner) {
      continue;
    }
    auto scanned = FetchFrom(shard, name);
    if (scanned.ok()) {
      return scanned;
    }
  }
  return NotFoundError("relation '" + name + "' not found on any shard");
}

bool PeerDfs::Contains(const std::string& name) const {
  if (Dfs::Contains(name)) {
    return true;
  }
  const int owner = map_.OwnerOf(name);
  if (owner == self_) {
    return false;  // we are the home and do not hold it
  }
  auto names = WithPeer(
      owner, [](NetClient& client) { return client.ListRelations(); });
  return names.ok() &&
         std::find(names->begin(), names->end(), name) != names->end();
}

std::vector<std::string> PeerDfs::ListRelations() const {
  std::vector<std::string> all = Dfs::ListRelations();
  for (int shard = 0; shard < num_shards_; ++shard) {
    if (shard == self_) {
      continue;
    }
    auto names = WithPeer(
        shard, [](NetClient& client) { return client.ListRelations(); });
    if (names.ok()) {
      all.insert(all.end(), names->begin(), names->end());
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

bool PeerDfs::IsLocal(const std::string& name) const {
  return Dfs::Contains(name) || map_.OwnerOf(name) == self_;
}

}  // namespace musketeer
