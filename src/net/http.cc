#include "src/net/http.h"

#include <algorithm>
#include <cctype>

#include "src/base/strings.h"

namespace musketeer {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

// Finds a complete header block in `buffer` (terminated by a blank line,
// tolerating both \r\n and \n endings). On success fills `lines` with the
// non-empty header lines and returns the offset just past the terminator;
// returns npos when the block is still incomplete.
size_t ExtractHeaderBlock(const std::string& buffer,
                          std::vector<std::string_view>* lines) {
  lines->clear();
  size_t line_start = 0;
  while (true) {
    size_t nl = buffer.find('\n', line_start);
    if (nl == std::string::npos) {
      return std::string::npos;
    }
    std::string_view line(buffer.data() + line_start, nl - line_start);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (line.empty()) {
      if (lines->empty()) {
        // Stray blank line(s) between messages: skip.
        line_start = nl + 1;
        continue;
      }
      return nl + 1;
    }
    lines->push_back(line);
    line_start = nl + 1;
  }
}

// Splits "Name: value" into a lower-cased name and stripped value.
bool ParseHeaderLine(std::string_view line, std::string* name,
                     std::string* value) {
  size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return false;
  }
  *name = ToLower(StripWhitespace(line.substr(0, colon)));
  *value = std::string(StripWhitespace(line.substr(colon + 1)));
  return !name->empty();
}

const std::string* FindIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (key == name) {
      return &value;
    }
  }
  return nullptr;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

bool HttpRequest::WantsClose() const {
  const std::string* connection = FindHeader("connection");
  if (connection != nullptr && EqualsIgnoreCase(*connection, "close")) {
    return true;
  }
  if (version == "HTTP/1.0") {
    return connection == nullptr ||
           !EqualsIgnoreCase(*connection, "keep-alive");
  }
  return false;
}

const std::string* HttpResponseParser::Response::FindHeader(
    std::string_view name) const {
  return FindIn(headers, name);
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  if (response.close) {
    out += "Connection: close\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

std::string SerializeRequest(const HttpRequest& request) {
  std::string out = request.method + " " + request.target + " HTTP/1.1\r\n";
  bool has_length = false;
  for (const auto& [name, value] : request.headers) {
    out += name + ": " + value + "\r\n";
    if (EqualsIgnoreCase(name, "content-length")) {
      has_length = true;
    }
  }
  if (!has_length && (!request.body.empty() || request.method == "POST")) {
    out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

// ---- HttpParser ------------------------------------------------------------

bool HttpParser::Fail(int status, std::string message) {
  error_ = true;
  error_status_ = status;
  error_message_ = std::move(message);
  return false;
}

bool HttpParser::Feed(std::string_view data, std::vector<HttpRequest>* out) {
  if (error_) {
    return false;
  }
  buffer_.append(data.data(), data.size());
  return ParseBuffered(out);
}

bool HttpParser::ParseBuffered(std::vector<HttpRequest>* out) {
  while (true) {
    if (!in_body_) {
      std::vector<std::string_view> lines;
      size_t block_end = ExtractHeaderBlock(buffer_, &lines);
      if (block_end == std::string::npos) {
        if (buffer_.size() > max_message_bytes_) {
          return Fail(431, "header block exceeds " +
                               std::to_string(max_message_bytes_) + " bytes");
        }
        return true;  // need more bytes
      }
      // Request line: METHOD SP target SP version.
      std::vector<std::string> parts;
      for (const std::string& p : StrSplit(lines[0], ' ')) {
        if (!p.empty()) {
          parts.push_back(p);
        }
      }
      if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/")) {
        return Fail(400, "malformed request line");
      }
      partial_ = HttpRequest{};
      partial_.method = ToLower(parts[0]);
      std::transform(partial_.method.begin(), partial_.method.end(),
                     partial_.method.begin(),
                     [](unsigned char c) { return std::toupper(c); });
      partial_.target = parts[1];
      partial_.version = parts[2];
      size_t qmark = partial_.target.find('?');
      partial_.path = partial_.target.substr(0, qmark);
      partial_.query = qmark == std::string::npos
                           ? ""
                           : partial_.target.substr(qmark + 1);
      size_t content_length = 0;
      for (size_t i = 1; i < lines.size(); ++i) {
        std::string name, value;
        if (!ParseHeaderLine(lines[i], &name, &value)) {
          return Fail(400, "malformed header line");
        }
        if (name == "transfer-encoding" &&
            !EqualsIgnoreCase(value, "identity")) {
          return Fail(501, "transfer-encoding not supported");
        }
        if (name == "content-length") {
          auto n = ParseInt64(value);
          if (!n.has_value() || *n < 0) {
            return Fail(400, "bad content-length");
          }
          content_length = static_cast<size_t>(*n);
        }
        partial_.headers.emplace_back(std::move(name), std::move(value));
      }
      if (content_length > max_message_bytes_) {
        return Fail(413, "body exceeds " +
                             std::to_string(max_message_bytes_) + " bytes");
      }
      buffer_.erase(0, block_end);
      body_remaining_ = content_length;
      in_body_ = true;
    }
    if (buffer_.size() < body_remaining_) {
      return true;  // body still arriving
    }
    partial_.body = buffer_.substr(0, body_remaining_);
    buffer_.erase(0, body_remaining_);
    body_remaining_ = 0;
    in_body_ = false;
    out->push_back(std::move(partial_));
    partial_ = HttpRequest{};
  }
}

// ---- HttpResponseParser ----------------------------------------------------

bool HttpResponseParser::Fail(std::string message) {
  error_ = true;
  error_message_ = std::move(message);
  return false;
}

bool HttpResponseParser::Feed(std::string_view data,
                              std::vector<Response>* out) {
  if (error_) {
    return false;
  }
  buffer_.append(data.data(), data.size());
  return ParseBuffered(out);
}

bool HttpResponseParser::ParseBuffered(std::vector<Response>* out) {
  while (true) {
    if (!in_body_) {
      std::vector<std::string_view> lines;
      size_t block_end = ExtractHeaderBlock(buffer_, &lines);
      if (block_end == std::string::npos) {
        if (buffer_.size() > max_message_bytes_) {
          return Fail("response header block too large");
        }
        return true;
      }
      // Status line: HTTP/1.1 SP code SP reason...
      std::vector<std::string> parts = StrSplit(lines[0], ' ');
      if (parts.size() < 2 || !StartsWith(parts[0], "HTTP/")) {
        return Fail("malformed status line");
      }
      auto code = ParseInt64(parts[1]);
      if (!code.has_value()) {
        return Fail("malformed status code");
      }
      partial_ = Response{};
      partial_.status = static_cast<int>(*code);
      size_t content_length = 0;
      for (size_t i = 1; i < lines.size(); ++i) {
        std::string name, value;
        if (!ParseHeaderLine(lines[i], &name, &value)) {
          return Fail("malformed header line");
        }
        if (name == "content-length") {
          auto n = ParseInt64(value);
          if (!n.has_value() || *n < 0) {
            return Fail("bad content-length");
          }
          content_length = static_cast<size_t>(*n);
        }
        partial_.headers.emplace_back(std::move(name), std::move(value));
      }
      if (content_length > max_message_bytes_) {
        return Fail("response body too large");
      }
      buffer_.erase(0, block_end);
      body_remaining_ = content_length;
      in_body_ = true;
    }
    if (buffer_.size() < body_remaining_) {
      return true;
    }
    partial_.body = buffer_.substr(0, body_remaining_);
    buffer_.erase(0, body_remaining_);
    body_remaining_ = 0;
    in_body_ = false;
    out->push_back(std::move(partial_));
    partial_ = Response{};
  }
}

}  // namespace musketeer
