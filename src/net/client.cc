#include "src/net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <thread>

#include "src/base/json.h"
#include "src/relational/csv.h"
#include "src/relational/schema.h"
#include "src/relational/table.h"

namespace musketeer {

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return InternalError("socket(): " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return InvalidArgumentError("bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = UnavailableError("connect(" + host + ":" +
                                     std::to_string(port) +
                                     "): " + std::strerror(errno));
    Close();
    return status;
  }
  return OkStatus();
}

StatusOr<HttpResponseParser::Response> NetClient::Request(
    const HttpRequest& request) {
  if (fd_ < 0) {
    return FailedPreconditionError("not connected");
  }
  std::string wire = SerializeRequest(request);
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return UnavailableError("send(): " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  HttpResponseParser parser;
  std::vector<HttpResponseParser::Response> responses;
  char buf[16384];
  while (responses.empty()) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return UnavailableError("server closed connection mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError("recv(): " + std::string(std::strerror(errno)));
    }
    if (!parser.Feed(std::string_view(buf, static_cast<size_t>(n)),
                     &responses)) {
      return InternalError("bad response: " + parser.error_message());
    }
  }
  return responses.front();
}

StatusOr<NetClient::SubmitReply> NetClient::SubmitWorkflow(
    const SubmitOptions& options, const std::string& source) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/submit";
  request.body = source;
  if (!options.tenant.empty()) {
    request.headers.emplace_back("X-Tenant", options.tenant);
  }
  request.headers.emplace_back("X-Workflow-Id", options.workflow_id);
  request.headers.emplace_back("X-Language", options.language);
  if (options.deadline_ms > 0) {
    request.headers.emplace_back("X-Deadline-Ms",
                                 std::to_string(options.deadline_ms));
  }
  if (options.incremental) {
    request.headers.emplace_back("X-Incremental", "1");
  }
  auto response = Request(request);
  if (!response.ok()) {
    return response.status();
  }
  auto json = ParseJson(response->body);
  if (!json.ok()) {
    return InternalError("unparseable submit response: " + response->body);
  }
  SubmitReply reply;
  reply.status = response->status;
  if (const JsonValue* ticket = json->Find("ticket")) {
    reply.ticket = static_cast<uint64_t>(ticket->number_value);
  }
  if (const JsonValue* state = json->Find("state")) {
    reply.state = state->string_value;
  }
  if (const JsonValue* reason = json->Find("reject_reason")) {
    reply.reject_reason = reason->string_value;
  }
  if (const JsonValue* error = json->Find("error")) {
    reply.error = error->string_value;
  }
  return reply;
}

StatusOr<std::string> NetClient::StateOf(uint64_t ticket) {
  HttpRequest request;
  request.method = "GET";
  request.target = "/status/" + std::to_string(ticket);
  auto response = Request(request);
  if (!response.ok()) {
    return response.status();
  }
  if (response->status != 200) {
    return NotFoundError("status/" + std::to_string(ticket) + " → " +
                         std::to_string(response->status));
  }
  auto json = ParseJson(response->body);
  if (!json.ok() || json->Find("state") == nullptr) {
    return InternalError("unparseable status response: " + response->body);
  }
  return json->Find("state")->string_value;
}

StatusOr<std::string> NetClient::Cancel(uint64_t ticket) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/cancel/" + std::to_string(ticket);
  auto response = Request(request);
  if (!response.ok()) {
    return response.status();
  }
  if (response->status != 202) {
    return NotFoundError("cancel/" + std::to_string(ticket) + " → " +
                         std::to_string(response->status));
  }
  auto json = ParseJson(response->body);
  if (!json.ok() || json->Find("state") == nullptr) {
    return InternalError("unparseable cancel response: " + response->body);
  }
  return json->Find("state")->string_value;
}

StatusOr<std::string> NetClient::WaitTerminal(
    uint64_t ticket, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    auto state = StateOf(ticket);
    if (!state.ok()) {
      return state.status();
    }
    if (*state == "DONE" || *state == "FAILED" || *state == "REJECTED" ||
        *state == "CANCELLED") {
      return state;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return DeadlineExceededError("ticket " + std::to_string(ticket) +
                                   " still " + *state);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

StatusOr<TableMap> NetClient::FetchResult(uint64_t ticket) {
  HttpRequest request;
  request.method = "GET";
  request.target = "/result/" + std::to_string(ticket);
  auto response = Request(request);
  if (!response.ok()) {
    return response.status();
  }
  if (response->status != 200) {
    return InternalError("result/" + std::to_string(ticket) + " → " +
                         std::to_string(response->status) + ": " +
                         response->body);
  }
  auto json = ParseJson(response->body);
  if (!json.ok()) {
    return InternalError("unparseable result response");
  }
  const JsonValue* outputs = json->Find("outputs");
  if (outputs == nullptr || !outputs->is_array()) {
    return InternalError("result response has no outputs array");
  }
  TableMap tables;
  for (const JsonValue& output : outputs->array) {
    const JsonValue* name = output.Find("name");
    const JsonValue* schema_spec = output.Find("schema");
    const JsonValue* csv = output.Find("csv");
    if (name == nullptr || schema_spec == nullptr || csv == nullptr) {
      return InternalError("malformed output entry");
    }
    auto schema = ParseSchemaSpec(schema_spec->string_value);
    if (!schema.has_value()) {
      return InternalError("bad schema spec '" + schema_spec->string_value +
                           "'");
    }
    auto table = ParseCsv(csv->string_value, *schema);
    if (!table.ok()) {
      return table.status();
    }
    tables[name->string_value] = std::make_shared<Table>(std::move(*table));
  }
  return tables;
}

StatusOr<std::vector<std::string>> NetClient::ListRelations() {
  HttpRequest request;
  request.method = "GET";
  request.target = "/relations";
  auto response = Request(request);
  if (!response.ok()) {
    return response.status();
  }
  if (response->status != 200) {
    return InternalError("relations → " + std::to_string(response->status));
  }
  auto json = ParseJson(response->body);
  if (!json.ok()) {
    return InternalError("unparseable relations response");
  }
  const JsonValue* relations = json->Find("relations");
  if (relations == nullptr || !relations->is_array()) {
    return InternalError("relations response has no relations array");
  }
  std::vector<std::string> names;
  names.reserve(relations->array.size());
  for (const JsonValue& name : relations->array) {
    names.push_back(name.string_value);
  }
  return names;
}

StatusOr<TablePtr> NetClient::FetchRelation(const std::string& name) {
  HttpRequest request;
  request.method = "GET";
  request.target = "/relation/" + name;
  auto response = Request(request);
  if (!response.ok()) {
    return response.status();
  }
  if (response->status == 404) {
    return NotFoundError("peer has no relation '" + name + "'");
  }
  if (response->status != 200) {
    return InternalError("relation/" + name + " → " +
                         std::to_string(response->status) + ": " +
                         response->body);
  }
  auto json = ParseJson(response->body);
  if (!json.ok()) {
    return InternalError("unparseable relation response");
  }
  const JsonValue* schema_spec = json->Find("schema");
  const JsonValue* csv = json->Find("csv");
  if (schema_spec == nullptr || csv == nullptr) {
    return InternalError("malformed relation payload for '" + name + "'");
  }
  auto schema = ParseSchemaSpec(schema_spec->string_value);
  if (!schema.has_value()) {
    return InternalError("bad schema spec '" + schema_spec->string_value + "'");
  }
  auto table = ParseCsv(csv->string_value, *schema);
  if (!table.ok()) {
    return table.status();
  }
  if (const JsonValue* scale = json->Find("scale")) {
    if (scale->number_value >= 1.0) {
      table->set_scale(scale->number_value);
    }
  }
  TablePtr ptr = std::make_shared<Table>(std::move(*table));
  return ptr;
}

Status NetClient::PushRelation(const std::string& name, const Table& table) {
  HttpRequest request;
  request.method = "PUT";
  request.target = "/relation/" + name;
  request.body = WriteCsv(table, ',', /*round_trip_doubles=*/true);
  request.headers.emplace_back("X-Schema", FormatSchemaSpec(table.schema()));
  if (table.scale() != 1.0) {
    char scale[32];
    std::snprintf(scale, sizeof(scale), "%.17g", table.scale());
    request.headers.emplace_back("X-Scale", scale);
  }
  auto response = Request(request);
  if (!response.ok()) {
    return response.status();
  }
  if (response->status != 200) {
    return InternalError("PUT relation/" + name + " → " +
                         std::to_string(response->status) + ": " +
                         response->body);
  }
  return OkStatus();
}

StatusOr<std::string> NetClient::Get(const std::string& path) {
  HttpRequest request;
  request.method = "GET";
  request.target = path;
  auto response = Request(request);
  if (!response.ok()) {
    return response.status();
  }
  if (response->status != 200) {
    return InternalError("GET " + path + " → " +
                         std::to_string(response->status));
  }
  return response->body;
}

}  // namespace musketeer
