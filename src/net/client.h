// Blocking HTTP client for the network front door (src/net/server.h).
//
// Test and bench infrastructure, not a user-facing SDK: one connection,
// synchronous request/response over keep-alive, plus typed wrappers for the
// workflow endpoints (submit, status poll, result fetch that parses the
// schema+CSV payload back into Tables). Error handling favors surfacing the
// raw HTTP status so tests can assert on 429 vs 503 directly.

#ifndef MUSKETEER_SRC_NET_CLIENT_H_
#define MUSKETEER_SRC_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/eval.h"
#include "src/net/http.h"

namespace musketeer {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // One synchronous exchange on the keep-alive connection.
  StatusOr<HttpResponseParser::Response> Request(const HttpRequest& request);

  struct SubmitOptions {
    std::string tenant;       // "" = default tenant
    std::string workflow_id = "net-anon";
    std::string language = "beer";
    int64_t deadline_ms = 0;  // 0 = service default
    // Sends X-Incremental: 1 — the service reuses fingerprint-matched jobs
    // from a prior submission of the same workflow (delta run).
    bool incremental = false;
  };

  // What POST /submit answered, whatever the verdict. status 202 = accepted
  // (ticket/state valid); 429/503 = rejected (reject_reason/error valid).
  struct SubmitReply {
    int status = 0;
    uint64_t ticket = 0;
    std::string state;
    std::string reject_reason;
    std::string error;
  };

  // Transport-level failures only surface as non-OK Status; an HTTP-level
  // rejection is a successful SubmitReply with status 429/503.
  StatusOr<SubmitReply> SubmitWorkflow(const SubmitOptions& options,
                                       const std::string& source);

  // GET /status/<id> → state name ("QUEUED", "RUNNING", "DONE", ...).
  StatusOr<std::string> StateOf(uint64_t ticket);

  // POST /cancel/<id> → state after the cancel request.
  StatusOr<std::string> Cancel(uint64_t ticket);

  // Polls /status until the state is terminal; DeadlineExceeded on timeout.
  StatusOr<std::string> WaitTerminal(uint64_t ticket,
                                     std::chrono::milliseconds timeout);

  // GET /result/<id>, parsing each output's schema spec + CSV text back into
  // a Table. Only valid for DONE tickets (other states surface the server's
  // error).
  StatusOr<TableMap> FetchResult(uint64_t ticket);

  // GET <path> → body for 200 responses (used for /metrics, /trace, /stats).
  StatusOr<std::string> Get(const std::string& path);

  // ---- relation exchange (the peer-to-peer shard transport) ----

  // GET /relations → sorted relation names in the peer's DFS.
  StatusOr<std::vector<std::string>> ListRelations();

  // GET /relation/<name>, parsing schema spec + CSV (+ scale) back into a
  // Table. NotFound when the peer does not hold the relation.
  StatusOr<TablePtr> FetchRelation(const std::string& name);

  // PUT /relation/<name> with the table as CSV + X-Schema/X-Scale headers.
  Status PushRelation(const std::string& name, const Table& table);

 private:
  int fd_ = -1;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_NET_CLIENT_H_
