// Socket-sharded DFS for multi-process deployments (PR 8).
//
// PeerDfs is the storage layer a `musketeer --shard-of=K/M --peers=...`
// process runs on: it owns partition K of an M-way namespace locally (the
// base Dfs store) and resolves every other relation over the network front
// door's relation endpoints (GET/PUT /relation/<name>, src/net/server.h).
// The in-process analogue is ShardViewDfs (src/cluster/sharded_dfs.h); this
// class is its cross-process twin, with real sockets where the view has a
// timed deep copy.
//
// Ownership is STRATEGY-PURE: every process computes OwnerOf(name) from the
// name alone (consistent-hash ring or modulo over M shards), with no pin
// directory and no cross-process pin synchronization — processes agree on
// placement because they run the same hash, not because they talk about it.
// That trades the in-process ShardedDfs's placement-near-data pinning for
// zero metadata traffic; a relation produced on a non-owning shard is pushed
// to its owner at Put time, so reads still find it at the strategy-computed
// home.
//
// Degraded mode: when the owning peer is unreachable, Put falls back to
// storing locally and Get falls back to asking every reachable peer —
// mirroring ShardedDfs's scan-all-partitions directory repair. push_failures
// counts the former so operators can see a partitioned cluster.
//
// Thread-safety: the namespace ops inherit the base Dfs locking; the one
// NetClient per peer is serialized by a mutex (cross-shard fetches are the
// slow path — correctness over parallel fetch throughput).

#ifndef MUSKETEER_SRC_NET_PEER_DFS_H_
#define MUSKETEER_SRC_NET_PEER_DFS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/dfs.h"
#include "src/cluster/shard_map.h"
#include "src/net/client.h"

namespace musketeer {

struct PeerAddress {
  std::string host;
  uint16_t port = 0;
};

// "host:port,host:port,..." → addresses; "-" or "" entries stay port 0
// (a placeholder for this process's own slot). nullopt on malformed specs.
std::optional<std::vector<PeerAddress>> ParsePeerList(const std::string& spec);

class PeerDfs final : public Dfs {
 public:
  // `self_shard` in [0, num_shards); `peers` has one entry per shard (the
  // self entry is ignored). Connections are lazy: nothing is dialed until
  // the first cross-shard operation, so peers can start in any order.
  PeerDfs(int self_shard, int num_shards, std::vector<PeerAddress> peers,
          ShardingStrategy strategy = ShardingStrategy::kConsistentHash);
  ~PeerDfs() override = default;

  void Put(const std::string& name, TablePtr table) override;
  StatusOr<TablePtr> Get(const std::string& name) const override;
  bool Contains(const std::string& name) const override;
  // Global namespace: local relations plus every reachable peer's.
  std::vector<std::string> ListRelations() const override;
  bool IsLocal(const std::string& name) const override;

  int self_shard() const { return self_; }
  int num_shards() const { return num_shards_; }
  int OwnerOf(const std::string& name) const { return map_.OwnerOf(name); }

  uint64_t remote_fetches() const {
    return remote_fetches_.load(std::memory_order_relaxed);
  }
  Bytes remote_bytes_fetched() const {
    return remote_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t push_failures() const {
    return push_failures_.load(std::memory_order_relaxed);
  }

 private:
  // Borrow shard `shard`'s connection (dialing it if needed) and run `op`
  // under the per-peer lock. Unreachable peers surface as Unavailable.
  template <typename Fn>
  auto WithPeer(int shard, Fn&& op) const
      -> decltype(op(std::declval<NetClient&>()));

  StatusOr<TablePtr> FetchFrom(int shard, const std::string& name) const;

  const int self_;
  const int num_shards_;
  const std::vector<PeerAddress> peers_;
  ShardMap map_;  // strategy-only resolution; never pinned

  struct Peer {
    std::mutex mu;
    NetClient client;  // guarded by mu
  };
  mutable std::vector<std::unique_ptr<Peer>> conns_;

  mutable std::atomic<uint64_t> remote_fetches_{0};
  mutable std::atomic<Bytes> remote_bytes_{0};
  mutable std::atomic<uint64_t> push_failures_{0};
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_NET_PEER_DFS_H_
