// Event-driven network front door for the workflow service (src/net/).
//
// One poll(2) loop on one thread drives a non-blocking listen socket and
// every accepted connection — no thread-per-connection; the expensive work
// (the workflow pipeline) already lives behind WorkflowService's worker
// pool, and every request the server itself handles is a sub-millisecond
// queue/ticket/registry operation, so a single event thread keeps up with
// hundreds of concurrent clients the same way pazpar2-style C servers do.
//
// Two protocols are auto-detected per connection from the first bytes:
//   * HTTP/1.1 (first token is a method name), keep-alive by default:
//       POST /submit        body = workflow source
//                           headers: X-Tenant, X-Language, X-Workflow-Id,
//                           X-Deadline-Ms (optional per-request deadline)
//       GET  /status/<id>   ticket state JSON
//       POST /cancel/<id>   cooperative cancel, returns state JSON
//       GET  /result/<id>   outputs JSON: name, schema spec, rows, CSV text
//       GET  /relations     sorted relation names in this node's DFS, JSON
//       GET  /relation/<n>  one relation: schema spec, scale, rows, CSV text
//       PUT  /relation/<n>  store a relation; body = CSV, headers X-Schema
//                           (spec) and optional X-Scale — the peer-to-peer
//                           shard transport (src/net/peer_dfs.h)
//       GET  /metrics       MetricsRegistry text exposition
//       GET  /trace         Chrome trace-event JSON (Tracer::Global())
//       GET  /stats         ServiceStats incl. per-tenant counters, JSON
//       GET  /healthz       liveness probe
//   * line protocol (anything else), one command per line for nc/telnet:
//       TENANT <name> | SUBMIT <id> <language> <nbytes>\n<source> |
//       STATUS <t> | CANCEL <t> | RESULT <t> | METRICS | PING | QUIT
//
// Tenancy: HTTP requests carry the tenant in the X-Tenant header; line
// connections set it once with TENANT (a session property). Admission
// verdicts map onto HTTP codes — tenant over quota → 429, shared queue
// full or shutting down → 503 — with the REJECTED ticket's reason string
// in the JSON body, so backpressure is visible at the edge.
//
// Shutdown ordering (cooperative): Shutdown() stops accepting, lets
// in-flight responses flush (bounded by drain_timeout), closes every
// connection and joins the event thread. The owner then shuts the service
// down — connections first, workers second — so accepted work still
// settles its tickets.

#ifndef MUSKETEER_SRC_NET_SERVER_H_
#define MUSKETEER_SRC_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/http.h"
#include "src/service/service.h"

namespace musketeer {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; port() reports the bound port
  int max_connections = 256;
  size_t max_message_bytes = 1 << 20;
  // Terminal tickets stay addressable by /status//result until this many
  // newer submissions arrive (bounded memory for long-lived servers).
  size_t ticket_retention = 4096;
  // How long Shutdown() lets pending response bytes flush before closing.
  std::chrono::milliseconds drain_timeout{2000};
  // Idle keep-alive connections (no bytes in either direction, nothing
  // queued to write) are closed after this long; 0 disables the sweep.
  // Protects the connection table from clients that hold keep-alive
  // sockets open forever (`--keepalive-timeout-ms` on the CLI).
  std::chrono::milliseconds keepalive_timeout{0};
};

class HttpServer {
 public:
  // `service` outlives the server; not owned.
  HttpServer(WorkflowService* service, ServerConfig config = {});

  // Shuts down (drain + join) if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens and spawns the event loop thread. Errors (port in use,
  // bad address) surface here, not in the loop.
  Status Start();

  // Stops accepting, drains in-flight responses (bounded), closes every
  // connection, joins the event thread. Idempotent. Does NOT shut the
  // workflow service down — that is the owner's next step.
  void Shutdown();

  // The bound port (useful with port = 0). Valid after Start().
  uint16_t port() const { return port_; }

  // Instantaneous open-connection count (event-loop-owned, racy reads ok).
  int active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  enum class Protocol { kUnknown, kHttp, kLine };

  struct Connection {
    int fd = -1;
    Protocol protocol = Protocol::kUnknown;
    HttpParser parser;
    std::string linebuf;     // line-protocol input accumulator
    std::string outbuf;      // bytes awaiting POLLOUT
    std::string tenant;      // line-protocol session tenant
    // Line-protocol SUBMIT in progress: source bytes still expected.
    size_t submit_remaining = 0;
    std::string submit_line;  // the SUBMIT command awaiting its body
    std::string submit_body;
    bool close_after_write = false;
    bool saw_eof = false;
    // Last time bytes moved on this connection (accept counts); the idle
    // keep-alive sweep closes connections this long quiet.
    std::chrono::steady_clock::time_point last_activity;

    explicit Connection(int fd_in, size_t max_message_bytes)
        : fd(fd_in),
          parser(max_message_bytes),
          last_activity(std::chrono::steady_clock::now()) {}
  };

  void LoopThread();
  void AcceptNew();
  // Returns false when the connection should be closed now.
  bool OnReadable(Connection* conn);
  bool OnWritable(Connection* conn);
  void CloseConnection(Connection* conn);

  void HandleHttp(Connection* conn, const HttpRequest& request);
  // Consumes complete line-protocol commands from conn->linebuf.
  bool HandleLineInput(Connection* conn);
  void HandleLineCommand(Connection* conn, const std::string& line);

  HttpResponse Route(const HttpRequest& request);
  HttpResponse HandleSubmit(const HttpRequest& request);
  HttpResponse HandleStatus(uint64_t id);
  HttpResponse HandleCancel(uint64_t id);
  HttpResponse HandleResult(uint64_t id);
  HttpResponse HandleStats();
  HttpResponse HandleRelationList();
  HttpResponse HandleRelationGet(const std::string& name);
  HttpResponse HandleRelationPut(const HttpRequest& request,
                                 const std::string& name);

  // Per-submission overrides of the service's default RunOptions, parsed
  // from request headers (X-Deadline-Ms, X-Incremental, X-Partitioner,
  // X-Replan-Threshold). Fields at their defaults leave the service
  // defaults untouched.
  struct SubmitOverrides {
    std::chrono::milliseconds deadline{0};
    bool incremental = false;
    std::string partitioner;      // strategy registry name; "" = default
    double replan_threshold = -1; // < 0 = default
  };

  // Submits to the service under `tenant` and registers the ticket.
  // `overrides.incremental` routes through the service's incremental-resubmit
  // path (fingerprint-matched jobs are reused; see X-Incremental in
  // HandleSubmit).
  WorkflowHandle SubmitSpec(const std::string& tenant, WorkflowSpec spec,
                            const SubmitOverrides& overrides);
  void RegisterTicket(const WorkflowHandle& ticket);
  WorkflowHandle FindTicket(uint64_t id) const;

  WorkflowService* const service_;
  const ServerConfig config_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Shutdown() pokes the loop
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<int> active_connections_{0};
  bool started_ = false;
  std::thread loop_;
  std::vector<std::unique_ptr<Connection>> connections_;  // loop-thread only

  mutable std::mutex tickets_mu_;
  std::map<uint64_t, WorkflowHandle> tickets_;  // guarded by tickets_mu_
  std::deque<uint64_t> ticket_order_;           // guarded by tickets_mu_
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_NET_SERVER_H_
