#include "src/net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <optional>

#include "src/base/json.h"
#include "src/base/strings.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/relational/csv.h"
#include "src/relational/schema.h"
#include "src/relational/table.h"

namespace musketeer {

namespace {

Counter& AcceptedCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.net.connections.accepted");
  return c;
}

Counter& ClosedCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.net.connections.closed");
  return c;
}

Counter& IdleClosedCounter() {
  static Counter& c = MetricsRegistry::Global().counter(
      "musketeer.net.connections.idle_closed");
  return c;
}

Gauge& ActiveGauge() {
  static Gauge& g =
      MetricsRegistry::Global().gauge("musketeer.net.connections.active");
  return g;
}

Counter& HttpRequestsCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.net.http.requests");
  return c;
}

Counter& LineCommandsCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.net.line.commands");
  return c;
}

Counter& BytesReadCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.net.bytes_read");
  return c;
}

Counter& BytesWrittenCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.net.bytes_written");
  return c;
}

// Response counters bucketed by status class — the saturation signal
// (429/503 land in 4xx/5xx) without a per-code metric explosion.
Counter& ResponseClassCounter(int status) {
  static Counter& c2xx =
      MetricsRegistry::Global().counter("musketeer.net.responses.2xx");
  static Counter& c4xx =
      MetricsRegistry::Global().counter("musketeer.net.responses.4xx");
  static Counter& c5xx =
      MetricsRegistry::Global().counter("musketeer.net.responses.5xx");
  if (status < 300) return c2xx;
  if (status < 500) return c4xx;
  return c5xx;
}

Histogram& RequestSecondsHistogram() {
  static Histogram& h =
      MetricsRegistry::Global().histogram("musketeer.net.request_seconds");
  return h;
}

std::optional<FrontendLanguage> ParseLanguage(std::string_view name) {
  if (name.empty() || EqualsIgnoreCase(name, "beer")) {
    return FrontendLanguage::kBeer;
  }
  if (EqualsIgnoreCase(name, "hive")) return FrontendLanguage::kHive;
  if (EqualsIgnoreCase(name, "gas")) return FrontendLanguage::kGas;
  if (EqualsIgnoreCase(name, "lindi")) return FrontendLanguage::kLindi;
  return std::nullopt;
}

// "/status/17" → 17; nullopt on junk (empty, non-digits, trailing garbage).
std::optional<uint64_t> ParseIdSuffix(std::string_view path,
                                      std::string_view prefix) {
  std::string_view rest = path.substr(prefix.size());
  if (rest.empty()) return std::nullopt;
  uint64_t id = 0;
  for (char c : rest) {
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  return id;
}

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = "{\"error\": " + JsonQuote(message) + "}\n";
  return resp;
}

// The two saturation rejections get distinct codes at the edge: a tenant
// exceeding its own quota must not look like service-wide overload.
int RejectStatus(RejectReason reason) {
  return reason == RejectReason::kTenantOverQuota ? 429 : 503;
}

std::string TicketJson(const WorkflowHandle& ticket) {
  const WorkflowState state = ticket->state();
  std::string out = "{\"ticket\": " + std::to_string(ticket->id()) +
                    ", \"tenant\": " + JsonQuote(ticket->tenant()) +
                    ", \"state\": " + JsonQuote(WorkflowStateName(state));
  if (ticket->terminal()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", ticket->queue_seconds());
    out += ", \"queue_seconds\": ";
    out += buf;
    std::snprintf(buf, sizeof(buf), "%.6f", ticket->total_seconds());
    out += ", \"total_seconds\": ";
    out += buf;
    out += ", \"cache_hit\": ";
    out += ticket->plan_cache_hit() ? "true" : "false";
    if (state == WorkflowState::kDone && ticket->result().ok()) {
      const RunResult& result = *ticket->result();
      out += ", \"jobs_reused\": " + std::to_string(result.jobs_reused) +
             ", \"pipelined_edges\": " +
             std::to_string(result.pipelined_edges) +
             ", \"stream_batches\": " + std::to_string(result.stream_batches) +
             ", \"partition_strategy\": " +
             JsonQuote(result.partition_strategy) +
             ", \"replans\": " + std::to_string(result.replans);
    }
    if (state == WorkflowState::kRejected) {
      out += ", \"reject_reason\": " +
             JsonQuote(RejectReasonName(ticket->reject_reason()));
    }
    if (state != WorkflowState::kDone && !ticket->result().ok()) {
      out += ", \"error\": " + JsonQuote(ticket->result().status().message());
    }
  }
  out += "}\n";
  return out;
}

// The DONE payload: every sink relation as (schema spec, CSV text) so a
// client can ParseSchemaSpec + ParseCsv its way back to bit-identical
// tables (tests/net_test.cc asserts Table::Identical round-trips).
std::string ResultJson(const WorkflowHandle& ticket) {
  const RunResult& result = *ticket->result();
  std::string out = "{\"ticket\": " + std::to_string(ticket->id()) +
                    ", \"state\": \"DONE\", \"makespan\": ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", result.makespan);
  out += buf;
  out += ", \"cache_hit\": ";
  out += ticket->plan_cache_hit() ? "true" : "false";
  out += ", \"outputs\": [";
  std::vector<std::string> names;
  names.reserve(result.outputs.size());
  for (const auto& [name, table] : result.outputs) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  for (size_t i = 0; i < names.size(); ++i) {
    const TablePtr& table = result.outputs.at(names[i]);
    if (i > 0) out += ", ";
    out += "{\"name\": " + JsonQuote(names[i]) +
           ", \"schema\": " + JsonQuote(FormatSchemaSpec(table->schema())) +
           ", \"rows\": " + std::to_string(table->num_rows()) +
           ", \"csv\": " +
           JsonQuote(WriteCsv(*table, ',', /*round_trip_doubles=*/true)) + "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace

HttpServer::HttpServer(WorkflowService* service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return InternalError("socket(): " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgumentError("bad bind address '" + config_.bind_address +
                                "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = UnavailableError("bind(" + config_.bind_address + ":" +
                                     std::to_string(config_.port) +
                                     "): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status status =
        InternalError("listen(): " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  if (::pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError("pipe2(): " + std::string(std::strerror(errno)));
  }
  started_ = true;
  loop_ = std::thread(&HttpServer::LoopThread, this);
  return OkStatus();
}

void HttpServer::Shutdown() {
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  // Poke the poll loop awake so it notices the flag immediately.
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], "x", 1);
  if (loop_.joinable()) {
    loop_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_fds_[i] >= 0) {
      ::close(wake_fds_[i]);
      wake_fds_[i] = -1;
    }
  }
  started_ = false;
}

void HttpServer::LoopThread() {
  using Clock = std::chrono::steady_clock;
  Clock::time_point drain_deadline{};
  bool draining = false;
  std::vector<pollfd> fds;
  while (true) {
    const bool stopping = stop_.load(std::memory_order_relaxed);
    if (stopping && !draining) {
      draining = true;
      drain_deadline = Clock::now() + config_.drain_timeout;
    }
    if (draining) {
      // Accepted responses get drain_timeout to flush, then we cut them off.
      bool pending = false;
      for (const auto& conn : connections_) {
        if (!conn->outbuf.empty()) {
          pending = true;
          break;
        }
      }
      if (!pending || Clock::now() >= drain_deadline) {
        break;
      }
    }

    fds.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    const bool accepting =
        !stopping &&
        connections_.size() < static_cast<size_t>(config_.max_connections);
    size_t listen_index = fds.size();
    if (accepting) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    size_t conn_base = fds.size();
    for (const auto& conn : connections_) {
      short events = 0;
      if (!conn->saw_eof && !conn->close_after_write && !draining) {
        events |= POLLIN;
      }
      if (!conn->outbuf.empty()) {
        events |= POLLOUT;
      }
      fds.push_back({conn->fd, events, 0});
    }

    int timeout_ms = 200;
    if (config_.keepalive_timeout.count() > 0) {
      // Wake often enough that idle connections are closed within ~1.25x of
      // the configured timeout even with no traffic at all.
      auto quarter = config_.keepalive_timeout.count() / 4;
      timeout_ms = static_cast<int>(
          std::clamp<long long>(quarter, 10, timeout_ms));
    }
    if (draining) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                           drain_deadline - Clock::now())
                           .count();
      timeout_ms = static_cast<int>(std::clamp<long long>(remaining, 0, 50));
    }
    int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      break;  // poll itself failing is unrecoverable for this loop
    }

    if (fds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (accepting && (fds[listen_index].revents & POLLIN)) {
      AcceptNew();
    }
    for (size_t i = 0; i < connections_.size() && conn_base + i < fds.size();
         ++i) {
      Connection* conn = connections_[i].get();
      short revents = fds[conn_base + i].revents;
      bool keep = true;
      if (revents & (POLLERR | POLLNVAL)) {
        keep = false;
      }
      if (keep && (revents & (POLLIN | POLLHUP))) {
        keep = OnReadable(conn);
      }
      if (keep && (revents & POLLOUT)) {
        keep = OnWritable(conn);
      }
      if (!keep) {
        CloseConnection(conn);
      }
    }
    // Idle keep-alive sweep: close connections with no traffic in either
    // direction for keepalive_timeout. Connections with queued output are
    // not idle (the peer may just be slow); mid-request input (a partially
    // parsed HTTP request, a SUBMIT awaiting its body) still counts as idle
    // once the bytes stop flowing — a stalled sender holds a slot either
    // way.
    if (!draining && config_.keepalive_timeout.count() > 0) {
      const auto now = Clock::now();
      for (const auto& conn : connections_) {
        if (conn->fd >= 0 && conn->outbuf.empty() &&
            now - conn->last_activity >= config_.keepalive_timeout) {
          IdleClosedCounter().Increment();
          CloseConnection(conn.get());
        }
      }
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& c) {
                         return c->fd < 0;
                       }),
        connections_.end());
  }
  for (const auto& conn : connections_) {
    CloseConnection(conn.get());
  }
  connections_.clear();
}

void HttpServer::AcceptNew() {
  while (connections_.size() < static_cast<size_t>(config_.max_connections)) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN (drained) or transient error; poll will re-arm
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.push_back(
        std::make_unique<Connection>(fd, config_.max_message_bytes));
    AcceptedCounter().Increment();
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    ActiveGauge().Set(active_connections_.load(std::memory_order_relaxed));
  }
}

void HttpServer::CloseConnection(Connection* conn) {
  if (conn->fd < 0) {
    return;
  }
  ::close(conn->fd);
  conn->fd = -1;
  ClosedCounter().Increment();
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  ActiveGauge().Set(active_connections_.load(std::memory_order_relaxed));
}

bool HttpServer::OnReadable(Connection* conn) {
  char buf[16384];
  std::string incoming;
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      incoming.append(buf, static_cast<size_t>(n));
      if (incoming.size() >= 1u << 20) {
        break;  // be fair to other connections; poll re-arms us
      }
      continue;
    }
    if (n == 0) {
      conn->saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      break;
    }
    return false;  // hard socket error
  }
  if (!incoming.empty()) {
    BytesReadCounter().Increment(incoming.size());
    conn->last_activity = std::chrono::steady_clock::now();

    if (conn->protocol == Protocol::kUnknown) {
      conn->linebuf += incoming;
      incoming.clear();
      // Sniff once the first token is complete: HTTP methods vs line verbs.
      size_t sep = conn->linebuf.find_first_of(" \r\n");
      if (sep == std::string::npos && conn->linebuf.size() < 8) {
        // First token still arriving; wait for more bytes.
      } else {
        std::string token = conn->linebuf.substr(
            0, sep == std::string::npos ? conn->linebuf.size() : sep);
        std::transform(token.begin(), token.end(), token.begin(),
                       [](unsigned char c) { return std::toupper(c); });
        static const char* kMethods[] = {"GET",     "POST",  "PUT",
                                         "HEAD",    "DELETE", "OPTIONS",
                                         "PATCH"};
        bool is_http = false;
        for (const char* m : kMethods) {
          if (token == m) {
            is_http = true;
            break;
          }
        }
        conn->protocol = is_http ? Protocol::kHttp : Protocol::kLine;
        if (is_http) {
          incoming.swap(conn->linebuf);  // replay sniffed bytes into parser
        }
      }
    }

    if (conn->protocol == Protocol::kHttp) {
      std::vector<HttpRequest> requests;
      conn->parser.Feed(incoming, &requests);
      for (const HttpRequest& request : requests) {
        HandleHttp(conn, request);
        if (conn->close_after_write) {
          break;
        }
      }
      if (conn->parser.error()) {
        HttpResponse resp =
            JsonError(conn->parser.error_status(), conn->parser.error_message());
        resp.close = true;
        conn->outbuf += SerializeResponse(resp);
        conn->close_after_write = true;
        ResponseClassCounter(resp.status).Increment();
      }
    } else if (conn->protocol == Protocol::kLine) {
      conn->linebuf += incoming;  // empty on the read that just sniffed
      if (!HandleLineInput(conn)) {
        conn->close_after_write = true;
      }
    }
  }
  // Push what we can now instead of waiting one poll cycle for POLLOUT.
  if (!conn->outbuf.empty() && !OnWritable(conn)) {
    return false;
  }
  if (conn->saw_eof) {
    return !conn->outbuf.empty();  // flush the tail, then close
  }
  return true;
}

bool HttpServer::OnWritable(Connection* conn) {
  while (!conn->outbuf.empty()) {
    ssize_t n = ::send(conn->fd, conn->outbuf.data(), conn->outbuf.size(),
                       MSG_NOSIGNAL);
    if (n > 0) {
      BytesWrittenCounter().Increment(static_cast<uint64_t>(n));
      conn->last_activity = std::chrono::steady_clock::now();
      conn->outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return true;  // POLLOUT re-arms
    }
    return false;
  }
  return !conn->close_after_write;
}

// ---- HTTP dispatch ---------------------------------------------------------

void HttpServer::HandleHttp(Connection* conn, const HttpRequest& request) {
  Span span("net.request", "net");
  HttpRequestsCounter().Increment();
  HttpResponse resp = Route(request);
  if (request.WantsClose()) {
    resp.close = true;
    conn->close_after_write = true;
  }
  if (span.active()) {
    span.SetAttr("method", request.method);
    span.SetAttr("path", request.path);
    span.SetAttr("status", std::to_string(resp.status));
  }
  ResponseClassCounter(resp.status).Increment();
  RequestSecondsHistogram().Observe(span.elapsed_seconds());
  conn->outbuf += SerializeResponse(resp);
}

HttpResponse HttpServer::Route(const HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/submit") {
    if (request.method != "POST") {
      return JsonError(405, "submit requires POST");
    }
    return HandleSubmit(request);
  }
  if (StartsWith(path, "/status/")) {
    if (request.method != "GET") return JsonError(405, "status requires GET");
    auto id = ParseIdSuffix(path, "/status/");
    if (!id.has_value()) return JsonError(400, "bad ticket id");
    return HandleStatus(*id);
  }
  if (StartsWith(path, "/cancel/")) {
    if (request.method != "POST") {
      return JsonError(405, "cancel requires POST");
    }
    auto id = ParseIdSuffix(path, "/cancel/");
    if (!id.has_value()) return JsonError(400, "bad ticket id");
    return HandleCancel(*id);
  }
  if (StartsWith(path, "/result/")) {
    if (request.method != "GET") return JsonError(405, "result requires GET");
    auto id = ParseIdSuffix(path, "/result/");
    if (!id.has_value()) return JsonError(400, "bad ticket id");
    return HandleResult(*id);
  }
  if (path == "/relations") {
    if (request.method != "GET") {
      return JsonError(405, "relations requires GET");
    }
    return HandleRelationList();
  }
  if (StartsWith(path, "/relation/")) {
    const std::string name = path.substr(std::strlen("/relation/"));
    if (name.empty()) return JsonError(400, "missing relation name");
    if (request.method == "GET") return HandleRelationGet(name);
    if (request.method == "PUT" || request.method == "POST") {
      return HandleRelationPut(request, name);
    }
    return JsonError(405, "relation requires GET or PUT");
  }
  if (path == "/metrics") {
    if (request.method != "GET") return JsonError(405, "metrics requires GET");
    HttpResponse resp;
    resp.body = MetricsRegistry::Global().DumpText();
    return resp;
  }
  if (path == "/trace") {
    if (request.method != "GET") return JsonError(405, "trace requires GET");
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = Tracer::Global().ChromeTraceJson();
    return resp;
  }
  if (path == "/stats") {
    if (request.method != "GET") return JsonError(405, "stats requires GET");
    return HandleStats();
  }
  if (path == "/healthz") {
    HttpResponse resp;
    resp.body = "ok\n";
    return resp;
  }
  return JsonError(404, "no such endpoint: " + path);
}

HttpResponse HttpServer::HandleSubmit(const HttpRequest& request) {
  if (request.body.empty()) {
    return JsonError(400, "empty workflow source");
  }
  const std::string* tenant_header = request.FindHeader("x-tenant");
  const std::string tenant = tenant_header != nullptr ? *tenant_header : "";

  WorkflowSpec spec;
  const std::string* id_header = request.FindHeader("x-workflow-id");
  spec.id = id_header != nullptr ? *id_header : "net-anon";
  const std::string* lang_header = request.FindHeader("x-language");
  auto language = ParseLanguage(lang_header != nullptr ? *lang_header : "");
  if (!language.has_value()) {
    return JsonError(400, "unknown language '" + *lang_header + "'");
  }
  spec.language = *language;
  spec.source = request.body;

  SubmitOverrides overrides;
  if (const std::string* dl = request.FindHeader("x-deadline-ms")) {
    auto ms = ParseInt64(*dl);
    if (!ms.has_value() || *ms <= 0) {
      return JsonError(400, "bad x-deadline-ms");
    }
    overrides.deadline = std::chrono::milliseconds(*ms);
  }

  // X-Incremental: 1|true → incremental resubmission (jobs whose input
  // fingerprints still match the DFS are reused, not recomputed).
  if (const std::string* inc = request.FindHeader("x-incremental")) {
    if (*inc == "1" || EqualsIgnoreCase(*inc, "true")) {
      overrides.incremental = true;
    } else if (!(*inc == "0" || EqualsIgnoreCase(*inc, "false"))) {
      return JsonError(400, "bad x-incremental '" + *inc + "'");
    }
  }

  // X-Partitioner: a strategy name in the planner registry
  // (auto|dp|exhaustive|dp-multi, or a custom registration).
  if (const std::string* strat = request.FindHeader("x-partitioner")) {
    if (!PartitionStrategyKindFromName(*strat).has_value() &&
        PartitionStrategyRegistry::Global().Find(*strat) == nullptr) {
      return JsonError(400, "unknown partitioner '" + *strat + "'");
    }
    overrides.partitioner = *strat;
  }

  // X-Replan-Threshold: misprediction ratio above which the run
  // re-partitions its remaining jobs mid-flight; 0 disables.
  if (const std::string* rt = request.FindHeader("x-replan-threshold")) {
    auto ratio = ParseDouble(*rt);
    if (!ratio.has_value() || *ratio < 0) {
      return JsonError(400, "bad x-replan-threshold '" + *rt + "'");
    }
    overrides.replan_threshold = *ratio;
  }

  WorkflowHandle ticket = SubmitSpec(tenant, std::move(spec), overrides);
  if (ticket->state() == WorkflowState::kRejected) {
    HttpResponse resp;
    resp.status = RejectStatus(ticket->reject_reason());
    resp.content_type = "application/json";
    resp.body = "{\"error\": " +
                JsonQuote(ticket->result().status().message()) +
                ", \"reject_reason\": " +
                JsonQuote(RejectReasonName(ticket->reject_reason())) +
                ", \"ticket\": " + std::to_string(ticket->id()) + "}\n";
    return resp;
  }
  HttpResponse resp;
  resp.status = 202;
  resp.content_type = "application/json";
  resp.body = TicketJson(ticket);
  return resp;
}

HttpResponse HttpServer::HandleStatus(uint64_t id) {
  WorkflowHandle ticket = FindTicket(id);
  if (ticket == nullptr) {
    return JsonError(404, "unknown ticket " + std::to_string(id));
  }
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = TicketJson(ticket);
  return resp;
}

HttpResponse HttpServer::HandleCancel(uint64_t id) {
  WorkflowHandle ticket = FindTicket(id);
  if (ticket == nullptr) {
    return JsonError(404, "unknown ticket " + std::to_string(id));
  }
  ticket->Cancel();
  HttpResponse resp;
  resp.status = 202;
  resp.content_type = "application/json";
  resp.body = TicketJson(ticket);
  return resp;
}

HttpResponse HttpServer::HandleResult(uint64_t id) {
  WorkflowHandle ticket = FindTicket(id);
  if (ticket == nullptr) {
    return JsonError(404, "unknown ticket " + std::to_string(id));
  }
  const WorkflowState state = ticket->state();
  if (!ticket->terminal()) {
    HttpResponse resp = JsonError(409, "workflow not finished");
    resp.body = "{\"error\": \"workflow not finished\", \"state\": " +
                JsonQuote(WorkflowStateName(state)) + "}\n";
    return resp;
  }
  if (state != WorkflowState::kDone) {
    int status = 500;
    if (state == WorkflowState::kCancelled) status = 409;
    if (state == WorkflowState::kRejected) {
      status = RejectStatus(ticket->reject_reason());
    }
    HttpResponse resp;
    resp.status = status;
    resp.content_type = "application/json";
    resp.body = "{\"error\": " +
                JsonQuote(ticket->result().status().message()) +
                ", \"state\": " + JsonQuote(WorkflowStateName(state)) + "}\n";
    return resp;
  }
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = ResultJson(ticket);
  return resp;
}

HttpResponse HttpServer::HandleStats() {
  ServiceStats stats = service_->stats();
  std::string body = "{\"submitted\": " + std::to_string(stats.submitted) +
                     ", \"rejected\": " + std::to_string(stats.rejected) +
                     ", \"completed\": " + std::to_string(stats.completed) +
                     ", \"failed\": " + std::to_string(stats.failed) +
                     ", \"cancelled\": " + std::to_string(stats.cancelled) +
                     ", \"plan_cache_hits\": " +
                     std::to_string(stats.plan_cache_hits) +
                     ", \"plan_cache_misses\": " +
                     std::to_string(stats.plan_cache_misses) +
                     ", \"jobs_reused\": " + std::to_string(stats.jobs_reused) +
                     ", \"pipelined_edges\": " +
                     std::to_string(stats.pipelined_edges) +
                     ", \"stream_batches\": " +
                     std::to_string(stats.stream_batches) +
                     ", \"stream_bytes\": " + std::to_string(stats.stream_bytes) +
                     ", \"replans\": " + std::to_string(stats.replans) +
                     ", \"queue_depth\": " + std::to_string(stats.queue_depth) +
                     ", \"active_connections\": " +
                     std::to_string(active_connections()) + ", \"tenants\": {";
  bool first = true;
  for (const auto& [tenant, t] : stats.tenants) {
    if (!first) body += ", ";
    first = false;
    body += JsonQuote(tenant) +
            ": {\"submitted\": " + std::to_string(t.submitted) +
            ", \"rejected\": " + std::to_string(t.rejected) +
            ", \"completed\": " + std::to_string(t.completed) +
            ", \"failed\": " + std::to_string(t.failed) +
            ", \"cancelled\": " + std::to_string(t.cancelled) + "}";
  }
  body += "}}\n";
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = body;
  return resp;
}

// ---- relation exchange (peer-to-peer shard transport) ----------------------

HttpResponse HttpServer::HandleRelationList() {
  std::string body = "{\"relations\": [";
  bool first = true;
  for (const std::string& name : service_->dfs()->ListLocalRelations()) {
    if (!first) body += ", ";
    first = false;
    body += JsonQuote(name);
  }
  body += "]}\n";
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = body;
  return resp;
}

HttpResponse HttpServer::HandleRelationGet(const std::string& name) {
  auto table = service_->dfs()->GetLocal(name);
  if (!table.ok()) {
    return JsonError(404, "no relation '" + name + "'");
  }
  char scale[32];
  std::snprintf(scale, sizeof(scale), "%.17g", (*table)->scale());
  HttpResponse resp;
  resp.content_type = "application/json";
  // Same round-trip encoding as /result: ParseSchemaSpec + ParseCsv on the
  // receiving side reconstructs a Table::Identical copy; scale rides along
  // so nominal-size accounting survives the wire.
  resp.body = "{\"name\": " + JsonQuote(name) +
              ", \"schema\": " + JsonQuote(FormatSchemaSpec((*table)->schema())) +
              ", \"scale\": " + scale +
              ", \"rows\": " + std::to_string((*table)->num_rows()) +
              ", \"csv\": " +
              JsonQuote(WriteCsv(**table, ',', /*round_trip_doubles=*/true)) +
              "}\n";
  return resp;
}

HttpResponse HttpServer::HandleRelationPut(const HttpRequest& request,
                                           const std::string& name) {
  const std::string* schema_header = request.FindHeader("x-schema");
  if (schema_header == nullptr) {
    return JsonError(400, "missing X-Schema header");
  }
  auto schema = ParseSchemaSpec(*schema_header);
  if (!schema.has_value()) {
    return JsonError(400, "bad schema spec '" + *schema_header + "'");
  }
  auto table = ParseCsv(request.body, *schema);
  if (!table.ok()) {
    return JsonError(400, "bad CSV body: " + table.status().message());
  }
  if (const std::string* scale_header = request.FindHeader("x-scale")) {
    auto scale = ParseDouble(*scale_header);
    if (!scale.has_value() || *scale < 1.0) {
      return JsonError(400, "bad X-Scale '" + *scale_header + "'");
    }
    table->set_scale(*scale);
  }
  const size_t rows = table->num_rows();
  service_->dfs()->PutLocal(name, std::make_shared<Table>(std::move(*table)));
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = "{\"name\": " + JsonQuote(name) +
              ", \"rows\": " + std::to_string(rows) + "}\n";
  return resp;
}

// ---- line protocol ---------------------------------------------------------

bool HttpServer::HandleLineInput(Connection* conn) {
  while (true) {
    if (conn->submit_remaining > 0) {
      size_t take = std::min(conn->submit_remaining, conn->linebuf.size());
      conn->submit_body.append(conn->linebuf, 0, take);
      conn->linebuf.erase(0, take);
      conn->submit_remaining -= take;
      if (conn->submit_remaining > 0) {
        return true;  // source still arriving
      }
      HandleLineCommand(conn, conn->submit_line);  // re-dispatch, body ready
      conn->submit_line.clear();
      continue;
    }
    size_t nl = conn->linebuf.find('\n');
    if (nl == std::string::npos) {
      if (conn->linebuf.size() > config_.max_message_bytes) {
        conn->outbuf += "ERR 431 line too long\n";
        return false;
      }
      return true;
    }
    std::string line = conn->linebuf.substr(0, nl);
    conn->linebuf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;  // blank lines (e.g. after a SUBMIT body) are no-ops
    }
    HandleLineCommand(conn, line);
    if (conn->close_after_write) {
      return true;
    }
  }
}

void HttpServer::HandleLineCommand(Connection* conn, const std::string& line) {
  LineCommandsCounter().Increment();
  std::vector<std::string> parts;
  for (const std::string& p : StrSplit(line, ' ')) {
    if (!p.empty()) parts.push_back(p);
  }
  if (parts.empty()) {
    return;
  }
  std::string cmd = parts[0];
  std::transform(cmd.begin(), cmd.end(), cmd.begin(),
                 [](unsigned char c) { return std::toupper(c); });

  if (cmd == "TENANT" && parts.size() == 2) {
    conn->tenant = parts[1];
    conn->outbuf += "OK tenant " + conn->tenant + "\n";
    return;
  }
  if (cmd == "SUBMIT") {
    // SUBMIT <workflow-id> <language> <nbytes>, then <nbytes> of source.
    if (parts.size() != 4) {
      conn->outbuf += "ERR 400 usage: SUBMIT <id> <language> <nbytes>\n";
      return;
    }
    auto language = ParseLanguage(parts[2]);
    auto nbytes = ParseInt64(parts[3]);
    if (!language.has_value()) {
      conn->outbuf += "ERR 400 unknown language " + parts[2] + "\n";
      return;
    }
    if (!nbytes.has_value() || *nbytes <= 0 ||
        static_cast<size_t>(*nbytes) > config_.max_message_bytes) {
      conn->outbuf += "ERR 400 bad source byte count\n";
      return;
    }
    if (conn->submit_body.size() < static_cast<size_t>(*nbytes)) {
      // First pass: arm body accumulation and re-dispatch when complete.
      conn->submit_line = line;
      conn->submit_remaining =
          static_cast<size_t>(*nbytes) - conn->submit_body.size();
      return;
    }
    WorkflowSpec spec;
    spec.id = parts[1];
    spec.language = *language;
    spec.source = std::move(conn->submit_body);
    conn->submit_body.clear();
    WorkflowHandle ticket =
        SubmitSpec(conn->tenant, std::move(spec), SubmitOverrides{});
    if (ticket->state() == WorkflowState::kRejected) {
      conn->outbuf += "ERR " + std::to_string(RejectStatus(ticket->reject_reason())) +
                      " " + ticket->result().status().message() + "\n";
    } else {
      conn->outbuf += "OK " + std::to_string(ticket->id()) + " " +
                      WorkflowStateName(ticket->state()) + "\n";
    }
    return;
  }
  if ((cmd == "STATUS" || cmd == "CANCEL" || cmd == "RESULT") &&
      parts.size() == 2) {
    auto id = ParseInt64(parts[1]);
    WorkflowHandle ticket =
        id.has_value() && *id > 0 ? FindTicket(static_cast<uint64_t>(*id))
                                  : nullptr;
    if (ticket == nullptr) {
      conn->outbuf += "ERR 404 unknown ticket " + parts[1] + "\n";
      return;
    }
    if (cmd == "CANCEL") {
      ticket->Cancel();
    }
    if (cmd == "RESULT") {
      if (ticket->state() != WorkflowState::kDone) {
        conn->outbuf += "ERR " +
                        std::string(ticket->terminal() ? "500 " : "409 ") +
                        WorkflowStateName(ticket->state()) + "\n";
        return;
      }
      std::string json = ResultJson(ticket);
      conn->outbuf += "OK " + std::to_string(ticket->id()) + " " +
                      std::to_string(json.size()) + "\n" + json;
      return;
    }
    conn->outbuf += "OK " + std::to_string(ticket->id()) + " " +
                    WorkflowStateName(ticket->state()) + "\n";
    return;
  }
  if (cmd == "METRICS" && parts.size() == 1) {
    std::string text = MetricsRegistry::Global().DumpText();
    conn->outbuf += "OK " + std::to_string(text.size()) + "\n" + text;
    return;
  }
  if (cmd == "PING") {
    conn->outbuf += "OK pong\n";
    return;
  }
  if (cmd == "QUIT") {
    conn->outbuf += "OK bye\n";
    conn->close_after_write = true;
    return;
  }
  conn->outbuf += "ERR 400 unknown command " + cmd + "\n";
}

// ---- ticket registry -------------------------------------------------------

WorkflowHandle HttpServer::SubmitSpec(const std::string& tenant,
                                      WorkflowSpec spec,
                                      const SubmitOverrides& overrides) {
  const bool customized = overrides.deadline.count() > 0 ||
                          overrides.incremental ||
                          !overrides.partitioner.empty() ||
                          overrides.replan_threshold >= 0;
  WorkflowHandle ticket;
  if (customized) {
    RunOptions options = service_->default_options();
    if (overrides.deadline.count() > 0) {
      options.deadline = overrides.deadline;
    }
    if (!overrides.partitioner.empty()) {
      // Built-in names set the enum (so the plan-cache key and RunResult
      // agree with the auto default); anything else is a registry lookup.
      auto kind = PartitionStrategyKindFromName(overrides.partitioner);
      if (kind.has_value()) {
        options.planner.strategy = *kind;
        options.planner.custom_strategy.clear();
      } else {
        options.planner.custom_strategy = overrides.partitioner;
      }
    }
    if (overrides.replan_threshold >= 0) {
      options.planner.replan_threshold = overrides.replan_threshold;
    }
    ticket = overrides.incremental
                 ? service_->ResubmitIncrementalAs(tenant, std::move(spec),
                                                   std::move(options))
                 : service_->SubmitAs(tenant, std::move(spec),
                                      std::move(options));
  } else {
    ticket = service_->SubmitAs(tenant, std::move(spec));
  }
  RegisterTicket(ticket);
  return ticket;
}

void HttpServer::RegisterTicket(const WorkflowHandle& ticket) {
  std::lock_guard lock(tickets_mu_);
  tickets_[ticket->id()] = ticket;
  ticket_order_.push_back(ticket->id());
  // Evict oldest terminal tickets past the retention bound; non-terminal
  // tickets are never dropped (a client still holds their id).
  size_t scans = ticket_order_.size();
  while (tickets_.size() > config_.ticket_retention && scans-- > 0) {
    uint64_t victim = ticket_order_.front();
    ticket_order_.pop_front();
    auto it = tickets_.find(victim);
    if (it == tickets_.end()) {
      continue;
    }
    if (it->second->terminal()) {
      tickets_.erase(it);
    } else {
      ticket_order_.push_back(victim);
    }
  }
}

WorkflowHandle HttpServer::FindTicket(uint64_t id) const {
  std::lock_guard lock(tickets_mu_);
  auto it = tickets_.find(id);
  return it == tickets_.end() ? nullptr : it->second;
}

}  // namespace musketeer
