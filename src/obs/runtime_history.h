// Measured-runtime history feeding the cost-model calibration loop
// (observability subsystem, see DESIGN.md "Observability").
//
// The simulator's PriceJob returns SimSeconds — internally consistent but in
// arbitrary units relative to this machine's wall clock. RuntimeHistory
// records (simulated, measured) pairs per executed job and derives a
// RuntimeCalibration: a per-engine time scale
//
//   alpha_engine = sum(measured wall seconds) / sum(predicted sim seconds)
//
// with a global fallback for engines not yet observed. Two consumers:
//   * Musketeer::Execute uses PredictWallSeconds before each job and reports
//     mean relative prediction error in RunResult.cost_model_error — the
//     error shrinks between run 1 (no history) and run 2 (calibrated),
//     which tests/obs_test.cc asserts.
//   * CostModel multiplies JobCost by TimeScale(engine) when a calibration
//     is supplied, so relative engine pricing reflects measured reality.
//
// Engines are keyed by name string (EngineKindName) rather than EngineKind:
// this library sits below src/backends/ in the link order and must not
// depend on it.

#ifndef MUSKETEER_SRC_OBS_RUNTIME_HISTORY_H_
#define MUSKETEER_SRC_OBS_RUNTIME_HISTORY_H_

#include <map>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace musketeer {

// Value-type snapshot of the scales derived from a RuntimeHistory; safe to
// copy into a planning pass while execution keeps recording.
struct RuntimeCalibration {
  // wall_seconds ~= TimeScale(engine) * sim_seconds.
  double TimeScale(const std::string& engine) const;

  std::map<std::string, double> per_engine;  // engine name -> alpha
  double global_scale = 1.0;                 // fallback across all engines
  bool has_observations = false;
};

class RuntimeHistory {
 public:
  RuntimeHistory() = default;
  RuntimeHistory(const RuntimeHistory&) = delete;
  RuntimeHistory& operator=(const RuntimeHistory&) = delete;

  // Records one executed job: `signature` identifies the job within the
  // workflow (job name + engine), `sim_seconds` is the cost model's
  // simulated makespan, `wall_seconds` the measured wall clock.
  void RecordJob(std::string_view workflow, std::string_view signature,
                 std::string_view engine, double sim_seconds,
                 double wall_seconds);

  // Best wall-clock estimate for a job about to run, most specific first:
  //   1. mean measured wall of this exact (workflow, signature);
  //   2. alpha_engine * sim_seconds;
  //   3. global alpha * sim_seconds;
  //   4. sim_seconds unscaled (no history at all).
  double PredictWallSeconds(std::string_view workflow,
                            std::string_view signature,
                            std::string_view engine,
                            double sim_seconds) const;

  RuntimeCalibration Calibration() const;

  // Symmetric misprediction factor, >= 1: max(pred/meas, meas/pred), so a
  // 3x under-estimate and a 3x over-estimate both score 3. Execute()'s
  // online re-planner compares this against PlannerConfig::replan_threshold.
  // Degenerate inputs (either side <= 0) score 1 — never a replan trigger.
  static double ErrorRatio(double predicted_wall_seconds,
                           double measured_wall_seconds);

  int total_jobs() const;
  void Clear();

 private:
  struct Entry {
    double sim_sum = 0;
    double wall_sum = 0;
    int runs = 0;
  };
  struct EngineTotals {
    double sim_sum = 0;
    double wall_sum = 0;
  };

  static std::string JobKey(std::string_view workflow,
                            std::string_view signature);

  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> jobs_;                // guarded by mu_
  std::map<std::string, EngineTotals> engine_totals_;  // guarded by mu_
  int total_jobs_ = 0;                               // guarded by mu_
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_OBS_RUNTIME_HISTORY_H_
