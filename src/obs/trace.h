// Span-based tracer with Chrome trace_event JSON export (observability
// subsystem, see DESIGN.md "Observability").
//
// A Span is an RAII timing scope: construction stamps a monotonic start time
// and links the span to the innermost open span on the same thread (a
// thread-local stack supplies parent ids); destruction stamps the duration
// and appends the finished record to a per-thread buffer. One mutex
// acquisition per finished span, on a lock that is only ever contended by an
// export/Clear — cheap enough to wrap every engine job and relational kernel
// invocation.
//
// Tracing is off by default: Span construction then does one relaxed atomic
// load and nothing else, which is what keeps fully-instrumented kernels
// within the bench-enforced 5% overhead budget even though the
// instrumentation is always compiled in (bench/bench_obs_overhead.cc).
//
// Export is the Chrome trace_event format ("X" complete events):
//   {"traceEvents": [{"name": ..., "cat": ..., "ph": "X", "ts": <µs>,
//                     "dur": <µs>, "pid": 1, "tid": <n>, "args": {...}}]}
// loadable in chrome://tracing or https://ui.perfetto.dev. Span ids and
// parent links ride in "args"; visual nesting follows ts/dur per tid.
//
// Usage:
//   Tracer::Global().Enable(true);
//   {
//     Span span("stage.partition", "stage");
//     span.SetAttr("jobs", std::to_string(n));
//     ...
//   }
//   Tracer::Global().WriteChromeTrace("trace.json");

#ifndef MUSKETEER_SRC_OBS_TRACE_H_
#define MUSKETEER_SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace musketeer {

// One finished span.
struct SpanRecord {
  std::string name;
  std::string category;
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root span
  int tid = 0;             // tracer-assigned thread index (stable per thread)
  double start_us = 0;     // µs since the tracer's epoch (monotonic clock)
  double dur_us = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  // The process-wide tracer every Span reports to.
  static Tracer& Global();

  // Spans started while disabled record nothing (and cost one atomic load).
  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops every recorded span (keeps thread registrations and the epoch).
  void Clear();

  // Copies out all finished spans, ordered by start time.
  std::vector<SpanRecord> Snapshot() const;

  size_t span_count() const;
  // Spans discarded because a thread hit kMaxSpansPerThread.
  uint64_t dropped() const;

  // The Chrome trace_event JSON document as a string — what /trace serves.
  // Safe to call while tracing is active (exports the spans finished so far).
  std::string ChromeTraceJson() const;

  // Writes ChromeTraceJson() to a file.
  Status WriteChromeTrace(const std::string& path) const;

  // Per-thread buffer cap: a runaway span source degrades to counting drops
  // instead of exhausting memory (long-lived service processes).
  static constexpr size_t kMaxSpansPerThread = 1u << 20;

 private:
  friend class Span;

  struct ThreadLog {
    mutable std::mutex mu;
    std::vector<SpanRecord> spans;  // guarded by mu
    uint64_t dropped = 0;           // guarded by mu
    int tid = 0;
  };

  Tracer();

  // This thread's log, registering it on first use.
  ThreadLog* LocalLog();
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  double NowUs() const;
  void Record(SpanRecord record);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{0};
  std::atomic<int> next_tid_{0};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  // shared_ptr: a log outlives its thread so late exports still see it.
  std::vector<std::shared_ptr<ThreadLog>> logs_;  // guarded by mu_
};

// RAII span against Tracer::Global(). Records only if tracing was enabled at
// construction. Spans must be destroyed in LIFO order per thread (natural
// for stack-scoped instrumentation); parent links come from that nesting.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // True when this span is being recorded (tracing was on at construction).
  bool active() const { return active_; }

  // Attaches a key/value shown under "args" in the exported trace. No-op
  // when inactive, so callers may skip building the value:
  //   if (span.active()) span.SetAttr("rows", std::to_string(n));
  void SetAttr(std::string_view key, std::string value);

  // Seconds since construction (monotonic); works even when inactive, so one
  // Span can both trace and feed a latency Histogram.
  double elapsed_seconds() const;

 private:
  SpanRecord record_;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_OBS_TRACE_H_
