#include "src/obs/runtime_history.h"

#include <mutex>

namespace musketeer {

namespace {
// Sim costs can be zero for degenerate jobs; keep the alpha ratio finite.
constexpr double kMinSimSeconds = 1e-12;
}  // namespace

double RuntimeCalibration::TimeScale(const std::string& engine) const {
  auto it = per_engine.find(engine);
  if (it != per_engine.end()) {
    return it->second;
  }
  return global_scale;
}

std::string RuntimeHistory::JobKey(std::string_view workflow,
                                   std::string_view signature) {
  std::string key(workflow);
  key += '\x1f';  // unit separator: neither side contains control characters
  key += signature;
  return key;
}

void RuntimeHistory::RecordJob(std::string_view workflow,
                               std::string_view signature,
                               std::string_view engine, double sim_seconds,
                               double wall_seconds) {
  if (sim_seconds < 0 || wall_seconds < 0) {
    return;
  }
  std::unique_lock lock(mu_);
  Entry& e = jobs_[JobKey(workflow, signature)];
  e.sim_sum += sim_seconds;
  e.wall_sum += wall_seconds;
  ++e.runs;
  EngineTotals& t = engine_totals_[std::string(engine)];
  t.sim_sum += sim_seconds;
  t.wall_sum += wall_seconds;
  ++total_jobs_;
}

double RuntimeHistory::PredictWallSeconds(std::string_view workflow,
                                          std::string_view signature,
                                          std::string_view engine,
                                          double sim_seconds) const {
  std::shared_lock lock(mu_);
  auto it = jobs_.find(JobKey(workflow, signature));
  if (it != jobs_.end() && it->second.runs > 0) {
    return it->second.wall_sum / it->second.runs;
  }
  auto et = engine_totals_.find(std::string(engine));
  if (et != engine_totals_.end() && et->second.sim_sum > kMinSimSeconds) {
    return sim_seconds * (et->second.wall_sum / et->second.sim_sum);
  }
  double sim_sum = 0, wall_sum = 0;
  for (const auto& [name, totals] : engine_totals_) {
    sim_sum += totals.sim_sum;
    wall_sum += totals.wall_sum;
  }
  if (sim_sum > kMinSimSeconds) {
    return sim_seconds * (wall_sum / sim_sum);
  }
  return sim_seconds;
}

RuntimeCalibration RuntimeHistory::Calibration() const {
  RuntimeCalibration cal;
  std::shared_lock lock(mu_);
  double sim_sum = 0, wall_sum = 0;
  for (const auto& [name, totals] : engine_totals_) {
    sim_sum += totals.sim_sum;
    wall_sum += totals.wall_sum;
    if (totals.sim_sum > kMinSimSeconds) {
      cal.per_engine[name] = totals.wall_sum / totals.sim_sum;
    }
  }
  if (sim_sum > kMinSimSeconds) {
    cal.global_scale = wall_sum / sim_sum;
    cal.has_observations = true;
  }
  return cal;
}

double RuntimeHistory::ErrorRatio(double predicted_wall_seconds,
                                  double measured_wall_seconds) {
  if (predicted_wall_seconds <= 0 || measured_wall_seconds <= 0) {
    return 1.0;
  }
  const double over = predicted_wall_seconds / measured_wall_seconds;
  const double under = measured_wall_seconds / predicted_wall_seconds;
  return over > under ? over : under;
}

int RuntimeHistory::total_jobs() const {
  std::shared_lock lock(mu_);
  return total_jobs_;
}

void RuntimeHistory::Clear() {
  std::unique_lock lock(mu_);
  jobs_.clear();
  engine_totals_.clear();
  total_jobs_ = 0;
}

}  // namespace musketeer
