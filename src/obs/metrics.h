// Lock-cheap metrics registry (observability subsystem, see DESIGN.md
// "Observability").
//
// Three metric kinds, all safe for concurrent use from any thread:
//   * Counter   — monotonic tally, sharded across cache-line-padded atomic
//                 slots; each thread picks a shard once (thread-local) so
//                 concurrent increments rarely contend on one cache line.
//   * Gauge     — last-writer-wins double (queue depth, cache size).
//   * Histogram — fixed upper-bound buckets with atomic per-bucket counts;
//                 made for latency distributions (default bounds are an
//                 exponential 1µs..100s ladder).
//
// Metric naming scheme: `musketeer.<subsystem>.<what>[.<unit>]`, e.g.
// `musketeer.relational.join.calls`, `musketeer.service.run_seconds`.
// Call sites cache the reference returned by counter()/histogram() in a
// function-local static, so the registry's map lookup is off every hot path:
//
//   static Counter& calls =
//       MetricsRegistry::Global().counter("musketeer.relational.join.calls");
//   calls.Increment();
//
// Registered metrics are never destroyed or re-seated (the registry stores
// pointers, never erases), which is what makes those cached references sound.

#ifndef MUSKETEER_SRC_OBS_METRICS_H_
#define MUSKETEER_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace musketeer {

// Monotonic counter. Increment is one relaxed fetch_add on the calling
// thread's shard; Value sums all shards (reads may trail in-flight
// increments, which is fine for monitoring counters).
class Counter {
 public:
  static constexpr int kShards = 16;

  void Increment(uint64_t delta = 1);
  uint64_t Value() const;
  // Zeroes every shard. Test-only: racing increments may be lost.
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

// Last-writer-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus an
// implicit overflow bucket. Observation cost: one binary search over the
// (immutable) bounds and two relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // i in [0, bounds().size()]: the last index is the overflow bucket.
  uint64_t BucketCount(size_t i) const;
  const std::vector<double>& bounds() const { return bounds_; }

  // Exponential 1µs..100s ladder — covers kernel calls through whole runs.
  static std::vector<double> DefaultLatencyBounds();

 private:
  const std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

class MetricsRegistry {
 public:
  // The process-wide registry every subsystem reports into.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the named metric. Returned references stay valid for
  // the registry's lifetime. Requesting an existing name with a different
  // metric kind returns the existing metric of the requested kind under a
  // kind-suffixed internal key, so lookups never fail.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = Histogram::DefaultLatencyBounds());

  // Plain-text exposition dump, one metric per line, sorted by name:
  //   <name> <value>
  //   <name> count=<n> sum=<s> p_buckets=le1e-06:0,le1e-05:3,...,inf:0
  std::string DumpText() const;

  // Zeroes counters and histograms are NOT cleared (bounded memory, and
  // cached references must stay valid); tests use counter deltas instead.

 private:
  mutable std::mutex mu_;
  // Never erased: call sites hold references across the process lifetime.
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_OBS_METRICS_H_
