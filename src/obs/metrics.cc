#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace musketeer {

namespace {

// Each thread gets a stable shard index on first use (round-robin over the
// shard count), so a thread's increments always land on the same cache line
// and threads spread across lines.
int ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local int shard =
      static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                       Counter::kShards);
  return shard;
}

// fetch_add for atomic<double> spelled as a CAS loop (same rationale as
// Dfs::AtomicAdd: not lock-free everywhere as a builtin).
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---- Counter ---------------------------------------------------------------

void Counter::Increment(uint64_t delta) {
  shards_[ThisThreadShard()].value.fetch_add(delta, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) {
    s.value.store(0, std::memory_order_relaxed);
  }
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_([&] {
        std::sort(bounds.begin(), bounds.end());
        return std::move(bounds);
      }()),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
}

uint64_t Histogram::BucketCount(size_t i) const {
  return i <= bounds_.size() ? buckets_[i].load(std::memory_order_relaxed) : 0;
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  std::vector<double> bounds;
  for (double b = 1e-6; b <= 100.0; b *= 10.0) {
    bounds.push_back(b);
    bounds.push_back(b * 2.5);
  }
  return bounds;
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

std::string MetricsRegistry::DumpText() const {
  // Snapshot into an ordered map so the dump is stable for tooling/tests.
  std::map<std::string, std::string> lines;
  {
    std::lock_guard lock(mu_);
    char buf[160];
    for (const auto& [name, c] : counters_) {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(c->Value()));
      lines[name] = buf;
    }
    for (const auto& [name, g] : gauges_) {
      std::snprintf(buf, sizeof(buf), "%g", g->Value());
      lines[name] = buf;
    }
    for (const auto& [name, h] : histograms_) {
      std::string text;
      std::snprintf(buf, sizeof(buf), "count=%llu sum=%g buckets=",
                    static_cast<unsigned long long>(h->count()), h->sum());
      text += buf;
      bool first = true;
      for (size_t i = 0; i <= h->bounds().size(); ++i) {
        uint64_t n = h->BucketCount(i);
        if (n == 0) {
          continue;  // sparse dump: empty buckets carry no information
        }
        if (i < h->bounds().size()) {
          std::snprintf(buf, sizeof(buf), "%sle%g:%llu", first ? "" : ",",
                        h->bounds()[i], static_cast<unsigned long long>(n));
        } else {
          std::snprintf(buf, sizeof(buf), "%sinf:%llu", first ? "" : ",",
                        static_cast<unsigned long long>(n));
        }
        text += buf;
        first = false;
      }
      if (first) {
        text += "-";
      }
      lines[name] = text;
    }
  }
  std::string out;
  for (const auto& [name, value] : lines) {
    out += name;
    out += ' ';
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace musketeer
