#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/base/json.h"

namespace musketeer {

namespace {

// Innermost open span per thread; parent of the next span started here.
thread_local std::vector<uint64_t> t_span_stack;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadLog* Tracer::LocalLog() {
  // shared_ptr: the tracer holds the other reference, so a log outlives its
  // thread and late exports still see it.
  thread_local std::shared_ptr<ThreadLog> log;
  if (log == nullptr) {
    log = std::make_shared<ThreadLog>();
    log->tid = next_tid_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard lock(mu_);
    logs_.push_back(log);
  }
  return log.get();
}

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Record(SpanRecord record) {
  ThreadLog* log = LocalLog();
  record.tid = log->tid;
  std::lock_guard lock(log->mu);
  if (log->spans.size() >= kMaxSpansPerThread) {
    ++log->dropped;
    return;
  }
  log->spans.push_back(std::move(record));
}

void Tracer::Clear() {
  std::lock_guard lock(mu_);
  for (const auto& log : logs_) {
    std::lock_guard log_lock(log->mu);
    log->spans.clear();
    log->dropped = 0;
  }
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard lock(mu_);
    for (const auto& log : logs_) {
      std::lock_guard log_lock(log->mu);
      out.insert(out.end(), log->spans.begin(), log->spans.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

size_t Tracer::span_count() const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& log : logs_) {
    std::lock_guard log_lock(log->mu);
    n += log->spans.size();
  }
  return n;
}

uint64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  uint64_t n = 0;
  for (const auto& log : logs_) {
    std::lock_guard log_lock(log->mu);
    n += log->dropped;
  }
  return n;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::vector<SpanRecord> spans = Snapshot();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InternalError("cannot open trace output file '" + path + "'");
  }
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    std::string args = "{\"span_id\": \"" + std::to_string(s.id) +
                       "\", \"parent_id\": \"" + std::to_string(s.parent_id) +
                       "\"";
    for (const auto& [key, value] : s.attrs) {
      args += ", " + JsonQuote(key) + ": " + JsonQuote(value);
    }
    args += "}";
    std::fprintf(
        f,
        "  {\"name\": %s, \"cat\": %s, \"ph\": \"X\", \"ts\": %.3f, "
        "\"dur\": %.3f, \"pid\": 1, \"tid\": %d, \"args\": %s}%s\n",
        JsonQuote(s.name).c_str(),
        JsonQuote(s.category.empty() ? "span" : s.category).c_str(), s.start_us,
        s.dur_us, s.tid, args.c_str(), i + 1 < spans.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  if (std::fclose(f) != 0) {
    return InternalError("error writing trace output file '" + path + "'");
  }
  return OkStatus();
}

// ---- Span ------------------------------------------------------------------

Span::Span(std::string_view name, std::string_view category)
    : start_(std::chrono::steady_clock::now()) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) {
    return;
  }
  active_ = true;
  record_.name.assign(name.data(), name.size());
  record_.category.assign(category.data(), category.size());
  record_.id = tracer.NextSpanId();
  record_.parent_id = t_span_stack.empty() ? 0 : t_span_stack.back();
  record_.start_us = std::chrono::duration<double, std::micro>(
                         start_ - tracer.epoch_)
                         .count();
  t_span_stack.push_back(record_.id);
}

Span::~Span() {
  if (!active_) {
    return;
  }
  record_.dur_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  // LIFO discipline: this span is the innermost open span on this thread.
  if (!t_span_stack.empty() && t_span_stack.back() == record_.id) {
    t_span_stack.pop_back();
  }
  Tracer::Global().Record(std::move(record_));
}

void Span::SetAttr(std::string_view key, std::string value) {
  if (!active_) {
    return;
  }
  record_.attrs.emplace_back(std::string(key), std::move(value));
}

double Span::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace musketeer
