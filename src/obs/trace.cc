#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/base/json.h"

namespace musketeer {

namespace {

// Innermost open span per thread; parent of the next span started here.
thread_local std::vector<uint64_t> t_span_stack;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadLog* Tracer::LocalLog() {
  // shared_ptr: the tracer holds the other reference, so a log outlives its
  // thread and late exports still see it.
  thread_local std::shared_ptr<ThreadLog> log;
  if (log == nullptr) {
    log = std::make_shared<ThreadLog>();
    log->tid = next_tid_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard lock(mu_);
    logs_.push_back(log);
  }
  return log.get();
}

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Record(SpanRecord record) {
  ThreadLog* log = LocalLog();
  record.tid = log->tid;
  std::lock_guard lock(log->mu);
  if (log->spans.size() >= kMaxSpansPerThread) {
    ++log->dropped;
    return;
  }
  log->spans.push_back(std::move(record));
}

void Tracer::Clear() {
  std::lock_guard lock(mu_);
  for (const auto& log : logs_) {
    std::lock_guard log_lock(log->mu);
    log->spans.clear();
    log->dropped = 0;
  }
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard lock(mu_);
    for (const auto& log : logs_) {
      std::lock_guard log_lock(log->mu);
      out.insert(out.end(), log->spans.begin(), log->spans.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

size_t Tracer::span_count() const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& log : logs_) {
    std::lock_guard log_lock(log->mu);
    n += log->spans.size();
  }
  return n;
}

uint64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  uint64_t n = 0;
  for (const auto& log : logs_) {
    std::lock_guard log_lock(log->mu);
    n += log->dropped;
  }
  return n;
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  char buf[64];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    std::string args = "{\"span_id\": \"" + std::to_string(s.id) +
                       "\", \"parent_id\": \"" + std::to_string(s.parent_id) +
                       "\"";
    for (const auto& [key, value] : s.attrs) {
      args += ", " + JsonQuote(key) + ": " + JsonQuote(value);
    }
    args += "}";
    out += "  {\"name\": " + JsonQuote(s.name) + ", \"cat\": " +
           JsonQuote(s.category.empty() ? "span" : s.category) +
           ", \"ph\": \"X\", \"ts\": ";
    std::snprintf(buf, sizeof(buf), "%.3f", s.start_us);
    out += buf;
    out += ", \"dur\": ";
    std::snprintf(buf, sizeof(buf), "%.3f", s.dur_us);
    out += buf;
    out += ", \"pid\": 1, \"tid\": " + std::to_string(s.tid) +
           ", \"args\": " + args + "}";
    out += i + 1 < spans.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InternalError("cannot open trace output file '" + path + "'");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0 || written != json.size()) {
    return InternalError("error writing trace output file '" + path + "'");
  }
  return OkStatus();
}

// ---- Span ------------------------------------------------------------------

Span::Span(std::string_view name, std::string_view category)
    : start_(std::chrono::steady_clock::now()) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) {
    return;
  }
  active_ = true;
  record_.name.assign(name.data(), name.size());
  record_.category.assign(category.data(), category.size());
  record_.id = tracer.NextSpanId();
  record_.parent_id = t_span_stack.empty() ? 0 : t_span_stack.back();
  record_.start_us = std::chrono::duration<double, std::micro>(
                         start_ - tracer.epoch_)
                         .count();
  t_span_stack.push_back(record_.id);
}

Span::~Span() {
  if (!active_) {
    return;
  }
  record_.dur_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  // LIFO discipline: this span is the innermost open span on this thread.
  if (!t_span_stack.empty() && t_span_stack.back() == record_.id) {
    t_span_stack.pop_back();
  }
  Tracer::Global().Record(std::move(record_));
}

void Span::SetAttr(std::string_view key, std::string value) {
  if (!active_) {
    return;
  }
  record_.attrs.emplace_back(std::string(key), std::move(value));
}

double Span::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace musketeer
