// PipelinePlanner: decides which inter-job edges of a planned workflow run
// through a RelationChannel instead of the DFS materialization barrier.
//
// The planner walks the job list the partitioner produced (plan order is a
// topological order: every producer precedes its consumers) and accepts a
// producer→consumer edge only when it is *pipeline-safe*:
//
//   - the relation has exactly one consuming job and is not a workflow sink
//     (a sink must be committed to the DFS anyway, and fan-out would need
//     multicast channels);
//   - both engines are pipeline-capable: long-running dataflow runtimes
//     (Spark, Naiad) and the in-process SerialC path can accept input as it
//     is produced, batch-scheduled substrates (Hadoop, Metis) and the
//     out-of-core vertex runtimes (PowerGraph, GraphChi) start from
//     materialized storage;
//   - neither side is a WHILE-loop fixpoint job (loop state crosses the
//     boundary once per iteration, not once per run);
//   - the resulting concurrent group is schedulable: every input a group
//     member reads is either streamed in from within the group or already
//     committed before the group's first member would have started (group
//     members launch together, so a plain DFS read of a sibling's
//     yet-uncommitted output would race).
//
// In kAuto mode an accepted edge must additionally win on cost:
// ChannelHandoffSeconds(bytes) < BarrierHandoffSeconds(bytes) at the
// history-estimated edge size (unknown size => stay on the barrier, the
// measured default). kForce pipelines every safe edge — the deterministic
// setting the equivalence tests sweep.
//
// Sharded runs: the coordinator places jobs on different shards, so edges
// are only pipeline-safe within one address space. The ShardCoordinator
// keeps the barrier plane; this planner serves the in-process executor.

#ifndef MUSKETEER_SRC_STREAM_PIPELINE_H_
#define MUSKETEER_SRC_STREAM_PIPELINE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/backends/job.h"
#include "src/base/units.h"
#include "src/cluster/cluster.h"

namespace musketeer {

enum class PipelineMode {
  kOff,    // every edge is a DFS barrier (seed behavior)
  kAuto,   // pipeline safe edges that win on cost
  kForce,  // pipeline every safe edge
};

const char* PipelineModeName(PipelineMode mode);

struct PipelineOptions {
  PipelineMode mode = PipelineMode::kOff;
  size_t channel_capacity = 4;  // batches in flight per edge
  size_t batch_rows = 8192;     // morsel grain
};

// One accepted producer→consumer edge (indices into the job list).
struct PipelineEdge {
  size_t producer = 0;
  size_t consumer = 0;
  std::string relation;
  Bytes est_bytes = 0;  // 0 = unknown (kForce accepted it anyway)
};

struct PipelineSchedule {
  std::vector<PipelineEdge> edges;
  // Connected components of the accepted edges, each sorted ascending; every
  // group has >= 2 members and executes as one concurrent unit.
  std::vector<std::vector<size_t>> groups;
  // Per-job group id (-1 = runs on the barrier path).
  std::vector<int> group_of;

  bool empty() const { return edges.empty(); }
};

bool EnginePipelineCapable(EngineKind kind);

// `size_of(relation)` returns the estimated nominal bytes crossing an edge
// (history lookup, or the relation's current DFS size), 0 when unknown.
PipelineSchedule PlanPipelines(
    const std::vector<JobPlan>& jobs, const std::vector<std::string>& sinks,
    const PipelineOptions& options, const ClusterConfig& cluster,
    const std::function<Bytes(const std::string&)>& size_of);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_STREAM_PIPELINE_H_
