#include "src/stream/fingerprint.h"

namespace musketeer {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void Mix(uint64_t* h, const std::string& s) {
  for (unsigned char c : s) {
    *h ^= c;
    *h *= kFnvPrime;
  }
  *h ^= 0x1f;  // field separator so ("ab","c") != ("a","bc")
  *h *= kFnvPrime;
}

void Mix(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (i * 8)) & 0xff;
    *h *= kFnvPrime;
  }
}

}  // namespace

uint64_t FingerprintJob(const std::string& workflow_id, const JobPlan& job,
                        const Dfs& dfs) {
  uint64_t h = kFnvOffset;
  Mix(&h, workflow_id);
  Mix(&h, job.name);
  Mix(&h, std::string(EngineKindName(job.engine)));
  Mix(&h, std::string(WhileExecName(job.while_mode)));
  Mix(&h, job.generated_code);
  for (const std::string& in : job.inputs) {
    Mix(&h, in);
    Mix(&h, dfs.VersionOf(in));
  }
  for (const std::string& out : job.outputs) {
    Mix(&h, out);
  }
  return h;
}

void FingerprintStore::Record(
    const std::string& workflow_id, const std::string& job_name,
    uint64_t fingerprint,
    std::vector<std::pair<std::string, uint64_t>> outputs) {
  std::lock_guard lock(mu_);
  entries_[Key(workflow_id, job_name)] =
      Entry{fingerprint, std::move(outputs)};
}

bool FingerprintStore::CanReuse(const std::string& workflow_id,
                                const std::string& job_name,
                                uint64_t fingerprint, const Dfs& dfs) const {
  Entry entry;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(Key(workflow_id, job_name));
    if (it == entries_.end()) {
      return false;
    }
    entry = it->second;
  }
  if (entry.fingerprint != fingerprint || entry.outputs.empty()) {
    return false;
  }
  for (const auto& [relation, version] : entry.outputs) {
    if (!dfs.Contains(relation) || dfs.VersionOf(relation) != version) {
      return false;  // overwritten (or evicted) since the recording
    }
  }
  return true;
}

size_t FingerprintStore::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

void FingerprintStore::Clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
}

}  // namespace musketeer
