// Bounded, batch-granular channel for pipelined job-to-job handoff.
//
// The barrier data plane materializes every inter-job relation through the
// DFS (that is what Fig. 9 of the paper measures). A RelationChannel is the
// streaming alternative: the producer job pushes its output in fixed
// morsel-sized Table batches as soon as the relational kernel emits them,
// and the consumer job assembles its input from the batches concurrently —
// never waiting for the producer's substrate/verify/commit tail.
//
// Semantics:
//   - Bounded: Push blocks while `capacity` batches are queued
//     (backpressure), Pop blocks while the queue is empty and the channel
//     is still open. Both waits are sliced and honor the caller's
//     CancelToken and deadline, so a cancelled pipelined run drains instead
//     of deadlocking.
//   - Close(): producer finished cleanly; Pop drains the queue then reports
//     end-of-stream (an OK nullopt).
//   - Abort(status): producer failed; Pop fails with that status as soon as
//     it observes the abort (queued batches are incomplete data — dropped).
//     Abort after Close is a no-op, so an unconditional RAII abort guard on
//     the producer's error paths is safe.
//   - CloseReceiver(): consumer is gone (it failed, or fell back to the
//     barrier path). Subsequent pushes are dropped and return OK so the
//     producer never blocks on a reader that will not come.
//
// Determinism: batches are ordered Slices of the producer's kernel output
// (the exact bytes the barrier path commits to the DFS), reassembled in push
// order with AppendTable — so a pipelined run consumes bit-identical input
// to a barrier run by construction.

#ifndef MUSKETEER_SRC_STREAM_RELATION_CHANNEL_H_
#define MUSKETEER_SRC_STREAM_RELATION_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/base/cancel.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/relational/table.h"

namespace musketeer {

class RelationChannel {
 public:
  // `capacity` is in batches (>= 1); `relation` names the edge for errors
  // and metrics.
  explicit RelationChannel(std::string relation, size_t capacity = 4);

  RelationChannel(const RelationChannel&) = delete;
  RelationChannel& operator=(const RelationChannel&) = delete;

  // Blocks while the channel is full. Returns OK once the batch is queued
  // (or dropped because the receiver closed), CancelledError /
  // DeadlineExceededError when the wait is interrupted, InternalError when
  // called after Close/Abort.
  Status Push(Table batch, const CancelToken& cancel,
              const DeadlinePoint& deadline);

  // Blocks while the channel is empty and still open. Returns the next
  // batch in push order; an OK std::nullopt at end-of-stream; the abort
  // status after Abort; CancelledError / DeadlineExceededError when the
  // wait is interrupted.
  StatusOr<std::optional<Table>> Pop(const CancelToken& cancel,
                                     const DeadlinePoint& deadline);

  void Close();
  void Abort(Status status);
  void CloseReceiver();

  const std::string& relation() const { return relation_; }
  uint64_t batches_pushed() const;
  uint64_t batches_dropped() const;
  uint64_t push_stalls() const;
  uint64_t pop_stalls() const;
  Bytes bytes_pushed() const;

 private:
  enum class State { kOpen, kClosed, kAborted };

  const std::string relation_;
  const size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;   // signaled on pop / receiver close
  std::condition_variable not_empty_;  // signaled on push / close / abort
  std::deque<Table> queue_;
  State state_ = State::kOpen;
  bool receiver_closed_ = false;
  Status abort_status_;
  uint64_t batches_pushed_ = 0;
  uint64_t batches_dropped_ = 0;
  uint64_t push_stalls_ = 0;
  uint64_t pop_stalls_ = 0;
  Bytes bytes_pushed_ = 0;
};

// Channel wiring ExecuteJob receives for a pipelined job: which of its
// input relations arrive over a channel instead of a DFS pull, and which of
// its outputs it must stream (in addition to the unchanged DFS commit —
// streamed relations are still Put so fallback, incremental reuse and sinks
// all see them).
struct JobStreamIo {
  std::unordered_map<std::string, RelationChannel*> inputs;
  std::unordered_map<std::string, RelationChannel*> outputs;
  size_t batch_rows = 8192;  // morsel grain, matches the kernel chunk size
};

// Accounting for one side of a streamed edge.
struct StreamCounts {
  uint64_t batches = 0;
  Bytes bytes = 0;  // nominal
};

// Pushes `table` through `channel` as ordered Slices of `batch_rows` rows,
// then closes the channel. An empty table still pushes one empty batch so
// the consumer receives the schema. Does NOT abort the channel on error —
// callers hold an abort guard.
StatusOr<StreamCounts> StreamTable(const Table& table, size_t batch_rows,
                                   RelationChannel* channel,
                                   const CancelToken& cancel,
                                   const DeadlinePoint& deadline);

// Pops until end-of-stream and reassembles the batches in order. The result
// is bit-identical (Table::Identical) to the table the producer streamed.
struct AssembledTable {
  Table table;
  StreamCounts counts;
};
StatusOr<AssembledTable> AssembleFromChannel(RelationChannel* channel,
                                             const CancelToken& cancel,
                                             const DeadlinePoint& deadline);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_STREAM_RELATION_CHANNEL_H_
