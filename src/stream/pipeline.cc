#include "src/stream/pipeline.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "src/scheduler/cost_model.h"

namespace musketeer {

const char* PipelineModeName(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kOff:
      return "off";
    case PipelineMode::kAuto:
      return "auto";
    case PipelineMode::kForce:
      return "force";
  }
  return "off";
}

bool EnginePipelineCapable(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSpark:    // RDDs accept upstream partitions as produced
    case EngineKind::kNaiad:    // timely dataflow is streaming-native
    case EngineKind::kSerialC:  // in-process, no substrate start barrier
      return true;
    case EngineKind::kHadoop:      // batch-scheduled from materialized input
    case EngineKind::kMetis:       // ditto (single-machine MapReduce)
    case EngineKind::kPowerGraph:  // vertex runtimes load a graph, then run
    case EngineKind::kGraphChi:    // out-of-core by design
      return false;
  }
  return false;
}

namespace {

size_t Find(std::vector<size_t>& parent, size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

void Unite(std::vector<size_t>& parent, size_t a, size_t b) {
  parent[Find(parent, a)] = Find(parent, b);
}

}  // namespace

PipelineSchedule PlanPipelines(
    const std::vector<JobPlan>& jobs, const std::vector<std::string>& sinks,
    const PipelineOptions& options, const ClusterConfig& cluster,
    const std::function<Bytes(const std::string&)>& size_of) {
  PipelineSchedule out;
  out.group_of.assign(jobs.size(), -1);
  if (options.mode == PipelineMode::kOff || jobs.size() < 2) {
    return out;
  }

  std::unordered_map<std::string, size_t> producer_of;
  std::unordered_map<std::string, int> consumer_count;
  for (size_t i = 0; i < jobs.size(); ++i) {
    for (const std::string& rel : jobs[i].outputs) {
      producer_of[rel] = i;
    }
    for (const std::string& rel : jobs[i].inputs) {
      ++consumer_count[rel];
    }
  }
  const std::unordered_set<std::string> sink_set(sinks.begin(), sinks.end());

  std::vector<size_t> parent(jobs.size());
  std::iota(parent.begin(), parent.end(), 0);

  // Group-schedulability: with `cand` added, every input of every job in the
  // merged component must be streamed in from within the component, produced
  // before the component's first member (committed by group launch time), or
  // a base relation. Members launch concurrently, so a DFS read of a
  // sibling's yet-uncommitted output would race.
  auto safe_with_edge = [&](const PipelineEdge& cand) {
    const size_t ra = Find(parent, cand.producer);
    const size_t rb = Find(parent, cand.consumer);
    std::vector<size_t> members;
    for (size_t j = 0; j < jobs.size(); ++j) {
      const size_t r = Find(parent, j);
      if (r == ra || r == rb) {
        members.push_back(j);
      }
    }
    const size_t first = *std::min_element(members.begin(), members.end());
    const std::unordered_set<size_t> member_set(members.begin(), members.end());
    auto streamed_into = [&](size_t consumer, const std::string& rel) {
      if (cand.consumer == consumer && cand.relation == rel) {
        return true;
      }
      for (const PipelineEdge& e : out.edges) {
        if (e.consumer == consumer && e.relation == rel) {
          return true;
        }
      }
      return false;
    };
    for (size_t m : members) {
      for (const std::string& in : jobs[m].inputs) {
        auto it = producer_of.find(in);
        if (it == producer_of.end()) {
          continue;  // base relation: in the DFS before the run started
        }
        if (member_set.count(it->second) > 0) {
          if (!streamed_into(m, in)) {
            return false;
          }
        } else if (it->second >= first) {
          return false;
        }
      }
    }
    return true;
  };

  for (size_t c = 0; c < jobs.size(); ++c) {
    const JobPlan& consumer = jobs[c];
    if (consumer.while_mode != WhileExec::kNone ||
        !EnginePipelineCapable(consumer.engine)) {
      continue;
    }
    for (const std::string& rel : consumer.inputs) {
      auto it = producer_of.find(rel);
      if (it == producer_of.end() || it->second >= c) {
        continue;
      }
      const JobPlan& producer = jobs[it->second];
      if (producer.while_mode != WhileExec::kNone ||
          !EnginePipelineCapable(producer.engine)) {
        continue;
      }
      if (consumer_count[rel] != 1 || sink_set.count(rel) > 0) {
        continue;
      }
      const Bytes est = size_of(rel);
      if (options.mode == PipelineMode::kAuto) {
        // Unknown size: stay on the measured default (the barrier).
        if (est <= 0 ||
            ChannelHandoffSeconds(est) >=
                BarrierHandoffSeconds(producer.engine, consumer.engine,
                                      cluster, est)) {
          continue;
        }
      }
      const PipelineEdge cand{it->second, c, rel, est};
      if (!safe_with_edge(cand)) {
        continue;
      }
      out.edges.push_back(cand);
      Unite(parent, cand.producer, cand.consumer);
    }
  }

  // Components with >= 2 members become groups, numbered by first member so
  // the schedule is deterministic.
  std::unordered_map<size_t, int> group_of_root;
  for (size_t j = 0; j < jobs.size(); ++j) {
    const size_t root = Find(parent, j);
    auto it = group_of_root.find(root);
    if (it != group_of_root.end()) {
      out.group_of[j] = it->second;
      out.groups[static_cast<size_t>(it->second)].push_back(j);
      continue;
    }
    // Only roots reached by an accepted edge form groups.
    bool in_edge = false;
    for (const PipelineEdge& e : out.edges) {
      if (Find(parent, e.producer) == root) {
        in_edge = true;
        break;
      }
    }
    if (!in_edge) {
      continue;
    }
    const int id = static_cast<int>(out.groups.size());
    group_of_root[root] = id;
    out.group_of[j] = id;
    out.groups.push_back({j});
  }
  return out;
}

}  // namespace musketeer
