#include "src/stream/relation_channel.h"

#include <algorithm>
#include <chrono>

#include "src/obs/metrics.h"

namespace musketeer {

namespace {

// Wait slice: long enough that an uncontended handoff never spins, short
// enough that cancellation and deadline expiry resolve promptly (the same
// resolution the dispatcher's BackoffSleep uses).
constexpr std::chrono::milliseconds kWaitSlice{10};

// CancelledError / DeadlineExceededError when the caller should stop
// waiting, OK otherwise.
Status WaitInterrupted(const std::string& relation, const CancelToken& cancel,
                       const DeadlinePoint& deadline) {
  if (cancel.cancel_requested()) {
    return CancelledError("cancelled while waiting on channel '" + relation +
                          "'");
  }
  if (deadline.has_value() &&
      std::chrono::steady_clock::now() >= *deadline) {
    return DeadlineExceededError("deadline expired while waiting on channel '" +
                                 relation + "'");
  }
  return OkStatus();
}

}  // namespace

RelationChannel::RelationChannel(std::string relation, size_t capacity)
    : relation_(std::move(relation)), capacity_(std::max<size_t>(1, capacity)) {}

Status RelationChannel::Push(Table batch, const CancelToken& cancel,
                             const DeadlinePoint& deadline) {
  static Counter& stall_metric =
      MetricsRegistry::Global().counter("musketeer.stream.push_stalls");
  static Counter& batch_metric =
      MetricsRegistry::Global().counter("musketeer.stream.batches");
  static Counter& bytes_metric =
      MetricsRegistry::Global().counter("musketeer.stream.bytes");
  static Counter& dropped_metric =
      MetricsRegistry::Global().counter("musketeer.stream.batches_dropped");

  std::unique_lock lock(mu_);
  bool stalled = false;
  while (true) {
    if (state_ != State::kOpen) {
      return InternalError("push on closed channel '" + relation_ + "'");
    }
    if (receiver_closed_) {
      // The consumer fell back (or failed): drop silently so the producer
      // finishes its own commit without blocking on a reader that is gone.
      ++batches_dropped_;
      dropped_metric.Increment();
      return OkStatus();
    }
    if (queue_.size() < capacity_) {
      break;
    }
    if (!stalled) {
      stalled = true;
      ++push_stalls_;
      stall_metric.Increment();
    }
    Status interrupted = WaitInterrupted(relation_, cancel, deadline);
    if (!interrupted.ok()) {
      return interrupted;
    }
    not_full_.wait_for(lock, kWaitSlice);
  }
  const Bytes bytes = batch.nominal_bytes();
  queue_.push_back(std::move(batch));
  ++batches_pushed_;
  bytes_pushed_ += bytes;
  batch_metric.Increment();
  bytes_metric.Increment(static_cast<uint64_t>(bytes));
  not_empty_.notify_one();
  return OkStatus();
}

StatusOr<std::optional<Table>> RelationChannel::Pop(
    const CancelToken& cancel, const DeadlinePoint& deadline) {
  static Counter& stall_metric =
      MetricsRegistry::Global().counter("musketeer.stream.pop_stalls");

  std::unique_lock lock(mu_);
  bool stalled = false;
  while (true) {
    if (state_ == State::kAborted) {
      // Queued batches are an incomplete prefix of a failed producer's
      // output — surface the failure instead.
      return abort_status_;
    }
    if (!queue_.empty()) {
      Table batch = std::move(queue_.front());
      queue_.pop_front();
      not_full_.notify_one();
      return std::optional<Table>(std::move(batch));
    }
    if (state_ == State::kClosed) {
      return std::optional<Table>(std::nullopt);  // drained: end-of-stream
    }
    if (!stalled) {
      stalled = true;
      ++pop_stalls_;
      stall_metric.Increment();
    }
    Status interrupted = WaitInterrupted(relation_, cancel, deadline);
    if (!interrupted.ok()) {
      return interrupted;
    }
    not_empty_.wait_for(lock, kWaitSlice);
  }
}

void RelationChannel::Close() {
  std::lock_guard lock(mu_);
  if (state_ == State::kOpen) {
    state_ = State::kClosed;
  }
  not_empty_.notify_all();
}

void RelationChannel::Abort(Status status) {
  std::lock_guard lock(mu_);
  if (state_ != State::kOpen) {
    return;  // Close/Abort already resolved the stream; first word wins
  }
  state_ = State::kAborted;
  abort_status_ = status.ok()
                      ? UnavailableError("channel '" + relation_ + "' aborted")
                      : std::move(status);
  queue_.clear();
  not_empty_.notify_all();
  not_full_.notify_all();
}

void RelationChannel::CloseReceiver() {
  std::lock_guard lock(mu_);
  receiver_closed_ = true;
  queue_.clear();  // nobody will pop these
  not_full_.notify_all();
}

uint64_t RelationChannel::batches_pushed() const {
  std::lock_guard lock(mu_);
  return batches_pushed_;
}

uint64_t RelationChannel::batches_dropped() const {
  std::lock_guard lock(mu_);
  return batches_dropped_;
}

uint64_t RelationChannel::push_stalls() const {
  std::lock_guard lock(mu_);
  return push_stalls_;
}

uint64_t RelationChannel::pop_stalls() const {
  std::lock_guard lock(mu_);
  return pop_stalls_;
}

Bytes RelationChannel::bytes_pushed() const {
  std::lock_guard lock(mu_);
  return bytes_pushed_;
}

StatusOr<StreamCounts> StreamTable(const Table& table, size_t batch_rows,
                                   RelationChannel* channel,
                                   const CancelToken& cancel,
                                   const DeadlinePoint& deadline) {
  const size_t grain = std::max<size_t>(1, batch_rows);
  StreamCounts counts;
  size_t begin = 0;
  do {
    const size_t end = std::min(table.num_rows(), begin + grain);
    Table batch = table.Slice(begin, end);  // keeps schema and scale
    counts.bytes += batch.nominal_bytes();
    MUSKETEER_RETURN_IF_ERROR(channel->Push(std::move(batch), cancel, deadline));
    ++counts.batches;
    begin = end;
  } while (begin < table.num_rows());
  channel->Close();
  return counts;
}

StatusOr<AssembledTable> AssembleFromChannel(RelationChannel* channel,
                                             const CancelToken& cancel,
                                             const DeadlinePoint& deadline) {
  AssembledTable out;
  bool first = true;
  while (true) {
    MUSKETEER_ASSIGN_OR_RETURN(std::optional<Table> batch,
                               channel->Pop(cancel, deadline));
    if (!batch.has_value()) {
      break;
    }
    ++out.counts.batches;
    out.counts.bytes += batch->nominal_bytes();
    if (first) {
      // Move the first batch wholesale: AppendTable's adopt path keeps the
      // destination's (default) scale, but batches carry the producer's.
      out.table = std::move(*batch);
      first = false;
    } else {
      out.table.AppendTable(std::move(*batch));
    }
  }
  if (first) {
    return InternalError("channel '" + channel->relation() +
                         "' closed without any batch (producers always push "
                         "at least the schema)");
  }
  return out;
}

}  // namespace musketeer
