// Per-job input fingerprints for incremental recomputation.
//
// A job's fingerprint hashes everything that determines its output bytes:
// the workflow, the job's name and engine, the generated code, and the DFS
// content-version of every input relation (Dfs::VersionOf — bumped on every
// Put/overwrite). Execution is deterministic (the Table::Identical contract),
// so fingerprint-equal implies output-equal.
//
// The FingerprintStore remembers, per (workflow, job), the fingerprint of
// the last successful execution together with the versions its outputs were
// committed at. A resubmission may then *reuse* a job — skip execution and
// serve its outputs from the DFS — when the current fingerprint matches and
// every recorded output still sits in the DFS at its recorded version. Any
// overwrite (a base-relation append, another workflow clobbering an
// intermediate, a shard failover re-put) bumps a version and invalidates
// exactly the affected DAG suffix: a recomputed job re-Puts its outputs,
// which bumps them, which invalidates its consumers in turn.
//
// Layering: this is the delta-run counterpart of PR 4's RuntimeHistory —
// the same "job.name @ engine" signature space, but keyed on input content
// rather than measured runtime.

#ifndef MUSKETEER_SRC_STREAM_FINGERPRINT_H_
#define MUSKETEER_SRC_STREAM_FINGERPRINT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/backends/job.h"
#include "src/cluster/dfs.h"

namespace musketeer {

// Fingerprint of `job` against the relation versions currently in `dfs`.
uint64_t FingerprintJob(const std::string& workflow_id, const JobPlan& job,
                        const Dfs& dfs);

// Thread-safe store of last-success fingerprints. One per service (shared
// across tenants' resubmissions) or per CLI process.
class FingerprintStore {
 public:
  FingerprintStore() = default;
  FingerprintStore(const FingerprintStore&) = delete;
  FingerprintStore& operator=(const FingerprintStore&) = delete;

  // Records a successful execution: `outputs` are (relation, version) pairs
  // read back from the DFS after the job's commit.
  void Record(const std::string& workflow_id, const std::string& job_name,
              uint64_t fingerprint,
              std::vector<std::pair<std::string, uint64_t>> outputs);

  // True when the job may be skipped: `fingerprint` matches the recorded
  // one and every recorded output is still in `dfs` at its recorded
  // version. A stale output version — any overwrite since the recording —
  // fails the check.
  bool CanReuse(const std::string& workflow_id, const std::string& job_name,
                uint64_t fingerprint, const Dfs& dfs) const;

  size_t size() const;
  void Clear();

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    std::vector<std::pair<std::string, uint64_t>> outputs;
  };

  static std::string Key(const std::string& workflow_id,
                         const std::string& job_name) {
    return workflow_id + '\x1f' + job_name;
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;  // guarded by mu_
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_STREAM_FINGERPRINT_H_
