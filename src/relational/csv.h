// CSV import/export for relations. The on-disk format is the one the paper's
// HDFS-resident inputs use: one record per line, fields separated by a
// configurable delimiter (space for graph edge lists, comma for tables).

#ifndef MUSKETEER_SRC_RELATIONAL_CSV_H_
#define MUSKETEER_SRC_RELATIONAL_CSV_H_

#include <string>

#include "src/base/status.h"
#include "src/relational/table.h"

namespace musketeer {

// Parses `text` into a table with the given schema. Fields are converted
// according to schema types; malformed lines produce an error naming the
// line number.
StatusOr<Table> ParseCsv(const std::string& text, const Schema& schema,
                         char delimiter = ',');

// Serializes a table (no header row).
// `round_trip_doubles` emits doubles with max_digits10 precision so
// ParseCsv(WriteCsv(t)) reproduces t bit-for-bit (wire transfers); the
// default keeps the human-friendly %.6g rendering.
std::string WriteCsv(const Table& table, char delimiter = ',',
                     bool round_trip_doubles = false);

// File variants.
StatusOr<Table> LoadCsvFile(const std::string& path, const Schema& schema,
                            char delimiter = ',');
Status SaveCsvFile(const Table& table, const std::string& path,
                   char delimiter = ',');

}  // namespace musketeer

#endif  // MUSKETEER_SRC_RELATIONAL_CSV_H_
