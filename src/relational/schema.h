// Relation schemas: named, typed columns.

#ifndef MUSKETEER_SRC_RELATIONAL_SCHEMA_H_
#define MUSKETEER_SRC_RELATIONAL_SCHEMA_H_

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "src/relational/value.h"

namespace musketeer {

struct Field {
  std::string name;
  FieldType type;

  bool operator==(const Field& other) const = default;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  // Column index by name, or nullopt if absent. Name matching is exact.
  std::optional<int> IndexOf(const std::string& name) const;

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  // "name:TYPE, name:TYPE, ..." — used in error messages and codegen.
  std::string ToString() const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<Field> fields_;
};

// Compact machine-readable schema form "name:int,name:double,name:string" —
// the CLI's --input syntax and the network API's schema field. Inverse of
// ParseSchemaSpec (FormatSchemaSpec output always parses back equal).
std::string FormatSchemaSpec(const Schema& schema);

// Parses the compact form; type names int/int64, double and string are
// matched case-insensitively. nullopt on malformed or empty specs.
std::optional<Schema> ParseSchemaSpec(std::string_view spec);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_RELATIONAL_SCHEMA_H_
