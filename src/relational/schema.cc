#include "src/relational/schema.h"

#include "src/base/strings.h"

namespace musketeer {

std::optional<int> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += fields_[i].name;
    out += ":";
    out += FieldTypeName(fields_[i].type);
  }
  return out;
}

std::string FormatSchemaSpec(const Schema& schema) {
  std::string out;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& f = schema.field(i);
    if (i > 0) {
      out += ",";
    }
    out += f.name;
    out += ":";
    switch (f.type) {
      case FieldType::kInt64:
        out += "int";
        break;
      case FieldType::kDouble:
        out += "double";
        break;
      case FieldType::kString:
        out += "string";
        break;
    }
  }
  return out;
}

std::optional<Schema> ParseSchemaSpec(std::string_view spec) {
  Schema schema;
  for (const std::string& field : StrSplit(spec, ',')) {
    std::vector<std::string> parts = StrSplit(field, ':');
    if (parts.size() != 2) {
      return std::nullopt;
    }
    FieldType type;
    if (EqualsIgnoreCase(parts[1], "int") ||
        EqualsIgnoreCase(parts[1], "int64")) {
      type = FieldType::kInt64;
    } else if (EqualsIgnoreCase(parts[1], "double")) {
      type = FieldType::kDouble;
    } else if (EqualsIgnoreCase(parts[1], "string")) {
      type = FieldType::kString;
    } else {
      return std::nullopt;
    }
    std::string name(StripWhitespace(parts[0]));
    if (name.empty()) {
      return std::nullopt;
    }
    schema.AddField({std::move(name), type});
  }
  return schema.num_fields() > 0 ? std::optional<Schema>(schema)
                                 : std::nullopt;
}

}  // namespace musketeer
