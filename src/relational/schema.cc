#include "src/relational/schema.h"

namespace musketeer {

std::optional<int> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += fields_[i].name;
    out += ":";
    out += FieldTypeName(fields_[i].type);
  }
  return out;
}

}  // namespace musketeer
