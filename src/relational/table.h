// In-memory relations plus the nominal-size metadata that drives the engine
// simulators.
//
// A Table holds the rows Musketeer actually executes on (the "sample") and a
// `scale` factor: the workload generators materialize a scaled-down sample of
// the paper's data sets (e.g., 1/1000th of the Twitter graph) and set scale
// so that nominal_rows() == the data set size the paper used. Engine
// simulators charge time against nominal sizes while computing real results
// on the sample; correctness checks always compare sample contents.
//
// Storage is columnar: one typed Column per schema field plus a row count
// (see column.h). Batch kernels operate on the typed vectors directly;
// row-at-a-time call sites (the record-oriented timely runtime, tests) go
// through RowRef / MaterializeRow, which rebuild the old row-of-variants
// view on demand.

#ifndef MUSKETEER_SRC_RELATIONAL_TABLE_H_
#define MUSKETEER_SRC_RELATIONAL_TABLE_H_

#include <atomic>
#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/relational/column.h"
#include "src/relational/schema.h"
#include "src/relational/value.h"

namespace musketeer {

class Table;

// Lightweight non-owning view of one row; cells materialize to Value on
// access. Valid while the underlying Table is alive and unmodified.
class RowRef {
 public:
  RowRef(const Table& table, size_t row) : table_(&table), row_(row) {}

  size_t size() const;
  Value operator[](size_t c) const;
  Row Materialize() const;

 private:
  const Table* table_;
  size_t row_;
};

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {
    cols_.reserve(schema_.num_fields());
    for (const Field& f : schema_.fields()) {
      cols_.emplace_back(f.type);
    }
  }
  // Compatibility constructor: bulk-loads row-of-variants data.
  Table(Schema schema, std::vector<Row> rows) : Table(std::move(schema)) {
    Reserve(rows.size());
    for (const Row& r : rows) {
      AddRow(r);
    }
  }
  // Adopts pre-built columns (the batch kernels' output path). All columns
  // must match the schema types and share one length.
  static Table FromColumns(Schema schema, std::vector<Column> cols);

  // The avg_row_bytes cache is a relaxed atomic (Tables are shared read-only
  // across worker threads); copies must not copy the atomic directly.
  Table(const Table& o)
      : schema_(o.schema_),
        cols_(o.cols_),
        num_rows_(o.num_rows_),
        scale_(o.scale_) {
    avg_row_bytes_cache_.store(
        o.avg_row_bytes_cache_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  Table(Table&& o) noexcept
      : schema_(std::move(o.schema_)),
        cols_(std::move(o.cols_)),
        num_rows_(o.num_rows_),
        scale_(o.scale_) {
    avg_row_bytes_cache_.store(
        o.avg_row_bytes_cache_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    o.num_rows_ = 0;
    o.InvalidateAvgRowBytes();
  }
  Table& operator=(const Table& o) {
    if (this != &o) {
      schema_ = o.schema_;
      cols_ = o.cols_;
      num_rows_ = o.num_rows_;
      scale_ = o.scale_;
      avg_row_bytes_cache_.store(
          o.avg_row_bytes_cache_.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    return *this;
  }
  Table& operator=(Table&& o) noexcept {
    if (this != &o) {
      schema_ = std::move(o.schema_);
      cols_ = std::move(o.cols_);
      num_rows_ = o.num_rows_;
      scale_ = o.scale_;
      avg_row_bytes_cache_.store(
          o.avg_row_bytes_cache_.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      o.num_rows_ = 0;
      o.InvalidateAvgRowBytes();
    }
    return *this;
  }

  const Schema& schema() const { return schema_; }

  size_t num_fields() const { return cols_.size(); }
  const Column& col(size_t c) const { return cols_[c]; }

  size_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  Value ValueAt(size_t row, size_t c) const { return cols_[c].ValueAt(row); }
  RowRef RowAt(size_t row) const { return RowRef(*this, row); }

  // Rebuilds one row (all rows) as row-of-variants. O(num_fields) Value
  // materializations per row — a compatibility path, not a kernel path.
  Row MaterializeRow(size_t row) const;
  std::vector<Row> MaterializeRows() const;

  // Appends one row-of-variants row. Numeric cells coerce to the column type
  // (like the typed engines' load path); a string/numeric mismatch against
  // the schema is a programming error (assert; the cell loads as a default
  // value in release builds so row alignment is preserved).
  void AddRow(const Row& row);

  void Reserve(size_t n) {
    for (Column& c : cols_) {
      c.Reserve(n);
    }
  }

  // Moves `rows` onto the end of the table in order (bulk materialization
  // compatibility shim over AddRow).
  void AppendRows(std::vector<Row>&& rows) {
    Reserve(num_rows_ + rows.size());
    for (const Row& r : rows) {
      AddRow(r);
    }
    rows.clear();
  }

  // Appends row `i` of `src`; schemas must have identical column types.
  void AppendRowFrom(const Table& src, size_t i) {
    assert(src.cols_.size() == cols_.size());
    for (size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].AppendFrom(src.cols_[c], i);
    }
    ++num_rows_;
    InvalidateAvgRowBytes();
  }

  // Appends src row `i` restricted to src columns `cols` (in that order);
  // this table's column types must match those src columns. Used by the
  // group-by kernel to collect key rows without materialization.
  void AppendRowFromCols(const Table& src, size_t i,
                         const std::vector<int>& cols) {
    assert(cols.size() == cols_.size());
    for (size_t k = 0; k < cols_.size(); ++k) {
      cols_[k].AppendFrom(src.cols_[cols[k]], i);
    }
    ++num_rows_;
    InvalidateAvgRowBytes();
  }

  // Splices `other` onto the end. A default-constructed (schema-less) table
  // adopts `other` wholesale — the engines' shuffle buckets start empty and
  // take their schema from the first append.
  void AppendTable(Table&& other);
  void AppendTableCopy(const Table& other);

  // New table with rows [begin, end); keeps schema and scale.
  Table Slice(size_t begin, size_t end) const;

  // New table with the rows at `idx` in `idx` order; keeps schema and scale.
  Table Gather(const std::vector<uint32_t>& idx) const;

  // Releases the column vector (e.g. to re-assemble into a wider table).
  // The table is left empty.
  std::vector<Column> ReleaseColumns();

  // Validates the structural invariant: one column per schema field, every
  // column of the schema's type and of num_rows() length. (Cell-level type
  // mismatches cannot exist in columnar storage.)
  Status Validate() const;

  // --- Nominal-size metadata -------------------------------------------
  // scale = nominal rows per sample row (>= 1.0). Propagated through
  // relational operators so engine simulators can charge full-size time.
  double scale() const { return scale_; }
  void set_scale(double scale) { scale_ = scale; }

  double nominal_rows() const {
    return static_cast<double>(num_rows_) * scale_;
  }

  // Average serialized bytes per row of the sample (measured on up to the
  // first 1024 rows; exact for narrow tables). Computed from the column
  // footprints, cached, and invalidated when rows are appended; safe to call
  // concurrently on a shared immutable Table.
  double avg_row_bytes() const;

  // Nominal serialized footprint: nominal_rows * avg_row_bytes.
  Bytes nominal_bytes() const { return nominal_rows() * avg_row_bytes(); }

  // Actual sample footprint.
  Bytes sample_bytes() const {
    return static_cast<double>(num_rows_) * avg_row_bytes();
  }

  // Renders the first `limit` rows for debugging.
  std::string DebugString(size_t limit = 10) const;

  // Sorts rows into canonical order (for order-insensitive comparisons).
  void SortRows();

  // Lexicographic whole-row comparison (RowLess semantics: cell-wise
  // CompareValues, then arity).
  static int CompareRowsAt(const Table& a, size_t i, const Table& b, size_t j);

  // True if both tables contain the same multiset of rows (ignoring order)
  // and compatible schemas (same arity; doubles compare with tolerance).
  static bool SameContent(const Table& a, const Table& b);

  // Exact equality: same schema types, same row order, and bit-identical
  // values (typed column compare; no cross-numeric coercion). This is the
  // parallel data plane's determinism check.
  static bool Identical(const Table& a, const Table& b);

 private:
  void InvalidateAvgRowBytes() {
    avg_row_bytes_cache_.store(-1.0, std::memory_order_relaxed);
  }

  Schema schema_;
  std::vector<Column> cols_;
  size_t num_rows_ = 0;
  double scale_ = 1.0;
  // < 0 means "not computed". Relaxed atomic: concurrent readers may race to
  // compute it, but they all store the same deterministic value.
  mutable std::atomic<double> avg_row_bytes_cache_{-1.0};
};

// Row hash over the given columns, identical to the row-of-variants RowHash
// mix (the engines' shuffle partitioning depends on these exact values).
inline size_t HashRow(const Table& t, size_t row, const std::vector<int>& cols) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : cols) {
    h ^= t.col(c).HashAt(row) + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

// Row hash over all columns (RowHash over a full materialized row).
inline size_t HashRowAllCols(const Table& t, size_t row) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t c = 0; c < t.num_fields(); ++c) {
    h ^= t.col(c).HashAt(row) + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

inline size_t RowRef::size() const { return table_->num_fields(); }
inline Value RowRef::operator[](size_t c) const {
  return table_->ValueAt(row_, c);
}
inline Row RowRef::Materialize() const { return table_->MaterializeRow(row_); }

using TablePtr = std::shared_ptr<const Table>;

}  // namespace musketeer

#endif  // MUSKETEER_SRC_RELATIONAL_TABLE_H_
