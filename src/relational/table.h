// In-memory relations plus the nominal-size metadata that drives the engine
// simulators.
//
// A Table holds the rows Musketeer actually executes on (the "sample") and a
// `scale` factor: the workload generators materialize a scaled-down sample of
// the paper's data sets (e.g., 1/1000th of the Twitter graph) and set scale
// so that nominal_rows() == the data set size the paper used. Engine
// simulators charge time against nominal sizes while computing real results
// on the sample; correctness checks always compare sample contents.

#ifndef MUSKETEER_SRC_RELATIONAL_TABLE_H_
#define MUSKETEER_SRC_RELATIONAL_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/relational/schema.h"
#include "src/relational/value.h"

namespace musketeer {

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>* mutable_rows() { return &rows_; }

  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void AddRow(Row row) { rows_.push_back(std::move(row)); }
  void Reserve(size_t n) { rows_.reserve(n); }

  // Moves `rows` onto the end of the table in order (bulk materialization;
  // one reallocation at most when preceded by Reserve).
  void AppendRows(std::vector<Row>&& rows) {
    if (rows_.empty() && rows_.capacity() < rows.size()) {
      rows_ = std::move(rows);  // steal; a larger Reserve stays in place
      return;
    }
    rows_.insert(rows_.end(), std::make_move_iterator(rows.begin()),
                 std::make_move_iterator(rows.end()));
    rows.clear();
  }

  // Validates that every row matches the schema arity and types.
  Status Validate() const;

  // --- Nominal-size metadata -------------------------------------------
  // scale = nominal rows per sample row (>= 1.0). Propagated through
  // relational operators so engine simulators can charge full-size time.
  double scale() const { return scale_; }
  void set_scale(double scale) { scale_ = scale; }

  double nominal_rows() const { return static_cast<double>(rows_.size()) * scale_; }

  // Average serialized bytes per row of the sample (measured on up to the
  // first 1024 rows; exact for narrow tables).
  double avg_row_bytes() const;

  // Nominal serialized footprint: nominal_rows * avg_row_bytes.
  Bytes nominal_bytes() const { return nominal_rows() * avg_row_bytes(); }

  // Actual sample footprint.
  Bytes sample_bytes() const {
    return static_cast<double>(rows_.size()) * avg_row_bytes();
  }

  // Renders the first `limit` rows for debugging.
  std::string DebugString(size_t limit = 10) const;

  // Sorts rows into canonical order (for order-insensitive comparisons).
  void SortRows();

  // True if both tables contain the same multiset of rows (ignoring order)
  // and the same schema types.
  static bool SameContent(const Table& a, const Table& b);

  // Exact equality: same schema types, same row order, and bit-identical
  // values (variant alternative + exact ==; no cross-numeric coercion).
  // This is the parallel data plane's determinism check.
  static bool Identical(const Table& a, const Table& b);

 private:
  Schema schema_;
  std::vector<Row> rows_;
  double scale_ = 1.0;
};

using TablePtr = std::shared_ptr<const Table>;

}  // namespace musketeer

#endif  // MUSKETEER_SRC_RELATIONAL_TABLE_H_
