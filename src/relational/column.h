// Typed column storage for the columnar data plane.
//
// A Column owns one contiguous typed vector (int64, double or string) chosen
// by its FieldType; cells are accessed either through the typed vectors (the
// batch-kernel fast path) or through Value-based accessors that reproduce the
// row-of-variants semantics (hashing, ordering, byte accounting) exactly, so
// the engines' shuffle partitioning and the determinism contract carry over
// from the row representation bit for bit.

#ifndef MUSKETEER_SRC_RELATIONAL_COLUMN_H_
#define MUSKETEER_SRC_RELATIONAL_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "src/relational/value.h"

namespace musketeer {

class Column {
 public:
  Column() = default;
  explicit Column(FieldType type) : type_(type) {}

  FieldType type() const { return type_; }

  size_t size() const {
    switch (type_) {
      case FieldType::kInt64:
        return ints_.size();
      case FieldType::kDouble:
        return doubles_.size();
      case FieldType::kString:
        return strings_.size();
    }
    return 0;
  }

  void Reserve(size_t n) {
    switch (type_) {
      case FieldType::kInt64:
        ints_.reserve(n);
        return;
      case FieldType::kDouble:
        doubles_.reserve(n);
        return;
      case FieldType::kString:
        strings_.reserve(n);
        return;
    }
  }

  void Resize(size_t n) {
    switch (type_) {
      case FieldType::kInt64:
        ints_.resize(n);
        return;
      case FieldType::kDouble:
        doubles_.resize(n);
        return;
      case FieldType::kString:
        strings_.resize(n);
        return;
    }
  }

  void Clear() {
    ints_.clear();
    doubles_.clear();
    strings_.clear();
  }

  // Typed vector access; the caller must match type() (checked by assert).
  const std::vector<int64_t>& ints() const {
    assert(type_ == FieldType::kInt64);
    return ints_;
  }
  const std::vector<double>& doubles() const {
    assert(type_ == FieldType::kDouble);
    return doubles_;
  }
  const std::vector<std::string>& strings() const {
    assert(type_ == FieldType::kString);
    return strings_;
  }
  std::vector<int64_t>* mutable_ints() {
    assert(type_ == FieldType::kInt64);
    return &ints_;
  }
  std::vector<double>* mutable_doubles() {
    assert(type_ == FieldType::kDouble);
    return &doubles_;
  }
  std::vector<std::string>* mutable_strings() {
    assert(type_ == FieldType::kString);
    return &strings_;
  }

  Value ValueAt(size_t i) const {
    switch (type_) {
      case FieldType::kInt64:
        return ints_[i];
      case FieldType::kDouble:
        return doubles_[i];
      case FieldType::kString:
        return strings_[i];
    }
    return static_cast<int64_t>(0);
  }

  // Appends `v`, coercing across the numeric types (a double cell written
  // into an INT column truncates, like AsInt64). Returns false — and appends
  // nothing — when a string meets a numeric column or vice versa.
  bool Append(const Value& v);

  // Appends src[i]; src must have the same type (no coercion, assert-checked).
  void AppendFrom(const Column& src, size_t i) {
    assert(src.type_ == type_);
    switch (type_) {
      case FieldType::kInt64:
        ints_.push_back(src.ints_[i]);
        return;
      case FieldType::kDouble:
        doubles_.push_back(src.doubles_[i]);
        return;
      case FieldType::kString:
        strings_.push_back(src.strings_[i]);
        return;
    }
  }

  // Appends src rows [begin, end); same type required.
  void AppendRange(const Column& src, size_t begin, size_t end);

  // Splices the whole of `src` (moving strings) onto the end; same type.
  void AppendColumn(Column&& src);
  void AppendColumnCopy(const Column& src);

  // New column containing this column's cells at `idx`, in `idx` order.
  Column Gather(const std::vector<uint32_t>& idx) const;

  // New column containing rows [begin, end).
  Column Slice(size_t begin, size_t end) const;

  // Hash of cell i, identical to HashValue on the equivalent Value (ints
  // hash through their double representation so 3 and 3.0 agree).
  size_t HashAt(size_t i) const {
    switch (type_) {
      case FieldType::kInt64:
        return std::hash<double>{}(static_cast<double>(ints_[i]));
      case FieldType::kDouble:
        return std::hash<double>{}(doubles_[i]);
      case FieldType::kString:
        return std::hash<std::string>{}(strings_[i]);
    }
    return 0;
  }

  // Batch form of HashAt: out[k] = HashAt(begin + k) for rows [begin, end).
  // Hoists the type dispatch out of the loop so the per-row body is a tight
  // contiguous pass (the kernels' shuffle/partition hashing hot loop).
  void HashRange(size_t begin, size_t end, size_t* out) const {
    switch (type_) {
      case FieldType::kInt64: {
        const int64_t* v = ints_.data();
        std::hash<double> h;
        for (size_t i = begin; i < end; ++i) {
          *out++ = h(static_cast<double>(v[i]));
        }
        return;
      }
      case FieldType::kDouble: {
        const double* v = doubles_.data();
        std::hash<double> h;
        for (size_t i = begin; i < end; ++i) *out++ = h(v[i]);
        return;
      }
      case FieldType::kString: {
        std::hash<std::string> h;
        for (size_t i = begin; i < end; ++i) *out++ = h(strings_[i]);
        return;
      }
    }
  }

  // CompareValues on cells (works across numeric column types; numerics
  // order before strings).
  int CompareAt(size_t i, const Column& other, size_t j) const;

  bool EqualAt(size_t i, const Column& other, size_t j) const {
    return CompareAt(i, other, j) == 0;
  }

  // ValueBytes of cell i (8.0 for numerics, length + separator for strings).
  double BytesAt(size_t i) const {
    if (type_ == FieldType::kString) {
      return static_cast<double>(strings_[i].size()) + 1.0;
    }
    return 8.0;
  }

  // Exact equality: same type, same length, bit-identical cells (no
  // cross-numeric coercion). The columnar leg of Table::Identical.
  bool IdenticalTo(const Column& other) const {
    return type_ == other.type_ && ints_ == other.ints_ &&
           doubles_ == other.doubles_ && strings_ == other.strings_;
  }

 private:
  FieldType type_ = FieldType::kInt64;
  // Exactly one of these is active, selected by type_. The two idle vectors
  // cost three pointers each; keeping them as plain members avoids a variant
  // dispatch on every batch-kernel access.
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_RELATIONAL_COLUMN_H_
