// Relational operator kernels.
//
// These are the semantics every simulated engine executes; the engines differ
// only in *when* they materialize intermediates and what simulated time they
// charge. Keeping one kernel guarantees all back-ends produce matching
// results (identical up to floating-point summation order when an engine's
// substrate reorders double addition), which the integration tests verify
// against a reference run.
//
// Scale propagation: each kernel sets the output's nominal-size scale from
// its inputs. Samples produced by src/workloads/ are constructed so that this
// propagation stays consistent (e.g., a downsampled graph keeps vertex and
// edge samples aligned so JOIN(vertices, edges) scales like the edges).

#ifndef MUSKETEER_SRC_RELATIONAL_OPS_H_
#define MUSKETEER_SRC_RELATIONAL_OPS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/relational/table.h"

namespace musketeer {

using RowPredicate = std::function<bool(const Row&)>;
using RowProjector = std::function<Value(const Row&)>;

// Batch expression evaluator: computes one output column for rows
// [begin, end) of a table in one call (see Expr::CompileBatch). The batch
// kernels evaluate expressions column-at-a-time through these instead of a
// RowProjector per cell.
using BatchEval = std::function<Column(const Table&, size_t begin, size_t end)>;

// Batch predicate evaluator in selection-bitmap form: writes 1/0 into
// mask[k] for row begin+k (see Expr::CompileMask). The vectorized kernels
// consume byte masks instead of materialized 0/1 columns, and compact them
// into index lists only once per morsel.
using MaskEval =
    std::function<void(const Table&, size_t begin, size_t end, uint8_t* mask)>;

enum class AggFn { kSum, kCount, kMin, kMax, kAvg };

const char* AggFnName(AggFn fn);

// True for aggregations that can be combined associatively (enables
// pre-aggregation / combiners in distributed engines). AVG is handled as an
// associative (sum, count) pair by engines that support combiners.
bool AggFnIsAssociative(AggFn fn);

struct AggSpec {
  AggFn fn;
  int column;               // input column aggregated (ignored for COUNT)
  std::string output_name;  // name of the produced column
};

// SELECT: rows matching `pred` (row-at-a-time compatibility path).
Table SelectRows(const Table& in, const RowPredicate& pred);

// SELECT over a batch-compiled predicate column: a row is kept when its mask
// cell is truthy (non-zero numeric; strings are false).
Table SelectRowsBatch(const Table& in, const BatchEval& pred);

// SELECT over byte-mask predicates: evaluates every filter morsel-by-morsel,
// ANDs the masks, and gathers the surviving rows. With multiple filters this
// is the fused form of a select chain — the intermediate tables are never
// materialized. Bit-identical to applying SelectRowsBatch per filter in
// order (predicates are pure and total, so evaluation on filtered-out rows
// cannot change the kept set).
Table SelectRowsMask(const Table& in, const std::vector<MaskEval>& filters);

// One fused select→transform(→aggregate) stage (see DESIGN.md "Vectorized
// columnar kernels"). `gather_cols` lists the input columns the transform
// reads; each morsel's surviving rows are gathered into a narrow
// morsel-resident scratch table with `scratch_schema`, and `exprs` (compiled
// against scratch_schema) produce `out_schema`. Empty `exprs` means the
// transform is the identity / a projection: the scratch block IS the output
// block (out_schema == scratch_schema).
struct FusedTransform {
  std::vector<int> gather_cols;
  Schema scratch_schema;
  Schema out_schema;
  std::vector<BatchEval> exprs;
};

// select* → map/project in one parallel pass: per input morsel, AND the
// filter masks, compact to indices, gather the narrow scratch, evaluate the
// transform, emit the block. Bit-identical to SelectRowsBatch-per-filter
// followed by MapRowsBatch/ProjectColumns (same rows, same per-row values,
// same order).
Table FusedSelectTransform(const Table& in,
                           const std::vector<MaskEval>& filters,
                           const FusedTransform& t);

// select* → map/project → group-by aggregate without materializing either
// intermediate. Pass A computes the selection bitmap + per-chunk prefix sums
// (the index exchange); pass B re-chunks the *filtered* row list at
// kMorselRows and accumulates one GroupByAgg partial per filtered chunk —
// exactly the chunk boundaries GroupByAgg would see on the materialized
// intermediate, so the partial merge tree and every floating-point bit of
// the output are unchanged.
StatusOr<Table> FusedSelectTransformAgg(const Table& in,
                                        const std::vector<MaskEval>& filters,
                                        const FusedTransform& t,
                                        const std::vector<int>& group_columns,
                                        const std::vector<AggSpec>& aggs);

// PROJECT: keep `columns` (by index) in order.
StatusOr<Table> ProjectColumns(const Table& in, const std::vector<int>& columns);

// Generalized column mapping: output column i = projectors[i](row), with the
// given output schema. Used for arithmetic ops (SUM/SUB/MUL/DIV on columns).
Table MapRows(const Table& in, const Schema& out_schema,
              const std::vector<RowProjector>& projectors);

// Batch MAP: output column i = exprs[i] evaluated column-at-a-time. Each
// expression's output column type must match out_schema (callers insert a
// cast, see Expr::CompileBatch users in src/ir/eval.cc).
Table MapRowsBatch(const Table& in, const Schema& out_schema,
                   const std::vector<BatchEval>& exprs);

// JOIN: equi-join on left.columns[lkey] == right.columns[rkey].
// Output layout matches the paper's generated code: (key, left-rest, right-rest).
StatusOr<Table> HashJoin(const Table& left, const Table& right, int lkey, int rkey);

// CROSS JOIN: all pairs; output = (left cols, right cols).
Table CrossJoin(const Table& left, const Table& right);

// Bag UNION of two relation with compatible arity.
StatusOr<Table> UnionAll(const Table& a, const Table& b);

// Set INTERSECT / DIFFERENCE (distinct semantics, like the paper's operators).
StatusOr<Table> Intersect(const Table& a, const Table& b);
StatusOr<Table> Difference(const Table& a, const Table& b);

// DISTINCT rows.
Table Distinct(const Table& in);

// GROUP BY `group_columns`, computing `aggs`. With empty group_columns this
// is a full-relation aggregate producing one row.
StatusOr<Table> GroupByAgg(const Table& in, const std::vector<int>& group_columns,
                           const std::vector<AggSpec>& aggs);

// Global MIN/MAX over a column preserving the full row (extreme row). Ties
// resolve to the first row in canonical sort order, making results
// deterministic.
StatusOr<Table> ExtremeRow(const Table& in, int column, bool take_max);

// Sorts by the given columns ascending (stable).
Table SortBy(const Table& in, const std::vector<int>& columns);

// TOP-N rows by column (descending); used by recommendation workloads.
Table TopNBy(const Table& in, int column, size_t n);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_RELATIONAL_OPS_H_
