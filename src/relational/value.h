// Typed cell values for Musketeer's relational kernel.
//
// The kernel supports the three column types the paper's workloads need:
// 64-bit integers (ids, counts), doubles (ranks, prices) and strings (names,
// log tokens). Values order and hash across the numeric types coherently so
// joins/group-bys behave even when front-ends mix INT and DOUBLE columns.

#ifndef MUSKETEER_SRC_RELATIONAL_VALUE_H_
#define MUSKETEER_SRC_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace musketeer {

enum class FieldType { kInt64, kDouble, kString };

const char* FieldTypeName(FieldType type);

using Value = std::variant<int64_t, double, std::string>;

inline FieldType ValueType(const Value& v) {
  switch (v.index()) {
    case 0:
      return FieldType::kInt64;
    case 1:
      return FieldType::kDouble;
    default:
      return FieldType::kString;
  }
}

// Numeric view of a value. Strings have no numeric view: they convert to an
// explicit sentinel (quiet NaN / INT64_MIN) so an accidental coercion in a
// kernel surfaces in the output instead of silently becoming 0. Callers that
// can legitimately meet a string use the Try variants or IsTruthy.
double AsDouble(const Value& v);
int64_t AsInt64(const Value& v);

// Checked numeric views: nullopt for strings (these are views, not parses).
std::optional<double> TryAsDouble(const Value& v);
std::optional<int64_t> TryAsInt64(const Value& v);

// Boolean view used by AND/OR and predicates: non-zero numeric is true,
// strings are always false (matching the historical row-plane behavior where
// strings coerced to 0).
bool IsTruthy(const Value& v);

// Renders the value the way the CSV writer does.
std::string ValueToString(const Value& v);

// Total order across values: numerics compare numerically (int vs double
// compare by magnitude), strings compare lexicographically, and numerics
// order before strings.
int CompareValues(const Value& a, const Value& b);

inline bool ValuesEqual(const Value& a, const Value& b) {
  return CompareValues(a, b) == 0;
}

// Hash consistent with ValuesEqual: ints and integral doubles collide.
size_t HashValue(const Value& v);

using Row = std::vector<Value>;

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : row) {
      h ^= HashValue(v) + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) {
      return false;
    }
    for (size_t i = 0; i < a.size(); ++i) {
      if (!ValuesEqual(a[i], b[i])) {
        return false;
      }
    }
    return true;
  }
};

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
      int c = CompareValues(a[i], b[i]);
      if (c != 0) {
        return c < 0;
      }
    }
    return a.size() < b.size();
  }
};

// Approximate on-disk footprint of one value, used for nominal-size
// accounting (ints/doubles as 8-byte fields, strings as length + separator).
double ValueBytes(const Value& v);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_RELATIONAL_VALUE_H_
