// Flat open-addressing hash primitives for the vectorized kernels.
//
// The batch kernels key their hash tables on a canonical 64-bit
// representation of the typed cell (int64 bits, or the bit pattern of the
// double view with -0.0 normalized) instead of heap-node-based
// std::unordered_map buckets: one contiguous slot array, multiplicative
// mixing, linear probing. Lookups touch one cache line in the common case
// and the hash loop over a column is branch-light, so the compiler can keep
// the probe pipeline full — this is where the join build/probe and the
// single-int64 group-by fast path spend their time.
//
// These tables are kernel-internal: they never influence *which* partition
// or shuffle bucket a row lands in (that is Column::HashAt's job, and its
// values are frozen by the engine-shuffle determinism contract). They only
// accelerate within-partition key → slot resolution, so the emitted row
// order — and therefore every output bit — is unchanged.

#ifndef MUSKETEER_SRC_RELATIONAL_FLAT_HASH_H_
#define MUSKETEER_SRC_RELATIONAL_FLAT_HASH_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

namespace musketeer {

// Finalizer-style 64-bit mixer (splitmix64's): cheap, no branches, good
// avalanche — quality only affects probe lengths, never output bits.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Canonical 64-bit key of a double: the bit pattern with -0.0 folded onto
// +0.0 (they compare equal, so they must collide). NaN has no canonical key
// — NaN never equals anything, so callers must route NaN cells around the
// table (see KeyIsNaN); giving NaN a bit-pattern key would make NaN probe
// rows match NaN build rows, which the Value semantics forbid.
inline uint64_t CanonicalDoubleKey(double v) {
  if (v == 0.0) {
    v = 0.0;  // collapse -0.0
  }
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline bool KeyIsNaN(double v) { return v != v; }

// Open-addressing map from uint64 keys to uint32 values (slot ids, group
// ids). Linear probing, power-of-two capacity, grows at 50% load. Values are
// dense small integers in every kernel use, so kEmpty doubles as the
// absent-sentinel.
class FlatMap64 {
 public:
  static constexpr uint32_t kEmpty = std::numeric_limits<uint32_t>::max();

  FlatMap64() = default;

  // Pre-sizes for about `n` distinct keys (avoids rehash during build).
  void Reserve(size_t n) {
    size_t want = 16;
    while (want < 2 * n + 1) want <<= 1;
    if (want > capacity_) Rehash(want);
  }

  size_t size() const { return size_; }

  // Returns the value slot for `key`, inserting `fresh` first if the key is
  // new; *inserted reports which happened. `fresh` must not be kEmpty.
  uint32_t* FindOrInsert(uint64_t key, uint32_t fresh, bool* inserted) {
    if (capacity_ == 0 || 2 * (size_ + 1) > capacity_) {
      Rehash(capacity_ == 0 ? 16 : capacity_ * 2);
    }
    const size_t mask = capacity_ - 1;
    size_t pos = MixHash64(key) & mask;
    while (true) {
      if (vals_[pos] == kEmpty) {
        keys_[pos] = key;
        vals_[pos] = fresh;
        ++size_;
        *inserted = true;
        return &vals_[pos];
      }
      if (keys_[pos] == key) {
        *inserted = false;
        return &vals_[pos];
      }
      pos = (pos + 1) & mask;
    }
  }

  // Returns the value for `key`, or kEmpty when absent.
  uint32_t Find(uint64_t key) const {
    if (capacity_ == 0) return kEmpty;
    const size_t mask = capacity_ - 1;
    size_t pos = MixHash64(key) & mask;
    while (true) {
      if (vals_[pos] == kEmpty) return kEmpty;
      if (keys_[pos] == key) return vals_[pos];
      pos = (pos + 1) & mask;
    }
  }

 private:
  void Rehash(size_t new_cap) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_vals = std::move(vals_);
    keys_.assign(new_cap, 0);
    vals_.assign(new_cap, kEmpty);
    const size_t old_cap = capacity_;
    capacity_ = new_cap;
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_cap; ++i) {
      if (old_vals[i] == kEmpty) continue;
      size_t pos = MixHash64(old_keys[i]) & mask;
      while (vals_[pos] != kEmpty) pos = (pos + 1) & mask;
      keys_[pos] = old_keys[i];
      vals_[pos] = old_vals[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<uint32_t> vals_;  // kEmpty marks a free slot
  size_t capacity_ = 0;
  size_t size_ = 0;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_RELATIONAL_FLAT_HASH_H_
