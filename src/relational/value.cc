#include "src/relational/value.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace musketeer {

const char* FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kInt64:
      return "INT";
    case FieldType::kDouble:
      return "DOUBLE";
    case FieldType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

double AsDouble(const Value& v) {
  switch (v.index()) {
    case 0:
      return static_cast<double>(std::get<int64_t>(v));
    case 1:
      return std::get<double>(v);
    default:
      // Sentinel, not 0: a string reaching a numeric kernel poisons the
      // result instead of silently contributing nothing.
      return std::numeric_limits<double>::quiet_NaN();
  }
}

int64_t AsInt64(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::get<int64_t>(v);
    case 1:
      return static_cast<int64_t>(std::get<double>(v));
    default:
      return std::numeric_limits<int64_t>::min();  // sentinel, see AsDouble
  }
}

std::optional<double> TryAsDouble(const Value& v) {
  if (v.index() == 2) {
    return std::nullopt;
  }
  return AsDouble(v);
}

std::optional<int64_t> TryAsInt64(const Value& v) {
  if (v.index() == 2) {
    return std::nullopt;
  }
  return AsInt64(v);
}

bool IsTruthy(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::get<int64_t>(v) != 0;
    case 1:
      return std::get<double>(v) != 0;
    default:
      return false;
  }
}

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(v));
      return buf;
    }
    default:
      return std::get<std::string>(v);
  }
}

int CompareValues(const Value& a, const Value& b) {
  bool a_str = a.index() == 2;
  bool b_str = b.index() == 2;
  if (a_str != b_str) {
    return a_str ? 1 : -1;  // numerics order before strings
  }
  if (a_str) {
    const std::string& sa = std::get<std::string>(a);
    const std::string& sb = std::get<std::string>(b);
    if (sa < sb) {
      return -1;
    }
    return sa == sb ? 0 : 1;
  }
  // Both numeric. Compare exactly when both are ints to avoid precision loss.
  if (a.index() == 0 && b.index() == 0) {
    int64_t ia = std::get<int64_t>(a);
    int64_t ib = std::get<int64_t>(b);
    if (ia < ib) {
      return -1;
    }
    return ia == ib ? 0 : 1;
  }
  double da = AsDouble(a);
  double db = AsDouble(b);
  if (da < db) {
    return -1;
  }
  return da == db ? 0 : 1;
}

size_t HashValue(const Value& v) {
  switch (v.index()) {
    case 0: {
      // Hash via double representation when integral so that 3 and 3.0 agree.
      int64_t i = std::get<int64_t>(v);
      return std::hash<double>{}(static_cast<double>(i));
    }
    case 1: {
      double d = std::get<double>(v);
      return std::hash<double>{}(d);
    }
    default:
      return std::hash<std::string>{}(std::get<std::string>(v));
  }
}

double ValueBytes(const Value& v) {
  switch (v.index()) {
    case 0:
    case 1:
      return 8.0;
    default:
      return static_cast<double>(std::get<std::string>(v).size()) + 1.0;
  }
}

}  // namespace musketeer
