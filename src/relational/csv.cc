#include "src/relational/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/base/strings.h"

namespace musketeer {

StatusOr<Table> ParseCsv(const std::string& text, const Schema& schema,
                         char delimiter) {
  // Parse straight into typed columns — no row-of-variants intermediate.
  std::vector<Column> cols;
  cols.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    cols.emplace_back(f.type);
  }
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line;
    if (end == std::string::npos) {
      line = std::string_view(text).substr(start);
      start = text.size() + 1;
    } else {
      line = std::string_view(text).substr(start, end - start);
      start = end + 1;
    }
    ++line_no;
    line = StripWhitespace(line);
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> fields = StrSplit(line, delimiter);
    if (fields.size() != schema.num_fields()) {
      return InvalidArgumentError("line " + std::to_string(line_no) + ": expected " +
                                  std::to_string(schema.num_fields()) +
                                  " fields, got " + std::to_string(fields.size()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      switch (schema.field(c).type) {
        case FieldType::kInt64: {
          auto v = ParseInt64(fields[c]);
          if (!v.has_value()) {
            return InvalidArgumentError("line " + std::to_string(line_no) +
                                        ": bad integer '" + fields[c] + "'");
          }
          cols[c].mutable_ints()->push_back(*v);
          break;
        }
        case FieldType::kDouble: {
          auto v = ParseDouble(fields[c]);
          if (!v.has_value()) {
            return InvalidArgumentError("line " + std::to_string(line_no) +
                                        ": bad double '" + fields[c] + "'");
          }
          cols[c].mutable_doubles()->push_back(*v);
          break;
        }
        case FieldType::kString:
          cols[c].mutable_strings()->push_back(std::move(fields[c]));
          break;
      }
    }
  }
  return Table::FromColumns(schema, std::move(cols));
}

std::string WriteCsv(const Table& table, char delimiter,
                     bool round_trip_doubles) {
  std::ostringstream os;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t c = 0; c < table.num_fields(); ++c) {
      if (c > 0) {
        os << delimiter;
      }
      const Value v = table.ValueAt(i, c);
      if (round_trip_doubles && v.index() == 1) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(v));
        os << buf;
      } else {
        os << ValueToString(v);
      }
    }
    os << '\n';
  }
  return os.str();
}

StatusOr<Table> LoadCsvFile(const std::string& path, const Schema& schema,
                            char delimiter) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), schema, delimiter);
}

Status SaveCsvFile(const Table& table, const std::string& path, char delimiter) {
  std::ofstream out(path);
  if (!out) {
    return InternalError("cannot write " + path);
  }
  out << WriteCsv(table, delimiter);
  return OkStatus();
}

}  // namespace musketeer
