#include "src/relational/table.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace musketeer {

Table Table::FromColumns(Schema schema, std::vector<Column> cols) {
  Table out;
  out.schema_ = std::move(schema);
  out.cols_ = std::move(cols);
  assert(out.cols_.size() == out.schema_.num_fields());
  out.num_rows_ = out.cols_.empty() ? 0 : out.cols_[0].size();
  for (size_t c = 0; c < out.cols_.size(); ++c) {
    assert(out.cols_[c].type() == out.schema_.field(c).type);
    assert(out.cols_[c].size() == out.num_rows_);
  }
  return out;
}

Row Table::MaterializeRow(size_t row) const {
  Row r;
  r.reserve(cols_.size());
  for (const Column& c : cols_) {
    r.push_back(c.ValueAt(row));
  }
  return r;
}

std::vector<Row> Table::MaterializeRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    rows.push_back(MaterializeRow(i));
  }
  return rows;
}

void Table::AddRow(const Row& row) {
  assert(row.size() == cols_.size());
  for (size_t c = 0; c < cols_.size() && c < row.size(); ++c) {
    if (!cols_[c].Append(row[c])) {
      // String/numeric mismatch against the schema: a programming error.
      // Keep columns aligned by loading a default cell.
      assert(false && "cell type does not match schema");
      cols_[c].Resize(cols_[c].size() + 1);
    }
  }
  ++num_rows_;
  InvalidateAvgRowBytes();
}

void Table::AppendTable(Table&& other) {
  if (other.cols_.empty() && other.schema_.num_fields() == 0 &&
      other.num_rows_ == 0) {
    return;  // appending a default-constructed table is a no-op
  }
  if (cols_.empty() && schema_.num_fields() == 0 && num_rows_ == 0) {
    // Adopt the appended table's schema and data; keep this table's scale
    // (callers account for nominal size separately).
    double s = scale_;
    *this = std::move(other);
    scale_ = s;
    return;
  }
  assert(other.cols_.size() == cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].AppendColumn(std::move(other.cols_[c]));
  }
  num_rows_ += other.num_rows_;
  other.num_rows_ = 0;
  other.InvalidateAvgRowBytes();
  InvalidateAvgRowBytes();
}

void Table::AppendTableCopy(const Table& other) {
  if (other.cols_.empty() && other.schema_.num_fields() == 0 &&
      other.num_rows_ == 0) {
    return;
  }
  if (cols_.empty() && schema_.num_fields() == 0 && num_rows_ == 0) {
    double s = scale_;
    *this = other;
    scale_ = s;
    return;
  }
  assert(other.cols_.size() == cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].AppendColumnCopy(other.cols_[c]);
  }
  num_rows_ += other.num_rows_;
  InvalidateAvgRowBytes();
}

Table Table::Slice(size_t begin, size_t end) const {
  Table out(schema_);
  for (size_t c = 0; c < cols_.size(); ++c) {
    out.cols_[c] = cols_[c].Slice(begin, end);
  }
  out.num_rows_ = end - begin;
  out.scale_ = scale_;
  return out;
}

Table Table::Gather(const std::vector<uint32_t>& idx) const {
  Table out(schema_);
  for (size_t c = 0; c < cols_.size(); ++c) {
    out.cols_[c] = cols_[c].Gather(idx);
  }
  out.num_rows_ = idx.size();
  out.scale_ = scale_;
  return out;
}

std::vector<Column> Table::ReleaseColumns() {
  std::vector<Column> out = std::move(cols_);
  cols_.clear();
  cols_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    cols_.emplace_back(f.type);
  }
  num_rows_ = 0;
  InvalidateAvgRowBytes();
  return out;
}

Status Table::Validate() const {
  if (cols_.size() != schema_.num_fields()) {
    return InternalError("table has " + std::to_string(cols_.size()) +
                         " columns, schema has " +
                         std::to_string(schema_.num_fields()));
  }
  for (size_t c = 0; c < cols_.size(); ++c) {
    if (cols_[c].type() != schema_.field(c).type) {
      return InternalError("column " + std::to_string(c) + " (" +
                           schema_.field(c).name + ") has type " +
                           FieldTypeName(cols_[c].type()) + ", schema says " +
                           FieldTypeName(schema_.field(c).type));
    }
    if (cols_[c].size() != num_rows_) {
      return InternalError("column " + std::to_string(c) + " has " +
                           std::to_string(cols_[c].size()) + " cells, table has " +
                           std::to_string(num_rows_) + " rows");
    }
  }
  return OkStatus();
}

double Table::avg_row_bytes() const {
  double cached = avg_row_bytes_cache_.load(std::memory_order_relaxed);
  if (cached >= 0) {
    return cached;
  }
  double result;
  if (num_rows_ == 0) {
    // Fall back to schema-based width so empty relations still cost something
    // reasonable in the simulator.
    double w = 0;
    for (const Field& f : schema_.fields()) {
      w += (f.type == FieldType::kString) ? 16.0 : 8.0;
    }
    result = w > 0 ? w : 8.0;
  } else {
    size_t sample = std::min<size_t>(num_rows_, 1024);
    double total = 0;
    for (const Column& c : cols_) {
      if (c.type() == FieldType::kString) {
        const std::vector<std::string>& s = c.strings();
        for (size_t i = 0; i < sample; ++i) {
          total += static_cast<double>(s[i].size()) + 1.0;
        }
      } else {
        total += 8.0 * static_cast<double>(sample);
      }
    }
    result = total / static_cast<double>(sample);
  }
  avg_row_bytes_cache_.store(result, std::memory_order_relaxed);
  return result;
}

std::string Table::DebugString(size_t limit) const {
  std::ostringstream os;
  os << "[" << schema_.ToString() << "] " << num_rows_ << " rows (scale "
     << scale_ << ")\n";
  for (size_t i = 0; i < num_rows_ && i < limit; ++i) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      if (c > 0) {
        os << " | ";
      }
      os << ValueToString(cols_[c].ValueAt(i));
    }
    os << "\n";
  }
  if (num_rows_ > limit) {
    os << "... (" << num_rows_ - limit << " more)\n";
  }
  return os.str();
}

int Table::CompareRowsAt(const Table& a, size_t i, const Table& b, size_t j) {
  size_t n = std::min(a.num_fields(), b.num_fields());
  for (size_t c = 0; c < n; ++c) {
    int cmp = a.col(c).CompareAt(i, b.col(c), j);
    if (cmp != 0) {
      return cmp;
    }
  }
  if (a.num_fields() == b.num_fields()) {
    return 0;
  }
  return a.num_fields() < b.num_fields() ? -1 : 1;
}

namespace {

// Stable-sort permutation of `t`'s rows in canonical (RowLess) order.
std::vector<uint32_t> SortedPermutation(const Table& t) {
  std::vector<uint32_t> perm(t.num_rows());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
    return Table::CompareRowsAt(t, x, t, y) < 0;
  });
  return perm;
}

// Cell equality with a floating-point tolerance: distributed engines sum
// doubles in partition order, which differs from the reference interpreter's
// input order by last-ULP rounding. Integers and strings compare exactly;
// a string never equals a numeric (the old row path coerced strings to 0.0
// here, silently matching 0-valued doubles).
bool CellsCloseEnough(const Column& a, size_t i, const Column& b, size_t j) {
  bool a_str = a.type() == FieldType::kString;
  bool b_str = b.type() == FieldType::kString;
  if (a_str || b_str) {
    return a_str && b_str && a.strings()[i] == b.strings()[j];
  }
  if (a.type() == FieldType::kDouble || b.type() == FieldType::kDouble) {
    double x = a.type() == FieldType::kInt64
                   ? static_cast<double>(a.ints()[i])
                   : a.doubles()[i];
    double y = b.type() == FieldType::kInt64
                   ? static_cast<double>(b.ints()[j])
                   : b.doubles()[j];
    double tolerance = 1e-9 * std::max({std::abs(x), std::abs(y), 1.0});
    return std::abs(x - y) <= tolerance;
  }
  return a.ints()[i] == b.ints()[j];
}

}  // namespace

void Table::SortRows() {
  std::vector<uint32_t> perm = SortedPermutation(*this);
  Table sorted = Gather(perm);
  cols_ = std::move(sorted.cols_);
}

bool Table::SameContent(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) {
    return false;
  }
  if (a.schema().num_fields() != b.schema().num_fields()) {
    return false;
  }
  std::vector<uint32_t> pa = SortedPermutation(a);
  std::vector<uint32_t> pb = SortedPermutation(b);
  for (size_t i = 0; i < pa.size(); ++i) {
    for (size_t c = 0; c < a.num_fields(); ++c) {
      if (!CellsCloseEnough(a.col(c), pa[i], b.col(c), pb[i])) {
        return false;
      }
    }
  }
  return true;
}

bool Table::Identical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() ||
      a.schema().num_fields() != b.schema().num_fields()) {
    return false;
  }
  for (size_t c = 0; c < a.schema().num_fields(); ++c) {
    if (a.schema().field(c).type != b.schema().field(c).type) {
      return false;
    }
  }
  for (size_t c = 0; c < a.num_fields(); ++c) {
    // Typed vector ==: same length and bit-identical cells. No cross-numeric
    // coercion and no floating-point tolerance.
    if (!a.col(c).IdenticalTo(b.col(c))) {
      return false;
    }
  }
  return true;
}

}  // namespace musketeer
