#include "src/relational/table.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace musketeer {

Status Table::Validate() const {
  for (size_t r = 0; r < rows_.size(); ++r) {
    const Row& row = rows_[r];
    if (row.size() != schema_.num_fields()) {
      return InternalError("row " + std::to_string(r) + " has " +
                           std::to_string(row.size()) + " values, schema has " +
                           std::to_string(schema_.num_fields()));
    }
    for (size_t c = 0; c < row.size(); ++c) {
      if (ValueType(row[c]) != schema_.field(c).type) {
        return InternalError("row " + std::to_string(r) + " col " +
                             std::to_string(c) + " (" + schema_.field(c).name +
                             ") has type " + FieldTypeName(ValueType(row[c])) +
                             ", schema says " +
                             FieldTypeName(schema_.field(c).type));
      }
    }
  }
  return OkStatus();
}

double Table::avg_row_bytes() const {
  if (rows_.empty()) {
    // Fall back to schema-based width so empty relations still cost something
    // reasonable in the simulator.
    double w = 0;
    for (const Field& f : schema_.fields()) {
      w += (f.type == FieldType::kString) ? 16.0 : 8.0;
    }
    return w > 0 ? w : 8.0;
  }
  size_t sample = std::min<size_t>(rows_.size(), 1024);
  double total = 0;
  for (size_t i = 0; i < sample; ++i) {
    for (const Value& v : rows_[i]) {
      total += ValueBytes(v);
    }
  }
  return total / static_cast<double>(sample);
}

std::string Table::DebugString(size_t limit) const {
  std::ostringstream os;
  os << "[" << schema_.ToString() << "] " << rows_.size() << " rows (scale "
     << scale_ << ")\n";
  for (size_t i = 0; i < rows_.size() && i < limit; ++i) {
    for (size_t c = 0; c < rows_[i].size(); ++c) {
      if (c > 0) {
        os << " | ";
      }
      os << ValueToString(rows_[i][c]);
    }
    os << "\n";
  }
  if (rows_.size() > limit) {
    os << "... (" << rows_.size() - limit << " more)\n";
  }
  return os.str();
}

void Table::SortRows() { std::sort(rows_.begin(), rows_.end(), RowLess()); }

namespace {

// Value equality with a floating-point tolerance: distributed engines sum
// doubles in partition order, which differs from the reference interpreter's
// input order by last-ULP rounding. Integers and strings compare exactly.
bool ValuesCloseEnough(const Value& a, const Value& b) {
  if (a.index() == 1 || b.index() == 1) {
    double x = AsDouble(a);
    double y = AsDouble(b);
    double tolerance = 1e-9 * std::max({std::abs(x), std::abs(y), 1.0});
    return std::abs(x - y) <= tolerance;
  }
  return ValuesEqual(a, b);
}

}  // namespace

bool Table::SameContent(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) {
    return false;
  }
  if (a.schema().num_fields() != b.schema().num_fields()) {
    return false;
  }
  std::vector<Row> ra = a.rows();
  std::vector<Row> rb = b.rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].size() != rb[i].size()) {
      return false;
    }
    for (size_t c = 0; c < ra[i].size(); ++c) {
      if (!ValuesCloseEnough(ra[i][c], rb[i][c])) {
        return false;
      }
    }
  }
  return true;
}

bool Table::Identical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() ||
      a.schema().num_fields() != b.schema().num_fields()) {
    return false;
  }
  for (size_t c = 0; c < a.schema().num_fields(); ++c) {
    if (a.schema().field(c).type != b.schema().field(c).type) {
      return false;
    }
  }
  for (size_t i = 0; i < a.num_rows(); ++i) {
    // std::variant ==: same alternative, then exact value equality. No
    // cross-numeric coercion and no floating-point tolerance.
    if (a.rows()[i] != b.rows()[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace musketeer
