#include "src/relational/column.h"

#include <utility>

namespace musketeer {

bool Column::Append(const Value& v) {
  switch (type_) {
    case FieldType::kInt64:
      if (v.index() == 0) {
        ints_.push_back(std::get<int64_t>(v));
        return true;
      }
      if (v.index() == 1) {
        ints_.push_back(static_cast<int64_t>(std::get<double>(v)));
        return true;
      }
      return false;
    case FieldType::kDouble:
      if (v.index() == 0) {
        doubles_.push_back(static_cast<double>(std::get<int64_t>(v)));
        return true;
      }
      if (v.index() == 1) {
        doubles_.push_back(std::get<double>(v));
        return true;
      }
      return false;
    case FieldType::kString:
      if (v.index() == 2) {
        strings_.push_back(std::get<std::string>(v));
        return true;
      }
      return false;
  }
  return false;
}

void Column::AppendRange(const Column& src, size_t begin, size_t end) {
  assert(src.type_ == type_);
  switch (type_) {
    case FieldType::kInt64:
      ints_.insert(ints_.end(), src.ints_.begin() + begin,
                   src.ints_.begin() + end);
      return;
    case FieldType::kDouble:
      doubles_.insert(doubles_.end(), src.doubles_.begin() + begin,
                      src.doubles_.begin() + end);
      return;
    case FieldType::kString:
      strings_.insert(strings_.end(), src.strings_.begin() + begin,
                      src.strings_.begin() + end);
      return;
  }
}

void Column::AppendColumn(Column&& src) {
  assert(src.type_ == type_);
  switch (type_) {
    case FieldType::kInt64:
      if (ints_.empty()) {
        ints_ = std::move(src.ints_);
      } else {
        ints_.insert(ints_.end(), src.ints_.begin(), src.ints_.end());
      }
      break;
    case FieldType::kDouble:
      if (doubles_.empty()) {
        doubles_ = std::move(src.doubles_);
      } else {
        doubles_.insert(doubles_.end(), src.doubles_.begin(),
                        src.doubles_.end());
      }
      break;
    case FieldType::kString:
      if (strings_.empty()) {
        strings_ = std::move(src.strings_);
      } else {
        strings_.insert(strings_.end(),
                        std::make_move_iterator(src.strings_.begin()),
                        std::make_move_iterator(src.strings_.end()));
      }
      break;
  }
  src.Clear();
}

void Column::AppendColumnCopy(const Column& src) {
  AppendRange(src, 0, src.size());
}

Column Column::Gather(const std::vector<uint32_t>& idx) const {
  Column out(type_);
  switch (type_) {
    case FieldType::kInt64:
      out.ints_.reserve(idx.size());
      for (uint32_t i : idx) out.ints_.push_back(ints_[i]);
      break;
    case FieldType::kDouble:
      out.doubles_.reserve(idx.size());
      for (uint32_t i : idx) out.doubles_.push_back(doubles_[i]);
      break;
    case FieldType::kString:
      out.strings_.reserve(idx.size());
      for (uint32_t i : idx) out.strings_.push_back(strings_[i]);
      break;
  }
  return out;
}

Column Column::Slice(size_t begin, size_t end) const {
  Column out(type_);
  out.AppendRange(*this, begin, end);
  return out;
}

int Column::CompareAt(size_t i, const Column& other, size_t j) const {
  bool a_str = type_ == FieldType::kString;
  bool b_str = other.type_ == FieldType::kString;
  if (a_str != b_str) {
    return a_str ? 1 : -1;  // numerics order before strings
  }
  if (a_str) {
    const std::string& sa = strings_[i];
    const std::string& sb = other.strings_[j];
    if (sa < sb) {
      return -1;
    }
    return sa == sb ? 0 : 1;
  }
  if (type_ == FieldType::kInt64 && other.type_ == FieldType::kInt64) {
    int64_t ia = ints_[i];
    int64_t ib = other.ints_[j];
    if (ia < ib) {
      return -1;
    }
    return ia == ib ? 0 : 1;
  }
  double da = type_ == FieldType::kInt64 ? static_cast<double>(ints_[i])
                                         : doubles_[i];
  double db = other.type_ == FieldType::kInt64
                  ? static_cast<double>(other.ints_[j])
                  : other.doubles_[j];
  if (da < db) {
    return -1;
  }
  return da == db ? 0 : 1;
}

}  // namespace musketeer
