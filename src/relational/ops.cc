#include "src/relational/ops.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <limits>
#include <numeric>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "src/base/parallel.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/relational/flat_hash.h"

// Parallelization strategy (see DESIGN.md "Parallel data plane"): every
// kernel splits its input into fixed kMorselRows chunks, computes
// chunk-private partial results, and combines them in chunk order (or a
// fixed pairwise tree). Chunk layout and merge order never depend on the
// thread count, so output is bit-identical at any parallelism — including
// floating-point aggregation, whose summation tree is fixed by the chunking.
//
// Columnar strategy (see DESIGN.md "Columnar data plane"): kernels operate on
// the typed column vectors and exchange *row indices* between phases —
// select/join/sort/distinct compute an index list and Gather it into output
// columns, so variant dispatch and per-row vectors are off every hot path.
// Hash values (partitioning, group buckets) are computed with the exact
// row-of-variants formula (Column::HashAt == HashValue), so engine shuffles
// place the same rows in the same partitions as the row plane did.

namespace musketeer {

namespace {

// Fan-out of the partitioned hash-join build. Fixed (like kMorselRows) so
// the per-partition tables are identical at every thread count.
constexpr size_t kJoinPartitions = 64;

// Concatenates per-chunk index vectors in chunk order.
std::vector<uint32_t> ConcatIndices(
    const std::vector<std::vector<uint32_t>>& parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<uint32_t> out;
  out.reserve(total);
  for (const auto& p : parts) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

// Assembles per-chunk column blocks into one table (chunk order), with the
// given schema and scale.
Table ConcatChunkColumns(const Schema& schema,
                         std::vector<std::vector<Column>>&& parts,
                         double scale) {
  std::vector<Column> cols;
  cols.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    cols.emplace_back(f.type);
  }
  for (auto& block : parts) {
    for (size_t c = 0; c < cols.size(); ++c) {
      cols[c].AppendColumn(std::move(block[c]));
    }
  }
  Table out = Table::FromColumns(schema, std::move(cols));
  out.set_scale(scale);
  return out;
}

// Full-row equality across two arity-compatible tables (cross-numeric, like
// ValuesEqual).
bool RowEqualsAcross(const Table& a, size_t i, const Table& b, size_t j) {
  for (size_t c = 0; c < a.num_fields(); ++c) {
    if (!a.col(c).EqualAt(i, b.col(c), j)) {
      return false;
    }
  }
  return true;
}

// Stable parallel merge sort over a row permutation: per-morsel stable_sort,
// then rounds of stable std::merge over adjacent runs (ties take the left
// run first). The result is the stable-sort permutation — unique for a given
// comparator — identical to std::stable_sort of the whole range and to the
// row plane's in-place row sort.
template <typename Less>
std::vector<uint32_t> ParallelStableSortPerm(size_t n, const Less& less) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  const size_t chunks = NumChunks(n, kMorselRows);
  if (chunks <= 1) {
    std::stable_sort(perm.begin(), perm.end(), less);
    return perm;
  }
  ParallelChunks(n, kMorselRows, [&](size_t, size_t begin, size_t end) {
    std::stable_sort(perm.begin() + begin, perm.begin() + end, less);
  });

  std::vector<size_t> bounds;
  bounds.reserve(chunks + 1);
  for (size_t c = 0; c < chunks; ++c) bounds.push_back(c * kMorselRows);
  bounds.push_back(n);

  std::vector<uint32_t> tmp(n);
  std::vector<uint32_t>* src = &perm;
  std::vector<uint32_t>* dst = &tmp;
  while (bounds.size() > 2) {
    const size_t runs = bounds.size() - 1;
    const size_t pairs = runs / 2;
    ParallelChunks(pairs, 1, [&](size_t p, size_t, size_t) {
      const size_t lo = bounds[2 * p];
      const size_t mid = bounds[2 * p + 1];
      const size_t hi = bounds[2 * p + 2];
      std::merge(src->begin() + lo, src->begin() + mid, src->begin() + mid,
                 src->begin() + hi, dst->begin() + lo, less);
    });
    if (runs % 2 == 1) {  // odd run out: carry over unmerged
      std::copy(src->begin() + bounds[runs - 1], src->begin() + bounds[runs],
                dst->begin() + bounds[runs - 1]);
    }
    std::vector<size_t> next;
    next.reserve(pairs + 2);
    for (size_t i = 0; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if (bounds.size() % 2 == 0) next.push_back(n);
    bounds = std::move(next);
    std::swap(src, dst);
  }
  if (src != &perm) perm = std::move(tmp);
  return perm;
}

// Evaluates `filters` over rows [begin, end) into `mask` (1 = keep), ANDing
// when there is more than one. `tmp` is caller-provided scratch so morsel
// loops reuse one allocation. An empty filter list keeps every row.
void EvalFilterMasks(const std::vector<MaskEval>& filters, const Table& t,
                     size_t begin, size_t end, uint8_t* mask,
                     std::vector<uint8_t>* tmp) {
  const size_t n = end - begin;
  if (filters.empty()) {
    std::fill(mask, mask + n, static_cast<uint8_t>(1));
    return;
  }
  filters[0](t, begin, end, mask);
  if (filters.size() == 1) return;
  tmp->resize(n);
  for (size_t f = 1; f < filters.size(); ++f) {
    filters[f](t, begin, end, tmp->data());
    const uint8_t* m2 = tmp->data();
    for (size_t k = 0; k < n; ++k) mask[k] &= m2[k];
  }
}

// Compacts a 0/1 byte mask into absolute row indices (base + k for set
// bytes). The fill loop is branch-free — the write cursor advances by the
// mask byte — so it auto-vectorizes; the over-allocation is trimmed after.
void CompactMask(const uint8_t* mask, size_t n, size_t base,
                 std::vector<uint32_t>* out) {
  out->resize(n);
  uint32_t* o = out->data();
  size_t w = 0;
  for (size_t k = 0; k < n; ++k) {
    o[w] = static_cast<uint32_t>(base + k);
    w += mask[k];
  }
  out->resize(w);
}

}  // namespace

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "SUM";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAvg:
      return "AVG";
  }
  return "UNKNOWN";
}

bool AggFnIsAssociative(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
    case AggFn::kCount:
    case AggFn::kMin:
    case AggFn::kMax:
    case AggFn::kAvg:  // decomposes into (sum, count)
      return true;
  }
  return false;
}

Table SelectRows(const Table& in, const RowPredicate& pred) {
  auto parts = ParallelMapChunks<std::vector<uint32_t>>(
      in.num_rows(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        std::vector<uint32_t> kept;
        for (size_t i = begin; i < end; ++i) {
          if (pred(in.MaterializeRow(i))) {
            kept.push_back(static_cast<uint32_t>(i));
          }
        }
        return kept;
      });
  return in.Gather(ConcatIndices(parts));
}

Table SelectRowsBatch(const Table& in, const BatchEval& pred) {
  auto parts = ParallelMapChunks<std::vector<uint32_t>>(
      in.num_rows(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        Column mask = pred(in, begin, end);
        std::vector<uint32_t> kept;
        switch (mask.type()) {
          case FieldType::kInt64: {
            const std::vector<int64_t>& m = mask.ints();
            for (size_t k = 0; k < m.size(); ++k) {
              if (m[k] != 0) kept.push_back(static_cast<uint32_t>(begin + k));
            }
            break;
          }
          case FieldType::kDouble: {
            const std::vector<double>& m = mask.doubles();
            for (size_t k = 0; k < m.size(); ++k) {
              if (m[k] != 0) kept.push_back(static_cast<uint32_t>(begin + k));
            }
            break;
          }
          case FieldType::kString:
            break;  // strings are falsy
        }
        return kept;
      });
  return in.Gather(ConcatIndices(parts));
}

Table SelectRowsMask(const Table& in, const std::vector<MaskEval>& filters) {
  auto parts = ParallelMapChunks<std::vector<uint32_t>>(
      in.num_rows(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        std::vector<uint8_t> mask(end - begin);
        std::vector<uint8_t> tmp;
        EvalFilterMasks(filters, in, begin, end, mask.data(), &tmp);
        std::vector<uint32_t> kept;
        CompactMask(mask.data(), end - begin, begin, &kept);
        return kept;
      });
  return in.Gather(ConcatIndices(parts));
}

StatusOr<Table> ProjectColumns(const Table& in, const std::vector<int>& columns) {
  Schema out_schema;
  for (int c : columns) {
    if (c < 0 || c >= static_cast<int>(in.schema().num_fields())) {
      return InvalidArgumentError("PROJECT column index " + std::to_string(c) +
                                  " out of range for schema " +
                                  in.schema().ToString());
    }
    out_schema.AddField(in.schema().field(c));
  }
  // Whole-column copies; no per-row work at all.
  std::vector<Column> cols;
  cols.reserve(columns.size());
  for (int c : columns) {
    cols.push_back(in.col(c));
  }
  Table out = Table::FromColumns(std::move(out_schema), std::move(cols));
  out.set_scale(in.scale());
  return out;
}

Table MapRows(const Table& in, const Schema& out_schema,
              const std::vector<RowProjector>& projectors) {
  auto parts = ParallelMapChunks<std::vector<Column>>(
      in.num_rows(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        std::vector<Column> block;
        block.reserve(projectors.size());
        for (const Field& f : out_schema.fields()) {
          block.emplace_back(f.type);
          block.back().Reserve(end - begin);
        }
        for (size_t i = begin; i < end; ++i) {
          Row row = in.MaterializeRow(i);
          for (size_t j = 0; j < projectors.size(); ++j) {
            if (!block[j].Append(projectors[j](row))) {
              block[j].Resize(block[j].size() + 1);
            }
          }
        }
        return block;
      });
  return ConcatChunkColumns(out_schema, std::move(parts), in.scale());
}

Table MapRowsBatch(const Table& in, const Schema& out_schema,
                   const std::vector<BatchEval>& exprs) {
  auto parts = ParallelMapChunks<std::vector<Column>>(
      in.num_rows(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        std::vector<Column> block;
        block.reserve(exprs.size());
        for (const BatchEval& e : exprs) {
          block.push_back(e(in, begin, end));
        }
        return block;
      });
  return ConcatChunkColumns(out_schema, std::move(parts), in.scale());
}

namespace {

// One chunk's worth of (left row, right row) match pairs.
struct JoinPairs {
  std::vector<uint32_t> lidx;
  std::vector<uint32_t> ridx;
};

// Scatter phase shared by both probe variants: per-morsel partition buckets
// keyed on Column::HashAt (== HashValue, computed batch-wise via HashRange)
// so partition contents match the row plane and engine shuffles exactly.
std::vector<std::vector<std::vector<uint32_t>>> ScatterByPartition(
    const Column& c) {
  return ParallelMapChunks<std::vector<std::vector<uint32_t>>>(
      c.size(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        std::vector<std::vector<uint32_t>> buckets(kJoinPartitions);
        std::vector<size_t> hashes(end - begin);
        c.HashRange(begin, end, hashes.data());
        for (size_t i = begin; i < end; ++i) {
          buckets[hashes[i - begin] % kJoinPartitions].push_back(
              static_cast<uint32_t>(i));
        }
        return buckets;
      });
}

// Partitioned build + ordered probe, generic (node-based) variant — only the
// string key path still uses it. The per-partition maps key on string_view;
// probe emits in left-row order, matches in right-index order — the fixed
// emission order that makes the join deterministic at any thread count.
template <typename K, typename LGet, typename RGet>
std::vector<JoinPairs> JoinProbe(const Column& lc, const Column& rc,
                                 const LGet& lget, const RGet& rget) {
  auto scattered = ScatterByPartition(rc);

  using PartitionTable = std::unordered_map<K, std::vector<uint32_t>>;
  std::vector<PartitionTable> tables(kJoinPartitions);
  ParallelChunks(kJoinPartitions, 1, [&](size_t p, size_t, size_t) {
    size_t total = 0;
    for (const auto& chunk : scattered) total += chunk[p].size();
    PartitionTable& table = tables[p];
    table.reserve(total);
    for (const auto& chunk : scattered) {
      for (uint32_t ridx : chunk[p]) {
        table[rget(ridx)].push_back(ridx);
      }
    }
  });

  return ParallelMapChunks<JoinPairs>(
      lc.size(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        JoinPairs out;
        for (size_t i = begin; i < end; ++i) {
          const PartitionTable& table = tables[lc.HashAt(i) % kJoinPartitions];
          auto it = table.find(lget(i));
          if (it == table.end()) continue;
          for (uint32_t ridx : it->second) {
            out.lidx.push_back(static_cast<uint32_t>(i));
            out.ridx.push_back(ridx);
          }
        }
        return out;
      });
}

// A typed numeric key for the flat join table: the canonical 64-bit key plus
// a validity bit (false only for NaN double keys, which match nothing).
struct NumKey {
  uint64_t key;
  bool valid;
};

// One build partition in CSR layout: build row indices grouped by key in one
// contiguous array (ascending within each group — the emission order the
// node-based map produced by push_back), indexed by a flat key → group map.
// Probing a key is one FlatMap64 lookup plus a contiguous span scan, instead
// of a node walk through unordered_map buckets.
struct FlatJoinPartition {
  FlatMap64 groups;               // canonical key → group id
  std::vector<uint32_t> offsets;  // group → [start, end) in rows
  std::vector<uint32_t> rows;     // build row indices, grouped, ascending
};

// Flat CSR variant of JoinProbe for numeric keys (int64 and double/mixed).
// Same partitioning, same emission order, same key-equality semantics as the
// node-based variant (see CanonicalDoubleKey for -0.0/NaN) — only the data
// structure changed, so output is bit-identical.
template <typename LKey, typename RKey>
std::vector<JoinPairs> JoinProbeFlat(const Column& lc, const Column& rc,
                                     const LKey& lkey, const RKey& rkey) {
  auto scattered = ScatterByPartition(rc);

  std::vector<FlatJoinPartition> parts(kJoinPartitions);
  ParallelChunks(kJoinPartitions, 1, [&](size_t p, size_t, size_t) {
    FlatJoinPartition& part = parts[p];
    size_t total = 0;
    for (const auto& chunk : scattered) total += chunk[p].size();
    part.groups.Reserve(total);
    // Pass 1: assign group ids in first-occurrence order, count group sizes.
    // Chunks are visited in chunk order and rows ascend within a chunk, so
    // rows arrive in ascending build-index order.
    std::vector<uint32_t> kept_rows;
    std::vector<uint32_t> row_group;
    kept_rows.reserve(total);
    row_group.reserve(total);
    std::vector<uint32_t> counts;
    for (const auto& chunk : scattered) {
      for (uint32_t ridx : chunk[p]) {
        NumKey k = rkey(ridx);
        if (!k.valid) continue;  // NaN build keys can never match
        bool inserted = false;
        uint32_t* g = part.groups.FindOrInsert(
            k.key, static_cast<uint32_t>(counts.size()), &inserted);
        if (inserted) counts.push_back(0);
        ++counts[*g];
        kept_rows.push_back(ridx);
        row_group.push_back(*g);
      }
    }
    // Pass 2: exclusive prefix sum, then scatter rows into their group span
    // (in arrival order, i.e. ascending build index within each group).
    part.offsets.assign(counts.size() + 1, 0);
    for (size_t g = 0; g < counts.size(); ++g) {
      part.offsets[g + 1] = part.offsets[g] + counts[g];
    }
    part.rows.resize(kept_rows.size());
    std::vector<uint32_t> cursor(part.offsets.begin(), part.offsets.end() - 1);
    for (size_t r = 0; r < kept_rows.size(); ++r) {
      part.rows[cursor[row_group[r]]++] = kept_rows[r];
    }
  });

  return ParallelMapChunks<JoinPairs>(
      lc.size(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        JoinPairs out;
        std::vector<size_t> hashes(end - begin);
        lc.HashRange(begin, end, hashes.data());
        for (size_t i = begin; i < end; ++i) {
          NumKey k = lkey(i);
          if (!k.valid) continue;  // NaN probes match nothing
          const FlatJoinPartition& part =
              parts[hashes[i - begin] % kJoinPartitions];
          uint32_t g = part.groups.Find(k.key);
          if (g == FlatMap64::kEmpty) continue;
          for (uint32_t r = part.offsets[g]; r < part.offsets[g + 1]; ++r) {
            out.lidx.push_back(static_cast<uint32_t>(i));
            out.ridx.push_back(part.rows[r]);
          }
        }
        return out;
      });
}

double NumericAt(const Column& c, size_t i) {
  return c.type() == FieldType::kInt64 ? static_cast<double>(c.ints()[i])
                                       : c.doubles()[i];
}

// Key getter factories for JoinProbeFlat.
auto Int64KeyGetter(const std::vector<int64_t>& v) {
  return [&v](size_t i) {
    return NumKey{static_cast<uint64_t>(v[i]), true};
  };
}

auto DoubleKeyGetter(const Column& c) {
  return [&c](size_t i) {
    double d = NumericAt(c, i);
    return NumKey{CanonicalDoubleKey(d), !KeyIsNaN(d)};
  };
}

}  // namespace

StatusOr<Table> HashJoin(const Table& left, const Table& right, int lkey, int rkey) {
  // Kernel instrumentation is per-call (one span + two counter adds per
  // invocation, never per row), keeping overhead inside the bench budget.
  Span span("kernel.join", "kernel");
  static Counter& calls =
      MetricsRegistry::Global().counter("musketeer.relational.join.calls");
  static Counter& rows =
      MetricsRegistry::Global().counter("musketeer.relational.join.input_rows");
  calls.Increment();
  rows.Increment(left.num_rows() + right.num_rows());
  if (span.active()) {
    span.SetAttr("left_rows", std::to_string(left.num_rows()));
    span.SetAttr("right_rows", std::to_string(right.num_rows()));
  }
  if (lkey < 0 || lkey >= static_cast<int>(left.schema().num_fields())) {
    return InvalidArgumentError("JOIN left key out of range");
  }
  if (rkey < 0 || rkey >= static_cast<int>(right.schema().num_fields())) {
    return InvalidArgumentError("JOIN right key out of range");
  }

  Schema out_schema;
  out_schema.AddField(left.schema().field(lkey));
  for (int c = 0; c < static_cast<int>(left.schema().num_fields()); ++c) {
    if (c != lkey) {
      out_schema.AddField(left.schema().field(c));
    }
  }
  for (int c = 0; c < static_cast<int>(right.schema().num_fields()); ++c) {
    if (c != rkey) {
      out_schema.AddField(right.schema().field(c));
    }
  }

  const Column& lc = left.col(lkey);
  const Column& rc = right.col(rkey);
  const bool lstr = lc.type() == FieldType::kString;
  const bool rstr = rc.type() == FieldType::kString;

  // Typed key dispatch.
  std::vector<JoinPairs> pairs;
  if (lstr != rstr) {
    // A string never equals a numeric: empty result.
  } else if (lstr) {
    const std::vector<std::string>& lv = lc.strings();
    const std::vector<std::string>& rv = rc.strings();
    pairs = JoinProbe<std::string_view>(
        lc, rc, [&](size_t i) { return std::string_view(lv[i]); },
        [&](size_t i) { return std::string_view(rv[i]); });
  } else if (lc.type() == FieldType::kInt64 && rc.type() == FieldType::kInt64) {
    pairs = JoinProbeFlat(lc, rc, Int64KeyGetter(lc.ints()),
                          Int64KeyGetter(rc.ints()));
  } else {
    // Mixed numeric (or double-double): key on the double value, which is
    // exactly how ValuesEqual compares an int64 to a double.
    pairs = JoinProbeFlat(lc, rc, DoubleKeyGetter(lc), DoubleKeyGetter(rc));
  }

  size_t total = 0;
  for (const auto& p : pairs) total += p.lidx.size();
  std::vector<uint32_t> lidx;
  std::vector<uint32_t> ridx;
  lidx.reserve(total);
  ridx.reserve(total);
  for (const auto& p : pairs) {
    lidx.insert(lidx.end(), p.lidx.begin(), p.lidx.end());
    ridx.insert(ridx.end(), p.ridx.begin(), p.ridx.end());
  }

  // Gather output columns (key, left-rest, right-rest) in parallel — each
  // output column is an independent typed gather.
  struct Source {
    const Column* col;
    const std::vector<uint32_t>* idx;
  };
  std::vector<Source> sources;
  sources.reserve(out_schema.num_fields());
  sources.push_back({&lc, &lidx});
  for (int c = 0; c < static_cast<int>(left.schema().num_fields()); ++c) {
    if (c != lkey) sources.push_back({&left.col(c), &lidx});
  }
  for (int c = 0; c < static_cast<int>(right.schema().num_fields()); ++c) {
    if (c != rkey) sources.push_back({&right.col(c), &ridx});
  }
  std::vector<Column> cols(sources.size());
  ParallelChunks(sources.size(), 1, [&](size_t c, size_t, size_t) {
    cols[c] = sources[c].col->Gather(*sources[c].idx);
  });

  Table out = Table::FromColumns(std::move(out_schema), std::move(cols));
  out.set_scale(std::max(left.scale(), right.scale()));
  return out;
}

Table CrossJoin(const Table& left, const Table& right) {
  Schema out_schema;
  for (const Field& f : left.schema().fields()) {
    out_schema.AddField(f);
  }
  for (const Field& f : right.schema().fields()) {
    out_schema.AddField(f);
  }
  const size_t ln = left.num_rows();
  const size_t rn = right.num_rows();
  std::vector<uint32_t> lidx(ln * rn);
  std::vector<uint32_t> ridx(ln * rn);
  ParallelChunks(ln, kMorselRows, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = 0; j < rn; ++j) {
        lidx[i * rn + j] = static_cast<uint32_t>(i);
        ridx[i * rn + j] = static_cast<uint32_t>(j);
      }
    }
  });
  std::vector<Column> cols(out_schema.num_fields());
  const size_t lcols = left.num_fields();
  ParallelChunks(cols.size(), 1, [&](size_t c, size_t, size_t) {
    cols[c] = c < lcols ? left.col(c).Gather(lidx)
                        : right.col(c - lcols).Gather(ridx);
  });
  Table out = Table::FromColumns(std::move(out_schema), std::move(cols));
  out.set_scale(std::max(left.scale(), right.scale()));
  return out;
}

StatusOr<Table> UnionAll(const Table& a, const Table& b) {
  if (a.schema().num_fields() != b.schema().num_fields()) {
    return InvalidArgumentError("UNION arity mismatch: " + a.schema().ToString() +
                                " vs " + b.schema().ToString());
  }
  std::vector<Column> cols;
  cols.reserve(a.num_fields());
  for (size_t c = 0; c < a.num_fields(); ++c) {
    Column col = a.col(c);
    if (b.col(c).type() == col.type()) {
      col.AppendColumnCopy(b.col(c));
    } else if (col.type() != FieldType::kString &&
               b.col(c).type() != FieldType::kString) {
      // Mixed numeric union: coerce b's cells to a's column type.
      for (size_t i = 0; i < b.num_rows(); ++i) {
        col.Append(b.col(c).ValueAt(i));
      }
    } else {
      return InvalidArgumentError("UNION type mismatch on column " +
                                  std::to_string(c) + ": " +
                                  a.schema().ToString() + " vs " +
                                  b.schema().ToString());
    }
    cols.push_back(std::move(col));
  }
  Table out = Table::FromColumns(a.schema(), std::move(cols));
  double total = static_cast<double>(a.num_rows() + b.num_rows());
  if (total > 0) {
    out.set_scale((a.nominal_rows() + b.nominal_rows()) / total);
  } else {
    out.set_scale(std::max(a.scale(), b.scale()));
  }
  return out;
}

namespace {

// Hash-bucketed row set over a table: full-row hash → row indices. The
// kernels probe buckets with cross-table row equality, so ints and integral
// doubles keep colliding exactly like the Value-keyed sets did.
using RowBuckets = std::unordered_map<size_t, std::vector<uint32_t>>;

RowBuckets BuildRowBuckets(const Table& t) {
  RowBuckets buckets;
  buckets.reserve(t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    buckets[HashRowAllCols(t, i)].push_back(static_cast<uint32_t>(i));
  }
  return buckets;
}

bool BucketsContain(const RowBuckets& buckets, const Table& bt, size_t hash,
                    const Table& t, size_t row) {
  auto it = buckets.find(hash);
  if (it == buckets.end()) {
    return false;
  }
  for (uint32_t cand : it->second) {
    if (RowEqualsAcross(t, row, bt, cand)) {
      return true;
    }
  }
  return false;
}

// INTERSECT / DIFFERENCE share their shape: a parallel membership scan of
// `a` against a hashed row set of `b`, then a sequential first-occurrence
// dedup emitting in `a` order.
Table SetOpFilter(const Table& a, const Table& b, bool want_member) {
  RowBuckets in_b = BuildRowBuckets(b);
  std::vector<uint8_t> keep(a.num_rows(), 0);
  ParallelChunks(a.num_rows(), kMorselRows,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     bool member = BucketsContain(in_b, b, HashRowAllCols(a, i),
                                                  a, i);
                     keep[i] = (member == want_member) ? 1 : 0;
                   }
                 });
  RowBuckets emitted;
  std::vector<uint32_t> out_idx;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (!keep[i]) continue;
    size_t h = HashRowAllCols(a, i);
    std::vector<uint32_t>& bucket = emitted[h];
    bool dup = false;
    for (uint32_t prev : bucket) {
      if (RowEqualsAcross(a, i, a, prev)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(static_cast<uint32_t>(i));
      out_idx.push_back(static_cast<uint32_t>(i));
    }
  }
  return a.Gather(out_idx);
}

}  // namespace

StatusOr<Table> Intersect(const Table& a, const Table& b) {
  if (a.schema().num_fields() != b.schema().num_fields()) {
    return InvalidArgumentError("INTERSECT arity mismatch");
  }
  Table out = SetOpFilter(a, b, /*want_member=*/true);
  out.set_scale(std::max(a.scale(), b.scale()));
  return out;
}

StatusOr<Table> Difference(const Table& a, const Table& b) {
  if (a.schema().num_fields() != b.schema().num_fields()) {
    return InvalidArgumentError("DIFFERENCE arity mismatch");
  }
  Table out = SetOpFilter(a, b, /*want_member=*/false);
  out.set_scale(a.scale());
  return out;
}

Table Distinct(const Table& in) {
  // Chunk-local dedup (preserving chunk order), then a sequential global
  // dedup over the chunk survivors in chunk order — emission order equals
  // global first-occurrence order.
  auto parts = ParallelMapChunks<std::vector<uint32_t>>(
      in.num_rows(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        RowBuckets local;
        std::vector<uint32_t> unique;
        for (size_t i = begin; i < end; ++i) {
          size_t h = HashRowAllCols(in, i);
          std::vector<uint32_t>& bucket = local[h];
          bool dup = false;
          for (uint32_t prev : bucket) {
            if (RowEqualsAcross(in, i, in, prev)) {
              dup = true;
              break;
            }
          }
          if (!dup) {
            bucket.push_back(static_cast<uint32_t>(i));
            unique.push_back(static_cast<uint32_t>(i));
          }
        }
        return unique;
      });
  RowBuckets seen;
  std::vector<uint32_t> out_idx;
  for (const auto& part : parts) {
    for (uint32_t i : part) {
      size_t h = HashRowAllCols(in, i);
      std::vector<uint32_t>& bucket = seen[h];
      bool dup = false;
      for (uint32_t prev : bucket) {
        if (RowEqualsAcross(in, i, in, prev)) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        bucket.push_back(i);
        out_idx.push_back(i);
      }
    }
  }
  return in.Gather(out_idx);
}

namespace {

// Partial aggregation over one morsel. Keys live in a columnar sub-table
// (slot order = first-occurrence order); accumulators are flat slot-major
// arrays instead of per-group heap objects.
struct GroupPartial {
  Table keys;
  // Single-INT64-key fast path: key value → slot (flat open addressing; the
  // probe loop is one mix + linear scan over contiguous arrays).
  FlatMap64 int_slots;
  // Generic path: full-key hash (HashRow formula) → candidate slots.
  std::unordered_map<size_t, std::vector<uint32_t>> slots;
  // Flattened [slot * num_aggs + j] accumulators.
  std::vector<double> sums;
  std::vector<double> mins;
  std::vector<double> maxs;
  std::vector<int64_t> counts;
  size_t num_aggs = 0;

  size_t num_slots() const { return keys.num_rows(); }

  void AddSlotAccs() {
    for (size_t j = 0; j < num_aggs; ++j) {
      sums.push_back(0.0);
      mins.push_back(std::numeric_limits<double>::infinity());
      maxs.push_back(-std::numeric_limits<double>::infinity());
      counts.push_back(0);
    }
  }
};

// Folds `b` into `a`. Groups new to `a` append in `b`'s slot order, so the
// merged first-occurrence order equals the first-occurrence order of the
// concatenated inputs; the per-slot combines form the FP summation tree.
void MergeGroupPartial(GroupPartial* a, GroupPartial&& b, bool int_fast_path) {
  const size_t A = a->num_aggs;
  for (size_t slot = 0; slot < b.num_slots(); ++slot) {
    uint32_t dst = std::numeric_limits<uint32_t>::max();
    if (int_fast_path) {
      uint64_t key = static_cast<uint64_t>(b.keys.col(0).ints()[slot]);
      bool inserted = false;
      uint32_t* v = a->int_slots.FindOrInsert(
          key, static_cast<uint32_t>(a->num_slots()), &inserted);
      if (!inserted) dst = *v;
    } else {
      size_t h = HashRowAllCols(b.keys, slot);
      std::vector<uint32_t>& bucket = a->slots[h];
      for (uint32_t cand : bucket) {
        if (RowEqualsAcross(b.keys, slot, a->keys, cand)) {
          dst = cand;
          break;
        }
      }
      if (dst == std::numeric_limits<uint32_t>::max()) {
        bucket.push_back(static_cast<uint32_t>(a->num_slots()));
      }
    }
    if (dst == std::numeric_limits<uint32_t>::max()) {
      a->keys.AppendRowFrom(b.keys, slot);
      for (size_t j = 0; j < A; ++j) {
        a->sums.push_back(b.sums[slot * A + j]);
        a->mins.push_back(b.mins[slot * A + j]);
        a->maxs.push_back(b.maxs[slot * A + j]);
        a->counts.push_back(b.counts[slot * A + j]);
      }
      continue;
    }
    for (size_t j = 0; j < A; ++j) {
      a->sums[dst * A + j] += b.sums[slot * A + j];
      a->mins[dst * A + j] = std::min(a->mins[dst * A + j], b.mins[slot * A + j]);
      a->maxs[dst * A + j] = std::max(a->maxs[dst * A + j], b.maxs[slot * A + j]);
      a->counts[dst * A + j] += b.counts[slot * A + j];
    }
  }
}

// Validated group-by shapes shared by GroupByAgg and the fused variant.
struct GroupPlan {
  Schema key_schema;
  Schema out_schema;
  bool int_fast_path = false;
};

StatusOr<GroupPlan> PlanGroupBy(const Schema& in_schema,
                                const std::vector<int>& group_columns,
                                const std::vector<AggSpec>& aggs) {
  for (int c : group_columns) {
    if (c < 0 || c >= static_cast<int>(in_schema.num_fields())) {
      return InvalidArgumentError("GROUP BY column out of range");
    }
  }
  for (const AggSpec& a : aggs) {
    if (a.fn == AggFn::kCount) {
      continue;
    }
    if (a.column < 0 || a.column >= static_cast<int>(in_schema.num_fields())) {
      return InvalidArgumentError("AGG column out of range");
    }
    if (in_schema.field(a.column).type == FieldType::kString) {
      // Strings have no numeric view (see AsDouble's sentinel); reject
      // instead of aggregating NaNs.
      return InvalidArgumentError(std::string(AggFnName(a.fn)) +
                                  " over STRING column '" +
                                  in_schema.field(a.column).name + "'");
    }
  }
  GroupPlan plan;
  for (int c : group_columns) {
    plan.key_schema.AddField(in_schema.field(c));
    plan.out_schema.AddField(in_schema.field(c));
  }
  for (const AggSpec& a : aggs) {
    FieldType t = FieldType::kDouble;
    if (a.fn == AggFn::kCount) {
      t = FieldType::kInt64;
    } else if (in_schema.field(a.column).type == FieldType::kInt64 &&
               (a.fn == AggFn::kSum || a.fn == AggFn::kMin ||
                a.fn == AggFn::kMax)) {
      t = FieldType::kInt64;
    }
    plan.out_schema.AddField({a.output_name, t});
  }
  plan.int_fast_path =
      group_columns.size() == 1 &&
      in_schema.field(group_columns[0]).type == FieldType::kInt64;
  return plan;
}

// Accumulates rows [begin, end) of `src` into `part` — the phase-1 inner
// loop of GroupByAgg, also driven per filtered chunk by the fused kernel.
// Slot order is first-occurrence order of keys within the accumulated rows.
void AccumulateGroupRows(GroupPartial* part, const Table& src, size_t begin,
                         size_t end, const std::vector<int>& group_columns,
                         const std::vector<AggSpec>& aggs, bool int_fast_path) {
  const size_t A = aggs.size();
  std::vector<const Column*> agg_cols(A, nullptr);
  for (size_t j = 0; j < A; ++j) {
    if (aggs[j].fn != AggFn::kCount) {
      agg_cols[j] = &src.col(aggs[j].column);
    }
  }
  const std::vector<int64_t>* int_keys =
      int_fast_path ? &src.col(group_columns[0]).ints() : nullptr;
  for (size_t i = begin; i < end; ++i) {
    uint32_t slot = std::numeric_limits<uint32_t>::max();
    if (int_fast_path) {
      bool inserted = false;
      uint32_t* v = part->int_slots.FindOrInsert(
          static_cast<uint64_t>((*int_keys)[i]),
          static_cast<uint32_t>(part->num_slots()), &inserted);
      slot = *v;
      if (inserted) {
        part->keys.AppendRowFromCols(src, i, group_columns);
        part->AddSlotAccs();
      }
    } else {
      size_t h = HashRow(src, i, group_columns);
      std::vector<uint32_t>& bucket = part->slots[h];
      for (uint32_t cand : bucket) {
        bool equal = true;
        for (size_t k = 0; k < group_columns.size(); ++k) {
          if (!src.col(group_columns[k]).EqualAt(i, part->keys.col(k), cand)) {
            equal = false;
            break;
          }
        }
        if (equal) {
          slot = cand;
          break;
        }
      }
      if (slot == std::numeric_limits<uint32_t>::max()) {
        slot = static_cast<uint32_t>(part->num_slots());
        bucket.push_back(slot);
        part->keys.AppendRowFromCols(src, i, group_columns);
        part->AddSlotAccs();
      }
    }
    for (size_t j = 0; j < A; ++j) {
      part->counts[slot * A + j] += 1;
      if (aggs[j].fn == AggFn::kCount) {
        continue;
      }
      double v = NumericAt(*agg_cols[j], i);
      part->sums[slot * A + j] += v;
      part->mins[slot * A + j] = std::min(part->mins[slot * A + j], v);
      part->maxs[slot * A + j] = std::max(part->maxs[slot * A + j], v);
    }
  }
}

// Phase 2 of GroupByAgg: fixed pairwise merge tree over the partials (merge
// chunk 2p+step into 2p each round). The tree shape depends only on the
// chunk count, never the thread count — FP results are bit-stable.
void MergePartialsTree(std::vector<GroupPartial>* partials,
                       bool int_fast_path) {
  for (size_t step = 1; step < partials->size(); step *= 2) {
    size_t pairs = 0;
    for (size_t l = 0; l + step < partials->size(); l += 2 * step) ++pairs;
    ParallelChunks(pairs, 1, [&](size_t p, size_t, size_t) {
      const size_t l = 2 * step * p;
      MergeGroupPartial(&(*partials)[l], std::move((*partials)[l + step]),
                        int_fast_path);
    });
  }
}

// Output fill shared by GroupByAgg and the fused kernel: releases the merged
// key table, computes the aggregate columns slot-parallel, and handles the
// empty-input global-aggregate edge (`emit_empty_global_row`).
Table FinalizeGroupPartials(std::vector<GroupPartial>&& partials,
                            const Schema& out_schema, size_t num_group_cols,
                            const std::vector<AggSpec>& aggs, double scale,
                            bool emit_empty_global_row) {
  const size_t A = aggs.size();
  Table out(out_schema);
  out.set_scale(scale);
  if (!partials.empty()) {
    GroupPartial& groups = partials[0];
    const size_t num_groups = groups.num_slots();
    std::vector<Column> cols = groups.keys.ReleaseColumns();
    cols.resize(out_schema.num_fields());
    // Fill the aggregate output columns slot-parallel (each column is an
    // independent dense array).
    for (size_t j = 0; j < A; ++j) {
      Column& c = cols[num_group_cols + j];
      c = Column(out_schema.field(num_group_cols + j).type);
      c.Resize(num_groups);
    }
    ParallelChunks(num_groups, kMorselRows,
                   [&](size_t, size_t begin, size_t end) {
      for (size_t g = begin; g < end; ++g) {
        for (size_t j = 0; j < A; ++j) {
          double v = 0;
          switch (aggs[j].fn) {
            case AggFn::kSum:
              v = groups.sums[g * A + j];
              break;
            case AggFn::kCount:
              v = static_cast<double>(groups.counts[g * A + j]);
              break;
            case AggFn::kMin:
              v = groups.mins[g * A + j];
              break;
            case AggFn::kMax:
              v = groups.maxs[g * A + j];
              break;
            case AggFn::kAvg:
              v = groups.counts[g * A + j] > 0
                      ? groups.sums[g * A + j] /
                            static_cast<double>(groups.counts[g * A + j])
                      : 0;
              break;
          }
          Column& c = cols[num_group_cols + j];
          if (c.type() == FieldType::kInt64) {
            (*c.mutable_ints())[g] = static_cast<int64_t>(v);
          } else {
            (*c.mutable_doubles())[g] = v;
          }
        }
      }
    });
    out = Table::FromColumns(out_schema, std::move(cols));
    out.set_scale(scale);
  }

  // Handle the empty-input global aggregate: SQL-ish engines return one row
  // of zero counts; the paper's operators never hit this edge, but tests do.
  if (emit_empty_global_row) {
    Row r;
    for (const AggSpec& a : aggs) {
      if (a.fn == AggFn::kCount) {
        r.push_back(static_cast<int64_t>(0));
      } else if (out_schema.field(r.size()).type == FieldType::kInt64) {
        r.push_back(static_cast<int64_t>(0));
      } else {
        r.push_back(0.0);
      }
    }
    out.AddRow(std::move(r));
  }
  return out;
}

}  // namespace

StatusOr<Table> GroupByAgg(const Table& in, const std::vector<int>& group_columns,
                           const std::vector<AggSpec>& aggs) {
  Span span("kernel.group_by", "kernel");
  static Counter& calls =
      MetricsRegistry::Global().counter("musketeer.relational.group_by.calls");
  static Counter& rows = MetricsRegistry::Global().counter(
      "musketeer.relational.group_by.input_rows");
  calls.Increment();
  rows.Increment(in.num_rows());
  if (span.active()) {
    span.SetAttr("rows", std::to_string(in.num_rows()));
  }
  StatusOr<GroupPlan> plan_or = PlanGroupBy(in.schema(), group_columns, aggs);
  if (!plan_or.ok()) return plan_or.status();
  const GroupPlan& plan = plan_or.value();

  // Phase 1: thread-local partial aggregates, one per morsel. Every AggFn is
  // associative (AVG decomposes into (sum, count)), so partials combine.
  auto partials = ParallelMapChunks<GroupPartial>(
      in.num_rows(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        GroupPartial part;
        part.num_aggs = aggs.size();
        part.keys = Table(plan.key_schema);
        AccumulateGroupRows(&part, in, begin, end, group_columns, aggs,
                            plan.int_fast_path);
        return part;
      });

  MergePartialsTree(&partials, plan.int_fast_path);
  return FinalizeGroupPartials(
      std::move(partials), plan.out_schema, group_columns.size(), aggs,
      in.scale(), group_columns.empty() && in.num_rows() == 0);
}

namespace {

// Gathers the transform's input columns at `idx` into a narrow scratch table.
Table GatherScratch(const Table& in, const FusedTransform& t,
                    const std::vector<uint32_t>& idx) {
  std::vector<Column> cols;
  cols.reserve(t.gather_cols.size());
  for (int c : t.gather_cols) {
    cols.push_back(in.col(c).Gather(idx));
  }
  return Table::FromColumns(t.scratch_schema, std::move(cols));
}

// Runs the transform stage over one scratch block. Identity transforms
// release the scratch columns directly (a projection); otherwise each output
// column is one batch-expression evaluation over the whole block.
std::vector<Column> EvalTransformBlock(const FusedTransform& t,
                                       Table&& scratch) {
  if (t.exprs.empty()) {
    return scratch.ReleaseColumns();
  }
  std::vector<Column> block;
  block.reserve(t.exprs.size());
  for (const BatchEval& e : t.exprs) {
    block.push_back(e(scratch, 0, scratch.num_rows()));
  }
  return block;
}

}  // namespace

Table FusedSelectTransform(const Table& in,
                           const std::vector<MaskEval>& filters,
                           const FusedTransform& t) {
  Span span("kernel.fused_select_map", "kernel");
  static Counter& calls = MetricsRegistry::Global().counter(
      "musketeer.relational.fused_select_map.calls");
  calls.Increment();
  if (span.active()) {
    span.SetAttr("rows", std::to_string(in.num_rows()));
    span.SetAttr("filters", std::to_string(filters.size()));
  }
  auto parts = ParallelMapChunks<std::vector<Column>>(
      in.num_rows(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        std::vector<uint8_t> mask(end - begin);
        std::vector<uint8_t> tmp;
        EvalFilterMasks(filters, in, begin, end, mask.data(), &tmp);
        std::vector<uint32_t> sel;
        CompactMask(mask.data(), end - begin, begin, &sel);
        return EvalTransformBlock(t, GatherScratch(in, t, sel));
      });
  return ConcatChunkColumns(t.out_schema, std::move(parts), in.scale());
}

StatusOr<Table> FusedSelectTransformAgg(const Table& in,
                                        const std::vector<MaskEval>& filters,
                                        const FusedTransform& t,
                                        const std::vector<int>& group_columns,
                                        const std::vector<AggSpec>& aggs) {
  Span span("kernel.fused_select_map_agg", "kernel");
  static Counter& calls = MetricsRegistry::Global().counter(
      "musketeer.relational.fused_select_map_agg.calls");
  calls.Increment();
  if (span.active()) {
    span.SetAttr("rows", std::to_string(in.num_rows()));
  }
  StatusOr<GroupPlan> plan_or = PlanGroupBy(t.out_schema, group_columns, aggs);
  if (!plan_or.ok()) return plan_or.status();
  const GroupPlan& plan = plan_or.value();

  const size_t n = in.num_rows();
  const size_t in_chunks = NumChunks(n, kMorselRows);

  // Pass A: selection bitmap over the whole input, one byte per row, plus
  // per-chunk kept counts. The bitmap stays resident (n bytes) instead of a
  // materialized filtered table (n × row width).
  std::vector<uint8_t> mask(n);
  std::vector<size_t> chunk_kept(in_chunks, 0);
  ParallelChunks(n, kMorselRows, [&](size_t c, size_t begin, size_t end) {
    std::vector<uint8_t> tmp;
    EvalFilterMasks(filters, in, begin, end, mask.data() + begin, &tmp);
    size_t cnt = 0;
    for (size_t k = begin; k < end; ++k) cnt += mask[k];
    chunk_kept[c] = cnt;
  });

  // Index exchange: exclusive prefix over the chunk counts gives every chunk
  // its slice of the global filtered-row index vector; each chunk compacts
  // into a local buffer and copies into place (no cross-chunk writes).
  std::vector<size_t> offs(in_chunks + 1, 0);
  for (size_t c = 0; c < in_chunks; ++c) offs[c + 1] = offs[c] + chunk_kept[c];
  const size_t kept = offs[in_chunks];
  std::vector<uint32_t> sel(kept);
  ParallelChunks(n, kMorselRows, [&](size_t c, size_t begin, size_t end) {
    std::vector<uint32_t> local;
    CompactMask(mask.data() + begin, end - begin, begin, &local);
    std::copy(local.begin(), local.end(), sel.begin() + offs[c]);
  });

  // Pass B: one GroupByAgg partial per *filtered* kMorselRows chunk — the
  // same chunk boundaries GroupByAgg would see on the materialized
  // select→map output, so the partial merge tree (and every FP bit of the
  // result) is identical to the unfused pipeline. Each chunk gathers its
  // scratch, runs the transform, and accumulates in filtered-row order.
  auto partials = ParallelMapChunks<GroupPartial>(
      kept, kMorselRows, [&](size_t, size_t begin, size_t end) {
        std::vector<uint32_t> idx(sel.begin() + begin, sel.begin() + end);
        Table block = Table::FromColumns(
            t.out_schema, EvalTransformBlock(t, GatherScratch(in, t, idx)));
        GroupPartial part;
        part.num_aggs = aggs.size();
        part.keys = Table(plan.key_schema);
        AccumulateGroupRows(&part, block, 0, block.num_rows(), group_columns,
                            aggs, plan.int_fast_path);
        return part;
      });

  MergePartialsTree(&partials, plan.int_fast_path);
  return FinalizeGroupPartials(std::move(partials), plan.out_schema,
                               group_columns.size(), aggs, in.scale(),
                               group_columns.empty() && kept == 0);
}

StatusOr<Table> ExtremeRow(const Table& in, int column, bool take_max) {
  if (column < 0 || column >= static_cast<int>(in.schema().num_fields())) {
    return InvalidArgumentError("MIN/MAX column out of range");
  }
  if (in.num_rows() == 0) {
    Table out(in.schema());
    out.set_scale(1.0);
    return out;
  }
  const Column& key = in.col(column);
  // Total order on rows: (key, full-row tie-break); earlier row wins exact
  // duplicates. Per-chunk selection folded in chunk order equals the
  // sequential scan.
  auto better = [&](size_t a, size_t b) {
    int c = key.CompareAt(a, key, b);
    bool strictly = take_max ? (c > 0) : (c < 0);
    return strictly || (c == 0 && Table::CompareRowsAt(in, a, in, b) < 0);
  };
  auto bests = ParallelMapChunks<size_t>(
      in.num_rows(), kMorselRows, [&](size_t, size_t begin, size_t end) {
        size_t best = begin;
        for (size_t i = begin + 1; i < end; ++i) {
          if (better(i, best)) best = i;
        }
        return best;
      });
  size_t best = bests[0];
  for (size_t k = 1; k < bests.size(); ++k) {
    if (better(bests[k], best)) best = bests[k];
  }
  Table out = in.Gather({static_cast<uint32_t>(best)});
  out.set_scale(1.0);
  return out;
}

Table SortBy(const Table& in, const std::vector<int>& columns) {
  Span span("kernel.sort", "kernel");
  static Counter& calls =
      MetricsRegistry::Global().counter("musketeer.relational.sort.calls");
  static Counter& rows =
      MetricsRegistry::Global().counter("musketeer.relational.sort.input_rows");
  calls.Increment();
  rows.Increment(in.num_rows());
  if (span.active()) {
    span.SetAttr("rows", std::to_string(in.num_rows()));
  }
  std::vector<const Column*> keys;
  keys.reserve(columns.size());
  for (int c : columns) keys.push_back(&in.col(c));

  // Typed comparator fast paths: hoist the per-row-pair type dispatch of
  // CompareAt out of the sort for the common 1–2 numeric-key shapes. Each
  // fast path reproduces CompareAt's ordering on the raw typed vectors
  // (cmp < 0 ⇔ v[a] < v[b]; cmp == 0 ⇔ v[a] == v[b], including the NaN
  // behavior for doubles), and stable sort has a unique result for a given
  // ordering — so the permutation, and the output, are bit-identical.
  const size_t n = in.num_rows();
  std::vector<uint32_t> perm;
  auto numeric = [](const Column* k) {
    return k->type() == FieldType::kInt64 || k->type() == FieldType::kDouble;
  };
  if (keys.size() == 1 && keys[0]->type() == FieldType::kInt64) {
    const int64_t* v = keys[0]->ints().data();
    perm = ParallelStableSortPerm(
        n, [v](uint32_t a, uint32_t b) { return v[a] < v[b]; });
  } else if (keys.size() == 1 && keys[0]->type() == FieldType::kDouble) {
    const double* v = keys[0]->doubles().data();
    perm = ParallelStableSortPerm(
        n, [v](uint32_t a, uint32_t b) { return v[a] < v[b]; });
  } else if (keys.size() == 2 && numeric(keys[0]) && numeric(keys[1])) {
    auto with_two = [&](auto v0, auto v1) {
      return ParallelStableSortPerm(n, [v0, v1](uint32_t a, uint32_t b) {
        return v0[a] == v0[b] ? v1[a] < v1[b] : v0[a] < v0[b];
      });
    };
    auto with_first = [&](auto v0) {
      return keys[1]->type() == FieldType::kInt64
                 ? with_two(v0, keys[1]->ints().data())
                 : with_two(v0, keys[1]->doubles().data());
    };
    perm = keys[0]->type() == FieldType::kInt64
               ? with_first(keys[0]->ints().data())
               : with_first(keys[0]->doubles().data());
  } else {
    perm = ParallelStableSortPerm(n, [&keys](uint32_t a, uint32_t b) {
      for (const Column* k : keys) {
        int cmp = k->CompareAt(a, *k, b);
        if (cmp != 0) {
          return cmp < 0;
        }
      }
      return false;
    });
  }
  return in.Gather(perm);
}

Table TopNBy(const Table& in, int column, size_t n) {
  const Column& key = in.col(column);
  // Typed descending comparators, replicating CompareAt(a, b) > 0 exactly:
  // for int64 that is v[a] > v[b]; for double it is !(v[a] <= v[b]) (NaN
  // compares "greater" in CompareAt, and !(NaN <= x) is true).
  std::vector<uint32_t> perm;
  if (key.type() == FieldType::kInt64) {
    const int64_t* v = key.ints().data();
    perm = ParallelStableSortPerm(
        in.num_rows(), [v](uint32_t a, uint32_t b) { return v[a] > v[b]; });
  } else if (key.type() == FieldType::kDouble) {
    const double* v = key.doubles().data();
    perm = ParallelStableSortPerm(
        in.num_rows(), [v](uint32_t a, uint32_t b) { return !(v[a] <= v[b]); });
  } else {
    perm = ParallelStableSortPerm(
        in.num_rows(), [&key](uint32_t a, uint32_t b) {
          return key.CompareAt(a, key, b) > 0;
        });
  }
  if (perm.size() > n) {
    perm.resize(n);
  }
  return in.Gather(perm);
}

}  // namespace musketeer
