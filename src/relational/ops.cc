#include "src/relational/ops.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace musketeer {

namespace {

// Single-value wrappers for hash containers keyed by one column.
struct ValueHash {
  size_t operator()(const Value& v) const { return HashValue(v); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return ValuesEqual(a, b); }
};

}  // namespace

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "SUM";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAvg:
      return "AVG";
  }
  return "UNKNOWN";
}

bool AggFnIsAssociative(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
    case AggFn::kCount:
    case AggFn::kMin:
    case AggFn::kMax:
    case AggFn::kAvg:  // decomposes into (sum, count)
      return true;
  }
  return false;
}

Table SelectRows(const Table& in, const RowPredicate& pred) {
  Table out(in.schema());
  out.set_scale(in.scale());
  for (const Row& row : in.rows()) {
    if (pred(row)) {
      out.AddRow(row);
    }
  }
  return out;
}

StatusOr<Table> ProjectColumns(const Table& in, const std::vector<int>& columns) {
  Schema out_schema;
  for (int c : columns) {
    if (c < 0 || c >= static_cast<int>(in.schema().num_fields())) {
      return InvalidArgumentError("PROJECT column index " + std::to_string(c) +
                                  " out of range for schema " +
                                  in.schema().ToString());
    }
    out_schema.AddField(in.schema().field(c));
  }
  Table out(out_schema);
  out.set_scale(in.scale());
  out.Reserve(in.num_rows());
  for (const Row& row : in.rows()) {
    Row r;
    r.reserve(columns.size());
    for (int c : columns) {
      r.push_back(row[c]);
    }
    out.AddRow(std::move(r));
  }
  return out;
}

Table MapRows(const Table& in, const Schema& out_schema,
              const std::vector<RowProjector>& projectors) {
  Table out(out_schema);
  out.set_scale(in.scale());
  out.Reserve(in.num_rows());
  for (const Row& row : in.rows()) {
    Row r;
    r.reserve(projectors.size());
    for (const RowProjector& p : projectors) {
      r.push_back(p(row));
    }
    out.AddRow(std::move(r));
  }
  return out;
}

StatusOr<Table> HashJoin(const Table& left, const Table& right, int lkey, int rkey) {
  if (lkey < 0 || lkey >= static_cast<int>(left.schema().num_fields())) {
    return InvalidArgumentError("JOIN left key out of range");
  }
  if (rkey < 0 || rkey >= static_cast<int>(right.schema().num_fields())) {
    return InvalidArgumentError("JOIN right key out of range");
  }

  Schema out_schema;
  out_schema.AddField(left.schema().field(lkey));
  for (int c = 0; c < static_cast<int>(left.schema().num_fields()); ++c) {
    if (c != lkey) {
      out_schema.AddField(left.schema().field(c));
    }
  }
  for (int c = 0; c < static_cast<int>(right.schema().num_fields()); ++c) {
    if (c != rkey) {
      out_schema.AddField(right.schema().field(c));
    }
  }

  // Build on the smaller side for speed; probe order fixed as left-then-right
  // so output content is independent of build choice.
  std::unordered_multimap<Value, const Row*, ValueHash, ValueEq> build;
  build.reserve(right.num_rows());
  for (const Row& row : right.rows()) {
    build.emplace(row[rkey], &row);
  }

  Table out(out_schema);
  out.set_scale(std::max(left.scale(), right.scale()));
  for (const Row& lrow : left.rows()) {
    auto [it, end] = build.equal_range(lrow[lkey]);
    for (; it != end; ++it) {
      const Row& rrow = *it->second;
      Row r;
      r.reserve(out_schema.num_fields());
      r.push_back(lrow[lkey]);
      for (int c = 0; c < static_cast<int>(lrow.size()); ++c) {
        if (c != lkey) {
          r.push_back(lrow[c]);
        }
      }
      for (int c = 0; c < static_cast<int>(rrow.size()); ++c) {
        if (c != rkey) {
          r.push_back(rrow[c]);
        }
      }
      out.AddRow(std::move(r));
    }
  }
  return out;
}

Table CrossJoin(const Table& left, const Table& right) {
  Schema out_schema;
  for (const Field& f : left.schema().fields()) {
    out_schema.AddField(f);
  }
  for (const Field& f : right.schema().fields()) {
    out_schema.AddField(f);
  }
  Table out(out_schema);
  out.set_scale(std::max(left.scale(), right.scale()));
  out.Reserve(left.num_rows() * right.num_rows());
  for (const Row& lrow : left.rows()) {
    for (const Row& rrow : right.rows()) {
      Row r = lrow;
      r.insert(r.end(), rrow.begin(), rrow.end());
      out.AddRow(std::move(r));
    }
  }
  return out;
}

StatusOr<Table> UnionAll(const Table& a, const Table& b) {
  if (a.schema().num_fields() != b.schema().num_fields()) {
    return InvalidArgumentError("UNION arity mismatch: " + a.schema().ToString() +
                                " vs " + b.schema().ToString());
  }
  Table out(a.schema());
  double total = static_cast<double>(a.num_rows() + b.num_rows());
  if (total > 0) {
    out.set_scale((a.nominal_rows() + b.nominal_rows()) / total);
  } else {
    out.set_scale(std::max(a.scale(), b.scale()));
  }
  out.Reserve(a.num_rows() + b.num_rows());
  for (const Row& row : a.rows()) {
    out.AddRow(row);
  }
  for (const Row& row : b.rows()) {
    out.AddRow(row);
  }
  return out;
}

StatusOr<Table> Intersect(const Table& a, const Table& b) {
  if (a.schema().num_fields() != b.schema().num_fields()) {
    return InvalidArgumentError("INTERSECT arity mismatch");
  }
  std::unordered_set<Row, RowHash, RowEq> in_b(b.rows().begin(), b.rows().end());
  std::unordered_set<Row, RowHash, RowEq> emitted;
  Table out(a.schema());
  out.set_scale(std::max(a.scale(), b.scale()));
  for (const Row& row : a.rows()) {
    if (in_b.count(row) > 0 && emitted.insert(row).second) {
      out.AddRow(row);
    }
  }
  return out;
}

StatusOr<Table> Difference(const Table& a, const Table& b) {
  if (a.schema().num_fields() != b.schema().num_fields()) {
    return InvalidArgumentError("DIFFERENCE arity mismatch");
  }
  std::unordered_set<Row, RowHash, RowEq> in_b(b.rows().begin(), b.rows().end());
  std::unordered_set<Row, RowHash, RowEq> emitted;
  Table out(a.schema());
  out.set_scale(a.scale());
  for (const Row& row : a.rows()) {
    if (in_b.count(row) == 0 && emitted.insert(row).second) {
      out.AddRow(row);
    }
  }
  return out;
}

Table Distinct(const Table& in) {
  std::unordered_set<Row, RowHash, RowEq> seen;
  Table out(in.schema());
  out.set_scale(in.scale());
  for (const Row& row : in.rows()) {
    if (seen.insert(row).second) {
      out.AddRow(row);
    }
  }
  return out;
}

StatusOr<Table> GroupByAgg(const Table& in, const std::vector<int>& group_columns,
                           const std::vector<AggSpec>& aggs) {
  for (int c : group_columns) {
    if (c < 0 || c >= static_cast<int>(in.schema().num_fields())) {
      return InvalidArgumentError("GROUP BY column out of range");
    }
  }
  for (const AggSpec& a : aggs) {
    if (a.fn != AggFn::kCount &&
        (a.column < 0 || a.column >= static_cast<int>(in.schema().num_fields()))) {
      return InvalidArgumentError("AGG column out of range");
    }
  }

  struct Acc {
    std::vector<double> sums;
    std::vector<double> mins;
    std::vector<double> maxs;
    std::vector<int64_t> counts;
    Row key_row;
  };

  std::unordered_map<Row, Acc, RowHash, RowEq> groups;
  for (const Row& row : in.rows()) {
    Row key;
    key.reserve(group_columns.size());
    for (int c : group_columns) {
      key.push_back(row[c]);
    }
    Acc& acc = groups[key];
    if (acc.sums.empty()) {
      acc.sums.assign(aggs.size(), 0.0);
      acc.mins.assign(aggs.size(), std::numeric_limits<double>::infinity());
      acc.maxs.assign(aggs.size(), -std::numeric_limits<double>::infinity());
      acc.counts.assign(aggs.size(), 0);
      acc.key_row = key;
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      acc.counts[i] += 1;
      if (aggs[i].fn == AggFn::kCount) {
        continue;
      }
      double v = AsDouble(row[aggs[i].column]);
      acc.sums[i] += v;
      acc.mins[i] = std::min(acc.mins[i], v);
      acc.maxs[i] = std::max(acc.maxs[i], v);
    }
  }

  Schema out_schema;
  for (int c : group_columns) {
    out_schema.AddField(in.schema().field(c));
  }
  for (const AggSpec& a : aggs) {
    FieldType t = FieldType::kDouble;
    if (a.fn == AggFn::kCount) {
      t = FieldType::kInt64;
    } else if (in.schema().field(a.column).type == FieldType::kInt64 &&
               (a.fn == AggFn::kSum || a.fn == AggFn::kMin || a.fn == AggFn::kMax)) {
      t = FieldType::kInt64;
    }
    out_schema.AddField({a.output_name, t});
  }

  Table out(out_schema);
  out.set_scale(in.scale());
  out.Reserve(groups.size());
  for (auto& [key, acc] : groups) {
    Row r = key;
    for (size_t i = 0; i < aggs.size(); ++i) {
      double v = 0;
      switch (aggs[i].fn) {
        case AggFn::kSum:
          v = acc.sums[i];
          break;
        case AggFn::kCount:
          v = static_cast<double>(acc.counts[i]);
          break;
        case AggFn::kMin:
          v = acc.mins[i];
          break;
        case AggFn::kMax:
          v = acc.maxs[i];
          break;
        case AggFn::kAvg:
          v = acc.counts[i] > 0 ? acc.sums[i] / static_cast<double>(acc.counts[i]) : 0;
          break;
      }
      FieldType t = out_schema.field(group_columns.size() + i).type;
      if (t == FieldType::kInt64) {
        r.push_back(static_cast<int64_t>(v));
      } else {
        r.push_back(v);
      }
    }
    out.AddRow(std::move(r));
  }

  // Handle the empty-input global aggregate: SQL-ish engines return one row
  // of zero counts; the paper's operators never hit this edge, but tests do.
  if (group_columns.empty() && in.num_rows() == 0) {
    Row r;
    for (const AggSpec& a : aggs) {
      if (a.fn == AggFn::kCount) {
        r.push_back(static_cast<int64_t>(0));
      } else if (out_schema.field(r.size()).type == FieldType::kInt64) {
        r.push_back(static_cast<int64_t>(0));
      } else {
        r.push_back(0.0);
      }
    }
    out.AddRow(std::move(r));
  }
  return out;
}

StatusOr<Table> ExtremeRow(const Table& in, int column, bool take_max) {
  if (column < 0 || column >= static_cast<int>(in.schema().num_fields())) {
    return InvalidArgumentError("MIN/MAX column out of range");
  }
  Table out(in.schema());
  out.set_scale(1.0);
  if (in.num_rows() == 0) {
    return out;
  }
  const Row* best = nullptr;
  RowLess less;
  for (const Row& row : in.rows()) {
    if (best == nullptr) {
      best = &row;
      continue;
    }
    int c = CompareValues(row[column], (*best)[column]);
    bool better = take_max ? (c > 0) : (c < 0);
    // Deterministic tie-break by full-row order.
    if (better || (c == 0 && less(row, *best))) {
      best = &row;
    }
  }
  out.AddRow(*best);
  return out;
}

Table SortBy(const Table& in, const std::vector<int>& columns) {
  Table out = in;
  std::stable_sort(out.mutable_rows()->begin(), out.mutable_rows()->end(),
                   [&columns](const Row& a, const Row& b) {
                     for (int c : columns) {
                       int cmp = CompareValues(a[c], b[c]);
                       if (cmp != 0) {
                         return cmp < 0;
                       }
                     }
                     return false;
                   });
  return out;
}

Table TopNBy(const Table& in, int column, size_t n) {
  Table out = in;
  std::stable_sort(out.mutable_rows()->begin(), out.mutable_rows()->end(),
                   [column](const Row& a, const Row& b) {
                     return CompareValues(a[column], b[column]) > 0;
                   });
  if (out.mutable_rows()->size() > n) {
    out.mutable_rows()->resize(n);
  }
  return out;
}

}  // namespace musketeer
