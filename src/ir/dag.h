// The IR DAG: a directed acyclic graph of data-flow operators with edges
// corresponding to input-output dependencies (§4.2).

#ifndef MUSKETEER_SRC_IR_DAG_H_
#define MUSKETEER_SRC_IR_DAG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/operator.h"

namespace musketeer {

// Maps relation names to schemas; used for base (DFS) relations and for
// inference results.
using SchemaMap = std::unordered_map<std::string, Schema>;

class Dag {
 public:
  Dag() = default;

  // Appends a node; `inputs` must reference existing (smaller) ids, which
  // keeps the graph acyclic by construction. Returns the new node's id.
  int AddNode(OpKind kind, std::string output, std::vector<int> inputs,
              OpParams params);

  // Convenience for base-relation reads.
  int AddInput(const std::string& relation);

  const std::vector<OperatorNode>& nodes() const { return nodes_; }
  const OperatorNode& node(int id) const { return nodes_[id]; }
  OperatorNode* mutable_node(int id) { return &nodes_[id]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // Node id producing relation `name`, or -1. When a name is defined more
  // than once (not allowed outside WHILE bodies), the last definition wins.
  int ProducerOf(const std::string& name) const;

  // Ids of nodes consuming node `id`'s output. O(out-degree): the adjacency
  // is maintained incrementally by AddNode (planning a 1000-operator DAG
  // calls this in every JobCost, so a linear scan here is a planner
  // bottleneck, not a convenience).
  const std::vector<int>& ConsumersOf(int id) const;

  // Ids of nodes with no consumers (workflow results).
  std::vector<int> Sinks() const;

  // Structural checks: input ids in range and increasing, arities match,
  // output names unique, WHILE params well-formed.
  Status Validate() const;

  // Computes the output schema of every node given base-relation schemas.
  // Fails if an expression references a missing column, arities mismatch, etc.
  StatusOr<std::vector<Schema>> InferSchemas(const SchemaMap& base) const;

  // Number of operators counting WHILE bodies recursively (WHILE itself is
  // not counted; its body operators are).
  int TotalOperatorCount() const;

  // Deep copy (WHILE bodies included).
  std::unique_ptr<Dag> Clone() const;

  // Graphviz rendering for debugging and docs.
  std::string ToDot() const;

  std::string DebugString() const;

 private:
  std::vector<OperatorNode> nodes_;
  std::vector<std::vector<int>> consumers_;  // node id -> consumer ids
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_IR_DAG_H_
