#include "src/ir/operator.h"

#include <sstream>

#include "src/ir/dag.h"

namespace musketeer {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "INPUT";
    case OpKind::kSelect:
      return "SELECT";
    case OpKind::kProject:
      return "PROJECT";
    case OpKind::kMap:
      return "MAP";
    case OpKind::kJoin:
      return "JOIN";
    case OpKind::kCrossJoin:
      return "CROSS_JOIN";
    case OpKind::kUnion:
      return "UNION";
    case OpKind::kIntersect:
      return "INTERSECT";
    case OpKind::kDifference:
      return "DIFFERENCE";
    case OpKind::kDistinct:
      return "DISTINCT";
    case OpKind::kGroupBy:
      return "GROUP_BY";
    case OpKind::kAgg:
      return "AGG";
    case OpKind::kMax:
      return "MAX";
    case OpKind::kMin:
      return "MIN";
    case OpKind::kTopN:
      return "TOP_N";
    case OpKind::kSort:
      return "SORT";
    case OpKind::kWhile:
      return "WHILE";
    case OpKind::kUdf:
      return "UDF";
    case OpKind::kBlackBox:
      return "BLACK_BOX";
  }
  return "UNKNOWN";
}

SizeBehavior OpSizeBehavior(OpKind kind) {
  switch (kind) {
    case OpKind::kSelect:
    case OpKind::kIntersect:
    case OpKind::kDifference:
    case OpKind::kDistinct:
    case OpKind::kGroupBy:
      return SizeBehavior::kSelective;
    case OpKind::kInput:
    case OpKind::kProject:
    case OpKind::kMap:
    case OpKind::kSort:
      return SizeBehavior::kPreserving;
    case OpKind::kUnion:
      return SizeBehavior::kAdditive;
    case OpKind::kJoin:
    case OpKind::kCrossJoin:
    case OpKind::kUdf:
    case OpKind::kBlackBox:
    case OpKind::kWhile:
      return SizeBehavior::kGenerative;
    case OpKind::kAgg:
    case OpKind::kMax:
    case OpKind::kMin:
    case OpKind::kTopN:
      return SizeBehavior::kConstant;
  }
  return SizeBehavior::kGenerative;
}

int OpArity(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return 0;
    case OpKind::kSelect:
    case OpKind::kProject:
    case OpKind::kMap:
    case OpKind::kDistinct:
    case OpKind::kGroupBy:
    case OpKind::kAgg:
    case OpKind::kMax:
    case OpKind::kMin:
    case OpKind::kTopN:
    case OpKind::kSort:
      return 1;
    case OpKind::kJoin:
    case OpKind::kCrossJoin:
    case OpKind::kUnion:
    case OpKind::kIntersect:
    case OpKind::kDifference:
      return 2;
    case OpKind::kWhile:
    case OpKind::kUdf:
    case OpKind::kBlackBox:
      return -1;  // variable
  }
  return -1;
}

std::string OperatorNode::DebugString() const {
  std::ostringstream os;
  os << OpKindName(kind);
  switch (kind) {
    case OpKind::kInput:
      os << "[" << std::get<InputParams>(params).relation << "]";
      break;
    case OpKind::kSelect:
      os << "[" << std::get<SelectParams>(params).condition->ToString() << "]";
      break;
    case OpKind::kProject: {
      const auto& p = std::get<ProjectParams>(params);
      os << "[";
      for (size_t i = 0; i < p.columns.size(); ++i) {
        os << (i > 0 ? "," : "") << p.columns[i];
      }
      os << "]";
      break;
    }
    case OpKind::kJoin: {
      const auto& p = std::get<JoinParams>(params);
      os << "[" << p.left_key << "=" << p.right_key << "]";
      break;
    }
    case OpKind::kGroupBy: {
      const auto& p = std::get<GroupByParams>(params);
      os << "[";
      for (size_t i = 0; i < p.group_columns.size(); ++i) {
        os << (i > 0 ? "," : "") << p.group_columns[i];
      }
      os << ";";
      for (size_t i = 0; i < p.aggs.size(); ++i) {
        os << (i > 0 ? "," : "") << AggFnName(p.aggs[i].fn) << "(" << p.aggs[i].column
           << ")";
      }
      os << "]";
      break;
    }
    case OpKind::kWhile: {
      const auto& p = std::get<WhileParams>(params);
      os << "[x" << p.iterations << "]";
      break;
    }
    case OpKind::kMax:
    case OpKind::kMin:
      os << "[" << std::get<ExtremeParams>(params).column << "]";
      break;
    case OpKind::kUdf:
      os << "[" << std::get<UdfParams>(params).name << "]";
      break;
    default:
      break;
  }
  os << " -> " << output;
  return os.str();
}

}  // namespace musketeer
