// IR operator nodes.
//
// Musketeer's intermediate representation is a DAG of data-flow operators
// (§4.2 of the paper). The initial operator set is loosely based on
// relational algebra — SELECT, PROJECT, UNION, INTERSECT, JOIN, DIFFERENCE,
// aggregators (AGG, GROUP BY), column-level algebraic operations
// (SUM/SUB/DIV/MUL, here a generalized MAP over expressions), extremes
// (MAX/MIN) — plus WHILE for data-dependent iteration, UDFs and black-box
// operators for computations with no native IR equivalent.

#ifndef MUSKETEER_SRC_IR_OPERATOR_H_
#define MUSKETEER_SRC_IR_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/ir/expr.h"
#include "src/relational/table.h"

namespace musketeer {

class Dag;  // defined in src/ir/dag.h; WHILE bodies are nested DAGs

enum class OpKind {
  kInput,       // reads a named base relation from the DFS
  kSelect,      // filter rows by a predicate expression
  kProject,     // keep a subset of columns
  kMap,         // computed projection (column arithmetic: SUM/SUB/MUL/DIV)
  kJoin,        // equi-join on one key column per side
  kCrossJoin,   // Cartesian product
  kUnion,       // bag union
  kIntersect,   // set intersection
  kDifference,  // set difference
  kDistinct,    // duplicate elimination
  kGroupBy,     // group by columns + aggregations
  kAgg,         // global aggregation (GROUP BY with no keys)
  kMax,         // row with the maximum value of a column
  kMin,         // row with the minimum value of a column
  kTopN,        // N rows with the largest values of a column (extension)
  kSort,        // order by columns (extension)
  kWhile,       // fixed-trip-count loop over a nested sub-DAG
  kUdf,         // registered user-defined table function
  kBlackBox,    // native code for a specific back-end, opaque to Musketeer
};

const char* OpKindName(OpKind kind);

// How an operator's output size relates to its input size; drives the cost
// model's data-volume bounds (§5.2: "each operator has bounds on its output
// size based on its behavior").
enum class SizeBehavior {
  kSelective,   // |out| <= |in|               (SELECT, INTERSECT, DISTINCT, ...)
  kPreserving,  // |out| == |in| (maybe narrower rows)   (PROJECT, MAP)
  kAdditive,    // |out| == sum of inputs       (UNION)
  kGenerative,  // unbounded without history    (JOIN, CROSS JOIN, UDF)
  kConstant,    // O(1) rows                    (AGG, MAX, MIN, TOP-N)
};

SizeBehavior OpSizeBehavior(OpKind kind);

// ---- Per-kind parameter payloads -----------------------------------------

struct InputParams {
  std::string relation;  // DFS name of the base relation
};

struct SelectParams {
  ExprPtr condition;
};

struct ProjectParams {
  std::vector<std::string> columns;
};

// One output column of a MAP: name plus defining expression.
struct NamedExpr {
  std::string name;
  ExprPtr expr;
};

struct MapParams {
  std::vector<NamedExpr> outputs;  // full output column list, in order
};

struct JoinParams {
  std::string left_key;
  std::string right_key;
};

struct CrossJoinParams {};
struct UnionParams {};
struct IntersectParams {};
struct DifferenceParams {};
struct DistinctParams {};

// Named aggregation: function, input column (unused for COUNT), output name.
struct NamedAgg {
  AggFn fn;
  std::string column;
  std::string output_name;
};

struct GroupByParams {
  std::vector<std::string> group_columns;
  std::vector<NamedAgg> aggs;
};

struct AggParams {
  std::vector<NamedAgg> aggs;
};

struct ExtremeParams {
  std::string column;  // maximized for kMax, minimized for kMin
};

struct TopNParams {
  std::string column;
  int64_t n = 1;
};

struct SortParams {
  std::vector<std::string> columns;
};

// Rebinds a relation between loop iterations: the body reads `loop_input`,
// and after every iteration it is replaced by the body relation
// `body_output`. The WHILE node's inputs provide initial values, positionally
// matching `bindings`.
struct LoopBinding {
  std::string loop_input;
  std::string body_output;
};

struct WhileParams {
  int64_t iterations = 1;               // trip count (ITERATION_STOP), or the
                                        // upper bound when until_fixpoint
  std::shared_ptr<const Dag> body;      // nested sub-DAG executed per trip
  std::vector<LoopBinding> bindings;    // loop-carried relations
  std::string result;                   // body relation returned after the loop
  // Data-dependent iteration (§4.2: the WHILE operator extends the DAG based
  // on operators' output): stop as soon as every loop-carried relation is
  // unchanged from the previous trip, up to `iterations` trips.
  bool until_fixpoint = false;
};

using UdfFn =
    std::function<StatusOr<Table>(const std::vector<const Table*>& inputs)>;

struct UdfParams {
  std::string name;
  Schema output_schema;
  UdfFn fn;  // executed by all engines; engines charge generic UDF rates
};

struct BlackBoxParams {
  std::string backend;  // only this engine can run the operator
  std::string code;     // opaque native job payload (displayed, not parsed)
  Schema output_schema;
  UdfFn fn;  // simulation hook so results stay computable
};

using OpParams =
    std::variant<InputParams, SelectParams, ProjectParams, MapParams, JoinParams,
                 CrossJoinParams, UnionParams, IntersectParams, DifferenceParams,
                 DistinctParams, GroupByParams, AggParams, ExtremeParams,
                 TopNParams, SortParams, WhileParams, UdfParams, BlackBoxParams>;

// A node in the IR DAG. `inputs` reference producing node ids in the same
// DAG and are always smaller than the node's own id (DAGs are built in
// topological order, which also guarantees acyclicity).
struct OperatorNode {
  int id = -1;
  OpKind kind = OpKind::kInput;
  std::string output;       // name of the relation this operator defines
  std::vector<int> inputs;  // producer node ids
  OpParams params;

  // Short human-readable description, e.g. "JOIN[locs.id=prices.id] -> id_price".
  std::string DebugString() const;
};

// Expected number of data inputs for an operator kind (-1 = variable).
int OpArity(OpKind kind);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_IR_OPERATOR_H_
