#include "src/ir/dag.h"

#include <sstream>
#include <unordered_set>

namespace musketeer {

namespace {

// Infers the output schema of a single (non-WHILE) operator from its input
// schemas. Shared by Dag::InferSchemas.
StatusOr<Schema> InferNodeSchema(const OperatorNode& node,
                                 const std::vector<const Schema*>& in) {
  switch (node.kind) {
    case OpKind::kInput:
      return InternalError("kInput handled by caller");
    case OpKind::kSelect: {
      const auto& p = std::get<SelectParams>(node.params);
      if (!p.condition->ResolvesAgainst(*in[0])) {
        return InvalidArgumentError("SELECT '" + node.output + "': condition " +
                                    p.condition->ToString() +
                                    " references columns missing from " +
                                    in[0]->ToString());
      }
      return *in[0];
    }
    case OpKind::kProject: {
      const auto& p = std::get<ProjectParams>(node.params);
      Schema out;
      for (const std::string& c : p.columns) {
        auto idx = in[0]->IndexOf(c);
        if (!idx.has_value()) {
          return InvalidArgumentError("PROJECT '" + node.output + "': no column '" +
                                      c + "' in " + in[0]->ToString());
        }
        out.AddField(in[0]->field(*idx));
      }
      return out;
    }
    case OpKind::kMap: {
      const auto& p = std::get<MapParams>(node.params);
      Schema out;
      for (const NamedExpr& ne : p.outputs) {
        MUSKETEER_ASSIGN_OR_RETURN(FieldType t, ne.expr->InferType(*in[0]));
        out.AddField({ne.name, t});
      }
      return out;
    }
    case OpKind::kJoin: {
      const auto& p = std::get<JoinParams>(node.params);
      auto li = in[0]->IndexOf(p.left_key);
      auto ri = in[1]->IndexOf(p.right_key);
      if (!li.has_value() || !ri.has_value()) {
        return InvalidArgumentError("JOIN '" + node.output + "': key missing (" +
                                    p.left_key + " in " + in[0]->ToString() + "; " +
                                    p.right_key + " in " + in[1]->ToString() + ")");
      }
      Schema out;
      out.AddField(in[0]->field(*li));
      for (size_t c = 0; c < in[0]->num_fields(); ++c) {
        if (static_cast<int>(c) != *li) {
          out.AddField(in[0]->field(c));
        }
      }
      for (size_t c = 0; c < in[1]->num_fields(); ++c) {
        if (static_cast<int>(c) != *ri) {
          out.AddField(in[1]->field(c));
        }
      }
      return out;
    }
    case OpKind::kCrossJoin: {
      Schema out;
      for (const Field& f : in[0]->fields()) {
        out.AddField(f);
      }
      for (const Field& f : in[1]->fields()) {
        out.AddField(f);
      }
      return out;
    }
    case OpKind::kUnion:
    case OpKind::kIntersect:
    case OpKind::kDifference: {
      if (in[0]->num_fields() != in[1]->num_fields()) {
        return InvalidArgumentError(std::string(OpKindName(node.kind)) + " '" +
                                    node.output + "': arity mismatch " +
                                    in[0]->ToString() + " vs " + in[1]->ToString());
      }
      return *in[0];
    }
    case OpKind::kDistinct:
    case OpKind::kSort:
      return *in[0];
    case OpKind::kGroupBy:
    case OpKind::kAgg: {
      std::vector<std::string> group_columns;
      std::vector<NamedAgg> aggs;
      if (node.kind == OpKind::kGroupBy) {
        const auto& p = std::get<GroupByParams>(node.params);
        group_columns = p.group_columns;
        aggs = p.aggs;
      } else {
        aggs = std::get<AggParams>(node.params).aggs;
      }
      Schema out;
      for (const std::string& c : group_columns) {
        auto idx = in[0]->IndexOf(c);
        if (!idx.has_value()) {
          return InvalidArgumentError("GROUP BY '" + node.output + "': no column '" +
                                      c + "' in " + in[0]->ToString());
        }
        out.AddField(in[0]->field(*idx));
      }
      for (const NamedAgg& a : aggs) {
        FieldType t = FieldType::kDouble;
        if (a.fn == AggFn::kCount) {
          t = FieldType::kInt64;
        } else {
          auto idx = in[0]->IndexOf(a.column);
          if (!idx.has_value()) {
            return InvalidArgumentError("AGG '" + node.output + "': no column '" +
                                        a.column + "' in " + in[0]->ToString());
          }
          if (in[0]->field(*idx).type == FieldType::kInt64 &&
              (a.fn == AggFn::kSum || a.fn == AggFn::kMin || a.fn == AggFn::kMax)) {
            t = FieldType::kInt64;
          }
          if (in[0]->field(*idx).type == FieldType::kString) {
            return InvalidArgumentError("AGG '" + node.output +
                                        "': aggregating string column '" + a.column +
                                        "'");
          }
        }
        out.AddField({a.output_name, t});
      }
      return out;
    }
    case OpKind::kMax:
    case OpKind::kMin: {
      const auto& p = std::get<ExtremeParams>(node.params);
      if (!in[0]->IndexOf(p.column).has_value()) {
        return InvalidArgumentError(std::string(OpKindName(node.kind)) + " '" +
                                    node.output + "': no column '" + p.column +
                                    "' in " + in[0]->ToString());
      }
      return *in[0];
    }
    case OpKind::kTopN: {
      const auto& p = std::get<TopNParams>(node.params);
      if (!in[0]->IndexOf(p.column).has_value()) {
        return InvalidArgumentError("TOP_N '" + node.output + "': no column '" +
                                    p.column + "' in " + in[0]->ToString());
      }
      return *in[0];
    }
    case OpKind::kWhile:
      return InternalError("kWhile handled by caller");
    case OpKind::kUdf:
      return std::get<UdfParams>(node.params).output_schema;
    case OpKind::kBlackBox:
      return std::get<BlackBoxParams>(node.params).output_schema;
  }
  return InternalError("bad op kind");
}

}  // namespace

int Dag::AddNode(OpKind kind, std::string output, std::vector<int> inputs,
                 OpParams params) {
  OperatorNode node;
  node.id = static_cast<int>(nodes_.size());
  node.kind = kind;
  node.output = std::move(output);
  node.inputs = std::move(inputs);
  node.params = std::move(params);
  consumers_.emplace_back();
  for (int in : node.inputs) {
    if (in >= 0 && in < static_cast<int>(consumers_.size())) {
      // A node reading the same producer twice (self-join) is one consumer.
      if (consumers_[in].empty() || consumers_[in].back() != node.id) {
        consumers_[in].push_back(node.id);
      }
    }
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

int Dag::AddInput(const std::string& relation) {
  return AddNode(OpKind::kInput, relation, {}, InputParams{relation});
}

int Dag::ProducerOf(const std::string& name) const {
  int found = -1;
  for (const OperatorNode& n : nodes_) {
    if (n.output == name) {
      found = n.id;
    }
  }
  return found;
}

const std::vector<int>& Dag::ConsumersOf(int id) const {
  return consumers_[id];
}

std::vector<int> Dag::Sinks() const {
  std::vector<bool> consumed(nodes_.size(), false);
  for (const OperatorNode& n : nodes_) {
    for (int in : n.inputs) {
      consumed[in] = true;
    }
  }
  std::vector<int> out;
  for (const OperatorNode& n : nodes_) {
    if (!consumed[n.id]) {
      out.push_back(n.id);
    }
  }
  return out;
}

Status Dag::Validate() const {
  std::unordered_set<std::string> names;
  for (const OperatorNode& n : nodes_) {
    for (int in : n.inputs) {
      if (in < 0 || in >= n.id) {
        return InternalError("node " + std::to_string(n.id) +
                             " references input id " + std::to_string(in) +
                             " (must be an earlier node)");
      }
    }
    int arity = OpArity(n.kind);
    if (arity >= 0 && static_cast<int>(n.inputs.size()) != arity) {
      return InvalidArgumentError(std::string(OpKindName(n.kind)) + " '" + n.output +
                                  "' expects " + std::to_string(arity) +
                                  " inputs, has " + std::to_string(n.inputs.size()));
    }
    if (!names.insert(n.output).second) {
      return InvalidArgumentError("relation '" + n.output + "' defined twice");
    }
    if (n.kind == OpKind::kWhile) {
      const auto& p = std::get<WhileParams>(n.params);
      if (p.body == nullptr) {
        return InvalidArgumentError("WHILE '" + n.output + "' has no body");
      }
      if (p.iterations < 1) {
        return InvalidArgumentError("WHILE '" + n.output + "' has trip count " +
                                    std::to_string(p.iterations));
      }
      if (p.bindings.size() > n.inputs.size()) {
        return InvalidArgumentError("WHILE '" + n.output +
                                    "' has more bindings than inputs");
      }
      MUSKETEER_RETURN_IF_ERROR(p.body->Validate());
      for (const LoopBinding& b : p.bindings) {
        if (p.body->ProducerOf(b.body_output) < 0) {
          return InvalidArgumentError("WHILE '" + n.output + "': body relation '" +
                                      b.body_output + "' not produced by body");
        }
      }
      if (p.body->ProducerOf(p.result) < 0) {
        return InvalidArgumentError("WHILE '" + n.output + "': result relation '" +
                                    p.result + "' not produced by body");
      }
    }
  }
  return OkStatus();
}

StatusOr<std::vector<Schema>> Dag::InferSchemas(const SchemaMap& base) const {
  std::vector<Schema> schemas(nodes_.size());
  for (const OperatorNode& n : nodes_) {
    if (n.kind == OpKind::kInput) {
      const auto& p = std::get<InputParams>(n.params);
      auto it = base.find(p.relation);
      if (it == base.end()) {
        return NotFoundError("base relation '" + p.relation + "' has no schema");
      }
      schemas[n.id] = it->second;
      continue;
    }
    if (n.kind == OpKind::kWhile) {
      const auto& p = std::get<WhileParams>(n.params);
      // Body base schemas: outer base relations, plus loop-carried bindings
      // seeded from the WHILE node's own inputs (positional).
      SchemaMap body_base = base;
      for (size_t i = 0; i < p.bindings.size(); ++i) {
        body_base[p.bindings[i].loop_input] = schemas[n.inputs[i]];
      }
      // Non-binding extra inputs are visible under their producing relation
      // names (loop-invariant relations such as the edge list).
      for (size_t i = p.bindings.size(); i < n.inputs.size(); ++i) {
        body_base[nodes_[n.inputs[i]].output] = schemas[n.inputs[i]];
      }
      MUSKETEER_ASSIGN_OR_RETURN(std::vector<Schema> body_schemas,
                                 p.body->InferSchemas(body_base));
      // Loop-carried schemas must be stable across iterations.
      for (size_t i = 0; i < p.bindings.size(); ++i) {
        const Schema& fed = schemas[n.inputs[i]];
        const Schema& produced = body_schemas[p.body->ProducerOf(p.bindings[i].body_output)];
        if (fed.num_fields() != produced.num_fields()) {
          return InvalidArgumentError(
              "WHILE '" + n.output + "': loop-carried relation '" +
              p.bindings[i].loop_input + "' changes arity across iterations (" +
              fed.ToString() + " vs " + produced.ToString() + ")");
        }
      }
      schemas[n.id] = body_schemas[p.body->ProducerOf(p.result)];
      continue;
    }
    std::vector<const Schema*> in;
    in.reserve(n.inputs.size());
    for (int i : n.inputs) {
      in.push_back(&schemas[i]);
    }
    MUSKETEER_ASSIGN_OR_RETURN(schemas[n.id], InferNodeSchema(n, in));
  }
  return schemas;
}

int Dag::TotalOperatorCount() const {
  int count = 0;
  for (const OperatorNode& n : nodes_) {
    if (n.kind == OpKind::kInput) {
      continue;
    }
    if (n.kind == OpKind::kWhile) {
      count += std::get<WhileParams>(n.params).body->TotalOperatorCount();
    } else {
      ++count;
    }
  }
  return count;
}

std::unique_ptr<Dag> Dag::Clone() const {
  auto out = std::make_unique<Dag>();
  for (const OperatorNode& n : nodes_) {
    OpParams params = n.params;
    if (n.kind == OpKind::kWhile) {
      auto& p = std::get<WhileParams>(params);
      p.body = std::shared_ptr<const Dag>(p.body->Clone().release());
    }
    out->AddNode(n.kind, n.output, n.inputs, std::move(params));
  }
  return out;
}

std::string Dag::ToDot() const {
  std::ostringstream os;
  os << "digraph musketeer_ir {\n  rankdir=TB;\n  node [shape=box];\n";
  for (const OperatorNode& n : nodes_) {
    os << "  n" << n.id << " [label=\"" << OpKindName(n.kind) << "\\n" << n.output
       << "\"];\n";
    for (int in : n.inputs) {
      os << "  n" << in << " -> n" << n.id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string Dag::DebugString() const {
  std::ostringstream os;
  for (const OperatorNode& n : nodes_) {
    os << n.id << ": " << n.DebugString();
    if (!n.inputs.empty()) {
      os << "  <- [";
      for (size_t i = 0; i < n.inputs.size(); ++i) {
        os << (i > 0 ? "," : "") << n.inputs[i];
      }
      os << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace musketeer
