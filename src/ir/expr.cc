#include "src/ir/expr.h"

#include <algorithm>
#include <cmath>

namespace musketeer {

namespace {

Value EvalBinary(BinOp op, const Value& a, const Value& b) {
  auto boolean = [](bool v) -> Value { return static_cast<int64_t>(v ? 1 : 0); };
  switch (op) {
    case BinOp::kEq:
      return boolean(ValuesEqual(a, b));
    case BinOp::kNe:
      return boolean(!ValuesEqual(a, b));
    case BinOp::kLt:
      return boolean(CompareValues(a, b) < 0);
    case BinOp::kLe:
      return boolean(CompareValues(a, b) <= 0);
    case BinOp::kGt:
      return boolean(CompareValues(a, b) > 0);
    case BinOp::kGe:
      return boolean(CompareValues(a, b) >= 0);
    case BinOp::kAnd:
      return boolean(AsDouble(a) != 0 && AsDouble(b) != 0);
    case BinOp::kOr:
      return boolean(AsDouble(a) != 0 || AsDouble(b) != 0);
    default:
      break;
  }
  // Arithmetic: stay integral when both sides are ints and op is not division.
  if (a.index() == 0 && b.index() == 0 && op != BinOp::kDiv) {
    int64_t x = std::get<int64_t>(a);
    int64_t y = std::get<int64_t>(b);
    switch (op) {
      case BinOp::kAdd:
        return x + y;
      case BinOp::kSub:
        return x - y;
      case BinOp::kMul:
        return x * y;
      default:
        break;
    }
  }
  double x = AsDouble(a);
  double y = AsDouble(b);
  switch (op) {
    case BinOp::kAdd:
      return x + y;
    case BinOp::kSub:
      return x - y;
    case BinOp::kMul:
      return x * y;
    case BinOp::kDiv:
      return y == 0 ? 0.0 : x / y;
    default:
      return 0.0;
  }
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kAnd:
    case BinOp::kOr:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
  }
  return "?";
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->column_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

ExprPtr Expr::Binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

StatusOr<FieldType> Expr::InferType(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kColumn: {
      auto idx = schema.IndexOf(column_);
      if (!idx.has_value()) {
        return InvalidArgumentError("unknown column '" + column_ + "' in schema " +
                                    schema.ToString());
      }
      return schema.field(*idx).type;
    }
    case ExprKind::kLiteral:
      return ValueType(literal_);
    case ExprKind::kBinary: {
      if (IsComparison(op_)) {
        return FieldType::kInt64;
      }
      MUSKETEER_ASSIGN_OR_RETURN(FieldType lt, lhs_->InferType(schema));
      MUSKETEER_ASSIGN_OR_RETURN(FieldType rt, rhs_->InferType(schema));
      if (lt == FieldType::kString || rt == FieldType::kString) {
        return InvalidArgumentError("arithmetic on string column in " + ToString());
      }
      if (lt == FieldType::kInt64 && rt == FieldType::kInt64 && op_ != BinOp::kDiv) {
        return FieldType::kInt64;
      }
      return FieldType::kDouble;
    }
  }
  return InternalError("bad expr kind");
}

StatusOr<RowProjector> Expr::Compile(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kColumn: {
      auto idx = schema.IndexOf(column_);
      if (!idx.has_value()) {
        return InvalidArgumentError("unknown column '" + column_ + "' in schema " +
                                    schema.ToString());
      }
      int i = *idx;
      return RowProjector([i](const Row& row) { return row[i]; });
    }
    case ExprKind::kLiteral: {
      Value v = literal_;
      return RowProjector([v](const Row&) { return v; });
    }
    case ExprKind::kBinary: {
      MUSKETEER_ASSIGN_OR_RETURN(RowProjector l, lhs_->Compile(schema));
      MUSKETEER_ASSIGN_OR_RETURN(RowProjector r, rhs_->Compile(schema));
      BinOp op = op_;
      return RowProjector(
          [op, l, r](const Row& row) { return EvalBinary(op, l(row), r(row)); });
    }
  }
  return InternalError("bad expr kind");
}

StatusOr<RowPredicate> Expr::CompilePredicate(const Schema& schema) const {
  MUSKETEER_ASSIGN_OR_RETURN(RowProjector proj, Compile(schema));
  return RowPredicate([proj](const Row& row) { return AsDouble(proj(row)) != 0; });
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return column_;
    case ExprKind::kLiteral:
      return ValueToString(literal_);
    case ExprKind::kBinary:
      return "(" + lhs_->ToString() + " " + BinOpName(op_) + " " +
             rhs_->ToString() + ")";
  }
  return "?";
}

bool Expr::ResolvesAgainst(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kColumn:
      return schema.IndexOf(column_).has_value();
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kBinary:
      return lhs_->ResolvesAgainst(schema) && rhs_->ResolvesAgainst(schema);
  }
  return false;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  switch (kind_) {
    case ExprKind::kColumn:
      if (std::find(out->begin(), out->end(), column_) == out->end()) {
        out->push_back(column_);
      }
      return;
    case ExprKind::kLiteral:
      return;
    case ExprKind::kBinary:
      lhs_->CollectColumns(out);
      rhs_->CollectColumns(out);
      return;
  }
}

}  // namespace musketeer
