#include "src/ir/expr.h"

#include <algorithm>
#include <cmath>

namespace musketeer {

namespace {

Value EvalBinary(BinOp op, const Value& a, const Value& b) {
  auto boolean = [](bool v) -> Value { return static_cast<int64_t>(v ? 1 : 0); };
  switch (op) {
    case BinOp::kEq:
      return boolean(ValuesEqual(a, b));
    case BinOp::kNe:
      return boolean(!ValuesEqual(a, b));
    case BinOp::kLt:
      return boolean(CompareValues(a, b) < 0);
    case BinOp::kLe:
      return boolean(CompareValues(a, b) <= 0);
    case BinOp::kGt:
      return boolean(CompareValues(a, b) > 0);
    case BinOp::kGe:
      return boolean(CompareValues(a, b) >= 0);
    case BinOp::kAnd:
      return boolean(IsTruthy(a) && IsTruthy(b));
    case BinOp::kOr:
      return boolean(IsTruthy(a) || IsTruthy(b));
    default:
      break;
  }
  // Arithmetic: stay integral when both sides are ints and op is not division.
  if (a.index() == 0 && b.index() == 0 && op != BinOp::kDiv) {
    int64_t x = std::get<int64_t>(a);
    int64_t y = std::get<int64_t>(b);
    switch (op) {
      case BinOp::kAdd:
        return x + y;
      case BinOp::kSub:
        return x - y;
      case BinOp::kMul:
        return x * y;
      default:
        break;
    }
  }
  double x = AsDouble(a);
  double y = AsDouble(b);
  switch (op) {
    case BinOp::kAdd:
      return x + y;
    case BinOp::kSub:
      return x - y;
    case BinOp::kMul:
      return x * y;
    case BinOp::kDiv:
      return y == 0 ? 0.0 : x / y;
    default:
      return 0.0;
  }
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kAnd:
    case BinOp::kOr:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
  }
  return "?";
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->column_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

ExprPtr Expr::Binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

StatusOr<FieldType> Expr::InferType(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kColumn: {
      auto idx = schema.IndexOf(column_);
      if (!idx.has_value()) {
        return InvalidArgumentError("unknown column '" + column_ + "' in schema " +
                                    schema.ToString());
      }
      return schema.field(*idx).type;
    }
    case ExprKind::kLiteral:
      return ValueType(literal_);
    case ExprKind::kBinary: {
      if (IsComparison(op_)) {
        return FieldType::kInt64;
      }
      MUSKETEER_ASSIGN_OR_RETURN(FieldType lt, lhs_->InferType(schema));
      MUSKETEER_ASSIGN_OR_RETURN(FieldType rt, rhs_->InferType(schema));
      if (lt == FieldType::kString || rt == FieldType::kString) {
        return InvalidArgumentError("arithmetic on string column in " + ToString());
      }
      if (lt == FieldType::kInt64 && rt == FieldType::kInt64 && op_ != BinOp::kDiv) {
        return FieldType::kInt64;
      }
      return FieldType::kDouble;
    }
  }
  return InternalError("bad expr kind");
}

StatusOr<RowProjector> Expr::Compile(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kColumn: {
      auto idx = schema.IndexOf(column_);
      if (!idx.has_value()) {
        return InvalidArgumentError("unknown column '" + column_ + "' in schema " +
                                    schema.ToString());
      }
      int i = *idx;
      return RowProjector([i](const Row& row) { return row[i]; });
    }
    case ExprKind::kLiteral: {
      Value v = literal_;
      return RowProjector([v](const Row&) { return v; });
    }
    case ExprKind::kBinary: {
      MUSKETEER_ASSIGN_OR_RETURN(RowProjector l, lhs_->Compile(schema));
      MUSKETEER_ASSIGN_OR_RETURN(RowProjector r, rhs_->Compile(schema));
      BinOp op = op_;
      return RowProjector(
          [op, l, r](const Row& row) { return EvalBinary(op, l(row), r(row)); });
    }
  }
  return InternalError("bad expr kind");
}

StatusOr<RowPredicate> Expr::CompilePredicate(const Schema& schema) const {
  MUSKETEER_ASSIGN_OR_RETURN(RowProjector proj, Compile(schema));
  return RowPredicate([proj](const Row& row) { return IsTruthy(proj(row)); });
}

namespace {

// A compiled expression tree for batch evaluation: columns resolved to
// indices, every node annotated with its static result type (the same rules
// as InferType).
struct BatchNode {
  ExprKind kind = ExprKind::kLiteral;
  FieldType type = FieldType::kInt64;
  int col = -1;
  Value literal = static_cast<int64_t>(0);
  BinOp op = BinOp::kAdd;
  std::unique_ptr<BatchNode> lhs;
  std::unique_ptr<BatchNode> rhs;
};

// A node's evaluation result over rows [begin, end): a borrowed input column
// (indexed begin+k), an owned column of length end-begin (indexed k), or a
// scalar (literal subtrees).
struct EvalOut {
  const Column* borrowed = nullptr;
  Column owned;
  bool is_scalar = false;
  Value scalar = static_cast<int64_t>(0);
};

Value EvalOutValueAt(const EvalOut& e, size_t begin, size_t k) {
  if (e.is_scalar) {
    return e.scalar;
  }
  const Column& c = e.borrowed != nullptr ? *e.borrowed : e.owned;
  size_t off = e.borrowed != nullptr ? begin : 0;
  return c.ValueAt(off + k);
}

// Invokes fn with a `double(size_t k)` accessor over a numeric operand
// (scalar, borrowed or owned; int64 cells widen like AsDouble).
template <typename Fn>
auto WithDoubleAcc(const EvalOut& e, size_t begin, Fn&& fn) {
  if (e.is_scalar) {
    double s = AsDouble(e.scalar);
    return fn([s](size_t) { return s; });
  }
  const Column& c = e.borrowed != nullptr ? *e.borrowed : e.owned;
  size_t off = e.borrowed != nullptr ? begin : 0;
  if (c.type() == FieldType::kInt64) {
    const int64_t* p = c.ints().data() + off;
    return fn([p](size_t k) { return static_cast<double>(p[k]); });
  }
  const double* p = c.doubles().data() + off;
  return fn([p](size_t k) { return p[k]; });
}

// Invokes fn with an `int64_t(size_t k)` accessor; only valid when the
// operand's static type is kInt64.
template <typename Fn>
auto WithInt64Acc(const EvalOut& e, size_t begin, Fn&& fn) {
  if (e.is_scalar) {
    int64_t s = AsInt64(e.scalar);
    return fn([s](size_t) { return s; });
  }
  const Column& c = e.borrowed != nullptr ? *e.borrowed : e.owned;
  size_t off = e.borrowed != nullptr ? begin : 0;
  const int64_t* p = c.ints().data() + off;
  return fn([p](size_t k) { return p[k]; });
}

bool IsArithmetic(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
      return true;
    default:
      return false;
  }
}

EvalOut EvalNode(const BatchNode& n, const Table& t, size_t begin, size_t end);

// kBinary evaluation with typed loops. Semantics mirror EvalBinary exactly:
// int-int comparisons are exact, mixed comparisons go through the double
// view, AND/OR use IsTruthy, arithmetic stays integral for int-int non-DIV,
// DIV by zero yields 0.0. Any string operand takes the per-cell slow path
// (only comparisons and logic can carry strings past InferType).
Column EvalBinaryBatch(const BatchNode& n, const EvalOut& l, const EvalOut& r,
                       size_t begin, size_t end) {
  const size_t len = end - begin;
  const FieldType lt = n.lhs->type;
  const FieldType rt = n.rhs->type;

  if (lt == FieldType::kString || rt == FieldType::kString) {
    Column out(FieldType::kInt64);
    std::vector<int64_t>& v = *out.mutable_ints();
    v.resize(len);
    for (size_t k = 0; k < len; ++k) {
      v[k] = AsInt64(EvalBinary(n.op, EvalOutValueAt(l, begin, k),
                                EvalOutValueAt(r, begin, k)));
    }
    return out;
  }

  const bool both_int = lt == FieldType::kInt64 && rt == FieldType::kInt64;

  if (IsArithmetic(n.op)) {
    if (both_int && n.op != BinOp::kDiv) {
      Column out(FieldType::kInt64);
      std::vector<int64_t>& v = *out.mutable_ints();
      v.resize(len);
      WithInt64Acc(l, begin, [&](auto la) {
        WithInt64Acc(r, begin, [&](auto ra) {
          switch (n.op) {
            case BinOp::kAdd:
              for (size_t k = 0; k < len; ++k) v[k] = la(k) + ra(k);
              break;
            case BinOp::kSub:
              for (size_t k = 0; k < len; ++k) v[k] = la(k) - ra(k);
              break;
            default:  // kMul
              for (size_t k = 0; k < len; ++k) v[k] = la(k) * ra(k);
              break;
          }
        });
      });
      return out;
    }
    Column out(FieldType::kDouble);
    std::vector<double>& v = *out.mutable_doubles();
    v.resize(len);
    WithDoubleAcc(l, begin, [&](auto la) {
      WithDoubleAcc(r, begin, [&](auto ra) {
        switch (n.op) {
          case BinOp::kAdd:
            for (size_t k = 0; k < len; ++k) v[k] = la(k) + ra(k);
            break;
          case BinOp::kSub:
            for (size_t k = 0; k < len; ++k) v[k] = la(k) - ra(k);
            break;
          case BinOp::kMul:
            for (size_t k = 0; k < len; ++k) v[k] = la(k) * ra(k);
            break;
          default:  // kDiv; division by zero yields 0.0 like EvalBinary
            for (size_t k = 0; k < len; ++k) {
              double y = ra(k);
              v[k] = y == 0 ? 0.0 : la(k) / y;
            }
            break;
        }
      });
    });
    return out;
  }

  // Comparisons and logic produce an int64 0/1 mask.
  Column out(FieldType::kInt64);
  std::vector<int64_t>& v = *out.mutable_ints();
  v.resize(len);
  auto fill = [&](auto la, auto ra) {
    switch (n.op) {
      case BinOp::kEq:
        for (size_t k = 0; k < len; ++k) v[k] = la(k) == ra(k) ? 1 : 0;
        break;
      case BinOp::kNe:
        for (size_t k = 0; k < len; ++k) v[k] = la(k) != ra(k) ? 1 : 0;
        break;
      case BinOp::kLt:
        for (size_t k = 0; k < len; ++k) v[k] = la(k) < ra(k) ? 1 : 0;
        break;
      case BinOp::kLe:
        for (size_t k = 0; k < len; ++k) v[k] = la(k) <= ra(k) ? 1 : 0;
        break;
      case BinOp::kGt:
        for (size_t k = 0; k < len; ++k) v[k] = la(k) > ra(k) ? 1 : 0;
        break;
      case BinOp::kGe:
        for (size_t k = 0; k < len; ++k) v[k] = la(k) >= ra(k) ? 1 : 0;
        break;
      case BinOp::kAnd:
        // Numeric truthiness: != 0. Nonzero int64 never rounds to 0.0, so
        // the double view is exact here.
        for (size_t k = 0; k < len; ++k)
          v[k] = la(k) != 0 && ra(k) != 0 ? 1 : 0;
        break;
      default:  // kOr
        for (size_t k = 0; k < len; ++k)
          v[k] = la(k) != 0 || ra(k) != 0 ? 1 : 0;
        break;
    }
  };
  if (both_int && n.op != BinOp::kAnd && n.op != BinOp::kOr) {
    // Exact integer comparison (CompareValues compares int-int exactly, not
    // through the double view).
    WithInt64Acc(l, begin,
                 [&](auto la) { WithInt64Acc(r, begin, [&](auto ra) { fill(la, ra); }); });
  } else {
    WithDoubleAcc(l, begin,
                  [&](auto la) { WithDoubleAcc(r, begin, [&](auto ra) { fill(la, ra); }); });
  }
  return out;
}

EvalOut EvalNode(const BatchNode& n, const Table& t, size_t begin, size_t end) {
  EvalOut out;
  switch (n.kind) {
    case ExprKind::kColumn:
      out.borrowed = &t.col(n.col);
      return out;
    case ExprKind::kLiteral:
      out.is_scalar = true;
      out.scalar = n.literal;
      return out;
    case ExprKind::kBinary: {
      EvalOut l = EvalNode(*n.lhs, t, begin, end);
      EvalOut r = EvalNode(*n.rhs, t, begin, end);
      out.owned = EvalBinaryBatch(n, l, r, begin, end);
      return out;
    }
  }
  return out;
}

StatusOr<std::unique_ptr<BatchNode>> BuildBatchNode(const Expr& e,
                                                    const Schema& schema) {
  auto n = std::make_unique<BatchNode>();
  n->kind = e.kind();
  MUSKETEER_ASSIGN_OR_RETURN(n->type, e.InferType(schema));
  switch (e.kind()) {
    case ExprKind::kColumn:
      n->col = static_cast<int>(*schema.IndexOf(e.column_name()));
      return n;
    case ExprKind::kLiteral:
      n->literal = e.literal();
      return n;
    case ExprKind::kBinary: {
      n->op = e.op();
      MUSKETEER_ASSIGN_OR_RETURN(n->lhs, BuildBatchNode(*e.lhs(), schema));
      MUSKETEER_ASSIGN_OR_RETURN(n->rhs, BuildBatchNode(*e.rhs(), schema));
      return n;
    }
  }
  return InternalError("bad expr kind");
}

// Materializes an EvalOut into a standalone column of length end-begin.
Column MaterializeEvalOut(EvalOut&& e, FieldType type, size_t begin,
                          size_t end) {
  if (e.borrowed != nullptr) {
    return e.borrowed->Slice(begin, end);
  }
  if (!e.is_scalar) {
    return std::move(e.owned);
  }
  const size_t len = end - begin;
  Column out(type);
  switch (type) {
    case FieldType::kInt64:
      out.mutable_ints()->assign(len, AsInt64(e.scalar));
      break;
    case FieldType::kDouble:
      out.mutable_doubles()->assign(len, AsDouble(e.scalar));
      break;
    case FieldType::kString:
      out.mutable_strings()->assign(len, std::get<std::string>(e.scalar));
      break;
  }
  return out;
}

// Fills mask[0 .. end-begin) with the truthiness of `n` over rows
// [begin, end). Comparisons fill the mask directly from the typed operand
// accessors (same exact-int / double-view dispatch as EvalBinaryBatch, so
// the kept set matches bit for bit); AND/OR combine child masks byte-wise.
// Everything else falls back to evaluating the node and testing truthiness
// of the result column — value-identical to IsTruthy(EvalBinary(...)).
void MaskFromNode(const BatchNode& n, const Table& t, size_t begin, size_t end,
                  uint8_t* mask) {
  const size_t len = end - begin;
  if (n.kind == ExprKind::kBinary && n.lhs->type != FieldType::kString &&
      n.rhs->type != FieldType::kString) {
    if (n.op == BinOp::kAnd || n.op == BinOp::kOr) {
      // Child masks are the children's truthiness, which is exactly what
      // EvalBinary's IsTruthy(a) && IsTruthy(b) consumes.
      MaskFromNode(*n.lhs, t, begin, end, mask);
      std::vector<uint8_t> tmp(len);
      MaskFromNode(*n.rhs, t, begin, end, tmp.data());
      if (n.op == BinOp::kAnd) {
        for (size_t k = 0; k < len; ++k) mask[k] &= tmp[k];
      } else {
        for (size_t k = 0; k < len; ++k) mask[k] |= tmp[k];
      }
      return;
    }
    if (!IsArithmetic(n.op)) {
      // Comparison: write the 0/1 result straight into the byte mask.
      EvalOut l = EvalNode(*n.lhs, t, begin, end);
      EvalOut r = EvalNode(*n.rhs, t, begin, end);
      const bool both_int = n.lhs->type == FieldType::kInt64 &&
                            n.rhs->type == FieldType::kInt64;
      auto fill = [&](auto la, auto ra) {
        switch (n.op) {
          case BinOp::kEq:
            for (size_t k = 0; k < len; ++k) mask[k] = la(k) == ra(k) ? 1 : 0;
            break;
          case BinOp::kNe:
            for (size_t k = 0; k < len; ++k) mask[k] = la(k) != ra(k) ? 1 : 0;
            break;
          case BinOp::kLt:
            for (size_t k = 0; k < len; ++k) mask[k] = la(k) < ra(k) ? 1 : 0;
            break;
          case BinOp::kLe:
            for (size_t k = 0; k < len; ++k) mask[k] = la(k) <= ra(k) ? 1 : 0;
            break;
          case BinOp::kGt:
            for (size_t k = 0; k < len; ++k) mask[k] = la(k) > ra(k) ? 1 : 0;
            break;
          default:  // kGe
            for (size_t k = 0; k < len; ++k) mask[k] = la(k) >= ra(k) ? 1 : 0;
            break;
        }
      };
      if (both_int) {
        WithInt64Acc(l, begin, [&](auto la) {
          WithInt64Acc(r, begin, [&](auto ra) { fill(la, ra); });
        });
      } else {
        WithDoubleAcc(l, begin, [&](auto la) {
          WithDoubleAcc(r, begin, [&](auto ra) { fill(la, ra); });
        });
      }
      return;
    }
  }

  // Fallback: evaluate the node, then test truthiness per cell (non-zero
  // numeric; strings are falsy — IsTruthy's rules).
  EvalOut out = EvalNode(n, t, begin, end);
  if (out.is_scalar) {
    std::fill(mask, mask + len, static_cast<uint8_t>(IsTruthy(out.scalar)));
    return;
  }
  const Column& c = out.borrowed != nullptr ? *out.borrowed : out.owned;
  const size_t off = out.borrowed != nullptr ? begin : 0;
  switch (c.type()) {
    case FieldType::kInt64: {
      const int64_t* v = c.ints().data() + off;
      for (size_t k = 0; k < len; ++k) mask[k] = v[k] != 0 ? 1 : 0;
      return;
    }
    case FieldType::kDouble: {
      const double* v = c.doubles().data() + off;
      for (size_t k = 0; k < len; ++k) mask[k] = v[k] != 0 ? 1 : 0;
      return;
    }
    case FieldType::kString:
      std::fill(mask, mask + len, static_cast<uint8_t>(0));
      return;
  }
}

}  // namespace

StatusOr<MaskEval> Expr::CompileMask(const Schema& schema) const {
  MUSKETEER_ASSIGN_OR_RETURN(std::unique_ptr<BatchNode> built,
                             BuildBatchNode(*this, schema));
  std::shared_ptr<const BatchNode> root = std::move(built);
  return MaskEval(
      [root](const Table& t, size_t begin, size_t end, uint8_t* mask) {
        MaskFromNode(*root, t, begin, end, mask);
      });
}

StatusOr<BatchEval> Expr::CompileBatch(const Schema& schema) const {
  MUSKETEER_ASSIGN_OR_RETURN(std::unique_ptr<BatchNode> built,
                             BuildBatchNode(*this, schema));
  std::shared_ptr<const BatchNode> root = std::move(built);
  return BatchEval(
      [root](const Table& t, size_t begin, size_t end) -> musketeer::Column {
        EvalOut out = EvalNode(*root, t, begin, end);
        return MaterializeEvalOut(std::move(out), root->type, begin, end);
      });
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return column_;
    case ExprKind::kLiteral:
      return ValueToString(literal_);
    case ExprKind::kBinary:
      return "(" + lhs_->ToString() + " " + BinOpName(op_) + " " +
             rhs_->ToString() + ")";
  }
  return "?";
}

bool Expr::ResolvesAgainst(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kColumn:
      return schema.IndexOf(column_).has_value();
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kBinary:
      return lhs_->ResolvesAgainst(schema) && rhs_->ResolvesAgainst(schema);
  }
  return false;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  switch (kind_) {
    case ExprKind::kColumn:
      if (std::find(out->begin(), out->end(), column_) == out->end()) {
        out->push_back(column_);
      }
      return;
    case ExprKind::kLiteral:
      return;
    case ExprKind::kBinary:
      lhs_->CollectColumns(out);
      rhs_->CollectColumns(out);
      return;
  }
}

}  // namespace musketeer
