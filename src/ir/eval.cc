#include "src/ir/eval.h"

#include "src/base/cancel.h"
#include "src/relational/ops.h"

namespace musketeer {

namespace {

StatusOr<Table> EvalGroupByLike(const OperatorNode& node, const Table& in) {
  std::vector<std::string> group_columns;
  std::vector<NamedAgg> aggs;
  if (node.kind == OpKind::kGroupBy) {
    const auto& p = std::get<GroupByParams>(node.params);
    group_columns = p.group_columns;
    aggs = p.aggs;
  } else {
    aggs = std::get<AggParams>(node.params).aggs;
  }
  std::vector<int> group_idx;
  for (const std::string& c : group_columns) {
    auto idx = in.schema().IndexOf(c);
    if (!idx.has_value()) {
      return InvalidArgumentError("GROUP BY: no column '" + c + "'");
    }
    group_idx.push_back(*idx);
  }
  std::vector<AggSpec> specs;
  for (const NamedAgg& a : aggs) {
    int col = 0;
    if (a.fn != AggFn::kCount) {
      auto idx = in.schema().IndexOf(a.column);
      if (!idx.has_value()) {
        return InvalidArgumentError("AGG: no column '" + a.column + "'");
      }
      col = *idx;
    }
    specs.push_back(AggSpec{a.fn, col, a.output_name});
  }
  return GroupByAgg(in, group_idx, specs);
}

}  // namespace

StatusOr<Table> EvaluateOperator(const OperatorNode& node,
                                 const std::vector<const Table*>& inputs) {
  switch (node.kind) {
    case OpKind::kInput:
    case OpKind::kWhile:
      return InternalError(std::string(OpKindName(node.kind)) +
                           " must be handled by the DAG executor");
    case OpKind::kSelect: {
      const auto& p = std::get<SelectParams>(node.params);
      // Column-at-a-time predicate evaluation over the batch-compiled
      // expression; rows with a truthy mask cell are gathered.
      MUSKETEER_ASSIGN_OR_RETURN(BatchEval pred,
                                 p.condition->CompileBatch(inputs[0]->schema()));
      return SelectRowsBatch(*inputs[0], pred);
    }
    case OpKind::kProject: {
      const auto& p = std::get<ProjectParams>(node.params);
      std::vector<int> cols;
      for (const std::string& c : p.columns) {
        auto idx = inputs[0]->schema().IndexOf(c);
        if (!idx.has_value()) {
          return InvalidArgumentError("PROJECT: no column '" + c + "' in " +
                                      inputs[0]->schema().ToString());
        }
        cols.push_back(*idx);
      }
      return ProjectColumns(*inputs[0], cols);
    }
    case OpKind::kMap: {
      const auto& p = std::get<MapParams>(node.params);
      Schema out_schema;
      std::vector<BatchEval> exprs;
      for (const NamedExpr& ne : p.outputs) {
        MUSKETEER_ASSIGN_OR_RETURN(FieldType t, ne.expr->InferType(inputs[0]->schema()));
        out_schema.AddField({ne.name, t});
        MUSKETEER_ASSIGN_OR_RETURN(BatchEval eval,
                                   ne.expr->CompileBatch(inputs[0]->schema()));
        // Coerce to the inferred type so downstream type checks hold even
        // when a mixed int/double expression evaluates integral. (CompileBatch
        // output type equals InferType, so only int64 → double widening can
        // be needed here.)
        if (t == FieldType::kDouble) {
          exprs.emplace_back([eval](const Table& in, size_t begin,
                                    size_t end) -> Column {
            Column c = eval(in, begin, end);
            if (c.type() != FieldType::kInt64) {
              return c;
            }
            Column out(FieldType::kDouble);
            std::vector<double>& v = *out.mutable_doubles();
            const std::vector<int64_t>& iv = c.ints();
            v.reserve(iv.size());
            for (int64_t x : iv) v.push_back(static_cast<double>(x));
            return out;
          });
        } else {
          exprs.push_back(eval);
        }
      }
      return MapRowsBatch(*inputs[0], out_schema, exprs);
    }
    case OpKind::kJoin: {
      const auto& p = std::get<JoinParams>(node.params);
      auto li = inputs[0]->schema().IndexOf(p.left_key);
      auto ri = inputs[1]->schema().IndexOf(p.right_key);
      if (!li.has_value() || !ri.has_value()) {
        return InvalidArgumentError("JOIN: key column missing");
      }
      return HashJoin(*inputs[0], *inputs[1], *li, *ri);
    }
    case OpKind::kCrossJoin:
      return CrossJoin(*inputs[0], *inputs[1]);
    case OpKind::kUnion:
      return UnionAll(*inputs[0], *inputs[1]);
    case OpKind::kIntersect:
      return Intersect(*inputs[0], *inputs[1]);
    case OpKind::kDifference:
      return Difference(*inputs[0], *inputs[1]);
    case OpKind::kDistinct:
      return Distinct(*inputs[0]);
    case OpKind::kGroupBy:
    case OpKind::kAgg:
      return EvalGroupByLike(node, *inputs[0]);
    case OpKind::kMax:
    case OpKind::kMin: {
      const auto& p = std::get<ExtremeParams>(node.params);
      auto idx = inputs[0]->schema().IndexOf(p.column);
      if (!idx.has_value()) {
        return InvalidArgumentError("MAX/MIN: no column '" + p.column + "'");
      }
      return ExtremeRow(*inputs[0], *idx, node.kind == OpKind::kMax);
    }
    case OpKind::kTopN: {
      const auto& p = std::get<TopNParams>(node.params);
      auto idx = inputs[0]->schema().IndexOf(p.column);
      if (!idx.has_value()) {
        return InvalidArgumentError("TOP_N: no column '" + p.column + "'");
      }
      return TopNBy(*inputs[0], *idx, static_cast<size_t>(p.n));
    }
    case OpKind::kSort: {
      const auto& p = std::get<SortParams>(node.params);
      std::vector<int> cols;
      for (const std::string& c : p.columns) {
        auto idx = inputs[0]->schema().IndexOf(c);
        if (!idx.has_value()) {
          return InvalidArgumentError("SORT: no column '" + c + "'");
        }
        cols.push_back(*idx);
      }
      return SortBy(*inputs[0], cols);
    }
    case OpKind::kUdf: {
      const auto& p = std::get<UdfParams>(node.params);
      if (!p.fn) {
        return FailedPreconditionError("UDF '" + p.name + "' has no implementation");
      }
      return p.fn(inputs);
    }
    case OpKind::kBlackBox: {
      const auto& p = std::get<BlackBoxParams>(node.params);
      if (!p.fn) {
        return FailedPreconditionError("black-box operator has no simulation hook");
      }
      return p.fn(inputs);
    }
  }
  return InternalError("bad op kind");
}

StatusOr<TableMap> EvaluateDag(const Dag& dag, const TableMap& base) {
  TableMap relations = base;
  std::vector<TablePtr> by_node(dag.num_nodes());

  for (const OperatorNode& node : dag.nodes()) {
    // Cooperative cancellation/deadline checkpoint: one probe per operator
    // batch (and per loop iteration below). No-op unless the executing
    // thread has a ScopedInterrupt installed.
    MUSKETEER_RETURN_IF_ERROR(CheckInterrupt());
    if (node.kind == OpKind::kInput) {
      const auto& p = std::get<InputParams>(node.params);
      auto it = relations.find(p.relation);
      if (it == relations.end()) {
        return NotFoundError("base relation '" + p.relation + "' not provided");
      }
      by_node[node.id] = it->second;
      relations[node.output] = it->second;
      continue;
    }
    if (node.kind == OpKind::kWhile) {
      const auto& p = std::get<WhileParams>(node.params);
      // Seed loop-carried relations from the WHILE node's inputs; pass
      // loop-invariant extra inputs under their producing relation names.
      TableMap body_base = base;
      for (size_t i = 0; i < p.bindings.size(); ++i) {
        body_base[p.bindings[i].loop_input] = by_node[node.inputs[i]];
      }
      for (size_t i = p.bindings.size(); i < node.inputs.size(); ++i) {
        body_base[dag.node(node.inputs[i]).output] = by_node[node.inputs[i]];
      }
      TableMap iter_state;
      for (int64_t iter = 0; iter < p.iterations; ++iter) {
        MUSKETEER_ASSIGN_OR_RETURN(iter_state, EvaluateDag(*p.body, body_base));
        bool stable = p.until_fixpoint;
        for (const LoopBinding& b : p.bindings) {
          TablePtr next = iter_state[b.body_output];
          stable = stable && Table::SameContent(*body_base[b.loop_input], *next);
          body_base[b.loop_input] = std::move(next);
        }
        if (stable) {
          break;
        }
      }
      auto it = iter_state.find(p.result);
      if (it == iter_state.end()) {
        return InternalError("WHILE result relation '" + p.result + "' missing");
      }
      by_node[node.id] = it->second;
      relations[node.output] = it->second;
      continue;
    }
    std::vector<const Table*> inputs;
    inputs.reserve(node.inputs.size());
    for (int i : node.inputs) {
      inputs.push_back(by_node[i].get());
    }
    auto result = EvaluateOperator(node, inputs);
    if (!result.ok()) {
      return Status(result.status().code(),
                    node.DebugString() + ": " + result.status().message());
    }
    auto table = std::make_shared<Table>(std::move(result).value());
    by_node[node.id] = table;
    relations[node.output] = table;
  }
  return relations;
}

StatusOr<Table> EvaluateDagRelation(const Dag& dag, const TableMap& base,
                                    const std::string& name) {
  MUSKETEER_ASSIGN_OR_RETURN(TableMap all, EvaluateDag(dag, base));
  auto it = all.find(name);
  if (it == all.end()) {
    return NotFoundError("relation '" + name + "' not produced by the workflow");
  }
  return *it->second;
}

}  // namespace musketeer
