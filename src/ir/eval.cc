#include "src/ir/eval.h"

#include <algorithm>
#include <unordered_set>

#include "src/base/cancel.h"
#include "src/relational/ops.h"

namespace musketeer {

namespace {

// Resolves a kGroupBy/kAgg node's column names against `schema`.
Status ResolveGroupArgs(const OperatorNode& node, const Schema& schema,
                        std::vector<int>* group_idx,
                        std::vector<AggSpec>* specs) {
  std::vector<std::string> group_columns;
  std::vector<NamedAgg> aggs;
  if (node.kind == OpKind::kGroupBy) {
    const auto& p = std::get<GroupByParams>(node.params);
    group_columns = p.group_columns;
    aggs = p.aggs;
  } else {
    aggs = std::get<AggParams>(node.params).aggs;
  }
  for (const std::string& c : group_columns) {
    auto idx = schema.IndexOf(c);
    if (!idx.has_value()) {
      return InvalidArgumentError("GROUP BY: no column '" + c + "'");
    }
    group_idx->push_back(*idx);
  }
  for (const NamedAgg& a : aggs) {
    int col = 0;
    if (a.fn != AggFn::kCount) {
      auto idx = schema.IndexOf(a.column);
      if (!idx.has_value()) {
        return InvalidArgumentError("AGG: no column '" + a.column + "'");
      }
      col = *idx;
    }
    specs->push_back(AggSpec{a.fn, col, a.output_name});
  }
  return OkStatus();
}

StatusOr<Table> EvalGroupByLike(const OperatorNode& node, const Table& in) {
  std::vector<int> group_idx;
  std::vector<AggSpec> specs;
  MUSKETEER_RETURN_IF_ERROR(
      ResolveGroupArgs(node, in.schema(), &group_idx, &specs));
  return GroupByAgg(in, group_idx, specs);
}

// Compiles a kMap node's output expressions against `schema`, inserting the
// int64 → double widening wrapper where the inferred type is kDouble (a
// mixed int/double expression can evaluate integral; downstream type checks
// rely on the inferred schema).
Status CompileMapExprs(const MapParams& p, const Schema& schema,
                       Schema* out_schema, std::vector<BatchEval>* exprs) {
  for (const NamedExpr& ne : p.outputs) {
    MUSKETEER_ASSIGN_OR_RETURN(FieldType t, ne.expr->InferType(schema));
    out_schema->AddField({ne.name, t});
    MUSKETEER_ASSIGN_OR_RETURN(BatchEval eval, ne.expr->CompileBatch(schema));
    if (t == FieldType::kDouble) {
      exprs->emplace_back([eval](const Table& in, size_t begin,
                                 size_t end) -> Column {
        Column c = eval(in, begin, end);
        if (c.type() != FieldType::kInt64) {
          return c;
        }
        Column out(FieldType::kDouble);
        std::vector<double>& v = *out.mutable_doubles();
        const std::vector<int64_t>& iv = c.ints();
        v.reserve(iv.size());
        for (int64_t x : iv) v.push_back(static_cast<double>(x));
        return out;
      });
    } else {
      exprs->push_back(eval);
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<Table> EvaluateOperator(const OperatorNode& node,
                                 const std::vector<const Table*>& inputs) {
  switch (node.kind) {
    case OpKind::kInput:
    case OpKind::kWhile:
      return InternalError(std::string(OpKindName(node.kind)) +
                           " must be handled by the DAG executor");
    case OpKind::kSelect: {
      const auto& p = std::get<SelectParams>(node.params);
      // Selection-bitmap predicate evaluation: the compiled mask writes one
      // byte per row and the kernel compacts survivors branch-free — no
      // intermediate 0/1 column (kept set identical to CompilePredicate).
      MUSKETEER_ASSIGN_OR_RETURN(MaskEval pred,
                                 p.condition->CompileMask(inputs[0]->schema()));
      return SelectRowsMask(*inputs[0], {pred});
    }
    case OpKind::kProject: {
      const auto& p = std::get<ProjectParams>(node.params);
      std::vector<int> cols;
      for (const std::string& c : p.columns) {
        auto idx = inputs[0]->schema().IndexOf(c);
        if (!idx.has_value()) {
          return InvalidArgumentError("PROJECT: no column '" + c + "' in " +
                                      inputs[0]->schema().ToString());
        }
        cols.push_back(*idx);
      }
      return ProjectColumns(*inputs[0], cols);
    }
    case OpKind::kMap: {
      const auto& p = std::get<MapParams>(node.params);
      Schema out_schema;
      std::vector<BatchEval> exprs;
      MUSKETEER_RETURN_IF_ERROR(
          CompileMapExprs(p, inputs[0]->schema(), &out_schema, &exprs));
      return MapRowsBatch(*inputs[0], out_schema, exprs);
    }
    case OpKind::kJoin: {
      const auto& p = std::get<JoinParams>(node.params);
      auto li = inputs[0]->schema().IndexOf(p.left_key);
      auto ri = inputs[1]->schema().IndexOf(p.right_key);
      if (!li.has_value() || !ri.has_value()) {
        return InvalidArgumentError("JOIN: key column missing");
      }
      return HashJoin(*inputs[0], *inputs[1], *li, *ri);
    }
    case OpKind::kCrossJoin:
      return CrossJoin(*inputs[0], *inputs[1]);
    case OpKind::kUnion:
      return UnionAll(*inputs[0], *inputs[1]);
    case OpKind::kIntersect:
      return Intersect(*inputs[0], *inputs[1]);
    case OpKind::kDifference:
      return Difference(*inputs[0], *inputs[1]);
    case OpKind::kDistinct:
      return Distinct(*inputs[0]);
    case OpKind::kGroupBy:
    case OpKind::kAgg:
      return EvalGroupByLike(node, *inputs[0]);
    case OpKind::kMax:
    case OpKind::kMin: {
      const auto& p = std::get<ExtremeParams>(node.params);
      auto idx = inputs[0]->schema().IndexOf(p.column);
      if (!idx.has_value()) {
        return InvalidArgumentError("MAX/MIN: no column '" + p.column + "'");
      }
      return ExtremeRow(*inputs[0], *idx, node.kind == OpKind::kMax);
    }
    case OpKind::kTopN: {
      const auto& p = std::get<TopNParams>(node.params);
      auto idx = inputs[0]->schema().IndexOf(p.column);
      if (!idx.has_value()) {
        return InvalidArgumentError("TOP_N: no column '" + p.column + "'");
      }
      return TopNBy(*inputs[0], *idx, static_cast<size_t>(p.n));
    }
    case OpKind::kSort: {
      const auto& p = std::get<SortParams>(node.params);
      std::vector<int> cols;
      for (const std::string& c : p.columns) {
        auto idx = inputs[0]->schema().IndexOf(c);
        if (!idx.has_value()) {
          return InvalidArgumentError("SORT: no column '" + c + "'");
        }
        cols.push_back(*idx);
      }
      return SortBy(*inputs[0], cols);
    }
    case OpKind::kUdf: {
      const auto& p = std::get<UdfParams>(node.params);
      if (!p.fn) {
        return FailedPreconditionError("UDF '" + p.name + "' has no implementation");
      }
      return p.fn(inputs);
    }
    case OpKind::kBlackBox: {
      const auto& p = std::get<BlackBoxParams>(node.params);
      if (!p.fn) {
        return FailedPreconditionError("black-box operator has no simulation hook");
      }
      return p.fn(inputs);
    }
  }
  return InternalError("bad op kind");
}

namespace {

// Relation names a caller will read from the result map. When non-null, any
// intermediate whose output name is NOT in the set may be elided by operator
// fusion; when null, every node output must be materialized (the public
// EvaluateDag contract).
using NeededSet = std::unordered_set<std::string>;

// A fusible chain: selects* → (map | project)? → (group-by | agg)?, linked
// by single-consumer edges, at least two nodes long. Executing it through
// the fused kernels skips materializing every intermediate while staying
// bit-identical to the node-at-a-time pipeline (see FusedSelectTransformAgg
// for why the aggregate's FP merge tree is preserved).
struct FusedChain {
  std::vector<const OperatorNode*> nodes;
  const OperatorNode* last() const { return nodes.back(); }
};

bool IsChainStart(OpKind k) {
  return k == OpKind::kSelect || k == OpKind::kMap || k == OpKind::kProject;
}

// Plans fusible chains for one DAG evaluation. `consumers[id]` counts reader
// edges; a node can be absorbed only when its single consumer is the next
// chain node and its output relation is not in `needed`.
std::vector<FusedChain> PlanFusedChains(const Dag& dag,
                                        const NeededSet& needed) {
  const size_t n = dag.num_nodes();
  std::vector<int> consumers(n, 0);
  std::vector<int> single_consumer(n, -1);
  for (const OperatorNode& node : dag.nodes()) {
    for (int in : node.inputs) {
      ++consumers[in];
      single_consumer[in] = node.id;
    }
  }
  std::vector<FusedChain> chains;
  std::vector<char> absorbed(n, 0);
  for (const OperatorNode& node : dag.nodes()) {
    if (absorbed[node.id] || !IsChainStart(node.kind)) continue;
    if (node.inputs.size() != 1) continue;
    FusedChain chain;
    chain.nodes.push_back(&node);
    bool have_transform = node.kind != OpKind::kSelect;
    const OperatorNode* cur = &node;
    while (true) {
      if (consumers[cur->id] != 1) break;
      if (needed.count(cur->output) != 0) break;
      const OperatorNode& next = dag.node(single_consumer[cur->id]);
      if (next.inputs.size() != 1) break;
      if (next.kind == OpKind::kSelect && !have_transform) {
        chain.nodes.push_back(&next);
        cur = &next;
        continue;
      }
      if ((next.kind == OpKind::kMap || next.kind == OpKind::kProject) &&
          !have_transform) {
        have_transform = true;
        chain.nodes.push_back(&next);
        cur = &next;
        continue;
      }
      if (next.kind == OpKind::kGroupBy || next.kind == OpKind::kAgg) {
        chain.nodes.push_back(&next);  // terminal aggregate
      }
      break;
    }
    if (chain.nodes.size() < 2) continue;
    for (const OperatorNode* c : chain.nodes) absorbed[c->id] = 1;
    chains.push_back(std::move(chain));
  }
  return chains;
}

// Compiles and runs one fused chain against its input table.
StatusOr<Table> EvaluateFusedChain(const FusedChain& chain, const Table& src) {
  const Schema& in_schema = src.schema();
  std::vector<MaskEval> filters;
  size_t j = 0;
  for (; j < chain.nodes.size() && chain.nodes[j]->kind == OpKind::kSelect;
       ++j) {
    const auto& p = std::get<SelectParams>(chain.nodes[j]->params);
    MUSKETEER_ASSIGN_OR_RETURN(MaskEval m, p.condition->CompileMask(in_schema));
    filters.push_back(std::move(m));
  }
  const OperatorNode* transform = nullptr;
  if (j < chain.nodes.size() && (chain.nodes[j]->kind == OpKind::kMap ||
                                 chain.nodes[j]->kind == OpKind::kProject)) {
    transform = chain.nodes[j];
    ++j;
  }
  const OperatorNode* agg = j < chain.nodes.size() ? chain.nodes[j] : nullptr;

  if (transform == nullptr && agg == nullptr) {
    // Pure select chain: one masked pass over the full schema.
    return SelectRowsMask(src, filters);
  }

  // Build the transform stage. The scratch schema holds only the columns the
  // stage actually reads, and expressions are (re)compiled against it — the
  // column values are identical to the unfused evaluation, so the output is
  // too.
  FusedTransform ft;
  auto add_gather = [&](const std::string& name) -> Status {
    auto idx = in_schema.IndexOf(name);
    if (!idx.has_value()) {
      return InvalidArgumentError("no column '" + name + "' in " +
                                  in_schema.ToString());
    }
    ft.gather_cols.push_back(*idx);
    ft.scratch_schema.AddField(in_schema.field(*idx));
    return OkStatus();
  };
  if (transform != nullptr && transform->kind == OpKind::kProject) {
    const auto& p = std::get<ProjectParams>(transform->params);
    if (p.columns.empty()) {
      // Degenerate zero-column projection: the scratch table could not carry
      // a row count, so run the (cheap) two-step form instead.
      Table sel = SelectRowsMask(src, filters);
      if (agg == nullptr) {
        return ProjectColumns(sel, {});
      }
      MUSKETEER_ASSIGN_OR_RETURN(Table proj, ProjectColumns(sel, {}));
      std::vector<int> group_idx;
      std::vector<AggSpec> specs;
      MUSKETEER_RETURN_IF_ERROR(
          ResolveGroupArgs(*agg, proj.schema(), &group_idx, &specs));
      return GroupByAgg(proj, group_idx, specs);
    }
    for (const std::string& c : p.columns) {
      MUSKETEER_RETURN_IF_ERROR(add_gather(c));
    }
    ft.out_schema = ft.scratch_schema;  // identity over the projected columns
  } else if (transform != nullptr) {
    const auto& p = std::get<MapParams>(transform->params);
    std::vector<std::string> used;
    for (const NamedExpr& ne : p.outputs) {
      ne.expr->CollectColumns(&used);
    }
    if (used.empty() && in_schema.num_fields() > 0) {
      // Literal-only outputs: carry one input column so the scratch block
      // keeps the surviving-row count (zero-column tables report 0 rows).
      used.push_back(in_schema.field(0).name);
    }
    for (const std::string& c : used) {
      MUSKETEER_RETURN_IF_ERROR(add_gather(c));
    }
    MUSKETEER_RETURN_IF_ERROR(
        CompileMapExprs(p, ft.scratch_schema, &ft.out_schema, &ft.exprs));
  } else {
    // Aggregate directly over selected input rows: gather the group and
    // aggregate columns (first-use order, deduplicated).
    std::vector<std::string> used;
    auto add_used = [&](const std::string& c) {
      if (std::find(used.begin(), used.end(), c) == used.end()) {
        used.push_back(c);
      }
    };
    if (agg->kind == OpKind::kGroupBy) {
      const auto& p = std::get<GroupByParams>(agg->params);
      for (const std::string& c : p.group_columns) add_used(c);
      for (const NamedAgg& a : p.aggs) {
        if (a.fn != AggFn::kCount) add_used(a.column);
      }
    } else {
      for (const NamedAgg& a : std::get<AggParams>(agg->params).aggs) {
        if (a.fn != AggFn::kCount) add_used(a.column);
      }
    }
    if (used.empty() && in_schema.num_fields() > 0) {
      // Pure COUNT: keep one column so the block carries the row count.
      used.push_back(in_schema.field(0).name);
    }
    for (const std::string& c : used) {
      MUSKETEER_RETURN_IF_ERROR(add_gather(c));
    }
    ft.out_schema = ft.scratch_schema;
  }

  if (agg == nullptr) {
    return FusedSelectTransform(src, filters, ft);
  }
  std::vector<int> group_idx;
  std::vector<AggSpec> specs;
  MUSKETEER_RETURN_IF_ERROR(
      ResolveGroupArgs(*agg, ft.out_schema, &group_idx, &specs));
  return FusedSelectTransformAgg(src, filters, ft, group_idx, specs);
}

// DAG evaluation with optional operator fusion. `needed` == nullptr keeps
// the public EvaluateDag contract (every node output lands in the relation
// map, nothing fuses); a non-null set lets select→map→aggregate chains whose
// intermediates nobody reads run through the fused kernels.
StatusOr<TableMap> EvaluateDagImpl(const Dag& dag, const TableMap& base,
                                   const NeededSet* needed) {
  TableMap relations = base;
  std::vector<TablePtr> by_node(dag.num_nodes());

  std::vector<FusedChain> chains =
      needed != nullptr ? PlanFusedChains(dag, *needed)
                        : std::vector<FusedChain>();
  // chain_at[id]: chain whose FIRST node is id; fused_into[id]: id of the
  // chain's last node for every absorbed node (skip marker).
  std::vector<const FusedChain*> chain_at(dag.num_nodes(), nullptr);
  std::vector<char> absorbed(dag.num_nodes(), 0);
  for (const FusedChain& c : chains) {
    chain_at[c.nodes.front()->id] = &c;
    for (const OperatorNode* n : c.nodes) absorbed[n->id] = 1;
  }

  for (const OperatorNode& node : dag.nodes()) {
    // Cooperative cancellation/deadline checkpoint: one probe per operator
    // batch (and per loop iteration below). No-op unless the executing
    // thread has a ScopedInterrupt installed.
    MUSKETEER_RETURN_IF_ERROR(CheckInterrupt());
    if (node.kind == OpKind::kInput) {
      const auto& p = std::get<InputParams>(node.params);
      auto it = relations.find(p.relation);
      if (it == relations.end()) {
        return NotFoundError("base relation '" + p.relation + "' not provided");
      }
      by_node[node.id] = it->second;
      relations[node.output] = it->second;
      continue;
    }
    if (node.kind == OpKind::kWhile) {
      const auto& p = std::get<WhileParams>(node.params);
      // Seed loop-carried relations from the WHILE node's inputs; pass
      // loop-invariant extra inputs under their producing relation names.
      TableMap body_base = base;
      for (size_t i = 0; i < p.bindings.size(); ++i) {
        body_base[p.bindings[i].loop_input] = by_node[node.inputs[i]];
      }
      for (size_t i = p.bindings.size(); i < node.inputs.size(); ++i) {
        body_base[dag.node(node.inputs[i]).output] = by_node[node.inputs[i]];
      }
      // Body iterations surface only the loop-carried outputs and the result
      // relation, so fusion inside the body is always safe — regardless of
      // the outer call's `needed` contract.
      NeededSet body_needed;
      for (const LoopBinding& b : p.bindings) {
        body_needed.insert(b.body_output);
      }
      body_needed.insert(p.result);
      TableMap iter_state;
      for (int64_t iter = 0; iter < p.iterations; ++iter) {
        MUSKETEER_ASSIGN_OR_RETURN(
            iter_state, EvaluateDagImpl(*p.body, body_base, &body_needed));
        bool stable = p.until_fixpoint;
        for (const LoopBinding& b : p.bindings) {
          TablePtr next = iter_state[b.body_output];
          stable = stable && Table::SameContent(*body_base[b.loop_input], *next);
          body_base[b.loop_input] = std::move(next);
        }
        if (stable) {
          break;
        }
      }
      auto it = iter_state.find(p.result);
      if (it == iter_state.end()) {
        return InternalError("WHILE result relation '" + p.result + "' missing");
      }
      by_node[node.id] = it->second;
      relations[node.output] = it->second;
      continue;
    }
    if (absorbed[node.id]) {
      const FusedChain* chain = chain_at[node.id];
      if (chain == nullptr) {
        continue;  // interior/terminal chain node; handled at the chain head
      }
      auto result =
          EvaluateFusedChain(*chain, *by_node[chain->nodes.front()->inputs[0]]);
      if (!result.ok()) {
        return Status(result.status().code(),
                      chain->last()->DebugString() + " (fused): " +
                          result.status().message());
      }
      auto table = std::make_shared<Table>(std::move(result).value());
      by_node[chain->last()->id] = table;
      relations[chain->last()->output] = table;
      continue;
    }
    std::vector<const Table*> inputs;
    inputs.reserve(node.inputs.size());
    for (int i : node.inputs) {
      inputs.push_back(by_node[i].get());
    }
    auto result = EvaluateOperator(node, inputs);
    if (!result.ok()) {
      return Status(result.status().code(),
                    node.DebugString() + ": " + result.status().message());
    }
    auto table = std::make_shared<Table>(std::move(result).value());
    by_node[node.id] = table;
    relations[node.output] = table;
  }
  return relations;
}

}  // namespace

StatusOr<TableMap> EvaluateDag(const Dag& dag, const TableMap& base) {
  return EvaluateDagImpl(dag, base, nullptr);
}

StatusOr<Table> EvaluateDagRelation(const Dag& dag, const TableMap& base,
                                    const std::string& name) {
  // Only `name` must survive — everything else is fair game for fusion.
  NeededSet needed{name};
  MUSKETEER_ASSIGN_OR_RETURN(TableMap all, EvaluateDagImpl(dag, base, &needed));
  auto it = all.find(name);
  if (it == all.end()) {
    return NotFoundError("relation '" + name + "' not produced by the workflow");
  }
  return *it->second;
}

}  // namespace musketeer
