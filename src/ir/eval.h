// The reference interpreter for IR operators.
//
// Every simulated engine delegates operator *semantics* to this interpreter
// (so all back-ends produce identical results by construction) and layers its
// own execution strategy and performance model on top. EvaluateDag is the
// ground truth executor used by integration tests to validate engine output.

#ifndef MUSKETEER_SRC_IR_EVAL_H_
#define MUSKETEER_SRC_IR_EVAL_H_

#include <unordered_map>

#include "src/ir/dag.h"
#include "src/relational/table.h"

namespace musketeer {

using TableMap = std::unordered_map<std::string, TablePtr>;

// Executes one non-INPUT, non-WHILE operator on resolved inputs.
StatusOr<Table> EvaluateOperator(const OperatorNode& node,
                                 const std::vector<const Table*>& inputs);

// Executes a whole DAG (including WHILE loops) against `base` relations.
// Returns the relation map of every node output (keyed by relation name).
StatusOr<TableMap> EvaluateDag(const Dag& dag, const TableMap& base);

// Convenience: evaluates and returns only the relation `name`.
StatusOr<Table> EvaluateDagRelation(const Dag& dag, const TableMap& base,
                                    const std::string& name);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_IR_EVAL_H_
