// Scalar expressions used by IR operators (SELECT conditions, column-level
// arithmetic in MAP, WHILE loop predicates).
//
// Expressions are immutable trees shared by shared_ptr, so cloning a DAG (for
// WHILE expansion or partition exploration) is cheap. Columns are referenced
// by *name*; they are resolved to indices against a concrete schema when an
// expression is compiled for execution.

#ifndef MUSKETEER_SRC_IR_EXPR_H_
#define MUSKETEER_SRC_IR_EXPR_H_

#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/relational/ops.h"
#include "src/relational/schema.h"

namespace musketeer {

enum class ExprKind { kColumn, kLiteral, kBinary };

enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinOpName(BinOp op);  // "+", "<", "AND", ...

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  // Factories.
  static ExprPtr Column(std::string name);
  static ExprPtr Literal(Value value);
  static ExprPtr Binary(BinOp op, ExprPtr lhs, ExprPtr rhs);

  ExprKind kind() const { return kind_; }
  const std::string& column_name() const { return column_; }
  const Value& literal() const { return literal_; }
  BinOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  // Infers the result type against `schema`. Comparison/logic yields kInt64
  // (0/1); arithmetic yields kInt64 only if both sides are kInt64 and the op
  // is not division, else kDouble.
  StatusOr<FieldType> InferType(const Schema& schema) const;

  // Compiles to an evaluator bound to column indices of `schema`.
  StatusOr<RowProjector> Compile(const Schema& schema) const;

  // Compiles as a boolean row predicate (non-zero numeric => true).
  StatusOr<RowPredicate> CompilePredicate(const Schema& schema) const;

  // Compiles to a column-at-a-time evaluator: one call computes the
  // expression for a whole row range with typed loops (no per-cell variant
  // dispatch). The output column's type is InferType(schema); results are
  // value-identical to evaluating Compile()'s RowProjector per row.
  StatusOr<BatchEval> CompileBatch(const Schema& schema) const;

  // Compiles as a selection-bitmap evaluator: writes the row's truthiness
  // (1/0) into one byte per row — the predicate form the vectorized kernels
  // consume (SelectRowsMask, the fused pipelines). Top-level comparisons and
  // AND/OR trees fill the mask directly with typed branch-light loops, never
  // materializing the intermediate 0/1 column CompileBatch would produce.
  // Kept rows are exactly those CompilePredicate accepts.
  StatusOr<MaskEval> CompileMask(const Schema& schema) const;

  // Source-like rendering, e.g. "(price > 100) AND (region = 5)".
  std::string ToString() const;

  // True if the expression only references columns present in `schema`.
  bool ResolvesAgainst(const Schema& schema) const;

  // Collects referenced column names into `out` (deduplicated, in first-use
  // order).
  void CollectColumns(std::vector<std::string>* out) const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  std::string column_;
  Value literal_ = static_cast<int64_t>(0);
  BinOp op_ = BinOp::kAdd;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_IR_EXPR_H_
