#include "src/backends/pricing.h"

#include <algorithm>

namespace musketeer {

SimSeconds PriceJob(EngineKind engine, const ClusterConfig& cluster,
                    const JobShape& shape) {
  const EngineRates& rates = RatesFor(engine);
  int nodes = EffectiveNodes(engine, cluster);

  SimSeconds t = rates.job_overhead_s * std::max(1, shape.job_count);

  // PULL: stream inputs from the DFS.
  double pull_bw = PullBandwidth(engine, cluster);
  if (shape.single_threaded_io) {
    pull_bw = MBps(kSingleThreadedPullMbps) * nodes;
  }
  if (shape.pull_bytes > 0) {
    t += shape.pull_bytes / pull_bw;
  }

  // LOAD: engine-specific materialization (RDDs, graph shards).
  double load_bw = LoadBandwidth(engine, cluster);
  if (shape.load_bytes > 0 && load_bw > 0) {
    t += shape.load_bytes / load_bw;
  }

  // PROCESS + shuffle per charged operator.
  double shuffle_bw = ShuffleBandwidth(engine, cluster);
  for (const PricedOp& op : shape.ops) {
    double process_bw = ProcessBandwidth(engine, cluster, op.graph_path) *
                        shape.process_efficiency;
    if (op.single_node) {
      // Non-associative operator: the whole input funnels through one
      // worker's NIC before the operator can be applied.
      t += op.in_bytes / MBps(kSingleNodeCollectMbps);
      continue;
    }
    if (op.shuffle) {
      // Generated code also shuffles less efficiently than hand-tuned jobs
      // (no combiners, generic serialization) — same efficiency knob.
      t += op.in_bytes * rates.shuffle_fraction /
           (shuffle_bw * shape.process_efficiency);
    }
    if (op.charge_process) {
      t += op.in_bytes / process_bw;
    } else {
      t += op.in_bytes * kFusedProcessFraction / process_bw;
    }
  }

  // Iteration synchronization and driver coordination.
  if (shape.supersteps > 0) {
    t += shape.supersteps *
         (rates.superstep_s + rates.coord_s_per_node * nodes);
  }

  // PUSH: write results back to the DFS.
  if (shape.push_bytes > 0) {
    double push_bw = PushBandwidth(engine, cluster);
    if (shape.single_threaded_io) {
      push_bw = MBps(kSingleThreadedPullMbps) * nodes;
    }
    t += shape.push_bytes / push_bw;
  }
  return t;
}

}  // namespace musketeer
