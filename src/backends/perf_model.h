// Engine performance profiles.
//
// These are the PULL / LOAD / PROCESS / PUSH rate parameters of the paper's
// cost function (Table 1), plus the per-job and per-superstep overheads the
// engine simulators charge. In the original system these rates came from a
// one-off calibration run against the deployed cluster; here they encode the
// measured *relative* behaviours reported in the paper's §2 and §6 (see
// DESIGN.md for the calibration targets: Metis wins small inputs, Hadoop wins
// large scans, Spark pays an RDD load pass, native Lindi reads single-
// threaded, PowerGraph stops scaling past 16 nodes, ...).
//
// All rates are per participating node in MB/s; the simulators multiply by
// the number of nodes an engine actually uses and scale by the cluster's
// hardware factor.

#ifndef MUSKETEER_SRC_BACKENDS_PERF_MODEL_H_
#define MUSKETEER_SRC_BACKENDS_PERF_MODEL_H_

#include "src/backends/engine_kind.h"
#include "src/base/units.h"
#include "src/cluster/cluster.h"

namespace musketeer {

struct EngineRates {
  // Fixed startup + teardown per back-end job (scheduling, JVM spin-up, ...).
  double job_overhead_s = 0;
  // HDFS ingest (PULL) and result write-back (PUSH), per node.
  double pull_mbps = 100;
  double push_mbps = 80;
  // Engine-specific load/transform phase (LOAD): Spark RDD materialization,
  // PowerGraph input sharding, GraphChi shard construction. 0 = no phase.
  double load_mbps = 0;
  // Operator processing on in-memory data (PROCESS), per node.
  double process_mbps = 100;
  // Faster PROCESS used for vertex-centric execution when the workflow
  // matched the graph idiom (GraphLINQ on Naiad, PowerGraph, GraphChi).
  double graph_process_mbps = 0;  // 0 = no specialized path
  // All-to-all repartitioning (shuffle) rate, per node.
  double shuffle_mbps = 40;
  // For vertex-cut engines: fraction of edge data crossing the network per
  // superstep (PowerGraph's sharding reduces this).
  double shuffle_fraction = 1.0;
  // Synchronization overhead per iteration/superstep.
  double superstep_s = 0;
  // Per-iteration driver/task-scheduling cost that grows with cluster size
  // (Spark task launches, Hadoop job setup handled via job_overhead_s).
  double coord_s_per_node = 0;
  // Nodes beyond this do not speed the engine up (PowerGraph: 16, §2.2).
  int max_scalable_nodes = 1 << 20;
};

// Calibrated profile for an engine (Table 1 instantiation).
const EngineRates& RatesFor(EngineKind kind);

// Number of nodes the engine effectively uses on `cluster`.
int EffectiveNodes(EngineKind kind, const ClusterConfig& cluster);

// Bandwidths in bytes/second across the nodes the engine uses, scaled by the
// cluster's per-node hardware factor (local disks vs. EC2).
double PullBandwidth(EngineKind kind, const ClusterConfig& cluster);
double PushBandwidth(EngineKind kind, const ClusterConfig& cluster);
double LoadBandwidth(EngineKind kind, const ClusterConfig& cluster);
double ProcessBandwidth(EngineKind kind, const ClusterConfig& cluster,
                        bool graph_path = false);
double ShuffleBandwidth(EngineKind kind, const ClusterConfig& cluster);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BACKENDS_PERF_MODEL_H_
