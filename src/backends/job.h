// Back-end jobs: the unit of work Musketeer dispatches to an execution
// engine. The DAG partitioner (§5) splits the IR into jobs; each back-end's
// code generator turns a job's sub-DAG into an executable JobPlan.

#ifndef MUSKETEER_SRC_BACKENDS_JOB_H_
#define MUSKETEER_SRC_BACKENDS_JOB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/backends/engine_kind.h"
#include "src/ir/dag.h"

namespace musketeer {

// How a job executes WHILE loops it contains.
enum class WhileExec {
  kNone,              // job has no loop
  kNativeLoop,        // engine iterates in memory (Naiad, Spark driver loop)
  kPerIterationJobs,  // every iteration spawns fresh job(s) and materializes
                      // loop state to the DFS (Hadoop, Metis)
  kVertexRuntime,     // executed by a vertex-centric runtime after idiom
                      // conversion (PowerGraph, GraphChi, GraphLINQ path)
};

const char* WhileExecName(WhileExec mode);

// How `kind` executes a WHILE loop; `vertex_idiom` says whether the loop
// matched the graph idiom (enables GraphLINQ-style execution on Naiad).
WhileExec WhileModeFor(EngineKind kind, bool vertex_idiom);

// Plan-level quirks that model where generated (or native front-end) code
// deviates from the hand-tuned ideal. These are what the overhead
// experiments (Figs. 10/11) and the Lindi GROUP BY experiment (Fig. 7)
// measure.
struct PlanQuirks {
  // Generated code runs PROCESS at this fraction of the hand-tuned rate
  // (template-generality cost: suboptimal data structures, genericity).
  double process_efficiency = 1.0;
  // Inputs are read by a single thread per machine (native Lindi I/O, §2.1).
  bool single_threaded_io = false;
  // GROUP BY is non-associative: all data for the operator is collected on
  // one machine before applying it (native Lindi GROUP BY, §6.2).
  bool single_node_group_by = false;
  // Musketeer's simple look-ahead type inference missed a fusion: charge an
  // extra pass over a JOIN output that feeds a differently-keyed GROUP BY
  // (remaining Spark overhead, §6.4).
  bool model_type_inference_miss = false;
  // Intra-job shared scans and operator fusion are enabled (§4.3.3); turned
  // off for the Fig. 12 ablation.
  bool shared_scans = true;
  // Additional engine jobs launched by a rigid native planner (Hive emits
  // extra MapReduce stages that Musketeer's merged plans avoid).
  int extra_jobs = 0;
};

// An executable back-end job.
struct JobPlan {
  EngineKind engine = EngineKind::kHadoop;
  std::string name;
  // The job's operators: kInput nodes read relations from the DFS; sink and
  // externally-consumed relations are written back to the DFS.
  std::shared_ptr<const Dag> dag;
  std::vector<std::string> inputs;   // DFS relations read
  std::vector<std::string> outputs;  // DFS relations written
  WhileExec while_mode = WhileExec::kNone;
  // True when this job runs a recognized graph idiom on a specialized path.
  bool graph_path = false;
  PlanQuirks quirks;
  // Human-readable generated source (what Musketeer would submit).
  std::string generated_code;
};

// Operators whose input must be repartitioned by key (they delimit MapReduce
// jobs and cost network shuffle in distributed engines).
bool IsShuffleOp(OpKind kind);

// Row-at-a-time operators that fuse into the enclosing scan when shared
// scans are enabled.
bool IsRowwiseOp(OpKind kind);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BACKENDS_JOB_H_
